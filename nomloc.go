// Package nomloc is a calibration-free WLAN indoor localization library
// with nomadic access points, reproducing "NomLoc: Calibration-free Indoor
// Localization With Nomadic Access Points" (Xiao et al., IEEE ICDCS 2014).
//
// NomLoc attacks the spatial localizability variance problem — with a
// fixed AP deployment, accuracy differs wildly across positions — by
// letting mobile ("nomadic") APs refine the network topology on the fly.
// The pipeline is calibration-free: no radio map, no propagation-model
// fitting. It has two stages:
//
//  1. PDP-based proximity determination: per-packet 802.11n CSI is
//     IFFT-ed into the channel impulse response, and the power of the
//     direct path is approximated by the maximum tap power, which
//     suppresses multipath and NLOS bias. Pairwise AP comparisons yield
//     "object is closer to AP i than AP j" judgements with confidence
//     w = f(Pj/Pi).
//  2. SP-based location estimation: judgements become half-plane
//     constraints; virtual APs mirror a reference point across the area
//     boundary; each site a nomadic AP visits adds fresh constraints.
//     The (possibly conflicting) stack is solved as the relaxation LP
//     minimize wᵀt s.t. Āz − t ≤ b̄, t ≥ 0, and the center of the relaxed
//     feasible region is the location estimate.
//
// This package is the public facade: it re-exports the library's types
// and constructors so applications depend only on the module root.
//
// # Quick start
//
//	scn, _ := nomloc.Lab()                         // built-in scenario
//	h, _ := nomloc.NewHarness(scn, nomloc.Options{Seed: 1})
//	est, _ := h.LocalizeOnce(nomloc.V(6, 4), nomloc.NomadicDeployment,
//		rand.New(rand.NewSource(1)))
//	fmt.Println(est.Position)
//
// See examples/ for runnable programs, DESIGN.md for the architecture,
// and EXPERIMENTS.md for the paper-figure reproductions.
package nomloc

import (
	"github.com/nomloc/nomloc/internal/agent"
	"github.com/nomloc/nomloc/internal/baseline"
	"github.com/nomloc/nomloc/internal/channel"
	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/csi"
	"github.com/nomloc/nomloc/internal/dataset"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/dsp"
	"github.com/nomloc/nomloc/internal/eval"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/lp"
	"github.com/nomloc/nomloc/internal/mobility"
	"github.com/nomloc/nomloc/internal/placement"
	"github.com/nomloc/nomloc/internal/planner"
	"github.com/nomloc/nomloc/internal/server"
	"github.com/nomloc/nomloc/internal/track"
	"github.com/nomloc/nomloc/internal/wire"
)

// Geometry primitives.
type (
	// Vec is a 2-D point or vector in meters.
	Vec = geom.Vec
	// Polygon is a simple polygon (floor plans, feasible regions).
	Polygon = geom.Polygon
	// HalfPlane is one spatial constraint A·z ≤ b.
	HalfPlane = geom.HalfPlane
	// Segment is a closed 2-D line segment.
	Segment = geom.Segment
)

// Geometry constructors.
var (
	// V builds a Vec.
	V = geom.V
	// Rect builds an axis-aligned rectangle polygon.
	Rect = geom.Rect
	// NewPolygon validates and builds a polygon.
	NewPolygon = geom.NewPolygon
	// ConvexDecompose splits a simple polygon into convex pieces.
	ConvexDecompose = geom.ConvexDecompose
)

// CSI model.
type (
	// CSIConfig is the OFDM sampling grid of a capture.
	CSIConfig = csi.Config
	// CSIVector is one per-subcarrier channel snapshot.
	CSIVector = csi.Vector
	// CSISample is one packet's capture.
	CSISample = csi.Sample
	// CSIBatch is a burst of captures at one AP position.
	CSIBatch = csi.Batch
)

// DefaultCSIConfig returns the Intel 5300-style 30-subcarrier, 20 MHz
// configuration the paper's prototype used.
var DefaultCSIConfig = csi.DefaultConfig

// Channel simulation (the testbed substitute).
type (
	// Environment is a 2-D indoor propagation scene.
	Environment = channel.Environment
	// Wall is an attenuating (optionally reflective) obstacle.
	Wall = channel.Wall
	// Scatterer is a point clutter object.
	Scatterer = channel.Scatterer
	// ChannelParams parameterizes the propagation model.
	ChannelParams = channel.Params
	// Simulator synthesizes CSI for TX–RX pairs.
	Simulator = channel.Simulator
	// Path is one resolved propagation path.
	Path = channel.Path
)

// Channel constructors.
var (
	// NewEnvironment builds a scene from its boundary polygon.
	NewEnvironment = channel.NewEnvironment
	// NewSimulator builds a validated simulator.
	NewSimulator = channel.NewSimulator
	// DefaultChannelParams returns typical 2.4 GHz indoor parameters.
	DefaultChannelParams = channel.DefaultParams
)

// Core algorithm types.
type (
	// Anchor is one localization reference (AP or nomadic waypoint) with
	// its measured PDP.
	Anchor = core.Anchor
	// AnchorKind distinguishes static APs from nomadic waypoints.
	AnchorKind = core.AnchorKind
	// Judgement is a directed pairwise proximity decision.
	Judgement = core.Judgement
	// PairPolicy selects which anchor pairs are judged.
	PairPolicy = core.PairPolicy
	// CenterRule selects how the estimate is extracted from the feasible
	// region.
	CenterRule = core.CenterRule
	// LocalizerConfig parameterizes a Localizer.
	LocalizerConfig = core.Config
	// Localizer runs SP-based location estimation.
	Localizer = core.Localizer
	// Estimate is one localization outcome.
	Estimate = core.Estimate
	// PDPEstimate is an aggregated direct-path power estimate.
	PDPEstimate = core.PDPEstimate
)

// Core algorithm constants.
const (
	// StaticAP marks fixed access points.
	StaticAP = core.StaticAP
	// NomadicSite marks a nomadic AP observed at one waypoint.
	NomadicSite = core.NomadicSite
	// PaperPairs follows the paper's constraint families exactly.
	PaperPairs = core.PaperPairs
	// AllPairs additionally compares nomadic sites with each other.
	AllPairs = core.AllPairs
	// ChebyshevRule centers the largest inscribed ball.
	ChebyshevRule = core.ChebyshevRule
	// AnalyticRule uses the log-barrier analytic center.
	AnalyticRule = core.AnalyticRule
	// CentroidRule uses the feasible polygon's area centroid.
	CentroidRule = core.CentroidRule
)

// Core algorithm functions.
var (
	// NewLocalizer validates configuration and decomposes the area.
	NewLocalizer = core.New
	// F is the paper's confidence function (Eq. 4).
	F = core.F
	// Confidence returns w = f(Pj/Pi) for a directed pair.
	Confidence = core.Confidence
	// Judge orients a pair of anchors by PDP.
	Judge = core.Judge
	// BuildJudgements produces all pairwise judgements under a policy.
	BuildJudgements = core.BuildJudgements
	// EstimatePDP aggregates a CSI batch into a direct-path power.
	EstimatePDP = core.EstimatePDP
	// EstimatePDPFromVector runs PDP extraction on a single snapshot.
	EstimatePDPFromVector = core.EstimatePDPFromVector
)

// Signal processing.
var (
	// FFT computes the discrete Fourier transform (any length).
	FFT = dsp.FFT
	// IFFT computes the inverse transform with 1/N scaling.
	IFFT = dsp.IFFT
	// PowerDelayProfile converts CSI into per-tap CIR power.
	PowerDelayProfile = dsp.PowerDelayProfile
	// DirectPathPower is the composed PDP estimator.
	DirectPathPower = dsp.DirectPathPower
)

// Linear programming toolkit.
type (
	// LPProblem is an inequality-form linear program.
	LPProblem = lp.Problem
	// LPResult is an LP solution.
	LPResult = lp.Result
	// Relaxation is the solution of the constraint-relaxation LP.
	Relaxation = lp.Relaxation
)

// LP functions.
var (
	// SolveLP runs the two-phase simplex method.
	SolveLP = lp.Solve
	// ChebyshevCenter finds the largest inscribed ball of a polyhedron.
	ChebyshevCenter = lp.ChebyshevCenter
	// AnalyticCenter finds the log-barrier center.
	AnalyticCenter = lp.AnalyticCenter
	// RelaxedSolve solves min wᵀt s.t. a·z − t ≤ b, t ≥ 0 (paper Eq. 19).
	RelaxedSolve = lp.RelaxedSolve
)

// Mobility model.
type (
	// Chain is a Markov chain over waypoint sites.
	Chain = mobility.Chain
	// Trace is a realized nomadic trajectory.
	Trace = mobility.Trace
)

// Mobility functions.
var (
	// NewChain builds a chain with an explicit transition matrix.
	NewChain = mobility.NewChain
	// UniformChain builds the paper's uniform random-walk chain.
	UniformChain = mobility.UniformChain
	// PerturbUniformDisk injects a uniform-disk position error.
	PerturbUniformDisk = mobility.PerturbUniformDisk
)

// Scenarios.
type (
	// Scenario is one complete experimental setup.
	Scenario = deploy.Scenario
	// AP is a deployed access point.
	AP = deploy.AP
	// NomadicAP describes the mobile AP and its waypoints.
	NomadicAP = deploy.NomadicAP
)

// Scenario constructors.
var (
	// Lab returns the digitized Lab scenario (paper Fig. 6a).
	Lab = deploy.Lab
	// Lobby returns the digitized L-shaped Lobby scenario (Fig. 6b).
	Lobby = deploy.Lobby
	// ScenarioByName looks up a built-in scenario.
	ScenarioByName = deploy.ByName
	// ScenarioNames lists the built-in scenarios.
	ScenarioNames = deploy.Names
)

// Evaluation harness.
type (
	// Options tunes an experiment run.
	Options = eval.Options
	// Harness runs localization experiments on one scenario.
	Harness = eval.Harness
	// DeploymentMode selects static vs nomadic evaluation.
	DeploymentMode = eval.Mode
	// SiteResult is one test site's outcome.
	SiteResult = eval.SiteResult
	// ProximityResult is one site's Fig. 7 outcome.
	ProximityResult = eval.ProximityResult
	// ErrorCDF is an empirical error distribution.
	ErrorCDF = eval.CDF
	// Series is a named data series.
	Series = eval.Series
)

// Deployment modes.
const (
	// StaticDeployment is the all-APs-fixed benchmark.
	StaticDeployment = eval.StaticDeployment
	// NomadicDeployment lets the nomadic AP walk its waypoints.
	NomadicDeployment = eval.NomadicDeployment
)

// Evaluation functions.
var (
	// NewHarness builds a harness for a scenario.
	NewHarness = eval.NewHarness
	// SLV computes the spatial localizability variance (Eq. 22).
	SLV = eval.SLV
	// MeanErrors extracts per-site mean errors.
	MeanErrors = eval.MeanErrors
	// NewCDF builds an empirical CDF.
	NewCDF = eval.NewCDF
	// RunFig3 regenerates the delay-profile figure data.
	RunFig3 = eval.RunFig3
	// RunFig7 regenerates the proximity-accuracy figure data.
	RunFig7 = eval.RunFig7
	// RunFig8 regenerates the SLV comparison.
	RunFig8 = eval.RunFig8
	// RunFig9 regenerates the error-CDF comparison.
	RunFig9 = eval.RunFig9
	// RunFig10 regenerates the position-error study.
	RunFig10 = eval.RunFig10
)

// Baselines.
type (
	// RangingModel is the calibrated log-distance model.
	RangingModel = baseline.RangingModel
	// BaselineAnchor is a reference point with received power.
	BaselineAnchor = baseline.Anchor
)

// Baseline functions.
var (
	// Trilaterate runs ranging + linear least squares.
	Trilaterate = baseline.Trilaterate
	// WeightedCentroid runs the RSS-centroid baseline.
	WeightedCentroid = baseline.WeightedCentroid
	// NearestAP snaps to the strongest anchor.
	NearestAP = baseline.NearestAP
	// CalibrateRangingModel fits the log-distance model.
	CalibrateRangingModel = baseline.CalibrateRangingModel
)

// Distributed system (the Fig. 2 architecture over TCP).
type (
	// Server is the localization server.
	Server = server.Server
	// ServerConfig parameterizes the server.
	ServerConfig = server.Config
	// APAgent is a connected access point.
	APAgent = agent.APAgent
	// APConfig parameterizes an AP agent.
	APConfig = agent.APConfig
	// ObjectAgent is the connected object.
	ObjectAgent = agent.ObjectAgent
	// ObjectConfig parameterizes the object agent.
	ObjectConfig = agent.ObjectConfig
	// WireEstimate is the server's broadcast localization result.
	WireEstimate = wire.Estimate
)

// Distributed system constructors.
var (
	// NewServer validates configuration and builds a server.
	NewServer = server.New
	// DialAP connects and registers an AP agent.
	DialAP = agent.DialAP
	// DialObject connects and registers the object agent.
	DialObject = agent.DialObject
)

// Distributed system sentinels.
var (
	// ErrAgentClosed is the clean-shutdown reason agent Run loops return
	// after Close.
	ErrAgentClosed = agent.ErrClosed
)

// Movement planning (paper §VI future work: nomadic moving patterns).
type (
	// MovementStrategy decides the nomadic AP's next waypoint.
	MovementStrategy = planner.Strategy
	// PlannerState carries visit history and the belief region.
	PlannerState = planner.State
)

// Movement strategies.
var (
	// RandomWalkStrategy is the paper's uniform Markov step.
	RandomWalkStrategy = planner.RandomWalk
	// RoundRobinStrategy cycles the waypoints in order.
	RoundRobinStrategy = planner.RoundRobin
	// FarthestFirstStrategy is the coverage-greedy sweep.
	FarthestFirstStrategy = planner.FarthestFirst
	// GreedyPartitionStrategy is the information-driven planner.
	GreedyPartitionStrategy = planner.GreedyPartition
	// MovementStrategies lists all built-in strategies.
	MovementStrategies = planner.Builtin
)

// Localizability mapping (the paper's Fig. 1 concept made measurable).
type (
	// LocalizabilityMap is a grid of per-point mean localization errors.
	LocalizabilityMap = eval.MapResult
)

// Dataset recording and replay.
type (
	// Dataset is a recorded measurement campaign.
	Dataset = dataset.Dataset
	// DatasetRecord is one recorded localization round.
	DatasetRecord = dataset.Record
	// ReplayResult is one replayed round's outcome.
	ReplayResult = eval.ReplayResult
)

// Dataset functions.
var (
	// LoadDataset reads a campaign file.
	LoadDataset = dataset.LoadFile
	// ReplayDataset re-runs the SP pipeline over recorded batches.
	ReplayDataset = eval.ReplayDataset
	// ReplayErrors extracts the error column of replay results.
	ReplayErrors = eval.ReplayErrors
)

// Viewer clients.
type (
	// ViewerAgent subscribes to the server's estimate broadcasts.
	ViewerAgent = agent.ViewerAgent
	// ViewerConfig parameterizes a viewer.
	ViewerConfig = agent.ViewerConfig
)

// DialViewer connects and registers a read-only viewer.
var DialViewer = agent.DialViewer

// Trajectory tracking.
type (
	// TrackFilter is a constant-velocity Kalman filter over position
	// estimates.
	TrackFilter = track.Filter
	// TrackConfig parameterizes the filter.
	TrackConfig = track.Config
)

// Tracking functions.
var (
	// NewTrackFilter builds a validated filter.
	NewTrackFilter = track.New
	// SmoothTrack filters a whole estimate sequence at a fixed interval.
	SmoothTrack = track.Smooth
)

// Super-resolution delay estimation (MUSIC extension).
type (
	// MusicConfig parameterizes the super-resolution estimator.
	MusicConfig = dsp.MusicConfig
	// PathEstimate is one resolved path (delay + power).
	PathEstimate = dsp.PathEstimate
	// PDPMethod selects the direct-path power estimator.
	PDPMethod = core.PDPMethod
)

// PDP estimation methods.
const (
	// MaxTapMethod is the paper's CIR max-tap estimator.
	MaxTapMethod = core.MaxTapMethod
	// MusicMethod is the super-resolution first-path estimator.
	MusicMethod = core.MusicMethod
)

// Super-resolution functions.
var (
	// MusicPseudoSpectrum evaluates the MUSIC delay pseudo-spectrum.
	MusicPseudoSpectrum = dsp.MusicPseudoSpectrum
	// EstimatePathsMUSIC resolves paths with delays and powers.
	EstimatePathsMUSIC = dsp.EstimatePathsMUSIC
	// FirstPathDelayMUSIC estimates the earliest significant arrival.
	FirstPathDelayMUSIC = dsp.FirstPathDelayMUSIC
	// EstimatePDPMusic is the batch-level super-resolution PDP.
	EstimatePDPMusic = core.EstimatePDPMusic
	// SymmetricEigen exposes the Jacobi eigensolver.
	SymmetricEigen = dsp.SymmetricEigen
)

// Sequence-based localization comparator.
type (
	// SBL is the sequence-based localization table.
	SBL = baseline.SBL
)

// NewSBL precomputes an SBL sequence table for an area and anchor set.
var NewSBL = baseline.NewSBL

// Additional scenarios beyond the paper's two.
var (
	// Office returns the extra multi-room stress scenario (heavy
	// multi-wall NLOS; not part of the paper's evaluation set).
	Office = deploy.Office
	// ScenarioAllNames lists every built-in scenario including office.
	ScenarioAllNames = deploy.AllNames
)

// AP placement optimization (the §III comparison experiment).
var (
	// GreedyPlacement places k APs by forward selection over candidates.
	GreedyPlacement = placement.Greedy
	// PlacementCandidates samples a candidate grid over an area.
	PlacementCandidates = placement.GridCandidates
	// GeometricDilution is the cheap localizability proxy objective.
	GeometricDilution = placement.GeometricDilution
)
