// Benchmarks regenerating every figure of the paper's evaluation (§V) and
// the repository's ablation studies. Each benchmark runs the figure's full
// computation per iteration and prints the figure's summary rows once, so
//
//	go test -bench=. -benchmem
//
// both times the experiment pipeline and reproduces the reported series.
// cmd/nomloc-bench prints the full-resolution tables.
package nomloc_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/nomloc/nomloc/internal/analysis"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/eval"
)

// benchOptions keeps per-iteration cost moderate while preserving the
// figure shapes.
func benchOptions() eval.Options {
	return eval.Options{PacketsPerSite: 12, TrialsPerSite: 2, WalkSteps: 10, Seed: 1}
}

// printOnce guards per-benchmark summary printing.
var printOnce sync.Map

func once(key string, f func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		f()
	}
}

func mustScenario(b *testing.B, name string) *deploy.Scenario {
	b.Helper()
	scn, err := deploy.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return scn
}

// BenchmarkFig3DelayProfile regenerates the LOS/NLOS channel response
// delay profile (paper Fig. 3).
func BenchmarkFig3DelayProfile(b *testing.B) {
	scn := mustScenario(b, "lab")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig3(scn, 8)
		if err != nil {
			b.Fatal(err)
		}
		once("fig3", func() {
			losPeak, nlosPeak := 0.0, 0.0
			for _, y := range res.LOS.Y {
				if y > losPeak {
					losPeak = y
				}
			}
			for _, y := range res.NLOS.Y {
				if y > nlosPeak {
					nlosPeak = y
				}
			}
			fmt.Printf("\n[fig3] LOS link %s peak %.3e | NLOS link %s peak %.3e | ratio %.1f×\n",
				res.LOSLink, losPeak, res.NLOSLink, nlosPeak, losPeak/nlosPeak)
		})
	}
}

// BenchmarkFig7ProximityAccuracy regenerates the per-site PDP proximity
// accuracy (paper Fig. 7) for both scenarios.
func BenchmarkFig7ProximityAccuracy(b *testing.B) {
	for _, name := range deploy.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			scn := mustScenario(b, name)
			opt := benchOptions()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := eval.RunFig7(scn, opt)
				if err != nil {
					b.Fatal(err)
				}
				once("fig7-"+name, func() {
					fmt.Printf("\n[fig7 %s] accuracy per site:", name)
					var mean float64
					for _, s := range res.Sites {
						fmt.Printf(" %.0f%%", 100*s.Accuracy())
						mean += s.Accuracy()
					}
					fmt.Printf(" | mean %.0f%%\n", 100*mean/float64(len(res.Sites)))
				})
			}
		})
	}
}

// BenchmarkFig8SLV regenerates the spatial localizability variance
// comparison (paper Fig. 8).
func BenchmarkFig8SLV(b *testing.B) {
	for _, name := range deploy.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			scn := mustScenario(b, name)
			opt := benchOptions()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := eval.RunFig8(scn, opt)
				if err != nil {
					b.Fatal(err)
				}
				once("fig8-"+name, func() {
					fmt.Printf("\n[fig8 %s] SLV static %.2f → nomadic %.2f | mean error static %.2f m → nomadic %.2f m\n",
						name, res.StaticSLV, res.NomadicSLV, res.StaticMean, res.NomadicMean)
				})
			}
		})
	}
}

// BenchmarkFig9ErrorCDF regenerates the error CDF comparison (paper
// Fig. 9).
func BenchmarkFig9ErrorCDF(b *testing.B) {
	for _, name := range deploy.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			scn := mustScenario(b, name)
			opt := benchOptions()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := eval.RunFig9(scn, opt)
				if err != nil {
					b.Fatal(err)
				}
				once("fig9-"+name, func() {
					s50, _ := res.Static.Percentile(0.5)
					n50, _ := res.Nomadic.Percentile(0.5)
					s90, _ := res.Static.Percentile(0.9)
					n90, _ := res.Nomadic.Percentile(0.9)
					fmt.Printf("\n[fig9 %s] median static %.2f m → nomadic %.2f m | p90 static %.2f m → nomadic %.2f m\n",
						name, s50, n50, s90, n90)
				})
			}
		})
	}
}

// BenchmarkHarnessWorkers times the full position sweep (the Fig. 9
// inner loop) at several worker-pool sizes. The per-worker-count
// sub-benchmark ratios are the harness's parallel speedup; estimates
// are seed-derived per site, so every worker count computes identical
// results (see eval.TestParallelMatchesSequential).
func BenchmarkHarnessWorkers(b *testing.B) {
	scn := mustScenario(b, "lab")
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := benchOptions()
			opt.Workers = workers
			h, err := eval.NewHarness(scn, opt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := h.RunSites(eval.NomadicDeployment); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10PositionError regenerates the nomadic position-error
// robustness study (paper Fig. 10).
func BenchmarkFig10PositionError(b *testing.B) {
	scn := mustScenario(b, "lab")
	opt := benchOptions()
	ers := []float64{0, 1, 2, 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig10(scn, opt, ers)
		if err != nil {
			b.Fatal(err)
		}
		once("fig10", func() {
			fmt.Printf("\n[fig10 lab] median error by ER:")
			for j, er := range res.ERs {
				med, _ := res.CDFs[j].Percentile(0.5)
				fmt.Printf(" ER=%.0f→%.2fm", er, med)
			}
			fmt.Println()
		})
	}
}

// BenchmarkAblationCenterRule compares estimate-extraction rules
// (DESIGN.md ablation).
func BenchmarkAblationCenterRule(b *testing.B) {
	scn := mustScenario(b, "lab")
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunCenterRuleAblation(scn, opt)
		if err != nil {
			b.Fatal(err)
		}
		once("ab-center", func() { printAblation("center-rule", rows) })
	}
}

// BenchmarkAblationSiteCount sweeps the nomadic waypoint count
// (DESIGN.md ablation).
func BenchmarkAblationSiteCount(b *testing.B) {
	scn := mustScenario(b, "lab")
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunSiteCountAblation(scn, opt)
		if err != nil {
			b.Fatal(err)
		}
		once("ab-sites", func() { printAblation("site-count", rows) })
	}
}

// BenchmarkAblationConfidence compares f-derived vs uniform relaxation
// weights (DESIGN.md ablation).
func BenchmarkAblationConfidence(b *testing.B) {
	scn := mustScenario(b, "lab")
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunConfidenceAblation(scn, opt)
		if err != nil {
			b.Fatal(err)
		}
		once("ab-conf", func() { printAblation("confidence", rows) })
	}
}

// BenchmarkAblationBaselines pits NomLoc against the comparator
// algorithms (DESIGN.md ablation).
func BenchmarkAblationBaselines(b *testing.B) {
	scn := mustScenario(b, "lab")
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunBaselineComparison(scn, opt)
		if err != nil {
			b.Fatal(err)
		}
		once("ab-base", func() { printAblation("baselines", rows) })
	}
}

// BenchmarkExtMultiNomadic evaluates the paper's future-work extension:
// aggregating multiple nomadic APs.
func BenchmarkExtMultiNomadic(b *testing.B) {
	scn := mustScenario(b, "lab")
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunMultiNomadicExtension(scn, opt, []int{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		once("ext-multi", func() { printAblation("multi-nomadic", rows) })
	}
}

// BenchmarkAblationPDPMethod compares the paper's max-tap PDP against the
// MUSIC super-resolution estimator (DESIGN.md ablation).
func BenchmarkAblationPDPMethod(b *testing.B) {
	scn := mustScenario(b, "lab")
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunPDPMethodAblation(scn, opt)
		if err != nil {
			b.Fatal(err)
		}
		once("ab-pdp", func() { printAblation("pdp-method", rows) })
	}
}

// BenchmarkAblationFidelity sweeps the simulator's reflection order
// (DESIGN.md ablation).
func BenchmarkAblationFidelity(b *testing.B) {
	scn := mustScenario(b, "lab")
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunFidelityAblation(scn, opt)
		if err != nil {
			b.Fatal(err)
		}
		once("ab-fid", func() { printAblation("sim-fidelity", rows) })
	}
}

// BenchmarkAblationPairPolicy compares the paper's constraint families
// against the AllPairs extension (DESIGN.md ablation).
func BenchmarkAblationPairPolicy(b *testing.B) {
	scn := mustScenario(b, "lab")
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunPairPolicyAblation(scn, opt)
		if err != nil {
			b.Fatal(err)
		}
		once("ab-pairs", func() { printAblation("pair-policy", rows) })
	}
}

// BenchmarkAblationPlacement compares as-is static, greedy-optimized
// static, and nomadic deployments (the paper's §III argument).
func BenchmarkAblationPlacement(b *testing.B) {
	scn := mustScenario(b, "lab")
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunPlacementAblation(scn, opt)
		if err != nil {
			b.Fatal(err)
		}
		once("ab-place", func() { printAblation("placement", rows) })
	}
}

// BenchmarkExtMovingPatterns compares nomadic movement strategies (paper
// §VI future work: the impact of moving patterns).
func BenchmarkExtMovingPatterns(b *testing.B) {
	scn := mustScenario(b, "lab")
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunMovingPatterns(scn, opt, len(scn.Nomadic.Waypoints))
		if err != nil {
			b.Fatal(err)
		}
		once("ext-patterns", func() { printAblation("moving-patterns", rows) })
	}
}

// BenchmarkVetModule times one full nomloc-vet pass over the entire
// module — load, call graph, summaries, every analyzer (the effect
// system included) — so the lint wall-time CI pays stays measured.
// Package load is re-done per iteration on purpose: it is part of the
// wall time `go run ./cmd/nomloc-vet ./...` costs.
func BenchmarkVetModule(b *testing.B) {
	suite := analysis.All()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkgs, err := analysis.Load(".", "./...")
		if err != nil {
			b.Fatal(err)
		}
		prog := analysis.BuildProgram(pkgs)
		findings := 0
		for _, pkg := range pkgs {
			for _, a := range suite {
				diags, err := prog.RunPkg(pkg, a)
				if err != nil {
					b.Fatal(err)
				}
				findings += len(diags)
			}
		}
		if findings != 0 {
			b.Fatalf("vet found %d finding(s) on the tree; the benchmark assumes a clean module", findings)
		}
	}
}

func printAblation(label string, rows []eval.AblationRow) {
	fmt.Printf("\n[%s]", label)
	for _, r := range rows {
		fmt.Printf(" %s: mean %.2f m SLV %.2f |", r.Variant, r.MeanError, r.SLVValue)
	}
	fmt.Println()
}
