package nomloc_test

import (
	"math"
	"math/rand"
	"testing"

	nomloc "github.com/nomloc/nomloc"
)

// TestFacadeSurface exercises the public API end to end the way a
// downstream application would: scenario → harness → localization, plus
// the algorithm primitives.
func TestFacadeSurface(t *testing.T) {
	// Confidence function properties through the facade.
	if got := nomloc.F(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("F(1) = %v", got)
	}
	if got := nomloc.Confidence(4, 2) + nomloc.Confidence(2, 4); math.Abs(got-1) > 1e-12 {
		t.Errorf("confidences sum to %v", got)
	}

	// Geometry.
	area := nomloc.Rect(0, 0, 12, 8)
	if !area.Contains(nomloc.V(6, 4)) {
		t.Error("Contains broken through facade")
	}
	pieces, err := nomloc.ConvexDecompose(area)
	if err != nil || len(pieces) != 1 {
		t.Errorf("ConvexDecompose = %d pieces, %v", len(pieces), err)
	}

	// Scenario + harness + one localization round.
	scn, err := nomloc.Lab()
	if err != nil {
		t.Fatal(err)
	}
	h, err := nomloc.NewHarness(scn, nomloc.Options{PacketsPerSite: 9, TrialsPerSite: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	obj := nomloc.V(6, 4)
	est, err := h.LocalizeOnce(obj, nomloc.NomadicDeployment, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if !scn.Area.Contains(est.Position) {
		t.Errorf("estimate %v outside area", est.Position)
	}

	// Metrics.
	cdf, err := nomloc.NewCDF([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := cdf.At(2); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("CDF.At = %v", got)
	}
	if got := nomloc.SLV([]float64{1, 3}); got != 1 {
		t.Errorf("SLV = %v", got)
	}
}

// TestFacadeLocalizerDirect drives the Localizer without the harness.
func TestFacadeLocalizerDirect(t *testing.T) {
	loc, err := nomloc.NewLocalizer(nomloc.LocalizerConfig{
		Area:   nomloc.Rect(0, 0, 10, 10),
		Center: nomloc.ChebyshevRule,
		Pairs:  nomloc.PaperPairs,
	})
	if err != nil {
		t.Fatal(err)
	}
	obj := nomloc.V(3, 3)
	aps := []nomloc.Vec{nomloc.V(1, 1), nomloc.V(9, 1), nomloc.V(5, 9)}
	anchors := make([]nomloc.Anchor, len(aps))
	for i, p := range aps {
		d := obj.Dist(p)
		anchors[i] = nomloc.Anchor{
			APID: string(rune('a' + i)),
			Kind: nomloc.StaticAP,
			Pos:  p,
			PDP:  1 / (1 + d*d),
		}
	}
	est, err := loc.Locate(anchors)
	if err != nil {
		t.Fatal(err)
	}
	if est.RelaxCost > 1e-6 {
		t.Errorf("relax cost = %v", est.RelaxCost)
	}
	if d := est.Position.Dist(obj); d > 5 {
		t.Errorf("error = %v m", d)
	}
}

// TestFacadeChannelAndDSP runs the substrate through the facade.
func TestFacadeChannelAndDSP(t *testing.T) {
	env, err := nomloc.NewEnvironment(nomloc.Rect(0, 0, 10, 10), 12)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := nomloc.NewSimulator(env, nomloc.DefaultChannelParams())
	if err != nil {
		t.Fatal(err)
	}
	csiVec := sim.Measure(nomloc.V(1, 1), nomloc.V(8, 8), rand.New(rand.NewSource(1)))
	if len(csiVec) != nomloc.DefaultCSIConfig().NumSubcarriers {
		t.Fatalf("CSI length = %d", len(csiVec))
	}
	power, tap, err := nomloc.DirectPathPower(csiVec)
	if err != nil || power <= 0 || tap < 0 {
		t.Errorf("DirectPathPower = %v @ %d, %v", power, tap, err)
	}
	spec, err := nomloc.FFT([]complex128{1, 0, 0, 0})
	if err != nil || len(spec) != 4 {
		t.Errorf("FFT through facade: %v, %v", spec, err)
	}
}

// TestFacadeBaselines runs a baseline through the facade.
func TestFacadeBaselines(t *testing.T) {
	model := nomloc.RangingModel{RefPowerDBm: -40, PathLossExponent: 2}
	obj := nomloc.V(4, 3)
	anchors := []nomloc.BaselineAnchor{}
	for _, p := range []nomloc.Vec{nomloc.V(0, 0), nomloc.V(10, 0), nomloc.V(0, 10)} {
		d := obj.Dist(p)
		anchors = append(anchors, nomloc.BaselineAnchor{
			Pos:      p,
			PowerDBm: model.RefPowerDBm - 20*math.Log10(d),
		})
	}
	got, err := nomloc.Trilaterate(anchors, model)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(obj) > 1e-6 {
		t.Errorf("Trilaterate = %v", got)
	}
}
