package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSegmentBasics(t *testing.T) {
	s := Seg(V(0, 0), V(4, 0))
	if s.Len() != 4 {
		t.Errorf("Len = %v", s.Len())
	}
	if s.Midpoint() != V(2, 0) {
		t.Errorf("Midpoint = %v", s.Midpoint())
	}
	if s.At(0.25) != V(1, 0) {
		t.Errorf("At(0.25) = %v", s.At(0.25))
	}
	if s.Dir() != V(4, 0) {
		t.Errorf("Dir = %v", s.Dir())
	}
}

func TestSegmentContains(t *testing.T) {
	s := Seg(V(0, 0), V(4, 4))
	tests := []struct {
		p    Vec
		want bool
	}{
		{V(2, 2), true},
		{V(0, 0), true},
		{V(4, 4), true},
		{V(5, 5), false},
		{V(2, 2.1), false},
		{V(-1, -1), false},
	}
	for _, tt := range tests {
		if got := s.Contains(tt.p, 1e-9); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestSegmentContainsDegenerate(t *testing.T) {
	s := Seg(V(1, 1), V(1, 1))
	if !s.Contains(V(1, 1), 1e-9) {
		t.Error("degenerate segment should contain its point")
	}
	if s.Contains(V(1, 2), 1e-9) {
		t.Error("degenerate segment should not contain other points")
	}
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Seg(V(0, 0), V(10, 0))
	tests := []struct {
		p, want Vec
	}{
		{V(5, 3), V(5, 0)},
		{V(-2, 1), V(0, 0)},
		{V(12, -1), V(10, 0)},
	}
	for _, tt := range tests {
		if got := s.ClosestPoint(tt.p); !got.ApproxEqual(tt.want, 1e-12) {
			t.Errorf("ClosestPoint(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestSegmentDistTo(t *testing.T) {
	s := Seg(V(0, 0), V(10, 0))
	if got := s.DistTo(V(5, 3)); math.Abs(got-3) > 1e-12 {
		t.Errorf("DistTo = %v, want 3", got)
	}
	if got := s.DistTo(V(13, 4)); math.Abs(got-5) > 1e-12 {
		t.Errorf("DistTo = %v, want 5", got)
	}
}

func TestSegmentIntersect(t *testing.T) {
	tests := []struct {
		name   string
		s, o   Segment
		wantOK bool
		wantP  Vec
	}{
		{
			name: "plain cross", s: Seg(V(0, 0), V(4, 4)), o: Seg(V(0, 4), V(4, 0)),
			wantOK: true, wantP: V(2, 2),
		},
		{
			name: "disjoint", s: Seg(V(0, 0), V(1, 0)), o: Seg(V(0, 1), V(1, 1)),
			wantOK: false,
		},
		{
			name: "T touch", s: Seg(V(0, 0), V(4, 0)), o: Seg(V(2, 0), V(2, 3)),
			wantOK: true, wantP: V(2, 0),
		},
		{
			name: "parallel offset", s: Seg(V(0, 0), V(4, 0)), o: Seg(V(0, 1), V(4, 1)),
			wantOK: false,
		},
		{
			name: "collinear overlap", s: Seg(V(0, 0), V(4, 0)), o: Seg(V(2, 0), V(6, 0)),
			wantOK: true, wantP: V(2, 0),
		},
		{
			name: "collinear disjoint", s: Seg(V(0, 0), V(1, 0)), o: Seg(V(2, 0), V(3, 0)),
			wantOK: false,
		},
		{
			name: "would cross beyond ends", s: Seg(V(0, 0), V(1, 1)), o: Seg(V(3, 0), V(0, 3)),
			wantOK: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, ok := tt.s.Intersect(tt.o)
			if ok != tt.wantOK {
				t.Fatalf("Intersect ok = %v, want %v", ok, tt.wantOK)
			}
			if ok && !p.ApproxEqual(tt.wantP, 1e-9) {
				t.Errorf("Intersect point = %v, want %v", p, tt.wantP)
			}
		})
	}
}

func TestSegmentIntersectsProperly(t *testing.T) {
	cross := Seg(V(0, 0), V(4, 4))
	if !cross.IntersectsProperly(Seg(V(0, 4), V(4, 0))) {
		t.Error("proper crossing not detected")
	}
	// Endpoint touch is not proper.
	if cross.IntersectsProperly(Seg(V(4, 4), V(8, 0))) {
		t.Error("endpoint touch reported as proper")
	}
	// Collinear overlap is not proper.
	if cross.IntersectsProperly(Seg(V(2, 2), V(6, 6))) {
		t.Error("collinear overlap reported as proper")
	}
}

func TestLineMirror(t *testing.T) {
	// Mirror across the x-axis.
	l := LineThrough(V(0, 0), V(1, 0))
	got := l.Mirror(V(3, 4))
	if !got.ApproxEqual(V(3, -4), 1e-12) {
		t.Errorf("Mirror = %v, want (3, -4)", got)
	}
	// Mirror across the diagonal y = x swaps coordinates.
	diag := LineThrough(V(0, 0), V(1, 1))
	got = diag.Mirror(V(2, 5))
	if !got.ApproxEqual(V(5, 2), 1e-12) {
		t.Errorf("Mirror = %v, want (5, 2)", got)
	}
	// Point on the line maps to itself.
	got = diag.Mirror(V(7, 7))
	if !got.ApproxEqual(V(7, 7), 1e-12) {
		t.Errorf("Mirror of on-line point = %v", got)
	}
}

func TestLineMirrorDegenerate(t *testing.T) {
	l := Line{Point: V(1, 1), Dir: Vec{}}
	got := l.Mirror(V(3, 0))
	if !got.ApproxEqual(V(-1, 2), 1e-12) {
		t.Errorf("degenerate Mirror = %v, want point reflection (-1, 2)", got)
	}
}

func TestLineDistTo(t *testing.T) {
	l := LineThrough(V(0, 0), V(10, 0))
	if got := l.DistTo(V(3, 7)); math.Abs(got-7) > 1e-12 {
		t.Errorf("DistTo = %v, want 7", got)
	}
	degen := Line{Point: V(1, 1), Dir: Vec{}}
	if got := degen.DistTo(V(4, 5)); math.Abs(got-5) > 1e-12 {
		t.Errorf("degenerate DistTo = %v, want 5", got)
	}
}

func TestLineSide(t *testing.T) {
	l := LineThrough(V(0, 0), V(1, 0))
	if l.Side(V(0, 5)) != 1 {
		t.Error("left side not +1")
	}
	if l.Side(V(0, -5)) != -1 {
		t.Error("right side not -1")
	}
	if l.Side(V(9, 0)) != 0 {
		t.Error("on-line not 0")
	}
}

func TestPropMirrorInvolution(t *testing.T) {
	f := func(a, b, p Vec) bool {
		a, b, p = clampVec(a), clampVec(b), clampVec(p)
		if a.Dist(b) < 1e-3 {
			return true // skip degenerate lines
		}
		l := LineThrough(a, b)
		return l.Mirror(l.Mirror(p)).ApproxEqual(p, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMirrorPreservesLineDistance(t *testing.T) {
	f := func(a, b, p Vec) bool {
		a, b, p = clampVec(a), clampVec(b), clampVec(p)
		if a.Dist(b) < 1e-3 {
			return true
		}
		l := LineThrough(a, b)
		return math.Abs(l.DistTo(p)-l.DistTo(l.Mirror(p))) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropClosestPointIsClosest(t *testing.T) {
	f := func(a, b, p Vec, tRaw float64) bool {
		a, b, p = clampVec(a), clampVec(b), clampVec(p)
		s := Seg(a, b)
		cp := s.ClosestPoint(p)
		// Any sampled point on the segment must be at least as far.
		tt := math.Abs(math.Mod(clampCoord(tRaw), 1))
		return p.Dist(cp) <= p.Dist(s.At(tt))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
