package geom

import (
	"errors"
	"fmt"
	"math"
)

// Polygon is a simple polygon given by its vertices in order. Methods that
// care about winding normalize internally; use EnsureCCW to canonicalize.
type Polygon struct {
	vertices []Vec
}

// Errors returned by polygon validation.
var (
	ErrTooFewVertices = errors.New("geom: polygon needs at least 3 vertices")
	ErrDegenerate     = errors.New("geom: polygon has near-zero area")
	ErrSelfIntersect  = errors.New("geom: polygon edges self-intersect")
)

// NewPolygon builds a polygon from vertices, copying the slice. It returns
// an error if the polygon is degenerate or self-intersecting; repeated
// consecutive vertices are dropped.
func NewPolygon(vertices []Vec) (Polygon, error) {
	cleaned := make([]Vec, 0, len(vertices))
	for _, v := range vertices {
		if len(cleaned) > 0 && cleaned[len(cleaned)-1].ApproxEqual(v, Eps) {
			continue
		}
		cleaned = append(cleaned, v)
	}
	if len(cleaned) > 1 && cleaned[0].ApproxEqual(cleaned[len(cleaned)-1], Eps) {
		cleaned = cleaned[:len(cleaned)-1]
	}
	if len(cleaned) < 3 {
		return Polygon{}, ErrTooFewVertices
	}
	p := Polygon{vertices: cleaned}
	if math.Abs(p.SignedArea()) < Eps {
		return Polygon{}, ErrDegenerate
	}
	if p.selfIntersects() {
		return Polygon{}, ErrSelfIntersect
	}
	return p, nil
}

// MustPolygon is NewPolygon that panics on error. Reserve it for static
// scenario definitions where an invalid polygon is a programming bug.
func MustPolygon(vertices []Vec) Polygon {
	p, err := NewPolygon(vertices)
	if err != nil {
		panic(fmt.Sprintf("geom: invalid polygon: %v", err))
	}
	return p
}

// Rect returns the axis-aligned rectangle with corners (x0,y0) and (x1,y1).
func Rect(x0, y0, x1, y1 float64) Polygon {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Polygon{vertices: []Vec{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}}}
}

// Vertices returns a copy of the vertex list.
func (p Polygon) Vertices() []Vec {
	out := make([]Vec, len(p.vertices))
	copy(out, p.vertices)
	return out
}

// NumVertices returns the vertex count.
func (p Polygon) NumVertices() int { return len(p.vertices) }

// Vertex returns vertex i, indexing modulo the vertex count (negative
// indices wrap as well).
func (p Polygon) Vertex(i int) Vec {
	n := len(p.vertices)
	i %= n
	if i < 0 {
		i += n
	}
	return p.vertices[i]
}

// Edges returns the edge list, edge i running from vertex i to vertex i+1.
func (p Polygon) Edges() []Segment {
	n := len(p.vertices)
	edges := make([]Segment, n)
	for i := 0; i < n; i++ {
		edges[i] = Segment{A: p.vertices[i], B: p.vertices[(i+1)%n]}
	}
	return edges
}

// SignedArea returns the shoelace area: positive for CCW winding.
func (p Polygon) SignedArea() float64 {
	var sum float64
	n := len(p.vertices)
	for i := 0; i < n; i++ {
		a, b := p.vertices[i], p.vertices[(i+1)%n]
		sum += a.Cross(b)
	}
	return sum / 2
}

// Area returns the absolute area.
func (p Polygon) Area() float64 { return math.Abs(p.SignedArea()) }

// Perimeter returns the total edge length.
func (p Polygon) Perimeter() float64 {
	var sum float64
	for _, e := range p.Edges() {
		sum += e.Len()
	}
	return sum
}

// Centroid returns the area centroid.
func (p Polygon) Centroid() Vec {
	var cx, cy, a float64
	n := len(p.vertices)
	for i := 0; i < n; i++ {
		v0, v1 := p.vertices[i], p.vertices[(i+1)%n]
		cross := v0.Cross(v1)
		a += cross
		cx += (v0.X + v1.X) * cross
		cy += (v0.Y + v1.Y) * cross
	}
	if math.Abs(a) < Eps {
		return Centroid(p.vertices)
	}
	return Vec{cx / (3 * a), cy / (3 * a)}
}

// IsCCW reports whether the vertices wind counter-clockwise.
func (p Polygon) IsCCW() bool { return p.SignedArea() > 0 }

// EnsureCCW returns a polygon with the same boundary wound CCW.
func (p Polygon) EnsureCCW() Polygon {
	if p.IsCCW() {
		return p
	}
	n := len(p.vertices)
	rev := make([]Vec, n)
	for i, v := range p.vertices {
		rev[n-1-i] = v
	}
	return Polygon{vertices: rev}
}

// IsConvex reports whether the polygon is convex (collinear runs allowed).
func (p Polygon) IsConvex() bool {
	n := len(p.vertices)
	sign := 0
	for i := 0; i < n; i++ {
		a := p.vertices[i]
		b := p.vertices[(i+1)%n]
		c := p.vertices[(i+2)%n]
		cross := b.Sub(a).Cross(c.Sub(b))
		if math.Abs(cross) < Eps {
			continue
		}
		s := 1
		if cross < 0 {
			s = -1
		}
		if sign == 0 {
			sign = s
		} else if s != sign {
			return false
		}
	}
	return true
}

// Contains reports whether q is inside the polygon (boundary inclusive),
// using the winding-insensitive even-odd ray-crossing rule with an explicit
// boundary check so edge and vertex points count as inside.
func (p Polygon) Contains(q Vec) bool {
	for _, e := range p.Edges() {
		if e.Contains(q, Eps) {
			return true
		}
	}
	inside := false
	n := len(p.vertices)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := p.vertices[i], p.vertices[j]
		if (vi.Y > q.Y) != (vj.Y > q.Y) {
			xCross := (vj.X-vi.X)*(q.Y-vi.Y)/(vj.Y-vi.Y) + vi.X
			if q.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// ContainsStrict reports whether q is strictly interior: inside and at
// least margin away from every edge.
func (p Polygon) ContainsStrict(q Vec, margin float64) bool {
	if !p.Contains(q) {
		return false
	}
	for _, e := range p.Edges() {
		if e.DistTo(q) < margin {
			return false
		}
	}
	return true
}

// DistToBoundary returns the distance from q to the nearest edge.
func (p Polygon) DistToBoundary(q Vec) float64 {
	best := math.Inf(1)
	for _, e := range p.Edges() {
		if d := e.DistTo(q); d < best {
			best = d
		}
	}
	return best
}

// ClosestBoundaryPoint returns the boundary point nearest to q.
func (p Polygon) ClosestBoundaryPoint(q Vec) Vec {
	best := math.Inf(1)
	var bestPt Vec
	for _, e := range p.Edges() {
		pt := e.ClosestPoint(q)
		if d := pt.Dist(q); d < best {
			best, bestPt = d, pt
		}
	}
	return bestPt
}

// Clamp returns q if inside, otherwise the closest boundary point. It is
// used to keep LP solutions within the area of interest when numerical
// relaxation lets an estimate drift just past an edge.
func (p Polygon) Clamp(q Vec) Vec {
	if p.Contains(q) {
		return q
	}
	return p.ClosestBoundaryPoint(q)
}

// BoundingBox returns the axis-aligned bounding box of the polygon.
func (p Polygon) BoundingBox() (min, max Vec) { return BoundingBox(p.vertices) }

// MirrorAcrossEdges returns the mirror image of pt across every edge's
// supporting line, in edge order. These are the paper's virtual-AP
// positions (Fig. 4, Eq. 9–11): for a convex area, the interior point pt is
// closer to itself than to each mirror image exactly when the object is on
// the interior side of each boundary line.
func (p Polygon) MirrorAcrossEdges(pt Vec) []Vec {
	edges := p.Edges()
	out := make([]Vec, len(edges))
	for i, e := range edges {
		out[i] = e.SupportingLine().Mirror(pt)
	}
	return out
}

// String implements fmt.Stringer.
func (p Polygon) String() string {
	return fmt.Sprintf("Polygon(%d vertices, area %.2f)", len(p.vertices), p.Area())
}

// selfIntersects reports whether any two non-adjacent edges intersect, or
// adjacent edges overlap beyond their shared vertex.
func (p Polygon) selfIntersects() bool {
	edges := p.Edges()
	n := len(edges)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			adjacent := j == i+1 || (i == 0 && j == n-1)
			if adjacent {
				if edges[i].IntersectsProperly(edges[j]) {
					return true
				}
				continue
			}
			if _, ok := edges[i].Intersect(edges[j]); ok {
				return true
			}
		}
	}
	return false
}

// SamplePoints returns points on a regular grid of the given spacing that
// fall strictly inside the polygon (margin from the boundary). It is used
// to pick evaluation sites across an area.
func (p Polygon) SamplePoints(spacing, margin float64) []Vec {
	if spacing <= 0 {
		return nil
	}
	min, max := p.BoundingBox()
	var pts []Vec
	for y := min.Y + spacing/2; y < max.Y; y += spacing {
		for x := min.X + spacing/2; x < max.X; x += spacing {
			q := Vec{x, y}
			if p.ContainsStrict(q, margin) {
				pts = append(pts, q)
			}
		}
	}
	return pts
}
