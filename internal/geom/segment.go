package geom

import (
	"fmt"
	"math"
)

// Segment is a closed line segment from A to B.
type Segment struct {
	A, B Vec
}

// Seg is shorthand for constructing a Segment.
func Seg(a, b Vec) Segment { return Segment{A: a, B: b} }

// Len returns the segment length.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Dir returns the (unnormalized) direction B − A.
func (s Segment) Dir() Vec { return s.B.Sub(s.A) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Vec { return s.A.Lerp(s.B, 0.5) }

// At returns the point A + t·(B−A).
func (s Segment) At(t float64) Vec { return s.A.Lerp(s.B, t) }

// String implements fmt.Stringer.
func (s Segment) String() string { return fmt.Sprintf("[%v → %v]", s.A, s.B) }

// Contains reports whether p lies on the segment within tol.
func (s Segment) Contains(p Vec, tol float64) bool {
	d := s.Dir()
	l2 := d.Len2()
	if l2 < tol*tol {
		return s.A.ApproxEqual(p, tol)
	}
	// Perpendicular distance from the supporting line.
	if math.Abs(d.Cross(p.Sub(s.A)))/math.Sqrt(l2) > tol {
		return false
	}
	t := p.Sub(s.A).Dot(d) / l2
	return t >= -tol && t <= 1+tol
}

// ClosestPoint returns the point on the segment closest to p.
func (s Segment) ClosestPoint(p Vec) Vec {
	d := s.Dir()
	l2 := d.Len2()
	if l2 < Eps*Eps {
		return s.A
	}
	t := p.Sub(s.A).Dot(d) / l2
	t = math.Max(0, math.Min(1, t))
	return s.At(t)
}

// DistTo returns the Euclidean distance from p to the segment.
func (s Segment) DistTo(p Vec) float64 { return s.ClosestPoint(p).Dist(p) }

// Intersect computes the intersection of two segments. ok reports whether
// the segments cross (including touching at endpoints). Overlapping
// collinear segments report ok with one representative point (the first
// overlap endpoint encountered).
func (s Segment) Intersect(o Segment) (p Vec, ok bool) {
	r := s.Dir()
	q := o.Dir()
	denom := r.Cross(q)
	diff := o.A.Sub(s.A)
	if math.Abs(denom) < Eps {
		// Parallel. Check for collinear overlap.
		if math.Abs(diff.Cross(r)) > Eps {
			return Vec{}, false
		}
		// Collinear: project o's endpoints onto s.
		rl2 := r.Len2()
		if rl2 < Eps*Eps {
			if o.Contains(s.A, Eps) {
				return s.A, true
			}
			return Vec{}, false
		}
		t0 := diff.Dot(r) / rl2
		t1 := o.B.Sub(s.A).Dot(r) / rl2
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		lo := math.Max(0, t0)
		hi := math.Min(1, t1)
		if lo > hi+Eps {
			return Vec{}, false
		}
		return s.At(lo), true
	}
	t := diff.Cross(q) / denom
	u := diff.Cross(r) / denom
	if t < -Eps || t > 1+Eps || u < -Eps || u > 1+Eps {
		return Vec{}, false
	}
	return s.At(t), true
}

// IntersectsProperly reports whether the two segments cross at a single
// interior point of both (endpoint touches and collinear overlaps do not
// count). This is the predicate used for wall-blockage tests where grazing
// an endpoint should not register as an obstruction.
func (s Segment) IntersectsProperly(o Segment) bool {
	r := s.Dir()
	q := o.Dir()
	denom := r.Cross(q)
	if math.Abs(denom) < Eps {
		return false
	}
	diff := o.A.Sub(s.A)
	t := diff.Cross(q) / denom
	u := diff.Cross(r) / denom
	return t > Eps && t < 1-Eps && u > Eps && u < 1-Eps
}

// Line is an infinite line through Point with direction Dir.
type Line struct {
	Point Vec
	Dir   Vec
}

// LineThrough returns the line through a and b.
func LineThrough(a, b Vec) Line { return Line{Point: a, Dir: b.Sub(a)} }

// SupportingLine returns the infinite line containing the segment.
func (s Segment) SupportingLine() Line { return LineThrough(s.A, s.B) }

// Mirror reflects p across the line. This is the primitive behind the
// paper's virtual-AP construction (Fig. 4): a VAP is the mirror image of a
// real AP across a boundary edge.
func (l Line) Mirror(p Vec) Vec {
	d := l.Dir
	l2 := d.Len2()
	if l2 < Eps*Eps {
		// Degenerate line: mirror across the point.
		return l.Point.Scale(2).Sub(p)
	}
	t := p.Sub(l.Point).Dot(d) / l2
	foot := l.Point.Add(d.Scale(t))
	return foot.Scale(2).Sub(p)
}

// DistTo returns the perpendicular distance from p to the line.
func (l Line) DistTo(p Vec) float64 {
	d := l.Dir
	ln := d.Len()
	if ln < Eps {
		return l.Point.Dist(p)
	}
	return math.Abs(d.Cross(p.Sub(l.Point))) / ln
}

// Side reports which side of the directed line p lies on: +1 left (CCW),
// −1 right (CW), 0 on the line within Eps.
func (l Line) Side(p Vec) int {
	c := l.Dir.Cross(p.Sub(l.Point))
	switch {
	case c > Eps:
		return 1
	case c < -Eps:
		return -1
	default:
		return 0
	}
}
