// Package geom provides the 2-D computational geometry primitives NomLoc
// builds on: vectors, segments, polygons, half-planes, triangulation and
// convex decomposition.
//
// All coordinates are in meters. The package is pure and deterministic:
// nothing here allocates goroutines, touches globals, or depends on
// randomness.
package geom

import (
	"fmt"
	"math"
)

// Eps is the default absolute tolerance used by the package for geometric
// predicates (collinearity, point-on-segment, degeneracy checks). The unit
// is meters; one tenth of a millimeter is far below any RF-localization
// resolution while staying well above float64 noise for room-scale
// coordinates.
const Eps = 1e-9

// Vec is a 2-D point or displacement vector.
type Vec struct {
	X, Y float64
}

// V is shorthand for constructing a Vec.
func V(x, y float64) Vec { return Vec{X: x, Y: y} }

// Add returns v + u.
func (v Vec) Add(u Vec) Vec { return Vec{v.X + u.X, v.Y + u.Y} }

// Sub returns v − u.
func (v Vec) Sub(u Vec) Vec { return Vec{v.X - u.X, v.Y - u.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Dot returns the dot product v·u.
func (v Vec) Dot(u Vec) float64 { return v.X*u.X + v.Y*u.Y }

// Cross returns the z-component of the 3-D cross product v×u. It is
// positive when u is counter-clockwise from v.
func (v Vec) Cross(u Vec) float64 { return v.X*u.Y - v.Y*u.X }

// Len returns the Euclidean length |v|.
func (v Vec) Len() float64 { return math.Hypot(v.X, v.Y) }

// Len2 returns the squared length |v|².
func (v Vec) Len2() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and u.
func (v Vec) Dist(u Vec) float64 { return v.Sub(u).Len() }

// Dist2 returns the squared Euclidean distance between v and u.
func (v Vec) Dist2(u Vec) float64 { return v.Sub(u).Len2() }

// Unit returns v normalized to length 1. The zero vector is returned
// unchanged (there is no meaningful direction to report).
func (v Vec) Unit() Vec {
	l := v.Len()
	if l < Eps {
		return Vec{}
	}
	return v.Scale(1 / l)
}

// Perp returns v rotated 90° counter-clockwise.
func (v Vec) Perp() Vec { return Vec{-v.Y, v.X} }

// Neg returns −v.
func (v Vec) Neg() Vec { return Vec{-v.X, -v.Y} }

// Lerp linearly interpolates from v to u; t=0 yields v, t=1 yields u.
func (v Vec) Lerp(u Vec, t float64) Vec {
	return Vec{v.X + (u.X-v.X)*t, v.Y + (u.Y-v.Y)*t}
}

// Rotate returns v rotated by theta radians counter-clockwise about the
// origin.
func (v Vec) Rotate(theta float64) Vec {
	s, c := math.Sincos(theta)
	return Vec{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// Angle returns the angle of v in radians, in (−π, π].
func (v Vec) Angle() float64 { return math.Atan2(v.Y, v.X) }

// ApproxEqual reports whether v and u coincide within tol in each
// coordinate.
func (v Vec) ApproxEqual(u Vec, tol float64) bool {
	return math.Abs(v.X-u.X) <= tol && math.Abs(v.Y-u.Y) <= tol
}

// IsFinite reports whether both coordinates are finite numbers.
func (v Vec) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0)
}

// String implements fmt.Stringer.
func (v Vec) String() string { return fmt.Sprintf("(%.3f, %.3f)", v.X, v.Y) }

// Orientation classifies the turn a→b→c.
type Orientation int

// Turn directions. Collinear is deliberately the zero value so that the
// predicate's "no turn" outcome is the type's default.
const (
	Collinear Orientation = iota
	CCW
	CW
)

// String implements fmt.Stringer.
func (o Orientation) String() string {
	switch o {
	case CCW:
		return "ccw"
	case CW:
		return "cw"
	default:
		return "collinear"
	}
}

// Orient returns the orientation of the ordered triple (a, b, c): CCW if
// they make a left turn, CW for a right turn, Collinear within Eps.
func Orient(a, b, c Vec) Orientation {
	cross := b.Sub(a).Cross(c.Sub(a))
	switch {
	case cross > Eps:
		return CCW
	case cross < -Eps:
		return CW
	default:
		return Collinear
	}
}

// Centroid returns the arithmetic mean of pts. It returns the zero vector
// for an empty slice.
func Centroid(pts []Vec) Vec {
	if len(pts) == 0 {
		return Vec{}
	}
	var sum Vec
	for _, p := range pts {
		sum = sum.Add(p)
	}
	return sum.Scale(1 / float64(len(pts)))
}

// BoundingBox returns the axis-aligned bounding box (min, max) of pts.
// It returns zero vectors for an empty slice.
func BoundingBox(pts []Vec) (min, max Vec) {
	if len(pts) == 0 {
		return Vec{}, Vec{}
	}
	min, max = pts[0], pts[0]
	for _, p := range pts[1:] {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
	}
	return min, max
}
