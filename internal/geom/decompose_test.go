package geom

import (
	"math"
	"testing"
)

func TestTriangulateSquare(t *testing.T) {
	tris, err := Triangulate(Rect(0, 0, 4, 4))
	if err != nil {
		t.Fatalf("Triangulate: %v", err)
	}
	if len(tris) != 2 {
		t.Errorf("len = %d, want 2", len(tris))
	}
	var area float64
	for _, tr := range tris {
		area += tr.Area()
	}
	if math.Abs(area-16) > 1e-9 {
		t.Errorf("total area = %v, want 16", area)
	}
}

func TestTriangulateLShape(t *testing.T) {
	l := lShape()
	tris, err := Triangulate(l)
	if err != nil {
		t.Fatalf("Triangulate: %v", err)
	}
	if len(tris) != l.NumVertices()-2 {
		t.Errorf("len = %d, want %d", len(tris), l.NumVertices()-2)
	}
	var area float64
	for _, tr := range tris {
		area += tr.Area()
		// Every triangle centroid must lie inside the original polygon.
		if !l.Contains(tr.Centroid()) {
			t.Errorf("triangle centroid %v outside polygon", tr.Centroid())
		}
	}
	if math.Abs(area-l.Area()) > 1e-9 {
		t.Errorf("total area = %v, want %v", area, l.Area())
	}
}

func TestTriangulateCWInput(t *testing.T) {
	cw := Polygon{vertices: []Vec{{0, 0}, {0, 4}, {4, 4}, {4, 0}}}
	tris, err := Triangulate(cw)
	if err != nil {
		t.Fatalf("Triangulate CW: %v", err)
	}
	var area float64
	for _, tr := range tris {
		area += tr.Area()
	}
	if math.Abs(area-16) > 1e-9 {
		t.Errorf("area = %v, want 16", area)
	}
}

func TestTriangleContains(t *testing.T) {
	tr := Triangle{A: V(0, 0), B: V(4, 0), C: V(0, 4)}
	if !tr.Contains(V(1, 1)) {
		t.Error("interior point rejected")
	}
	if !tr.Contains(V(2, 0)) {
		t.Error("edge point rejected")
	}
	if tr.Contains(V(3, 3)) {
		t.Error("exterior point accepted")
	}
}

func TestConvexDecomposeConvexPassthrough(t *testing.T) {
	sq := Rect(0, 0, 4, 4)
	pieces, err := ConvexDecompose(sq)
	if err != nil {
		t.Fatalf("ConvexDecompose: %v", err)
	}
	if len(pieces) != 1 {
		t.Fatalf("len = %d, want 1", len(pieces))
	}
	if math.Abs(pieces[0].Area()-16) > 1e-9 {
		t.Errorf("area = %v", pieces[0].Area())
	}
}

func TestConvexDecomposeLShape(t *testing.T) {
	l := lShape()
	pieces, err := ConvexDecompose(l)
	if err != nil {
		t.Fatalf("ConvexDecompose: %v", err)
	}
	if len(pieces) < 2 {
		t.Fatalf("L-shape should need ≥ 2 pieces, got %d", len(pieces))
	}
	if len(pieces) > 3 {
		t.Errorf("Hertel–Mehlhorn should merge an L into ≤ 3 pieces, got %d", len(pieces))
	}
	var area float64
	for i, p := range pieces {
		if !p.IsConvex() {
			t.Errorf("piece %d not convex", i)
		}
		if !p.IsCCW() {
			t.Errorf("piece %d not CCW", i)
		}
		area += p.Area()
		if !l.Contains(p.Centroid()) {
			t.Errorf("piece %d centroid outside the original", i)
		}
	}
	if math.Abs(area-l.Area()) > 1e-6 {
		t.Errorf("piece areas sum to %v, want %v", area, l.Area())
	}
}

func TestConvexDecomposeUShape(t *testing.T) {
	u := MustPolygon([]Vec{
		{0, 0}, {12, 0}, {12, 8}, {9, 8}, {9, 3}, {3, 3}, {3, 8}, {0, 8},
	})
	pieces, err := ConvexDecompose(u)
	if err != nil {
		t.Fatalf("ConvexDecompose: %v", err)
	}
	var area float64
	for i, p := range pieces {
		if !p.IsConvex() {
			t.Errorf("piece %d not convex", i)
		}
		area += p.Area()
	}
	if math.Abs(area-u.Area()) > 1e-6 {
		t.Errorf("piece areas sum to %v, want %v", area, u.Area())
	}
}

func TestConvexDecomposeCoversInterior(t *testing.T) {
	l := lShape()
	pieces, err := ConvexDecompose(l)
	if err != nil {
		t.Fatalf("ConvexDecompose: %v", err)
	}
	// Every interior sample of the original must be in some piece, and
	// every piece sample must be inside the original.
	for _, q := range l.SamplePoints(0.5, 0.1) {
		if PieceContaining(pieces, q) < 0 {
			t.Errorf("interior point %v not covered by any piece", q)
		}
	}
	for i, p := range pieces {
		for _, q := range p.SamplePoints(0.5, 0.1) {
			if !l.Contains(q) {
				t.Errorf("piece %d sample %v escapes the original", i, q)
			}
		}
	}
}

func TestPieceContaining(t *testing.T) {
	pieces := []Polygon{Rect(0, 0, 2, 2), Rect(2, 0, 4, 2)}
	if got := PieceContaining(pieces, V(1, 1)); got != 0 {
		t.Errorf("PieceContaining = %d, want 0", got)
	}
	if got := PieceContaining(pieces, V(3, 1)); got != 1 {
		t.Errorf("PieceContaining = %d, want 1", got)
	}
	if got := PieceContaining(pieces, V(9, 9)); got != -1 {
		t.Errorf("PieceContaining = %d, want -1", got)
	}
}
