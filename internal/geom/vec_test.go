package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecBasics(t *testing.T) {
	a := V(3, 4)
	b := V(1, -2)

	if got := a.Add(b); got != V(4, 2) {
		t.Errorf("Add = %v, want (4, 2)", got)
	}
	if got := a.Sub(b); got != V(2, 6) {
		t.Errorf("Sub = %v, want (2, 6)", got)
	}
	if got := a.Scale(2); got != V(6, 8) {
		t.Errorf("Scale = %v, want (6, 8)", got)
	}
	if got := a.Dot(b); got != 3-8 {
		t.Errorf("Dot = %v, want -5", got)
	}
	if got := a.Cross(b); got != -6-4 {
		t.Errorf("Cross = %v, want -10", got)
	}
	if got := a.Len(); got != 5 {
		t.Errorf("Len = %v, want 5", got)
	}
	if got := a.Len2(); got != 25 {
		t.Errorf("Len2 = %v, want 25", got)
	}
	if got := a.Dist(b); math.Abs(got-math.Sqrt(4+36)) > 1e-12 {
		t.Errorf("Dist = %v", got)
	}
	if got := a.Neg(); got != V(-3, -4) {
		t.Errorf("Neg = %v", got)
	}
}

func TestVecUnit(t *testing.T) {
	u := V(3, 4).Unit()
	if math.Abs(u.Len()-1) > 1e-12 {
		t.Errorf("Unit length = %v, want 1", u.Len())
	}
	if got := (Vec{}).Unit(); got != (Vec{}) {
		t.Errorf("Unit of zero = %v, want zero", got)
	}
}

func TestVecPerp(t *testing.T) {
	v := V(2, 1)
	p := v.Perp()
	if math.Abs(v.Dot(p)) > 1e-12 {
		t.Errorf("Perp not orthogonal: dot = %v", v.Dot(p))
	}
	if v.Cross(p) <= 0 {
		t.Error("Perp should be CCW from v")
	}
}

func TestVecLerp(t *testing.T) {
	a, b := V(0, 0), V(10, 20)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != V(5, 10) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestVecRotate(t *testing.T) {
	v := V(1, 0)
	got := v.Rotate(math.Pi / 2)
	if !got.ApproxEqual(V(0, 1), 1e-12) {
		t.Errorf("Rotate(π/2) = %v, want (0, 1)", got)
	}
	got = v.Rotate(math.Pi)
	if !got.ApproxEqual(V(-1, 0), 1e-12) {
		t.Errorf("Rotate(π) = %v, want (-1, 0)", got)
	}
}

func TestVecAngle(t *testing.T) {
	if got := V(1, 1).Angle(); math.Abs(got-math.Pi/4) > 1e-12 {
		t.Errorf("Angle = %v, want π/4", got)
	}
}

func TestVecIsFinite(t *testing.T) {
	if !V(1, 2).IsFinite() {
		t.Error("finite vec reported non-finite")
	}
	if V(math.NaN(), 0).IsFinite() {
		t.Error("NaN vec reported finite")
	}
	if V(0, math.Inf(1)).IsFinite() {
		t.Error("Inf vec reported finite")
	}
}

func TestOrient(t *testing.T) {
	tests := []struct {
		name    string
		a, b, c Vec
		want    Orientation
	}{
		{"left turn", V(0, 0), V(1, 0), V(1, 1), CCW},
		{"right turn", V(0, 0), V(1, 0), V(1, -1), CW},
		{"collinear", V(0, 0), V(1, 0), V(2, 0), Collinear},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Orient(tt.a, tt.b, tt.c); got != tt.want {
				t.Errorf("Orient = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCentroid(t *testing.T) {
	got := Centroid([]Vec{V(0, 0), V(2, 0), V(2, 2), V(0, 2)})
	if !got.ApproxEqual(V(1, 1), 1e-12) {
		t.Errorf("Centroid = %v, want (1, 1)", got)
	}
	if got := Centroid(nil); got != (Vec{}) {
		t.Errorf("Centroid(nil) = %v, want zero", got)
	}
}

func TestBoundingBox(t *testing.T) {
	min, max := BoundingBox([]Vec{V(1, 5), V(-2, 3), V(4, -1)})
	if min != V(-2, -1) || max != V(4, 5) {
		t.Errorf("BoundingBox = %v, %v", min, max)
	}
	min, max = BoundingBox(nil)
	if min != (Vec{}) || max != (Vec{}) {
		t.Error("BoundingBox(nil) should be zero")
	}
}

func TestOrientationString(t *testing.T) {
	if CCW.String() != "ccw" || CW.String() != "cw" || Collinear.String() != "collinear" {
		t.Error("Orientation.String mismatch")
	}
}

// clampCoord maps an arbitrary float into a well-conditioned coordinate
// range for property tests.
func clampCoord(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1000)
}

func clampVec(v Vec) Vec { return Vec{clampCoord(v.X), clampCoord(v.Y)} }

func TestPropDotCommutative(t *testing.T) {
	f := func(a, b Vec) bool {
		a, b = clampVec(a), clampVec(b)
		return math.Abs(a.Dot(b)-b.Dot(a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCrossAntisymmetric(t *testing.T) {
	f := func(a, b Vec) bool {
		a, b = clampVec(a), clampVec(b)
		return math.Abs(a.Cross(b)+b.Cross(a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropTriangleInequality(t *testing.T) {
	f := func(a, b, c Vec) bool {
		a, b, c = clampVec(a), clampVec(b), clampVec(c)
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropRotatePreservesLength(t *testing.T) {
	f := func(v Vec, theta float64) bool {
		v = clampVec(v)
		theta = clampCoord(theta)
		return math.Abs(v.Rotate(theta).Len()-v.Len()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddSubRoundtrip(t *testing.T) {
	f := func(a, b Vec) bool {
		a, b = clampVec(a), clampVec(b)
		return a.Add(b).Sub(b).ApproxEqual(a, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
