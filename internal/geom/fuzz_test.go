package geom

import (
	"math"
	"math/rand"
	"testing"
)

// randomStarPolygon generates a random simple polygon: vertices at sorted
// angles around a center with random radii. Star-shaped polygons are
// always simple, which makes them ideal fuzz inputs for triangulation and
// decomposition.
func randomStarPolygon(rng *rand.Rand, n int) Polygon {
	angles := make([]float64, n)
	for i := range angles {
		angles[i] = rng.Float64() * 2 * math.Pi
	}
	// Sort ascending (insertion sort; n is small).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && angles[j-1] > angles[j]; j-- {
			angles[j-1], angles[j] = angles[j], angles[j-1]
		}
	}
	// Enforce minimum angular separation to avoid near-duplicate vertices.
	verts := make([]Vec, 0, n)
	prev := -1.0
	for _, a := range angles {
		if a-prev < 0.05 {
			continue
		}
		prev = a
		r := 2 + rng.Float64()*8
		verts = append(verts, V(r*math.Cos(a), r*math.Sin(a)))
	}
	if len(verts) < 3 {
		return Rect(0, 0, 1, 1)
	}
	p, err := NewPolygon(verts)
	if err != nil {
		return Rect(0, 0, 1, 1)
	}
	return p
}

func TestFuzzTriangulatePreservesArea(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 200; trial++ {
		p := randomStarPolygon(rng, 4+rng.Intn(12))
		tris, err := Triangulate(p)
		if err != nil {
			t.Fatalf("trial %d: triangulate %v: %v", trial, p, err)
		}
		if len(tris) != p.NumVertices()-2 {
			t.Fatalf("trial %d: %d triangles for %d vertices", trial, len(tris), p.NumVertices())
		}
		var area float64
		for _, tr := range tris {
			area += tr.Area()
		}
		if math.Abs(area-p.Area()) > 1e-6*(1+p.Area()) {
			t.Fatalf("trial %d: triangle area %v vs polygon %v", trial, area, p.Area())
		}
	}
}

func TestFuzzConvexDecomposeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	for trial := 0; trial < 120; trial++ {
		p := randomStarPolygon(rng, 4+rng.Intn(10))
		pieces, err := ConvexDecompose(p)
		if err != nil {
			t.Fatalf("trial %d: decompose: %v", trial, err)
		}
		var area float64
		for pi, piece := range pieces {
			if !piece.IsConvex() {
				t.Fatalf("trial %d: piece %d not convex", trial, pi)
			}
			if !piece.IsCCW() {
				t.Fatalf("trial %d: piece %d not CCW", trial, pi)
			}
			area += piece.Area()
			if !p.Contains(piece.Centroid()) {
				t.Fatalf("trial %d: piece %d centroid escapes the polygon", trial, pi)
			}
		}
		if math.Abs(area-p.Area()) > 1e-6*(1+p.Area()) {
			t.Fatalf("trial %d: pieces area %v vs polygon %v", trial, area, p.Area())
		}
	}
}

func TestFuzzMirrorConstraintsConsistent(t *testing.T) {
	// For any convex piece, the VAP boundary constraints built from an
	// interior reference must accept interior samples and reject mirrored
	// exterior points.
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 100; trial++ {
		p := randomStarPolygon(rng, 4+rng.Intn(8))
		pieces, err := ConvexDecompose(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, piece := range pieces {
			ref := piece.Centroid()
			mirrors := piece.MirrorAcrossEdges(ref)
			for mi, m := range mirrors {
				h := HalfPlaneCloserTo(ref, m)
				if !h.Contains(ref, 1e-9) {
					t.Fatalf("trial %d: reference violates its own constraint %d", trial, mi)
				}
				// The mirror itself must violate (it is on the far side),
				// unless the reference sits on the edge (degenerate thin
				// piece).
				if ref.Dist(m) > 1e-6 && h.Contains(m, -1e-9) {
					t.Fatalf("trial %d: mirror %d satisfies the constraint", trial, mi)
				}
			}
		}
	}
}

func TestFuzzFeasibleRegionShrinks(t *testing.T) {
	// Adding constraints can only shrink (or empty) the feasible region.
	rng := rand.New(rand.NewSource(2027))
	for trial := 0; trial < 100; trial++ {
		bound := Rect(0, 0, 10, 10)
		var cons []HalfPlane
		prevArea := bound.Area()
		for k := 0; k < 6; k++ {
			cons = append(cons, HalfPlane{
				Ax: rng.NormFloat64(),
				Ay: rng.NormFloat64(),
				B:  rng.NormFloat64() * 6,
			})
			region, ok := FeasibleRegion(bound, cons)
			if !ok {
				break // emptied: also a valid shrink
			}
			if region.Area() > prevArea+1e-9 {
				t.Fatalf("trial %d: region grew from %v to %v", trial, prevArea, region.Area())
			}
			prevArea = region.Area()
		}
	}
}
