package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHalfPlaneCloserTo(t *testing.T) {
	p, q := V(0, 0), V(10, 0)
	h := HalfPlaneCloserTo(p, q)
	// Points left of x=5 are closer to p.
	if !h.Contains(V(2, 3), 1e-9) {
		t.Error("point closer to p rejected")
	}
	if h.Contains(V(8, -1), 1e-9) {
		t.Error("point closer to q accepted")
	}
	// The bisector itself is included.
	if !h.Contains(V(5, 100), 1e-9) {
		t.Error("bisector point rejected")
	}
}

func TestPropHalfPlaneMatchesDistance(t *testing.T) {
	f := func(p, q, z Vec) bool {
		p, q, z = clampVec(p), clampVec(q), clampVec(z)
		if p.Dist(q) < 1e-6 {
			return true
		}
		h := HalfPlaneCloserTo(p, q)
		closer := z.Dist2(p) <= z.Dist2(q)+1e-6
		return h.Contains(z, 1e-6) == closer
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHalfPlaneViolation(t *testing.T) {
	h := HalfPlane{Ax: 1, Ay: 0, B: 5} // x ≤ 5
	if got := h.Violation(V(3, 0)); got != 0 {
		t.Errorf("Violation inside = %v", got)
	}
	if got := h.Violation(V(8, 0)); math.Abs(got-3) > 1e-12 {
		t.Errorf("Violation = %v, want 3", got)
	}
}

func TestHalfPlaneRelax(t *testing.T) {
	h := HalfPlane{Ax: 1, Ay: 0, B: 5}
	r := h.Relax(2)
	if !r.Contains(V(6.5, 0), 1e-9) {
		t.Error("relaxed constraint should admit x=6.5")
	}
	if r.Contains(V(7.5, 0), 1e-9) {
		t.Error("relaxed constraint should reject x=7.5")
	}
}

func TestHalfPlaneBoundary(t *testing.T) {
	h := HalfPlane{Ax: 0, Ay: 2, B: 8} // y ≤ 4
	l, ok := h.Boundary()
	if !ok {
		t.Fatal("Boundary not ok")
	}
	if math.Abs(l.DistTo(V(100, 4))) > 1e-9 {
		t.Error("boundary line is not y = 4")
	}
	if _, ok := (HalfPlane{}).Boundary(); ok {
		t.Error("degenerate half-plane should have no boundary")
	}
}

func TestClipPolygon(t *testing.T) {
	sq := Rect(0, 0, 10, 10)

	// Clip to x ≤ 4.
	left, ok := (HalfPlane{Ax: 1, Ay: 0, B: 4}).ClipPolygon(sq)
	if !ok {
		t.Fatal("clip produced empty polygon")
	}
	if math.Abs(left.Area()-40) > 1e-9 {
		t.Errorf("clipped area = %v, want 40", left.Area())
	}

	// Clip away everything.
	if _, ok := (HalfPlane{Ax: 1, Ay: 0, B: -5}).ClipPolygon(sq); ok {
		t.Error("fully-outside clip should be empty")
	}

	// Clip that keeps everything.
	all, ok := (HalfPlane{Ax: 1, Ay: 0, B: 100}).ClipPolygon(sq)
	if !ok || math.Abs(all.Area()-100) > 1e-9 {
		t.Errorf("no-op clip changed polygon: ok=%v area=%v", ok, all.Area())
	}

	// Diagonal clip of the unit square: x + y ≤ 1 on a 1×1 square keeps a
	// triangle of area ½.
	tri, ok := (HalfPlane{Ax: 1, Ay: 1, B: 1}).ClipPolygon(Rect(0, 0, 1, 1))
	if !ok || math.Abs(tri.Area()-0.5) > 1e-9 {
		t.Errorf("diagonal clip: ok=%v area=%v, want 0.5", ok, tri.Area())
	}
}

func TestFeasibleRegion(t *testing.T) {
	sq := Rect(0, 0, 10, 10)
	region, ok := FeasibleRegion(sq, []HalfPlane{
		{Ax: 1, Ay: 0, B: 6},                                     // x ≤ 6
		{Ax: -1, Ay: 0, B: -2} /* x ≥ 2 */, {Ax: 0, Ay: 1, B: 5}, // y ≤ 5
	})
	if !ok {
		t.Fatal("feasible region empty")
	}
	if math.Abs(region.Area()-4*5) > 1e-9 {
		t.Errorf("region area = %v, want 20", region.Area())
	}
	if !region.Centroid().ApproxEqual(V(4, 2.5), 1e-9) {
		t.Errorf("region centroid = %v, want (4, 2.5)", region.Centroid())
	}

	// Contradictory constraints → empty.
	if _, ok := FeasibleRegion(sq, []HalfPlane{
		{Ax: 1, Ay: 0, B: 2}, {Ax: -1, Ay: 0, B: -8},
	}); ok {
		t.Error("contradictory constraints should yield empty region")
	}
}

func TestFeasibleRegionFromProximity(t *testing.T) {
	// Three APs at known sites; the object at (3, 3) is closest to AP0.
	aps := []Vec{{2, 2}, {8, 2}, {5, 8}}
	obj := V(3, 3)
	bound := Rect(0, 0, 10, 10)
	var cons []HalfPlane
	for i := range aps {
		for j := range aps {
			if i == j {
				continue
			}
			if obj.Dist2(aps[i]) <= obj.Dist2(aps[j]) {
				cons = append(cons, HalfPlaneCloserTo(aps[i], aps[j]))
			}
		}
	}
	region, ok := FeasibleRegion(bound, cons)
	if !ok {
		t.Fatal("true proximity constraints must be feasible")
	}
	if !region.Contains(obj) {
		t.Errorf("region %v does not contain the true position %v", region, obj)
	}
}

func TestChebyshevRadius(t *testing.T) {
	cons := []HalfPlane{
		{Ax: 1, Ay: 0, B: 10}, // x ≤ 10
		{Ax: -1, Ay: 0, B: 0}, // x ≥ 0
		{Ax: 0, Ay: 1, B: 10}, // y ≤ 10
		{Ax: 0, Ay: -1, B: 0}, // y ≥ 0
	}
	if got := ChebyshevRadius(V(5, 5), cons); math.Abs(got-5) > 1e-9 {
		t.Errorf("center radius = %v, want 5", got)
	}
	if got := ChebyshevRadius(V(1, 5), cons); math.Abs(got-1) > 1e-9 {
		t.Errorf("off-center radius = %v, want 1", got)
	}
	if got := ChebyshevRadius(V(12, 5), cons); got >= 0 {
		t.Errorf("outside point should have negative radius, got %v", got)
	}
	if got := ChebyshevRadius(V(0, 0), nil); !math.IsInf(got, 1) {
		t.Errorf("no constraints should give +Inf, got %v", got)
	}
}
