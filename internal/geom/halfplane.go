package geom

import (
	"fmt"
	"math"
)

// HalfPlane is the closed region { z : A·z ≤ B } where A = (Ax, Ay).
// It is the geometric form of one row of the paper's constraint system
// Āz ≤ b̄ (Eq. 8, 9, 13).
type HalfPlane struct {
	Ax, Ay float64
	B      float64
}

// HalfPlaneCloserTo returns the half-plane of points at least as close to p
// as to q, i.e. the paper's Eq. 7:
//
//	2(qx−px)·x + 2(qy−py)·y ≤ qx²+qy² − px²−py²
func HalfPlaneCloserTo(p, q Vec) HalfPlane {
	return HalfPlane{
		Ax: 2 * (q.X - p.X),
		Ay: 2 * (q.Y - p.Y),
		B:  q.Len2() - p.Len2(),
	}
}

// Contains reports whether z satisfies the constraint within tol.
func (h HalfPlane) Contains(z Vec, tol float64) bool {
	return h.Ax*z.X+h.Ay*z.Y <= h.B+tol
}

// Violation returns max(0, A·z − B): how far z is outside the half-plane
// in constraint units.
func (h HalfPlane) Violation(z Vec) float64 {
	v := h.Ax*z.X + h.Ay*z.Y - h.B
	if v < 0 {
		return 0
	}
	return v
}

// Normal returns the outward normal (Ax, Ay).
func (h HalfPlane) Normal() Vec { return Vec{h.Ax, h.Ay} }

// NormalLen returns |(Ax, Ay)|.
func (h HalfPlane) NormalLen() float64 { return math.Hypot(h.Ax, h.Ay) }

// Relax returns the half-plane loosened by t: { z : A·z ≤ B + t }.
func (h HalfPlane) Relax(t float64) HalfPlane {
	return HalfPlane{Ax: h.Ax, Ay: h.Ay, B: h.B + t}
}

// String implements fmt.Stringer.
func (h HalfPlane) String() string {
	return fmt.Sprintf("%.3f·x + %.3f·y ≤ %.3f", h.Ax, h.Ay, h.B)
}

// Boundary returns the boundary line A·z = B. ok is false when the normal
// is degenerate (the half-plane is everything or nothing).
func (h HalfPlane) Boundary() (Line, bool) {
	n := h.Normal()
	l2 := n.Len2()
	if l2 < Eps*Eps {
		return Line{}, false
	}
	point := n.Scale(h.B / l2)
	return Line{Point: point, Dir: n.Perp()}, true
}

// ClipPolygon clips poly to the half-plane with the Sutherland–Hodgman
// step for a single clip edge. The result may be empty (ok=false) when the
// polygon lies entirely outside.
func (h HalfPlane) ClipPolygon(poly Polygon) (Polygon, bool) {
	verts := poly.vertices
	n := len(verts)
	if n == 0 {
		return Polygon{}, false
	}
	val := func(v Vec) float64 { return h.Ax*v.X + h.Ay*v.Y - h.B }
	out := make([]Vec, 0, n+4)
	for i := 0; i < n; i++ {
		cur, nxt := verts[i], verts[(i+1)%n]
		cv, nv := val(cur), val(nxt)
		curIn := cv <= Eps
		nxtIn := nv <= Eps
		if curIn {
			out = append(out, cur)
		}
		if curIn != nxtIn {
			denom := cv - nv
			if math.Abs(denom) > Eps {
				t := cv / denom
				out = append(out, cur.Lerp(nxt, t))
			}
		}
	}
	clipped, err := NewPolygon(out)
	if err != nil {
		return Polygon{}, false
	}
	return clipped, true
}

// FeasibleRegion intersects the half-planes within the bounding polygon and
// returns the resulting feasible polygon. ok is false when the intersection
// is empty (or collapses below area Eps). This is how NomLoc materializes
// "the feasible region" of the space-partition LP so its center can be
// reported as the location estimate.
func FeasibleRegion(bound Polygon, constraints []HalfPlane) (Polygon, bool) {
	region := bound.EnsureCCW()
	for _, h := range constraints {
		var ok bool
		region, ok = h.ClipPolygon(region)
		if !ok {
			return Polygon{}, false
		}
	}
	return region, true
}

// ChebyshevRadius returns the distance from z to the nearest constraint
// boundary among constraints that z satisfies; it is +Inf when there are no
// constraints and negative when z violates some constraint (the largest
// violation, normalized).
func ChebyshevRadius(z Vec, constraints []HalfPlane) float64 {
	r := math.Inf(1)
	for _, h := range constraints {
		nl := h.NormalLen()
		if nl < Eps {
			continue
		}
		slack := (h.B - (h.Ax*z.X + h.Ay*z.Y)) / nl
		if slack < r {
			r = slack
		}
	}
	return r
}
