package geom

import "fmt"

// ConvexDecompose splits a simple polygon into convex pieces. A convex
// input is returned unchanged (as a single piece). Non-convex inputs are
// ear-clipped into triangles which are then greedily merged à la
// Hertel–Mehlhorn: two pieces sharing an edge are fused whenever the union
// stays convex. The result is not guaranteed minimal but is within a
// factor of four of optimal, which is more than enough for floor plans.
//
// NomLoc needs this because the paper's virtual-AP boundary construction
// (Eq. 9) is only valid for convex areas; §IV-B.2 prescribes dividing a
// non-convex area (like the L-shaped Lobby) into convex ones, solving per
// piece, and merging the feasible results.
func ConvexDecompose(p Polygon) ([]Polygon, error) {
	poly := p.EnsureCCW()
	if poly.IsConvex() {
		return []Polygon{poly}, nil
	}
	tris, err := Triangulate(poly)
	if err != nil {
		return nil, fmt.Errorf("convex decompose: %w", err)
	}
	pieces := make([][]Vec, len(tris))
	for i, t := range tris {
		pieces[i] = []Vec{t.A, t.B, t.C}
	}

	merged := true
	for merged {
		merged = false
	outer:
		for i := 0; i < len(pieces); i++ {
			for j := i + 1; j < len(pieces); j++ {
				fused, ok := tryMerge(pieces[i], pieces[j])
				if !ok {
					continue
				}
				pieces[i] = fused
				pieces = append(pieces[:j], pieces[j+1:]...)
				merged = true
				break outer
			}
		}
	}

	out := make([]Polygon, 0, len(pieces))
	for _, verts := range pieces {
		poly, err := NewPolygon(verts)
		if err != nil {
			return nil, fmt.Errorf("convex decompose: piece invalid: %w", err)
		}
		out = append(out, poly)
	}
	return out, nil
}

// tryMerge fuses two CCW vertex rings that share exactly one edge, if the
// union is convex. Ring a must contain a directed edge (u, v) that appears
// in b as (v, u).
func tryMerge(a, b []Vec) ([]Vec, bool) {
	m, k := len(a), len(b)
	for i := 0; i < m; i++ {
		u := a[i]
		v := a[(i+1)%m]
		for l := 0; l < k; l++ {
			if !b[l].ApproxEqual(v, Eps) || !b[(l+1)%k].ApproxEqual(u, Eps) {
				continue
			}
			// Build the union: all of a starting at v and ending at u,
			// then b's vertices strictly between u and v (CCW).
			fused := make([]Vec, 0, m+k-2)
			for s := 0; s < m; s++ {
				fused = append(fused, a[(i+1+s)%m])
			}
			for s := 2; s < k; s++ {
				fused = append(fused, b[(l+s)%k])
			}
			if !ringConvex(fused) {
				return nil, false
			}
			return fused, true
		}
	}
	return nil, false
}

// ringConvex reports whether the CCW vertex ring is convex.
func ringConvex(verts []Vec) bool {
	n := len(verts)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		a := verts[i]
		b := verts[(i+1)%n]
		c := verts[(i+2)%n]
		if b.Sub(a).Cross(c.Sub(b)) < -Eps {
			return false
		}
	}
	return true
}

// PieceContaining returns the index of the first piece containing q, or −1.
func PieceContaining(pieces []Polygon, q Vec) int {
	for i, p := range pieces {
		if p.Contains(q) {
			return i
		}
	}
	return -1
}
