package geom

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// lShape is the canonical non-convex test polygon (an "L").
func lShape() Polygon {
	return MustPolygon([]Vec{
		{0, 0}, {10, 0}, {10, 4}, {4, 4}, {4, 10}, {0, 10},
	})
}

func TestNewPolygonValidation(t *testing.T) {
	if _, err := NewPolygon([]Vec{{0, 0}, {1, 0}}); !errors.Is(err, ErrTooFewVertices) {
		t.Errorf("2 vertices: err = %v, want ErrTooFewVertices", err)
	}
	if _, err := NewPolygon([]Vec{{0, 0}, {1, 0}, {2, 0}}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("collinear: err = %v, want ErrDegenerate", err)
	}
	// Bow-tie self-intersection (with nonzero signed area so the
	// degeneracy check does not trip first).
	if _, err := NewPolygon([]Vec{{0, 0}, {4, 4}, {4, 0}, {0, 2}}); !errors.Is(err, ErrSelfIntersect) {
		t.Errorf("bow-tie: err = %v, want ErrSelfIntersect", err)
	}
	// Duplicate consecutive vertices are dropped, closing vertex trimmed.
	p, err := NewPolygon([]Vec{{0, 0}, {0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}})
	if err != nil {
		t.Fatalf("NewPolygon: %v", err)
	}
	if p.NumVertices() != 4 {
		t.Errorf("NumVertices = %d, want 4", p.NumVertices())
	}
}

func TestMustPolygonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustPolygon did not panic on invalid input")
		}
	}()
	MustPolygon([]Vec{{0, 0}, {1, 0}})
}

func TestRect(t *testing.T) {
	r := Rect(5, 6, 1, 2) // deliberately swapped corners
	if r.Area() != 16 {
		t.Errorf("Area = %v, want 16", r.Area())
	}
	if !r.Contains(V(3, 4)) {
		t.Error("center not contained")
	}
	if !r.IsConvex() {
		t.Error("rect not convex")
	}
}

func TestPolygonAreaCentroid(t *testing.T) {
	sq := Rect(0, 0, 4, 4)
	if sq.Area() != 16 {
		t.Errorf("square area = %v", sq.Area())
	}
	if !sq.Centroid().ApproxEqual(V(2, 2), 1e-12) {
		t.Errorf("square centroid = %v", sq.Centroid())
	}

	l := lShape()
	// L area = 10×4 + 4×6 = 64.
	if math.Abs(l.Area()-64) > 1e-9 {
		t.Errorf("L area = %v, want 64", l.Area())
	}
	// Centroid of the union of the two rectangles.
	// R1 = [0,10]×[0,4] area 40 centroid (5,2); R2 = [0,4]×[4,10] area 24 centroid (2,7).
	want := V((40*5+24*2)/64.0, (40*2+24*7)/64.0)
	if !l.Centroid().ApproxEqual(want, 1e-9) {
		t.Errorf("L centroid = %v, want %v", l.Centroid(), want)
	}
}

func TestPolygonPerimeter(t *testing.T) {
	if got := Rect(0, 0, 3, 4).Perimeter(); math.Abs(got-14) > 1e-12 {
		t.Errorf("Perimeter = %v, want 14", got)
	}
}

func TestPolygonWinding(t *testing.T) {
	cw := Polygon{vertices: []Vec{{0, 0}, {0, 4}, {4, 4}, {4, 0}}}
	if cw.IsCCW() {
		t.Fatal("test polygon should be CW")
	}
	ccw := cw.EnsureCCW()
	if !ccw.IsCCW() {
		t.Error("EnsureCCW did not flip winding")
	}
	if math.Abs(ccw.Area()-cw.Area()) > 1e-12 {
		t.Error("EnsureCCW changed area")
	}
	if ccw2 := ccw.EnsureCCW(); !ccw2.IsCCW() {
		t.Error("EnsureCCW not idempotent")
	}
}

func TestPolygonIsConvex(t *testing.T) {
	if !Rect(0, 0, 1, 1).IsConvex() {
		t.Error("rect should be convex")
	}
	if lShape().IsConvex() {
		t.Error("L-shape should not be convex")
	}
	// Collinear run on an edge stays convex.
	p := MustPolygon([]Vec{{0, 0}, {2, 0}, {4, 0}, {4, 4}, {0, 4}})
	if !p.IsConvex() {
		t.Error("polygon with collinear edge vertices should be convex")
	}
}

func TestPolygonContains(t *testing.T) {
	l := lShape()
	tests := []struct {
		p    Vec
		want bool
	}{
		{V(2, 2), true},   // inside lower arm
		{V(2, 8), true},   // inside upper arm
		{V(8, 2), true},   // inside right arm
		{V(8, 8), false},  // the notch
		{V(5, 5), false},  // the notch
		{V(0, 0), true},   // corner
		{V(5, 0), true},   // edge
		{V(-1, 5), false}, // outside
		{V(4, 7), true},   // on inner edge
	}
	for _, tt := range tests {
		if got := l.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPolygonContainsStrict(t *testing.T) {
	sq := Rect(0, 0, 10, 10)
	if !sq.ContainsStrict(V(5, 5), 1) {
		t.Error("deep interior point rejected")
	}
	if sq.ContainsStrict(V(0.5, 5), 1) {
		t.Error("near-edge point accepted with margin 1")
	}
	if sq.ContainsStrict(V(-1, 5), 0) {
		t.Error("exterior point accepted")
	}
}

func TestPolygonDistAndClamp(t *testing.T) {
	sq := Rect(0, 0, 10, 10)
	if got := sq.DistToBoundary(V(5, 3)); math.Abs(got-3) > 1e-12 {
		t.Errorf("DistToBoundary = %v, want 3", got)
	}
	if got := sq.Clamp(V(5, 5)); got != V(5, 5) {
		t.Errorf("Clamp of interior moved the point: %v", got)
	}
	if got := sq.Clamp(V(5, 13)); !got.ApproxEqual(V(5, 10), 1e-12) {
		t.Errorf("Clamp = %v, want (5, 10)", got)
	}
	if got := sq.ClosestBoundaryPoint(V(-3, 5)); !got.ApproxEqual(V(0, 5), 1e-12) {
		t.Errorf("ClosestBoundaryPoint = %v, want (0, 5)", got)
	}
}

func TestPolygonVertexWraparound(t *testing.T) {
	sq := Rect(0, 0, 1, 1)
	if sq.Vertex(4) != sq.Vertex(0) {
		t.Error("Vertex(4) should wrap to Vertex(0)")
	}
	if sq.Vertex(-1) != sq.Vertex(3) {
		t.Error("Vertex(-1) should wrap to Vertex(3)")
	}
}

func TestPolygonEdges(t *testing.T) {
	sq := Rect(0, 0, 1, 1)
	edges := sq.Edges()
	if len(edges) != 4 {
		t.Fatalf("len(edges) = %d", len(edges))
	}
	// Edges must chain.
	for i, e := range edges {
		next := edges[(i+1)%4]
		if !e.B.ApproxEqual(next.A, 1e-12) {
			t.Errorf("edge %d does not chain", i)
		}
	}
}

func TestMirrorAcrossEdges(t *testing.T) {
	sq := Rect(0, 0, 10, 10)
	in := V(3, 4)
	mirrors := sq.MirrorAcrossEdges(in)
	if len(mirrors) != 4 {
		t.Fatalf("len(mirrors) = %d", len(mirrors))
	}
	// Every mirror must be outside the convex polygon, and the interior
	// point must be strictly closer to itself than to each mirror — that's
	// the whole premise of the VAP boundary constraints.
	for i, m := range mirrors {
		if sq.Contains(m) {
			t.Errorf("mirror %d = %v is inside the polygon", i, m)
		}
	}
	// The interior point is equidistant from the edge as its mirror and on
	// the opposite side, so any interior object q satisfies
	// dist(q, in) could exceed dist(q, mirror) only if q were outside.
	for _, q := range []Vec{V(1, 1), V(9, 9), V(5, 5)} {
		for i, m := range mirrors {
			if q.Dist(in) > q.Dist(m)+1e-9 && sq.Contains(q) {
				t.Errorf("interior q=%v closer to mirror %d than to anchor", q, i)
			}
		}
	}
}

func TestSamplePoints(t *testing.T) {
	sq := Rect(0, 0, 10, 10)
	pts := sq.SamplePoints(2, 0.5)
	if len(pts) == 0 {
		t.Fatal("no sample points")
	}
	for _, p := range pts {
		if !sq.ContainsStrict(p, 0.49) {
			t.Errorf("sample %v violates margin", p)
		}
	}
	if got := sq.SamplePoints(0, 0); got != nil {
		t.Error("non-positive spacing should return nil")
	}
	// L-shape samples must avoid the notch.
	for _, p := range lShape().SamplePoints(1, 0.25) {
		if p.X > 4.5 && p.Y > 4.5 {
			t.Errorf("sample %v inside the notch", p)
		}
	}
}

func TestPolygonVerticesCopy(t *testing.T) {
	sq := Rect(0, 0, 1, 1)
	vs := sq.Vertices()
	vs[0] = V(99, 99)
	if sq.Vertex(0) == V(99, 99) {
		t.Error("Vertices returned internal storage")
	}
}

func TestPropCentroidInsideConvex(t *testing.T) {
	f := func(w, h, ox, oy float64) bool {
		w = 1 + math.Abs(clampCoord(w))
		h = 1 + math.Abs(clampCoord(h))
		ox, oy = clampCoord(ox), clampCoord(oy)
		r := Rect(ox, oy, ox+w, oy+h)
		return r.Contains(r.Centroid())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropClampedPointContained(t *testing.T) {
	sq := Rect(0, 0, 10, 10)
	f := func(p Vec) bool {
		p = clampVec(p)
		return sq.Contains(sq.Clamp(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
