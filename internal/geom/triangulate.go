package geom

import (
	"errors"
	"math"
)

// Triangle is a triangle with CCW vertices.
type Triangle struct {
	A, B, C Vec
}

// Area returns the triangle's area.
func (t Triangle) Area() float64 {
	return math.Abs(t.B.Sub(t.A).Cross(t.C.Sub(t.A))) / 2
}

// Centroid returns the triangle's centroid.
func (t Triangle) Centroid() Vec {
	return Vec{(t.A.X + t.B.X + t.C.X) / 3, (t.A.Y + t.B.Y + t.C.Y) / 3}
}

// Contains reports whether p lies inside the triangle (boundary inclusive).
func (t Triangle) Contains(p Vec) bool {
	d1 := p.Sub(t.A).Cross(t.B.Sub(t.A))
	d2 := p.Sub(t.B).Cross(t.C.Sub(t.B))
	d3 := p.Sub(t.C).Cross(t.A.Sub(t.C))
	hasNeg := d1 < -Eps || d2 < -Eps || d3 < -Eps
	hasPos := d1 > Eps || d2 > Eps || d3 > Eps
	return !(hasNeg && hasPos)
}

// ErrTriangulation is returned when ear clipping cannot make progress,
// which indicates a non-simple input polygon.
var ErrTriangulation = errors.New("geom: triangulation failed (polygon not simple?)")

// Triangulate decomposes a simple polygon into triangles by ear clipping.
// The polygon may be non-convex. Runtime is O(n²), fine for floor plans.
func Triangulate(p Polygon) ([]Triangle, error) {
	poly := p.EnsureCCW()
	verts := append([]Vec(nil), poly.vertices...)
	if len(verts) < 3 {
		return nil, ErrTooFewVertices
	}
	tris := make([]Triangle, 0, len(verts)-2)
	for len(verts) > 3 {
		earFound := false
		n := len(verts)
		for i := 0; i < n; i++ {
			prev := verts[(i-1+n)%n]
			cur := verts[i]
			next := verts[(i+1)%n]
			if !isEar(verts, prev, cur, next, i) {
				continue
			}
			tris = append(tris, Triangle{A: prev, B: cur, C: next})
			verts = append(verts[:i], verts[i+1:]...)
			earFound = true
			break
		}
		if !earFound {
			return nil, ErrTriangulation
		}
	}
	tris = append(tris, Triangle{A: verts[0], B: verts[1], C: verts[2]})
	return tris, nil
}

// isEar reports whether vertex cur (at index i) is a convex ear: the turn
// prev→cur→next is CCW and no other polygon vertex lies inside the
// candidate triangle.
func isEar(verts []Vec, prev, cur, next Vec, i int) bool {
	cross := cur.Sub(prev).Cross(next.Sub(cur))
	if cross <= Eps {
		// Reflex or collinear vertex — not an ear.
		return false
	}
	tri := Triangle{A: prev, B: cur, C: next}
	n := len(verts)
	for j := 0; j < n; j++ {
		if j == i || j == (i-1+n)%n || j == (i+1)%n {
			continue
		}
		v := verts[j]
		// Skip vertices coinciding with the ear's corners (repeated
		// coordinates in degenerate inputs).
		if v.ApproxEqual(prev, Eps) || v.ApproxEqual(cur, Eps) || v.ApproxEqual(next, Eps) {
			continue
		}
		if tri.Contains(v) {
			return false
		}
	}
	return true
}
