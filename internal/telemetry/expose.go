package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// This file renders the registry's two export surfaces — the Prometheus
// text exposition and the JSON-ready Snapshot — plus the HTTP plumbing
// that mounts them. Both walk the same sorted view, so their ordering is
// identical and free of map iteration order by construction.

// formatValue renders a sample value exactly as Prometheus's Go client
// does (shortest round-trip representation), so fixed inputs produce
// byte-fixed output.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// WritePrometheus writes the registry in Prometheus text format
// (version 0.0.4): families sorted by name, series by label signature,
// histograms with cumulative le buckets plus _sum and _count. A nil
// registry writes nothing. Timestamps are never emitted — they would
// break byte-reproducibility and scrapers supply their own.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.view() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, helpEscaper.Replace(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one series' sample lines.
func writeSeries(w io.Writer, f familyView, s seriesEntry) error {
	switch m := s.metric.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.sig, formatValue(m.Value()))
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.sig, formatValue(m.Value()))
		return err
	case *Histogram:
		cum := m.cumulative()
		for i, le := range m.upper {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, withLE(s.sig, formatValue(le)), cum[i]); err != nil {
				return err
			}
		}
		count := m.Count()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLE(s.sig, "+Inf"), count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.sig, formatValue(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.sig, count)
		return err
	default:
		return fmt.Errorf("telemetry: unknown series type %T", s.metric)
	}
}

// withLE splices the le label into a series' label signature.
func withLE(sig, le string) string {
	if sig == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("%s,le=%q}", strings.TrimSuffix(sig, "}"), le)
}

// Handler serves the registry as GET /metrics content. A nil registry
// serves an empty (but well-formed) exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// RegisterDebug mounts the full observability surface on mux:
// GET /metrics (Prometheus exposition) and the net/http/pprof handlers
// under /debug/pprof/. Server and agent binaries share this wiring.
func RegisterDebug(mux *http.ServeMux, r *Registry) {
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Snapshot is a deterministic, JSON-marshalable export of every series —
// what nomloc-bench -telemetry prints and what tests assert against.
// Metrics appear sorted by family name, then label signature.
type Snapshot struct {
	// Metrics lists every series.
	Metrics []MetricPoint `json:"metrics"`
}

// MetricPoint is one series' state.
type MetricPoint struct {
	// Name is the family name.
	Name string `json:"name"`
	// Type is "counter", "gauge", or "histogram".
	Type string `json:"type"`
	// Labels holds the series' dimensions (omitted when unlabeled).
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter total or gauge level (histograms use the
	// fields below instead).
	Value float64 `json:"value,omitempty"`
	// Count and Sum summarize a histogram's observations.
	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	// Buckets holds a histogram's cumulative counts per finite upper
	// bound; the +Inf bucket equals Count and is omitted (it would not
	// survive JSON anyway).
	Buckets []BucketPoint `json:"buckets,omitempty"`
}

// BucketPoint is one cumulative histogram bucket.
type BucketPoint struct {
	// UpperBound is the bucket's le bound.
	UpperBound float64 `json:"le"`
	// Count is the cumulative observation count at this bound.
	Count uint64 `json:"count"`
}

// Snapshot exports the registry. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Metrics: []MetricPoint{}}
	if r == nil {
		return snap
	}
	for _, f := range r.view() {
		for _, s := range f.series {
			p := MetricPoint{
				Name:   f.name,
				Type:   f.kind.String(),
				Labels: parseSignature(s.sig),
			}
			switch m := s.metric.(type) {
			case *Counter:
				p.Value = m.Value()
			case *Gauge:
				p.Value = m.Value()
			case *Histogram:
				p.Count = m.Count()
				p.Sum = m.Sum()
				cum := m.cumulative()
				p.Buckets = make([]BucketPoint, len(m.upper))
				for i, le := range m.upper {
					p.Buckets[i] = BucketPoint{UpperBound: le, Count: cum[i]}
				}
			}
			snap.Metrics = append(snap.Metrics, p)
		}
	}
	return snap
}

// parseSignature recovers the label map from a canonical signature (the
// inverse of signature, possible because keys and values are escaped).
func parseSignature(sig string) map[string]string {
	if sig == "" {
		return nil
	}
	out := map[string]string{}
	body := strings.TrimSuffix(strings.TrimPrefix(sig, "{"), "}")
	for len(body) > 0 {
		eq := strings.Index(body, "=")
		key := body[:eq]
		rest := body[eq+1:]
		val, n := unquoteLabel(rest)
		out[key] = val
		body = strings.TrimPrefix(rest[n:], ",")
	}
	return out
}

// unquoteLabel decodes one leading quoted label value, returning the
// value and how many input bytes it spanned.
func unquoteLabel(s string) (string, int) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
			if i < len(s) {
				if s[i] == 'n' {
					b.WriteByte('\n')
				} else {
					b.WriteByte(s[i])
				}
			}
		case '"':
			return b.String(), i + 1
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String(), len(s)
}
