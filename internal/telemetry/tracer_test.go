package telemetry_test

import (
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/telemetry"
)

func TestTracerSpans(t *testing.T) {
	// Clock steps 1 s per read: Start reads once, End reads once, so each
	// span measures exactly one second.
	r := telemetry.New(stepClock(epoch, time.Second))
	tr := telemetry.NewTracer(r, 8)

	sp := tr.Start("solve")
	if d := sp.End(); d != time.Second {
		t.Errorf("span duration = %v, want 1s", d)
	}
	tr.Start("round").End()

	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "solve" || spans[1].Name != "round" {
		t.Fatalf("spans = %+v", spans)
	}
	if tr.Total() != 2 {
		t.Errorf("Total = %d", tr.Total())
	}

	// Every finished span feeds the per-name histogram.
	snap := r.Snapshot()
	var found int
	for _, m := range snap.Metrics {
		if m.Name == "nomloc_span_seconds" {
			found++
			if m.Count != 1 || m.Sum != 1 {
				t.Errorf("span series %v: count=%d sum=%v", m.Labels, m.Count, m.Sum)
			}
		}
	}
	if found != 2 {
		t.Errorf("span histogram series = %d, want 2 (solve, round)", found)
	}
}

func TestTracerRingEviction(t *testing.T) {
	r := telemetry.New(fixedClock(epoch))
	tr := telemetry.NewTracer(r, 3)
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		tr.Start(name).End()
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("ring holds %d spans, want 3", len(spans))
	}
	// Oldest first: c, d, e survive.
	for i, want := range []string{"c", "d", "e"} {
		if spans[i].Name != want {
			t.Errorf("spans[%d] = %s, want %s", i, spans[i].Name, want)
		}
	}
	if tr.Total() != 5 {
		t.Errorf("Total = %d, want 5", tr.Total())
	}
}

func TestNilTracerNoOps(t *testing.T) {
	tr := telemetry.NewTracer(nil, 8)
	if tr != nil {
		t.Fatal("nil registry did not yield nil tracer")
	}
	sp := tr.Start("x")
	if d := sp.End(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
	if tr.Spans() != nil || tr.Total() != 0 {
		t.Error("nil tracer retained state")
	}
}

func TestFixedClockSpansAreZero(t *testing.T) {
	// A pinned clock yields zero-duration spans — the mechanism that
	// keeps fixed-clock server runs byte-identical.
	r := telemetry.New(fixedClock(epoch))
	tr := telemetry.NewTracer(r, 4)
	if d := tr.Start("solve").End(); d != 0 {
		t.Errorf("fixed-clock span = %v, want 0", d)
	}
}
