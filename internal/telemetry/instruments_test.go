package telemetry_test

import (
	"context"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/telemetry"
)

func TestContextCarriesRegistry(t *testing.T) {
	r := telemetry.New(nil)
	ctx := telemetry.NewContext(context.Background(), r)
	if telemetry.FromContext(ctx) != r {
		t.Error("registry did not round-trip through context")
	}
	if telemetry.FromContext(context.Background()) != nil {
		t.Error("bare context yielded a registry")
	}
	// A nil registry leaves the context untouched.
	base := context.Background()
	if telemetry.NewContext(base, nil) != base {
		t.Error("nil registry changed the context")
	}
}

func TestPoolMetricsAccounting(t *testing.T) {
	// Clock advances 1 s per read. Submit reads nothing; Claim reads once;
	// Finish (with a busy counter) reads once.
	r := telemetry.New(stepClock(epoch, time.Second))
	pm := telemetry.NewPoolMetrics(r, "nomloc_pool")
	pm.Capacity.Set(4)

	submitted := epoch
	pm.Submit(3)
	if pm.Queued.Value() != 3 || pm.Waiting.Value() != 3 {
		t.Fatalf("after submit: queued=%v waiting=%v", pm.Queued.Value(), pm.Waiting.Value())
	}

	busy := pm.WorkerBusy(0)
	claimed := pm.Claim(submitted)
	if pm.Waiting.Value() != 2 || pm.Running.Value() != 1 {
		t.Errorf("after claim: waiting=%v running=%v", pm.Waiting.Value(), pm.Running.Value())
	}
	if pm.QueueWait.Count() != 1 {
		t.Errorf("queue wait observations = %d", pm.QueueWait.Count())
	}

	pm.Finish(busy, claimed)
	if pm.Running.Value() != 0 || pm.Done.Value() != 1 {
		t.Errorf("after finish: running=%v done=%v", pm.Running.Value(), pm.Done.Value())
	}
	// One clock step between claim and finish → one busy second.
	if busy.Value() != 1 {
		t.Errorf("worker busy seconds = %v, want 1", busy.Value())
	}

	// The two never-claimed tasks get abandoned on pool teardown.
	pm.Abandon(2)
	if pm.Waiting.Value() != 0 {
		t.Errorf("waiting after abandon = %v", pm.Waiting.Value())
	}
}

func TestPoolMetricsWorkerSeries(t *testing.T) {
	r := telemetry.New(fixedClock(epoch))
	pm := telemetry.NewPoolMetrics(r, "nomloc_pool")
	a, b := pm.WorkerBusy(0), pm.WorkerBusy(1)
	if a == b {
		t.Fatal("worker busy counters share a series")
	}
	if pm.WorkerBusy(0) != a {
		t.Error("worker busy counter not stable across calls")
	}
}

func TestNilPoolMetricsNoOp(t *testing.T) {
	pm := telemetry.NewPoolMetrics(nil, "x")
	if pm != nil {
		t.Fatal("nil registry did not yield nil pool metrics")
	}
	pm.Submit(3)
	at := pm.Claim(epoch)
	pm.Finish(pm.WorkerBusy(0), at)
	pm.Abandon(1)
	if !pm.Now().IsZero() {
		t.Error("nil pool metrics Now() not zero")
	}
}

func TestSolveMetrics(t *testing.T) {
	r := telemetry.New(nil)
	sm := telemetry.NewSolveMetrics(r)
	sm.Solves.Inc()
	sm.Infeasible.Inc()
	sm.Relaxed.Add(2)
	sm.Judgements.Observe(12)
	sm.Iterations.Observe(40)
	if sm.Solves.Value() != 1 || sm.Relaxed.Value() != 2 {
		t.Errorf("solve counters: solves=%v relaxed=%v", sm.Solves.Value(), sm.Relaxed.Value())
	}
	if sm.Judgements.Count() != 1 || sm.Iterations.Count() != 1 {
		t.Error("solve histograms missed observations")
	}
	// Re-binding against the same registry returns the same series.
	if telemetry.NewSolveMetrics(r).Solves != sm.Solves {
		t.Error("re-bound solve metrics use a different series")
	}
	if telemetry.NewSolveMetrics(nil) != nil {
		t.Error("nil registry did not yield nil solve metrics")
	}
}
