package telemetry_test

import (
	"io"
	"sync"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/telemetry"
)

// TestRegistryStress hammers one registry from many goroutines — mixed
// registration and updates on shared and per-goroutine series, span
// recording, and concurrent scrapes — then checks exact totals. Run with
// -race this is the package's data-race oracle.
func TestRegistryStress(t *testing.T) {
	const (
		goroutines = 16
		iterations = 500
	)
	r := telemetry.New(fixedClock(epoch))
	tr := telemetry.NewTracer(r, 64)

	// Shared series created up front plus per-goroutine re-registration
	// below, so the get-or-create path is exercised under contention.
	shared := r.Counter("stress_shared_total", "")
	gauge := r.Gauge("stress_gauge", "")
	hist := r.Histogram("stress_seconds", "", nil)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			mine := r.Counter("stress_worker_total", "",
				telemetry.Label{Key: "worker", Value: string(rune('a' + g))})
			for i := 0; i < iterations; i++ {
				shared.Inc()
				r.Counter("stress_shared_total", "").AddFloat(0.5)
				mine.Inc()
				gauge.Add(1)
				gauge.Add(-1)
				hist.Observe(float64(i%10) * 0.01)
				hist.ObserveDuration(time.Millisecond)
				tr.Start("stress").End()
			}
		}(g)
	}

	// Concurrent scrapers while the writers run.
	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Error(err)
						return
					}
					r.Snapshot()
				}
			}
		}()
	}

	close(start)
	wg.Wait()
	close(done)
	scrapeWG.Wait()

	total := goroutines * iterations
	if got := shared.Value(); got != float64(total)*1.5 {
		t.Errorf("shared counter = %v, want %v", got, float64(total)*1.5)
	}
	if got := gauge.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := hist.Count(); got != uint64(2*total) {
		t.Errorf("histogram count = %d, want %d", got, 2*total)
	}
	if got := tr.Total(); got != uint64(total) {
		t.Errorf("tracer total = %d, want %d", got, total)
	}
	for g := 0; g < goroutines; g++ {
		c := r.Counter("stress_worker_total", "",
			telemetry.Label{Key: "worker", Value: string(rune('a' + g))})
		if c.Value() != iterations {
			t.Errorf("worker %d counter = %v, want %d", g, c.Value(), iterations)
		}
	}
}
