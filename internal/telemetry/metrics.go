package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// floatBits is an atomic float64 stored as its IEEE-754 bit pattern.
// Add is a CAS loop; Store/Load are single atomics.
type floatBits struct {
	bits atomic.Uint64
}

func (f *floatBits) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *floatBits) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *floatBits) load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing metric. Integer increments (the
// common case) take the single-atomic fast path; fractional amounts (busy
// seconds) accumulate separately under CAS. Every method is nil-receiver
// safe so "telemetry off" costs one pointer test.
type Counter struct {
	ints   atomic.Uint64
	floats floatBits
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.ints.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.ints.Add(n)
}

// AddFloat adds a non-negative fractional amount (e.g. busy seconds).
// Negative and NaN deltas are dropped: a counter only moves forward.
func (c *Counter) AddFloat(v float64) {
	if c == nil || v < 0 || math.IsNaN(v) {
		return
	}
	c.floats.add(v)
}

// Value returns the accumulated total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return float64(c.ints.Load()) + c.floats.load()
}

// Gauge is a metric that can go up and down (in-flight tasks, queue
// depth). Nil-receiver safe.
type Gauge struct {
	val floatBits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.val.store(v)
}

// Add adds v (negative to decrease).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.val.add(v)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.val.load()
}

// DefBuckets are the default histogram buckets, tuned (like Prometheus's
// defaults) for latencies in seconds from sub-millisecond to ~10 s.
var DefBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExponentialBuckets returns n ascending bucket bounds starting at start
// and multiplying by factor (> 1) at each step.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n ascending bucket bounds starting at start and
// stepping by width.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// Histogram counts observations into fixed buckets. Buckets are an atomic
// each; sum and count are single atomics too, so a scrape racing an
// Observe may see sum and count off by one observation — consistent state
// returns as soon as writers quiesce, which is when deterministic
// comparisons happen.
type Histogram struct {
	upper  []float64 // finite ascending upper bounds
	counts []atomic.Uint64
	sum    floatBits
	total  atomic.Uint64
}

// newHistogram builds a histogram over validated bounds.
func newHistogram(upper []float64) *Histogram {
	return &Histogram{
		upper:  upper,
		counts: make([]atomic.Uint64, len(upper)+1), // +1: the +Inf overflow bucket
	}
}

// Observe records one value. NaN observations are dropped — they would
// poison the sum and match no bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bucket whose upper bound admits v; the overflow slot catches
	// the rest.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sum.add(v)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// cumulative returns the per-bound cumulative counts (Prometheus bucket
// semantics), excluding the +Inf bucket — whose cumulative count is
// Count() by definition.
func (h *Histogram) cumulative() []uint64 {
	out := make([]uint64, len(h.upper))
	var run uint64
	for i := range h.upper {
		run += h.counts[i].Load()
		out[i] = run
	}
	return out
}
