// Package telemetry is the repo's zero-dependency observability layer:
// a metrics registry (counters, gauges, fixed-bucket histograms), a
// span-based tracer, Prometheus text-format exposition, and a
// deterministic JSON snapshot. It exists so every scaling PR can be
// measured instead of guessed — where round-solve time goes, whether the
// worker pool saturates, how many LP pivots a solve burns.
//
// Two properties shape the design:
//
//   - Lock-cheap hot paths. Counters and gauges are single atomics;
//     histograms are an atomic per bucket. Registration (the only mutex)
//     happens once per series, not per observation, and every metric
//     method is nil-receiver safe so instrumented code pays one pointer
//     test when telemetry is off.
//
//   - Deterministic output. Exposition and snapshots order families by
//     name and series by label signature, never by map iteration, and
//     every duration measurement flows through an injected Clock — so two
//     fixed-clock, fixed-seed runs produce byte-identical /metrics
//     bodies, and instrumented deterministic packages stay clean under
//     nomloc-vet's detrand contract (they count and observe derived
//     values; they never read the wall clock themselves).
package telemetry

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"
)

// Clock is the time source behind every duration measurement. Production
// wiring injects WallClock; deterministic tests inject a fixed or stepped
// clock. Deterministic packages must only ever receive a Clock from their
// caller — nomloc-vet's detrand analyzer rejects both time.Now and
// telemetry.WallClock calls inside them.
type Clock func() time.Time

// WallClock is the production time source. Do not call it from a package
// under the determinism contract; accept an injected Clock instead.
func WallClock() time.Time { return time.Now() }

// Label is one metric dimension, e.g. {Key: "worker", Value: "3"}.
type Label struct {
	Key, Value string
}

// kind discriminates metric families.
type kind int

const (
	counterKind kind = iota + 1
	gaugeKind
	histogramKind
)

// String implements fmt.Stringer.
func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// family is one metric name: its help text, kind, shared histogram
// buckets, and the series keyed by label signature.
type family struct {
	name    string
	help    string
	kind    kind
	buckets []float64 // histogram families only; shared by all series
	series  map[string]any
}

// Registry holds metric families and the clock their timers read.
// A nil *Registry is a valid "telemetry off" registry: every method
// no-ops (returning nil metrics, whose methods in turn no-op), so
// instrumentation call sites never need a feature flag.
type Registry struct {
	clock Clock

	mu       sync.Mutex
	families map[string]*family
}

// New returns a registry whose duration measurements read clock; nil
// selects WallClock. Inject a fixed clock to make exposition bodies
// byte-reproducible across runs.
func New(clock Clock) *Registry {
	if clock == nil {
		clock = WallClock
	}
	return &Registry{
		clock:    clock,
		families: make(map[string]*family),
	}
}

// Clock returns the registry's time source (nil for a nil registry).
func (r *Registry) Clock() Clock {
	if r == nil {
		return nil
	}
	return r.clock
}

// Now reads the registry's clock; the zero time for a nil registry.
func (r *Registry) Now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.clock()
}

// Metric and label names follow the Prometheus data model.
var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// signature renders labels as a canonical `{k="v",…}` suffix (keys
// sorted, values escaped), or "" for an unlabeled series. The same string
// keys the series map and prints in the exposition, so series identity
// and output order agree by construction.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, labelEscaper.Replace(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// labelEscaper applies the exposition-format escapes for label values:
// backslash, double quote, and newline.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// validate panics on malformed metric or label names: registration
// happens at wiring time, so a bad name is a programming error, not a
// runtime condition.
func validate(name string, labels []Label) {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	seen := make(map[string]bool, len(labels))
	for _, l := range labels {
		if !labelRe.MatchString(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label key %q on %q", l.Key, name))
		}
		if seen[l.Key] {
			panic(fmt.Sprintf("telemetry: duplicate label key %q on %q", l.Key, name))
		}
		seen[l.Key] = true
	}
}

// lookup returns (creating on first use) the series of one family. The
// family's kind is fixed by its first registration; a kind conflict is a
// wiring bug and panics. make builds a new series value.
func (r *Registry) lookup(name, help string, k kind, buckets []float64, labels []Label, make func() any) any {
	validate(name, labels)
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, buckets: buckets, series: map[string]any{}}
		r.families[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("telemetry: %q registered as %v, re-requested as %v", name, f.kind, k))
	}
	s := f.series[sig]
	if s == nil {
		s = make()
		f.series[sig] = s
	}
	return s
}

// Counter returns the counter series name{labels…}, creating it on first
// use. Re-registration with the same name and labels returns the same
// counter; the help text of the first registration wins. Nil-safe.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, counterKind, nil, labels, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the gauge series name{labels…}, creating it on first use.
// Nil-safe.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, gaugeKind, nil, labels, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the histogram series name{labels…} with the family's
// fixed buckets (ascending upper bounds; a +Inf overflow bucket is
// implicit). The first registration fixes the buckets for every series of
// the family; nil buckets select DefBuckets. Nil-safe.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	var famBuckets []float64
	r.mu.Lock()
	if f := r.families[name]; f != nil {
		famBuckets = f.buckets
	}
	r.mu.Unlock()
	if famBuckets == nil {
		famBuckets = checkBuckets(name, buckets)
	}
	return r.lookup(name, help, histogramKind, famBuckets, labels,
		func() any { return newHistogram(famBuckets) }).(*Histogram)
}

// checkBuckets validates and copies histogram bounds: finite, strictly
// ascending upper bounds only (the +Inf bucket is implicit).
func checkBuckets(name string, buckets []float64) []float64 {
	out := append([]float64(nil), buckets...)
	for i, b := range out {
		if i > 0 && out[i-1] >= b {
			panic(fmt.Sprintf("telemetry: %q buckets not strictly ascending at %d", name, i))
		}
	}
	return out
}

// familyView is an exposition-ready snapshot of one family: metadata
// copied, series sorted by label signature. The metric values themselves
// are shared pointers — their reads are atomic and need no lock.
type familyView struct {
	name    string
	help    string
	kind    kind
	buckets []float64
	series  []seriesEntry
}

// seriesEntry pairs one series with its canonical label signature.
type seriesEntry struct {
	sig    string
	metric any
}

// view snapshots every family under the registration lock, ordered by
// family name and then label signature — the single ordering both the
// Prometheus exposition and Snapshot use, so the two surfaces always
// agree and neither ever leaks map iteration order.
func (r *Registry) view() []familyView {
	r.mu.Lock()
	out := make([]familyView, 0, len(r.families))
	for _, f := range r.families {
		fv := familyView{
			name:    f.name,
			help:    f.help,
			kind:    f.kind,
			buckets: f.buckets,
			series:  make([]seriesEntry, 0, len(f.series)),
		}
		for sig, s := range f.series {
			fv.series = append(fv.series, seriesEntry{sig: sig, metric: s})
		}
		out = append(out, fv)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	for _, fv := range out {
		s := fv.series
		sort.Slice(s, func(i, j int) bool { return s[i].sig < s[j].sig })
	}
	return out
}
