package telemetry

import (
	"sync"
	"time"
)

// SpanRecord is one finished span.
type SpanRecord struct {
	// Name identifies the operation ("round", "solve", …).
	Name string `json:"name"`
	// Start is the span's begin time per the tracer's clock.
	Start time.Time `json:"start"`
	// Duration is End − Start (clamped at zero).
	Duration time.Duration `json:"duration"`
}

// Tracer measures named operations with the registry's clock. Every
// finished span lands in two places: a per-name duration histogram
// (nomloc_span_seconds{span="…"}) on the registry, and a bounded
// in-memory ring for inspection from tests, /status-style dashboards,
// and nomloc-bench. A nil *Tracer no-ops, and because the clock is the
// registry's injected Clock, tracing inside deterministic packages does
// not break bit-reproducibility — a fixed clock yields fixed spans.
type Tracer struct {
	reg *Registry
	max int

	mu    sync.Mutex
	ring  []SpanRecord
	next  int
	total uint64
}

// NewTracer returns a tracer recording to reg, retaining the most recent
// capacity spans (default 256). A nil registry yields a nil (no-op)
// tracer.
func NewTracer(reg *Registry, capacity int) *Tracer {
	if reg == nil {
		return nil
	}
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{reg: reg, max: capacity}
}

// Span is one in-flight operation; close it with End. The zero Span (from
// a nil tracer) is valid and inert.
type Span struct {
	tr    *Tracer
	name  string
	start time.Time
}

// Start opens a span. Nil-safe.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, start: t.reg.Now()}
}

// End closes the span, recording its duration into the tracer's ring and
// the registry's span histogram. It returns the measured duration.
func (s Span) End() time.Duration {
	if s.tr == nil {
		return 0
	}
	d := s.tr.reg.Now().Sub(s.start)
	if d < 0 {
		d = 0
	}
	s.tr.record(SpanRecord{Name: s.name, Start: s.start, Duration: d})
	return d
}

// record appends one finished span to the ring and the span histogram.
func (t *Tracer) record(rec SpanRecord) {
	t.reg.Histogram("nomloc_span_seconds", "duration of traced operations by span name",
		DefBuckets, Label{Key: "span", Value: rec.Name}).ObserveDuration(rec.Duration)
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < t.max {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
	}
	t.next = (t.next + 1) % t.max
	t.total++
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	if len(t.ring) < t.max {
		return append(out, t.ring...)
	}
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Total returns how many spans have finished over the tracer's lifetime
// (including ones the ring has since evicted).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
