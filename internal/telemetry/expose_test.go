package telemetry_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/nomloc/nomloc/internal/telemetry"
)

// populate drives a fixed set of operations against a registry.
func populate(r *telemetry.Registry) {
	r.Counter("b_total", "second family").Add(7)
	r.Counter("a_total", "first family").Inc()
	r.Gauge("pool_running", "in flight", telemetry.Label{Key: "pool", Value: "solve"}).Set(2)
	h := r.Histogram("latency_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
}

func expose(t *testing.T, r *telemetry.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestWritePrometheusFormat(t *testing.T) {
	r := telemetry.New(nil)
	populate(r)
	got := expose(t, r)
	want := `# HELP a_total first family
# TYPE a_total counter
a_total 1
# HELP b_total second family
# TYPE b_total counter
b_total 7
# HELP latency_seconds latency
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 5.55
latency_seconds_count 3
# HELP pool_running in flight
# TYPE pool_running gauge
pool_running{pool="solve"} 2
`
	if got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestExpositionDeterministic(t *testing.T) {
	// Two registries fed identical operations expose byte-identical
	// bodies — the property the fleet-monitoring diff tests rely on.
	a, b := telemetry.New(nil), telemetry.New(nil)
	populate(a)
	populate(b)
	// Re-render the first registry too: repeated scrapes of quiescent
	// state must also be stable.
	if got, again := expose(t, a), expose(t, a); got != again {
		t.Error("two scrapes of the same registry differ")
	}
	if ea, eb := expose(t, a), expose(t, b); ea != eb {
		t.Errorf("identical runs exposed different bodies:\n%s\nvs\n%s", ea, eb)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := telemetry.New(nil)
	r.Counter("esc_total", "", telemetry.Label{Key: "path", Value: "a\\b\"c\nd"}).Inc()
	got := expose(t, r)
	want := `esc_total{path="a\\b\"c\nd"} 1` + "\n"
	if !strings.Contains(got, want) {
		t.Errorf("escaped series missing:\ngot %q\nwant substring %q", got, want)
	}
	// The snapshot recovers the original value.
	snap := r.Snapshot()
	if len(snap.Metrics) != 1 || snap.Metrics[0].Labels["path"] != "a\\b\"c\nd" {
		t.Errorf("snapshot labels = %+v", snap.Metrics)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := telemetry.New(nil)
	populate(r)
	snap := r.Snapshot()
	if len(snap.Metrics) != 4 {
		t.Fatalf("snapshot has %d metrics, want 4", len(snap.Metrics))
	}
	// Sorted by name: a_total, b_total, latency_seconds, pool_running.
	order := []string{"a_total", "b_total", "latency_seconds", "pool_running"}
	for i, name := range order {
		if snap.Metrics[i].Name != name {
			t.Fatalf("metric %d = %s, want %s", i, snap.Metrics[i].Name, name)
		}
	}
	hist := snap.Metrics[2]
	if hist.Type != "histogram" || hist.Count != 3 || hist.Sum != 5.55 {
		t.Errorf("histogram point = %+v", hist)
	}
	if len(hist.Buckets) != 2 || hist.Buckets[0].Count != 1 || hist.Buckets[1].Count != 2 {
		t.Errorf("histogram buckets = %+v", hist.Buckets)
	}
	// Marshals cleanly (no Inf/NaN) and deterministically.
	b1, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(r.Snapshot())
	if string(b1) != string(b2) {
		t.Error("snapshot JSON not stable across calls")
	}
}

func TestHandler(t *testing.T) {
	r := telemetry.New(nil)
	r.Counter("hits_total", "").Inc()
	srv := httptest.NewServer(telemetry.Handler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "hits_total 1") {
		t.Errorf("body = %q", body)
	}

	resp2, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 405 {
		t.Errorf("POST status = %d", resp2.StatusCode)
	}
}

func TestRegisterDebugMountsPprof(t *testing.T) {
	m := http.NewServeMux()
	telemetry.RegisterDebug(m, telemetry.New(nil))
	srv := httptest.NewServer(m)
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
}
