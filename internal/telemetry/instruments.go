package telemetry

import (
	"context"
	"strconv"
	"time"
)

// This file packages the repo's standard instrument sets: pool metrics
// for the parallel worker pool and the server's solve gate, solve metrics
// for the localization hot path, and the context plumbing that carries a
// registry into code (eval → parallel) whose call signatures should not
// grow a telemetry parameter.

// ctxKey keys the registry in a context.
type ctxKey struct{}

// NewContext returns ctx carrying the registry; a nil registry returns
// ctx unchanged.
func NewContext(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext extracts the registry carried by ctx, or nil.
func FromContext(ctx context.Context) *Registry {
	r, _ := ctx.Value(ctxKey{}).(*Registry)
	return r
}

// PoolMetrics instruments one worker pool (or admission gate) under a
// shared name prefix. All methods are nil-receiver safe; construct from a
// nil registry and every call melts into a pointer test.
type PoolMetrics struct {
	reg    *Registry
	prefix string

	// Queued counts tasks ever submitted to the pool.
	Queued *Counter
	// Done counts tasks that finished executing.
	Done *Counter
	// Running gauges tasks currently executing.
	Running *Gauge
	// Waiting gauges tasks submitted but not yet claimed by a worker.
	Waiting *Gauge
	// Capacity gauges the pool's concurrency bound.
	Capacity *Gauge
	// QueueWait is the submit→claim latency distribution in seconds.
	QueueWait *Histogram
}

// NewPoolMetrics builds (or re-binds — registration is get-or-create) the
// pool instrument set under prefix, e.g. "nomloc_pool" or
// "nomloc_server_pool". A nil registry yields a nil, no-op set.
func NewPoolMetrics(r *Registry, prefix string) *PoolMetrics {
	if r == nil {
		return nil
	}
	return &PoolMetrics{
		reg:       r,
		prefix:    prefix,
		Queued:    r.Counter(prefix+"_tasks_queued_total", "tasks submitted to the pool"),
		Done:      r.Counter(prefix+"_tasks_done_total", "tasks finished by the pool"),
		Running:   r.Gauge(prefix+"_tasks_running", "tasks currently executing"),
		Waiting:   r.Gauge(prefix+"_tasks_waiting", "tasks submitted but not yet claimed"),
		Capacity:  r.Gauge(prefix+"_capacity", "concurrency bound of the pool"),
		QueueWait: r.Histogram(prefix+"_queue_wait_seconds", "submit-to-claim wait in seconds", nil),
	}
}

// WorkerBusy returns the busy-seconds counter for one worker index.
func (p *PoolMetrics) WorkerBusy(worker int) *Counter {
	if p == nil {
		return nil
	}
	return p.reg.Counter(p.prefix+"_worker_busy_seconds_total",
		"seconds each worker spent executing tasks",
		Label{Key: "worker", Value: strconv.Itoa(worker)})
}

// SetCapacity records the pool's concurrency bound. Nil-safe.
func (p *PoolMetrics) SetCapacity(n int) {
	if p == nil {
		return
	}
	p.Capacity.Set(float64(n))
}

// Now reads the instrument clock (zero time on a nil set).
func (p *PoolMetrics) Now() time.Time {
	if p == nil {
		return time.Time{}
	}
	return p.reg.Now()
}

// Submit records n tasks entering the pool.
func (p *PoolMetrics) Submit(n int) {
	if p == nil {
		return
	}
	p.Queued.Add(uint64(n))
	p.Waiting.Add(float64(n))
}

// Claim records one waiting task (submitted at submitted) starting to
// execute and returns the claim time, which Finish takes back.
func (p *PoolMetrics) Claim(submitted time.Time) time.Time {
	if p == nil {
		return time.Time{}
	}
	now := p.reg.Now()
	p.Waiting.Dec()
	p.QueueWait.Observe(now.Sub(submitted).Seconds())
	p.Running.Inc()
	return now
}

// Finish records one claimed task completing; busy (the claiming worker's
// busy counter, may be nil for gates with no worker identity) accrues the
// execution time since claimedAt.
func (p *PoolMetrics) Finish(busy *Counter, claimedAt time.Time) {
	if p == nil {
		return
	}
	if busy != nil {
		busy.AddFloat(p.reg.Now().Sub(claimedAt).Seconds())
	}
	p.Running.Dec()
	p.Done.Inc()
}

// Abandon returns n submitted-but-never-claimed tasks (a pool run aborted
// by an error or cancellation) out of the waiting gauge.
func (p *PoolMetrics) Abandon(n int) {
	if p == nil || n <= 0 {
		return
	}
	p.Waiting.Add(float64(-n))
}

// SolveMetrics instruments the localization solve hot path. Everything
// here is count-only — iterations, judgement counts, relaxations — never
// wall time, so a Localizer inside the deterministic evaluation pipeline
// can carry it without violating the detrand contract or perturbing
// bit-reproducible figures.
type SolveMetrics struct {
	// Solves counts completed Locate calls.
	Solves *Counter
	// Infeasible counts degenerate center extractions (the relaxed region
	// collapsed to a point and the LP vertex was used).
	Infeasible *Counter
	// Relaxed counts proximity constraints the LP had to relax.
	Relaxed *Counter
	// Judgements is the per-solve pairwise-judgement count distribution.
	Judgements *Histogram
	// Iterations is the per-piece simplex pivot count distribution.
	Iterations *Histogram
}

// NewSolveMetrics builds the solve instrument set. A nil registry yields
// a nil set; the Localizer checks for nil once per solve.
func NewSolveMetrics(r *Registry) *SolveMetrics {
	if r == nil {
		return nil
	}
	return &SolveMetrics{
		Solves:     r.Counter("nomloc_solve_total", "completed localization solves"),
		Infeasible: r.Counter("nomloc_solve_degenerate_total", "center extractions that fell back to the LP vertex"),
		Relaxed:    r.Counter("nomloc_solve_relaxed_total", "proximity constraints relaxed by the winning piece"),
		Judgements: r.Histogram("nomloc_solve_judgements", "pairwise judgements entering each solve", LinearBuckets(0, 8, 16)),
		Iterations: r.Histogram("nomloc_solve_lp_iterations", "simplex pivots per piece solve", ExponentialBuckets(1, 2, 14)),
	}
}

// RecordSolve records one completed Locate call. Nil-safe.
func (m *SolveMetrics) RecordSolve(judgements, relaxed int) {
	if m == nil {
		return
	}
	m.Solves.Inc()
	m.Judgements.Observe(float64(judgements))
	m.Relaxed.Add(uint64(relaxed))
}

// RecordPiece records one per-piece relaxation LP solve. Nil-safe.
func (m *SolveMetrics) RecordPiece(iterations int) {
	if m == nil {
		return
	}
	m.Iterations.Observe(float64(iterations))
}

// RecordDegenerate records one center extraction that fell back to the
// LP vertex. Nil-safe.
func (m *SolveMetrics) RecordDegenerate() {
	if m == nil {
		return
	}
	m.Infeasible.Inc()
}
