package telemetry_test

import (
	"math"
	"sync"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/telemetry"
)

// fixedClock returns a clock pinned to one instant.
func fixedClock(at time.Time) telemetry.Clock {
	return func() time.Time { return at }
}

// stepClock returns a clock advancing by step on every read.
func stepClock(start time.Time, step time.Duration) telemetry.Clock {
	var mu sync.Mutex
	t := start
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(step)
		return t
	}
}

var epoch = time.Date(2014, time.June, 30, 12, 0, 0, 0, time.UTC)

func TestCounter(t *testing.T) {
	r := telemetry.New(nil)
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	c.AddFloat(0.5)
	if got := c.Value(); got != 5.5 {
		t.Errorf("Value = %v, want 5.5", got)
	}
	// Negative and NaN float deltas are dropped.
	c.AddFloat(-3)
	c.AddFloat(math.NaN())
	if got := c.Value(); got != 5.5 {
		t.Errorf("Value after bad deltas = %v, want 5.5", got)
	}
	// Get-or-create: same name+labels yields the same series.
	if r.Counter("test_total", "other help") != c {
		t.Error("re-registration returned a different counter")
	}
}

func TestGauge(t *testing.T) {
	g := telemetry.New(nil).Gauge("test_gauge", "help")
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(-0.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("Value = %v, want 2.5", got)
	}
}

func TestHistogram(t *testing.T) {
	h := telemetry.New(nil).Histogram("test_hist", "help", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	if got := h.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Errorf("Sum = %v, want 106", got)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := telemetry.New(nil)
	a := r.Counter("workers_total", "", telemetry.Label{Key: "worker", Value: "0"})
	b := r.Counter("workers_total", "", telemetry.Label{Key: "worker", Value: "1"})
	if a == b {
		t.Fatal("distinct label values share a series")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Error("increment leaked across label values")
	}
	// Label order does not matter for identity.
	x := r.Gauge("g", "", telemetry.Label{Key: "a", Value: "1"}, telemetry.Label{Key: "b", Value: "2"})
	y := r.Gauge("g", "", telemetry.Label{Key: "b", Value: "2"}, telemetry.Label{Key: "a", Value: "1"})
	if x != y {
		t.Error("label order changed series identity")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := telemetry.New(nil)
	r.Counter("conflict", "")
	defer func() {
		if recover() == nil {
			t.Error("gauge re-registration of a counter did not panic")
		}
	}()
	r.Gauge("conflict", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := telemetry.New(nil)
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name did not panic")
		}
	}()
	r.Counter("bad name", "")
}

func TestNilRegistryAndMetricsNoOp(t *testing.T) {
	var r *telemetry.Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "", nil)
	c.Inc()
	c.Add(2)
	c.AddFloat(1)
	g.Set(1)
	g.Inc()
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics accumulated values")
	}
	if !r.Now().IsZero() {
		t.Error("nil registry Now() not zero")
	}
	if got := r.Snapshot(); len(got.Metrics) != 0 {
		t.Errorf("nil registry snapshot has %d metrics", len(got.Metrics))
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := telemetry.ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExponentialBuckets = %v, want %v", exp, want)
		}
	}
	lin := telemetry.LinearBuckets(0, 5, 3)
	wantLin := []float64{0, 5, 10}
	for i := range wantLin {
		if lin[i] != wantLin[i] {
			t.Fatalf("LinearBuckets = %v, want %v", lin, wantLin)
		}
	}
}

func TestRegistryClock(t *testing.T) {
	at := epoch.Add(time.Hour)
	r := telemetry.New(fixedClock(at))
	if !r.Now().Equal(at) {
		t.Errorf("Now = %v, want %v", r.Now(), at)
	}
	if telemetry.New(nil).Clock() == nil {
		t.Error("default registry has no clock")
	}
}
