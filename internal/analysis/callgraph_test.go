package analysis_test

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"github.com/nomloc/nomloc/internal/analysis"
)

// testImporter resolves imports against packages the test checked
// earlier, so cross-package graphs build without export data.
type testImporter map[string]*types.Package

func (m testImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("testImporter: no package %q", path)
}

// typecheckPkg parses and type-checks one in-memory package.
func typecheckPkg(t *testing.T, imp testImporter, path, src string) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+"/src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	if imp != nil {
		imp[path] = tpkg
	}
	return &analysis.Package{Path: path, Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

func hasEdge(g *analysis.CallGraph, caller, callee string, kind analysis.EdgeKind) bool {
	n := g.NodeByID(caller)
	if n == nil {
		return false
	}
	for _, e := range n.Out {
		if e.Callee.ID == callee && e.Kind == kind {
			return true
		}
	}
	return false
}

const cgSrc = `package cg

type Greeter interface{ Greet() string }

type English struct{}

func (English) Greet() string { return "hi" }

func (e *English) Shout() string { return e.Greet() }

func SayVia(g Greeter) string { return g.Greet() }

func Use() string {
	f := func() int { return 1 }
	apply(f)
	return SayVia(English{})
}

func apply(f func() int) int { return f() }
`

func buildCGFixture(t *testing.T) *analysis.CallGraph {
	t.Helper()
	pkg := typecheckPkg(t, testImporter{}, "cg", cgSrc)
	return analysis.BuildCallGraph([]*analysis.Package{pkg})
}

func TestCallGraphStaticEdges(t *testing.T) {
	g := buildCGFixture(t)
	for _, e := range [][2]string{
		{"cg.Use", "cg.apply"},
		{"cg.Use", "cg.SayVia"},
		{"cg.(*English).Shout", "cg.(English).Greet"},
	} {
		if !hasEdge(g, e[0], e[1], analysis.EdgeStatic) {
			t.Errorf("missing static edge %s -> %s", e[0], e[1])
		}
	}
}

func TestCallGraphInterfaceEdges(t *testing.T) {
	g := buildCGFixture(t)
	// The interface call links both the interface method node and every
	// concrete type whose method set satisfies it structurally.
	if !hasEdge(g, "cg.SayVia", "cg.(Greeter).Greet", analysis.EdgeInterface) {
		t.Error("missing interface edge to the interface method node")
	}
	if !hasEdge(g, "cg.SayVia", "cg.(English).Greet", analysis.EdgeInterface) {
		t.Error("missing CHA edge to the concrete implementation")
	}
}

func TestCallGraphDynamicEdges(t *testing.T) {
	g := buildCGFixture(t)
	// apply calls through a func value; the resolver links every tracked
	// literal with the same signature — here Use's literal.
	if !hasEdge(g, "cg.apply", "cg.Use$1", analysis.EdgeDynamic) {
		t.Error("missing dynamic edge apply -> cg.Use$1")
	}
	n := g.NodeByID("cg.Use$1")
	if n == nil || n.Fn == nil || n.Fn.Lit == nil {
		t.Fatal("literal node cg.Use$1 missing or untracked")
	}
}

func TestCallGraphCrossPackage(t *testing.T) {
	imp := testImporter{}
	liba := typecheckPkg(t, imp, "liba", `package liba
func Exported() int { return 0 }
`)
	libb := typecheckPkg(t, imp, "libb", `package libb

import "liba"

func Calls() int { return liba.Exported() }
`)
	g := analysis.BuildCallGraph([]*analysis.Package{libb, liba})
	if !hasEdge(g, "libb.Calls", "liba.Exported", analysis.EdgeStatic) {
		t.Error("missing cross-package static edge libb.Calls -> liba.Exported")
	}
	// The callee node is internal (has a body), keyed by the same FuncID
	// the caller's package resolved.
	if n := g.NodeByID("liba.Exported"); n == nil || n.Fn == nil {
		t.Error("liba.Exported should be an internal node")
	}
}

func TestCallGraphNodesSorted(t *testing.T) {
	g := buildCGFixture(t)
	for i := 1; i < len(g.Nodes); i++ {
		if g.Nodes[i-1].ID >= g.Nodes[i].ID {
			t.Fatalf("nodes out of order: %q before %q", g.Nodes[i-1].ID, g.Nodes[i].ID)
		}
	}
}

// TestCallGraphDumpsByteStable rebuilds the graph from a fresh parse and
// demands byte-identical DOT and JSON dumps.
func TestCallGraphDumpsByteStable(t *testing.T) {
	var dots, jsons [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		g := buildCGFixture(t)
		if err := g.WriteDOT(&dots[i]); err != nil {
			t.Fatal(err)
		}
		if err := g.WriteJSON(&jsons[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(dots[0].Bytes(), dots[1].Bytes()) {
		t.Error("DOT dump not byte-stable across rebuilds")
	}
	if !bytes.Equal(jsons[0].Bytes(), jsons[1].Bytes()) {
		t.Error("JSON dump not byte-stable across rebuilds")
	}
}
