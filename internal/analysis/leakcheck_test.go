package analysis_test

import (
	"testing"

	"github.com/nomloc/nomloc/internal/analysis"
	"github.com/nomloc/nomloc/internal/analysis/analysistest"
)

func TestLeakCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.LeakCheck,
		"leakcheck/server", "leakcheck/other")
}
