package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"github.com/nomloc/nomloc/internal/analysis"
	"github.com/nomloc/nomloc/internal/analysis/analysistest"
)

// TestSuppressions drives the escape hatch end to end through the track
// fixture: a trailing //nomloc:nondeterministic-ok silences its own
// statement, a standalone one silences the statement below, a second
// violation next to a suppressed one still reports, and a suppression
// with nothing under it reports as stale.
func TestSuppressions(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.DetRand, "track")
}

// parseOne parses one synthetic file with comments.
func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, file
}

// TestSuppressionScopedToDetrand checks that the hatch does not leak to
// other analyzers: a suppression comment neither silences their
// diagnostics nor produces stale reports under their name.
func TestSuppressionScopedToDetrand(t *testing.T) {
	const src = `package p

var x = 1 //nomloc:nondeterministic-ok
`
	fset, file := parseOne(t, src)
	in := []analysis.Diagnostic{{
		Pos:      file.Package,
		Analyzer: "floateq",
		Message:  "exact floating-point ==",
	}}
	got := analysis.ApplySuppressions(fset, []*ast.File{file}, "floateq", in)
	if len(got) != 1 || got[0].Message != in[0].Message {
		t.Fatalf("floateq diagnostics = %v, want the input unchanged", got)
	}
}

// TestSuppressionTrailingCoversOwnLineOnly checks the one-statement scope
// directly on the filter: with diagnostics on the comment's line and the
// next line, only the former is silenced.
func TestSuppressionTrailingCoversOwnLineOnly(t *testing.T) {
	const src = `package p

var a = 1 //nomloc:nondeterministic-ok
var b = 2
`
	fset, file := parseOne(t, src)
	// Positions of the two declarations (lines 3 and 4).
	posA := file.Decls[0].Pos()
	posB := file.Decls[1].Pos()
	in := []analysis.Diagnostic{
		{Pos: posA, Analyzer: "detrand", Message: "violation a"},
		{Pos: posB, Analyzer: "detrand", Message: "violation b"},
	}
	got := analysis.ApplySuppressions(fset, []*ast.File{file}, "detrand", in)
	if len(got) != 1 || got[0].Message != "violation b" {
		t.Fatalf("diagnostics = %+v, want only the line-4 violation", got)
	}
}

// TestStaleSuppressionReported checks that a hatch with nothing under it
// becomes a diagnostic of its own.
func TestStaleSuppressionReported(t *testing.T) {
	const src = `package p

//nomloc:nondeterministic-ok
var a = 1
`
	fset, file := parseOne(t, src)
	got := analysis.ApplySuppressions(fset, []*ast.File{file}, "detrand", nil)
	if len(got) != 1 || !strings.Contains(got[0].Message, "stale") {
		t.Fatalf("diagnostics = %+v, want one stale-suppression report", got)
	}
	if line := fset.Position(got[0].Pos).Line; line != 3 {
		t.Fatalf("stale report on line %d, want the comment's line 3", line)
	}
}
