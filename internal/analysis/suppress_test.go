package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"github.com/nomloc/nomloc/internal/analysis"
	"github.com/nomloc/nomloc/internal/analysis/analysistest"
)

// TestSuppressions drives the escape hatch end to end through the track
// fixture: a trailing //nomloc:nondeterministic-ok silences its own
// statement, a standalone one silences the statement below, a second
// violation next to a suppressed one still reports, and a suppression
// with nothing under it reports as stale.
func TestSuppressions(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.DetRand, "track")
}

// parseOne parses one synthetic file with comments.
func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, file
}

// TestSuppressionMarkersPerAnalyzer drives the per-analyzer escape
// hatches through one table covering every analyzer in the suite: the
// suppressible ones silence diagnostics under their own marker only,
// and the intentionally marker-less ones ignore every marker.
func TestSuppressionMarkersPerAnalyzer(t *testing.T) {
	cases := []struct {
		analyzer string
		marker   string // "" = analyzer admits no suppressions
	}{
		{"detrand", "//nomloc:nondeterministic-ok"},
		{"nanguard", "//nomloc:nanguard-ok"},
		{"errdrop", "//nomloc:errdrop-ok"},
		{"leakcheck", "//nomloc:leakcheck-ok"},
		{"lockorder", "//nomloc:lockorder-ok"},
		{"unitcheck", "//nomloc:unitcheck-ok"},
		{"effects", "//nomloc:effects-ok"},
		{"seedmix", ""},
		{"floateq", ""},
		{"locksafe", ""},
	}
	// Every analyzer in All() must appear in the table, so a future
	// analyzer forces a decision about its escape hatch.
	covered := map[string]bool{}
	for _, tc := range cases {
		covered[tc.analyzer] = true
	}
	for _, a := range analysis.All() {
		if !covered[a.Name] {
			t.Errorf("analyzer %s missing from the suppression table", a.Name)
		}
	}

	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			if got := analysis.MarkerFor(tc.analyzer); got != tc.marker {
				t.Fatalf("MarkerFor(%s) = %q, want %q", tc.analyzer, got, tc.marker)
			}

			// The analyzer's own marker (when it has one) silences a
			// diagnostic on the marker's line.
			if tc.marker != "" {
				fset, file := parseOne(t, "package p\n\nvar x = 1 "+tc.marker+"\n")
				in := []analysis.Diagnostic{{
					Pos:      file.Decls[0].Pos(),
					Analyzer: tc.analyzer,
					Message:  "violation",
				}}
				got := analysis.ApplySuppressions(fset, []*ast.File{file}, tc.analyzer, in)
				if len(got) != 0 {
					t.Errorf("own marker did not suppress: %+v", got)
				}
			}

			// Every OTHER analyzer's marker must neither silence this
			// analyzer's diagnostics nor produce stale reports under
			// its name.
			for _, other := range cases {
				if other.marker == "" || other.analyzer == tc.analyzer {
					continue
				}
				fset, file := parseOne(t, "package p\n\nvar x = 1 "+other.marker+"\n")
				in := []analysis.Diagnostic{{
					Pos:      file.Decls[0].Pos(),
					Analyzer: tc.analyzer,
					Message:  "violation",
				}}
				got := analysis.ApplySuppressions(fset, []*ast.File{file}, tc.analyzer, in)
				if len(got) != 1 || got[0].Message != "violation" {
					t.Errorf("marker %s leaked into %s: %+v", other.marker, tc.analyzer, got)
				}
			}
		})
	}
}

// TestStaleSuppressionPerAnalyzer checks the audit fires under each
// suppressible analyzer's own marker and name.
func TestStaleSuppressionPerAnalyzer(t *testing.T) {
	for _, analyzer := range []string{"detrand", "nanguard", "errdrop", "leakcheck", "lockorder", "unitcheck"} {
		t.Run(analyzer, func(t *testing.T) {
			marker := analysis.MarkerFor(analyzer)
			fset, file := parseOne(t, "package p\n\n"+marker+"\nvar a = 1\n")
			got := analysis.ApplySuppressions(fset, []*ast.File{file}, analyzer, nil)
			if len(got) != 1 || !strings.Contains(got[0].Message, "stale "+marker) {
				t.Fatalf("diagnostics = %+v, want one stale report for %s", got, marker)
			}
			if got[0].Analyzer != analyzer {
				t.Errorf("stale report attributed to %s, want %s", got[0].Analyzer, analyzer)
			}
		})
	}
}

// TestSuppressionTrailingCoversOwnLineOnly checks the one-statement scope
// directly on the filter: with diagnostics on the comment's line and the
// next line, only the former is silenced.
func TestSuppressionTrailingCoversOwnLineOnly(t *testing.T) {
	const src = `package p

var a = 1 //nomloc:nondeterministic-ok
var b = 2
`
	fset, file := parseOne(t, src)
	// Positions of the two declarations (lines 3 and 4).
	posA := file.Decls[0].Pos()
	posB := file.Decls[1].Pos()
	in := []analysis.Diagnostic{
		{Pos: posA, Analyzer: "detrand", Message: "violation a"},
		{Pos: posB, Analyzer: "detrand", Message: "violation b"},
	}
	got := analysis.ApplySuppressions(fset, []*ast.File{file}, "detrand", in)
	if len(got) != 1 || got[0].Message != "violation b" {
		t.Fatalf("diagnostics = %+v, want only the line-4 violation", got)
	}
}

// TestStaleSuppressionReported checks that a hatch with nothing under it
// becomes a diagnostic of its own.
func TestStaleSuppressionReported(t *testing.T) {
	const src = `package p

//nomloc:nondeterministic-ok
var a = 1
`
	fset, file := parseOne(t, src)
	got := analysis.ApplySuppressions(fset, []*ast.File{file}, "detrand", nil)
	if len(got) != 1 || !strings.Contains(got[0].Message, "stale") {
		t.Fatalf("diagnostics = %+v, want one stale-suppression report", got)
	}
	if line := fset.Position(got[0].Pos).Line; line != 3 {
		t.Fatalf("stale report on line %d, want the comment's line 3", line)
	}
}
