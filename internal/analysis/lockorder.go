package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// LockOrder builds the cross-function mutex acquisition-order graph of
// the concurrency-bearing packages (server, parallel, agent, telemetry)
// and reports every two-lock inversion — the classic AB-BA shape where
// one code path acquires A then B while another acquires B then A,
// which deadlocks the moment both paths run concurrently.
//
// The analyzer is summary-based from the ground up (DESIGN.md §11).
// Locks are abstracted by type, not instance: `s.mu.Lock()` on a
// *server.Server is the key "server.Server.mu", so any two Server
// values alias. Each function's summary carries the set of lock keys it
// may acquire (transitively, through the functions it calls) plus the
// order edges its own body closes: an edge A→B is recorded when B is
// acquired — directly or inside a callee — while A is held. Deferred
// unlocks do not release during the body, matching the
// `mu.Lock(); defer mu.Unlock()` idiom, and a goroutine spawned with
// `go` starts with an empty held set of its own. The global graph is
// the union of every summary's edges; an inversion is reported once, at
// a deterministic anchor edge, with both acquisition paths spelled out.
//
// Self-edges (re-acquiring the same key) are deliberately not reported:
// under type-based aliasing, locking two distinct values of one type is
// legitimate and common. The analyzer needs the whole-program view and
// reports nothing on intraprocedural runs.
// Escape hatch: //nomloc:lockorder-ok, audited for staleness.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "flag lock-order inversions (AB-BA deadlock shapes) in the " +
		"cross-function mutex acquisition graph of server, parallel, agent, " +
		"and telemetry",
	Run: runLockOrder,
}

// lockScopedPackages are the import-path base names whose mutexes
// participate in the acquisition-order graph.
var lockScopedPackages = map[string]bool{
	"server": true, "parallel": true, "agent": true, "telemetry": true,
}

func runLockOrder(pass *Pass) error {
	if pass.Prog == nil || !lockScopedPackages[path.Base(pass.Pkg.Path())] {
		return nil
	}
	for _, c := range lockConflicts(pass.Prog) {
		if c.anchor.pkgPath == pass.Pkg.Path() {
			pass.Reportf(c.anchor.pos,
				"lock order inversion between %s and %s: %s, but %s; acquire mutexes in one global order",
				c.a, c.b, c.anchor.desc, c.other.desc)
		}
	}
	return nil
}

// lockOrderEdge is one acquisition-order edge A→B with the evidence
// that closed it: the package and position to report at, and a rendered
// description of the path.
type lockOrderEdge struct {
	from, to string
	pkgPath  string
	pos      token.Pos
	desc     string
}

// lockSummary is one function's view of the acquisition graph.
type lockSummary struct {
	// acquires maps each lock key the function may take — itself or
	// transitively — to the rendered site of the ultimate direct
	// acquisition ("server.(*Server).handle at server.go:42").
	acquires map[string]string
	// edges maps "from\x00to" to the order edge this function's body
	// closes.
	edges map[string]lockOrderEdge
}

var lockSummarizer = Summarizer[lockSummary]{
	Name:   "lockorder",
	Bottom: func() lockSummary { return lockSummary{} },
	Equal: func(a, b lockSummary) bool {
		if len(a.acquires) != len(b.acquires) || len(a.edges) != len(b.edges) {
			return false
		}
		for k, v := range a.acquires {
			if b.acquires[k] != v {
				return false
			}
		}
		for k, v := range a.edges {
			if b.edges[k] != v {
				return false
			}
		}
		return true
	},
	Compute: computeLockSummary,
}

// lockHeld maps each held lock key to the rendered site where the
// current path acquired it.
type lockHeld map[string]string

func computeLockSummary(sm *Summaries[lockSummary], n *Node) lockSummary {
	fi := n.Fn
	if fi == nil || fi.Body == nil {
		return lockSummary{}
	}
	if !lockScopedPackages[path.Base(fi.Pkg.Path)] {
		return lockSummary{}
	}
	sc := &lockScan{fi: fi, sum: sm}
	cfg := NewCFG(fi.Body)
	p := sc.problem()
	in := Forward(cfg, p)

	// Recording pass: replay each reachable block against its fixpoint
	// entry fact, now capturing acquires and edges.
	sc.out = lockSummary{acquires: map[string]string{}, edges: map[string]lockOrderEdge{}}
	sc.recording = true
	reachable := cfg.Reachable(cfg.Entry)
	for _, b := range cfg.Blocks {
		if !reachable[b] {
			continue
		}
		s := p.Clone(in[b])
		for _, atom := range b.Atoms {
			s = p.Transfer(s, atom)
		}
	}
	sc.recording = false
	if len(sc.out.acquires) == 0 && len(sc.out.edges) == 0 {
		return lockSummary{}
	}
	return sc.out
}

// lockScan runs the held-set dataflow over one function body.
type lockScan struct {
	fi        *FuncInfo
	sum       *Summaries[lockSummary]
	recording bool
	out       lockSummary
}

func (sc *lockScan) problem() FlowProblem[lockHeld] {
	clone := func(s lockHeld) lockHeld {
		out := make(lockHeld, len(s))
		for k, v := range s {
			out[k] = v
		}
		return out
	}
	return FlowProblem[lockHeld]{
		Entry:  lockHeld{},
		Bottom: func() lockHeld { return nil },
		Clone:  clone,
		// Join is union (held on any path counts), smallest witness kept
		// for determinism.
		Join: func(a, b lockHeld) lockHeld {
			if a == nil {
				return clone(b)
			}
			if b == nil {
				return clone(a)
			}
			out := clone(a)
			for k, v := range b {
				if prev, ok := out[k]; !ok || v < prev {
					out[k] = v
				}
			}
			return out
		},
		Transfer: sc.transfer,
		Equal: func(a, b lockHeld) bool {
			if (a == nil) != (b == nil) || len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if w, ok := b[k]; !ok || v != w {
					return false
				}
			}
			return true
		},
	}
}

// transfer folds one atom's calls into the held set, in pre-order.
// Deferred calls are skipped (a deferred unlock releases at exit, not
// here) and so are go statements (the spawned goroutine holds nothing
// of this path's).
func (sc *lockScan) transfer(s lockHeld, atom ast.Node) lockHeld {
	ast.Inspect(atom, func(x ast.Node) bool {
		switch x.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sc.applyCall(s, call)
		return true
	})
	return s
}

func (sc *lockScan) applyCall(s lockHeld, call *ast.CallExpr) {
	info := sc.fi.Pkg.Info
	if recv, name, ok := lockMethodCall(info, call); ok {
		key := lockKeyOf(info, recv, sc.fi.Pkg.Path)
		if key == "" {
			return
		}
		switch name {
		case "Lock", "RLock":
			if sc.recording {
				site := sc.shortID() + " at " + sc.posStr(call.Pos())
				sc.record(key, site)
				for _, h := range sortedHeld(s) {
					if h.key == key {
						continue
					}
					sc.recordEdge(h.key, key, call.Pos(), fmt.Sprintf(
						"%s acquires %s at %s while holding %s (since %s)",
						sc.shortID(), key, sc.posStr(call.Pos()), h.key, h.since))
				}
			}
			if _, held := s[key]; !held {
				s[key] = sc.posStr(call.Pos())
			}
		case "Unlock", "RUnlock":
			delete(s, key)
		}
		return
	}
	// A non-lock call: every key the callee may acquire is ordered
	// after every key held here. The callee's locks are assumed
	// balanced, so the held set is unchanged on return.
	sum, ok := sc.sum.OfCall(info, call)
	if !ok || len(sum.acquires) == 0 || !sc.recording {
		return
	}
	for _, k := range sortedKeys(sum.acquires) {
		sc.record(k, sum.acquires[k])
		for _, h := range sortedHeld(s) {
			if h.key == k {
				continue
			}
			sc.recordEdge(h.key, k, call.Pos(), fmt.Sprintf(
				"%s calls %s at %s while holding %s (since %s), and the callee acquires %s (%s)",
				sc.shortID(), callName(info, call), sc.posStr(call.Pos()), h.key, h.since, k, sum.acquires[k]))
		}
	}
}

// record notes a (possibly transitive) acquisition, first witness wins
// so summaries stabilize.
func (sc *lockScan) record(key, site string) {
	if _, ok := sc.out.acquires[key]; !ok {
		sc.out.acquires[key] = site
	}
}

func (sc *lockScan) recordEdge(from, to string, pos token.Pos, desc string) {
	k := from + "\x00" + to
	if _, ok := sc.out.edges[k]; !ok {
		sc.out.edges[k] = lockOrderEdge{from: from, to: to, pkgPath: sc.fi.Pkg.Path, pos: pos, desc: desc}
	}
}

// shortID renders the function's ID with the import path shortened to
// its base ("server.(*Server).handle").
func (sc *lockScan) shortID() string {
	return shortFuncID(sc.fi.ID)
}

func shortFuncID(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}

func (sc *lockScan) posStr(pos token.Pos) string {
	p := sc.fi.Pkg.Fset.Position(pos)
	return path.Base(strings.ReplaceAll(p.Filename, "\\", "/")) + ":" + fmt.Sprint(p.Line)
}

type heldEntry struct{ key, since string }

func sortedHeld(s lockHeld) []heldEntry {
	out := make([]heldEntry, 0, len(s))
	for k, v := range s {
		out = append(out, heldEntry{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// lockMethodCall recognizes sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock
// method calls, returning the receiver expression and method name.
func lockMethodCall(info *types.Info, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return nil, "", false
	}
	switch f.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return sel.X, f.Name(), true
	}
	return nil, "", false
}

// lockKeyOf abstracts a lock receiver to its type-based key:
// "pkgbase.Type.field" for a mutex field, "pkgbase.Type" for an
// embedded mutex, "pkgbase.name" for a package-level or local mutex
// variable.
func lockKeyOf(info *types.Info, recv ast.Expr, pkgPath string) string {
	recv = ast.Unparen(recv)
	switch e := recv.(type) {
	case *ast.SelectorExpr:
		if owner := namedOwner(info.TypeOf(e.X)); owner != nil {
			return typeKey(owner) + "." + e.Sel.Name
		}
		return path.Base(pkgPath) + "." + e.Sel.Name
	case *ast.Ident:
		if owner := namedOwner(info.TypeOf(e)); owner != nil && !isSyncLockType(owner) {
			// Embedded mutex: s.Lock() with S embedding sync.Mutex.
			return typeKey(owner)
		}
		return path.Base(pkgPath) + "." + e.Name
	}
	return ""
}

// namedOwner unwraps pointers and returns the named type, or nil.
func namedOwner(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func typeKey(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return path.Base(obj.Pkg().Path()) + "." + obj.Name()
}

func isSyncLockType(named *types.Named) bool {
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockConflict is one AB-BA inversion: the anchor edge (reported) and
// the other direction (quoted in the message).
type lockConflict struct {
	a, b          string
	anchor, other lockOrderEdge
}

// lockConflicts unions every function's order edges and returns the
// pairwise inversions, computed once per program and sorted by
// (a, b, anchor package).
func lockConflicts(prog *Program) []lockConflict {
	return prog.cached("lockorder:conflicts", func() any {
		sm := SummariesFor(prog, lockSummarizer)
		edges := map[string]lockOrderEdge{}
		for _, n := range prog.Graph.Nodes {
			sum := sm.Of(n.ID)
			for _, k := range sortedEdgeKeys(sum.edges) {
				if _, ok := edges[k]; !ok {
					edges[k] = sum.edges[k]
				}
			}
		}
		var out []lockConflict
		for _, k := range sortedEdgeKeys(edges) {
			e := edges[k]
			if e.from >= e.to {
				continue // each unordered pair considered once, from its a<b edge
			}
			rev, ok := edges[e.to+"\x00"+e.from]
			if !ok {
				continue
			}
			anchor, other := e, rev
			if other.pkgPath < anchor.pkgPath || (other.pkgPath == anchor.pkgPath && other.desc < anchor.desc) {
				anchor, other = other, anchor
			}
			out = append(out, lockConflict{a: e.from, b: e.to, anchor: anchor, other: other})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].a != out[j].a {
				return out[i].a < out[j].a
			}
			return out[i].b < out[j].b
		})
		return out
	}).([]lockConflict)
}

func sortedEdgeKeys(m map[string]lockOrderEdge) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
