package analysis_test

import (
	"testing"

	"github.com/nomloc/nomloc/internal/analysis"
	"github.com/nomloc/nomloc/internal/analysis/analysistest"
)

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.ErrDrop,
		"errdrop/core", "errdrop/other")
}
