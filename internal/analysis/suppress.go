package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// SuppressComment is detrand's escape hatch, kept as a named constant
// because production code and docs reference it; the per-analyzer
// marker table below is the general mechanism.
const SuppressComment = "//nomloc:nondeterministic-ok"

// analyzerMarkers maps each suppressible analyzer to its escape-hatch
// comment. Placed at the end of the offending line (or alone on the
// line directly above it) the marker silences diagnostics on exactly
// that one line; a rationale may follow after a space. Suppressions
// are audited — one that silences nothing is itself reported, so
// escape hatches cannot outlive the code they excused.
//
// seedmix, floateq, and locksafe have no marker on purpose: seed
// derivations, float comparisons, and lock conventions are always
// fixable in place, so those checks admit no sanctioned exceptions.
var analyzerMarkers = map[string]string{
	"detrand":   SuppressComment,
	"nanguard":  "//nomloc:nanguard-ok",
	"errdrop":   "//nomloc:errdrop-ok",
	"leakcheck": "//nomloc:leakcheck-ok",
	"lockorder": "//nomloc:lockorder-ok",
	"unitcheck": "//nomloc:unitcheck-ok",
	"effects":   "//nomloc:effects-ok",
}

// MarkerFor returns the escape-hatch comment for an analyzer, or ""
// when the analyzer admits no suppressions.
func MarkerFor(analyzer string) string { return analyzerMarkers[analyzer] }

// ApplySuppressions filters diags through the analyzer's escape-hatch
// comments found in files, returning the surviving diagnostics plus one
// stale-suppression diagnostic (attributed to analyzer) for every
// comment that suppressed nothing. Call it once per (package, analyzer)
// run; for analyzers without a marker it returns diags unchanged and
// reports no staleness. Each analyzer audits only its own marker, so a
// stale //nomloc:nanguard-ok is reported by nanguard's run alone.
func ApplySuppressions(fset *token.FileSet, files []*ast.File, analyzer string, diags []Diagnostic) []Diagnostic {
	marker := analyzerMarkers[analyzer]
	if marker == "" {
		return diags
	}

	type suppression struct {
		pos  token.Pos
		file string
		line int
		used bool
	}
	var sups []*suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, marker) {
					continue
				}
				// Require a clean boundary: exactly the marker, or the
				// marker followed by whitespace and a rationale.
				rest := c.Text[len(marker):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				p := fset.Position(c.Pos())
				sups = append(sups, &suppression{pos: c.Pos(), file: p.Filename, line: p.Line})
			}
		}
	}
	if len(sups) == 0 {
		return diags
	}

	// Each suppression covers exactly one line: its own when a diagnostic
	// sits there (trailing comment), otherwise the line below (standalone
	// comment above the statement).
	onLine := func(file string, line int) bool {
		for _, d := range diags {
			p := fset.Position(d.Pos)
			if p.Filename == file && p.Line == line {
				return true
			}
		}
		return false
	}
	for _, s := range sups {
		if !onLine(s.file, s.line) {
			s.line++
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		p := fset.Position(d.Pos)
		suppressed := false
		for _, s := range sups {
			if s.file == p.Filename && p.Line == s.line {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, s := range sups {
		if !s.used {
			kept = append(kept, Diagnostic{
				Pos:      s.pos,
				Analyzer: analyzer,
				Message:  "stale " + marker + " suppression: no diagnostic on this or the next line",
			})
		}
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept
}
