package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// SuppressComment is the escape hatch for detrand findings: placed at the
// end of the offending line (or alone on the line directly above it), it
// silences diagnostics on exactly that one statement's line. A rationale
// may follow after a space. Suppressions are audited — one that silences
// nothing is itself reported, so escape hatches cannot outlive the code
// they excused.
const SuppressComment = "//nomloc:nondeterministic-ok"

// suppressibleAnalyzers names the analyzers SuppressComment applies to.
// The other checks have no sanctioned exceptions: seed derivations,
// float comparisons, and lock conventions are always fixable in place.
var suppressibleAnalyzers = map[string]bool{"detrand": true}

// ApplySuppressions filters diags through the SuppressComment escape
// hatches found in files, returning the surviving diagnostics plus one
// stale-suppression diagnostic (attributed to analyzer) for every
// comment that suppressed nothing. Call it once per (package, analyzer)
// run; for analyzers outside the suppressible set it returns diags
// unchanged and reports no staleness (the comments belong to detrand's
// audit, not theirs).
func ApplySuppressions(fset *token.FileSet, files []*ast.File, analyzer string, diags []Diagnostic) []Diagnostic {
	if !suppressibleAnalyzers[analyzer] {
		return diags
	}

	type suppression struct {
		pos  token.Pos
		file string
		line int
		used bool
	}
	var sups []*suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, SuppressComment) {
					continue
				}
				// Require a clean boundary: exactly the marker, or the
				// marker followed by whitespace and a rationale.
				rest := c.Text[len(SuppressComment):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				p := fset.Position(c.Pos())
				sups = append(sups, &suppression{pos: c.Pos(), file: p.Filename, line: p.Line})
			}
		}
	}
	if len(sups) == 0 {
		return diags
	}

	// Each suppression covers exactly one line: its own when a diagnostic
	// sits there (trailing comment), otherwise the line below (standalone
	// comment above the statement).
	onLine := func(file string, line int) bool {
		for _, d := range diags {
			p := fset.Position(d.Pos)
			if p.Filename == file && p.Line == line {
				return true
			}
		}
		return false
	}
	for _, s := range sups {
		if !onLine(s.file, s.line) {
			s.line++
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		p := fset.Position(d.Pos)
		suppressed := false
		for _, s := range sups {
			if s.file == p.Filename && p.Line == s.line {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, s := range sups {
		if !s.used {
			kept = append(kept, Diagnostic{
				Pos:      s.pos,
				Analyzer: analyzer,
				Message:  "stale " + SuppressComment + " suppression: no diagnostic on this or the next line",
			})
		}
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept
}
