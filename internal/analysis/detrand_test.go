package analysis_test

import (
	"testing"

	"github.com/nomloc/nomloc/internal/analysis"
	"github.com/nomloc/nomloc/internal/analysis/analysistest"
)

func TestDetRand(t *testing.T) {
	// core and chaos are inside the determinism contract, other is not:
	// the same violations must report in the former and stay silent in
	// the latter.
	analysistest.Run(t, analysistest.TestData(), analysis.DetRand, "core", "chaos", "other")
}
