// Package other is leakcheck's scope-negative fixture: goroutines
// outside server/parallel/agent are not audited.
package other

func work() {}

func unsupervised() {
	go func() { // out of scope: no diagnostic
		for {
			work()
		}
	}()
}
