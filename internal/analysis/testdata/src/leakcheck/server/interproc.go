// Interprocedural leakcheck cases: spawned named functions are judged
// by their own bodies, and signals flow through the helpers a closure
// calls — neither is visible at the spawn site alone.
package server

import "context"

func busy() {}

// spin accepts a context and then ignores it; the lifecycle-argument
// heuristic would trust the spawn, the body proves it cannot stop.
func spin(ctx context.Context) {
	for {
		busy()
	}
}

func spawnsSpin(ctx context.Context) {
	go spin(ctx) // want `goroutine calls spin, which loops forever with no context, channel, or WaitGroup`
}

// pump drains its channel, so a closure delegating to it is governed
// even though the closure body holds no channel operation of its own.
func pump(ch chan int) {
	for range ch {
	}
}

func spawnsPump(ch chan int) {
	go func() {
		pump(ch)
	}()
}

// step performs one receive; a forever-loop around it can be shut down
// by closing the channel.
func step(ch chan int) {
	<-ch
}

func loopsOverStep(ch chan int) {
	go func() {
		for {
			step(ch)
		}
	}()
}

// quits returns without touching any signal; spawning it directly is a
// leak even though nothing at the spawn site says so.
func quits() {
	busy()
}

func spawnsQuits() {
	go quits() // want `goroutine calls quits, which can return without touching a context, channel, or WaitGroup`
}
