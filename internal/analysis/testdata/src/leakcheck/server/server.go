// Package server is a leakcheck fixture: its directory base name puts
// it inside the analyzer's concurrency scope.
package server

import (
	"context"
	"sync"
)

func work()   {}
func use(int) {}

func handle(ctx context.Context) { <-ctx.Done() }

func unsupervised() {
	go func() { // want `goroutine can return without touching a context, channel, or WaitGroup`
		work()
	}()
}

func spinsForever() {
	go func() { // want `goroutine loops forever with no context, channel, or WaitGroup`
		for {
			work()
		}
	}()
}

func namedNoHandle() {
	go work() // want `goroutine calls work, which can return without touching a context, channel, or WaitGroup`
}

func signaledOnOnePathOnly(wg *sync.WaitGroup, flag bool) {
	go func() { // want `goroutine can return without touching a context, channel, or WaitGroup`
		if flag {
			wg.Done()
		}
	}()
}

func deferredDone(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		work()
	}()
}

func deferredDoneInClosure(wg *sync.WaitGroup) {
	go func() {
		defer func() { wg.Done() }()
		work()
	}()
}

func watchesContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func drainsChannel(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

func selectLoop(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				use(v)
			}
		}
	}()
}

func sendsResult(ch chan int) {
	go func() {
		ch <- 1
	}()
}

func closesDone(done chan struct{}) {
	go func() {
		defer close(done)
		work()
	}()
}

func namedWithContext(ctx context.Context) {
	go handle(ctx)
}

func suppressed() {
	go func() { //nomloc:leakcheck-ok fixture demonstrates the audited escape hatch
		for {
			work()
		}
	}()
}
