// Package track is the escape-hatch fixture (directory name inside the
// determinism contract): suppressions silence exactly one statement, and
// a suppression with nothing under it is itself reported.
package track

import "time"

func suppressedTrailing() time.Time {
	return time.Now() //nomloc:nondeterministic-ok wall clock feeds a log line only
}

func suppressedAbove() time.Time {
	//nomloc:nondeterministic-ok
	return time.Now()
}

func suppressesOnlyOneStatement() (time.Time, time.Time) {
	a := time.Now() //nomloc:nondeterministic-ok
	b := time.Now() // want `time.Now is nondeterministic`
	return a, b
}

//nomloc:nondeterministic-ok // want `stale //nomloc:nondeterministic-ok suppression`
