// Package eval is a seedmix fixture: the directory name puts it inside
// the determinism contract, where seed derivations must go through
// parallel.MixSeed.
package eval

import (
	"math/rand"

	"github.com/nomloc/nomloc/internal/parallel"
)

func adHoc(seed int64, si int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(si)*7919)) // want `ad-hoc seed arithmetic`
}

func xorMix(seed int64, i int) rand.Source {
	return rand.NewSource(seed ^ int64(i)<<7) // want `ad-hoc seed arithmetic`
}

func mixed(seed int64, si int) *rand.Rand {
	return rand.New(rand.NewSource(parallel.MixSeed(seed, int64(si), 0)))
}

func plainSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func constSeed() rand.Source {
	return rand.NewSource(42)
}
