// Package lp is a floateq fixture: the directory name puts it inside the
// determinism contract, where exact float comparison needs a tolerance
// helper.
package lp

import "math"

func bad(a, b float64) bool {
	return a == b // want `exact floating-point ==`
}

func badNeq(a, b float64) bool {
	return a != b+1 // want `exact floating-point !=`
}

func badFloat32(a float32, b float32) bool {
	return a == b // want `exact floating-point ==`
}

func zeroSentinel(x float64) bool {
	return x == 0
}

func zeroPivotSkip(factor float64) bool {
	return factor != 0
}

func nanProbe(x float64) bool {
	return x != x
}

func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

func tinyConstCompare(x float64) bool {
	return x == 1e-300 // want `exact floating-point ==`
}

func ints(a, b int) bool {
	return a == b
}
