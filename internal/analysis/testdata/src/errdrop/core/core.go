// Package core is an errdrop fixture: its directory base name puts it
// inside the determinism contract the analyzer scopes to.
package core

import (
	"errors"
	"strings"
)

var errBoom = errors.New("boom")

func mayFail() error    { return errBoom }
func val() (int, error) { return 0, errBoom }
func use(int)           {}
func consume(error)     {}

func blankDiscard() {
	_ = mayFail() // want `error result of mayFail discarded with _`
}

func bareCall() {
	mayFail() // want `result of mayFail contains an error that is discarded`
}

func tupleBlank() {
	v, _ := val() // want `error result of val discarded with _`
	use(v)
}

func checkedOnOnePath(flag bool) error {
	err := mayFail() // want `error assigned to err is never checked on some path`
	if flag {
		return err
	}
	return nil
}

func overwritten() error {
	err := mayFail()
	err = mayFail() // want `error in err assigned at .* is overwritten before being checked`
	return err
}

func checkedProperly() {
	err := mayFail()
	if err != nil {
		consume(err)
	}
}

func checkedOnBothBranches(flag bool) error {
	err := mayFail()
	if flag {
		return err
	}
	consume(err)
	return nil
}

// namedResult is exempt: assigning a named error result is returning it.
func namedResult() (err error) {
	err = mayFail()
	return
}

// explicitDrop stays legal: discarding a plain variable is a visible,
// greppable decision, unlike discarding a call result inline.
func explicitDrop() {
	err := mayFail()
	_ = err
}

// closureRead counts as a check: the deferred closure consumes err.
func closureRead() {
	err := mayFail()
	defer func() { consume(err) }()
}

// builderWrites is exempt: strings.Builder's writers are documented to
// never return a non-nil error.
func builderWrites() string {
	var b strings.Builder
	b.WriteString("x")
	return b.String()
}

func suppressed() {
	_ = mayFail() //nomloc:errdrop-ok fixture demonstrates the audited escape hatch
}
