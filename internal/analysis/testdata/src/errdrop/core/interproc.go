// Interprocedural errdrop cases: infallibility proven from callee
// bodies in this file, consumed at call sites below — the summary is
// what lets a discarded error go unreported.
package core

// neverFails hands back a literal nil in its error position on every
// return, so its summary proves it infallible.
func neverFails() error { return nil }

// wrapsNil is infallible transitively: its only return forwards another
// infallible call.
func wrapsNil() error { return neverFails() }

// wrapsBoom forwards a fallible call, so it stays fallible.
func wrapsBoom() error { return mayFail() }

// provenInfallible discards results the summaries prove are always nil;
// without the interprocedural view both lines would be reported.
func provenInfallible() {
	neverFails()
	_ = wrapsNil()
}

func stillFallible() {
	wrapsBoom()     // want `result of wrapsBoom contains an error that is discarded`
	_ = wrapsBoom() // want `error result of wrapsBoom discarded with _`
}
