// Package other is errdrop's scope-negative fixture: dropped errors
// outside the deterministic packages are some other tool's business.
package other

import "errors"

var errBoom = errors.New("boom")

func mayFail() error { return errBoom }

func drop() {
	_ = mayFail() // out of scope: no diagnostic
}
