// Package core is a detrand fixture: its directory name puts it inside
// the determinism contract.
package core

import (
	"math/rand"
	"sort"
	"time"

	"github.com/nomloc/nomloc/internal/telemetry"
)

func clock() time.Time {
	return time.Now() // want `time.Now is nondeterministic`
}

func telemetryClock() time.Time {
	return telemetry.WallClock() // want `telemetry.WallClock reads the wall clock`
}

func telemetryClockValue() telemetry.Clock {
	return telemetry.WallClock // want `telemetry.WallClock reads the wall clock`
}

func injectedClock(c telemetry.Clock) time.Time {
	return c()
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand source`
}

func localRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func mapIter(m map[string]int) int {
	sum := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		sum += v
	}
	return sum
}

func mapCollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sliceIter(xs []int) int {
	sum := 0
	for _, v := range xs {
		sum += v
	}
	return sum
}
