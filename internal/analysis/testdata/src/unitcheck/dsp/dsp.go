// Package dsp is a unitcheck fixture: its directory base name puts it
// inside the analyzer's radio-math scope. Units come from the name
// heuristics (DBm/DB/MW/RSSI/Rad/Meters suffixes) and from
// //nomloc:unit annotations; summaries carry them across calls.
package dsp

func mixes(powerMW, levelDBm float64) float64 {
	return powerMW + levelDBm // want `unit mismatch: mW \+ dBm; convert to a common unit first`
}

// ratioOf is fine: the difference of two absolute levels is a ratio.
func ratioOf(aDBm, bDBm float64) float64 {
	return aDBm - bDBm
}

// applyGain is fine: adding a dB gain to a dBm level yields dBm.
func applyGain(levelDBm, gainDB float64) float64 {
	return levelDBm + gainDB
}

func relabel(linearMW float64) float64 {
	levelDBm := linearMW // want `assigning mW value to levelDBm, which is named as dBm; convert first`
	return levelDBm
}

// attenuate subtracts a loss from a level; the annotation declares what
// the bare parameter names cannot.
//
//nomloc:unit level=dBm loss=dB
func attenuate(level, loss float64) float64 {
	return level - loss
}

func misuses(powerMW float64) float64 {
	return attenuate(powerMW, 3) // want `argument 1 of attenuate is mW but the callee declares dBm; convert before the call`
}

func usesRight(levelDBm, fadeDB float64) float64 {
	return attenuate(levelDBm, fadeDB)
}

// strongest returns one of its dBm parameters, so its result unit is
// inferred as dBm from the return expressions alone.
func strongest(aDBm, bDBm float64) float64 {
	if aDBm > bDBm {
		return aDBm
	}
	return bDBm
}

func comparesInferred(spanMeters float64) bool {
	return strongest(-40, -60) > spanMeters // want `unit mismatch: dBm > m; convert to a common unit first`
}

// Profile carries field annotations where names give nothing away.
type Profile struct {
	Gain float64 //nomloc:unit dB
	Span float64 //nomloc:unit m
}

func fieldMix(p Profile, levelDBm float64) float64 {
	return levelDBm + p.Span // want `unit mismatch: dBm \+ m; convert to a common unit first`
}

func fieldOK(p Profile, levelDBm float64) float64 {
	return levelDBm + p.Gain
}

// MeanRSSI exercises the function-name heuristic: the body infers no
// unit, the RSSI suffix declares the result dBm.
func MeanRSSI(samples []float64) float64 {
	var sum float64
	for _, s := range samples {
		sum += s
	}
	return sum / float64(len(samples))
}

func rssiVsDistance(distMeters float64) bool {
	return MeanRSSI(nil) < distMeters // want `unit mismatch: dBm < m; convert to a common unit first`
}

func accumulate(readingsDBm []float64, offsetMW float64) float64 {
	totalDBm := 0.0
	for _, r := range readingsDBm {
		totalDBm += r
	}
	totalDBm += offsetMW // want `unit mismatch: dBm value combined with mW \+=; convert to a common unit first`
	return totalDBm
}

func suppressed(powerMW, levelDBm float64) float64 {
	return powerMW + levelDBm //nomloc:unitcheck-ok fixture demonstrates the audited escape hatch
}
