// Package other sits outside the unitcheck scope (its base name is not
// csi, channel, dsp, baseline, or core), so mixed units stay silent.
package other

func mixes(powerMW, levelDBm float64) float64 {
	return powerMW + levelDBm
}
