// locksafe edge cases around unlock placement. locksafe's locked-call
// check is deliberately lexical — any (R)Lock earlier in the function
// body counts as "held" — so these fixtures pin both sides of that
// line: the shapes it must keep catching, and the unlock-path
// subtleties it knowingly leaves to the race detector.
package server

import "sync"

type RStore struct {
	mu    sync.RWMutex
	items map[string]int
}

func (r *RStore) getLocked(k string) int { return r.items[k] }

// DeferredRUnlockInLoop: the deferred RUnlocks pile up until function
// return, so every iteration after the first re-locks an already-held
// RLock. The lexical model sees an RLock before the call and stays
// silent — pinned here as the documented limit of the check.
func (r *RStore) DeferredRUnlockInLoop(keys []string) int {
	total := 0
	for _, k := range keys {
		r.mu.RLock()
		defer r.mu.RUnlock()
		total += r.getLocked(k)
	}
	return total
}

// LoopCallBeforeLock is the companion true positive: the same loop
// shape with the *Locked call made before any lock exists in the
// function.
func (r *RStore) LoopCallBeforeLock(keys []string) int {
	total := 0
	for _, k := range keys {
		total += r.getLocked(k) // want `getLocked is called without a lock held in LoopCallBeforeLock`
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return total
}

// DoubleUnlockOnBranch: the error path unlocks and then falls through
// to the shared unlock — a guaranteed "unlock of unlocked mutex" panic
// at runtime. locksafe does not model unlock counts; pinned silent as
// the documented limit.
func (r *RStore) DoubleUnlockOnBranch(k string, fail bool) int {
	r.mu.Lock()
	v := r.getLocked(k)
	if fail {
		r.mu.Unlock()
	}
	r.mu.Unlock()
	return v
}

// BranchWithoutLock: the fast path calls into locked state before the
// function ever takes the lock. The lexical check orders by position,
// so the early call reports and the properly covered one below does
// not.
func (r *RStore) BranchWithoutLock(k string, cached bool) int {
	if cached {
		return r.getLocked(k) // want `getLocked is called without a lock held in BranchWithoutLock`
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.getLocked(k)
}

// LockInOneBranchReleaseInAnother: whether the lock is held at the call
// depends on `take`, which the lexical model cannot see — any earlier
// Lock counts. Pinned silent as the documented limit.
func (r *RStore) LockInOneBranchReleaseInAnother(k string, take bool) int {
	if take {
		r.mu.Lock()
	}
	v := r.getLocked(k)
	if take {
		r.mu.Unlock()
	}
	return v
}

// SumAll pins the copylocks side for RWMutex: range values copy the
// lock every iteration.
func SumAll(stores []RStore) int {
	total := 0
	for _, s := range stores { // want `range value copies sync.RWMutex per iteration`
		total += len(s.items)
	}
	return total
}
