// Package server is a locksafe fixture. locksafe runs everywhere, so the
// directory name carries no meaning beyond matching the real package the
// convention came from.
package server

import "sync"

type Store struct {
	mu    sync.Mutex
	items map[string]int
}

func (s *Store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(k)
}

func (s *Store) getLocked(k string) int { return s.items[k] }

func (s *Store) Bad(k string) int {
	return s.getLocked(k) // want `getLocked is called without a lock held in Bad`
}

func (s *Store) chainLocked(k string) int {
	return s.getLocked(k)
}

func CopyDeref(s *Store) {
	v := *s // want `assignment copies sync.Mutex by value`
	_ = v
}

func CopyAssign(a, b Store) {
	a = b // want `assignment copies sync.Mutex by value`
	_ = a
}

func (s Store) ValueRecv() {} // want `value receiver of ValueRecv copies sync.Mutex`

func Iterate(xs []Store) {
	for _, x := range xs { // want `range value copies sync.Mutex`
		_ = x
	}
}

func IterateByIndex(xs []Store) {
	for i := range xs {
		xs[i].mu.Lock()
		xs[i].mu.Unlock()
	}
}

func FreshValue() {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
}
