// Package other is a detrand fixture outside the determinism contract:
// nothing here may be reported.
package other

import (
	"math/rand"
	"time"
)

func clock() time.Time {
	return time.Now()
}

func globalRand() int {
	return rand.Intn(10)
}

func mapIter(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
