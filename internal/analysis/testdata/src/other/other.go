// Package other is a detrand fixture outside the determinism contract:
// nothing here may be reported.
package other

import (
	"math/rand"
	"time"

	"github.com/nomloc/nomloc/internal/telemetry"
)

func clock() time.Time {
	return time.Now()
}

func telemetryClock() time.Time {
	return telemetry.WallClock()
}

func globalRand() int {
	return rand.Intn(10)
}

func mapIter(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
