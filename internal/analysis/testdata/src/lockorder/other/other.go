// Package other sits outside the lockorder scope (its base name is not
// server, parallel, agent, or telemetry), so even a textbook AB-BA
// inversion stays silent.
package other

import "sync"

type left struct{ mu sync.Mutex }
type right struct{ mu sync.Mutex }

var (
	l left
	r right
)

func leftThenRight() {
	l.mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	l.mu.Unlock()
}

func rightThenLeft() {
	r.mu.Lock()
	l.mu.Lock()
	l.mu.Unlock()
	r.mu.Unlock()
}
