// Package server is a lockorder fixture: its directory base name puts
// it inside the analyzer's concurrency scope. The inversion below is
// only visible interprocedurally — one direction runs through a callee.
package server

import "sync"

type registry struct{ mu sync.Mutex }
type journal struct{ mu sync.Mutex }

var (
	reg registry
	jnl journal
)

// lockJournal acquires the journal lock on behalf of its callers; the
// summary carries that fact up the call graph.
func lockJournal() {
	jnl.mu.Lock()
	jnl.mu.Unlock()
}

// registryThenJournal closes registry→journal through the callee.
func registryThenJournal() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	lockJournal()
}

// journalThenRegistry closes journal→registry directly, completing the
// AB-BA shape. Its description sorts first, so the inversion anchors on
// the second acquisition below.
func journalThenRegistry() {
	jnl.mu.Lock()
	reg.mu.Lock() // want `lock order inversion between server.journal.mu and server.registry.mu`
	reg.mu.Unlock()
	jnl.mu.Unlock()
}

// sameOrderTwice repeats the registry→journal order; consistent orders
// never report.
func sameOrderTwice() {
	reg.mu.Lock()
	jnl.mu.Lock()
	jnl.mu.Unlock()
	reg.mu.Unlock()
}

type alpha struct{ mu sync.Mutex }
type beta struct{ mu sync.Mutex }

var (
	va alpha
	vb beta
)

// alphaThenBeta and betaThenAlpha invert each other; the anchor lands
// here and the audited escape hatch silences it.
func alphaThenBeta() {
	va.mu.Lock()
	vb.mu.Lock() //nomloc:lockorder-ok fixture demonstrates the audited escape hatch
	vb.mu.Unlock()
	va.mu.Unlock()
}

func betaThenAlpha() {
	vb.mu.Lock()
	va.mu.Lock()
	va.mu.Unlock()
	vb.mu.Unlock()
}
