// Package effectsgate exercises the replay-safety gate: the test points
// analysis.GateRoots at Entry and Unannotated, so every forbidden effect
// atom reachable from them must be diagnosed — the regression the issue
// contract demands for a time.Now or map-range seeded into the solve
// path.
package effectsgate

import "time"

//nomloc:effect(wallclock,maporder)
func Entry(m map[string]int) int {
	return helper(m)
}

// helper is not a root itself; its atoms are reported with the BFS path
// from the root that reaches it.

func helper(m map[string]int) int {
	t := 0
	for _, v := range m { // want `replay-safety gate: ranges over a map with an order-sensitive body \(maporder\) in effectsgate.helper, reachable from gate root effectsgate.Entry via effectsgate.Entry → effectsgate.helper`
		t += v
	}
	_ = time.Now() // want `replay-safety gate: calls time.Now \(wallclock\) in effectsgate.helper, reachable from gate root effectsgate.Entry`
	return t
}

// A root without a //nomloc:effect annotation is itself a finding: the
// gate demands the solve path's contract be written down.

func Unannotated() int { // want `replay-safety gate root effectsgate.Unannotated must declare its effect set with a //nomloc:effect\(pure\) annotation`
	return pureHelper()
}

func pureHelper() int { return 41 }

// Unreachable from any root: its clock read is effects-legal (only
// detrand would care, and this package is not determinism-scoped).

func offPath() time.Time {
	return time.Now()
}
