// Package other is nanguard's scope-negative fixture: the same shapes
// that fire inside core/lp stay silent in any other package.
package other

import "math"

func coords(d float64) []float64 {
	return []float64{1 / d} // out of scope: no diagnostic
}

func logged(x float64) []float64 {
	return []float64{math.Log(x)} // out of scope: no diagnostic
}
