// Interprocedural nanguard cases: the cause lives in a callee in this
// file while the // want expectation sits on the caller's line — only
// the summary-driven analysis (DESIGN.md §11) connects the two.
package core

import "math"

// divByParam divides by its parameter with no guard, so its summary
// marks the result possibly-NaN on every call.
func divByParam(pi, pj float64) float64 {
	return pj / pi
}

func callerUnguarded(pi, pj float64) float64 {
	return F(divByParam(pi, pj)) // want `possibly-NaN value reaches confidence computation \(F\)`
}

// safeRatio vets its own result before returning, so its summary is
// clean and callers may feed it to sinks without ceremony.
func safeRatio(pi, pj float64) float64 {
	x := pj / pi
	if math.IsNaN(x) {
		return 0
	}
	return x
}

func callerOfSafe(pi, pj float64) float64 {
	return F(safeRatio(pi, pj))
}

// forward hands its argument back, so its result is exactly as tainted
// as what the caller passes in.
func forward(x float64) float64 { return x }

func forwardsNaN(pi float64) float64 {
	return F(forward(1 / pi)) // want `possibly-NaN value reaches confidence computation \(F\)`
}

func forwardsClean() float64 {
	return F(forward(2))
}
