// Package core is a nanguard fixture: its directory base name puts it
// inside the analyzer's numeric scope. F below stands in for the real
// confidence function — nanguard keys sinks on package base + name, so
// a local F in a package whose path ends in "core" is a sink.
package core

import (
	"math"

	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/lp"
)

// F mimics core.F's shape for sink matching.
func F(x float64) float64 { return x }

func ratioUnguarded(pi, pj float64) float64 {
	return F(pj / pi) // want `possibly-NaN value reaches confidence computation \(F\)`
}

func ratioGuarded(pi, pj float64) float64 {
	if pi <= 0 {
		return 0
	}
	return F(pj / pi)
}

func viaVariable(pi, pj float64) float64 {
	x := pj / pi
	return F(x) // want `possibly-NaN value reaches confidence computation \(F\)`
}

func viaVariableGuarded(pi, pj float64) float64 {
	x := pj / pi
	if math.IsNaN(x) {
		return 0.5
	}
	return F(x)
}

func badCoord(d float64) geom.Vec {
	return geom.V(1/d, 0) // want `possibly-NaN value reaches returned coordinate`
}

func okCoord(d float64) geom.Vec {
	if d < 1e-9 {
		return geom.Vec{}
	}
	return geom.V(1/d, 0)
}

func badLog(x float64) []float64 {
	return []float64{math.Log(x)} // want `possibly-NaN value reaches returned coordinate`
}

func okLog(x float64) []float64 {
	if x <= 0 || math.IsNaN(x) {
		return nil
	}
	return []float64{math.Log(x)}
}

func badLP(a [][]float64, b []float64, eps float64) {
	_, _ = lp.RelaxedSolve(a, b, []float64{1 / eps}) // want `possibly-NaN value reaches lp constraint construction \(lp.RelaxedSolve\)`
}

func okLP(a [][]float64, b []float64, eps float64) {
	if eps <= 0 {
		return
	}
	_, _ = lp.RelaxedSolve(a, b, []float64{1 / eps})
}

// sqrtOfSquare shows the x*x exemption: a square cannot be negative.
func sqrtOfSquare(x float64) []float64 {
	return []float64{math.Sqrt(x * x)}
}

// callDenominator shows the optimistic call rule: callees vet their own
// return values, so dividing by one is trusted.
func callDenominator(pi float64) float64 {
	return F(pi / scale())
}

func scale() float64 { return 2 }

func suppressed(d float64) geom.Vec {
	return geom.V(1/d, 0) //nomloc:nanguard-ok fixture demonstrates the audited escape hatch
}
