// Package effects exercises the effect-inference and annotation layer:
// SCC propagation through mutual recursion, CHA interface dispatch,
// closure folding, parametric higher-order calls, and every annotation
// diagnostic (missing, stale, malformed, duplicate, suppressed).
package effects

import (
	"sort"
	"time"
)

// --- mutual recursion: the SCC shares one effect set ---------------------

//nomloc:effect(wallclock)
func pingPong(n int) time.Time {
	if n == 0 {
		return time.Now()
	}
	return pong(n - 1)
}

// pong never reads the clock itself; the SCC fixpoint carries wallclock
// around the cycle, so its annotation must still declare it.

//nomloc:effect(wallclock)
func pong(n int) time.Time {
	return pingPong(n - 1)
}

// --- interface dispatch: CHA folds every concrete target ----------------

type step interface {
	run()
}

type clocky struct{}

func (clocky) run() { _ = time.Now() }

type calm struct{}

func (calm) run() {}

//nomloc:effect(wallclock)
func dispatch(s step) {
	s.run()
}

// --- closures fold into their creator, not their caller -----------------

var counter int64

//nomloc:effect(wallclock,globalread)
func closes() func() int64 {
	f := func() int64 { return time.Now().UnixNano() + counter }
	return f
}

// apply calls through a function-typed parameter: parametric, so the
// callee's latent effects charge the creator of whatever flows here.

//nomloc:effect(pure)
func apply(fn func() int) int {
	return fn()
}

// --- map ranges: order-sensitive bodies carry maporder ------------------

//nomloc:effect(maporder)
func sum(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// The collect-then-sort idiom stays pure: append-only bodies do not leak
// iteration order.

//nomloc:effect(pure)
func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- annotation diagnostics ---------------------------------------------

//nomloc:effect(pure) // want `effect annotation on lies is missing inferred effect\(s\) wallclock \(wallclock: calls time.Now at effects.go:\d+\); declare them or remove the cause`
func lies() time.Time {
	return time.Now()
}

//nomloc:effect(io) // want `stale effect annotation on tooBroad: declared effect\(s\) io are not inferred; drop them`
func tooBroad(a, b int) int {
	return a + b
}

//nomloc:effect(warpclock) // want `malformed //nomloc:effect annotation: unknown effect "warpclock"`
func typo() {}

//nomloc:effect(pure // want `malformed //nomloc:effect annotation: missing closing parenthesis`
func unclosed() {}

//nomloc:effect(pure,io) // want `malformed //nomloc:effect annotation: "pure" cannot be combined with other effects`
func impure() {}

//nomloc:effect(pure)
//nomloc:effect(pure) // want `duplicate //nomloc:effect annotation on twice; declare one effect set`
func twice() {}

// --- escape hatch --------------------------------------------------------

// The marker on the line above the annotation suppresses its finding.

//nomloc:effects-ok fixture: annotation intentionally wrong
//nomloc:effect(pure)
func excused() time.Time {
	return time.Now()
}

//nomloc:effects-ok nothing here to excuse // want `stale //nomloc:effects-ok suppression`
func audited() {}
