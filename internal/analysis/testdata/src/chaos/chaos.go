// Package chaos is a detrand fixture: the fault-injection layer is inside
// the determinism contract — a chaos schedule that reads the wall clock or
// the global rand source would not replay from its seed.
package chaos

import (
	"math/rand"
	"sort"
	"time"
)

func stampEvent() time.Time {
	return time.Now() // want `time.Now is nondeterministic`
}

func drawFate() float64 {
	return rand.Float64() // want `global math/rand source`
}

func seededFate(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func tallyFaults(counts map[string]int) []string {
	var out []string
	for k, n := range counts { // want `map iteration order is nondeterministic`
		if n > 0 {
			out = append(out, k)
		}
	}
	return out
}

func tallyFaultsSorted(counts map[string]int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
