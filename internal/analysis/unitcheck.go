package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strconv"
	"strings"
)

// UnitCheck is a lightweight dimensional analysis for the radio math in
// csi, channel, dsp, baseline, and core. The NomLoc pipeline moves
// power figures between three representations — absolute dBm, relative
// dB, and linear mW — plus meters and radians in the geometry, and the
// compiler sees all five as float64. Mixing them silently (adding a mW
// reading to a dBm level, handing a linear amplitude to a function
// expecting dB) corrupts estimates without any error, which is exactly
// the bug class this analyzer pins at the syntax level.
//
// Units are seeded two ways:
//
//   - name heuristics: a parameter, field, variable, or function named
//     with the suffix DBm, DB, MW, RSSI, Rad, or Meters (or the exact
//     lowercase dbm/db/mw/rssi/rad) carries the corresponding unit;
//   - //nomloc:unit annotations: a struct field's trailing comment
//     (`Gain float64 //nomloc:unit dB`) or a function doc line
//     (`//nomloc:unit a=dBm result=mW`, result2= for a second result)
//     declares units the names don't show.
//
// Function summaries (DESIGN.md §11) carry parameter and result units
// across call and package boundaries: call arguments are checked
// against the callee's declared parameters, and un-annotated result
// units are inferred from the callee's return expressions.
//
// The arithmetic rules mirror how the units actually compose: same-unit
// + and - are fine (and dBm - dBm yields dB: the difference of two
// levels is a ratio), dBm ± dB yields dBm (applying a gain), while any
// other mixed-known pair in +, -, or a comparison is reported.
// Multiplication and division change dimensions, so their results stay
// agnostic. Assignments into a unit-named variable are checked
// strictly; call arguments and ± keep the dB/dBm leniency, since a dB
// parameter receiving an absolute dBm level is the textbook "dBm is dB
// re 1 mW" idiom. The analyzer needs the whole-program view and reports
// nothing on intraprocedural runs.
// Escape hatch: //nomloc:unitcheck-ok, audited for staleness.
var UnitCheck = &Analyzer{
	Name: "unitcheck",
	Doc: "flag mixed-unit arithmetic (dBm/dB/mW/m/rad) and unit-mismatched " +
		"call arguments in csi, channel, dsp, baseline, and core, seeded from " +
		"names and //nomloc:unit annotations",
	Run: runUnitCheck,
}

// unitScopedPackages are the import-path base names whose float math is
// unit-checked.
var unitScopedPackages = map[string]bool{
	"csi": true, "channel": true, "dsp": true, "baseline": true, "core": true,
}

// unit is one of the five tracked dimensions, "" when unknown.
type unit string

const (
	unitDBm unit = "dBm"
	unitDB  unit = "dB"
	unitMW  unit = "mW"
	unitM   unit = "m"
	unitRad unit = "rad"
)

var validUnits = map[string]unit{
	"dBm": unitDBm, "dB": unitDB, "mW": unitMW, "m": unitM, "rad": unitRad,
}

func runUnitCheck(pass *Pass) error {
	if pass.Prog == nil || !unitScopedPackages[path.Base(pass.Pkg.Path())] {
		return nil
	}
	uc := &unitCheck{
		pass:   pass,
		sum:    SummariesFor(pass.Prog, unitSummarizer),
		annots: unitAnnotsOf(pass.Prog),
	}
	for _, file := range pass.Files {
		forEachFuncBody(file, func(fn ast.Node, body *ast.BlockStmt, results *ast.FieldList) {
			uc.env = map[string]unit{}
			uc.seedEnv(fn)
			uc.checkBody(body)
		})
	}
	return nil
}

// seedEnv loads the function's annotated parameter units into the local
// environment (name heuristics need no seeding — the evaluator applies
// them on every identifier).
func (uc *unitCheck) seedEnv(fn ast.Node) {
	fd, ok := fn.(*ast.FuncDecl)
	if !ok {
		return
	}
	obj, ok := uc.pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	for name, u := range uc.annots.funcs[FuncIDOf(obj)] {
		if !strings.HasPrefix(name, "result") {
			uc.env[name] = u
		}
	}
}

type unitCheck struct {
	pass   *Pass
	sum    *Summaries[unitSummary]
	annots *unitAnnots
	env    map[string]unit
}

// checkBody walks one function body in source order, updating the
// environment at assignments and checking every binary expression and
// call site exactly once.
func (uc *unitCheck) checkBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch n := x.(type) {
		case *ast.FuncLit:
			return false // literals are their own scope
		case *ast.AssignStmt:
			uc.assign(n)
		case *ast.BinaryExpr:
			uc.checkBinary(n)
		case *ast.CallExpr:
			uc.checkCall(n)
		}
		return true
	})
}

func (uc *unitCheck) assign(n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		// Compound op: the lhs participates like a binary operand.
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 && uc.isFloat(n.Lhs[0]) {
			lu, ru := uc.unitOf(n.Lhs[0]), uc.unitOf(n.Rhs[0])
			if _, ok := combineUnits(token.ADD, lu, ru); !ok {
				uc.pass.Reportf(n.Pos(), "unit mismatch: %s value combined with %s %s; convert to a common unit first", lu, ru, n.Tok)
			}
		}
		return
	}
	if len(n.Lhs) != len(n.Rhs) {
		return // tuple results carry units through summaries only at calls
	}
	for i, lhs := range n.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		ru := uc.unitOf(n.Rhs[i])
		declared := unitFromName(id.Name)
		if declared != "" && ru != "" && declared != ru && uc.isFloat(lhs) {
			uc.pass.Reportf(n.Rhs[i].Pos(), "assigning %s value to %s, which is named as %s; convert first", ru, id.Name, declared)
		}
		switch {
		case declared != "":
			uc.env[id.Name] = declared
		case ru != "":
			uc.env[id.Name] = ru
		default:
			delete(uc.env, id.Name)
		}
	}
}

func (uc *unitCheck) checkBinary(n *ast.BinaryExpr) {
	switch n.Op {
	case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	if !uc.isFloat(n.X) || !uc.isFloat(n.Y) {
		return
	}
	a, b := uc.unitOf(n.X), uc.unitOf(n.Y)
	if _, ok := combineUnits(n.Op, a, b); !ok {
		uc.pass.Reportf(n.OpPos, "unit mismatch: %s %s %s; convert to a common unit first", a, n.Op, b)
	}
}

func (uc *unitCheck) checkCall(call *ast.CallExpr) {
	if tv, ok := uc.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	sum, ok := uc.sum.OfCall(uc.pass.Info, call)
	if !ok || len(sum.params) == 0 {
		return
	}
	for i, arg := range call.Args {
		if i >= len(sum.params) {
			break // variadic tail carries no declared unit
		}
		pu := sum.params[i]
		if pu == "" {
			continue
		}
		au := uc.unitOf(arg)
		if au == "" || unitsInterchange(au, pu) {
			continue
		}
		uc.pass.Reportf(arg.Pos(), "argument %d of %s is %s but the callee declares %s; convert before the call", i+1, callName(uc.pass.Info, call), au, pu)
	}
}

// unitOf evaluates an expression's unit, "" when unknown. Pure: all
// reporting happens at the single visit of each checked node.
func (uc *unitCheck) unitOf(e ast.Expr) unit {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if u, ok := uc.env[e.Name]; ok {
			return u
		}
		return unitFromName(e.Name)
	case *ast.SelectorExpr:
		if u := uc.fieldUnit(e); u != "" {
			return u
		}
		return unitFromName(e.Sel.Name)
	case *ast.IndexExpr:
		return uc.unitOf(e.X) // an element of a dBm-named slice is dBm
	case *ast.CallExpr:
		if tv, ok := uc.pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return uc.unitOf(e.Args[0]) // conversions preserve units
		}
		if uc.sum != nil {
			if s, ok := uc.sum.OfCall(uc.pass.Info, e); ok && len(s.results) > 0 {
				return s.results[0]
			}
		}
		return ""
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return uc.unitOf(e.X)
		}
		return ""
	case *ast.BinaryExpr:
		u, _ := combineUnits(e.Op, uc.unitOf(e.X), uc.unitOf(e.Y))
		return u
	}
	return ""
}

// fieldUnit resolves a field access against the //nomloc:unit field
// annotations, keyed by the owner's declared type.
func (uc *unitCheck) fieldUnit(sel *ast.SelectorExpr) unit {
	owner := namedOwner(uc.pass.Info.TypeOf(sel.X))
	if owner == nil || owner.Obj().Pkg() == nil {
		return ""
	}
	key := owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "." + sel.Sel.Name
	return uc.annots.fields[key]
}

func (uc *unitCheck) isFloat(e ast.Expr) bool {
	return isFloatType(uc.pass.Info.TypeOf(e))
}

// combineUnits folds two operand units under an operator, reporting
// compatibility. Unknown operands adopt the known side; + and - demand
// the same unit or the dBm/dB pair (dBm ± dB = dBm, dBm - dBm = dB);
// * and / change dimensions and stay agnostic; comparisons demand
// interchangeable units.
func combineUnits(op token.Token, a, b unit) (unit, bool) {
	if a == "" {
		return b, true
	}
	if b == "" {
		return a, true
	}
	switch op {
	case token.ADD, token.SUB:
		if a == b {
			if op == token.SUB && a == unitDBm {
				return unitDB, true
			}
			return a, true
		}
		if unitsInterchange(a, b) {
			return unitDBm, true
		}
		return "", false
	case token.MUL, token.QUO:
		return "", true
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		return "", a == b || unitsInterchange(a, b)
	}
	return "", true
}

// unitsInterchange reports whether two units may stand in for each
// other: identical, or the dB/dBm pair (a dBm level is a dB figure
// referenced to 1 mW).
func unitsInterchange(a, b unit) bool {
	if a == b {
		return true
	}
	return (a == unitDBm && b == unitDB) || (a == unitDB && b == unitDBm)
}

// unitFromName applies the naming heuristics: camelCase suffixes DBm,
// DB, MW, RSSI, Rad, Meters and their exact lowercase forms.
func unitFromName(name string) unit {
	switch {
	case strings.HasSuffix(name, "DBm"), name == "dbm":
		return unitDBm
	case strings.HasSuffix(name, "DB"), name == "db":
		return unitDB
	case strings.HasSuffix(name, "MW"), name == "mw":
		return unitMW
	case strings.HasSuffix(name, "RSSI"), name == "rssi":
		return unitDBm
	case strings.HasSuffix(name, "Rad"), name == "rad":
		return unitRad
	case strings.HasSuffix(name, "Meters"):
		return unitM
	}
	return ""
}

// ---- interprocedural unit summaries ----

// unitSummary carries one function's parameter and result units for
// call-site checking, "" per unknown position.
type unitSummary struct {
	params  []unit
	results []unit
}

var unitSummarizer = Summarizer[unitSummary]{
	Name:   "unitcheck",
	Bottom: func() unitSummary { return unitSummary{} },
	Equal: func(a, b unitSummary) bool {
		return unitsEqual(a.params, b.params) && unitsEqual(a.results, b.results)
	},
	Compute: computeUnitSummary,
}

func unitsEqual(a, b []unit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// computeUnitSummary derives a function's units: parameters from
// annotations then name heuristics, results from annotations, then
// return-expression inference (all returns must agree), then the RSSI
// name suffix.
func computeUnitSummary(sm *Summaries[unitSummary], n *Node) unitSummary {
	fi := n.Fn
	if fi == nil || fi.Sig == nil {
		return unitSummary{}
	}
	annots := unitAnnotsOf(sm.Prog)
	fa := annots.funcs[fi.ID]

	params := fi.Sig.Params()
	ps := make([]unit, params.Len())
	for i := range ps {
		p := params.At(i)
		if !isFloatType(p.Type()) {
			continue
		}
		if u, ok := fa[p.Name()]; ok {
			ps[i] = u
		} else {
			ps[i] = unitFromName(p.Name())
		}
	}

	results := fi.Sig.Results()
	rs := make([]unit, results.Len())
	for i := range rs {
		if !isFloatType(results.At(i).Type()) {
			continue
		}
		if u, ok := fa[resultAnnotKey(i)]; ok {
			rs[i] = u
		}
	}
	if fi.Body != nil {
		inferResultUnits(sm, annots, fi, ps, rs)
	}
	if len(rs) > 0 && rs[0] == "" && fi.Obj != nil &&
		isFloatType(results.At(0).Type()) && strings.HasSuffix(fi.Obj.Name(), "RSSI") {
		rs[0] = unitDBm
	}

	if allUnknown(ps) && allUnknown(rs) {
		return unitSummary{}
	}
	return unitSummary{params: ps, results: rs}
}

func allUnknown(us []unit) bool {
	for _, u := range us {
		if u != "" {
			return false
		}
	}
	return true
}

// inferResultUnits fills unannotated result units from the function's
// return expressions: a position gets a unit only when every return
// agrees on it.
func inferResultUnits(sm *Summaries[unitSummary], annots *unitAnnots, fi *FuncInfo, ps, rs []unit) {
	// The synthetic pass never reports (unitOf is pure), so it carries
	// no Analyzer.
	uc := &unitCheck{
		pass: &Pass{
			Fset:  fi.Pkg.Fset,
			Files: fi.Pkg.Files,
			Pkg:   fi.Pkg.Types,
			Info:  fi.Pkg.Info,
			Prog:  sm.Prog,
		},
		sum:    sm,
		annots: annots,
		env:    map[string]unit{},
	}
	params := fi.Sig.Params()
	for i := 0; i < params.Len(); i++ {
		if ps[i] != "" && params.At(i).Name() != "" {
			uc.env[params.At(i).Name()] = ps[i]
		}
	}
	conflicted := make([]bool, len(rs))
	inferred := make([]unit, len(rs))
	ast.Inspect(fi.Body, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := x.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != len(rs) {
			return true
		}
		for i, res := range ret.Results {
			u := uc.unitOf(res)
			switch {
			case u == "":
				conflicted[i] = true // one unknown return leaves the slot open
			case inferred[i] == "":
				inferred[i] = u
			case inferred[i] != u:
				conflicted[i] = true
			}
		}
		return true
	})
	for i := range rs {
		if rs[i] == "" && !conflicted[i] {
			rs[i] = inferred[i]
		}
	}
}

// resultAnnotKey names a result position in a //nomloc:unit doc line:
// "result" for the first, "result2", "result3", … beyond.
func resultAnnotKey(i int) string {
	if i == 0 {
		return "result"
	}
	return "result" + strconv.Itoa(i+1)
}

// ---- //nomloc:unit annotation collection ----

// unitAnnots are the program's parsed //nomloc:unit annotations.
type unitAnnots struct {
	// fields maps "pkgpath.Type.Field" to the field's declared unit.
	fields map[string]unit
	// funcs maps FuncID to its parameter/result units by annotation key.
	funcs map[string]map[string]unit
}

// unitAnnotsOf parses every //nomloc:unit annotation in the program,
// once per Program.
func unitAnnotsOf(prog *Program) *unitAnnots {
	return prog.cached("unitcheck:annots", func() any {
		ua := &unitAnnots{fields: map[string]unit{}, funcs: map[string]map[string]unit{}}
		for _, pkg := range prog.Packages {
			for _, file := range pkg.Files {
				ua.collectFile(pkg, file)
			}
		}
		return ua
	}).(*unitAnnots)
}

func (ua *unitAnnots) collectFile(pkg *Package, file *ast.File) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
			if obj == nil || d.Doc == nil {
				continue
			}
			for _, c := range d.Doc.List {
				rest, ok := unitAnnotRest(c.Text)
				if !ok {
					continue
				}
				id := FuncIDOf(obj)
				for _, f := range strings.Fields(rest) {
					name, val, found := strings.Cut(f, "=")
					if !found {
						continue
					}
					u, ok := validUnits[val]
					if !ok {
						continue
					}
					if ua.funcs[id] == nil {
						ua.funcs[id] = map[string]unit{}
					}
					ua.funcs[id][name] = u
				}
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, f := range st.Fields.List {
					u := fieldAnnotUnit(f)
					if u == "" {
						continue
					}
					for _, name := range f.Names {
						ua.fields[pkg.Path+"."+ts.Name.Name+"."+name.Name] = u
					}
				}
			}
		}
	}
}

// fieldAnnotUnit reads a struct field's //nomloc:unit comment (trailing
// or doc): a single unit token.
func fieldAnnotUnit(f *ast.Field) unit {
	for _, cg := range []*ast.CommentGroup{f.Comment, f.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := unitAnnotRest(c.Text)
			if !ok {
				continue
			}
			if u, ok := validUnits[strings.TrimSpace(rest)]; ok {
				return u
			}
		}
	}
	return ""
}

// unitAnnotRest strips the //nomloc:unit prefix, demanding a clean
// boundary so //nomloc:unitcheck-ok never parses as an annotation.
func unitAnnotRest(text string) (string, bool) {
	const prefix = "//nomloc:unit"
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := text[len(prefix):]
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	return strings.TrimSpace(rest), true
}
