// Package analysistest runs nomloc-vet analyzers over fixture packages
// and checks their diagnostics against // want expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only. Fixtures live under <testdata>/src/<pkg>/ as plain directories —
// the go tool never builds testdata — and the fixture's package path is
// just <pkg>, which is how determinism-scoped analyzers are pointed at
// (or away from) fixture code: name the directory core, eval, lp … to
// opt in, anything else to opt out.
//
// Expectation syntax, at the end of the offending line:
//
//	badCall() // want `regexp` "another regexp"
//
// Every listed pattern must match some diagnostic reported on that line,
// and every diagnostic must be matched by some pattern. Suppression
// comments are honored exactly as cmd/nomloc-vet honors them, so
// fixtures can also assert the escape hatch's behavior (including stale
// suppressions, which report on the comment's own line).
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/nomloc/nomloc/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

var (
	lookupOnce sync.Once
	lookup     analysis.ExportLookup
	lookupErr  error
)

// moduleLookup builds (once) the export-data index for the enclosing
// module, so fixtures may import anything the module or its dependencies
// provide — github.com/nomloc/nomloc/internal/parallel included.
func moduleLookup() (analysis.ExportLookup, error) {
	lookupOnce.Do(func() {
		out, err := exec.Command("go", "env", "GOMOD").Output()
		if err != nil {
			lookupErr = fmt.Errorf("locate module root: %w", err)
			return
		}
		gomod := strings.TrimSpace(string(out))
		if gomod == "" || gomod == os.DevNull {
			lookupErr = fmt.Errorf("analysistest requires a module context")
			return
		}
		lookup, lookupErr = analysis.NewExportLookup(filepath.Dir(gomod), "./...")
	})
	return lookup, lookupErr
}

// Run loads each fixture package from <testdata>/src/<pkg>, applies the
// analyzer (suppressions included), and reports every mismatch between
// its diagnostics and the fixtures' // want expectations as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	look, err := moduleLookup()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, pkgName := range pkgs {
		dir := filepath.Join(testdata, "src", pkgName)
		fset := token.NewFileSet()
		files, err := analysis.ParseDir(dir, fset)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		pkg, err := look.CheckFiles(fset, pkgName, files)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		// Run under a single-package Program so fixtures exercise the
		// interprocedural path: call graph, summaries, and cross-file
		// flows within the fixture package (// want on the caller's
		// line, cause in the callee — same file or not).
		prog := analysis.BuildProgram([]*analysis.Package{pkg})
		diags, err := prog.RunPkg(pkg, a)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		checkExpectations(t, pkg, a.Name, diags)
	}
}

// lineKey identifies one source line.
type lineKey struct {
	file string
	line int
}

// wantRe extracts the expectation list from a comment's text.
var wantRe = regexp.MustCompile(`// want (.*)$`)

// patternRe matches one double- or back-quoted Go string literal.
var patternRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// checkExpectations diffs diagnostics against // want comments.
func checkExpectations(t *testing.T, pkg *analysis.Package, name string, diags []analysis.Diagnostic) {
	t.Helper()

	remaining := map[lineKey][]string{}
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		k := lineKey{file: p.Filename, line: p.Line}
		remaining[k] = append(remaining[k], d.Message)
	}

	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				k := lineKey{file: p.Filename, line: p.Line}
				for _, lit := range patternRe.FindAllString(m[1], -1) {
					pattern, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %s: %v", p.Filename, p.Line, lit, err)
						continue
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", p.Filename, p.Line, pattern, err)
						continue
					}
					if !consumeMatch(remaining, k, re) {
						t.Errorf("%s:%d: no %s diagnostic matching %q", p.Filename, p.Line, name, pattern)
					}
				}
			}
		}
	}

	for k, msgs := range remaining {
		for _, msg := range msgs {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", k.file, k.line, name, msg)
		}
	}
}

// consumeMatch removes the first diagnostic on line k matching re.
func consumeMatch(remaining map[lineKey][]string, k lineKey, re *regexp.Regexp) bool {
	msgs := remaining[k]
	for i, msg := range msgs {
		if re.MatchString(msg) {
			remaining[k] = append(msgs[:i], msgs[i+1:]...)
			if len(remaining[k]) == 0 {
				delete(remaining, k)
			}
			return true
		}
	}
	return false
}
