package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
)

// NanGuard is the flow-sensitive NaN-taint analyzer for the numeric hot
// path (packages core and lp — the PDP-ratio → confidence → constraint
// pipeline the paper's Eq. 4–19 live in). A single unguarded division
// or math.Log can turn a location estimate into NaN without any error
// surfacing; NanGuard proves, per function, that no such value reaches
// the places NaN silently corrupts:
//
//   - an argument of a call into package lp (constraint construction
//     and solving),
//   - an argument of the confidence functions F / Confidence,
//   - a returned coordinate (geom.Vec, float slices/arrays, or structs
//     carrying a geom.Vec such as core.Estimate).
//
// Taint springs from float division whose denominator is not provably
// safe and from the NaN-capable math functions (Log, Sqrt, Pow, …)
// applied to unvetted arguments. A guard — math.IsNaN, math.IsInf,
// math.Abs, or any relational comparison mentioning the value — clears
// it: after `if x <= 0 { return err }`, both `1/x` and `math.Log(x)`
// are clean. The analysis tracks idents, field selectors, and index
// expressions syntactically.
//
// Across calls the analyzer is summary-driven (DESIGN.md §11): every
// function in the program gets a bottom-up NaN summary saying, per
// result, whether it may be NaN unconditionally (an unguarded division
// inside the callee) or only when an argument already is. A helper that
// divides unguarded therefore taints its callers, down to the LP and
// coordinate sinks, across package boundaries. Calls the graph cannot
// resolve (function values, externals without source) stay optimistic:
// callees vet their own outputs. Without a Program (legacy single-
// package runs) every call is optimistic, which is the old behavior.
// Escape hatch: //nomloc:nanguard-ok on the offending line, audited for
// staleness like every other suppression.
var NanGuard = &Analyzer{
	Name: "nanguard",
	Doc: "flag possibly-NaN floats (unguarded division, math.Log/Sqrt/Pow) " +
		"reaching lp constraint construction, confidence computation, or a " +
		"returned coordinate in core and lp",
	Run: runNanGuard,
}

// nanScopedPackages are the import-path base names NanGuard analyzes:
// the numeric pipeline whose outputs become coordinates.
var nanScopedPackages = map[string]bool{"core": true, "lp": true}

// nanMathFuncs are the math functions that return NaN for some real
// input, mapped to whether every argument must be vetted (Pow) or only
// the first.
var nanMathFuncs = map[string]bool{
	"Log": false, "Log2": false, "Log10": false, "Log1p": false,
	"Sqrt": false, "Asin": false, "Acos": false,
	"Pow": true, "Mod": true, "Remainder": true,
}

// nanGuardFuncs are the math predicates whose application to a value
// counts as guarding it.
var nanGuardFuncs = map[string]bool{
	"IsNaN": true, "IsInf": true, "Abs": true, "Signbit": true,
}

// taintMark is the per-expression lattice: guarded < (absent) < tainted.
// Guarded survives a join only when both sides agree; tainted wins any
// join.
type taintMark int

const (
	markGuarded taintMark = iota + 1
	markTainted
)

// taintFact maps tracked expression keys (ExprString of idents,
// selectors, index expressions) to their mark. Each entry remembers the
// identifiers its key is built from so writes invalidate it.
type taintFact map[string]taintEntry

type taintEntry struct {
	mark  taintMark
	roots map[string]bool
}

func runNanGuard(pass *Pass) error {
	if !nanScopedPackages[path.Base(pass.Pkg.Path())] {
		return nil
	}
	ng := &nanGuard{pass: pass}
	if pass.Prog != nil {
		ng.sum = SummariesFor(pass.Prog, nanSummarizer)
	}
	for _, file := range pass.Files {
		forEachFuncBody(file, func(fn ast.Node, body *ast.BlockStmt, results *ast.FieldList) {
			ng.checkFunc(body)
		})
	}
	return nil
}

type nanGuard struct {
	pass *Pass
	// sum holds the program-wide NaN summaries, nil on intraprocedural
	// runs (every call is then optimistically clean).
	sum *Summaries[nanSummary]
}

func (ng *nanGuard) problem() FlowProblem[taintFact] {
	clone := func(s taintFact) taintFact {
		out := make(taintFact, len(s))
		for k, v := range s {
			out[k] = v
		}
		return out
	}
	return FlowProblem[taintFact]{
		Entry: taintFact{},
		// Bottom is a nil map: the "no path has reached this block yet"
		// sentinel and identity of Join. It must stay distinguishable
		// from the empty fact — guarded marks survive a join with
		// Bottom but not with a real fact that lacks them.
		Bottom: func() taintFact { return nil },
		Clone:  clone,
		Join: func(a, b taintFact) taintFact {
			if a == nil {
				return clone(b)
			}
			if b == nil {
				return clone(a)
			}
			out := taintFact{}
			for k, va := range a {
				if va.mark == markTainted {
					out[k] = va
				} else if vb, ok := b[k]; ok && vb.mark == markGuarded {
					out[k] = va // guarded on both paths
				}
			}
			for k, vb := range b {
				if vb.mark == markTainted {
					out[k] = vb
				}
			}
			return out
		},
		Transfer: ng.transfer,
		Equal: func(a, b taintFact) bool {
			if (a == nil) != (b == nil) {
				return false
			}
			if len(a) != len(b) {
				return false
			}
			for k, va := range a {
				if vb, ok := b[k]; !ok || va.mark != vb.mark {
					return false
				}
			}
			return true
		},
	}
}

func (ng *nanGuard) checkFunc(body *ast.BlockStmt) {
	cfg := NewCFG(body)
	p := ng.problem()
	in := Forward(cfg, p)
	reachable := cfg.Reachable(cfg.Entry)
	for _, b := range cfg.Blocks {
		if !reachable[b] {
			continue
		}
		s := p.Clone(in[b])
		for _, atom := range b.Atoms {
			ng.checkSinks(s, atom)
			s = p.Transfer(s, atom)
		}
	}
}

// transfer applies one atom to the fact: conditions guard the values
// they test, assignments move taint, writes invalidate derived keys.
func (ng *nanGuard) transfer(s taintFact, atom ast.Node) taintFact {
	switch n := atom.(type) {
	case ast.Expr:
		// Bare expression atoms are branch conditions by CFG convention.
		ng.applyGuards(s, n)
	case *ast.AssignStmt:
		ng.assign(s, n)
	case *ast.IncDecStmt:
		ng.invalidate(s, n.X)
	case *ast.RangeStmt:
		if n.Key != nil {
			ng.invalidate(s, n.Key)
		}
		if n.Value != nil {
			ng.invalidate(s, n.Value)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Names) > 1 && len(vs.Values) == 1 {
					if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
						for i, name := range vs.Names {
							if ng.summaryResultTainted(s, call, i) {
								ng.setMark(s, name, markTainted)
							} else {
								ng.invalidate(s, name)
							}
						}
						continue
					}
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					ng.setMarkFromRHS(s, name, rhs, len(vs.Values) == len(vs.Names))
				}
			}
		}
	}
	return s
}

func (ng *nanGuard) assign(s taintFact, n *ast.AssignStmt) {
	if n.Tok == token.QUO_ASSIGN {
		// x /= y is x = x / y: the division-source rule applies.
		for _, lhs := range n.Lhs {
			if len(n.Rhs) == 1 && ng.isFloat(lhs) && !ng.safeDenominator(s, n.Rhs[0]) {
				ng.setMark(s, lhs, markTainted)
				return
			}
		}
	}
	aligned := len(n.Lhs) == len(n.Rhs)
	if !aligned && len(n.Rhs) == 1 {
		// Tuple assignment from one call: consult the callee's summary
		// per result index instead of assuming every result clean.
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			for i, lhs := range n.Lhs {
				if ng.summaryResultTainted(s, call, i) {
					ng.setMark(s, lhs, markTainted)
				} else {
					ng.invalidate(s, lhs)
				}
			}
			return
		}
	}
	for i, lhs := range n.Lhs {
		var rhs ast.Expr
		if aligned {
			rhs = n.Rhs[i]
		}
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE && rhs != nil {
			// Compound op: the old value participates; keep taint sticky.
			if ng.tainted(s, lhs) || ng.tainted(s, rhs) {
				ng.setMark(s, lhs, markTainted)
				continue
			}
			ng.invalidate(s, lhs)
			continue
		}
		ng.setMarkFromRHS(s, lhs, rhs, aligned)
	}
}

func (ng *nanGuard) setMarkFromRHS(s taintFact, lhs, rhs ast.Expr, aligned bool) {
	switch {
	case rhs != nil && ng.tainted(s, rhs):
		ng.setMark(s, lhs, markTainted)
	case !aligned:
		// Tuple assignment from a call: call results are clean.
		ng.invalidate(s, lhs)
	default:
		ng.invalidate(s, lhs)
	}
}

// setMark invalidates keys the write clobbers, then records the mark
// for the written expression (when trackable).
func (ng *nanGuard) setMark(s taintFact, lhs ast.Expr, m taintMark) {
	ng.invalidate(s, lhs)
	key, roots, ok := taintKey(lhs)
	if !ok {
		return
	}
	s[key] = taintEntry{mark: m, roots: roots}
}

// invalidate drops every fact whose key is rooted at an identifier the
// written expression redefines.
func (ng *nanGuard) invalidate(s taintFact, lhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	var written string
	switch e := lhs.(type) {
	case *ast.Ident:
		written = e.Name
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		key, _, ok := taintKey(lhs)
		if ok {
			delete(s, key)
		}
		return
	default:
		return
	}
	if written == "_" {
		return
	}
	for k, e := range s {
		if e.roots[written] {
			delete(s, k)
		}
	}
}

// applyGuards marks every value a condition tests as guarded, in both
// branch directions. Deliberately coarse: the point is to recognize
// that the author thought about the value's range at all, mirroring
// how a human reviewer reads `if x <= 0 { … }`.
func (ng *nanGuard) applyGuards(s taintFact, cond ast.Expr) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND, token.LOR:
			ng.applyGuards(s, e.X)
			ng.applyGuards(s, e.Y)
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
			ng.guardOperand(s, e.X)
			ng.guardOperand(s, e.Y)
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			ng.applyGuards(s, e.X)
		}
	case *ast.CallExpr:
		// A bare predicate condition: if math.IsNaN(x) { … }.
		ng.guardOperand(s, e)
	}
}

// guardOperand guards the trackable value inside one comparison
// operand, unwrapping the math guard predicates and conversions.
func (ng *nanGuard) guardOperand(s taintFact, e ast.Expr) {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		f := calleeFunc(ng.pass.Info, call)
		if f != nil && f.Pkg() != nil && f.Pkg().Path() == "math" && nanGuardFuncs[f.Name()] {
			for _, arg := range call.Args {
				ng.guardOperand(s, arg)
			}
		}
		return
	}
	if u, ok := e.(*ast.UnaryExpr); ok {
		ng.guardOperand(s, u.X)
		return
	}
	key, roots, ok := taintKey(e)
	if !ok {
		return
	}
	s[key] = taintEntry{mark: markGuarded, roots: roots}
}

// tainted reports whether evaluating e may produce NaN under fact s.
func (ng *nanGuard) tainted(s taintFact, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ng.tainted(s, e.X)
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		key, _, ok := taintKey(e)
		if !ok {
			return false
		}
		ent, ok := s[key]
		return ok && ent.mark == markTainted
	case *ast.UnaryExpr:
		return ng.tainted(s, e.X)
	case *ast.BinaryExpr:
		if ng.tainted(s, e.X) || ng.tainted(s, e.Y) {
			return true
		}
		if e.Op == token.QUO && ng.isFloat(e) && !ng.safeDenominator(s, e.Y) {
			return true
		}
		return false
	case *ast.CallExpr:
		f := calleeFunc(ng.pass.Info, e)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != "math" {
			// Non-math calls: consult the callee's NaN summary when
			// running interprocedurally; without one, callees vet their
			// own results.
			return ng.summaryResultTainted(s, e, 0)
		}
		allArgs, risky := nanMathFuncs[f.Name()]
		if !risky && !nanMathFuncs_has(f.Name()) {
			return false
		}
		for i, arg := range e.Args {
			if ng.tainted(s, arg) {
				return true
			}
			if i == 0 || allArgs {
				if !ng.vettedOperand(s, arg) {
					return true
				}
			}
		}
		return false
	}
	return false
}

func nanMathFuncs_has(name string) bool {
	_, ok := nanMathFuncs[name]
	return ok
}

// safeDenominator reports whether dividing by e cannot yield NaN/Inf
// surprise: a nonzero constant, a guarded value, or a call result
// (callee contracts cover their outputs, e.g. radio.DelayResolution).
func (ng *nanGuard) safeDenominator(s taintFact, e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		return ng.safeDenominator(s, u.X)
	}
	if tv, ok := ng.pass.Info.Types[e]; ok && tv.Value != nil {
		return constNonZero(tv)
	}
	if call, ok := e.(*ast.CallExpr); ok {
		return !ng.summaryResultTainted(s, call, 0)
	}
	if key, _, ok := taintKey(e); ok {
		if ent, ok := s[key]; ok && ent.mark == markGuarded {
			return true
		}
	}
	return false
}

// vettedOperand reports whether e is safe to hand a NaN-capable math
// function: constants, guarded values, and call results pass; raw
// variables and arithmetic do not.
func (ng *nanGuard) vettedOperand(s taintFact, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := ng.pass.Info.Types[e]; ok && tv.Value != nil {
		return true
	}
	if call, ok := e.(*ast.CallExpr); ok {
		return !ng.summaryResultTainted(s, call, 0)
	}
	if u, ok := e.(*ast.UnaryExpr); ok {
		return ng.vettedOperand(s, u.X)
	}
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.MUL {
		// x*x (a square) cannot be negative; other products can.
		if taintKeyEqual(b.X, b.Y) {
			return true
		}
	}
	if key, _, ok := taintKey(e); ok {
		if ent, ok := s[key]; ok && ent.mark == markGuarded {
			return true
		}
	}
	return false
}

func constNonZero(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	return tv.Value.String() != "0"
}

func (ng *nanGuard) isFloat(e ast.Expr) bool {
	t := ng.pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// checkSinks reports tainted values reaching a sink inside one atom.
func (ng *nanGuard) checkSinks(s taintFact, atom ast.Node) {
	switch n := atom.(type) {
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if ng.coordType(res) {
				ng.reportTaintWithin(s, res, "returned coordinate")
			}
		}
	}
	// Call sinks can sit inside any atom (assignments, conditions, …).
	ast.Inspect(atom, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false // literals are analyzed as their own functions
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sink := ng.sinkName(call)
		if sink == "" {
			return true
		}
		for _, arg := range call.Args {
			ng.reportTaintWithin(s, arg, sink)
		}
		return true
	})
}

// sinkName classifies a call as a NaN sink: any call into package lp,
// or the confidence functions F/Confidence of package core.
func (ng *nanGuard) sinkName(call *ast.CallExpr) string {
	f := calleeFunc(ng.pass.Info, call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	switch path.Base(f.Pkg().Path()) {
	case "lp":
		return "lp constraint construction (lp." + f.Name() + ")"
	case "core":
		if f.Name() == "F" || f.Name() == "Confidence" {
			return "confidence computation (" + f.Name() + ")"
		}
	}
	return ""
}

// reportTaintWithin reports the first tainted sub-expression of e, if
// any, naming the sink it reaches.
func (ng *nanGuard) reportTaintWithin(s taintFact, e ast.Expr, sink string) {
	reported := false
	ast.Inspect(e, func(x ast.Node) bool {
		if reported {
			return false
		}
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		sub, ok := x.(ast.Expr)
		if !ok {
			return true
		}
		if ng.tainted(s, sub) {
			reported = true
			ng.pass.Reportf(sub.Pos(), "possibly-NaN value reaches %s without an IsNaN/IsInf or range guard; check the operand before use", sink)
			return false
		}
		return true
	})
}

// taintKey renders a trackable expression (ident, selector chain, index
// with trackable operands) to a state key plus its root identifiers.
func taintKey(e ast.Expr) (string, map[string]bool, bool) {
	roots := map[string]bool{}
	var render func(ast.Expr) (string, bool)
	render = func(e ast.Expr) (string, bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			roots[e.Name] = true
			return e.Name, true
		case *ast.SelectorExpr:
			base, ok := render(e.X)
			if !ok {
				return "", false
			}
			return base + "." + e.Sel.Name, true
		case *ast.IndexExpr:
			base, ok := render(e.X)
			if !ok {
				return "", false
			}
			switch idx := ast.Unparen(e.Index).(type) {
			case *ast.Ident:
				roots[idx.Name] = true
				return base + "[" + idx.Name + "]", true
			case *ast.BasicLit:
				return base + "[" + idx.Value + "]", true
			}
			return "", false
		case *ast.StarExpr:
			base, ok := render(e.X)
			if !ok {
				return "", false
			}
			return "*" + base, true
		}
		return "", false
	}
	key, ok := render(e)
	if !ok {
		return "", nil, false
	}
	return key, roots, true
}

// taintKeyEqual reports whether two expressions render to the same
// trackable key (used for the x*x square exemption).
func taintKeyEqual(a, b ast.Expr) bool {
	ka, _, oka := taintKey(a)
	kb, _, okb := taintKey(b)
	return oka && okb && ka == kb
}

// coordType reports whether the static type of e is coordinate-shaped:
// geom.Vec itself, float slices/arrays, or a (pointer to a) struct with
// a geom.Vec field — the shapes location estimates travel in.
func (ng *nanGuard) coordType(e ast.Expr) bool {
	return isCoordType(ng.pass.Info.TypeOf(e), 0)
}

func isCoordType(t types.Type, depth int) bool {
	if t == nil || depth > 3 {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return isCoordType(ptr.Elem(), depth+1)
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil &&
			path.Base(obj.Pkg().Path()) == "geom" && obj.Name() == "Vec" {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isFloatType(u.Elem())
	case *types.Array:
		return isFloatType(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if isCoordType(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}

func isFloatType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// ---- interprocedural NaN summaries ----

// nanResultFact classifies one function result for callers.
type nanResultFact int

const (
	// nanResultClean: the result is never NaN, no matter the arguments.
	nanResultClean nanResultFact = iota
	// nanResultFromParams: the result may be NaN when an argument
	// already is — taint flows through, but the callee adds none.
	nanResultFromParams
	// nanResultAlways: the callee itself can produce NaN (an unguarded
	// division or risky math call), so every call is tainted.
	nanResultAlways
)

// nanSummary is one function's NaN summary: a fact per result. The
// empty slice is Bottom — the optimistic "callee vets its own outputs"
// assumption used for externals and packages outside the numeric
// pipeline.
type nanSummary struct {
	results []nanResultFact
}

var nanSummarizer = Summarizer[nanSummary]{
	Name:   "nanguard",
	Bottom: func() nanSummary { return nanSummary{} },
	Equal: func(a, b nanSummary) bool {
		if len(a.results) != len(b.results) {
			return false
		}
		for i := range a.results {
			if a.results[i] != b.results[i] {
				return false
			}
		}
		return true
	},
	Compute: computeNanSummary,
}

// computeNanSummary derives one function's summary by running the taint
// dataflow over its body twice: once with a clean entry fact (taint
// found there is the callee's own — nanResultAlways) and once with
// every float parameter tainted (additional taint is parameter-borne —
// nanResultFromParams). The always-run's taint is a subset of the
// from-params run's, so the per-result facts are totally ordered and
// the SCC fixpoint stays monotone. Only functions in the NaN-scoped
// packages are summarized; everything else keeps the optimistic Bottom.
func computeNanSummary(sm *Summaries[nanSummary], n *Node) nanSummary {
	fi := n.Fn
	if fi == nil || fi.Body == nil || fi.Sig == nil {
		return nanSummary{}
	}
	if !nanScopedPackages[path.Base(fi.Pkg.Path)] {
		return nanSummary{}
	}
	results := fi.Sig.Results()
	hasFloat := false
	for i := 0; i < results.Len(); i++ {
		if isFloatType(results.At(i).Type()) {
			hasFloat = true
		}
	}
	if !hasFloat {
		return nanSummary{}
	}
	// The synthetic pass never reports (returnTaints only reads facts),
	// so it carries no Analyzer.
	ng := &nanGuard{
		pass: &Pass{
			Fset:  fi.Pkg.Fset,
			Files: fi.Pkg.Files,
			Pkg:   fi.Pkg.Types,
			Info:  fi.Pkg.Info,
			Prog:  sm.Prog,
		},
		sum: sm,
	}
	always := ng.returnTaints(fi, taintFact{})
	entry := taintFact{}
	params := fi.Sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		if p.Name() == "" || p.Name() == "_" || !isFloatType(p.Type()) {
			continue
		}
		entry[p.Name()] = taintEntry{mark: markTainted, roots: map[string]bool{p.Name(): true}}
	}
	fromParams := ng.returnTaints(fi, entry)
	out := nanSummary{results: make([]nanResultFact, results.Len())}
	for i := range out.results {
		switch {
		case always[i]:
			out.results[i] = nanResultAlways
		case fromParams[i]:
			out.results[i] = nanResultFromParams
		}
	}
	return out
}

// returnTaints runs the taint dataflow over fi's body under the given
// entry fact and reports, per result index, whether some return may
// yield a tainted value there.
func (ng *nanGuard) returnTaints(fi *FuncInfo, entry taintFact) []bool {
	out := make([]bool, fi.Sig.Results().Len())
	cfg := NewCFG(fi.Body)
	p := ng.problem()
	p.Entry = entry
	in := Forward(cfg, p)
	reachable := cfg.Reachable(cfg.Entry)
	names := namedResults(fi)
	for _, b := range cfg.Blocks {
		if !reachable[b] {
			continue
		}
		s := p.Clone(in[b])
		for _, atom := range b.Atoms {
			if ret, ok := atom.(*ast.ReturnStmt); ok {
				ng.noteReturnTaint(s, ret, names, out)
			}
			s = p.Transfer(s, atom)
		}
	}
	return out
}

// namedResults returns the declared result names of fi, "" for unnamed
// positions.
func namedResults(fi *FuncInfo) []string {
	var fl *ast.FieldList
	switch {
	case fi.Decl != nil:
		fl = fi.Decl.Type.Results
	case fi.Lit != nil:
		fl = fi.Lit.Type.Results
	}
	if fl == nil {
		return nil
	}
	var names []string
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			names = append(names, "")
			continue
		}
		for _, n := range f.Names {
			names = append(names, n.Name)
		}
	}
	return names
}

// noteReturnTaint folds one return statement into the per-result taint
// flags: explicit results by position, a forwarded multi-result call by
// its callee's summary, a bare return by the named results' marks.
func (ng *nanGuard) noteReturnTaint(s taintFact, ret *ast.ReturnStmt, names []string, out []bool) {
	switch {
	case len(ret.Results) == len(out):
		for i, res := range ret.Results {
			if ng.tainted(s, res) {
				out[i] = true
			}
		}
	case len(ret.Results) == 1 && len(out) > 1:
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			for i := range out {
				if ng.summaryResultTainted(s, call, i) {
					out[i] = true
				}
			}
		}
	case len(ret.Results) == 0:
		for i := range out {
			if i < len(names) && names[i] != "" && names[i] != "_" {
				if ent, ok := s[names[i]]; ok && ent.mark == markTainted {
					out[i] = true
				}
			}
		}
	}
}

// summaryResultTainted consults the NaN summary of a call's callee for
// result idx: nanResultAlways taints unconditionally, and
// nanResultFromParams taints when some argument is tainted under s.
// Without a Program (sum == nil) every call stays optimistically clean.
func (ng *nanGuard) summaryResultTainted(s taintFact, call *ast.CallExpr, idx int) bool {
	if ng.sum == nil {
		return false
	}
	sum, ok := ng.sum.OfCall(ng.pass.Info, call)
	if !ok || idx >= len(sum.results) {
		return false
	}
	switch sum.results[idx] {
	case nanResultAlways:
		return true
	case nanResultFromParams:
		for _, arg := range call.Args {
			if ng.tainted(s, arg) {
				return true
			}
		}
	}
	return false
}

// forEachFuncBody visits every function body in a file: declarations
// and function literals alike, each treated as its own analysis scope.
func forEachFuncBody(file *ast.File, visit func(fn ast.Node, body *ast.BlockStmt, results *ast.FieldList)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn, fn.Body, fn.Type.Results)
			}
		case *ast.FuncLit:
			visit(fn, fn.Body, fn.Type.Results)
		}
		return true
	})
}
