package analysis

import (
	"go/ast"
)

// mixSeedPkg is the blessed home of seed-derivation arithmetic.
const mixSeedPkg = "github.com/nomloc/nomloc/internal/parallel"

// SeedMix rejects ad-hoc seed arithmetic feeding rand.NewSource in
// deterministic packages — the `opt.Seed + int64(si)*7919` pattern that
// used to be copy-pasted across internal/eval. Five near-copies of the
// same derivation are five chances for two experiments to collide on a
// stream; parallel.MixSeed(seed, stream, mode) is the one place the grid
// lives. A NewSource argument may be a plain variable, a constant, or a
// call (parallel.MixSeed above all) — any expression containing arithmetic
// is flagged.
var SeedMix = &Analyzer{
	Name: "seedmix",
	Doc: "require parallel.MixSeed for per-stream seed derivations instead " +
		"of ad-hoc seed arithmetic",
	Run: runSeedMix,
}

func runSeedMix(pass *Pass) error {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if !isPkgFunc(calleeFunc(pass.Info, call), "math/rand", "NewSource") {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			if argCall, ok := arg.(*ast.CallExpr); ok {
				if isPkgFunc(calleeFunc(pass.Info, argCall), mixSeedPkg, "MixSeed") {
					return true
				}
			}
			if containsArithmetic(arg) {
				pass.Reportf(call.Args[0].Pos(), "ad-hoc seed arithmetic; derive per-stream seeds with parallel.MixSeed(seed, stream, mode)")
			}
			return true
		})
	}
	return nil
}

// containsArithmetic reports whether the expression tree contains any
// binary operator — the signature of a hand-rolled seed derivation.
func containsArithmetic(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.BinaryExpr); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}
