package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file is the function-summary engine (DESIGN.md §11): a generic
// bottom-up fixpoint over the strongly-connected components of the call
// graph. A Summarizer[S] supplies the lattice (Bottom, Equal) and a
// Compute function that derives one function's summary, reading callee
// summaries through Summaries.Of. The engine processes SCCs in reverse
// topological order — callees before callers — so acyclic call chains
// resolve in one Compute each, and iterates each cyclic SCC to a
// fixpoint, so recursion (direct or mutual) is safe: Of returns the
// callee's current approximation, which only grows monotonically until
// the component stabilizes.
//
// Summaries compose with the intraprocedural FlowProblem engine by
// design: a transfer function that reaches a call site looks the callee
// up by FuncID and folds the summary into its local fact, which is how
// nanguard taint, errdrop fallibility, leakcheck exit discipline, and
// unitcheck dimensions all cross function and package boundaries.

// Summarizer describes one bottom-up function-summary analysis with
// summaries of type S.
type Summarizer[S any] struct {
	// Name keys the Program cache; one computation per (program, name).
	Name string
	// Bottom is the summary of an unknown function and the seed of
	// cyclic components. Compute must be monotone w.r.t. it.
	Bottom func() S
	// Equal reports summary equality; SCC iteration stops when no
	// member's summary changes.
	Equal func(a, b S) bool
	// Compute derives the summary of one node. It may call sm.Of for
	// any callee (Bottom for functions not yet reached) and must be
	// deterministic.
	Compute func(sm *Summaries[S], n *Node) S
}

// Summaries holds the memoized fixpoint results of one Summarizer over
// one Program.
type Summaries[S any] struct {
	// Prog is the program the summaries were computed over.
	Prog *Program

	s Summarizer[S]
	m map[string]S
}

// Of returns the summary for a FuncID, or Bottom for functions outside
// the program (or not yet computed, inside a cyclic component).
func (sm *Summaries[S]) Of(id string) S {
	if v, ok := sm.m[id]; ok {
		return v
	}
	return sm.s.Bottom()
}

// OfCall resolves a call expression to its callee's summary. The second
// result is false for calls the graph cannot resolve statically
// (builtins, conversions, calls through function values).
func (sm *Summaries[S]) OfCall(info *types.Info, call *ast.CallExpr) (S, bool) {
	f := calleeFunc(info, call)
	if f == nil {
		return sm.s.Bottom(), false
	}
	return sm.Of(FuncIDOf(f)), true
}

// NodeOfCall resolves a call expression to its callee's graph node, or
// nil when unresolvable.
func (sm *Summaries[S]) NodeOfCall(info *types.Info, call *ast.CallExpr) *Node {
	f := calleeFunc(info, call)
	if f == nil {
		return nil
	}
	return sm.Prog.Graph.NodeByID(FuncIDOf(f))
}

// maxSCCIters bounds one component's fixpoint iteration. Monotone
// Compute functions converge in at most |SCC| rounds; the cap only
// guards against a non-monotone Summarizer oscillating forever.
const maxSCCIters = 64

// ComputeSummaries runs the bottom-up fixpoint and returns the full
// summary table. Deterministic: SCC discovery follows the graph's
// sorted node and edge order, and members of a component are processed
// sorted by ID.
func ComputeSummaries[S any](prog *Program, s Summarizer[S]) *Summaries[S] {
	sm := &Summaries[S]{Prog: prog, s: s, m: make(map[string]S, len(prog.Graph.Nodes))}
	for _, scc := range sccs(prog.Graph) {
		members := append([]*Node(nil), scc...)
		sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
		for _, n := range members {
			sm.m[n.ID] = s.Bottom()
		}
		for iter := 0; iter < maxSCCIters; iter++ {
			changed := false
			for _, n := range members {
				next := s.Compute(sm, n)
				if !s.Equal(next, sm.m[n.ID]) {
					sm.m[n.ID] = next
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return sm
}

// SummariesFor returns the program's memoized summaries for s,
// computing them on first use.
func SummariesFor[S any](prog *Program, s Summarizer[S]) *Summaries[S] {
	return prog.cached("summary:"+s.Name, func() any {
		return ComputeSummaries(prog, s)
	}).(*Summaries[S])
}

// sccs returns the strongly-connected components of the call graph in
// reverse topological order of the condensation: every component is
// emitted after all components it calls into. Tarjan's algorithm gives
// exactly this order for free.
func sccs(g *CallGraph) [][]*Node {
	type state struct {
		index, lowlink int
		onStack        bool
	}
	states := make(map[*Node]*state, len(g.Nodes))
	var stack []*Node
	var out [][]*Node
	index := 0

	var strongconnect func(v *Node)
	strongconnect = func(v *Node) {
		sv := &state{index: index, lowlink: index}
		states[v] = sv
		index++
		stack = append(stack, v)
		sv.onStack = true

		for _, e := range v.Out {
			w := e.Callee
			sw, seen := states[w]
			if !seen {
				strongconnect(w)
				if lw := states[w].lowlink; lw < sv.lowlink {
					sv.lowlink = lw
				}
			} else if sw.onStack {
				if sw.index < sv.lowlink {
					sv.lowlink = sw.index
				}
			}
		}

		if sv.lowlink == sv.index {
			var comp []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[w].onStack = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}

	for _, n := range g.Nodes {
		if _, seen := states[n]; !seen {
			strongconnect(n)
		}
	}
	return out
}
