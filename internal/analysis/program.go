package analysis

import (
	"fmt"
	"sync"
)

// Program is the whole-module view the interprocedural analyzers
// consume: every loaded package plus the call graph over them, with a
// cache for derived artifacts (function summaries, the lock-order
// graph) so each is computed once per program no matter how many
// per-package passes consult it.
//
// A Pass run through Program.RunPkg carries the Program in Pass.Prog;
// analyzers degrade gracefully to their intraprocedural behavior when
// Prog is nil (the legacy Package.Run path).
type Program struct {
	// Packages are the loaded packages, in load order.
	Packages []*Package
	// Graph is the deterministic whole-program call graph.
	Graph *CallGraph

	mu     sync.Mutex
	caches map[string]any
}

// BuildProgram assembles a Program over the loaded packages, building
// the call graph eagerly (it is the one artifact every interprocedural
// analyzer needs).
func BuildProgram(pkgs []*Package) *Program {
	return &Program{
		Packages: pkgs,
		Graph:    BuildCallGraph(pkgs),
		caches:   map[string]any{},
	}
}

// cached returns the artifact under key, computing it at most once per
// key via build. build runs outside the lock so it may itself consult
// other cache keys; a lost race recomputes deterministically identical
// values, so first-write-wins is safe.
func (p *Program) cached(key string, build func() any) any {
	p.mu.Lock()
	if v, ok := p.caches[key]; ok {
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()
	v := build()
	p.mu.Lock()
	defer p.mu.Unlock()
	if w, ok := p.caches[key]; ok {
		return w
	}
	p.caches[key] = v
	return v
}

// RunPkg executes one analyzer over one of the program's packages with
// interprocedural context, returning diagnostics after suppression
// filtering.
func (p *Program) RunPkg(pkg *Package, a *Analyzer) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Prog:     p,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
	}
	return ApplySuppressions(pkg.Fset, pkg.Files, a.Name, pass.diags), nil
}
