package analysis_test

import (
	"testing"

	"github.com/nomloc/nomloc/internal/analysis"
	"github.com/nomloc/nomloc/internal/analysis/analysistest"
)

// TestEffects covers inference (mutual recursion, CHA dispatch, closure
// folding, parametric higher-order calls, map ranges) and the whole
// annotation grammar: correct, missing, stale, malformed, duplicate,
// and suppressed declarations.
func TestEffects(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Effects, "effects")
}

// TestEffectsGate points the replay-safety gate at fixture roots and
// checks the regression the issue contract demands: a time.Now or an
// order-sensitive map range reachable from a root is diagnosed, and an
// unannotated root is too.
func TestEffectsGate(t *testing.T) {
	defer func(prev []string) { analysis.GateRoots = prev }(analysis.GateRoots)
	analysis.GateRoots = []string{"effectsgate.Entry", "effectsgate.Unannotated"}
	analysistest.Run(t, analysistest.TestData(), analysis.Effects, "effectsgate")
}

// TestParseEffects pins the declaration grammar's parser.
func TestParseEffects(t *testing.T) {
	cases := []struct {
		in   string
		want analysis.Effect
		ok   bool
	}{
		{"pure", 0, true},
		{"wallclock", analysis.EffWallclock, true},
		{"io,spawn", analysis.EffIO | analysis.EffSpawn, true},
		{"spawn, io", analysis.EffIO | analysis.EffSpawn, true},
		{"globalread,globalwrite,fsync,maporder,unseededrand,unsafe",
			analysis.EffGlobalRead | analysis.EffGlobalWrite | analysis.EffFsync |
				analysis.EffMapOrder | analysis.EffUnseededRand | analysis.EffUnsafe, true},
		{"warpclock", 0, false},
		{"pure,io", 0, false},
	}
	for _, c := range cases {
		got, err := analysis.ParseEffects(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseEffects(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseEffects(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestEffectString pins the canonical rendering order.
func TestEffectString(t *testing.T) {
	if got := analysis.Effect(0).String(); got != "pure" {
		t.Errorf("empty set renders %q, want pure", got)
	}
	e := analysis.EffSpawn | analysis.EffWallclock | analysis.EffIO
	if got := e.String(); got != "wallclock,io,spawn" {
		t.Errorf("set renders %q, want canonical order wallclock,io,spawn", got)
	}
}
