package analysis_test

import (
	"testing"

	"github.com/nomloc/nomloc/internal/analysis"
	"github.com/nomloc/nomloc/internal/analysis/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.LockOrder,
		"lockorder/server", "lockorder/other")
}
