package analysis

import "go/ast"

// This file is the fixpoint half of the dataflow engine (DESIGN.md §9):
// a generic forward worklist solver over the CFGs cfg.go builds. A
// FlowProblem supplies the lattice (bottom, join, equality) and the
// per-atom transfer function; Forward computes the least fixpoint and
// hands back the fact at every block boundary. Analyzers then make one
// final in-order pass per block, re-applying Transfer atom by atom and
// checking their sinks against the exact fact that reaches each atom.

// FlowProblem describes one forward dataflow analysis with facts of
// type S.
type FlowProblem[S any] struct {
	// Entry is the fact at function entry.
	Entry S
	// Bottom produces the identity element of Join, used to seed blocks
	// before any predecessor fact has flowed in.
	Bottom func() S
	// Join merges the facts of two predecessors. It must be monotone
	// and may read but not mutate its arguments.
	Join func(a, b S) S
	// Transfer applies one atom to a fact. It owns s (Forward always
	// passes a Clone) and returns the fact after the atom.
	Transfer func(s S, atom ast.Node) S
	// Equal reports fact equality; the fixpoint stops when no block's
	// input changes.
	Equal func(a, b S) bool
	// Clone deep-copies a fact so Transfer can mutate freely.
	Clone func(s S) S
}

// Forward solves the problem to its least fixpoint and returns the
// fact flowing INTO each block. Facts for blocks unreachable from
// cfg.Entry stay at Bottom. The fact flowing out of a block is
// recomputable with BlockOut.
func Forward[S any](cfg *CFG, p FlowProblem[S]) map[*Block]S {
	in := make(map[*Block]S, len(cfg.Blocks))
	for _, b := range cfg.Blocks {
		in[b] = p.Bottom()
	}
	in[cfg.Entry] = p.Entry

	reachable := cfg.Reachable(cfg.Entry)
	// Worklist seeded in block-creation order, which approximates
	// reverse postorder closely enough for these small graphs.
	work := make([]*Block, 0, len(cfg.Blocks))
	queued := make(map[*Block]bool, len(cfg.Blocks))
	push := func(b *Block) {
		if !queued[b] && reachable[b] {
			queued[b] = true
			work = append(work, b)
		}
	}
	push(cfg.Entry)

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		out := BlockOut(p, in[b], b)
		for _, s := range b.Succs {
			merged := p.Join(in[s], out)
			if !p.Equal(merged, in[s]) {
				in[s] = merged
				push(s)
			}
		}
	}
	return in
}

// BlockOut pushes the fact entering a block through every atom and
// returns the fact at the block's end.
func BlockOut[S any](p FlowProblem[S], entering S, b *Block) S {
	s := p.Clone(entering)
	for _, atom := range b.Atoms {
		s = p.Transfer(s, atom)
	}
	return s
}
