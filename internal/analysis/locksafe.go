package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockSafe enforces the repo's two lock-hygiene conventions, in every
// package (the mutex-heavy server and agent tiers are exactly the ones
// outside the determinism set):
//
//   - a method whose name ends in "Locked" documents that its receiver's
//     state is guarded by a mutex the caller already holds. Calling one
//     from a function that neither locks anything beforehand (lexically,
//     within the enclosing function) nor is itself a *Locked method is
//     flagged. The check is syntactic — it looks for a sync (R)Lock call
//     earlier in the enclosing function body — which is deliberately
//     conservative about unlock paths; it exists to catch the "called it
//     from a fresh code path with no lock at all" regression.
//
//   - values whose type transitively contains a sync.Mutex/RWMutex must
//     not be copied: assignments from existing variables, range value
//     variables, and value receivers are flagged (a lightweight cut of
//     go vet's copylocks).
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc: "flag *Locked methods called without a lock held in the caller's " +
		"scope, and by-value copies of mutex-bearing structs",
	Run: runLockSafe,
}

func runLockSafe(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockedCalls(pass, fn)
			checkValueReceiver(pass, fn)
			if fn.Body != nil {
				checkLockCopies(pass, fn.Body)
			}
		}
	}
	return nil
}

// checkLockedCalls flags calls to *Locked methods made without any
// preceding (R)Lock call in the enclosing function, unless the function
// is itself a *Locked method.
func checkLockedCalls(pass *Pass, fn *ast.FuncDecl) {
	if fn.Body == nil || strings.HasSuffix(fn.Name.Name, "Locked") {
		return
	}
	lockPositions := syncLockPositions(pass, fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil || f.Name() == "Locked" || !strings.HasSuffix(f.Name(), "Locked") {
			return true
		}
		sig, _ := f.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			return true
		}
		held := false
		for _, lp := range lockPositions {
			if lp < call.Pos() {
				held = true
				break
			}
		}
		if !held {
			pass.Reportf(call.Pos(), "%s is called without a lock held in %s; its Locked suffix requires the receiver's mutex", f.Name(), fn.Name.Name)
		}
		return true
	})
}

// syncLockPositions collects the positions of sync.Mutex.Lock,
// sync.RWMutex.Lock, and sync.RWMutex.RLock calls within body.
func syncLockPositions(pass *Pass, body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
			return true
		}
		if f.Name() == "Lock" || f.Name() == "RLock" {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}

// checkValueReceiver flags methods declared on a mutex-bearing value
// receiver: every call would copy the lock.
func checkValueReceiver(pass *Pass, fn *ast.FuncDecl) {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return
	}
	recv := fn.Recv.List[0]
	t := pass.Info.TypeOf(recv.Type)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if lockType := containedLock(t); lockType != "" {
		pass.Reportf(recv.Type.Pos(), "value receiver of %s copies %s; use a pointer receiver", fn.Name.Name, lockType)
	}
}

// checkLockCopies flags statements that copy a mutex-bearing value from
// an existing variable: plain/short assignments and range value
// variables. Composite literals and call results are fresh values, not
// copies of a lock someone may hold, and stay legal.
func checkLockCopies(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				// `_ = v` discards the value; nothing is copied.
				if lhs, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && lhs.Name == "_" {
					continue
				}
				if !copiesExistingValue(rhs) {
					continue
				}
				t := pass.Info.TypeOf(rhs)
				if t == nil {
					continue
				}
				if lockType := containedLock(t); lockType != "" {
					pass.Reportf(rhs.Pos(), "assignment copies %s by value; take a pointer instead", lockType)
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			t := pass.Info.TypeOf(n.Value)
			if t == nil {
				return true
			}
			if lockType := containedLock(t); lockType != "" {
				pass.Reportf(n.Value.Pos(), "range value copies %s per iteration; range over indices or pointers instead", lockType)
			}
		}
		return true
	})
}

// copiesExistingValue reports whether the expression reads an existing
// addressable value (identifier, field, index, or pointer dereference) —
// the forms whose assignment duplicates a possibly-held lock.
func copiesExistingValue(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// containedLock reports the name of the sync lock type t transitively
// contains by value ("" when none): sync.Mutex or sync.RWMutex directly,
// or inside struct fields and array elements. Pointers and slices stop
// the walk — they share, not copy.
func containedLock(t types.Type) string {
	return containedLockRec(t, map[types.Type]bool{})
}

func containedLockRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex":
				return "sync." + obj.Name()
			}
		}
		return containedLockRec(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if found := containedLockRec(t.Field(i).Type(), seen); found != "" {
				return found
			}
		}
	case *types.Array:
		return containedLockRec(t.Elem(), seen)
	}
	return ""
}
