package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"github.com/nomloc/nomloc/internal/analysis"
)

// parseBody parses src as a file and returns the body of its first
// function declaration.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// blockWith returns the first block containing an atom satisfying pred.
func blockWith(cfg *analysis.CFG, pred func(ast.Node) bool) *analysis.Block {
	for _, b := range cfg.Blocks {
		for _, a := range b.Atoms {
			if pred(a) {
				return b
			}
		}
	}
	return nil
}

func isReturn(n ast.Node) bool { _, ok := n.(*ast.ReturnStmt); return ok }

func TestCFGStraightLine(t *testing.T) {
	cfg := analysis.NewCFG(parseBody(t, `func f() { a := 1; b := a; _ = b }`))
	if len(cfg.Entry.Atoms) != 3 {
		t.Errorf("entry atoms = %d, want 3", len(cfg.Entry.Atoms))
	}
	if len(cfg.Entry.Succs) != 1 || cfg.Entry.Succs[0] != cfg.Exit {
		t.Errorf("entry should fall straight to exit")
	}
	if len(cfg.Exit.Succs) != 0 {
		t.Errorf("exit must have no successors")
	}
}

func TestCFGIfElseBothReturn(t *testing.T) {
	cfg := analysis.NewCFG(parseBody(t, `func f(c bool) int {
		if c {
			return 1
		} else {
			return 2
		}
	}`))
	if !cfg.CanReach(cfg.Entry, cfg.Exit) {
		t.Error("exit must be reachable via the returns")
	}
	// The condition block must branch two ways.
	cond := blockWith(cfg, func(n ast.Node) bool { _, ok := n.(*ast.Ident); return ok })
	if cond == nil || len(cond.Succs) != 2 {
		t.Fatalf("condition block should have 2 successors, got %+v", cond)
	}
	// Both returns flow to exit and nothing else.
	for _, b := range cfg.Blocks {
		for _, a := range b.Atoms {
			if isReturn(a) && (len(b.Succs) != 1 || b.Succs[0] != cfg.Exit) {
				t.Error("return block must jump straight to exit")
			}
		}
	}
}

func TestCFGForLoop(t *testing.T) {
	cfg := analysis.NewCFG(parseBody(t, `func f(n int) {
		s := 0
		for i := 0; i < n; i++ {
			s += i
		}
		_ = s
	}`))
	if !cfg.CanReach(cfg.Entry, cfg.Exit) {
		t.Error("loop with condition must reach exit")
	}
	body := blockWith(cfg, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		return ok && as.Tok == token.ADD_ASSIGN
	})
	if body == nil {
		t.Fatal("loop body block not found")
	}
	// The body must cycle back (via the post block) to the loop head.
	if !cfg.CanReach(body, body) {
		t.Error("loop body must be able to reach itself (back edge)")
	}
}

func TestCFGInfiniteFor(t *testing.T) {
	cfg := analysis.NewCFG(parseBody(t, `func f() {
		for {
			g()
		}
	}`))
	if cfg.CanReach(cfg.Entry, cfg.Exit) {
		t.Error("for {} has no way out; exit must be unreachable")
	}
}

func TestCFGBreakEscapesLoop(t *testing.T) {
	cfg := analysis.NewCFG(parseBody(t, `func f(c bool) {
		for {
			if c {
				break
			}
		}
	}`))
	if !cfg.CanReach(cfg.Entry, cfg.Exit) {
		t.Error("break must make exit reachable")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	cfg := analysis.NewCFG(parseBody(t, `func f(x int) {
		a := 0
		switch x {
		case 1:
			a = 1
			fallthrough
		case 2:
			a = 2
		default:
			a = 3
		}
		_ = a
	}`))
	one := blockWith(cfg, func(n ast.Node) bool { return assignsLiteral(n, "1") })
	two := blockWith(cfg, func(n ast.Node) bool { return assignsLiteral(n, "2") })
	three := blockWith(cfg, func(n ast.Node) bool { return assignsLiteral(n, "3") })
	if one == nil || two == nil || three == nil {
		t.Fatal("case bodies not found")
	}
	if !cfg.CanReach(one, two) {
		t.Error("fallthrough must chain case 1 into case 2")
	}
	if cfg.CanReach(two, three) {
		t.Error("case 2 must not reach default")
	}
	if !cfg.CanReach(cfg.Entry, cfg.Exit) {
		t.Error("switch must flow to exit")
	}
}

func assignsLiteral(n ast.Node, lit string) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return false
	}
	bl, ok := as.Rhs[0].(*ast.BasicLit)
	return ok && bl.Value == lit
}

func TestCFGEmptySelectBlocksForever(t *testing.T) {
	cfg := analysis.NewCFG(parseBody(t, `func f() { select {} }`))
	if cfg.CanReach(cfg.Entry, cfg.Exit) {
		t.Error("select {} never proceeds; exit must be unreachable")
	}
}

func TestCFGSelectClauses(t *testing.T) {
	cfg := analysis.NewCFG(parseBody(t, `func f(a, b chan int) int {
		select {
		case v := <-a:
			return v
		case <-b:
		}
		return 0
	}`))
	if !cfg.CanReach(cfg.Entry, cfg.Exit) {
		t.Error("select with clauses must flow onward")
	}
}

func TestCFGGotoForward(t *testing.T) {
	cfg := analysis.NewCFG(parseBody(t, `func f(c bool) {
		if c {
			goto done
		}
		g()
	done:
		h()
	}`))
	if !cfg.CanReach(cfg.Entry, cfg.Exit) {
		t.Error("goto target must flow to exit")
	}
	call := blockWith(cfg, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		c, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := c.Fun.(*ast.Ident)
		return ok && id.Name == "h"
	})
	if call == nil {
		t.Fatal("labeled statement's block not found")
	}
	if len(cfg.Preds(call)) < 2 {
		t.Errorf("label block should be reached from goto and fallthrough, preds = %d", len(cfg.Preds(call)))
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	cfg := analysis.NewCFG(parseBody(t, `func f(c bool) {
	outer:
		for {
			for {
				if c {
					break outer
				}
			}
		}
	}`))
	if !cfg.CanReach(cfg.Entry, cfg.Exit) {
		t.Error("labeled break must escape both loops")
	}
}

func TestCFGUnreachableCodeStaysWalkable(t *testing.T) {
	cfg := analysis.NewCFG(parseBody(t, `func f() int {
		return 1
		g()
	}`))
	dead := blockWith(cfg, func(n ast.Node) bool { _, ok := n.(*ast.ExprStmt); return ok })
	if dead == nil {
		t.Fatal("unreachable statement must still appear in a block")
	}
	if cfg.Reachable(cfg.Entry)[dead] {
		t.Error("code after return must not be reachable")
	}
}

func TestCFGDefersCollected(t *testing.T) {
	cfg := analysis.NewCFG(parseBody(t, `func f() {
		defer g()
		if cond() {
			defer h()
		}
	}`))
	if len(cfg.Defers) != 2 {
		t.Errorf("defers collected = %d, want 2", len(cfg.Defers))
	}
}

func TestCFGRangeLoop(t *testing.T) {
	cfg := analysis.NewCFG(parseBody(t, `func f(xs []int) int {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}`))
	if !cfg.CanReach(cfg.Entry, cfg.Exit) {
		t.Error("range loop must flow to exit")
	}
	head := blockWith(cfg, func(n ast.Node) bool { _, ok := n.(*ast.RangeStmt); return ok })
	if head == nil {
		t.Fatal("range header block not found")
	}
	if !cfg.CanReach(head, head) {
		t.Error("range head must have a back edge")
	}
}

func TestCFGNilBody(t *testing.T) {
	cfg := analysis.NewCFG(nil)
	if !cfg.CanReach(cfg.Entry, cfg.Exit) {
		t.Error("empty function must wire entry to exit")
	}
}
