package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
)

// LeakCheck audits every `go` statement in the concurrency-bearing
// packages (server, parallel, agent) for a provable exit discipline.
// A goroutine passes when, on every CFG path through its body, it
// touches a lifecycle signal before returning — a WaitGroup.Done
// (deferred or inline), a channel operation (send, receive —
// including <-ctx.Done() — or range), a select, or a close() — or when
// the spawned named function is handed a context.Context, a channel,
// or a *sync.WaitGroup to govern it. Everything else is reported: a
// goroutine with no reachable signaled exit is exactly the leak the
// paper's long-running serving deployment cannot tolerate.
//
// Under a Program the named-function path is judged interprocedurally
// (DESIGN.md §11): the spawned function's own body is classified by the
// same CFG discipline, with signals flowing through the helpers it
// calls — so `go spin(ctx)` is reported when spin ignores its context,
// and `go func() { pump(ch) }()` is clean when pump ranges the channel.
// Only when the callee's body is out of reach does the analyzer fall
// back to the lifecycle-argument heuristic of the spawn site.
//
// The check is necessarily a heuristic for liveness, so it is biased
// to the repo's supervision idiom (`go func() { defer wg.Done(); … }`)
// and keeps an audited escape hatch: //nomloc:leakcheck-ok.
var LeakCheck = &Analyzer{
	Name: "leakcheck",
	Doc: "flag go statements in server, parallel, and agent whose goroutines " +
		"have no reachable exit via context cancellation, channel ops, or " +
		"WaitGroup.Done on all CFG paths",
	Run: runLeakCheck,
}

var leakScopedPackages = map[string]bool{
	"server": true, "parallel": true, "agent": true, "chaos": true,
}

func runLeakCheck(pass *Pass) error {
	if !leakScopedPackages[path.Base(pass.Pkg.Path())] {
		return nil
	}
	lc := &leakCheck{pass: pass}
	if pass.Prog != nil {
		lc.sum = SummariesFor(pass.Prog, leakSummarizer)
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				lc.checkGo(g)
			}
			return true
		})
	}
	return nil
}

type leakCheck struct {
	pass *Pass
	// sum holds the program-wide leak summaries, nil on intraprocedural
	// runs (named spawns then fall back to the lifecycle-arg heuristic).
	sum *Summaries[leakSummary]
}

func (lc *leakCheck) checkGo(g *ast.GoStmt) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		lc.checkLitBody(g, lit.Body)
		return
	}
	// Named function or method: when the program view has the callee's
	// body, judge it directly — a callee that ignores its arguments
	// leaks no matter what lifecycle handles the spawn site passes.
	if lc.sum != nil {
		if node := lc.sum.NodeOfCall(lc.pass.Info, g.Call); node != nil && node.Fn != nil && node.Fn.Body != nil {
			switch lc.sum.Of(node.ID).verdict {
			case leakyReturn:
				lc.pass.Reportf(g.Pos(), "goroutine calls %s, which can return without touching a context, channel, or WaitGroup on some path; supervise it (e.g. defer wg.Done())", callName(lc.pass.Info, g.Call))
			case leakyLoop:
				lc.pass.Reportf(g.Pos(), "goroutine calls %s, which loops forever with no context, channel, or WaitGroup operation; it cannot be shut down", callName(lc.pass.Info, g.Call))
			}
			return
		}
	}
	// Callee body out of reach: trust the spawn when the caller hands it
	// a lifecycle handle; otherwise the exit discipline is invisible.
	for _, arg := range g.Call.Args {
		if isLifecycleType(lc.pass.Info.TypeOf(arg)) {
			return
		}
	}
	lc.pass.Reportf(g.Pos(), "goroutine calls %s with no context, channel, or WaitGroup to govern its exit", callName(lc.pass.Info, g.Call))
}

func (lc *leakCheck) checkLitBody(g *ast.GoStmt, body *ast.BlockStmt) {
	switch lc.judgeBody(body) {
	case leakyReturn:
		lc.pass.Reportf(g.Pos(), "goroutine can return without touching a context, channel, or WaitGroup on some path; supervise it (e.g. defer wg.Done())")
	case leakyLoop:
		lc.pass.Reportf(g.Pos(), "goroutine loops forever with no context, channel, or WaitGroup operation; it cannot be shut down")
	}
}

// judgeBody classifies a goroutine body's exit discipline.
func (lc *leakCheck) judgeBody(body *ast.BlockStmt) leakVerdict {
	cfg := NewCFG(body)

	// Deferred Done/close supervises every exit path at once — the
	// repo's canonical `defer wg.Done()` idiom.
	for _, d := range cfg.Defers {
		if lc.containsSignal(d, true) {
			return leakOK
		}
	}

	// Forward dataflow: "has this path touched a lifecycle signal yet".
	// Join is AND — true only when every predecessor path signaled.
	p := FlowProblem[bool]{
		Entry:  false,
		Bottom: func() bool { return true },
		Join:   func(a, b bool) bool { return a && b },
		Transfer: func(s bool, atom ast.Node) bool {
			return s || lc.containsSignal(atom, false)
		},
		Equal: func(a, b bool) bool { return a == b },
		Clone: func(s bool) bool { return s },
	}
	in := Forward(cfg, p)
	reachable := cfg.Reachable(cfg.Entry)

	if reachable[cfg.Exit] {
		if !in[cfg.Exit] {
			return leakyReturn
		}
		return leakOK
	}

	// Exit unreachable: the body loops forever. That is fine for a
	// worker pumping a channel, fatal for a busy spin — demand a signal
	// somewhere in the looping region.
	for _, b := range cfg.Blocks {
		if !reachable[b] {
			continue
		}
		for _, atom := range b.Atoms {
			if lc.containsSignal(atom, false) {
				return leakOK
			}
		}
	}
	return leakyLoop
}

// containsSignal reports whether a node's subtree performs a lifecycle
// signal: WaitGroup.Done, close(), a channel send or receive, a range
// over a channel, or a select. Nested function literals are skipped
// unless intoLits is set (defers run in this goroutine, so a deferred
// closure's body counts).
func (lc *leakCheck) containsSignal(n ast.Node, intoLits bool) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			return intoLits
		case *ast.GoStmt:
			// A spawned goroutine's signals are its own, not this path's.
			return false
		case *ast.CallExpr:
			if lc.isDoneCall(x) || isCloseCall(lc.pass.Info, x) || lc.signalsThrough(x) {
				found = true
				return false
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.SendStmt:
			found = true
			return false
		case *ast.SelectStmt:
			found = true
			return false
		case *ast.RangeStmt:
			if t := lc.pass.Info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// signalsThrough reports whether a call's callee performs a lifecycle
// signal in its own body, per the interprocedural summary — how
// `for { step(ch) }` counts when step drains the channel.
func (lc *leakCheck) signalsThrough(call *ast.CallExpr) bool {
	if lc.sum == nil {
		return false
	}
	sum, ok := lc.sum.OfCall(lc.pass.Info, call)
	return ok && sum.signals
}

// ---- interprocedural leak summaries ----

// leakVerdict classifies one function body as a goroutine root.
type leakVerdict int

const (
	// leakUnknown: no body to judge (externals).
	leakUnknown leakVerdict = iota
	// leakOK: every path signals before returning, or a deferred signal
	// covers all exits, or the forever-loop touches a signal.
	leakOK
	// leakyReturn: some path returns without a signal.
	leakyReturn
	// leakyLoop: the body loops forever with no signal anywhere.
	leakyLoop
)

// leakSummary is one function's concurrency-exit summary: signals says
// whether calling the function performs a lifecycle signal on some path
// (what callers fold into their own discipline), and verdict is the
// body's classification when spawned directly via `go f(...)`.
type leakSummary struct {
	signals bool
	verdict leakVerdict
}

var leakSummarizer = Summarizer[leakSummary]{
	Name:    "leakcheck",
	Bottom:  func() leakSummary { return leakSummary{} },
	Equal:   func(a, b leakSummary) bool { return a == b },
	Compute: computeLeakSummary,
}

func computeLeakSummary(sm *Summaries[leakSummary], n *Node) leakSummary {
	fi := n.Fn
	if fi == nil || fi.Body == nil {
		return leakSummary{}
	}
	// The synthetic pass never reports (judgeBody only classifies), so
	// it carries no Analyzer.
	lc := &leakCheck{
		pass: &Pass{
			Fset:  fi.Pkg.Fset,
			Files: fi.Pkg.Files,
			Pkg:   fi.Pkg.Types,
			Info:  fi.Pkg.Info,
			Prog:  sm.Prog,
		},
		sum: sm,
	}
	return leakSummary{
		signals: lc.containsSignal(fi.Body, false),
		verdict: lc.judgeBody(fi.Body),
	}
}

func (lc *leakCheck) isDoneCall(call *ast.CallExpr) bool {
	f := calleeFunc(lc.pass.Info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync" && f.Name() == "Done"
}

func isCloseCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

// isLifecycleType reports whether t can govern a goroutine's exit:
// context.Context, any channel, or *sync.WaitGroup.
func isLifecycleType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil {
			switch {
			case obj.Pkg().Path() == "context" && obj.Name() == "Context":
				return true
			case obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup":
				return true
			}
		}
	}
	return false
}
