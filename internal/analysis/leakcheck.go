package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
)

// LeakCheck audits every `go` statement in the concurrency-bearing
// packages (server, parallel, agent) for a provable exit discipline.
// A goroutine passes when, on every CFG path through its body, it
// touches a lifecycle signal before returning — a WaitGroup.Done
// (deferred or inline), a channel operation (send, receive —
// including <-ctx.Done() — or range), a select, or a close() — or when
// the spawned named function is handed a context.Context, a channel,
// or a *sync.WaitGroup to govern it. Everything else is reported: a
// goroutine with no reachable signaled exit is exactly the leak the
// paper's long-running serving deployment cannot tolerate.
//
// The check is necessarily a heuristic for liveness, so it is biased
// to the repo's supervision idiom (`go func() { defer wg.Done(); … }`)
// and keeps an audited escape hatch: //nomloc:leakcheck-ok.
var LeakCheck = &Analyzer{
	Name: "leakcheck",
	Doc: "flag go statements in server, parallel, and agent whose goroutines " +
		"have no reachable exit via context cancellation, channel ops, or " +
		"WaitGroup.Done on all CFG paths",
	Run: runLeakCheck,
}

var leakScopedPackages = map[string]bool{
	"server": true, "parallel": true, "agent": true, "chaos": true,
}

func runLeakCheck(pass *Pass) error {
	if !leakScopedPackages[path.Base(pass.Pkg.Path())] {
		return nil
	}
	lc := &leakCheck{pass: pass}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				lc.checkGo(g)
			}
			return true
		})
	}
	return nil
}

type leakCheck struct {
	pass *Pass
}

func (lc *leakCheck) checkGo(g *ast.GoStmt) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		lc.checkLitBody(g, lit.Body)
		return
	}
	// Named function or method value: trust it when the caller hands it
	// a lifecycle handle; otherwise the exit discipline is invisible
	// from this spawn site.
	for _, arg := range g.Call.Args {
		if isLifecycleType(lc.pass.Info.TypeOf(arg)) {
			return
		}
	}
	lc.pass.Reportf(g.Pos(), "goroutine calls %s with no context, channel, or WaitGroup to govern its exit", callName(lc.pass.Info, g.Call))
}

func (lc *leakCheck) checkLitBody(g *ast.GoStmt, body *ast.BlockStmt) {
	cfg := NewCFG(body)

	// Deferred Done/close supervises every exit path at once — the
	// repo's canonical `defer wg.Done()` idiom.
	for _, d := range cfg.Defers {
		if lc.containsSignal(d, true) {
			return
		}
	}

	// Forward dataflow: "has this path touched a lifecycle signal yet".
	// Join is AND — true only when every predecessor path signaled.
	p := FlowProblem[bool]{
		Entry:  false,
		Bottom: func() bool { return true },
		Join:   func(a, b bool) bool { return a && b },
		Transfer: func(s bool, atom ast.Node) bool {
			return s || lc.containsSignal(atom, false)
		},
		Equal: func(a, b bool) bool { return a == b },
		Clone: func(s bool) bool { return s },
	}
	in := Forward(cfg, p)
	reachable := cfg.Reachable(cfg.Entry)

	if reachable[cfg.Exit] {
		if !in[cfg.Exit] {
			lc.pass.Reportf(g.Pos(), "goroutine can return without touching a context, channel, or WaitGroup on some path; supervise it (e.g. defer wg.Done())")
		}
		return
	}

	// Exit unreachable: the body loops forever. That is fine for a
	// worker pumping a channel, fatal for a busy spin — demand a signal
	// somewhere in the looping region.
	for _, b := range cfg.Blocks {
		if !reachable[b] {
			continue
		}
		for _, atom := range b.Atoms {
			if lc.containsSignal(atom, false) {
				return
			}
		}
	}
	lc.pass.Reportf(g.Pos(), "goroutine loops forever with no context, channel, or WaitGroup operation; it cannot be shut down")
}

// containsSignal reports whether a node's subtree performs a lifecycle
// signal: WaitGroup.Done, close(), a channel send or receive, a range
// over a channel, or a select. Nested function literals are skipped
// unless intoLits is set (defers run in this goroutine, so a deferred
// closure's body counts).
func (lc *leakCheck) containsSignal(n ast.Node, intoLits bool) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			return intoLits
		case *ast.CallExpr:
			if lc.isDoneCall(x) || isCloseCall(lc.pass.Info, x) {
				found = true
				return false
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.SendStmt:
			found = true
			return false
		case *ast.SelectStmt:
			found = true
			return false
		case *ast.RangeStmt:
			if t := lc.pass.Info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func (lc *leakCheck) isDoneCall(call *ast.CallExpr) bool {
	f := calleeFunc(lc.pass.Info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync" && f.Name() == "Done"
}

func isCloseCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

// isLifecycleType reports whether t can govern a goroutine's exit:
// context.Context, any channel, or *sync.WaitGroup.
func isLifecycleType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil {
			switch {
			case obj.Pkg().Path() == "context" && obj.Name() == "Context":
				return true
			case obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup":
				return true
			}
		}
	}
	return false
}
