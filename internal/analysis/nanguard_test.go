package analysis_test

import (
	"testing"

	"github.com/nomloc/nomloc/internal/analysis"
	"github.com/nomloc/nomloc/internal/analysis/analysistest"
)

func TestNanGuard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NanGuard,
		"nanguard/core", "nanguard/other")
}
