package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader typechecks packages the way vet's unitchecker does: each
// target package is parsed from source and checked against the compiled
// export data of its dependencies, which `go list -deps -export` places
// in the build cache. Everything here is standard library — the sandbox
// this repo grows in has no module proxy, so golang.org/x/tools/go/
// packages is not an option.

// ErrLoad wraps package-loading failures.
var ErrLoad = errors.New("analysis: load failed")

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path.
	Path string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed sources, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the checker's fact tables.
	Info *types.Info
}

// Run executes one analyzer over the package, returning its diagnostics
// after suppression filtering.
func (p *Package) Run(a *Analyzer) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     p.Fset,
		Files:    p.Files,
		Pkg:      p.Types,
		Info:     p.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s on %s: %w", a.Name, p.Path, err)
	}
	return ApplySuppressions(p.Fset, p.Files, a.Name, pass.diags), nil
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
}

// goList runs `go list` with the given arguments in dir and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("%w: go list %s: %v\n%s", ErrLoad,
			strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("%w: decode go list output: %v", ErrLoad, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportLookup maps import paths to compiled export data files for every
// dependency reachable from the module's packages. Build one with
// NewExportLookup and share it across Load and fixture typechecks.
type ExportLookup map[string]string

// NewExportLookup compiles (into the build cache) and indexes export data
// for all packages matching patterns, and their dependencies, resolved
// from dir.
func NewExportLookup(dir string, patterns ...string) (ExportLookup, error) {
	pkgs, err := goList(dir, append([]string{"-deps", "-export", "-json=ImportPath,Export,Standard"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	lookup := make(ExportLookup, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			lookup[p.ImportPath] = p.Export
		}
	}
	return lookup, nil
}

// Importer returns a types.Importer serving packages from the lookup's
// export data files.
func (l ExportLookup) Importer(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// NewInfo returns a types.Info with every fact table the analyzers read.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// CheckFiles typechecks already-parsed files as the package at pkgPath,
// resolving imports through the lookup.
func (l ExportLookup) CheckFiles(fset *token.FileSet, pkgPath string, files []*ast.File) (*Package, error) {
	info := NewInfo()
	cfg := types.Config{Importer: l.Importer(fset)}
	tpkg, err := cfg.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%w: typecheck %s: %v", ErrLoad, pkgPath, err)
	}
	return &Package{Path: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// ParseDir parses every .go file of one directory (comments included)
// into a fresh file set.
func ParseDir(dir string, fset *token.FileSet) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLoad, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrLoad, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%w: no .go files in %s", ErrLoad, dir)
	}
	return files, nil
}

// Load lists, parses, and typechecks the packages matching the `go list`
// patterns, resolving them relative to dir (the module the patterns name
// must be reachable from there). Test files are not analyzed — the
// determinism contract governs what ships, and fixtures/tests legally
// hold violations as specimens.
func Load(dir string, patterns ...string) ([]*Package, error) {
	lookup, err := NewExportLookup(dir, patterns...)
	if err != nil {
		return nil, err
	}
	targets, err := goList(dir, append([]string{"-json=ImportPath,Name,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	out := make([]*Package, 0, len(targets))
	for _, t := range targets {
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrLoad, err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		pkg, err := lookup.CheckFiles(fset, t.ImportPath, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
