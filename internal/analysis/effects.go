package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// This file is the effect system (DESIGN.md §13): an interprocedural
// inference over a small lattice of ambient effects, a declaration layer
// (//nomloc:effect annotations checked against the inferred sets), and
// the replay-safety gate — a configurable set of root functions from
// which everything reachable must stay free of the effects that would
// let a journal replay or a chaos heal-to-golden run diverge from the
// live solve.
//
// Inference walks every function the call graph knows and derives two
// sets per function:
//
//   - its OWN effects: intrinsic facts of the body (package-level
//     variable reads/writes, map ranges whose order escapes, goroutine
//     and channel operations, unsafe) plus the table effects of every
//     external (bodyless) callee, resolved through stdlib summaries for
//     time, os, math/rand, sync, io, fmt, and friends;
//   - its FULL effects: own ∪ the full effects of source callees
//     (static and CHA interface edges) ∪ the full effects of every
//     lexically nested function literal.
//
// Nested literals are folded into their *creator*, not their caller:
// a call through a function-typed value (parameter, field, local) is
// effect-free at the call site, because whatever closure flows there
// already charged its effects to the function that created it. This is
// the classic latent-effect treatment of higher-order code and is what
// keeps the injected-clock pattern sound and precise at once: the
// parallel pool calling `fn(state, i)` stays clean, while a caller that
// builds a closure over time.Now carries wallclock itself. Named
// functions laundered through variables are the one hole, shared with
// every other summary consumer in this package (DESIGN.md §11).
//
// The fixpoint is a plain monotone iteration over the sorted node list
// rather than the SCC engine of summary.go: lexical containment is an
// edge the call graph does not have, so component order cannot be
// trusted to visit a closure's callees before the closure's creator.
// Effect sets are 9-bit masks, so the global iteration converges in a
// handful of rounds and stays byte-deterministic.

// Effect is a bitmask over the effect lattice.
type Effect uint16

const (
	// EffWallclock reads the wall clock (time.Now and wrappers).
	EffWallclock Effect = 1 << iota
	// EffGlobalRead reads a package-level variable.
	EffGlobalRead
	// EffGlobalWrite writes (or takes the address of) a package-level
	// variable.
	EffGlobalWrite
	// EffIO touches files, networks, or process state.
	EffIO
	// EffFsync forces data to stable storage (os.(*File).Sync).
	EffFsync
	// EffMapOrder ranges over a map where element order escapes.
	EffMapOrder
	// EffUnseededRand draws from the global math/rand source.
	EffUnseededRand
	// EffSpawn starts goroutines or uses channels.
	EffSpawn
	// EffUnsafe uses package unsafe.
	EffUnsafe
)

// effectOrder fixes the canonical display and parse order of the
// lattice; every rendered effect list follows it.
var effectOrder = []struct {
	bit  Effect
	name string
}{
	{EffWallclock, "wallclock"},
	{EffGlobalRead, "globalread"},
	{EffGlobalWrite, "globalwrite"},
	{EffIO, "io"},
	{EffFsync, "fsync"},
	{EffMapOrder, "maporder"},
	{EffUnseededRand, "unseededrand"},
	{EffSpawn, "spawn"},
	{EffUnsafe, "unsafe"},
}

// String renders the set in canonical order, "pure" for the empty set.
func (e Effect) String() string {
	if e == 0 {
		return "pure"
	}
	var names []string
	for _, eo := range effectOrder {
		if e&eo.bit != 0 {
			names = append(names, eo.name)
		}
	}
	return strings.Join(names, ",")
}

// ParseEffects parses a comma-separated effect list; "pure" (alone)
// names the empty set.
func ParseEffects(list string) (Effect, error) {
	parts := strings.Split(list, ",")
	var out Effect
	pure := false
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "pure" {
			pure = true
			continue
		}
		found := false
		for _, eo := range effectOrder {
			if eo.name == p {
				out |= eo.bit
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("unknown effect %q (lattice: pure, wallclock, globalread, globalwrite, io, fsync, maporder, unseededrand, spawn, unsafe)", p)
		}
	}
	if pure && out != 0 {
		return 0, fmt.Errorf("\"pure\" cannot be combined with other effects")
	}
	return out, nil
}

// effUnknown is the sound default for calls into external code no
// stdlib summary covers: everything short of fsync and unsafe, both of
// which require constructs the table does recognize.
const effUnknown = EffWallclock | EffGlobalRead | EffGlobalWrite | EffIO | EffMapOrder | EffUnseededRand | EffSpawn

// GateForbidden is the effect set the replay-safety gate rejects.
// globalread stays legal (error sentinels and lookup tables are read
// everywhere) and so does spawn: the parallel pool is deterministic by
// construction (results in input order, per-task RNG streams), which is
// its own statically-checked contract (leakcheck, detrand, seedmix).
const GateForbidden = EffWallclock | EffGlobalWrite | EffIO | EffFsync | EffMapOrder | EffUnseededRand | EffUnsafe

// DefaultGateRoots are the functions every journal replay and chaos
// heal re-executes: the shared solve path. Roots match by full FuncID
// or by shortened form ("journal.ApplyReport").
var DefaultGateRoots = []string{
	"github.com/nomloc/nomloc/internal/journal.ApplyReport",
	"github.com/nomloc/nomloc/internal/journal.SolveReports",
	"github.com/nomloc/nomloc/internal/replica.(*Applier).Apply",
	"github.com/nomloc/nomloc/internal/core.(*Localizer).Locate",
	"github.com/nomloc/nomloc/internal/core.(*Localizer).LocateBatch",
	"github.com/nomloc/nomloc/internal/lp.Solve",
	"github.com/nomloc/nomloc/internal/lp.(*Workspace).Solve",
	"github.com/nomloc/nomloc/internal/track.(*Filter).ObserveRound",
}

// GateRoots is the active root set of the replay-safety gate.
// cmd/nomloc-vet overrides it from -gate-roots; tests point it at
// fixture functions. Set it before the first effects pass over a
// Program — results are cached per program.
var GateRoots = DefaultGateRoots

// effectAnnotation opens the declaration grammar:
// //nomloc:effect(pure) or //nomloc:effect(globalread,spawn), placed in
// the function's doc comment. The effects analyzer verifies the
// declared set matches the inferred set exactly, so annotations can
// neither rot stale nor hide an effect.
const effectAnnotation = "//nomloc:effect("

// Effects infers per-function effect sets over the whole program,
// verifies //nomloc:effect annotations against them, and enforces the
// replay-safety gate from GateRoots.
var Effects = &Analyzer{
	Name: "effects",
	Doc: "infer per-function effect sets (wallclock, globals, io, fsync, " +
		"map order, unseeded rand, spawn, unsafe), verify //nomloc:effect " +
		"annotations, and gate the solve/replay path on purity",
	Run: runEffects,
}

// effectAtom is one direct effect occurrence inside a function: an
// intrinsic fact of the body or the table effect of an external callee.
type effectAtom struct {
	pos    token.Pos
	eff    Effect
	detail string
}

// funcEffects is one function's inference state.
type funcEffects struct {
	node *Node
	// atoms are the function's direct effect occurrences in position
	// order.
	atoms []effectAtom
	// deps are the source callees (static + CHA interface edges) and
	// lexically nested literals whose full effects fold in.
	deps []*funcEffects
	// own is the union of atoms.
	own Effect
	// all is the fixpoint result: own ∪ deps' all.
	all Effect
	// witness records, per effect bit, the first deterministic origin
	// ("calls time.Now at lp.go:12" or "via core.(*Localizer).Locate").
	witness map[Effect]string
}

// effectsResult is the whole-program inference outcome.
type effectsResult struct {
	byID  map[string]*funcEffects
	order []*funcEffects // sorted by node ID
}

// effectsOf computes (once per program) the effect sets of every node.
func effectsOf(prog *Program) *effectsResult {
	return prog.cached("effects:infer", func() any {
		return computeEffects(prog)
	}).(*effectsResult)
}

func computeEffects(prog *Program) *effectsResult {
	res := &effectsResult{byID: make(map[string]*funcEffects, len(prog.Graph.Nodes))}
	for _, n := range prog.Graph.Nodes {
		fe := &funcEffects{node: n, witness: map[Effect]string{}}
		res.byID[n.ID] = fe
		res.order = append(res.order, fe)
	}
	// Seed atoms and dependency lists. Nodes are already sorted by ID,
	// so discovery order — and with it every witness below — is stable.
	for _, fe := range res.order {
		n := fe.node
		if n.Fn == nil || n.Fn.Body == nil {
			fe.own = externalEffects(n)
			fe.all = fe.own
			continue
		}
		fe.atoms = collectEffectAtoms(n.Fn)
		seen := map[*funcEffects]bool{}
		for _, e := range n.Out {
			if e.Kind == EdgeDynamic {
				// A call through a function-typed value: parametric.
				// The closures that can flow here charged their
				// effects to their creators already.
				continue
			}
			callee := res.byID[e.Callee.ID]
			if e.Callee.Fn != nil {
				if !seen[callee] {
					seen[callee] = true
					fe.deps = append(fe.deps, callee)
				}
				continue
			}
			if e.Kind == EdgeInterface && siteHasSourceTarget(n, e.Pos) {
				// The bare interface-method node; the CHA-resolved
				// concrete targets at this site carry the effects.
				continue
			}
			if eff := refineCallEffects(n.Fn.Pkg, e, externalEffects(e.Callee)); eff != 0 {
				fe.atoms = append(fe.atoms, effectAtom{
					pos:    e.Pos,
					eff:    eff,
					detail: "calls " + shortFuncID(e.Callee.ID),
				})
			}
		}
		for k := 1; ; k++ {
			child := prog.Graph.NodeByID(fmt.Sprintf("%s$%d", n.ID, k))
			if child == nil {
				break
			}
			fe.deps = append(fe.deps, res.byID[child.ID])
		}
		sort.SliceStable(fe.atoms, func(i, j int) bool { return fe.atoms[i].pos < fe.atoms[j].pos })
		for _, a := range fe.atoms {
			fe.own |= a.eff
		}
		fe.all = fe.own
		for _, a := range fe.atoms {
			fe.recordWitness(a.eff, a.detail+" at "+posString(n.Fn, a.pos))
		}
	}
	// Monotone global fixpoint: effect sets only grow, so iteration
	// terminates; the sorted sweep order keeps witnesses deterministic.
	for {
		changed := false
		for _, fe := range res.order {
			next := fe.all
			for _, dep := range fe.deps {
				if add := dep.all &^ next; add != 0 {
					next |= add
					fe.recordWitness(add, "via "+shortFuncID(dep.node.ID))
				}
			}
			if next != fe.all {
				fe.all = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return res
}

// recordWitness notes the first origin of each newly acquired bit.
func (fe *funcEffects) recordWitness(bits Effect, origin string) {
	for _, eo := range effectOrder {
		if bits&eo.bit != 0 {
			if _, ok := fe.witness[eo.bit]; !ok {
				fe.witness[eo.bit] = origin
			}
		}
	}
}

// witnessFor renders the recorded origins of the given bits in
// canonical order.
func (fe *funcEffects) witnessFor(bits Effect) string {
	var parts []string
	for _, eo := range effectOrder {
		if bits&eo.bit != 0 {
			if w, ok := fe.witness[eo.bit]; ok {
				parts = append(parts, eo.name+": "+w)
			}
		}
	}
	return strings.Join(parts, "; ")
}

// posString renders a position as "file:line" for witnesses and paths.
func posString(fi *FuncInfo, pos token.Pos) string {
	p := fi.Pkg.Fset.Position(pos)
	parts := strings.Split(strings.ReplaceAll(p.Filename, "\\", "/"), "/")
	return fmt.Sprintf("%s:%d", parts[len(parts)-1], p.Line)
}

// inMemoryPrinters are the fmt writers whose io effect vanishes when the
// destination is an in-memory buffer: Fprintf to a strings.Builder or
// bytes.Buffer is string formatting, not io.
var inMemoryPrinters = map[string]bool{
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
}

// refineCallEffects sharpens an external callee's table effects with
// call-site facts the table cannot see.
func refineCallEffects(pkg *Package, e *Edge, eff Effect) Effect {
	if eff&EffIO == 0 || e.Site == nil || !inMemoryPrinters[e.Callee.ID] || len(e.Site.Args) == 0 {
		return eff
	}
	t := pkg.Info.TypeOf(e.Site.Args[0])
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	if named == nil || named.Obj().Pkg() == nil {
		return eff
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return eff &^ EffIO
	}
	return eff
}

// siteHasSourceTarget reports whether any edge at the call position
// resolves to a function with an analyzable body.
func siteHasSourceTarget(n *Node, pos token.Pos) bool {
	for _, e := range n.Out {
		if e.Pos == pos && e.Callee.Fn != nil {
			return true
		}
	}
	return false
}

// collectEffectAtoms walks one function body (nested literals excluded —
// they are their own nodes and fold in as lexical deps) and returns its
// intrinsic effect occurrences.
func collectEffectAtoms(fi *FuncInfo) []effectAtom {
	info := fi.Pkg.Info
	var atoms []effectAtom

	// First pass: mark the base identifier of every write target —
	// assignment LHS, ++/--, and &x (an escaping address may be written
	// by anyone downstream).
	writes := map[*ast.Ident]bool{}
	markWrite := func(e ast.Expr) {
		if id := baseIdent(info, e); id != nil {
			writes[id] = true
		}
	}
	ast.Inspect(fi.Body, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				markWrite(l)
			}
		case *ast.IncDecStmt:
			markWrite(s.X)
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				markWrite(s.X)
			}
		}
		return true
	})

	ast.Inspect(fi.Body, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			obj := info.Uses[s]
			if obj != nil && obj.Pkg() == types.Unsafe {
				atoms = append(atoms, effectAtom{pos: s.Pos(), eff: EffUnsafe,
					detail: "uses unsafe." + obj.Name()})
				return true
			}
			v, ok := obj.(*types.Var)
			if !ok || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				return true
			}
			qual := v.Name()
			if v.Pkg().Path() != fi.Pkg.Path {
				qual = v.Pkg().Name() + "." + v.Name()
			}
			if writes[s] {
				atoms = append(atoms, effectAtom{pos: s.Pos(), eff: EffGlobalWrite,
					detail: "writes package-level var " + qual})
			} else {
				atoms = append(atoms, effectAtom{pos: s.Pos(), eff: EffGlobalRead,
					detail: "reads package-level var " + qual})
			}
		case *ast.RangeStmt:
			tv, ok := info.Types[s.X]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				if !isCollectOnlyBody(s.Body) {
					atoms = append(atoms, effectAtom{pos: s.Pos(), eff: EffMapOrder,
						detail: "ranges over a map with an order-sensitive body"})
				}
			case *types.Chan:
				atoms = append(atoms, effectAtom{pos: s.Pos(), eff: EffSpawn,
					detail: "receives from a channel via range"})
			}
		case *ast.GoStmt:
			atoms = append(atoms, effectAtom{pos: s.Pos(), eff: EffSpawn,
				detail: "spawns a goroutine"})
		case *ast.SendStmt:
			atoms = append(atoms, effectAtom{pos: s.Pos(), eff: EffSpawn,
				detail: "sends on a channel"})
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				atoms = append(atoms, effectAtom{pos: s.Pos(), eff: EffSpawn,
					detail: "receives from a channel"})
			}
		case *ast.SelectStmt:
			atoms = append(atoms, effectAtom{pos: s.Pos(), eff: EffSpawn,
				detail: "selects over channels"})
		}
		return true
	})
	return atoms
}

// baseIdent unwraps selectors, indexing, derefs, and slices down to the
// root identifier of an lvalue; a package-qualified name (pkg.Var)
// resolves to the selected identifier, not the package name.
func baseIdent(info *types.Info, e ast.Expr) *ast.Ident {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			if x, ok := ast.Unparen(t.X).(*ast.Ident); ok {
				if _, isPkg := info.Uses[x].(*types.PkgName); isPkg {
					return t.Sel
				}
			}
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.TypeAssertExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// stdlib summaries ------------------------------------------------------

// stdlibIDEffects overrides the per-package defaults for specific
// functions, keyed by FuncID.
var stdlibIDEffects = map[string]Effect{
	"os.(*File).Sync": EffIO | EffFsync,

	"time.Unix":          0,
	"time.UnixMicro":     0,
	"time.UnixMilli":     0,
	"time.Date":          0,
	"time.Parse":         0,
	"time.ParseDuration": 0,
	"time.FixedZone":     0,

	"context.WithTimeout":  EffWallclock | EffSpawn,
	"context.WithDeadline": EffWallclock | EffSpawn,
	"context.AfterFunc":    EffWallclock | EffSpawn,

	"fmt.Sprint":   0,
	"fmt.Sprintf":  0,
	"fmt.Sprintln": 0,
	"fmt.Errorf":   0,
	"fmt.Appendf":  0,
	"fmt.Append":   0,
	"fmt.Appendln": 0,
	"fmt.Sscan":    0,
	"fmt.Sscanf":   0,
	"fmt.Sscanln":  0,

	"path/filepath.Abs":          EffIO,
	"path/filepath.EvalSymlinks": EffIO,
	"path/filepath.Glob":         EffIO,
	"path/filepath.Walk":         EffIO,
	"path/filepath.WalkDir":      EffIO,
}

// stdlibPkgEffects is the per-package default for external functions.
// Packages not listed fall back to effUnknown — the sound default the
// issue contract requires for unmodeled dependencies.
var stdlibPkgEffects = map[string]Effect{
	"builtin": 0,
	"errors":  0,
	"sort":    0, "slices": 0, "cmp": 0,
	"strings": 0, "strconv": 0, "bytes": 0,
	"unicode": 0, "unicode/utf8": 0, "unicode/utf16": 0,
	"math": 0, "math/bits": 0, "math/cmplx": 0, "math/big": 0,
	"container/heap": 0, "container/list": 0, "container/ring": 0,
	"encoding/json": 0, "encoding/binary": 0, "encoding/base64": 0,
	"encoding/hex": 0, "encoding/csv": EffIO,
	"hash": 0, "hash/crc32": 0, "hash/crc64": 0, "hash/fnv": 0, "hash/maphash": 0,
	"crypto/sha256": 0, "crypto/sha512": 0, "crypto/sha1": 0, "crypto/md5": 0,
	"crypto/rand": EffIO | EffUnseededRand,
	"regexp":      0, "regexp/syntax": 0,
	"path": 0, "path/filepath": 0,
	"sync": 0, "sync/atomic": 0,
	"context": 0,
	"runtime": 0,
	"maps":    EffMapOrder,
	"reflect": EffGlobalRead | EffMapOrder,
	"unsafe":  EffUnsafe,
	"time":    EffWallclock,
	"fmt":     EffIO,
	"os":      EffIO, "os/exec": EffIO | EffSpawn, "os/signal": EffIO | EffSpawn,
	"io": EffIO, "io/fs": EffIO, "bufio": EffIO,
	"net": EffIO | EffSpawn, "net/http": EffIO | EffSpawn, "net/url": 0,
	"syscall": EffIO,
	"log":     EffIO | EffGlobalRead,
	"flag":    EffIO | EffGlobalRead | EffGlobalWrite,
	"testing": EffIO,
	"embed":   0,
}

// externalEffects summarizes a bodyless node: exact-ID overrides first,
// then method-receiver rules, then the per-package default, then the
// sound unknown default.
func externalEffects(n *Node) Effect {
	if eff, ok := stdlibIDEffects[n.ID]; ok {
		return eff
	}
	pkg := "builtin"
	var recv bool
	if n.Obj != nil {
		if n.Obj.Pkg() != nil {
			pkg = n.Obj.Pkg().Path()
		}
		if sig, ok := n.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv = true
		}
	} else if i := strings.LastIndexByte(n.ID, '('); i > 0 {
		// An external node reached without a types.Func (rare): parse
		// the ID shape "pkg.(Recv).Name".
		pkg = strings.TrimSuffix(n.ID[:i], ".")
		recv = true
	} else if i := strings.LastIndexByte(n.ID, '.'); i > 0 {
		pkg = n.ID[:i]
	}
	switch pkg {
	case "time", "math/rand":
		// Value methods (time.Time.Add, rand.(*Rand).Intn) are pure
		// modulo receiver; only the package-level entry points touch
		// the clock or the global source.
		if recv {
			return 0
		}
		if pkg == "math/rand" {
			if globalRandFuncs[funcName(n)] {
				return EffUnseededRand
			}
			return 0
		}
	case "fmt", "context", "reflect", "maps":
		// Interface methods (fmt.Stringer.String, context.Context.Err)
		// and value methods are pure.
		if recv {
			return 0
		}
	}
	if eff, ok := stdlibPkgEffects[pkg]; ok {
		return eff
	}
	return effUnknown
}

// funcName extracts the bare function name of a node.
func funcName(n *Node) string {
	if n.Obj != nil {
		return n.Obj.Name()
	}
	id := n.ID
	if i := strings.LastIndexByte(id, '.'); i >= 0 {
		return id[i+1:]
	}
	return id
}

// Annotation layer ------------------------------------------------------

// effectDecl is one parsed //nomloc:effect annotation.
type effectDecl struct {
	pos      token.Pos
	declared Effect
	err      string
}

// parseEffectAnnotations extracts the annotations from a declaration's
// doc comment (zero, one, or — erroneously — several).
func parseEffectAnnotations(doc *ast.CommentGroup) []effectDecl {
	if doc == nil {
		return nil
	}
	var out []effectDecl
	for _, c := range doc.List {
		if !strings.HasPrefix(c.Text, effectAnnotation) {
			continue
		}
		rest := c.Text[len(effectAnnotation):]
		close := strings.IndexByte(rest, ')')
		if close < 0 {
			out = append(out, effectDecl{pos: c.Pos(), err: "missing closing parenthesis"})
			continue
		}
		eff, err := ParseEffects(rest[:close])
		if err != nil {
			out = append(out, effectDecl{pos: c.Pos(), err: err.Error()})
			continue
		}
		out = append(out, effectDecl{pos: c.Pos(), declared: eff})
	}
	return out
}

// Replay-safety gate ----------------------------------------------------

// gateFinding is one gate violation, pre-resolved to the package that
// must report it.
type gateFinding struct {
	pkgPath string
	pos     token.Pos
	msg     string
}

// gateFindings walks the call-and-containment closure of GateRoots and
// returns every forbidden effect atom inside it, plus a finding for
// each root lacking an effect annotation. Computed once per program.
func gateFindings(prog *Program) []gateFinding {
	return prog.cached("effects:gate", func() any {
		return computeGateFindings(prog, GateRoots)
	}).([]gateFinding)
}

func computeGateFindings(prog *Program, roots []string) []gateFinding {
	res := effectsOf(prog)
	rootSet := map[string]bool{}
	for _, r := range roots {
		rootSet[r] = true
	}
	// parent links the BFS tree for path rendering; rootOf names each
	// reachable function's gate root.
	parent := map[*funcEffects]*funcEffects{}
	rootOf := map[*funcEffects]*funcEffects{}
	var queue []*funcEffects
	for _, fe := range res.order {
		id := fe.node.ID
		if rootSet[id] || rootSet[shortFuncID(id)] {
			parent[fe] = nil
			rootOf[fe] = fe
			queue = append(queue, fe)
		}
	}
	var reach []*funcEffects
	for len(queue) > 0 {
		fe := queue[0]
		queue = queue[1:]
		reach = append(reach, fe)
		for _, dep := range fe.deps {
			if _, seen := rootOf[dep]; seen {
				continue
			}
			parent[dep] = fe
			rootOf[dep] = rootOf[fe]
			queue = append(queue, dep)
		}
	}
	sort.Slice(reach, func(i, j int) bool { return reach[i].node.ID < reach[j].node.ID })

	var out []gateFinding
	for _, fe := range reach {
		n := fe.node
		if n.Fn == nil {
			continue
		}
		if parent[fe] == nil && n.Fn.Decl != nil && len(parseEffectAnnotations(n.Fn.Decl.Doc)) == 0 {
			out = append(out, gateFinding{
				pkgPath: n.Fn.Pkg.Path,
				pos:     n.Fn.Decl.Pos(),
				msg: fmt.Sprintf("replay-safety gate root %s must declare its effect set with a //nomloc:effect(%s) annotation",
					shortFuncID(n.ID), fe.all),
			})
		}
		for _, a := range fe.atoms {
			bad := a.eff & GateForbidden
			if bad == 0 {
				continue
			}
			out = append(out, gateFinding{
				pkgPath: n.Fn.Pkg.Path,
				pos:     a.pos,
				msg: fmt.Sprintf("replay-safety gate: %s (%s) in %s, reachable from gate root %s via %s; the solve/replay path must stay free of %s or journal replays diverge",
					a.detail, bad, shortFuncID(n.ID), shortFuncID(rootOf[fe].node.ID), gatePath(parent, fe), GateForbidden),
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].pkgPath != out[j].pkgPath {
			return out[i].pkgPath < out[j].pkgPath
		}
		return out[i].pos < out[j].pos
	})
	return out
}

// gatePath renders the BFS path root → … → fe.
func gatePath(parent map[*funcEffects]*funcEffects, fe *funcEffects) string {
	var ids []string
	for cur := fe; cur != nil; cur = parent[cur] {
		ids = append(ids, shortFuncID(cur.node.ID))
	}
	for i, j := 0, len(ids)-1; i < j; i, j = i+1, j-1 {
		ids[i], ids[j] = ids[j], ids[i]
	}
	return strings.Join(ids, " → ")
}

// Analyzer --------------------------------------------------------------

func runEffects(pass *Pass) error {
	if pass.Prog == nil {
		return nil // whole-program only; nothing to say intraprocedurally
	}
	res := effectsOf(pass.Prog)

	// 1. Verify every annotation declared in this package.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			anns := parseEffectAnnotations(fd.Doc)
			if len(anns) == 0 {
				continue
			}
			for _, a := range anns[1:] {
				pass.Reportf(a.pos, "duplicate //nomloc:effect annotation on %s; declare one effect set", fd.Name.Name)
			}
			ann := anns[0]
			if ann.err != "" {
				pass.Reportf(ann.pos, "malformed //nomloc:effect annotation: %s", ann.err)
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fe := res.byID[FuncIDOf(obj)]
			if fe == nil {
				continue
			}
			if missing := fe.all &^ ann.declared; missing != 0 {
				pass.Reportf(ann.pos, "effect annotation on %s is missing inferred effect(s) %s (%s); declare them or remove the cause",
					fd.Name.Name, missing, fe.witnessFor(missing))
			}
			if stale := ann.declared &^ fe.all; stale != 0 {
				pass.Reportf(ann.pos, "stale effect annotation on %s: declared effect(s) %s are not inferred; drop them",
					fd.Name.Name, stale)
			}
		}
	}

	// 2. Report this package's share of the replay-safety gate.
	for _, gf := range gateFindings(pass.Prog) {
		if gf.pkgPath == pass.Pkg.Path() {
			pass.Reportf(gf.pos, "%s", gf.msg)
		}
	}
	return nil
}

// Dumps -----------------------------------------------------------------

// WriteEffectsJSON dumps the inferred effect sets of every source
// function as a sorted JSON array. Output is byte-stable.
func WriteEffectsJSON(w io.Writer, prog *Program) error {
	res := effectsOf(prog)
	var sb strings.Builder
	sb.WriteString("{\n  \"functions\": [\n")
	first := true
	for _, fe := range res.order {
		if fe.node.Fn == nil {
			continue
		}
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(&sb, "    {\"id\": %q, \"effects\": %q, \"own\": %q}",
			fe.node.ID, fe.all.String(), fe.own.String())
	}
	sb.WriteString("\n  ]\n}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteEffectsDOT dumps the effect graph in Graphviz DOT form: one box
// per source function labelled with its inferred effects, edges from
// the effect dependency lists (calls + lexical containment). Functions
// carrying gate-forbidden effects render with a bold outline. Output is
// byte-stable.
func WriteEffectsDOT(w io.Writer, prog *Program) error {
	res := effectsOf(prog)
	var sb strings.Builder
	sb.WriteString("digraph nomloc_effects {\n")
	sb.WriteString("  rankdir=LR;\n")
	for _, fe := range res.order {
		if fe.node.Fn == nil {
			continue
		}
		style := ""
		if fe.all&GateForbidden != 0 {
			style = ",style=bold"
		}
		fmt.Fprintf(&sb, "  %q [shape=box,label=%q%s];\n",
			fe.node.ID, fe.node.ID+"\n"+fe.all.String(), style)
	}
	for _, fe := range res.order {
		if fe.node.Fn == nil {
			continue
		}
		for _, dep := range fe.deps {
			if dep.node.Fn == nil {
				continue
			}
			fmt.Fprintf(&sb, "  %q -> %q;\n", fe.node.ID, dep.node.ID)
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
