package analysis_test

import (
	"testing"

	"github.com/nomloc/nomloc/internal/analysis"
	"github.com/nomloc/nomloc/internal/analysis/analysistest"
)

func TestUnitCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.UnitCheck,
		"unitcheck/dsp", "unitcheck/other")
}
