package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags exact ==/!= between floating-point operands in
// deterministic packages. Exact float comparison makes control flow
// depend on the last ulp of a computation — the SBL baseline's rank-tie
// detection was the live example. Three comparisons stay legal:
//
//   - against an exact-zero constant: zero is the universal "unset" and
//     "skip the no-op pivot" sentinel, and comparing to it is well-defined;
//   - x != x, the NaN probe;
//   - inside tolerance helpers, recognized by name (approxEqual,
//     AlmostEqual, …, or any function whose name starts with approx/almost
//     or ends in Tol), which is where an intentional exact comparison
//     belongs.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flag exact ==/!= between floating-point operands outside " +
		"tolerance helpers and zero-sentinel checks",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) error {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil || isToleranceHelper(fn.Name.Name) {
				return true
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				// Nested function literals belong to fn for this purpose.
				b, ok := n.(*ast.BinaryExpr)
				if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
					return true
				}
				if !isFloat(pass.Info.TypeOf(b.X)) && !isFloat(pass.Info.TypeOf(b.Y)) {
					return true
				}
				if isExactZero(pass.Info, b.X) || isExactZero(pass.Info, b.Y) {
					return true
				}
				if isNaNProbe(b) {
					return true
				}
				pass.Reportf(b.OpPos, "exact floating-point %s; compare with a tolerance helper (e.g. approxEqual) instead", b.Op)
				return true
			})
			// Do not descend again; the inner walk covered the body.
			return false
		})
	}
	return nil
}

// isToleranceHelper reports whether a function name marks an approved
// comparison helper.
func isToleranceHelper(name string) bool {
	l := strings.ToLower(name)
	return strings.HasPrefix(l, "approx") || strings.HasPrefix(l, "almost") ||
		strings.HasSuffix(l, "tol")
}

// isFloat reports whether t's underlying type is float32 or float64.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isExactZero reports whether the expression is a compile-time constant
// equal to zero.
func isExactZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// isNaNProbe recognizes the x != x NaN test.
func isNaNProbe(b *ast.BinaryExpr) bool {
	if b.Op != token.NEQ {
		return false
	}
	x, okX := ast.Unparen(b.X).(*ast.Ident)
	y, okY := ast.Unparen(b.Y).(*ast.Ident)
	return okX && okY && x.Name == y.Name
}
