package analysis_test

import (
	"go/ast"
	"testing"

	"github.com/nomloc/nomloc/internal/analysis"
)

// assignedProblem is a definite-assignment analysis used to exercise
// the fixpoint solver: a variable is in the fact iff it has been
// assigned on EVERY path (join = intersection), so it stresses exactly
// the identity-element behavior nanguard's guarded marks depend on —
// the Bottom seed must not eat facts at the first real join.
func assignedProblem() analysis.FlowProblem[map[string]bool] {
	clone := func(s map[string]bool) map[string]bool {
		out := make(map[string]bool, len(s))
		for k := range s {
			out[k] = true
		}
		return out
	}
	return analysis.FlowProblem[map[string]bool]{
		Entry:  map[string]bool{},
		Bottom: func() map[string]bool { return nil },
		Clone:  clone,
		Join: func(a, b map[string]bool) map[string]bool {
			if a == nil {
				return clone(b)
			}
			if b == nil {
				return clone(a)
			}
			out := map[string]bool{}
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Transfer: func(s map[string]bool, atom ast.Node) map[string]bool {
			if as, ok := atom.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						s[id.Name] = true
					}
				}
			}
			return s
		},
		Equal: func(a, b map[string]bool) bool {
			if (a == nil) != (b == nil) || len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	}
}

// factAtReturn solves the problem and returns the fact reaching the
// first ReturnStmt atom.
func factAtReturn(t *testing.T, src string) map[string]bool {
	t.Helper()
	cfg := analysis.NewCFG(parseBody(t, src))
	p := assignedProblem()
	in := analysis.Forward(cfg, p)
	for _, b := range cfg.Blocks {
		s := p.Clone(in[b])
		for _, atom := range b.Atoms {
			if isReturn(atom) {
				return s
			}
			s = p.Transfer(s, atom)
		}
	}
	t.Fatal("no return statement found")
	return nil
}

func TestForwardBranchesIntersect(t *testing.T) {
	s := factAtReturn(t, `func f(c bool) int {
		a := 1
		if c {
			b := 2
			_ = b
		} else {
			a = 3
		}
		return a
	}`)
	if !s["a"] {
		t.Error("a is assigned on both paths; must survive the join")
	}
	if s["b"] {
		t.Error("b is assigned on only one path; must not survive the join")
	}
}

// TestForwardJoinWithSeedKeepsFacts is the regression for the Bottom
// identity bug: the first out-fact to arrive at a join block must pass
// through unchanged rather than being intersected against the empty
// seed (which would discard every all-paths fact computed so far).
func TestForwardJoinWithSeedKeepsFacts(t *testing.T) {
	s := factAtReturn(t, `func f(c bool) int {
		a := 1
		if c {
			a = 2
		}
		return a
	}`)
	if !s["a"] {
		t.Error("a assigned before the branch must still be definite after it")
	}
}

func TestForwardLoopConverges(t *testing.T) {
	s := factAtReturn(t, `func f(n int) int {
		x := 0
		for i := 0; i < n; i++ {
			x = i
			y := x
			_ = y
		}
		return x
	}`)
	if !s["x"] {
		t.Error("x assigned before the loop must be definite after it")
	}
	if s["y"] {
		t.Error("y assigned only inside the loop body must not be definite after it")
	}
}

func TestForwardUnreachableStaysBottom(t *testing.T) {
	cfg := analysis.NewCFG(parseBody(t, `func f() int {
		return 1
		g()
	}`))
	p := assignedProblem()
	in := analysis.Forward(cfg, p)
	reachable := cfg.Reachable(cfg.Entry)
	for _, b := range cfg.Blocks {
		if !reachable[b] && in[b] != nil {
			t.Errorf("unreachable block %d must keep the Bottom fact", b.Index)
		}
	}
}

func TestBlockOutAppliesAllAtoms(t *testing.T) {
	cfg := analysis.NewCFG(parseBody(t, `func f() { a := 1; b := 2; _ = a; _ = b }`))
	p := assignedProblem()
	out := analysis.BlockOut(p, p.Entry, cfg.Entry)
	if !out["a"] || !out["b"] {
		t.Errorf("BlockOut fact = %v, want a and b assigned", out)
	}
}
