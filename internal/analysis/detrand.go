package analysis

import (
	"go/ast"
	"go/types"
)

// DetRand forbids the three ambient sources of nondeterminism inside
// deterministic packages: wall-clock reads (time.Now and its telemetry
// alias telemetry.WallClock), the global math/rand source, and iteration
// over maps (whose order Go randomizes). Map iteration is allowed when
// the body only collects keys/values into a slice — the collect-then-sort
// idiom — because collection order cannot leak into the result once the
// slice is sorted. Anything else needs an explicit
// //nomloc:nondeterministic-ok suppression on the offending line.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid time.Now, telemetry.WallClock, the global math/rand " +
		"source, and unsorted map iteration in deterministic packages",
	Run: runDetRand,
}

// telemetryPkg is the import path of the zero-dependency metrics
// subsystem. Its WallClock helper is time.Now in a trench coat, so
// deterministic packages may not call it either: they take an injected
// telemetry.Clock (or count events and read no clock at all).
const telemetryPkg = "github.com/nomloc/nomloc/internal/telemetry"

// globalRandFuncs are the math/rand top-level functions that consume the
// shared global source. Constructors (New, NewSource, NewZipf) are fine:
// they bind randomness to an explicit, seedable stream.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
}

func runDetRand(pass *Pass) error {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				f := calleeFunc(pass.Info, n)
				if isPkgFunc(f, "time", "Now") {
					pass.Reportf(n.Pos(), "time.Now is nondeterministic in a deterministic package; inject a telemetry.Clock (see agent.APConfig.Clock, server.Config.Clock)")
				}
				if f != nil && f.Pkg() != nil && f.Pkg().Path() == "math/rand" && globalRandFuncs[f.Name()] {
					sig, _ := f.Type().(*types.Signature)
					if sig != nil && sig.Recv() == nil {
						pass.Reportf(n.Pos(), "rand.%s draws from the global math/rand source; use an explicit *rand.Rand seeded via parallel.MixSeed or parallel.Stream", f.Name())
					}
				}
			case *ast.Ident:
				// telemetry.WallClock leaks whether it is called or merely
				// passed along as a Clock value, so every use is flagged —
				// not just CallExprs.
				if f, ok := pass.Info.Uses[n].(*types.Func); ok && isPkgFunc(f, telemetryPkg, "WallClock") {
					pass.Reportf(n.Pos(), "telemetry.WallClock reads the wall clock and is nondeterministic in a deterministic package; accept an injected telemetry.Clock instead")
				}
			case *ast.RangeStmt:
				tv, ok := pass.Info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if isCollectOnlyBody(n.Body) {
					return true
				}
				pass.Reportf(n.Pos(), "map iteration order is nondeterministic; collect the keys into a slice and sort them first")
			}
			return true
		})
	}
	return nil
}

// isCollectOnlyBody reports whether a range body is a single
// `s = append(s, ...)` statement — the order-insensitive first half of
// the collect-then-sort idiom.
func isCollectOnlyBody(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) != 1 {
		return false
	}
	assign, ok := body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && fn.Name == "append"
}
