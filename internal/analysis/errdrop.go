package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrDrop reports dropped errors inside the deterministic packages. A
// discarded error in the solve pipeline is the silent twin of a NaN:
// the run keeps going and the output is quietly wrong. Three patterns
// are flagged:
//
//   - a call result containing an error discarded with `_`
//     (`_ = w.Flush()`, `v, _ := parse(s)`),
//   - a bare call statement whose result tuple contains an error,
//   - an error assigned to a variable that is never read again on some
//     path to function exit, or overwritten while still unchecked —
//     proven on the CFG, so `err := f(); if err != nil {…}` is clean
//     no matter how the branches wind.
//
// Only variables declared inside the analyzed function are tracked
// (closure-captured errors belong to their declaring function), and
// named error results are exempt: assigning one is returning it.
// Escape hatch: //nomloc:errdrop-ok, audited for staleness.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "flag error values discarded via _, unassigned calls returning " +
		"errors, and error variables assigned but never checked on some path " +
		"(deterministic packages only)",
	Run: runErrDrop,
}

// errFact maps a pending (assigned, unread) error variable to the
// position of the assignment that made it pending. Join is union with
// the smallest position kept, so "pending on any path" propagates.
type errFact map[*types.Var]token.Pos

func runErrDrop(pass *Pass) error {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	ed := &errDrop{pass: pass}
	for _, file := range pass.Files {
		forEachFuncBody(file, func(fn ast.Node, body *ast.BlockStmt, results *ast.FieldList) {
			ed.checkFunc(body, results)
		})
	}
	return nil
}

type errDrop struct {
	pass *Pass
	// local is the set of error vars declared in the function under
	// analysis; only these are flow-tracked.
	local map[*types.Var]bool
	// reporting is true during the final per-block pass; the transfer
	// function only emits diagnostics then, never during the fixpoint.
	reporting bool
}

func (ed *errDrop) checkFunc(body *ast.BlockStmt, results *ast.FieldList) {
	ed.local = map[*types.Var]bool{}
	named := map[*types.Var]bool{}
	if results != nil {
		for _, f := range results.List {
			for _, name := range f.Names {
				if v, ok := ed.pass.Info.Defs[name].(*types.Var); ok {
					named[v] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // the literal's own pass tracks its declarations
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := ed.pass.Info.Defs[id].(*types.Var); ok && !named[v] && isErrorType(v.Type()) {
			ed.local[v] = true
		}
		return true
	})

	cfg := NewCFG(body)
	p := ed.problem()
	in := Forward(cfg, p)

	// Final pass: re-walk each reachable block with reporting on, so
	// overwrite and discard diagnostics fire against the exact fact
	// reaching each atom.
	ed.reporting = true
	reachable := cfg.Reachable(cfg.Entry)
	for _, b := range cfg.Blocks {
		if !reachable[b] {
			continue
		}
		s := p.Clone(in[b])
		for _, atom := range b.Atoms {
			s = p.Transfer(s, atom)
		}
	}
	ed.reporting = false

	// Exit check: anything still pending on entry to Exit went
	// unchecked on at least one path — unless a deferred call reads it,
	// since defers run after the facts above are computed.
	exit := in[cfg.Exit]
	if len(exit) == 0 {
		return
	}
	deferred := map[*types.Var]bool{}
	for _, d := range cfg.Defers {
		for v := range ed.readsIn(d) {
			deferred[v] = true
		}
	}
	for _, vp := range sortedErrFact(exit) {
		if deferred[vp.v] {
			continue
		}
		ed.pass.Reportf(vp.pos, "error assigned to %s is never checked on some path to return", vp.v.Name())
	}
}

func (ed *errDrop) problem() FlowProblem[errFact] {
	return FlowProblem[errFact]{
		Entry:  errFact{},
		Bottom: func() errFact { return errFact{} },
		Clone: func(s errFact) errFact {
			out := make(errFact, len(s))
			for k, v := range s {
				out[k] = v
			}
			return out
		},
		Join: func(a, b errFact) errFact {
			out := make(errFact, len(a)+len(b))
			for k, v := range a {
				out[k] = v
			}
			for k, v := range b {
				if prev, ok := out[k]; !ok || v < prev {
					out[k] = v
				}
			}
			return out
		},
		Transfer: ed.transfer,
		Equal: func(a, b errFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if w, ok := b[k]; !ok || v != w {
					return false
				}
			}
			return true
		},
	}
}

// transfer applies one atom: reads retire pending errors, assignments
// to tracked vars open new ones, and (in the reporting pass) discards
// and overwrites are diagnosed.
func (ed *errDrop) transfer(s errFact, atom ast.Node) errFact {
	// Reads first: in `err = f(err)` the old value is consumed before
	// the new assignment lands.
	for v := range ed.readsIn(atom) {
		delete(s, v)
	}

	switch n := atom.(type) {
	case *ast.AssignStmt:
		ed.transferAssign(s, n)
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if idx := errorResultIndex(ed.pass.Info, call); idx >= 0 && ed.reporting &&
				!isInfallibleCall(ed.pass.Info, call) {
				ed.pass.Reportf(call.Pos(), "result of %s contains an error that is discarded; assign and check it", callName(ed.pass.Info, call))
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					for _, name := range vs.Names {
						ed.openPending(s, name)
					}
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := n.Value.(*ast.Ident); ok {
			ed.openPending(s, id)
		}
		if id, ok := n.Key.(*ast.Ident); ok {
			ed.openPending(s, id)
		}
	}
	return s
}

func (ed *errDrop) transferAssign(s errFact, n *ast.AssignStmt) {
	fromCall := len(n.Rhs) == 1 && isCallExpr(n.Rhs[0])
	for i, lhs := range n.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		if id.Name == "_" {
			// Blank-discarded call results carrying an error are the
			// classic drop. Discarding a plain variable (`_ = err`) is
			// an explicit, visible choice and stays legal.
			if ed.reporting && fromCall {
				if call := n.Rhs[0].(*ast.CallExpr); blankDiscardsError(ed.pass.Info, call, i, len(n.Lhs)) &&
					!isInfallibleCall(ed.pass.Info, call) {
					ed.pass.Reportf(lhs.Pos(), "error result of %s discarded with _; assign and check it", callName(ed.pass.Info, call))
				}
			}
			continue
		}
		ed.openPending(s, id)
	}
}

// openPending marks a tracked error var as assigned-and-unread,
// reporting an overwrite if it was already pending.
func (ed *errDrop) openPending(s errFact, id *ast.Ident) {
	v := ed.objOf(id)
	if v == nil || !ed.local[v] {
		return
	}
	if prev, pending := s[v]; pending && ed.reporting {
		ed.pass.Reportf(id.Pos(), "error in %s assigned at %s is overwritten before being checked", v.Name(), ed.pass.Fset.Position(prev))
	}
	s[v] = id.Pos()
}

// readsIn collects every tracked error var read inside an atom,
// descending into function literals (a closure reading err counts) but
// skipping pure assignment-target positions of the atom itself.
func (ed *errDrop) readsIn(atom ast.Node) map[*types.Var]bool {
	writes := map[*ast.Ident]bool{}
	switch n := atom.(type) {
	case *ast.AssignStmt:
		if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					writes[id] = true
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := n.Key.(*ast.Ident); ok {
			writes[id] = true
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			writes[id] = true
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						writes[name] = true
					}
				}
			}
		}
	}
	reads := map[*types.Var]bool{}
	ast.Inspect(atom, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || writes[id] {
			return true
		}
		if v := ed.objOf(id); v != nil && ed.local[v] {
			reads[v] = true
		}
		return true
	})
	return reads
}

func (ed *errDrop) objOf(id *ast.Ident) *types.Var {
	if v, ok := ed.pass.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := ed.pass.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// --- helpers ---

func isCallExpr(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isInfallibleCall recognizes methods documented to always return a nil
// error, so discarding their result is idiomatic rather than a drop:
// bytes.Buffer and strings.Builder writers (and hash.Hash's Write,
// which inherits the same contract).
func isInfallibleCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil {
		return false
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case pkg == "bytes" && name == "Buffer":
		return true
	case pkg == "strings" && name == "Builder":
		return true
	case pkg == "hash" && name == "Hash":
		return true
	}
	return false
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// errorResultIndex returns the index of the first error in a call's
// result tuple, or -1. Single-result calls count when that result is
// an error.
func errorResultIndex(info *types.Info, call *ast.CallExpr) int {
	t := info.TypeOf(call)
	if t == nil {
		return -1
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return i
			}
		}
		return -1
	}
	if isErrorType(t) {
		return 0
	}
	return -1
}

// blankDiscardsError reports whether the i-th assignment target (of
// nLhs) discards an error-typed result of call.
func blankDiscardsError(info *types.Info, call *ast.CallExpr, i, nLhs int) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok && nLhs == tuple.Len() {
		return i < tuple.Len() && isErrorType(tuple.At(i).Type())
	}
	return nLhs == 1 && isErrorType(t)
}

func callName(info *types.Info, call *ast.CallExpr) string {
	if f := calleeFunc(info, call); f != nil {
		return f.Name()
	}
	return "call"
}

type errVarPos struct {
	v   *types.Var
	pos token.Pos
}

// sortedErrFact orders pending errors by assignment position so exit
// diagnostics are deterministic.
func sortedErrFact(s errFact) []errVarPos {
	out := make([]errVarPos, 0, len(s))
	for v, pos := range s {
		out = append(out, errVarPos{v, pos})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].pos < out[j-1].pos; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
