package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrDrop reports dropped errors inside the deterministic packages. A
// discarded error in the solve pipeline is the silent twin of a NaN:
// the run keeps going and the output is quietly wrong. Three patterns
// are flagged:
//
//   - a call result containing an error discarded with `_`
//     (`_ = w.Flush()`, `v, _ := parse(s)`),
//   - a bare call statement whose result tuple contains an error,
//   - an error assigned to a variable that is never read again on some
//     path to function exit, or overwritten while still unchecked —
//     proven on the CFG, so `err := f(); if err != nil {…}` is clean
//     no matter how the branches wind.
//
// Only variables declared inside the analyzed function are tracked
// (closure-captured errors belong to their declaring function), and
// named error results are exempt: assigning one is returning it.
//
// Calls proven infallible are exempt from all three patterns. The base
// cases are the documented stdlib contracts (bytes.Buffer,
// strings.Builder, hash.Hash writers); under a Program the exemption
// extends transitively through the fallibility summary (DESIGN.md §11):
// a wrapper whose error result is provably always nil — every return
// hands back a literal nil or another infallible call — inherits the
// exemption, across function and package boundaries.
// Escape hatch: //nomloc:errdrop-ok, audited for staleness.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "flag error values discarded via _, unassigned calls returning " +
		"errors, and error variables assigned but never checked on some path " +
		"(deterministic packages only)",
	Run: runErrDrop,
}

// errFact maps a pending (assigned, unread) error variable to the
// position of the assignment that made it pending. Join is union with
// the smallest position kept, so "pending on any path" propagates.
type errFact map[*types.Var]token.Pos

func runErrDrop(pass *Pass) error {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	ed := &errDrop{pass: pass}
	if pass.Prog != nil {
		ed.sum = SummariesFor(pass.Prog, errSummarizer)
	}
	for _, file := range pass.Files {
		forEachFuncBody(file, func(fn ast.Node, body *ast.BlockStmt, results *ast.FieldList) {
			ed.checkFunc(body, results)
		})
	}
	return nil
}

type errDrop struct {
	pass *Pass
	// sum holds the program-wide fallibility summaries, nil on
	// intraprocedural runs (only the stdlib contract table applies then).
	sum *Summaries[errSummary]
	// local is the set of error vars declared in the function under
	// analysis; only these are flow-tracked.
	local map[*types.Var]bool
	// reporting is true during the final per-block pass; the transfer
	// function only emits diagnostics then, never during the fixpoint.
	reporting bool
}

func (ed *errDrop) checkFunc(body *ast.BlockStmt, results *ast.FieldList) {
	ed.local = map[*types.Var]bool{}
	named := map[*types.Var]bool{}
	if results != nil {
		for _, f := range results.List {
			for _, name := range f.Names {
				if v, ok := ed.pass.Info.Defs[name].(*types.Var); ok {
					named[v] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // the literal's own pass tracks its declarations
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := ed.pass.Info.Defs[id].(*types.Var); ok && !named[v] && isErrorType(v.Type()) {
			ed.local[v] = true
		}
		return true
	})

	cfg := NewCFG(body)
	p := ed.problem()
	in := Forward(cfg, p)

	// Final pass: re-walk each reachable block with reporting on, so
	// overwrite and discard diagnostics fire against the exact fact
	// reaching each atom.
	ed.reporting = true
	reachable := cfg.Reachable(cfg.Entry)
	for _, b := range cfg.Blocks {
		if !reachable[b] {
			continue
		}
		s := p.Clone(in[b])
		for _, atom := range b.Atoms {
			s = p.Transfer(s, atom)
		}
	}
	ed.reporting = false

	// Exit check: anything still pending on entry to Exit went
	// unchecked on at least one path — unless a deferred call reads it,
	// since defers run after the facts above are computed.
	exit := in[cfg.Exit]
	if len(exit) == 0 {
		return
	}
	deferred := map[*types.Var]bool{}
	for _, d := range cfg.Defers {
		for v := range ed.readsIn(d) {
			deferred[v] = true
		}
	}
	for _, vp := range sortedErrFact(exit) {
		if deferred[vp.v] {
			continue
		}
		ed.pass.Reportf(vp.pos, "error assigned to %s is never checked on some path to return", vp.v.Name())
	}
}

func (ed *errDrop) problem() FlowProblem[errFact] {
	return FlowProblem[errFact]{
		Entry:  errFact{},
		Bottom: func() errFact { return errFact{} },
		Clone: func(s errFact) errFact {
			out := make(errFact, len(s))
			for k, v := range s {
				out[k] = v
			}
			return out
		},
		Join: func(a, b errFact) errFact {
			out := make(errFact, len(a)+len(b))
			for k, v := range a {
				out[k] = v
			}
			for k, v := range b {
				if prev, ok := out[k]; !ok || v < prev {
					out[k] = v
				}
			}
			return out
		},
		Transfer: ed.transfer,
		Equal: func(a, b errFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if w, ok := b[k]; !ok || v != w {
					return false
				}
			}
			return true
		},
	}
}

// transfer applies one atom: reads retire pending errors, assignments
// to tracked vars open new ones, and (in the reporting pass) discards
// and overwrites are diagnosed.
func (ed *errDrop) transfer(s errFact, atom ast.Node) errFact {
	// Reads first: in `err = f(err)` the old value is consumed before
	// the new assignment lands.
	for v := range ed.readsIn(atom) {
		delete(s, v)
	}

	switch n := atom.(type) {
	case *ast.AssignStmt:
		ed.transferAssign(s, n)
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if idx := errorResultIndex(ed.pass.Info, call); idx >= 0 && ed.reporting &&
				!ed.infallible(call) {
				ed.pass.Reportf(call.Pos(), "result of %s contains an error that is discarded; assign and check it", callName(ed.pass.Info, call))
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					for _, name := range vs.Names {
						ed.openPending(s, name)
					}
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := n.Value.(*ast.Ident); ok {
			ed.openPending(s, id)
		}
		if id, ok := n.Key.(*ast.Ident); ok {
			ed.openPending(s, id)
		}
	}
	return s
}

func (ed *errDrop) transferAssign(s errFact, n *ast.AssignStmt) {
	fromCall := len(n.Rhs) == 1 && isCallExpr(n.Rhs[0])
	for i, lhs := range n.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		if id.Name == "_" {
			// Blank-discarded call results carrying an error are the
			// classic drop. Discarding a plain variable (`_ = err`) is
			// an explicit, visible choice and stays legal.
			if ed.reporting && fromCall {
				if call := n.Rhs[0].(*ast.CallExpr); blankDiscardsError(ed.pass.Info, call, i, len(n.Lhs)) &&
					!ed.infallible(call) {
					ed.pass.Reportf(lhs.Pos(), "error result of %s discarded with _; assign and check it", callName(ed.pass.Info, call))
				}
			}
			continue
		}
		ed.openPending(s, id)
	}
}

// openPending marks a tracked error var as assigned-and-unread,
// reporting an overwrite if it was already pending.
func (ed *errDrop) openPending(s errFact, id *ast.Ident) {
	v := ed.objOf(id)
	if v == nil || !ed.local[v] {
		return
	}
	if prev, pending := s[v]; pending && ed.reporting {
		ed.pass.Reportf(id.Pos(), "error in %s assigned at %s is overwritten before being checked", v.Name(), ed.pass.Fset.Position(prev))
	}
	s[v] = id.Pos()
}

// readsIn collects every tracked error var read inside an atom,
// descending into function literals (a closure reading err counts) but
// skipping pure assignment-target positions of the atom itself.
func (ed *errDrop) readsIn(atom ast.Node) map[*types.Var]bool {
	writes := map[*ast.Ident]bool{}
	switch n := atom.(type) {
	case *ast.AssignStmt:
		if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					writes[id] = true
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := n.Key.(*ast.Ident); ok {
			writes[id] = true
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			writes[id] = true
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						writes[name] = true
					}
				}
			}
		}
	}
	reads := map[*types.Var]bool{}
	ast.Inspect(atom, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || writes[id] {
			return true
		}
		if v := ed.objOf(id); v != nil && ed.local[v] {
			reads[v] = true
		}
		return true
	})
	return reads
}

func (ed *errDrop) objOf(id *ast.Ident) *types.Var {
	if v, ok := ed.pass.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := ed.pass.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// --- helpers ---

func isCallExpr(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isInfallibleCall recognizes methods documented to always return a nil
// error, so discarding their result is idiomatic rather than a drop:
// bytes.Buffer and strings.Builder writers (and hash.Hash's Write,
// which inherits the same contract).
func isInfallibleCall(info *types.Info, call *ast.CallExpr) bool {
	return infallibleByContract(calleeFunc(info, call))
}

// infallibleByContract is the stdlib base case of the fallibility
// summary: methods whose documentation promises a nil error.
func infallibleByContract(f *types.Func) bool {
	if f == nil {
		return false
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case pkg == "bytes" && name == "Buffer":
		return true
	case pkg == "strings" && name == "Builder":
		return true
	case pkg == "hash" && name == "Hash":
		return true
	}
	return false
}

// infallible reports whether a call provably returns a nil error: by
// stdlib contract, or (interprocedurally) by the callee's fallibility
// summary.
func (ed *errDrop) infallible(call *ast.CallExpr) bool {
	if isInfallibleCall(ed.pass.Info, call) {
		return true
	}
	if ed.sum == nil {
		return false
	}
	sum, ok := ed.sum.OfCall(ed.pass.Info, call)
	return ok && sum.infallible
}

// ---- interprocedural fallibility summaries ----

// errSummary says whether a function's error results are provably
// always nil. Bottom (fallible) is the sound default for unknown
// functions, recursion that never settles, and bodies the analysis
// cannot prove.
type errSummary struct {
	infallible bool
}

var errSummarizer = Summarizer[errSummary]{
	Name:    "errdrop",
	Bottom:  func() errSummary { return errSummary{} },
	Equal:   func(a, b errSummary) bool { return a == b },
	Compute: computeErrSummary,
}

// computeErrSummary proves a function infallible when every return
// statement hands back a literal nil (or another infallible call) in
// each error-typed result position. Bare returns through named error
// results stay fallible — proving those nil would need flow analysis.
// Externals fall back to the stdlib contract table. Monotone: a callee
// flipping fallible→infallible can only flip callers the same way.
func computeErrSummary(sm *Summaries[errSummary], n *Node) errSummary {
	fi := n.Fn
	if fi == nil {
		return errSummary{infallible: infallibleByContract(n.Obj)}
	}
	if fi.Body == nil || fi.Sig == nil {
		return errSummary{}
	}
	results := fi.Sig.Results()
	hasErr := false
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			hasErr = true
		}
	}
	if !hasErr {
		return errSummary{}
	}
	info := fi.Pkg.Info
	infallible := true
	sawReturn := false
	ast.Inspect(fi.Body, func(x ast.Node) bool {
		if !infallible {
			return false
		}
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false // a literal's returns are its own
		}
		ret, ok := x.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		sawReturn = true
		infallible = returnsNilError(sm, info, results, ret)
		return true
	})
	return errSummary{infallible: infallible && sawReturn}
}

// returnsNilError reports whether one return statement provably yields
// nil in every error-typed result position.
func returnsNilError(sm *Summaries[errSummary], info *types.Info, results *types.Tuple, ret *ast.ReturnStmt) bool {
	if len(ret.Results) == results.Len() {
		for i, res := range ret.Results {
			if !isErrorType(results.At(i).Type()) {
				continue
			}
			if !nilOrInfallibleExpr(sm, info, res) {
				return false
			}
		}
		return true
	}
	if len(ret.Results) == 1 && results.Len() > 1 {
		// return f(): the whole tuple is forwarded from the callee.
		return nilOrInfallibleExpr(sm, info, ret.Results[0])
	}
	// Bare return through named results: conservatively fallible.
	return false
}

// nilOrInfallibleExpr reports whether an expression in error-result
// position is a literal nil or a call with a nil-error guarantee.
func nilOrInfallibleExpr(sm *Summaries[errSummary], info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.IsNil() {
		return true
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if isInfallibleCall(info, call) {
			return true
		}
		sum, ok := sm.OfCall(info, call)
		return ok && sum.infallible
	}
	return false
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// errorResultIndex returns the index of the first error in a call's
// result tuple, or -1. Single-result calls count when that result is
// an error.
func errorResultIndex(info *types.Info, call *ast.CallExpr) int {
	t := info.TypeOf(call)
	if t == nil {
		return -1
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return i
			}
		}
		return -1
	}
	if isErrorType(t) {
		return 0
	}
	return -1
}

// blankDiscardsError reports whether the i-th assignment target (of
// nLhs) discards an error-typed result of call.
func blankDiscardsError(info *types.Info, call *ast.CallExpr, i, nLhs int) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok && nLhs == tuple.Len() {
		return i < tuple.Len() && isErrorType(tuple.At(i).Type())
	}
	return nLhs == 1 && isErrorType(t)
}

func callName(info *types.Info, call *ast.CallExpr) string {
	if f := calleeFunc(info, call); f != nil {
		return f.Name()
	}
	return "call"
}

type errVarPos struct {
	v   *types.Var
	pos token.Pos
}

// sortedErrFact orders pending errors by assignment position so exit
// diagnostics are deterministic.
func sortedErrFact(s errFact) []errVarPos {
	out := make([]errVarPos, 0, len(s))
	for v, pos := range s {
		out = append(out, errVarPos{v, pos})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].pos < out[j-1].pos; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
