package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// This file is the interprocedural half of the analysis framework
// (DESIGN.md §11): a whole-program call graph over every package a
// Program loads. The graph is deliberately simple — a class-hierarchy
// (CHA-style) resolver, not points-to analysis — because its job is to
// carry function summaries across call sites deterministically, and a
// sound over-approximation with stable ordering beats a precise one
// with unstable output.
//
// Three call kinds are distinguished:
//
//   - EdgeStatic:    direct calls to a named function or method, resolved
//     through the type checker. Cross-package targets resolve even though
//     each package is type-checked separately, because nodes are keyed by
//     a stable string FuncID rather than object identity.
//   - EdgeInterface: calls through an interface method. The resolver adds
//     one edge per concrete type in the program whose method set
//     structurally satisfies the interface (name + signature string),
//     plus an edge to the interface method itself as an external node.
//   - EdgeDynamic:   calls through a function-typed value. The resolver
//     links the site to every tracked function literal in the program
//     with an identical signature string. The dumps show dynamic and
//     interface edges and the SCC engine traverses them; the summary
//     consumers resolve call sites statically (OfCall), staying
//     optimistic where the target is a value, not a name.
//
// Node order, edge order, and both dump formats are byte-stable across
// runs: everything is sorted by FuncID and position, never by map
// iteration.

// EdgeKind classifies how a call site reaches its callee.
type EdgeKind int

const (
	// EdgeStatic is a direct call to a known function or method.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is a CHA-resolved call through an interface method.
	EdgeInterface
	// EdgeDynamic is a type-based edge from a call through a
	// function-typed value to a matching function literal.
	EdgeDynamic
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeInterface:
		return "interface"
	case EdgeDynamic:
		return "dynamic"
	}
	return "unknown"
}

// FuncInfo is the source-level view of one function the program defines:
// a declaration or a function literal, bound to the package that owns it
// (positions and type facts must be resolved through that package).
type FuncInfo struct {
	// ID is the function's stable identifier (see FuncIDOf).
	ID string
	// Pkg owns the function's AST and type information.
	Pkg *Package
	// Decl is the declaration, nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal, nil for declarations.
	Lit *ast.FuncLit
	// Obj is the type-checker's object, nil for literals.
	Obj *types.Func
	// Sig is the function's signature.
	Sig *types.Signature
	// Body is the function body (may be nil for bodyless declarations).
	Body *ast.BlockStmt
}

// Pos returns the function's declaration position.
func (fi *FuncInfo) Pos() token.Pos {
	if fi.Decl != nil {
		return fi.Decl.Pos()
	}
	return fi.Lit.Pos()
}

// Node is one function in the call graph. Fn is nil for external
// functions (stdlib, export-data-only dependencies): they have callers
// but no analyzable body.
type Node struct {
	// ID is the stable function identifier.
	ID string
	// Fn holds the source view, nil for external functions.
	Fn *FuncInfo
	// Obj is the first *types.Func the builder resolved for this node
	// (present for externals reached from a call site; nil for literals).
	Obj *types.Func
	// Out are the node's call sites in (position, callee ID) order.
	Out []*Edge
	// In are the edges into this node, sorted like Out.
	In []*Edge
}

// Edge is one resolved call site.
type Edge struct {
	// Caller and Callee are the linked nodes.
	Caller, Callee *Node
	// Kind says how the call was resolved.
	Kind EdgeKind
	// Site is the call expression, nil for dynamic edges synthesized
	// program-wide (their Pos still anchors the site).
	Site *ast.CallExpr
	// Pos anchors the call site in the caller's package fileset.
	Pos token.Pos
}

// CallGraph is the whole-program call graph.
type CallGraph struct {
	// Nodes lists every node sorted by ID.
	Nodes []*Node

	byID map[string]*Node
}

// NodeByID returns the node with the given FuncID, or nil.
func (g *CallGraph) NodeByID(id string) *Node { return g.byID[id] }

// FuncIDOf renders the stable identifier of a named function or method:
// "path/to/pkg.Name" for package functions, "path/to/pkg.(Recv).Name"
// and "path/to/pkg.(*Recv).Name" for methods. The ID is identical
// whether f came from source or from export data, which is what lets
// summaries computed in one package resolve at call sites in another.
func FuncIDOf(f *types.Func) string {
	if f == nil {
		return ""
	}
	pkg := "builtin"
	if f.Pkg() != nil {
		pkg = f.Pkg().Path()
	}
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return pkg + "." + recvString(sig.Recv().Type()) + "." + f.Name()
	}
	return pkg + "." + f.Name()
}

// recvString renders a receiver type as "(T)" or "(*T)".
func recvString(t types.Type) string {
	ptr := ""
	if p, ok := t.(*types.Pointer); ok {
		ptr = "*"
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return "(" + ptr + t.Obj().Name() + ")"
	case *types.Interface:
		return "(" + ptr + "interface)"
	}
	return "(" + ptr + t.String() + ")"
}

// fullQualifier prints package paths in type strings, so signature
// comparisons are exact across separately type-checked packages.
func fullQualifier(p *types.Package) string {
	if p == nil {
		return ""
	}
	return p.Path()
}

// sigString renders a function type for structural comparison, receiver
// excluded (types.TypeString never prints receivers).
func sigString(sig *types.Signature) string {
	return types.TypeString(sig, fullQualifier)
}

// graphBuilder accumulates nodes and edges before the final sort.
type graphBuilder struct {
	graph *CallGraph
	// concrete lists every named type with methods across the program's
	// source packages, for CHA interface resolution.
	concrete []concreteType
	// literals lists every tracked function literal by signature string,
	// for dynamic-call resolution.
	literals map[string][]*Node
}

type concreteType struct {
	name *types.TypeName
	pkg  *Package
	// methods maps method name → (signature string, declared func).
	methods map[string]concreteMethod
}

type concreteMethod struct {
	sig string
	fn  *types.Func
}

// BuildCallGraph constructs the deterministic whole-program call graph
// of the packages (normally a Program's packages, sorted by import
// path).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	b := &graphBuilder{
		graph:    &CallGraph{byID: map[string]*Node{}},
		literals: map[string][]*Node{},
	}

	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	// Pass 1: create a node per declared function and per function
	// literal, in deterministic (package, file, position) order.
	var infos []*FuncInfo
	for _, pkg := range sorted {
		infos = append(infos, collectFuncs(pkg)...)
	}
	for _, fi := range infos {
		n := b.node(fi.ID)
		n.Fn = fi
		n.Obj = fi.Obj
		if fi.Lit != nil {
			key := sigString(fi.Sig)
			b.literals[key] = append(b.literals[key], n)
		}
	}

	// Pass 2: index concrete method sets for CHA.
	for _, pkg := range sorted {
		b.indexConcreteTypes(pkg)
	}

	// Pass 3: resolve every call site of every function body.
	for _, fi := range infos {
		if fi.Body != nil {
			b.resolveCalls(fi)
		}
	}

	b.finish()
	return b.graph
}

// collectFuncs walks one package's files and returns a FuncInfo per
// function declaration and literal, literals numbered in source order
// within their enclosing declaration ("pkg.Fn$1", "pkg.Fn$1$1", …).
func collectFuncs(pkg *Package) []*FuncInfo {
	var out []*FuncInfo
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := &FuncInfo{
				ID:   FuncIDOf(obj),
				Pkg:  pkg,
				Decl: fd,
				Obj:  obj,
				Sig:  obj.Type().(*types.Signature),
				Body: fd.Body,
			}
			out = append(out, fi)
			if fd.Body != nil {
				out = append(out, collectLits(pkg, fi.ID, fd.Body)...)
			}
		}
	}
	return out
}

// collectLits finds the function literals directly enclosed by scope
// (not nested inside a deeper literal) and recurses into each, so IDs
// mirror lexical nesting.
func collectLits(pkg *Package, parentID string, scope ast.Node) []*FuncInfo {
	var out []*FuncInfo
	n := 0
	var direct []*ast.FuncLit
	ast.Inspect(scope, func(x ast.Node) bool {
		if x == scope {
			return true
		}
		if lit, ok := x.(*ast.FuncLit); ok {
			direct = append(direct, lit)
			return false // nested literals belong to this one
		}
		return true
	})
	for _, lit := range direct {
		n++
		sig, _ := pkg.Info.TypeOf(lit).(*types.Signature)
		if sig == nil {
			continue
		}
		fi := &FuncInfo{
			ID:   fmt.Sprintf("%s$%d", parentID, n),
			Pkg:  pkg,
			Lit:  lit,
			Sig:  sig,
			Body: lit.Body,
		}
		out = append(out, fi)
		out = append(out, collectLits(pkg, fi.ID, lit.Body)...)
	}
	return out
}

// indexConcreteTypes records the full method set (promoted methods
// included) of every named non-interface type the package declares.
func (b *graphBuilder) indexConcreteTypes(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tn, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
				if tn == nil {
					continue
				}
				named, ok := tn.Type().(*types.Named)
				if !ok || types.IsInterface(named) {
					continue
				}
				methods := map[string]concreteMethod{}
				mset := types.NewMethodSet(types.NewPointer(named))
				for i := 0; i < mset.Len(); i++ {
					sel := mset.At(i)
					fn, ok := sel.Obj().(*types.Func)
					if !ok {
						continue
					}
					sig, ok := sel.Type().(*types.Signature)
					if !ok {
						continue
					}
					methods[fn.Name()] = concreteMethod{sig: sigString(sig), fn: fn}
				}
				if len(methods) > 0 {
					b.concrete = append(b.concrete, concreteType{name: tn, pkg: pkg, methods: methods})
				}
			}
		}
	}
}

// node returns (creating on demand) the node for an ID.
func (b *graphBuilder) node(id string) *Node {
	if n, ok := b.graph.byID[id]; ok {
		return n
	}
	n := &Node{ID: id}
	b.graph.byID[id] = n
	b.graph.Nodes = append(b.graph.Nodes, n)
	return n
}

// resolveCalls walks one function body (literals excluded — they are
// their own callers) and adds an edge per resolvable call site.
func (b *graphBuilder) resolveCalls(fi *FuncInfo) {
	caller := b.graph.byID[fi.ID]
	info := fi.Pkg.Info
	ast.Inspect(fi.Body, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Conversions and builtins are not calls.
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		f := calleeFunc(info, call)
		if f == nil {
			// Immediately-invoked literal, or a call through a
			// function-typed value: resolve type-based to literals.
			if lit, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); isLit {
				b.edgeToLit(caller, fi, lit, call)
				return true
			}
			if isBuiltinCall(info, call) {
				return true
			}
			b.dynamicEdges(caller, info, call)
			return true
		}
		sig, _ := f.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			b.interfaceEdges(caller, f, sig, call)
			return true
		}
		b.addEdge(caller, b.nodeFor(f), EdgeStatic, call, call.Pos())
		return true
	})
}

// edgeToLit links an immediately-invoked literal to its own node, found
// by position within the caller's package.
func (b *graphBuilder) edgeToLit(caller *Node, fi *FuncInfo, lit *ast.FuncLit, call *ast.CallExpr) {
	for _, n := range b.graph.Nodes {
		if n.Fn != nil && n.Fn.Lit == lit && n.Fn.Pkg == fi.Pkg {
			b.addEdge(caller, n, EdgeStatic, call, call.Pos())
			return
		}
	}
}

// nodeFor returns the node for a resolved function, recording the
// types.Func on externals so summarizers can read its signature.
func (b *graphBuilder) nodeFor(f *types.Func) *Node {
	n := b.node(FuncIDOf(f))
	if n.Obj == nil {
		n.Obj = f
	}
	return n
}

// interfaceEdges links an interface-method call to the interface method
// node plus every concrete type whose method set satisfies the
// interface structurally.
func (b *graphBuilder) interfaceEdges(caller *Node, f *types.Func, sig *types.Signature, call *ast.CallExpr) {
	b.addEdge(caller, b.nodeFor(f), EdgeInterface, call, call.Pos())

	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		return
	}
	want := make(map[string]string, iface.NumMethods())
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		want[m.Name()] = sigString(m.Type().(*types.Signature))
	}
	for _, ct := range b.concrete {
		if !satisfiesStructurally(ct, want) {
			continue
		}
		m, ok := ct.methods[f.Name()]
		if !ok {
			continue
		}
		b.addEdge(caller, b.nodeFor(m.fn), EdgeInterface, call, call.Pos())
	}
}

// satisfiesStructurally reports whether a concrete type's method set
// covers every interface method by name and exact signature string.
func satisfiesStructurally(ct concreteType, want map[string]string) bool {
	for name, sig := range want {
		m, ok := ct.methods[name]
		if !ok || m.sig != sig {
			return false
		}
	}
	return true
}

// dynamicEdges links a call through a function-typed value to every
// tracked literal with the same signature string.
func (b *graphBuilder) dynamicEdges(caller *Node, info *types.Info, call *ast.CallExpr) {
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	for _, target := range b.literals[sigString(sig)] {
		b.addEdge(caller, target, EdgeDynamic, call, call.Pos())
	}
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// addEdge records one call edge, deduplicating identical
// (caller, callee, kind, pos) tuples.
func (b *graphBuilder) addEdge(caller, callee *Node, kind EdgeKind, site *ast.CallExpr, pos token.Pos) {
	if caller == nil || callee == nil {
		return
	}
	for _, e := range caller.Out {
		if e.Callee == callee && e.Kind == kind && e.Pos == pos {
			return
		}
	}
	e := &Edge{Caller: caller, Callee: callee, Kind: kind, Site: site, Pos: pos}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// finish sorts nodes and edges into the one canonical order every dump
// and traversal shares.
func (b *graphBuilder) finish() {
	g := b.graph
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i].ID < g.Nodes[j].ID })
	for _, n := range g.Nodes {
		sort.Slice(n.Out, func(i, j int) bool {
			a, c := n.Out[i], n.Out[j]
			if a.Pos != c.Pos {
				return a.Pos < c.Pos
			}
			if a.Callee.ID != c.Callee.ID {
				return a.Callee.ID < c.Callee.ID
			}
			return a.Kind < c.Kind
		})
		sort.Slice(n.In, func(i, j int) bool {
			a, c := n.In[i], n.In[j]
			if a.Caller.ID != c.Caller.ID {
				return a.Caller.ID < c.Caller.ID
			}
			if a.Pos != c.Pos {
				return a.Pos < c.Pos
			}
			return a.Kind < c.Kind
		})
	}
}

// position renders a node's declaration site as "file:line" relative to
// nothing (absolute paths trimmed to base) — a human label for dumps.
func (n *Node) position() string {
	if n.Fn == nil {
		return ""
	}
	p := n.Fn.Pkg.Fset.Position(n.Fn.Pos())
	parts := strings.Split(strings.ReplaceAll(p.Filename, "\\", "/"), "/")
	return fmt.Sprintf("%s:%d", parts[len(parts)-1], p.Line)
}

// WriteDOT dumps the graph in Graphviz DOT form. Internal (source)
// nodes are boxes, externals ellipses; dynamic edges are dashed,
// interface edges dotted. Output is byte-stable.
func (g *CallGraph) WriteDOT(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("digraph nomloc {\n")
	sb.WriteString("  rankdir=LR;\n")
	for _, n := range g.Nodes {
		if n.Fn == nil {
			if len(n.In) == 0 && len(n.Out) == 0 {
				continue
			}
			fmt.Fprintf(&sb, "  %q [shape=ellipse];\n", n.ID)
			continue
		}
		fmt.Fprintf(&sb, "  %q [shape=box,label=%q];\n", n.ID, n.ID+"\n"+n.position())
	}
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			attr := ""
			switch e.Kind {
			case EdgeDynamic:
				attr = " [style=dashed]"
			case EdgeInterface:
				attr = " [style=dotted]"
			}
			fmt.Fprintf(&sb, "  %q -> %q%s;\n", e.Caller.ID, e.Callee.ID, attr)
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteJSON dumps the graph as a JSON object with sorted node and edge
// arrays. Output is byte-stable.
func (g *CallGraph) WriteJSON(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("{\n  \"nodes\": [\n")
	first := true
	for _, n := range g.Nodes {
		if n.Fn == nil && len(n.In) == 0 && len(n.Out) == 0 {
			continue
		}
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		kind := "external"
		pos := ""
		if n.Fn != nil {
			kind = "func"
			if n.Fn.Lit != nil {
				kind = "literal"
			}
			pos = n.position()
		}
		fmt.Fprintf(&sb, "    {\"id\": %q, \"kind\": %q, \"pos\": %q}", n.ID, kind, pos)
	}
	sb.WriteString("\n  ],\n  \"edges\": [\n")
	first = true
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if !first {
				sb.WriteString(",\n")
			}
			first = false
			fmt.Fprintf(&sb, "    {\"caller\": %q, \"callee\": %q, \"kind\": %q}",
				e.Caller.ID, e.Callee.ID, e.Kind)
		}
	}
	sb.WriteString("\n  ]\n}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
