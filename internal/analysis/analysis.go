// Package analysis is nomloc-vet's static-analysis toolkit: a
// self-contained go/analysis-style framework (the container this repo
// builds in has no network access, so golang.org/x/tools is off the
// table) plus the analyzers that enforce NomLoc's determinism and
// concurrency contract. The evaluation pipeline's bit-reproducibility —
// the property that makes the paper-figure reproductions checkable — is
// enforced here at the syntax/type level instead of living as tribal
// knowledge:
//
//   - detrand:  no time.Now, no global math/rand, no raw map iteration in
//     deterministic packages (escape hatch: //nomloc:nondeterministic-ok)
//   - seedmix:  per-stream seed derivations go through parallel.MixSeed
//   - floateq:  no exact ==/!= between floats away from zero sentinels
//   - locksafe: *Locked methods are called with a lock held, and
//     mutex-bearing values are never copied
//
// On top of those AST-pattern checks sit three flow-sensitive analyzers
// built on the cfg.go/dataflow.go engine (DESIGN.md §9), upgraded to
// interprocedural precision by the callgraph.go/summary.go layer
// (DESIGN.md §11) — facts flow through returns, parameters, and
// wrappers across function and package boundaries:
//
//   - nanguard:  possibly-NaN floats must not reach lp constraint
//     construction, confidence computation, or a returned coordinate
//     without a guard; a helper that divides unguarded taints its
//     callers (escape hatch: //nomloc:nanguard-ok)
//   - errdrop:   no discarded or never-checked errors in deterministic
//     packages; functions proven to always return a nil error are
//     exempt, transitively through wrappers (escape hatch:
//     //nomloc:errdrop-ok)
//   - leakcheck: go statements in server/parallel/agent must have a
//     provable exit discipline, with spawned named functions judged by
//     their own bodies (escape hatch: //nomloc:leakcheck-ok)
//
// Two analyzers are summary-based from the ground up:
//
//   - lockorder: the cross-function mutex acquisition-order graph of
//     server/parallel/agent/telemetry must be acyclic; cycles are
//     reported as potential deadlocks with both acquisition paths
//     (escape hatch: //nomloc:lockorder-ok)
//   - unitcheck: lightweight dimensional analysis (dBm, dB, mW, m, rad)
//     seeded from parameter/field names and //nomloc:unit annotations;
//     mixed-unit arithmetic and unit-mismatched call arguments are
//     flagged in csi, channel, dsp, baseline, and core (escape hatch:
//     //nomloc:unitcheck-ok)
//   - effects:   interprocedural effect inference over the lattice
//     {wallclock, globalread, globalwrite, io, fsync, maporder,
//     unseededrand, spawn, unsafe}; //nomloc:effect(...) annotations are
//     verified against the inferred sets, and the replay-safety gate
//     requires everything reachable from the solve/replay roots to stay
//     free of GateForbidden effects (escape hatch: //nomloc:effects-ok)
//
// The cmd/nomloc-vet multichecker composes them over `go list` package
// patterns; the analysistest subpackage runs them over fixture packages
// with // want expectations, mirroring x/tools' analysistest.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
)

// Analyzer is one static check: a name for diagnostics and suppression
// scoping, documentation, and the per-package Run function.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -analyzers filters.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run inspects one type-checked package, reporting findings through
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file/line.
	Fset *token.FileSet
	// Files are the package's parsed sources, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's fact tables for Files.
	Info *types.Info
	// Prog is the whole-program view (call graph, summaries) when the
	// pass runs under Program.RunPkg; nil under the legacy Package.Run
	// path, in which case analyzers fall back to intraprocedural
	// behavior.
	Prog *Program

	diags []Diagnostic
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	// Pos anchors the finding.
	Pos token.Pos
	// Analyzer names the originating check.
	Analyzer string
	// Message states the violation and the fix.
	Message string
}

// Reportf records a finding against the pass's package.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings recorded so far.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// All returns the nomloc-vet analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{DetRand, SeedMix, FloatEq, LockSafe, NanGuard, ErrDrop, LeakCheck, LockOrder, UnitCheck, Effects}
}

// deterministicPackages are the import-path base names whose outputs feed
// published figures and therefore must be bit-reproducible. The agent
// package joins them because its simulated capture path feeds the same
// pipeline (its timers and network I/O are untouched — only time.Now,
// global math/rand, and map iteration are constrained).
var deterministicPackages = map[string]bool{
	"core":      true,
	"lp":        true,
	"csi":       true,
	"channel":   true,
	"eval":      true,
	"baseline":  true,
	"placement": true,
	"mobility":  true,
	"track":     true,
	"agent":     true,
	// chaos joins the contract because its whole value is replayability:
	// a fault schedule that consulted the wall clock or the global rand
	// source would not reproduce from its seed.
	"chaos": true,
	// journal joins because two fixed-input runs must write byte-equal
	// WALs: a clock read or map-order leak into the record stream would
	// break the recovery conformance suite's byte-equality.
	"journal": true,
}

// isDeterministicPkg reports whether the import path names a package
// under the determinism contract.
func isDeterministicPkg(pkgPath string) bool {
	return deterministicPackages[path.Base(pkgPath)]
}

// calleeFunc resolves a call expression to the function or method object
// it invokes, or nil for builtins, conversions, and dynamic calls through
// function-typed variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	default:
		return nil
	}
	f, _ := obj.(*types.Func)
	return f
}

// isPkgFunc reports whether f is the package-level function pkgPath.name.
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Name() == name
}
