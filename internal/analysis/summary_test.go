package analysis_test

import (
	"testing"

	"github.com/nomloc/nomloc/internal/analysis"
)

const sumSrc = `package sum

func Leaf() int { return 1 }

func Mid() int { return Leaf() }

func Top() int { return Mid() }

func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

func Ping(n int) int {
	if n == 0 {
		return Leaf()
	}
	return Pong(n - 1)
}

func Pong(n int) int { return Ping(n - 1) }
`

// reachesLeaf is a toy monotone summarizer: true when the function can
// reach sum.Leaf through the call graph. It exercises reverse
// topological order (chains resolve bottom-up) and SCC iteration
// (mutual recursion converges instead of looping).
var reachesLeaf = analysis.Summarizer[bool]{
	Name:   "test-reaches-leaf",
	Bottom: func() bool { return false },
	Equal:  func(a, b bool) bool { return a == b },
	Compute: func(sm *analysis.Summaries[bool], n *analysis.Node) bool {
		if n.ID == "sum.Leaf" {
			return true
		}
		for _, e := range n.Out {
			if sm.Of(e.Callee.ID) {
				return true
			}
		}
		return false
	},
}

func TestComputeSummariesBottomUp(t *testing.T) {
	pkg := typecheckPkg(t, testImporter{}, "sum", sumSrc)
	prog := analysis.BuildProgram([]*analysis.Package{pkg})
	sm := analysis.ComputeSummaries(prog, reachesLeaf)

	for id, want := range map[string]bool{
		"sum.Leaf": true,
		"sum.Mid":  true,
		"sum.Top":  true,
		"sum.Even": false,
		"sum.Odd":  false,
	} {
		if got := sm.Of(id); got != want {
			t.Errorf("Of(%s) = %v, want %v", id, got, want)
		}
	}
}

func TestComputeSummariesCycleFixpoint(t *testing.T) {
	pkg := typecheckPkg(t, testImporter{}, "sum", sumSrc)
	prog := analysis.BuildProgram([]*analysis.Package{pkg})
	sm := analysis.ComputeSummaries(prog, reachesLeaf)

	// Ping and Pong are one SCC; the fact entering via Ping's base case
	// must propagate around the cycle to Pong.
	if !sm.Of("sum.Ping") {
		t.Error("Of(sum.Ping) = false, want true")
	}
	if !sm.Of("sum.Pong") {
		t.Error("Of(sum.Pong) = false, want true (fixpoint across the cycle)")
	}
}

func TestSummariesForMemoized(t *testing.T) {
	pkg := typecheckPkg(t, testImporter{}, "sum", sumSrc)
	prog := analysis.BuildProgram([]*analysis.Package{pkg})
	s1 := analysis.SummariesFor(prog, reachesLeaf)
	s2 := analysis.SummariesFor(prog, reachesLeaf)
	if s1 != s2 {
		t.Error("SummariesFor computed twice for one program")
	}
}

func TestSummariesOfUnknownIsBottom(t *testing.T) {
	pkg := typecheckPkg(t, testImporter{}, "sum", sumSrc)
	prog := analysis.BuildProgram([]*analysis.Package{pkg})
	sm := analysis.ComputeSummaries(prog, reachesLeaf)
	if sm.Of("nosuch.Func") {
		t.Error("Of(unknown) should be Bottom (false)")
	}
}
