package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow half of the dataflow engine (DESIGN.md
// §9): a function-scope CFG over go/ast, feeding the forward-fixpoint
// framework in dataflow.go. It deliberately stays at the statement
// granularity the flow-sensitive analyzers (nanguard, errdrop,
// leakcheck) consume — no SSA, no interprocedural edges.

// Block is one basic block: a maximal straight-line run of atoms with a
// single entry and explicit successor edges.
//
// Atoms are either complete statements (assignment, expression, send,
// return, defer, go, …) or bare ast.Expr nodes; by convention a bare
// expression atom is always a branch condition (if/for cond, switch
// tag), which is how transfer functions recognize guard points without
// re-walking the enclosing statement.
type Block struct {
	// Index orders blocks by creation; Entry is 0.
	Index int
	// Atoms are the block's nodes in execution order.
	Atoms []ast.Node
	// Succs are the possible next blocks.
	Succs []*Block

	preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the block control enters at.
	Entry *Block
	// Exit is the single synthetic exit block every return and
	// falling-off-the-end path reaches. It carries no atoms.
	Exit *Block
	// Blocks lists every block, Entry first. Blocks unreachable from
	// Entry (code after an unconditional return, unused labels) are kept
	// so their atoms stay walkable.
	Blocks []*Block
	// Defers collects the function's defer statements in lexical order.
	// Deferred calls run on every exit path (including panics), which is
	// why analyzers treat them separately from the block structure.
	Defers []*ast.DeferStmt
}

// Preds returns the blocks with an edge into b.
func (c *CFG) Preds(b *Block) []*Block { return b.preds }

// Reachable returns the set of blocks reachable from start by following
// successor edges (start included).
func (c *CFG) Reachable(start *Block) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(start)
	return seen
}

// CanReach reports whether to is reachable from from.
func (c *CFG) CanReach(from, to *Block) bool {
	return c.Reachable(from)[to]
}

// loopFrame tracks where break and continue jump for one enclosing
// for/range/switch/select statement. cont is nil for switch and select
// (continue skips them and binds to the enclosing loop).
type loopFrame struct {
	label string
	brk   *Block
	cont  *Block
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block // nil after an unconditional jump: code that follows is unreachable
	frames []loopFrame
	labels map[string]*Block // label name → block the labeled statement starts in
	// pendingLabel carries a label to attach to the next loop/switch
	// frame, so `L: for ...` lets `break L` resolve.
	pendingLabel string
}

// NewCFG builds the control-flow graph of one function body. The body
// may be nil (declaration without body); the result then has an empty
// entry wired straight to exit.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*Block{},
	}
	entry := b.newBlock()
	exit := b.newBlock()
	b.cfg.Entry, b.cfg.Exit = entry, exit
	b.cur = entry
	if body != nil {
		b.stmts(body.List)
	}
	b.jump(exit)
	// Exit must stay edge-free even if a goto targeted past it.
	exit.Succs = nil
	b.wirePreds()
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) wirePreds() {
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.preds = append(s.preds, blk)
		}
	}
}

// edge links from → to (nil-safe on from).
func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// jump ends the current block with an edge to target and marks the
// continuation unreachable.
func (b *cfgBuilder) jump(target *Block) {
	b.edge(b.cur, target)
	b.cur = nil
}

// add appends an atom to the current block, reviving an unreachable
// continuation into a fresh predecessor-less block so its atoms remain
// part of the graph.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Atoms = append(b.cur.Atoms, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// frameFor finds the break/continue target frame: the innermost frame,
// or the one carrying the label. wantCont selects frames that can host
// a continue (loops).
func (b *cfgBuilder) frameFor(label string, wantCont bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if wantCont && f.cont == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

// labelBlock returns (creating on demand) the block a label names, so
// forward gotos can be wired before their target is built.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		target := b.labelBlock(s.Label.Name)
		b.jump(target)
		b.cur = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		b.add(s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if f := b.frameFor(label, false); f != nil {
				b.jump(f.brk)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			if f := b.frameFor(label, true); f != nil {
				b.jump(f.cont)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			b.jump(b.labelBlock(label))
		case token.FALLTHROUGH:
			// Handled by the enclosing switch builder; nothing here.
		}

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond) // bare expression atom: a branch condition
		condEnd := b.cur
		after := b.newBlock()

		thenBlk := b.newBlock()
		b.edge(condEnd, thenBlk)
		b.cur = thenBlk
		b.stmts(s.Body.List)
		b.edge(b.cur, after)

		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condEnd, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(condEnd, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(b.cur, after)
		}
		headEnd := b.cur
		body := b.newBlock()
		b.edge(headEnd, body)
		b.cur = body
		b.pushFrame(after, post)
		b.stmts(s.Body.List)
		b.popFrame()
		b.edge(b.cur, post)
		if s.Post != nil {
			b.cur = post
			b.add(s.Post)
			b.edge(b.cur, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		after := b.newBlock()
		b.jump(head)
		b.cur = head
		b.add(s) // the range header: binds key/value, reads X
		b.edge(b.cur, after)
		headEnd := b.cur
		body := b.newBlock()
		b.edge(headEnd, body)
		b.cur = body
		b.pushFrame(after, head)
		b.stmts(s.Body.List)
		b.popFrame()
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag) // bare expression atom
		}
		b.caseClauses(s.Body, func(cc *ast.CaseClause) []ast.Node {
			atoms := make([]ast.Node, 0, len(cc.List))
			for _, e := range cc.List {
				atoms = append(atoms, e)
			}
			return atoms
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body, func(*ast.CaseClause) []ast.Node { return nil })

	case *ast.SelectStmt:
		b.selectStmt(s)

	default:
		// AssignStmt, ExprStmt, IncDecStmt, SendStmt, GoStmt, DeclStmt,
		// EmptyStmt — straight-line atoms.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.add(s)
	}
}

func (b *cfgBuilder) pushFrame(brk, cont *Block) {
	b.frames = append(b.frames, loopFrame{label: b.pendingLabel, brk: brk, cont: cont})
	b.pendingLabel = ""
}

func (b *cfgBuilder) popFrame() {
	b.frames = b.frames[:len(b.frames)-1]
}

// caseClauses builds the shared case-dispatch shape of switch and type
// switch: every clause is a successor of the dispatch point, a missing
// default adds a fall-out edge, and a trailing fallthrough chains into
// the next clause's body.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, clauseAtoms func(*ast.CaseClause) []ast.Node) {
	dispatch := b.cur
	after := b.newBlock()
	b.pushFrame(after, nil)

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, cc := range clauses {
		b.edge(dispatch, blocks[i])
		b.cur = blocks[i]
		for _, a := range clauseAtoms(cc) {
			b.add(a)
		}
		fallsThrough := false
		for _, cs := range cc.Body {
			if br, ok := cs.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(cs)
		}
		if fallsThrough && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
			b.cur = nil
		} else {
			b.edge(b.cur, after)
		}
	}
	if !hasDefault || len(clauses) == 0 {
		b.edge(dispatch, after)
	}
	b.popFrame()
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	dispatch := b.cur
	after := b.newBlock()
	b.pushFrame(after, nil)
	hasClauses := false
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		hasClauses = true
		blk := b.newBlock()
		b.edge(dispatch, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmts(cc.Body)
		b.edge(b.cur, after)
	}
	b.popFrame()
	if !hasClauses {
		// `select {}` blocks forever: no way out.
		b.cur = nil
		return
	}
	b.cur = after
}
