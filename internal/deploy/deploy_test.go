package deploy

import (
	"errors"
	"strings"
	"testing"

	"github.com/nomloc/nomloc/internal/channel"
	"github.com/nomloc/nomloc/internal/geom"
)

func TestLabScenario(t *testing.T) {
	s, err := Lab()
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "lab" {
		t.Errorf("name = %q", s.Name)
	}
	if len(s.StaticAPs) != 3 {
		t.Errorf("static APs = %d, want 3", len(s.StaticAPs))
	}
	if len(s.Nomadic.Waypoints) != 3 {
		t.Errorf("waypoints = %d, want 3 (P1–P3)", len(s.Nomadic.Waypoints))
	}
	if len(s.TestSites) != 10 {
		t.Errorf("test sites = %d, want 10 (paper evaluates 10 Lab sites)", len(s.TestSites))
	}
	if !s.Area.IsConvex() {
		t.Error("lab should be convex (rectangular)")
	}
}

func TestLobbyScenario(t *testing.T) {
	s, err := Lobby()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.TestSites) != 12 {
		t.Errorf("test sites = %d, want 12 (paper evaluates 12 Lobby sites)", len(s.TestSites))
	}
	if s.Area.IsConvex() {
		t.Error("lobby must be non-convex (L-shape)")
	}
	if s.Area.Area() <= func() float64 { l, _ := Lab(); return l.Area.Area() }() {
		t.Error("lobby should be larger than the lab")
	}
}

func TestScenarioEverythingInsideArea(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, ap := range s.StaticAPs {
			if !s.Area.Contains(ap.Pos) {
				t.Errorf("%s: AP %s outside area", name, ap.ID)
			}
		}
		for _, site := range s.Nomadic.AllSites() {
			if !s.Area.Contains(site) {
				t.Errorf("%s: nomadic site %v outside area", name, site)
			}
		}
		for i, ts := range s.TestSites {
			if !s.Area.Contains(ts) {
				t.Errorf("%s: test site %d outside area", name, i)
			}
		}
	}
}

func TestScenarioSimulatorWorks(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := s.Simulator()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Every AP–test-site link must produce a usable response.
		for _, ap := range s.AllAPsStatic() {
			for _, ts := range s.TestSites {
				h := sim.Response(ts, ap.Pos)
				if h.IsZero() {
					t.Errorf("%s: zero response %s ← %v", name, ap.ID, ts)
				}
			}
		}
	}
}

func TestLabHasMoreCluttterThanLobbyPerArea(t *testing.T) {
	lab, err := Lab()
	if err != nil {
		t.Fatal(err)
	}
	lobby, err := Lobby()
	if err != nil {
		t.Fatal(err)
	}
	labDensity := float64(len(lab.Env.Walls())) / lab.Area.Area()
	lobbyDensity := float64(len(lobby.Env.Walls())) / lobby.Area.Area()
	if labDensity <= lobbyDensity {
		t.Errorf("lab wall density %v not above lobby %v (lab must be the cluttered scene)",
			labDensity, lobbyDensity)
	}
}

func TestAllAPsStatic(t *testing.T) {
	s, err := Lab()
	if err != nil {
		t.Fatal(err)
	}
	all := s.AllAPsStatic()
	if len(all) != 4 {
		t.Fatalf("static benchmark APs = %d, want 4", len(all))
	}
	found := false
	for _, ap := range all {
		if ap.ID == s.Nomadic.ID && ap.Pos == s.Nomadic.Home {
			found = true
		}
	}
	if !found {
		t.Error("nomadic AP not parked at home in the static benchmark")
	}
}

func TestNomadicAllSites(t *testing.T) {
	n := NomadicAP{ID: "x", Home: geom.V(1, 1), Waypoints: []geom.Vec{geom.V(2, 2), geom.V(3, 3)}}
	sites := n.AllSites()
	if len(sites) != 3 || sites[0] != n.Home {
		t.Errorf("AllSites = %v", sites)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("lab"); err != nil {
		t.Errorf("lab: %v", err)
	}
	if _, err := ByName("lobby"); err != nil {
		t.Errorf("lobby: %v", err)
	}
	if _, err := ByName("warehouse"); !errors.Is(err, ErrBadScenario) {
		t.Errorf("unknown err = %v", err)
	}
}

func TestValidateCatchesBadScenarios(t *testing.T) {
	good, err := Lab()
	if err != nil {
		t.Fatal(err)
	}

	s := *good
	s.Env = nil
	if err := s.Validate(); !errors.Is(err, ErrBadScenario) {
		t.Errorf("nil env: %v", err)
	}

	s = *good
	s.TestSites = nil
	if err := s.Validate(); !errors.Is(err, ErrBadScenario) {
		t.Errorf("no sites: %v", err)
	}

	s = *good
	s.TestSites = []geom.Vec{geom.V(-5, -5)}
	if err := s.Validate(); !errors.Is(err, ErrBadScenario) {
		t.Errorf("outside site: %v", err)
	}

	s = *good
	s.StaticAPs = append([]AP(nil), good.StaticAPs...)
	s.StaticAPs[0].ID = good.Nomadic.ID
	if err := s.Validate(); !errors.Is(err, ErrBadScenario) {
		t.Errorf("duplicate id: %v", err)
	}

	s = *good
	s.StaticAPs = []AP{{ID: "only", Pos: geom.V(1, 1)}}
	s.Nomadic = NomadicAP{}
	if err := s.Validate(); !errors.Is(err, ErrBadScenario) {
		t.Errorf("single AP: %v", err)
	}
}

func TestScenarioNLOSExists(t *testing.T) {
	// The Lab must contain at least one AP–site link without LOS —
	// otherwise it would not exercise the NLOS handling at all.
	s, err := Lab()
	if err != nil {
		t.Fatal(err)
	}
	nlos := 0
	for _, ap := range s.AllAPsStatic() {
		for _, ts := range s.TestSites {
			if !s.Env.HasLOS(ts, ap.Pos) {
				nlos++
			}
		}
	}
	if nlos == 0 {
		t.Error("lab has no NLOS links; the scenario is too clean")
	}
}

func TestScenarioIndependentInstances(t *testing.T) {
	a, err := Lab()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Lab()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Env.AddScatterer(channel.Scatterer{Pos: geom.V(1, 1), ExcessLossDB: 5}); err != nil {
		t.Fatal(err)
	}
	if len(a.Env.Scatterers()) == len(b.Env.Scatterers()) {
		t.Error("two Lab() calls share an environment")
	}
}

func TestOfficeScenario(t *testing.T) {
	s, err := Office()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.TestSites) != 14 {
		t.Errorf("test sites = %d, want 14", len(s.TestSites))
	}
	if len(s.Nomadic.Waypoints) != 4 {
		t.Errorf("waypoints = %d, want 4", len(s.Nomadic.Waypoints))
	}
	// Multi-wall NLOS must exist: at least one link through ≥ 2 walls.
	deep := 0
	for _, ap := range s.AllAPsStatic() {
		for _, ts := range s.TestSites {
			if s.Env.WallsCrossed(ts, ap.Pos) >= 2 {
				deep++
			}
		}
	}
	if deep == 0 {
		t.Error("office has no multi-wall NLOS links")
	}
	// The office is discoverable by name but not part of the paper set.
	if _, err := ByName("office"); err != nil {
		t.Errorf("ByName(office): %v", err)
	}
	for _, n := range Names() {
		if n == "office" {
			t.Error("office leaked into the paper scenario list")
		}
	}
	if len(AllNames()) != 3 {
		t.Errorf("AllNames = %v", AllNames())
	}
}

func TestOfficeRunsEndToEnd(t *testing.T) {
	// The scenario must support the full pipeline without pathologies.
	s, err := Office()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := s.Simulator()
	if err != nil {
		t.Fatal(err)
	}
	for _, ap := range s.AllAPsStatic() {
		for _, ts := range s.TestSites {
			if sim.Response(ts, ap.Pos).IsZero() {
				t.Errorf("zero response %s ← %v", ap.ID, ts)
			}
		}
	}
}

func TestScenarioASCII(t *testing.T) {
	for _, name := range AllNames() {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		art := s.ASCII(0.5)
		if art == "" {
			t.Fatalf("%s: empty rendering", name)
		}
		for _, want := range []string{"#", "H", "P", "x", "legend:"} {
			if !strings.Contains(art, want) {
				t.Errorf("%s: rendering missing %q", name, want)
			}
		}
		// Default cell size fallback.
		if s.ASCII(0) == "" {
			t.Errorf("%s: default cell size failed", name)
		}
	}
}
