package deploy

import (
	"fmt"
	"math"
	"strings"

	"github.com/nomloc/nomloc/internal/geom"
)

// ASCII renders the scenario's floor plan as text (y grows upward):
// '#' walls and boundary, digits 1–9 the static APs (in order, with the
// parked nomadic AP last), 'P' nomadic waypoints, 'H' the nomadic home,
// 'x' test sites, '*' scatterers. cellSize is the raster pitch in meters
// (≤ 0 selects 0.5 m).
func (s *Scenario) ASCII(cellSize float64) string {
	if cellSize <= 0 {
		cellSize = 0.5
	}
	min, max := s.Area.BoundingBox()
	cols := int(math.Ceil((max.X-min.X)/cellSize)) + 1
	rows := int(math.Ceil((max.Y-min.Y)/cellSize)) + 1
	if cols <= 0 || rows <= 0 {
		return ""
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	put := func(p geom.Vec, ch byte) {
		c := int(math.Round((p.X - min.X) / cellSize))
		r := int(math.Round((p.Y - min.Y) / cellSize))
		if r < 0 || r >= rows || c < 0 || c >= cols {
			return
		}
		grid[r][c] = ch
	}

	// Interior dots for area cells (so the outline is visible even for
	// non-convex shapes).
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			p := geom.V(min.X+float64(c)*cellSize, min.Y+float64(r)*cellSize)
			if s.Area.Contains(p) {
				grid[r][c] = '.'
			}
		}
	}
	// Walls (boundary edges included — they are walls in the environment).
	for _, w := range s.Env.Walls() {
		steps := int(w.Seg.Len()/cellSize) + 1
		for i := 0; i <= steps; i++ {
			put(w.Seg.At(float64(i)/float64(steps)), '#')
		}
	}
	for _, sc := range s.Env.Scatterers() {
		put(sc.Pos, '*')
	}
	for _, ts := range s.TestSites {
		put(ts, 'x')
	}
	for _, wp := range s.Nomadic.Waypoints {
		put(wp, 'P')
	}
	for i, ap := range s.AllAPsStatic() {
		// Label with the ID's trailing character when it is a digit
		// ("ap2" → '2'), else by position in the list.
		ch := byte('1' + i)
		if last := ap.ID[len(ap.ID)-1]; last >= '0' && last <= '9' {
			ch = last
		}
		put(ap.Pos, ch)
	}
	if s.Nomadic.ID != "" {
		put(s.Nomadic.Home, 'H')
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %.0f m × %.0f m (1 char ≈ %.1f m)\n",
		s.Name, max.X-min.X, max.Y-min.Y, cellSize)
	for r := rows - 1; r >= 0; r-- {
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	b.WriteString("legend: # wall  1..n AP  H nomadic home  P waypoint  x test site  * scatterer\n")
	return b.String()
}
