// Package deploy holds the experiment scenarios: digitized versions of the
// paper's two testbeds (Fig. 6) — a cluttered Lab and a larger, sparser
// L-shaped Lobby — plus an extra multi-room office stress scene. Each
// scenario fixes the floor plan, obstacle layout, AP deployment, the
// nomadic AP's waypoints, and the evaluation test sites. Custom scenes are
// built by filling the exported Scenario struct and calling Validate.
package deploy

import (
	"errors"
	"fmt"

	"github.com/nomloc/nomloc/internal/channel"
	"github.com/nomloc/nomloc/internal/geom"
)

// AP is a deployed access point.
type AP struct {
	// ID names the AP ("ap1" … "ap4").
	ID string
	// Pos is its true position.
	Pos geom.Vec
}

// NomadicAP describes the mobile AP: its home position (where the static
// benchmark keeps it) and the waypoint sites it random-walks among
// (paper: "moves among current location and {P1, P2, P3}").
type NomadicAP struct {
	// ID names the AP.
	ID string
	// Home is the starting position, also its fixed position in the
	// static-deployment benchmark.
	Home geom.Vec
	// Waypoints are the additional sites it visits (P1, P2, P3, …).
	Waypoints []geom.Vec
}

// AllSites returns home followed by the waypoints — the full site set L of
// the Markov mobility model.
func (n NomadicAP) AllSites() []geom.Vec {
	out := make([]geom.Vec, 0, len(n.Waypoints)+1)
	out = append(out, n.Home)
	out = append(out, n.Waypoints...)
	return out
}

// Scenario is one complete experimental setup.
type Scenario struct {
	// Name labels the scenario ("lab", "lobby").
	Name string
	// Area is the area of interest.
	Area geom.Polygon
	// Env is the propagation environment (boundary, walls, clutter).
	Env *channel.Environment
	// Radio is the channel parameterization.
	Radio channel.Params
	// StaticAPs are the fixed APs (paper: AP2–AP4).
	StaticAPs []AP
	// Nomadic is the mobile AP (paper: AP1).
	Nomadic NomadicAP
	// TestSites are the ground-truth object positions evaluated.
	TestSites []geom.Vec
}

// Validation errors.
var (
	ErrBadScenario = errors.New("deploy: invalid scenario")
)

// Validate checks internal consistency: all APs, waypoints and test sites
// inside the area, no duplicate AP IDs, at least two APs overall.
func (s *Scenario) Validate() error {
	if s.Env == nil {
		return fmt.Errorf("%w: nil environment", ErrBadScenario)
	}
	if s.Area.NumVertices() < 3 {
		return fmt.Errorf("%w: no area", ErrBadScenario)
	}
	ids := map[string]bool{}
	check := func(what string, p geom.Vec) error {
		if !s.Area.Contains(p) {
			return fmt.Errorf("%w: %s at %v outside the area", ErrBadScenario, what, p)
		}
		return nil
	}
	for _, ap := range s.StaticAPs {
		if ids[ap.ID] {
			return fmt.Errorf("%w: duplicate AP id %q", ErrBadScenario, ap.ID)
		}
		ids[ap.ID] = true
		if err := check("static AP "+ap.ID, ap.Pos); err != nil {
			return err
		}
	}
	if s.Nomadic.ID != "" {
		if ids[s.Nomadic.ID] {
			return fmt.Errorf("%w: duplicate AP id %q", ErrBadScenario, s.Nomadic.ID)
		}
		if err := check("nomadic home", s.Nomadic.Home); err != nil {
			return err
		}
		for i, w := range s.Nomadic.Waypoints {
			if err := check(fmt.Sprintf("waypoint P%d", i+1), w); err != nil {
				return err
			}
		}
	}
	if len(s.StaticAPs) == 0 || (len(s.StaticAPs) < 2 && s.Nomadic.ID == "") {
		return fmt.Errorf("%w: need at least two APs", ErrBadScenario)
	}
	if len(s.TestSites) == 0 {
		return fmt.Errorf("%w: no test sites", ErrBadScenario)
	}
	for i, ts := range s.TestSites {
		if err := check(fmt.Sprintf("test site %d", i+1), ts); err != nil {
			return err
		}
	}
	return nil
}

// Simulator builds the channel simulator for the scenario.
func (s *Scenario) Simulator() (*channel.Simulator, error) {
	return channel.NewSimulator(s.Env, s.Radio)
}

// AllAPsStatic returns the static-benchmark deployment: every AP fixed,
// the nomadic AP parked at Home.
func (s *Scenario) AllAPsStatic() []AP {
	out := make([]AP, 0, len(s.StaticAPs)+1)
	out = append(out, s.StaticAPs...)
	if s.Nomadic.ID != "" {
		out = append(out, AP{ID: s.Nomadic.ID, Pos: s.Nomadic.Home})
	}
	return out
}

// Lab returns the digitized Lab scenario (paper Fig. 6a): a 12 m × 8 m
// cluttered machine room. Equipment racks and desks add NLOS walls and
// scatterers; ten test sites cover the floor. AP1 (bottom-left) is the
// nomadic AP with waypoints P1–P3 spread across the room.
func Lab() (*Scenario, error) {
	area := geom.Rect(0, 0, 12, 8)
	env, err := channel.NewEnvironment(area, 12)
	if err != nil {
		return nil, fmt.Errorf("lab environment: %w", err)
	}
	// Clutter: equipment racks and desk clusters (attenuating, reflective
	// metal surfaces), per the "substantial equipments (PCs and servers)
	// and office facilities" description.
	boxes := [][4]float64{
		{2.5, 2.5, 4.5, 3.3},  // desk island
		{7.0, 4.6, 9.0, 5.4},  // server rack row
		{4.8, 6.2, 6.2, 7.2},  // cabinet
		{9.8, 1.0, 11.0, 1.8}, // printer corner
	}
	for _, b := range boxes {
		if err := env.AddBox(b[0], b[1], b[2], b[3], 7, true); err != nil {
			return nil, fmt.Errorf("lab box: %w", err)
		}
	}
	// A half-height partition wall near the entrance.
	if err := env.AddWall(channel.Wall{
		Seg:           geom.Seg(geom.V(0, 4.5), geom.V(2.6, 4.5)),
		AttenuationDB: 9,
		Reflective:    true,
	}); err != nil {
		return nil, fmt.Errorf("lab partition: %w", err)
	}
	// Point clutter: PCs, chairs, people.
	for _, p := range []geom.Vec{
		geom.V(3.2, 1.4), geom.V(8.8, 2.8), geom.V(5.4, 4.9), geom.V(10.4, 6.6), geom.V(1.6, 6.2),
	} {
		if err := env.AddScatterer(channel.Scatterer{Pos: p, ExcessLossDB: 13}); err != nil {
			return nil, fmt.Errorf("lab scatterer: %w", err)
		}
	}

	s := &Scenario{
		Name:  "lab",
		Area:  area,
		Env:   env,
		Radio: channel.DefaultParams(),
		StaticAPs: []AP{
			{ID: "ap2", Pos: geom.V(11.2, 0.8)},
			{ID: "ap3", Pos: geom.V(0.8, 7.2)},
			{ID: "ap4", Pos: geom.V(11.2, 7.2)},
		},
		Nomadic: NomadicAP{
			ID:   "ap1",
			Home: geom.V(0.8, 0.8),
			Waypoints: []geom.Vec{
				geom.V(4.0, 4.2), // P1
				geom.V(8.2, 2.0), // P2
				geom.V(7.2, 6.6), // P3 (clear of the cabinet)
			},
		},
		TestSites: []geom.Vec{
			geom.V(1.8, 2.2), geom.V(3.4, 5.6), geom.V(5.6, 1.6), geom.V(6.0, 3.9),
			geom.V(7.8, 6.4), geom.V(6.2, 5.7), geom.V(9.4, 4.0), geom.V(10.2, 2.4),
			geom.V(2.4, 7.0), geom.V(10.6, 7.0),
		},
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Lobby returns the digitized Lobby scenario (paper Fig. 6b): a larger,
// more open L-shaped atrium of roughly 20 m × 14 m. The non-convex shape
// exercises the convex-decomposition path of the SP solver; clutter is
// sparse (pillars and a reception desk). Twelve test sites span both arms
// of the L.
func Lobby() (*Scenario, error) {
	area := geom.MustPolygon([]geom.Vec{
		geom.V(0, 0), geom.V(20, 0), geom.V(20, 8), geom.V(8, 8), geom.V(8, 14), geom.V(0, 14),
	})
	env, err := channel.NewEnvironment(area, 12)
	if err != nil {
		return nil, fmt.Errorf("lobby environment: %w", err)
	}
	// Two structural pillars and a reception desk.
	if err := env.AddBox(9.5, 3.5, 10.3, 4.3, 10, true); err != nil {
		return nil, fmt.Errorf("lobby pillar: %w", err)
	}
	if err := env.AddBox(3.6, 9.6, 4.4, 10.4, 10, true); err != nil {
		return nil, fmt.Errorf("lobby pillar: %w", err)
	}
	if err := env.AddBox(14.0, 5.8, 17.0, 6.8, 6, true); err != nil {
		return nil, fmt.Errorf("lobby desk: %w", err)
	}
	for _, p := range []geom.Vec{geom.V(6, 2.5), geom.V(16, 2.2), geom.V(2.5, 11.5)} {
		if err := env.AddScatterer(channel.Scatterer{Pos: p, ExcessLossDB: 15}); err != nil {
			return nil, fmt.Errorf("lobby scatterer: %w", err)
		}
	}

	s := &Scenario{
		Name:  "lobby",
		Area:  area,
		Env:   env,
		Radio: channel.DefaultParams(),
		StaticAPs: []AP{
			{ID: "ap2", Pos: geom.V(19.2, 0.8)},
			{ID: "ap3", Pos: geom.V(0.8, 13.2)},
			{ID: "ap4", Pos: geom.V(19.2, 7.2)},
		},
		Nomadic: NomadicAP{
			ID:   "ap1",
			Home: geom.V(0.8, 0.8),
			Waypoints: []geom.Vec{
				geom.V(6.0, 6.0),  // P1
				geom.V(14.0, 3.8), // P2
				geom.V(5.4, 10.8), // P3 (clear of the upper pillar)
			},
		},
		TestSites: []geom.Vec{
			geom.V(2.2, 2.0), geom.V(5.0, 4.8), geom.V(8.5, 1.8), geom.V(11.5, 5.5),
			geom.V(13.0, 2.2), geom.V(15.5, 4.2), geom.V(18.0, 6.6), geom.V(18.2, 1.6),
			geom.V(2.0, 6.8), geom.V(5.8, 9.2), geom.V(2.6, 12.4), geom.V(6.4, 12.6),
		},
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// ByName returns a built-in scenario by name.
func ByName(name string) (*Scenario, error) {
	switch name {
	case "lab":
		return Lab()
	case "lobby":
		return Lobby()
	case "office":
		return Office()
	default:
		return nil, fmt.Errorf("%w: unknown scenario %q (want lab, lobby, or office)",
			ErrBadScenario, name)
	}
}

// Names lists the scenarios the paper evaluates (the figure runners
// iterate these). The extra stress scenario is in AllNames.
func Names() []string { return []string{"lab", "lobby"} }

// AllNames lists every built-in scenario, including the non-paper office
// floor.
func AllNames() []string { return []string{"lab", "lobby", "office"} }

// Office returns an extra (non-paper) scenario for stress testing: a
// 24 m × 14 m office floor with three walled rooms off a corridor —
// heavier multi-wall NLOS than either paper venue. The nomadic AP patrols
// the corridor, the natural walkway of the shop-greeter/security-guard
// stories in the paper's introduction.
func Office() (*Scenario, error) {
	area := geom.Rect(0, 0, 24, 14)
	env, err := channel.NewEnvironment(area, 12)
	if err != nil {
		return nil, fmt.Errorf("office environment: %w", err)
	}
	// Interior walls: three rooms along the top (y in [8, 14]) separated
	// from a corridor (y in [6, 8]) and an open area below. Each room has
	// a door gap.
	walls := []geom.Segment{
		// Corridor's top wall with door gaps at x ∈ [3,4.2], [11,12.2], [19,20.2].
		geom.Seg(geom.V(0, 8), geom.V(3, 8)),
		geom.Seg(geom.V(4.2, 8), geom.V(11, 8)),
		geom.Seg(geom.V(12.2, 8), geom.V(19, 8)),
		geom.Seg(geom.V(20.2, 8), geom.V(24, 8)),
		// Room dividers.
		geom.Seg(geom.V(8, 8), geom.V(8, 14)),
		geom.Seg(geom.V(16, 8), geom.V(16, 14)),
	}
	for _, w := range walls {
		if err := env.AddWall(channel.Wall{Seg: w, AttenuationDB: 10, Reflective: true}); err != nil {
			return nil, fmt.Errorf("office wall: %w", err)
		}
	}
	// Clutter: desks in the rooms, a copier in the open area.
	if err := env.AddBox(1.5, 10, 4.5, 11.2, 6, true); err != nil {
		return nil, fmt.Errorf("office desk: %w", err)
	}
	if err := env.AddBox(10, 10.5, 13, 11.7, 6, true); err != nil {
		return nil, fmt.Errorf("office desk: %w", err)
	}
	if err := env.AddBox(18.5, 1.5, 20.0, 2.7, 8, true); err != nil {
		return nil, fmt.Errorf("office copier: %w", err)
	}
	for _, p := range []geom.Vec{geom.V(5, 3), geom.V(12, 4.5), geom.V(21, 11)} {
		if err := env.AddScatterer(channel.Scatterer{Pos: p, ExcessLossDB: 14}); err != nil {
			return nil, fmt.Errorf("office scatterer: %w", err)
		}
	}

	s := &Scenario{
		Name:  "office",
		Area:  area,
		Env:   env,
		Radio: channel.DefaultParams(),
		StaticAPs: []AP{
			{ID: "ap2", Pos: geom.V(23.2, 0.8)},
			{ID: "ap3", Pos: geom.V(0.8, 13.2)},
			{ID: "ap4", Pos: geom.V(23.2, 13.2)},
		},
		Nomadic: NomadicAP{
			ID:   "ap1",
			Home: geom.V(0.8, 0.8),
			Waypoints: []geom.Vec{
				geom.V(3.6, 7.0),  // P1: corridor west (by room 1's door)
				geom.V(11.6, 7.0), // P2: corridor center (by room 2's door)
				geom.V(19.6, 7.0), // P3: corridor east (by room 3's door)
				geom.V(12.0, 2.5), // P4: open area
			},
		},
		TestSites: []geom.Vec{
			geom.V(2.0, 2.5), geom.V(7.0, 4.0), geom.V(12.0, 1.8), geom.V(17.0, 4.5),
			geom.V(22.0, 3.0), geom.V(2.0, 7.0), geom.V(16.0, 7.0), geom.V(22.5, 7.0),
			geom.V(2.5, 11.5), geom.V(6.0, 12.5), geom.V(10.0, 12.8), geom.V(14.5, 9.5),
			geom.V(18.0, 12.0), geom.V(22.0, 10.0),
		},
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
