package dataset

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/csi"
	"github.com/nomloc/nomloc/internal/geom"
)

// sampleDataset builds a minimal valid dataset.
func sampleDataset() *Dataset {
	cfg := csi.Config{NumSubcarriers: 4, Bandwidth: 20e6, CarrierFreq: 2.4e9}
	mkBatch := func(apID string) csi.Batch {
		return csi.Batch{
			APID: apID,
			Samples: []csi.Sample{
				{APID: apID, Seq: 0, CSI: csi.Vector{1, 2i, -1, 0.5}},
				{APID: apID, Seq: 1, CSI: csi.Vector{1, 1i, -2, 0.25}},
			},
		}
	}
	return &Dataset{
		Version:   FormatVersion,
		Scenario:  "lab",
		Mode:      "static",
		Radio:     cfg,
		CreatedAt: time.Unix(1700000000, 0).UTC(),
		Records: []Record{
			{
				Truth: geom.V(3, 4),
				Anchors: []AnchorRecord{
					{APID: "ap1", Pos: geom.V(0, 0), Batch: mkBatch("ap1")},
					{APID: "ap2", Pos: geom.V(10, 0), Batch: mkBatch("ap2")},
				},
			},
		},
	}
}

func TestDatasetValidate(t *testing.T) {
	if err := sampleDataset().Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}

	d := sampleDataset()
	d.Version = 99
	if err := d.Validate(); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version err = %v", err)
	}

	d = sampleDataset()
	d.Records = nil
	if err := d.Validate(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}

	d = sampleDataset()
	d.Records[0].Anchors = d.Records[0].Anchors[:1]
	if err := d.Validate(); err == nil {
		t.Error("single-anchor record accepted")
	}

	d = sampleDataset()
	d.Records[0].Anchors[0].Batch.Samples = nil
	if err := d.Validate(); err == nil {
		t.Error("empty batch accepted")
	}

	d = sampleDataset()
	d.Records[0].Anchors[0].Batch.Samples[0].CSI = csi.Vector{1}
	if err := d.Validate(); err == nil {
		t.Error("wrong subcarrier count accepted")
	}

	d = sampleDataset()
	d.Radio.Bandwidth = -1
	if err := d.Validate(); err == nil {
		t.Error("bad radio config accepted")
	}
}

func TestDatasetSaveLoadRoundtrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario != d.Scenario || got.Mode != d.Mode {
		t.Errorf("meta lost: %+v", got)
	}
	if len(got.Records) != 1 {
		t.Fatalf("records = %d", len(got.Records))
	}
	if got.Records[0].Truth != d.Records[0].Truth {
		t.Error("truth lost")
	}
	a := got.Records[0].Anchors[0]
	if a.APID != "ap1" || len(a.Batch.Samples) != 2 {
		t.Errorf("anchor lost: %+v", a)
	}
	if a.Batch.Samples[0].CSI[1] != 2i {
		t.Errorf("CSI corrupted: %v", a.Batch.Samples[0].CSI)
	}
	if !got.CreatedAt.Equal(d.CreatedAt) {
		t.Error("timestamp lost")
	}
}

func TestDatasetLoadErrors(t *testing.T) {
	// Not gzip.
	if _, err := Load(bytes.NewReader([]byte("plain text"))); err == nil {
		t.Error("non-gzip accepted")
	}
	// Valid gzip, invalid content.
	var buf bytes.Buffer
	bad := sampleDataset()
	bad.Records = nil
	_ = bad.Save(&buf) // Save does not validate; Load must
	if _, err := Load(&buf); !errors.Is(err, ErrEmpty) {
		t.Errorf("invalid content err = %v", err)
	}
}

func TestDatasetFileRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json.gz")
	d := sampleDataset()
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSamples() != d.NumSamples() {
		t.Errorf("samples = %d, want %d", got.NumSamples(), d.NumSamples())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gz")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestNumSamples(t *testing.T) {
	if got := sampleDataset().NumSamples(); got != 4 {
		t.Errorf("NumSamples = %d, want 4", got)
	}
}
