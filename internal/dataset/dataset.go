// Package dataset records and replays measurement campaigns: the raw CSI
// batches a localization run consumed, with ground truth, serialized as
// gzip-compressed JSON. Replaying a dataset re-runs the algorithms on
// identical inputs — the workflow for offline algorithm work, regression
// testing against captured campaigns, and sharing experiment data.
package dataset

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/nomloc/nomloc/internal/csi"
	"github.com/nomloc/nomloc/internal/geom"
)

// FormatVersion identifies the on-disk schema.
const FormatVersion = 1

// Dataset is one recorded measurement campaign.
type Dataset struct {
	// Version is the schema version (FormatVersion at write time).
	Version int `json:"version"`
	// Scenario names the scene the campaign ran in.
	Scenario string `json:"scenario"`
	// Mode describes the deployment ("static", "nomadic", …).
	Mode string `json:"mode"`
	// Radio is the CSI sampling grid of every batch.
	Radio csi.Config `json:"radio"`
	// CreatedAt stamps the recording.
	CreatedAt time.Time `json:"createdAt"`
	// Records holds one entry per localization round.
	Records []Record `json:"records"`
}

// Record is one localization round: the object's ground truth and the
// anchor measurements the server would consume.
type Record struct {
	// Truth is the object's true position.
	Truth geom.Vec `json:"truth"`
	// Anchors holds the per-anchor captures.
	Anchors []AnchorRecord `json:"anchors"`
}

// AnchorRecord is one anchor's capture in a round.
type AnchorRecord struct {
	// APID names the access point.
	APID string `json:"apId"`
	// SiteIndex is the nomadic waypoint index (0 = static).
	SiteIndex int `json:"siteIndex"`
	// Nomadic marks nomadic-site anchors.
	Nomadic bool `json:"nomadic"`
	// Pos is the believed anchor position.
	Pos geom.Vec `json:"pos"`
	// Batch carries the raw CSI burst.
	Batch csi.Batch `json:"batch"`
}

// Dataset errors.
var (
	ErrBadVersion = errors.New("dataset: unsupported format version")
	ErrEmpty      = errors.New("dataset: no records")
)

// Validate checks structural invariants.
func (d *Dataset) Validate() error {
	if d.Version != FormatVersion {
		return fmt.Errorf("%w: %d (want %d)", ErrBadVersion, d.Version, FormatVersion)
	}
	if len(d.Records) == 0 {
		return ErrEmpty
	}
	if err := d.Radio.Validate(); err != nil {
		return err
	}
	for ri, rec := range d.Records {
		if len(rec.Anchors) < 2 {
			return fmt.Errorf("dataset: record %d has %d anchors, need ≥ 2", ri, len(rec.Anchors))
		}
		for ai, a := range rec.Anchors {
			if len(a.Batch.Samples) == 0 {
				return fmt.Errorf("dataset: record %d anchor %d (%s#%d) has no samples",
					ri, ai, a.APID, a.SiteIndex)
			}
			for si := range a.Batch.Samples {
				if len(a.Batch.Samples[si].CSI) != d.Radio.NumSubcarriers {
					return fmt.Errorf("dataset: record %d anchor %d sample %d has %d subcarriers, want %d",
						ri, ai, si, len(a.Batch.Samples[si].CSI), d.Radio.NumSubcarriers)
				}
			}
		}
	}
	return nil
}

// Save writes the dataset as gzip-compressed JSON.
func (d *Dataset) Save(w io.Writer) error {
	gz := gzip.NewWriter(w)
	enc := json.NewEncoder(gz)
	if err := enc.Encode(d); err != nil {
		_ = gz.Close()
		return fmt.Errorf("dataset: encode: %w", err)
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("dataset: flush: %w", err)
	}
	return nil
}

// Load reads a dataset written by Save and validates it.
func Load(r io.Reader) (*Dataset, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: gzip: %w", err)
	}
	defer func() { _ = gz.Close() }()
	var d Dataset
	if err := json.NewDecoder(gz).Decode(&d); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// SaveFile writes the dataset to path (creating or truncating it).
func (d *Dataset) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("dataset: close %s: %w", path, cerr)
		}
	}()
	return d.Save(f)
}

// LoadFile reads a dataset from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	return Load(f)
}

// NumSamples returns the total packet count across all records.
func (d *Dataset) NumSamples() int {
	total := 0
	for _, rec := range d.Records {
		for _, a := range rec.Anchors {
			total += len(a.Batch.Samples)
		}
	}
	return total
}
