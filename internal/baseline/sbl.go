package baseline

import (
	"fmt"
	"math"
	"sort"

	"github.com/nomloc/nomloc/internal/geom"
)

// SBL implements sequence-based localization (Yedavalli &
// Krishnamachari, TMC 2008 — the paper's reference [2] and the origin of
// the space-partition idea NomLoc builds on). The area is sampled on a
// grid; each cell is described by the *rank order* of its distances to
// the anchors. At runtime the measured powers are ranked (stronger =
// closer) and the cell whose distance sequence correlates best with the
// measured sequence — Spearman's ρ — wins. Like NomLoc it needs no
// calibration, but unlike NomLoc it cannot exploit anchor mobility
// beyond re-running with more anchors.
type SBL struct {
	anchors []geom.Vec
	cells   []sblCell
}

// sblCell is one grid sample with its precomputed distance ranks.
type sblCell struct {
	pos   geom.Vec
	ranks []float64
}

// NewSBL precomputes the grid sequence table: one cell per grid point of
// the area at the given spacing.
func NewSBL(area geom.Polygon, anchors []geom.Vec, spacing float64) (*SBL, error) {
	if len(anchors) < 2 {
		return nil, fmt.Errorf("%w: %d anchors, need ≥ 2", ErrTooFewAnchors, len(anchors))
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("%w: spacing %v", ErrBadModel, spacing)
	}
	pts := area.SamplePoints(spacing, spacing/4)
	if len(pts) == 0 {
		return nil, fmt.Errorf("%w: grid too coarse for the area", ErrBadModel)
	}
	s := &SBL{
		anchors: append([]geom.Vec(nil), anchors...),
		cells:   make([]sblCell, 0, len(pts)),
	}
	for _, p := range pts {
		dists := make([]float64, len(anchors))
		for i, a := range anchors {
			dists[i] = p.Dist(a)
		}
		s.cells = append(s.cells, sblCell{pos: p, ranks: averageRanks(dists)})
	}
	return s, nil
}

// NumCells returns the size of the sequence table.
func (s *SBL) NumCells() int { return len(s.cells) }

// Locate ranks the measured powers (strongest first ⇒ nearest first) and
// returns the centroid of the best-correlated cells (all cells within a
// hair of the maximal Spearman ρ — sequence tables typically contain
// regions of identical sequence).
func (s *SBL) Locate(powersDBm []float64) (geom.Vec, error) {
	if len(powersDBm) != len(s.anchors) {
		return geom.Vec{}, fmt.Errorf("%w: %d powers for %d anchors",
			ErrBadModel, len(powersDBm), len(s.anchors))
	}
	// Stronger power ⇒ smaller distance, so rank negated powers to get a
	// distance-like ordering.
	neg := make([]float64, len(powersDBm))
	for i, p := range powersDBm {
		neg[i] = -p
	}
	measured := averageRanks(neg)

	const tieTol = 1e-9
	best := math.Inf(-1)
	var sum geom.Vec
	count := 0
	for _, cell := range s.cells {
		rho := spearman(measured, cell.ranks)
		switch {
		case rho > best+tieTol:
			best = rho
			sum = cell.pos
			count = 1
		case rho > best-tieTol:
			sum = sum.Add(cell.pos)
			count++
		}
	}
	if count == 0 {
		return geom.Vec{}, fmt.Errorf("%w: no cells", ErrBadModel)
	}
	return sum.Scale(1 / float64(count)), nil
}

// rankTieTol bounds the spread within which sorted values count as one
// rank tie. Distances to distinct grid cells and measured powers that
// genuinely tie are bit-identical, so the tolerance only has to absorb
// float formatting round-trips, not measurement noise.
const rankTieTol = 1e-12

// approxEqualRank reports whether two sorted rank keys tie, within
// rankTieTol absolute tolerance (exact float equality would make tie
// handling depend on the last ulp of the distance computation).
func approxEqualRank(a, b float64) bool {
	return math.Abs(a-b) <= rankTieTol
}

// averageRanks returns 1-based ranks with ties sharing their average rank
// (the standard treatment for Spearman correlation).
func averageRanks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && approxEqualRank(xs[idx[j+1]], xs[idx[i]]) {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// spearman computes the rank correlation between two rank vectors (which
// may contain tied average ranks), via the Pearson formula on the ranks.
func spearman(a, b []float64) float64 {
	n := float64(len(a))
	if n == 0 {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
