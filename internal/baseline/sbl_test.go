package baseline

import (
	"errors"
	"math"
	"testing"

	"github.com/nomloc/nomloc/internal/geom"
)

func sblAnchors() []geom.Vec {
	return []geom.Vec{geom.V(0, 0), geom.V(10, 0), geom.V(0, 8), geom.V(10, 8)}
}

func TestNewSBLValidation(t *testing.T) {
	area := geom.Rect(0, 0, 10, 8)
	if _, err := NewSBL(area, sblAnchors()[:1], 1); !errors.Is(err, ErrTooFewAnchors) {
		t.Errorf("one anchor err = %v", err)
	}
	if _, err := NewSBL(area, sblAnchors(), 0); !errors.Is(err, ErrBadModel) {
		t.Errorf("zero spacing err = %v", err)
	}
	if _, err := NewSBL(area, sblAnchors(), 100); !errors.Is(err, ErrBadModel) {
		t.Errorf("coarse grid err = %v", err)
	}
	s, err := NewSBL(area, sblAnchors(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCells() == 0 {
		t.Error("no cells")
	}
}

func TestSBLPerfectSequences(t *testing.T) {
	// With noise-free power orderings, SBL must land near the truth.
	area := geom.Rect(0, 0, 10, 8)
	s, err := NewSBL(area, sblAnchors(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	model := RangingModel{RefPowerDBm: -40, PathLossExponent: 2}
	for _, truth := range []geom.Vec{geom.V(2, 2), geom.V(7, 5), geom.V(5, 4), geom.V(9, 1)} {
		powers := make([]float64, len(sblAnchors()))
		for i, a := range sblAnchors() {
			powers[i] = model.RefPowerDBm - 20*math.Log10(truth.Dist(a))
		}
		got, err := s.Locate(powers)
		if err != nil {
			t.Fatal(err)
		}
		// Sequence localization is coarse (a whole equal-sequence region
		// maps to one answer); 4 anchors partition a room into dozens of
		// faces, so a few meters is the method's intrinsic resolution.
		if d := got.Dist(truth); d > 3.5 {
			t.Errorf("truth %v: SBL estimate %v is %v m away", truth, got, d)
		}
	}
}

func TestSBLLengthMismatch(t *testing.T) {
	s, err := NewSBL(geom.Rect(0, 0, 10, 8), sblAnchors(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Locate([]float64{-40, -50}); !errors.Is(err, ErrBadModel) {
		t.Errorf("err = %v", err)
	}
}

func TestAverageRanks(t *testing.T) {
	// Plain distinct values.
	got := averageRanks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ranks = %v, want %v", got, want)
		}
	}
	// Ties share the average rank: {5, 5, 1} → ranks {2.5, 2.5, 1}.
	got = averageRanks([]float64{5, 5, 1})
	if got[0] != 2.5 || got[1] != 2.5 || got[2] != 1 {
		t.Errorf("tied ranks = %v", got)
	}
	if got := averageRanks(nil); len(got) != 0 {
		t.Errorf("empty ranks = %v", got)
	}
}

func TestSpearman(t *testing.T) {
	// Identical rankings: ρ = 1.
	if got := spearman([]float64{1, 2, 3}, []float64{1, 2, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical ρ = %v", got)
	}
	// Reversed: ρ = −1.
	if got := spearman([]float64{1, 2, 3}, []float64{3, 2, 1}); math.Abs(got+1) > 1e-12 {
		t.Errorf("reversed ρ = %v", got)
	}
	// Constant vector: ρ = 0 by convention.
	if got := spearman([]float64{2, 2, 2}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("constant ρ = %v", got)
	}
	if got := spearman(nil, nil); got != 0 {
		t.Errorf("empty ρ = %v", got)
	}
}

func TestSBLCoarseOrderingRobustness(t *testing.T) {
	// SBL uses only the ordering, so any monotone distortion of the
	// powers (here: a nonlinear but increasing map) must not change the
	// answer.
	area := geom.Rect(0, 0, 10, 8)
	s, err := NewSBL(area, sblAnchors(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	truth := geom.V(3, 5)
	model := RangingModel{RefPowerDBm: -40, PathLossExponent: 2}
	powers := make([]float64, len(sblAnchors()))
	distorted := make([]float64, len(sblAnchors()))
	for i, a := range sblAnchors() {
		p := model.RefPowerDBm - 20*math.Log10(truth.Dist(a))
		powers[i] = p
		distorted[i] = math.Tanh(p/50) * 100 // increasing map
	}
	got1, err := s.Locate(powers)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := s.Locate(distorted)
	if err != nil {
		t.Fatal(err)
	}
	if !got1.ApproxEqual(got2, 1e-9) {
		t.Errorf("monotone distortion changed the estimate: %v vs %v", got1, got2)
	}
}
