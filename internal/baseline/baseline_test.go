package baseline

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/nomloc/nomloc/internal/geom"
)

func TestNearestAP(t *testing.T) {
	anchors := []Anchor{
		{Pos: geom.V(0, 0), PowerDBm: -60},
		{Pos: geom.V(10, 0), PowerDBm: -40},
		{Pos: geom.V(5, 5), PowerDBm: -55},
	}
	got, err := NearestAP(anchors)
	if err != nil {
		t.Fatal(err)
	}
	if got != geom.V(10, 0) {
		t.Errorf("NearestAP = %v", got)
	}
	if _, err := NearestAP(nil); !errors.Is(err, ErrNoAnchors) {
		t.Errorf("err = %v", err)
	}
}

func TestWeightedCentroid(t *testing.T) {
	// Equal powers: plain centroid.
	anchors := []Anchor{
		{Pos: geom.V(0, 0), PowerDBm: -50},
		{Pos: geom.V(10, 0), PowerDBm: -50},
	}
	got, err := WeightedCentroid(anchors, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(geom.V(5, 0), 1e-9) {
		t.Errorf("equal-power centroid = %v", got)
	}
	// 10 dB advantage pulls the estimate toward the strong anchor.
	anchors[1].PowerDBm = -40
	got, err = WeightedCentroid(anchors, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.X <= 5 {
		t.Errorf("centroid %v not pulled toward strong anchor", got)
	}
	// Sharper exponent pulls harder.
	sharp, err := WeightedCentroid(anchors, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sharp.X <= got.X {
		t.Errorf("exponent 2 (%v) not sharper than 1 (%v)", sharp.X, got.X)
	}
}

func TestWeightedCentroidErrors(t *testing.T) {
	if _, err := WeightedCentroid(nil, 1); !errors.Is(err, ErrNoAnchors) {
		t.Errorf("err = %v", err)
	}
	a := []Anchor{{Pos: geom.V(0, 0), PowerDBm: -50}}
	if _, err := WeightedCentroid(a, 0); !errors.Is(err, ErrBadModel) {
		t.Errorf("zero exponent err = %v", err)
	}
	if _, err := WeightedCentroid(a, -1); !errors.Is(err, ErrBadModel) {
		t.Errorf("negative exponent err = %v", err)
	}
}

func TestRangingModelDistance(t *testing.T) {
	m := RangingModel{RefPowerDBm: -40, PathLossExponent: 2}
	// At the reference power, distance is 1 m.
	if got := m.Distance(-40); math.Abs(got-1) > 1e-9 {
		t.Errorf("Distance(ref) = %v, want 1", got)
	}
	// 20 dB below the reference with γ=2 is 10 m.
	if got := m.Distance(-60); math.Abs(got-10) > 1e-9 {
		t.Errorf("Distance(-60) = %v, want 10", got)
	}
	// Stronger than physically plausible: clamped at 0.1 m.
	if got := m.Distance(0); got != 0.1 {
		t.Errorf("Distance(hot) = %v, want clamp 0.1", got)
	}
}

func TestRangingModelValidate(t *testing.T) {
	if err := (RangingModel{RefPowerDBm: -40, PathLossExponent: 0}).Validate(); !errors.Is(err, ErrBadModel) {
		t.Errorf("err = %v", err)
	}
	if err := (RangingModel{RefPowerDBm: math.NaN(), PathLossExponent: 2}).Validate(); !errors.Is(err, ErrBadModel) {
		t.Errorf("err = %v", err)
	}
}

func TestCalibrateRangingModel(t *testing.T) {
	// Perfect log-distance data: the fit must recover the parameters.
	truth := RangingModel{RefPowerDBm: -38, PathLossExponent: 2.4}
	var samples []RangeSample
	for _, d := range []float64{0.5, 1, 2, 4, 8, 16} {
		samples = append(samples, RangeSample{
			DistanceM: d,
			PowerDBm:  truth.RefPowerDBm - 10*truth.PathLossExponent*math.Log10(d),
		})
	}
	got, err := CalibrateRangingModel(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.RefPowerDBm-truth.RefPowerDBm) > 1e-9 {
		t.Errorf("ref power = %v, want %v", got.RefPowerDBm, truth.RefPowerDBm)
	}
	if math.Abs(got.PathLossExponent-truth.PathLossExponent) > 1e-9 {
		t.Errorf("exponent = %v, want %v", got.PathLossExponent, truth.PathLossExponent)
	}
}

func TestCalibrateRangingModelNoisy(t *testing.T) {
	truth := RangingModel{RefPowerDBm: -40, PathLossExponent: 2.0}
	rng := rand.New(rand.NewSource(1))
	var samples []RangeSample
	for i := 0; i < 400; i++ {
		d := 0.5 + rng.Float64()*15
		samples = append(samples, RangeSample{
			DistanceM: d,
			PowerDBm:  truth.RefPowerDBm - 10*truth.PathLossExponent*math.Log10(d) + rng.NormFloat64()*2,
		})
	}
	got, err := CalibrateRangingModel(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.PathLossExponent-truth.PathLossExponent) > 0.15 {
		t.Errorf("noisy exponent = %v, want ≈ %v", got.PathLossExponent, truth.PathLossExponent)
	}
}

func TestCalibrateRangingModelErrors(t *testing.T) {
	if _, err := CalibrateRangingModel(nil); !errors.Is(err, ErrBadSamples) {
		t.Errorf("empty err = %v", err)
	}
	one := []RangeSample{{DistanceM: 2, PowerDBm: -50}}
	if _, err := CalibrateRangingModel(one); !errors.Is(err, ErrBadSamples) {
		t.Errorf("one sample err = %v", err)
	}
	same := []RangeSample{{DistanceM: 2, PowerDBm: -50}, {DistanceM: 2, PowerDBm: -48}}
	if _, err := CalibrateRangingModel(same); !errors.Is(err, ErrBadSamples) {
		t.Errorf("same distance err = %v", err)
	}
	junk := []RangeSample{{DistanceM: -1, PowerDBm: -50}, {DistanceM: 0, PowerDBm: -48}}
	if _, err := CalibrateRangingModel(junk); !errors.Is(err, ErrBadSamples) {
		t.Errorf("junk err = %v", err)
	}
	// Increasing power with distance yields a negative exponent → invalid.
	upside := []RangeSample{{DistanceM: 1, PowerDBm: -60}, {DistanceM: 10, PowerDBm: -40}}
	if _, err := CalibrateRangingModel(upside); !errors.Is(err, ErrBadModel) {
		t.Errorf("upside-down err = %v", err)
	}
}

func TestTrilateratePerfect(t *testing.T) {
	m := RangingModel{RefPowerDBm: -40, PathLossExponent: 2}
	obj := geom.V(4, 3)
	anchorPos := []geom.Vec{geom.V(0, 0), geom.V(10, 0), geom.V(0, 10), geom.V(10, 10)}
	anchors := make([]Anchor, len(anchorPos))
	for i, p := range anchorPos {
		d := obj.Dist(p)
		anchors[i] = Anchor{Pos: p, PowerDBm: m.RefPowerDBm - 10*m.PathLossExponent*math.Log10(d)}
	}
	got, err := Trilaterate(anchors, m)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(obj, 1e-6) {
		t.Errorf("Trilaterate = %v, want %v", got, obj)
	}
}

func TestTrilaterateErrors(t *testing.T) {
	m := RangingModel{RefPowerDBm: -40, PathLossExponent: 2}
	two := []Anchor{{Pos: geom.V(0, 0), PowerDBm: -50}, {Pos: geom.V(10, 0), PowerDBm: -50}}
	if _, err := Trilaterate(two, m); !errors.Is(err, ErrTooFewAnchors) {
		t.Errorf("two anchors err = %v", err)
	}
	bad := RangingModel{}
	three := append(two, Anchor{Pos: geom.V(5, 5), PowerDBm: -50})
	if _, err := Trilaterate(three, bad); !errors.Is(err, ErrBadModel) {
		t.Errorf("bad model err = %v", err)
	}
	// Collinear anchors are singular.
	col := []Anchor{
		{Pos: geom.V(0, 0), PowerDBm: -50},
		{Pos: geom.V(5, 0), PowerDBm: -50},
		{Pos: geom.V(10, 0), PowerDBm: -50},
	}
	if _, err := Trilaterate(col, m); !errors.Is(err, ErrSingular) {
		t.Errorf("collinear err = %v", err)
	}
}

func TestTrilaterateNoisyStillReasonable(t *testing.T) {
	m := RangingModel{RefPowerDBm: -40, PathLossExponent: 2}
	obj := geom.V(6, 4)
	rng := rand.New(rand.NewSource(2))
	anchorPos := []geom.Vec{geom.V(0, 0), geom.V(12, 0), geom.V(0, 8), geom.V(12, 8)}
	var worst, sum float64
	for trial := 0; trial < 50; trial++ {
		anchors := make([]Anchor, len(anchorPos))
		for i, p := range anchorPos {
			d := obj.Dist(p)
			anchors[i] = Anchor{
				Pos:      p,
				PowerDBm: m.RefPowerDBm - 10*m.PathLossExponent*math.Log10(d) + rng.NormFloat64()*1.5,
			}
		}
		got, err := Trilaterate(anchors, m)
		if err != nil {
			t.Fatal(err)
		}
		e := got.Dist(obj)
		sum += e
		if e > worst {
			worst = e
		}
	}
	if worst > 8 {
		t.Errorf("worst trilateration error %v m under mild noise", worst)
	}
	if mean := sum / 50; mean > 2.5 {
		t.Errorf("mean trilateration error %v m under mild noise", mean)
	}
}
