// Package baseline implements the comparator localization algorithms the
// ablation benches pit against NomLoc's SP-based method:
//
//   - nearest-AP snapping (the crudest proximity scheme),
//   - RSS/PDP weighted centroid,
//   - FILA-style log-distance ranging plus linear least-squares
//     trilateration — the "range-based" class the paper argues needs
//     calibration (the propagation-model parameters must be fitted to the
//     venue, which CalibrateRangingModel does explicitly).
package baseline

import (
	"errors"
	"fmt"
	"math"

	"github.com/nomloc/nomloc/internal/geom"
)

// Anchor is a reference point with the received power the object's signal
// produced there.
type Anchor struct {
	// Pos is the anchor position.
	Pos geom.Vec
	// PowerDBm is the received power in dBm (PDP or RSS, caller's choice).
	PowerDBm float64
}

// Errors returned by the package.
var (
	ErrNoAnchors     = errors.New("baseline: need at least one anchor")
	ErrTooFewAnchors = errors.New("baseline: too few anchors")
	ErrBadModel      = errors.New("baseline: invalid ranging model")
	ErrSingular      = errors.New("baseline: degenerate anchor geometry")
	ErrBadSamples    = errors.New("baseline: unusable calibration samples")
)

// NearestAP returns the position of the strongest anchor.
func NearestAP(anchors []Anchor) (geom.Vec, error) {
	if len(anchors) == 0 {
		return geom.Vec{}, ErrNoAnchors
	}
	best := anchors[0]
	for _, a := range anchors[1:] {
		if a.PowerDBm > best.PowerDBm {
			best = a
		}
	}
	return best.Pos, nil
}

// WeightedCentroid returns Σwᵢpᵢ/Σwᵢ with wᵢ the linear power raised to
// exponent (1 is the classic choice; larger values sharpen toward the
// strongest anchor).
func WeightedCentroid(anchors []Anchor, exponent float64) (geom.Vec, error) {
	if len(anchors) == 0 {
		return geom.Vec{}, ErrNoAnchors
	}
	if exponent <= 0 || math.IsNaN(exponent) {
		return geom.Vec{}, fmt.Errorf("%w: exponent %v", ErrBadModel, exponent)
	}
	var sum geom.Vec
	var wsum float64
	for _, a := range anchors {
		w := math.Pow(math.Pow(10, a.PowerDBm/10), exponent)
		sum = sum.Add(a.Pos.Scale(w))
		wsum += w
	}
	if wsum <= 0 || math.IsInf(wsum, 0) || math.IsNaN(wsum) {
		return geom.Vec{}, fmt.Errorf("%w: weight sum %v", ErrBadModel, wsum)
	}
	return sum.Scale(1 / wsum), nil
}

// RangingModel is the calibrated log-distance propagation model
// P(d) = RefPowerDBm − 10·γ·log10(d), with d in meters.
type RangingModel struct {
	// RefPowerDBm is the received power at 1 m.
	RefPowerDBm float64
	// PathLossExponent is γ.
	PathLossExponent float64
}

// Validate checks the model.
func (m RangingModel) Validate() error {
	if m.PathLossExponent <= 0 || math.IsNaN(m.PathLossExponent) {
		return fmt.Errorf("%w: exponent %v", ErrBadModel, m.PathLossExponent)
	}
	if math.IsNaN(m.RefPowerDBm) || math.IsInf(m.RefPowerDBm, 0) {
		return fmt.Errorf("%w: ref power %v", ErrBadModel, m.RefPowerDBm)
	}
	return nil
}

// Distance inverts the model: d = 10^((RefPowerDBm − P)/(10γ)), clamped
// below at 0.1 m.
//
//nomloc:unit powerDBm=dBm result=m
func (m RangingModel) Distance(powerDBm float64) float64 {
	d := math.Pow(10, (m.RefPowerDBm-powerDBm)/(10*m.PathLossExponent))
	if d < 0.1 {
		return 0.1
	}
	return d
}

// RangeSample is one calibration observation: a known TX–RX distance and
// the power received over it.
type RangeSample struct {
	// DistanceM is the true distance in meters.
	DistanceM float64
	// PowerDBm is the received power.
	PowerDBm float64
}

// CalibrateRangingModel fits the log-distance model to samples by ordinary
// least squares on P = a + b·log10(d) (so γ = −b/10). This is precisely
// the venue-specific calibration step the paper's §III-A cites as the
// burden of range-based methods — NomLoc avoids it, the baseline cannot.
func CalibrateRangingModel(samples []RangeSample) (RangingModel, error) {
	var xs, ys []float64
	for _, s := range samples {
		if s.DistanceM <= 0 || math.IsNaN(s.PowerDBm) || math.IsInf(s.PowerDBm, 0) {
			continue
		}
		xs = append(xs, math.Log10(s.DistanceM))
		ys = append(ys, s.PowerDBm)
	}
	if len(xs) < 2 {
		return RangingModel{}, fmt.Errorf("%w: %d usable samples", ErrBadSamples, len(xs))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if math.Abs(denom) < 1e-12 {
		return RangingModel{}, fmt.Errorf("%w: all samples at one distance", ErrBadSamples)
	}
	b := (n*sxy - sx*sy) / denom
	a := (sy - b*sx) / n
	m := RangingModel{RefPowerDBm: a, PathLossExponent: -b / 10}
	if err := m.Validate(); err != nil {
		return RangingModel{}, fmt.Errorf("fit produced %+v: %w", m, err)
	}
	return m, nil
}

// Trilaterate estimates the object position from ≥ 3 anchors by ranging
// each anchor through the model and solving the linearized least-squares
// system (subtracting the first anchor's circle equation from the rest).
func Trilaterate(anchors []Anchor, m RangingModel) (geom.Vec, error) {
	if err := m.Validate(); err != nil {
		return geom.Vec{}, err
	}
	if len(anchors) < 3 {
		return geom.Vec{}, fmt.Errorf("%w: %d anchors, need 3", ErrTooFewAnchors, len(anchors))
	}
	d := make([]float64, len(anchors))
	for i, a := range anchors {
		d[i] = m.Distance(a.PowerDBm)
	}
	// Rows: 2(xᵢ−x₀)x + 2(yᵢ−y₀)y = (xᵢ²+yᵢ²−x₀²−y₀²) + (d₀²−dᵢ²).
	ref := anchors[0]
	var a11, a12, a22, b1, b2 float64
	for i := 1; i < len(anchors); i++ {
		ai := anchors[i]
		rx := 2 * (ai.Pos.X - ref.Pos.X)
		ry := 2 * (ai.Pos.Y - ref.Pos.Y)
		rhs := ai.Pos.Len2() - ref.Pos.Len2() + d[0]*d[0] - d[i]*d[i]
		// Accumulate normal equations AᵀA and Aᵀb.
		a11 += rx * rx
		a12 += rx * ry
		a22 += ry * ry
		b1 += rx * rhs
		b2 += ry * rhs
	}
	det := a11*a22 - a12*a12
	if math.Abs(det) < 1e-9 {
		return geom.Vec{}, ErrSingular
	}
	x := (a22*b1 - a12*b2) / det
	y := (a11*b2 - a12*b1) / det
	return geom.V(x, y), nil
}
