package planner

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/nomloc/nomloc/internal/geom"
)

func testState(t *testing.T) *State {
	t.Helper()
	sites := []geom.Vec{geom.V(1, 1), geom.V(8, 2), geom.V(4, 6), geom.V(9, 7)}
	statics := []geom.Vec{geom.V(0, 0), geom.V(10, 0), geom.V(10, 8)}
	s, err := NewState(sites, statics, geom.Rect(0, 0, 10, 8))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewState(t *testing.T) {
	s := testState(t)
	if !s.Visited[0] {
		t.Error("home should start visited")
	}
	if s.Current != 0 {
		t.Errorf("current = %d", s.Current)
	}
	if _, err := NewState(nil, nil, geom.Polygon{}); !errors.Is(err, ErrNoSites) {
		t.Errorf("err = %v", err)
	}
}

func TestStateValidateAndMark(t *testing.T) {
	s := testState(t)
	if err := s.Validate(); err != nil {
		t.Errorf("valid state rejected: %v", err)
	}
	if err := s.MarkVisited(2); err != nil {
		t.Fatal(err)
	}
	if s.Current != 2 || !s.Visited[2] {
		t.Error("MarkVisited did not update")
	}
	if err := s.MarkVisited(9); !errors.Is(err, ErrBadState) {
		t.Errorf("out of range err = %v", err)
	}
	bad := &State{Sites: []geom.Vec{{}}, Visited: []bool{true, false}}
	if err := bad.Validate(); !errors.Is(err, ErrBadState) {
		t.Errorf("ragged err = %v", err)
	}
}

func TestUnvisited(t *testing.T) {
	s := testState(t)
	got := s.Unvisited()
	if len(got) != 3 {
		t.Fatalf("unvisited = %v", got)
	}
	_ = s.MarkVisited(1)
	_ = s.MarkVisited(2)
	_ = s.MarkVisited(3)
	if got := s.Unvisited(); len(got) != 0 {
		t.Errorf("unvisited after all = %v", got)
	}
}

func TestShrinkRegion(t *testing.T) {
	s := testState(t)
	before := s.Region.Area()
	s.ShrinkRegion([]geom.HalfPlane{{Ax: 1, Ay: 0, B: 5}}) // x ≤ 5
	if s.Region.Area() >= before {
		t.Error("region did not shrink")
	}
	// Contradictory constraints leave the region unchanged.
	after := s.Region.Area()
	s.ShrinkRegion([]geom.HalfPlane{{Ax: 1, Ay: 0, B: -100}})
	if s.Region.Area() != after {
		t.Error("empty intersection should not change the region")
	}
}

func TestRandomWalkUniform(t *testing.T) {
	s := testState(t)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, len(s.Sites))
	const trials = 8000
	for i := 0; i < trials; i++ {
		next, err := RandomWalk().Next(s, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[next]++
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if frac < 0.2 || frac > 0.3 {
			t.Errorf("site %d frequency %v, want ≈ 0.25", i, frac)
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	s := testState(t)
	rng := rand.New(rand.NewSource(2))
	want := []int{1, 2, 3, 0, 1}
	for _, w := range want {
		next, err := RoundRobin().Next(s, rng)
		if err != nil {
			t.Fatal(err)
		}
		if next != w {
			t.Fatalf("round robin gave %d, want %d", next, w)
		}
		_ = s.MarkVisited(next)
	}
}

func TestFarthestFirst(t *testing.T) {
	s := testState(t)
	rng := rand.New(rand.NewSource(3))
	// From home (1,1) the farthest unvisited is (9,7).
	next, err := FarthestFirst().Next(s, rng)
	if err != nil {
		t.Fatal(err)
	}
	if next != 3 {
		t.Errorf("farthest-first chose %d, want 3 (the far corner)", next)
	}
	_ = s.MarkVisited(3)
	// Now the point maximizing min-distance to {(1,1),(9,7)} among
	// {(8,2),(4,6)}: (8,2) has min dist ~5.1 to (9,7)... compute:
	// (8,2): min(d to (1,1)=7.07, d to (9,7)=5.10) = 5.10
	// (4,6): min(d to (1,1)=5.83, d to (9,7)=5.10) = 5.10
	// Tie (both 5.10); implementation picks the first with strictly
	// greater score, so index 1.
	next, err = FarthestFirst().Next(s, rng)
	if err != nil {
		t.Fatal(err)
	}
	if next != 1 && next != 2 {
		t.Errorf("farthest-first chose %d, want 1 or 2", next)
	}
	// All visited: falls back to round-robin.
	_ = s.MarkVisited(1)
	_ = s.MarkVisited(2)
	next, err = FarthestFirst().Next(s, rng)
	if err != nil {
		t.Fatal(err)
	}
	if next != (s.Current+1)%len(s.Sites) {
		t.Errorf("exhausted fallback chose %d", next)
	}
}

func TestGreedyPartitionIsArgmax(t *testing.T) {
	// Next must return the unvisited candidate with the maximal
	// PartitionScore.
	sites := []geom.Vec{geom.V(0.5, 0.5), geom.V(5, 4), geom.V(0.5, 7.5), geom.V(8, 2)}
	statics := []geom.Vec{geom.V(0, 0), geom.V(10, 0), geom.V(10, 8), geom.V(0, 8)}
	s, err := NewState(sites, statics, geom.Rect(0, 0, 10, 8))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	next, err := GreedyPartition().Next(s, rng)
	if err != nil {
		t.Fatal(err)
	}
	bestScore := PartitionScore(s, next)
	for _, cand := range s.Unvisited() {
		if sc := PartitionScore(s, cand); sc > bestScore+1e-12 {
			t.Errorf("candidate %d scores %v > chosen %d's %v", cand, sc, next, bestScore)
		}
	}
}

func TestPartitionScoreReliabilityDiscount(t *testing.T) {
	// A waypoint glued to an AP yields a near-tie judgement and must
	// score below a well-separated waypoint whose bisector still cuts
	// the region substantially.
	sites := []geom.Vec{geom.V(9, 7), geom.V(5.1, 4), geom.V(2, 4)}
	statics := []geom.Vec{geom.V(5, 4)}
	s, err := NewState(sites, statics, geom.Rect(0, 0, 10, 8))
	if err != nil {
		t.Fatal(err)
	}
	glued := PartitionScore(s, 1)     // 0.1 m from the AP
	separated := PartitionScore(s, 2) // 3 m away
	if glued >= separated {
		t.Errorf("glued score %v not below separated %v", glued, separated)
	}
	// Out-of-range candidate scores zero.
	if got := PartitionScore(s, 99); got != 0 {
		t.Errorf("out of range score = %v", got)
	}
}

func TestGreedyPartitionDegenerateCases(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// No static APs: still returns something valid.
	s, err := NewState([]geom.Vec{geom.V(1, 1), geom.V(2, 2)}, nil, geom.Rect(0, 0, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	next, err := GreedyPartition().Next(s, rng)
	if err != nil {
		t.Fatal(err)
	}
	if next < 0 || next >= 2 {
		t.Errorf("next = %d", next)
	}
	// All visited: candidates reset to everything.
	_ = s.MarkVisited(1)
	if _, err := GreedyPartition().Next(s, rng); err != nil {
		t.Errorf("exhausted err = %v", err)
	}
}

func TestBuiltinAndByName(t *testing.T) {
	all := Builtin()
	if len(all) != 4 {
		t.Fatalf("builtin = %d", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if seen[s.Name()] {
			t.Errorf("duplicate strategy name %q", s.Name())
		}
		seen[s.Name()] = true
		got, err := ByName(s.Name())
		if err != nil || got.Name() != s.Name() {
			t.Errorf("ByName(%q) = %v, %v", s.Name(), got, err)
		}
	}
	if _, err := ByName("teleport"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestStrategiesValidateState(t *testing.T) {
	bad := &State{Sites: []geom.Vec{{}}, Visited: []bool{true}, Current: 5}
	rng := rand.New(rand.NewSource(6))
	for _, s := range []Strategy{RandomWalk(), RoundRobin(), FarthestFirst(), GreedyPartition()} {
		if _, err := s.Next(bad, rng); !errors.Is(err, ErrBadState) {
			t.Errorf("%s accepted bad state: %v", s.Name(), err)
		}
	}
}
