// Package planner implements nomadic-AP movement strategies — the paper's
// second future-work direction ("to understand the impact of moving
// patterns of nomadic APs on the overall performance", §VI). A Strategy
// decides which waypoint the nomadic AP visits next; the eval harness can
// then compare patterns under identical measurement noise.
//
// Strategies:
//
//   - RandomWalk: the paper's baseline — a uniform Markov step.
//   - RoundRobin: cycle the waypoints in order.
//   - FarthestFirst: always move to the waypoint farthest from those
//     already visited (a coverage-greedy sweep).
//   - GreedyPartition: pick the waypoint whose bisector constraints
//     against the static APs are expected to cut the current feasible
//     region most evenly — an information-driven planner that uses the
//     SP geometry itself.
package planner

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/nomloc/nomloc/internal/geom"
)

// Strategy chooses the next waypoint for a nomadic AP.
type Strategy interface {
	// Name labels the strategy in reports.
	Name() string
	// Next returns the index of the next waypoint to visit. state carries
	// the visit history and the current belief region; rng gives the
	// strategy its (seeded) randomness.
	Next(state *State, rng *rand.Rand) (int, error)
}

// State is everything a strategy may condition on.
type State struct {
	// Sites are the candidate waypoints (index 0 is home).
	Sites []geom.Vec
	// Visited flags waypoints already measured this localization session.
	Visited []bool
	// Current is the waypoint the AP occupies.
	Current int
	// StaticAPs are the fixed AP positions.
	StaticAPs []geom.Vec
	// Region is the current feasible region of the object estimate (the
	// area polygon before any constraints are known).
	Region geom.Polygon
}

// Planner errors.
var (
	ErrNoSites    = errors.New("planner: no waypoints")
	ErrBadState   = errors.New("planner: inconsistent state")
	ErrAllVisited = errors.New("planner: all waypoints visited")
)

// NewState initializes planning state for a session.
func NewState(sites, staticAPs []geom.Vec, region geom.Polygon) (*State, error) {
	if len(sites) == 0 {
		return nil, ErrNoSites
	}
	s := &State{
		Sites:     append([]geom.Vec(nil), sites...),
		Visited:   make([]bool, len(sites)),
		Current:   0,
		StaticAPs: append([]geom.Vec(nil), staticAPs...),
		Region:    region,
	}
	s.Visited[0] = true // the AP starts at home
	return s, nil
}

// Validate checks state consistency.
func (s *State) Validate() error {
	if len(s.Sites) == 0 {
		return ErrNoSites
	}
	if len(s.Visited) != len(s.Sites) {
		return fmt.Errorf("%w: %d visited flags for %d sites", ErrBadState, len(s.Visited), len(s.Sites))
	}
	if s.Current < 0 || s.Current >= len(s.Sites) {
		return fmt.Errorf("%w: current %d", ErrBadState, s.Current)
	}
	return nil
}

// MarkVisited records a move to site i.
func (s *State) MarkVisited(i int) error {
	if i < 0 || i >= len(s.Sites) {
		return fmt.Errorf("%w: site %d", ErrBadState, i)
	}
	s.Visited[i] = true
	s.Current = i
	return nil
}

// Unvisited returns the indices of waypoints not yet measured.
func (s *State) Unvisited() []int {
	var out []int
	for i, v := range s.Visited {
		if !v {
			out = append(out, i)
		}
	}
	return out
}

// ShrinkRegion intersects the belief region with a constraint set,
// tracking the planner's view of the feasible area. Empty intersections
// leave the region unchanged (the planner's belief is only a heuristic).
func (s *State) ShrinkRegion(cons []geom.HalfPlane) {
	region, ok := geom.FeasibleRegion(s.Region, cons)
	if ok {
		s.Region = region
	}
}

// randomWalk is the paper's uniform Markov step.
type randomWalk struct{}

// RandomWalk returns the uniform random-walk strategy.
func RandomWalk() Strategy { return randomWalk{} }

// Name implements Strategy.
func (randomWalk) Name() string { return "random-walk" }

// Next implements Strategy.
func (randomWalk) Next(state *State, rng *rand.Rand) (int, error) {
	if err := state.Validate(); err != nil {
		return 0, err
	}
	return rng.Intn(len(state.Sites)), nil
}

// roundRobin cycles the waypoints in index order.
type roundRobin struct{}

// RoundRobin returns the cyclic strategy.
func RoundRobin() Strategy { return roundRobin{} }

// Name implements Strategy.
func (roundRobin) Name() string { return "round-robin" }

// Next implements Strategy.
func (roundRobin) Next(state *State, _ *rand.Rand) (int, error) {
	if err := state.Validate(); err != nil {
		return 0, err
	}
	return (state.Current + 1) % len(state.Sites), nil
}

// farthestFirst greedily maximizes coverage spread.
type farthestFirst struct{}

// FarthestFirst returns the coverage-greedy strategy: move to the
// unvisited waypoint maximizing the minimum distance to every visited
// one; once all are visited, revisit the least-recently-reachable via
// round-robin.
func FarthestFirst() Strategy { return farthestFirst{} }

// Name implements Strategy.
func (farthestFirst) Name() string { return "farthest-first" }

// Next implements Strategy.
func (farthestFirst) Next(state *State, _ *rand.Rand) (int, error) {
	if err := state.Validate(); err != nil {
		return 0, err
	}
	unvisited := state.Unvisited()
	if len(unvisited) == 0 {
		return (state.Current + 1) % len(state.Sites), nil
	}
	best := unvisited[0]
	bestScore := -1.0
	for _, cand := range unvisited {
		minDist := math.Inf(1)
		for i, visited := range state.Visited {
			if !visited {
				continue
			}
			if d := state.Sites[cand].Dist(state.Sites[i]); d < minDist {
				minDist = d
			}
		}
		if minDist > bestScore {
			bestScore = minDist
			best = cand
		}
	}
	return best, nil
}

// greedyPartition is the information-driven planner.
type greedyPartition struct{}

// GreedyPartition returns the strategy that picks the waypoint whose
// proximity bisectors against the static APs cut the current belief
// region most evenly. The intuition: a constraint "closer to site L than
// AP j" removes one side of the bisector; an even cut removes ~half the
// region regardless of the judgement's direction, maximizing the
// worst-case information gain.
func GreedyPartition() Strategy { return greedyPartition{} }

// Name implements Strategy.
func (greedyPartition) Name() string { return "greedy-partition" }

// Next implements Strategy.
func (greedyPartition) Next(state *State, _ *rand.Rand) (int, error) {
	if err := state.Validate(); err != nil {
		return 0, err
	}
	cands := state.Unvisited()
	if len(cands) == 0 {
		cands = make([]int, len(state.Sites))
		for i := range cands {
			cands[i] = i
		}
	}
	if len(state.StaticAPs) == 0 {
		// No geometry to reason about: degrade to the first candidate.
		return cands[0], nil
	}
	total := state.Region.Area()
	if total <= geom.Eps {
		return cands[0], nil
	}
	best := cands[0]
	bestScore := -1.0
	for _, cand := range cands {
		score := PartitionScore(state, cand)
		if score > bestScore {
			bestScore = score
			best = cand
		}
	}
	return best, nil
}

// reliabilityScale discounts bisectors between near-coincident points: a
// waypoint right next to an AP produces an even geometric cut, but the
// corresponding PDP comparison is a near-tie (confidence ≈ ½) and carries
// little usable information.
const reliabilityScale = 2.0 // meters

// PartitionScore is GreedyPartition's objective for moving to waypoint
// cand: the sum over static APs of the smaller side of the bisector cut of
// the current belief region, discounted by the pair's expected judgement
// reliability. Exposed so tools and tests can inspect the planner's
// reasoning.
func PartitionScore(state *State, cand int) float64 {
	if cand < 0 || cand >= len(state.Sites) {
		return 0
	}
	total := state.Region.Area()
	if total <= geom.Eps {
		return 0
	}
	score := 0.0
	for _, ap := range state.StaticAPs {
		// The bisector cut if the object were judged closer to the
		// candidate site than to this static AP.
		h := geom.HalfPlaneCloserTo(state.Sites[cand], ap)
		clipped, ok := h.ClipPolygon(state.Region)
		kept := 0.0
		if ok {
			kept = clipped.Area()
		}
		// Worst-case information: the smaller side of the cut.
		cut := math.Min(kept, total-kept)
		d2 := state.Sites[cand].Dist2(ap)
		reliability := d2 / (d2 + reliabilityScale*reliabilityScale)
		score += cut * reliability
	}
	return score
}

// Builtin returns all built-in strategies.
func Builtin() []Strategy {
	return []Strategy{RandomWalk(), RoundRobin(), FarthestFirst(), GreedyPartition()}
}

// ByName looks up a built-in strategy.
func ByName(name string) (Strategy, error) {
	for _, s := range Builtin() {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("planner: unknown strategy %q", name)
}
