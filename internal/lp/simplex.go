// Package lp implements the small dense linear programming toolkit NomLoc
// uses for space-partition location estimation: a two-phase simplex solver
// with Bland's anti-cycling rule, a Chebyshev-center LP, an analytic-center
// Newton solver (the log-barrier center CVX-style interior-point methods
// return, which the paper cites), and the constraint-relaxation LP of
// Eq. 19.
//
// Problems here are tiny — a handful of coordinates and some tens of
// constraints — so the package optimizes for robustness and clarity, not
// for sparse large-scale performance.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status describes the outcome of an LP solve.
type Status int

// Solve outcomes. Optimal is deliberately non-zero so an uninitialized
// Status never reads as success.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Problem is the inequality-form linear program
//
//	minimize   Cᵀx
//	subject to A·x ≤ B
//	           x_i ≥ 0 unless Free[i]
//
// Free may be nil (all variables non-negative) or have length len(C).
type Problem struct {
	C    []float64
	A    [][]float64
	B    []float64
	Free []bool
}

// Result holds an LP solution.
type Result struct {
	Status    Status
	X         []float64
	Objective float64
	// Iterations counts simplex pivots performed across both phases.
	Iterations int
}

// Validation and solver errors.
var (
	ErrDimensionMismatch = errors.New("lp: dimension mismatch")
	ErrEmptyProblem      = errors.New("lp: empty problem")
	ErrMaxIterations     = errors.New("lp: iteration limit exceeded")
)

const (
	tol     = 1e-9
	maxIter = 100000
)

// Validate checks the problem dimensions.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return ErrEmptyProblem
	}
	if len(p.A) != len(p.B) {
		return fmt.Errorf("%w: %d constraint rows vs %d rhs entries",
			ErrDimensionMismatch, len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("%w: row %d has %d coefficients, want %d",
				ErrDimensionMismatch, i, len(row), n)
		}
	}
	if p.Free != nil && len(p.Free) != n {
		return fmt.Errorf("%w: Free has length %d, want %d",
			ErrDimensionMismatch, len(p.Free), n)
	}
	return nil
}

// Workspace holds the scratch buffers of the simplex solver so batch
// callers (the localizer's per-solve hot path) can reuse them across
// solves instead of reallocating tableaus per call. The zero value is
// ready to use. A Workspace is NOT safe for concurrent use: give each
// worker its own.
type Workspace struct {
	pos, neg  []int
	splitC    []float64
	splitFlat []float64
	splitRows [][]float64
	splitB    []float64
	flat      []float64
	rows      [][]float64
	basis     []int
	phase1    []float64
	cFull     []float64
	reduced   []float64

	// Problem-building scratch for the center/relaxation wrappers.
	probC    []float64
	probFree []bool
	probFlat []float64
	probRows [][]float64

	// iters accumulates simplex pivots across both phases of one Solve.
	iters int
}

// growF returns buf resized to n zeroed entries, reallocating only when
// capacity is insufficient.
func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// growI is growF for int slices (entries left unzeroed: callers assign
// every element).
func growI(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// growFree returns the workspace's free-variable marker buffer resized to
// n false entries.
func (ws *Workspace) growFree(n int) []bool {
	if cap(ws.probFree) < n {
		ws.probFree = make([]bool, n)
		return ws.probFree
	}
	ws.probFree = ws.probFree[:n]
	for i := range ws.probFree {
		ws.probFree[i] = false
	}
	return ws.probFree
}

// growRows reslices a flat backing array into m rows of width w, reusing
// storage across solves. The flat storage is zeroed.
func growRows(flat []float64, rows [][]float64, m, w int) ([]float64, [][]float64) {
	flat = growF(flat, m*w)
	if cap(rows) < m {
		rows = make([][]float64, m)
	}
	rows = rows[:m]
	for i := 0; i < m; i++ {
		rows[i] = flat[i*w : (i+1)*w]
	}
	return flat, rows
}

// Solve runs the two-phase simplex method on the problem. Free variables
// are split internally into differences of non-negative pairs. On
// Infeasible and Unbounded outcomes X is nil.
//
//nomloc:effect(globalread)
func Solve(p *Problem) (*Result, error) {
	var ws Workspace
	return ws.Solve(p)
}

// Solve is the workspace-backed variant of the package-level Solve: all
// intermediate storage (split columns, tableau, basis) comes from the
// workspace. Result.X is freshly allocated and stays valid after further
// solves.
//
//nomloc:effect(globalread)
func (ws *Workspace) Solve(p *Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ws.iters = 0
	n := len(p.C)
	m := len(p.A)

	// Map original variables to split columns: variable j occupies column
	// pos[j]; free variables get an extra negative-part column neg[j].
	ws.pos = growI(ws.pos, n)
	ws.neg = growI(ws.neg, n)
	pos, neg := ws.pos, ws.neg
	cols := 0
	for j := 0; j < n; j++ {
		pos[j] = cols
		cols++
		if p.Free != nil && p.Free[j] {
			neg[j] = cols
			cols++
		} else {
			neg[j] = -1
		}
	}

	ws.splitC = growF(ws.splitC, cols)
	ws.splitB = growF(ws.splitB, m)
	ws.splitFlat, ws.splitRows = growRows(ws.splitFlat, ws.splitRows, m, cols)
	c, a, b := ws.splitC, ws.splitRows, ws.splitB
	for j := 0; j < n; j++ {
		c[pos[j]] = p.C[j]
		if neg[j] >= 0 {
			c[neg[j]] = -p.C[j]
		}
	}
	for i := 0; i < m; i++ {
		row := a[i]
		for j := 0; j < n; j++ {
			row[pos[j]] = p.A[i][j]
			if neg[j] >= 0 {
				row[neg[j]] = -p.A[i][j]
			}
		}
		b[i] = p.B[i]
	}

	xSplit, status, err := ws.solveStandard(c, a, b)
	if err != nil {
		return nil, err
	}
	res := &Result{Status: status, Iterations: ws.iters}
	if status != Optimal {
		return res, nil
	}
	res.X = make([]float64, n)
	for j := 0; j < n; j++ {
		res.X[j] = xSplit[pos[j]]
		if neg[j] >= 0 {
			res.X[j] -= xSplit[neg[j]]
		}
	}
	for j := 0; j < n; j++ {
		res.Objective += p.C[j] * res.X[j]
	}
	return res, nil
}

// solveStandard solves min cᵀx s.t. a·x ≤ b, x ≥ 0 with a two-phase dense
// tableau simplex. It returns the primal solution over the given columns;
// the returned slice aliases workspace storage and is only valid until
// the next solve.
func (ws *Workspace) solveStandard(c []float64, a [][]float64, b []float64) ([]float64, Status, error) {
	m := len(a)
	n := len(c)
	if m == 0 {
		// No constraints: optimum is 0 unless some cost is negative, in
		// which case the problem is unbounded below.
		for _, cj := range c {
			if cj < -tol {
				return nil, Unbounded, nil
			}
		}
		return make([]float64, n), Optimal, nil
	}

	// Slack columns s_i turn rows into equalities. Rows with negative RHS
	// are negated (flipping the slack sign) and given artificial columns.
	nArt := 0
	for i := range b {
		if b[i] < -tol {
			nArt++
		}
	}
	total := n + m + nArt

	// Tableau: m rows of [columns | rhs], plus we track the basis.
	ws.flat, ws.rows = growRows(ws.flat, ws.rows, m, total+1)
	ws.basis = growI(ws.basis, m)
	t := ws.rows
	basis := ws.basis
	artCol := n + m
	for i := 0; i < m; i++ {
		row := t[i]
		sign := 1.0
		if b[i] < -tol {
			sign = -1.0
		}
		for j := 0; j < n; j++ {
			row[j] = sign * a[i][j]
		}
		row[n+i] = sign // slack (negated when the row was flipped)
		row[total] = sign * b[i]
		if sign < 0 {
			row[artCol] = 1
			basis[i] = artCol
			artCol++
		} else {
			basis[i] = n + i
		}
	}

	if nArt > 0 {
		// Phase 1: minimize the sum of artificials.
		ws.phase1 = growF(ws.phase1, total)
		phase1 := ws.phase1
		for j := n + m; j < total; j++ {
			phase1[j] = 1
		}
		obj, status, err := ws.runSimplex(t, basis, phase1, total, total)
		if err != nil {
			return nil, 0, err
		}
		if status == Unbounded {
			// Phase-1 objective is bounded below by 0; unbounded means a
			// numerical breakdown.
			return nil, 0, fmt.Errorf("lp: phase 1 reported unbounded")
		}
		if obj > 1e-7 {
			return nil, Infeasible, nil
		}
		// Drive any artificials still in the basis out (degenerate rows).
		for i := 0; i < m; i++ {
			if basis[i] < n+m {
				continue
			}
			pivoted := false
			for j := 0; j < n+m; j++ {
				if math.Abs(t[i][j]) > tol {
					pivot(t, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it so it can never constrain.
				for j := range t[i] {
					t[i][j] = 0
				}
				basis[i] = -1
			}
		}
	}

	// Phase 2 on the real objective, with artificial columns barred.
	ws.cFull = growF(ws.cFull, total)
	cFull := ws.cFull
	copy(cFull, c)
	_, status, err := ws.runSimplex(t, basis, cFull, n+m, total)
	if err != nil {
		return nil, 0, err
	}
	if status == Unbounded {
		return nil, Unbounded, nil
	}

	x := growF(c, n) // c is dead past this point; reuse it for the solution
	for i := 0; i < m; i++ {
		if basis[i] >= 0 && basis[i] < n {
			x[basis[i]] = t[i][total]
		}
	}
	return x, Optimal, nil
}

// runSimplex performs primal simplex pivots on the tableau until the
// objective cObj cannot improve. Only columns < allowedCols may enter the
// basis. It returns the achieved objective value.
func (ws *Workspace) runSimplex(t [][]float64, basis []int, cObj []float64, allowedCols, total int) (float64, Status, error) {
	m := len(t)

	// Reduced costs: z[j] = c[j] − c_Bᵀ·B⁻¹·A_j, maintained as an explicit
	// row recomputed from the basis to stay consistent after phase swaps.
	ws.reduced = growF(ws.reduced, total)
	reduced := ws.reduced
	objVal := 0.0
	recompute := func() {
		copy(reduced, cObj)
		objVal = 0
		for i := 0; i < m; i++ {
			bi := basis[i]
			if bi < 0 {
				continue
			}
			cb := cObj[bi]
			if cb == 0 {
				continue
			}
			for j := 0; j < total; j++ {
				reduced[j] -= cb * t[i][j]
			}
			objVal += cb * t[i][total]
		}
	}
	recompute()

	for iter := 0; iter < maxIter; iter++ {
		// Bland's rule: the lowest-index column with negative reduced cost.
		enter := -1
		for j := 0; j < allowedCols; j++ {
			if reduced[j] < -tol {
				enter = j
				break
			}
		}
		if enter == -1 {
			return objVal, Optimal, nil
		}
		// Ratio test; ties broken by the lowest basis index (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if basis[i] < 0 {
				continue
			}
			coef := t[i][enter]
			if coef <= tol {
				continue
			}
			ratio := t[i][total] / coef
			if ratio < bestRatio-tol ||
				(ratio < bestRatio+tol && (leave == -1 || basis[i] < basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave == -1 {
			return objVal, Unbounded, nil
		}
		pivot(t, basis, leave, enter)
		ws.iters++
		recompute()
	}
	return 0, 0, ErrMaxIterations
}

// pivot makes column enter basic in row leave via Gauss–Jordan elimination.
func pivot(t [][]float64, basis []int, leave, enter int) {
	row := t[leave]
	p := row[enter]
	inv := 1 / p
	for j := range row {
		row[j] *= inv
	}
	row[enter] = 1 // exact
	for i := range t {
		if i == leave {
			continue
		}
		factor := t[i][enter]
		if factor == 0 {
			continue
		}
		for j := range t[i] {
			t[i][j] -= factor * row[j]
		}
		t[i][enter] = 0 // exact
	}
	basis[leave] = enter
}
