package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// boxSystem returns the constraint system 0 ≤ x ≤ w, 0 ≤ y ≤ h.
func boxSystem(w, h float64) ([][]float64, []float64) {
	a := [][]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	b := []float64{w, 0, h, 0}
	return a, b
}

func TestChebyshevCenterSquare(t *testing.T) {
	a, b := boxSystem(10, 10)
	center, r, err := ChebyshevCenter(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(center[0], 5, 1e-6) || !approxEq(center[1], 5, 1e-6) {
		t.Errorf("center = %v, want (5, 5)", center)
	}
	if !approxEq(r, 5, 1e-6) {
		t.Errorf("radius = %v, want 5", r)
	}
}

func TestChebyshevCenterRectangle(t *testing.T) {
	a, b := boxSystem(20, 6)
	center, r, err := ChebyshevCenter(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(r, 3, 1e-6) {
		t.Errorf("radius = %v, want 3", r)
	}
	if !approxEq(center[1], 3, 1e-6) {
		t.Errorf("center y = %v, want 3", center[1])
	}
	// x can be anywhere in [3, 17]; it must at least be feasible.
	if center[0] < 3-1e-6 || center[0] > 17+1e-6 {
		t.Errorf("center x = %v outside [3, 17]", center[0])
	}
}

func TestChebyshevCenterTriangle(t *testing.T) {
	// Triangle x ≥ 0, y ≥ 0, x + y ≤ 2: incircle radius 2/(2+√2).
	a := [][]float64{{-1, 0}, {0, -1}, {1, 1}}
	b := []float64{0, 0, 2}
	_, r, err := ChebyshevCenter(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 / (2 + math.Sqrt2)
	if !approxEq(r, want, 1e-6) {
		t.Errorf("radius = %v, want %v", r, want)
	}
}

func TestChebyshevCenterEmpty(t *testing.T) {
	a := [][]float64{{1, 0}, {-1, 0}}
	b := []float64{1, -3} // x ≤ 1 and x ≥ 3
	if _, _, err := ChebyshevCenter(a, b); !errors.Is(err, ErrEmptyRegion) {
		t.Errorf("err = %v, want ErrEmptyRegion", err)
	}
}

func TestChebyshevCenterUnbounded(t *testing.T) {
	a := [][]float64{{-1, 0}} // x ≥ 0 only
	b := []float64{0}
	if _, _, err := ChebyshevCenter(a, b); !errors.Is(err, ErrUnboundedRegion) {
		t.Errorf("err = %v, want ErrUnboundedRegion", err)
	}
}

func TestChebyshevCenterValidation(t *testing.T) {
	if _, _, err := ChebyshevCenter(nil, nil); !errors.Is(err, ErrNoConstraints) {
		t.Errorf("err = %v, want ErrNoConstraints", err)
	}
	if _, _, err := ChebyshevCenter([][]float64{{1, 0}, {1}}, []float64{1, 1}); !errors.Is(err, ErrBadConstraintDim) {
		t.Errorf("err = %v, want ErrBadConstraintDim", err)
	}
	if _, _, err := ChebyshevCenter([][]float64{{1, 0}}, []float64{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestAnalyticCenterSquare(t *testing.T) {
	a, b := boxSystem(10, 10)
	got, err := AnalyticCenter(a, b, []float64{1, 9})
	if err != nil {
		t.Fatal(err)
	}
	// The analytic center of a symmetric box is its midpoint.
	if !approxEq(got[0], 5, 1e-6) || !approxEq(got[1], 5, 1e-6) {
		t.Errorf("analytic center = %v, want (5, 5)", got)
	}
}

func TestAnalyticCenterTriangle(t *testing.T) {
	// x ≥ 0, y ≥ 0, x + y ≤ 3: the analytic center equalizes slack
	// products; by symmetry x = y and maximizing x·y·(3−2x) gives x = 1.
	a := [][]float64{{-1, 0}, {0, -1}, {1, 1}}
	b := []float64{0, 0, 3}
	got, err := AnalyticCenter(a, b, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(got[0], 1, 1e-5) || !approxEq(got[1], 1, 1e-5) {
		t.Errorf("analytic center = %v, want (1, 1)", got)
	}
}

func TestAnalyticCenterNotStrictlyFeasible(t *testing.T) {
	a, b := boxSystem(10, 10)
	if _, err := AnalyticCenter(a, b, []float64{0, 5}); !errors.Is(err, ErrNotStrictlyFeas) {
		t.Errorf("on-boundary start: err = %v", err)
	}
	if _, err := AnalyticCenter(a, b, []float64{-1, 5}); !errors.Is(err, ErrNotStrictlyFeas) {
		t.Errorf("outside start: err = %v", err)
	}
}

func TestAnalyticCenterBadDims(t *testing.T) {
	a, b := boxSystem(10, 10)
	if _, err := AnalyticCenter(a, b, []float64{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v", err)
	}
}

func TestAnalyticCenterStartInvariance(t *testing.T) {
	// Different strictly feasible starts must converge to the same center.
	a := [][]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}}
	b := []float64{8, 0, 8, 0, 12}
	c1, err := AnalyticCenter(a, b, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := AnalyticCenter(a, b, []float64{6, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(c1[0], c2[0], 1e-5) || !approxEq(c1[1], c2[1], 1e-5) {
		t.Errorf("centers differ: %v vs %v", c1, c2)
	}
}

func TestRelaxedSolveFeasibleCase(t *testing.T) {
	// A feasible system needs no relaxation: cost 0, all t = 0 (paper
	// claim: Eq. 19 and Eq. 16 coincide when Eq. 16 is feasible).
	a, b := boxSystem(10, 10)
	w := []float64{1, 1, 1, 1}
	rel, err := RelaxedSolve(a, b, w)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(rel.Cost, 0, 1e-8) {
		t.Errorf("cost = %v, want 0", rel.Cost)
	}
	for i, ti := range rel.T {
		if ti > 1e-8 {
			t.Errorf("t[%d] = %v, want 0", i, ti)
		}
	}
	// z must satisfy the original system.
	for i := range a {
		dot := a[i][0]*rel.Z[0] + a[i][1]*rel.Z[1]
		if dot > b[i]+1e-6 {
			t.Errorf("constraint %d violated by %v", i, dot-b[i])
		}
	}
}

func TestRelaxedSolveInfeasibleCase(t *testing.T) {
	// x ≤ 1 (weight 10) against x ≥ 3 (weight 1): the cheap constraint
	// should be the one broken, by exactly 2.
	a := [][]float64{{1}, {-1}}
	b := []float64{1, -3}
	rel, err := RelaxedSolve(a, b, []float64{10, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rel.T[0] > 1e-8 {
		t.Errorf("expensive constraint relaxed by %v", rel.T[0])
	}
	if !approxEq(rel.T[1], 2, 1e-6) {
		t.Errorf("cheap constraint relaxed by %v, want 2", rel.T[1])
	}
	if !approxEq(rel.Cost, 2, 1e-6) {
		t.Errorf("cost = %v, want 2", rel.Cost)
	}
	if !approxEq(rel.Z[0], 1, 1e-6) {
		t.Errorf("z = %v, want 1 (the kept constraint binds)", rel.Z[0])
	}
}

func TestRelaxedSolveWeightsFlipPreference(t *testing.T) {
	a := [][]float64{{1}, {-1}}
	b := []float64{1, -3}
	rel, err := RelaxedSolve(a, b, []float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if rel.T[1] > 1e-8 {
		t.Errorf("expensive constraint relaxed by %v", rel.T[1])
	}
	if !approxEq(rel.T[0], 2, 1e-6) {
		t.Errorf("cheap constraint relaxed by %v, want 2", rel.T[0])
	}
}

func TestRelaxedSolveValidation(t *testing.T) {
	a, b := boxSystem(1, 1)
	if _, err := RelaxedSolve(a, b, []float64{1, 1}); !errors.Is(err, ErrWeightDimension) {
		t.Errorf("short weights err = %v", err)
	}
	if _, err := RelaxedSolve(a, b, []float64{1, 1, 0, 1}); !errors.Is(err, ErrWeightDimension) {
		t.Errorf("zero weight err = %v", err)
	}
	if _, err := RelaxedSolve(a, b, []float64{1, 1, -2, 1}); !errors.Is(err, ErrWeightDimension) {
		t.Errorf("negative weight err = %v", err)
	}
	if _, err := RelaxedSolve(nil, nil, nil); !errors.Is(err, ErrNoConstraints) {
		t.Errorf("no constraints err = %v", err)
	}
}

func TestRelaxedSolveRandomConsistency(t *testing.T) {
	// For random systems: relaxing by T must always make the system
	// feasible at Z, and cost must equal Σ wᵢtᵢ.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		m := 3 + rng.Intn(8)
		a := make([][]float64, m)
		b := make([]float64, m)
		w := make([]float64, m)
		for i := 0; i < m; i++ {
			a[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			b[i] = rng.NormFloat64() * 3
			w[i] = 0.5 + rng.Float64()
		}
		rel, err := RelaxedSolve(a, b, w)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var cost float64
		for i := 0; i < m; i++ {
			dot := a[i][0]*rel.Z[0] + a[i][1]*rel.Z[1]
			if dot > b[i]+rel.T[i]+1e-6 {
				t.Fatalf("trial %d: relaxed constraint %d still violated", trial, i)
			}
			cost += w[i] * rel.T[i]
		}
		if !approxEq(cost, rel.Cost, 1e-6*(1+cost)) {
			t.Fatalf("trial %d: cost mismatch %v vs %v", trial, cost, rel.Cost)
		}
	}
}

func TestSolveLinear(t *testing.T) {
	h := [][]float64{{2, 1}, {1, 3}}
	g := []float64{5, 10}
	x, err := solveLinear(h, g)
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
	if !approxEq(x[0], 1, 1e-9) || !approxEq(x[1], 3, 1e-9) {
		t.Errorf("x = %v, want (1, 3)", x)
	}
	if _, err := solveLinear([][]float64{{1, 2}, {2, 4}}, []float64{1, 1}); !errors.Is(err, ErrSingularHessian) {
		t.Errorf("singular err = %v", err)
	}
}

func TestChebyshevInsideAnalyticRegion(t *testing.T) {
	// Pipeline consistency: the Chebyshev center can seed AnalyticCenter.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		// Random bounded region: a box plus random cuts through it.
		a, b := boxSystem(10, 10)
		extra := rng.Intn(4)
		for k := 0; k < extra; k++ {
			row := []float64{rng.NormFloat64(), rng.NormFloat64()}
			// Cut passing near the middle so the region stays non-empty.
			b = append(b, row[0]*5+row[1]*5+1+rng.Float64()*3)
			a = append(a, row)
		}
		center, r, err := ChebyshevCenter(a, b)
		if err != nil {
			t.Fatalf("trial %d: chebyshev: %v", trial, err)
		}
		if r <= 0 {
			continue // empty interior: nothing to seed
		}
		ac, err := AnalyticCenter(a, b, center)
		if err != nil {
			t.Fatalf("trial %d: analytic: %v", trial, err)
		}
		for i := range a {
			dot := a[i][0]*ac[0] + a[i][1]*ac[1]
			if dot > b[i]-1e-9 {
				t.Fatalf("trial %d: analytic center not strictly interior", trial)
			}
		}
	}
}

func BenchmarkChebyshevCenter(b *testing.B) {
	a, bb := boxSystem(10, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ChebyshevCenter(a, bb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyticCenter(b *testing.B) {
	a, bb := boxSystem(10, 10)
	start := []float64{2, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyticCenter(a, bb, start); err != nil {
			b.Fatal(err)
		}
	}
}
