package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomRelaxation builds a random bounded relaxation instance: a box
// plus a few random cuts, with positive weights.
func randomRelaxation(rng *rand.Rand) (a [][]float64, b, w []float64) {
	m := 4 + rng.Intn(12)
	a = [][]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	b = []float64{10, 10, 10, 10}
	w = []float64{100, 100, 100, 100}
	for i := 0; i < m; i++ {
		a = append(a, []float64{rng.NormFloat64(), rng.NormFloat64()})
		b = append(b, rng.NormFloat64()*5)
		w = append(w, 0.5+rng.Float64()/2)
	}
	return a, b, w
}

// TestWorkspaceMatchesFreshSolves locks in the buffer-reuse contract: a
// workspace recycled across many solves of varying shapes must return
// bit-identical results to one-shot solves, and results returned earlier
// must not be clobbered by later solves.
func TestWorkspaceMatchesFreshSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ws Workspace
	type kept struct {
		z    []float64
		cost float64
	}
	var held []kept
	var fresh []kept
	for trial := 0; trial < 100; trial++ {
		a, b, w := randomRelaxation(rng)

		relWS, err := ws.RelaxedSolve(a, b, w)
		if err != nil {
			t.Fatalf("trial %d: workspace solve: %v", trial, err)
		}
		relFresh, err := RelaxedSolve(a, b, w)
		if err != nil {
			t.Fatalf("trial %d: fresh solve: %v", trial, err)
		}
		if relWS.Cost != relFresh.Cost {
			t.Fatalf("trial %d: cost %v (workspace) vs %v (fresh)", trial, relWS.Cost, relFresh.Cost)
		}
		for i := range relWS.Z {
			if relWS.Z[i] != relFresh.Z[i] {
				t.Fatalf("trial %d: Z[%d] %v vs %v", trial, i, relWS.Z[i], relFresh.Z[i])
			}
		}
		for i := range relWS.T {
			if relWS.T[i] != relFresh.T[i] {
				t.Fatalf("trial %d: T[%d] %v vs %v", trial, i, relWS.T[i], relFresh.T[i])
			}
		}
		held = append(held, kept{z: relWS.Z, cost: relWS.Cost})
		fresh = append(fresh, kept{z: relFresh.Z, cost: relFresh.Cost})

		cWS, rWS, errWS := ws.ChebyshevCenter(a, b)
		cFresh, rFresh, errFresh := ChebyshevCenter(a, b)
		if (errWS == nil) != (errFresh == nil) {
			t.Fatalf("trial %d: chebyshev err %v vs %v", trial, errWS, errFresh)
		}
		if errWS == nil {
			if rWS != rFresh {
				t.Fatalf("trial %d: radius %v vs %v", trial, rWS, rFresh)
			}
			for i := range cWS {
				if cWS[i] != cFresh[i] {
					t.Fatalf("trial %d: center[%d] %v vs %v", trial, i, cWS[i], cFresh[i])
				}
			}
		}
	}
	// Early results must still equal their fresh twins after 100 reuses.
	for k := range held {
		if held[k].cost != fresh[k].cost {
			t.Fatalf("solve %d: retained cost clobbered", k)
		}
		for i := range held[k].z {
			if held[k].z[i] != fresh[k].z[i] {
				t.Fatalf("solve %d: retained Z clobbered", k)
			}
		}
	}
}

// TestWorkspaceSolveStatuses checks that infeasible and unbounded
// outcomes survive the workspace path.
func TestWorkspaceSolveStatuses(t *testing.T) {
	var ws Workspace

	// Infeasible: x ≤ −1, x ≥ 0.
	res, err := ws.Solve(&Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{-1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("got %v, want infeasible", res.Status)
	}

	// Unbounded: minimize −x with no constraints binding x.
	res, err = ws.Solve(&Problem{C: []float64{-1}, A: [][]float64{{0}}, B: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Fatalf("got %v, want unbounded", res.Status)
	}

	// A plain optimal solve right after the degenerate ones.
	res, err = ws.Solve(&Problem{C: []float64{1, 1}, A: [][]float64{{-1, 0}, {0, -1}}, B: []float64{-2, -3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("got %v, want optimal", res.Status)
	}
	if math.Abs(res.X[0]-2) > 1e-9 || math.Abs(res.X[1]-3) > 1e-9 {
		t.Fatalf("got %v, want [2 3]", res.X)
	}
}
