package lp

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForce2D solves min cᵀx s.t. a·x ≤ b over free x ∈ R² by enumerating
// all candidate vertices (intersections of constraint-boundary pairs) and
// picking the feasible one with the lowest objective. It is exponential-ish
// and only correct when the optimum is attained at a vertex (bounded LP
// with ≥ 2 non-parallel active constraints), which the generator below
// guarantees by boxing the feasible set.
func bruteForce2D(c []float64, a [][]float64, b []float64) (best float64, feasible bool) {
	const tol = 1e-7
	m := len(a)
	best = math.Inf(1)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			det := a[i][0]*a[j][1] - a[i][1]*a[j][0]
			if math.Abs(det) < 1e-12 {
				continue
			}
			x := (b[i]*a[j][1] - a[i][1]*b[j]) / det
			y := (a[i][0]*b[j] - b[i]*a[j][0]) / det
			ok := true
			for k := 0; k < m; k++ {
				if a[k][0]*x+a[k][1]*y > b[k]+tol {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			feasible = true
			if v := c[0]*x + c[1]*y; v < best {
				best = v
			}
		}
	}
	return best, feasible
}

// TestSimplexMatchesBruteForce2D fuzzes random boxed 2-D LPs and checks
// the simplex optimum against exhaustive vertex enumeration.
func TestSimplexMatchesBruteForce2D(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < 500; trial++ {
		// A box keeps every instance bounded; extra random cuts create
		// interesting geometry (sometimes emptying the region).
		a := [][]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
		b := []float64{10, 10, 10, 10}
		extra := rng.Intn(6)
		for k := 0; k < extra; k++ {
			a = append(a, []float64{rng.NormFloat64(), rng.NormFloat64()})
			b = append(b, rng.NormFloat64()*8)
		}
		c := []float64{rng.NormFloat64(), rng.NormFloat64()}

		want, feasible := bruteForce2D(c, a, b)

		res, err := Solve(&Problem{C: c, A: a, B: b, Free: []bool{true, true}})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !feasible {
			if res.Status == Optimal {
				// The brute force only inspects vertices; a region that is
				// a single point or a sliver can be missed by its
				// tolerance. Verify the simplex answer is truly feasible
				// before calling it a disagreement.
				for k := range a {
					if a[k][0]*res.X[0]+a[k][1]*res.X[1] > b[k]+1e-6 {
						t.Fatalf("trial %d: simplex claims feasible but violates constraint %d", trial, k)
					}
				}
			}
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: simplex says %v, brute force found optimum %v", trial, res.Status, want)
		}
		if math.Abs(res.Objective-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d: simplex %v vs brute force %v", trial, res.Objective, want)
		}
	}
}

// TestChebyshevMatchesBruteForce cross-checks the Chebyshev-center radius
// against a brute-force grid search.
func TestChebyshevMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(159))
	for trial := 0; trial < 30; trial++ {
		a := [][]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
		b := []float64{8, 0, 6, 0} // [0,8]×[0,6]
		for k := 0; k < rng.Intn(3); k++ {
			row := []float64{rng.NormFloat64(), rng.NormFloat64()}
			// Keep the cut loose enough that some interior survives.
			b = append(b, row[0]*4+row[1]*3+2+rng.Float64()*2)
			a = append(a, row)
		}
		_, wantR, err := ChebyshevCenter(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Grid search the max-min-slack point.
		bestR := math.Inf(-1)
		for x := 0.0; x <= 8; x += 0.05 {
			for y := 0.0; y <= 6; y += 0.05 {
				r := math.Inf(1)
				for k := range a {
					norm := math.Hypot(a[k][0], a[k][1])
					if norm < 1e-12 {
						continue
					}
					slack := (b[k] - a[k][0]*x - a[k][1]*y) / norm
					if slack < r {
						r = slack
					}
				}
				if r > bestR {
					bestR = r
				}
			}
		}
		// The grid is coarse; allow its resolution as tolerance.
		if math.Abs(wantR-bestR) > 0.08 {
			t.Errorf("trial %d: LP radius %v vs grid %v", trial, wantR, bestR)
		}
	}
}
