package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(&Problem{}); !errors.Is(err, ErrEmptyProblem) {
		t.Errorf("empty problem err = %v", err)
	}
	if _, err := Solve(&Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("bad row err = %v", err)
	}
	if _, err := Solve(&Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("rhs mismatch err = %v", err)
	}
	if _, err := Solve(&Problem{C: []float64{1}, Free: []bool{true, false}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("free mismatch err = %v", err)
	}
}

func TestSolveSimpleMax(t *testing.T) {
	// max x + y s.t. x ≤ 4, y ≤ 3, x+y ≤ 5, x,y ≥ 0 → optimum 5.
	res, err := Solve(&Problem{
		C: []float64{-1, -1},
		A: [][]float64{{1, 0}, {0, 1}, {1, 1}},
		B: []float64{4, 3, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approxEq(res.Objective, -5, 1e-8) {
		t.Errorf("objective = %v, want -5", res.Objective)
	}
	if !approxEq(res.X[0]+res.X[1], 5, 1e-8) {
		t.Errorf("x+y = %v, want 5", res.X[0]+res.X[1])
	}
}

func TestSolveClassicProduction(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, obj=36.
	res, err := Solve(&Problem{
		C: []float64{-3, -5},
		A: [][]float64{{1, 0}, {0, 2}, {3, 2}},
		B: []float64{4, 12, 18},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approxEq(res.X[0], 2, 1e-8) || !approxEq(res.X[1], 6, 1e-8) {
		t.Errorf("x = %v, want (2, 6)", res.X)
	}
	if !approxEq(res.Objective, -36, 1e-8) {
		t.Errorf("objective = %v, want -36", res.Objective)
	}
}

func TestSolveNeedsPhase1(t *testing.T) {
	// min x + y s.t. x + y ≥ 4 (i.e. −x−y ≤ −4), x ≤ 10, y ≤ 10 → 4.
	res, err := Solve(&Problem{
		C: []float64{1, 1},
		A: [][]float64{{-1, -1}, {1, 0}, {0, 1}},
		B: []float64{-4, 10, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approxEq(res.Objective, 4, 1e-8) {
		t.Errorf("objective = %v, want 4", res.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 3 simultaneously.
	res, err := Solve(&Problem{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{1, -3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want Infeasible", res.Status)
	}
	if res.X != nil {
		t.Error("infeasible result should have nil X")
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min −x with only x ≥ 0: unbounded below.
	res, err := Solve(&Problem{
		C: []float64{-1},
		A: [][]float64{{-1}},
		B: []float64{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Errorf("status = %v, want Unbounded", res.Status)
	}
}

func TestSolveUnboundedNoConstraints(t *testing.T) {
	res, err := Solve(&Problem{C: []float64{-1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Errorf("status = %v, want Unbounded", res.Status)
	}
	// Non-negative costs with no constraints: optimum at the origin.
	res, err = Solve(&Problem{C: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || res.Objective != 0 {
		t.Errorf("status = %v obj = %v, want optimal 0", res.Status, res.Objective)
	}
}

func TestSolveFreeVariables(t *testing.T) {
	// min x with x free and x ≥ −7 (−x ≤ 7): optimum −7.
	res, err := Solve(&Problem{
		C:    []float64{1},
		A:    [][]float64{{-1}},
		B:    []float64{7},
		Free: []bool{true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approxEq(res.X[0], -7, 1e-8) {
		t.Errorf("x = %v, want -7", res.X[0])
	}
}

func TestSolveMixedFreeAndNonneg(t *testing.T) {
	// min x + y, x free, y ≥ 0, s.t. x ≥ −2 (−x ≤ 2), x + y ≥ 1.
	res, err := Solve(&Problem{
		C:    []float64{1, 1},
		A:    [][]float64{{-1, 0}, {-1, -1}},
		B:    []float64{2, -1},
		Free: []bool{true, false},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	// The optimum value is 1, achieved along the whole face x + y = 1
	// (any vertex on it is a valid answer).
	if !approxEq(res.Objective, 1, 1e-8) {
		t.Errorf("objective = %v, want 1", res.Objective)
	}
	if res.X[0] < -2-1e-8 || res.X[1] < -1e-8 || res.X[0]+res.X[1] < 1-1e-8 {
		t.Errorf("x = %v not feasible", res.X)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// A degenerate vertex (three constraints through one point in 2-D)
	// exercises Bland's anti-cycling rule.
	res, err := Solve(&Problem{
		C: []float64{-1, -1},
		A: [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}},
		B: []float64{2, 2, 4, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approxEq(res.Objective, -4, 1e-8) {
		t.Errorf("objective = %v, want -4", res.Objective)
	}
}

func TestSolveRedundantEqualityLikeRows(t *testing.T) {
	// x ≥ 3 and x ≤ 3 pin x; a duplicated row adds degeneracy.
	res, err := Solve(&Problem{
		C: []float64{1},
		A: [][]float64{{1}, {-1}, {-1}},
		B: []float64{3, -3, -3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !approxEq(res.X[0], 3, 1e-8) {
		t.Errorf("res = %+v, want x=3", res)
	}
}

func TestSolveSolutionSatisfiesConstraints(t *testing.T) {
	// Every optimal answer must be primal feasible.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(3)
		m := 1 + rng.Intn(6)
		p := &Problem{
			C:    make([]float64, n),
			A:    make([][]float64, m),
			B:    make([]float64, m),
			Free: make([]bool, n),
		}
		for j := 0; j < n; j++ {
			p.C[j] = rng.NormFloat64()
			p.Free[j] = rng.Intn(2) == 0
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			p.A[i] = row
			p.B[i] = rng.NormFloat64() * 5
		}
		res, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Status != Optimal {
			continue
		}
		for i := 0; i < m; i++ {
			dot := 0.0
			for j := 0; j < n; j++ {
				dot += p.A[i][j] * res.X[j]
			}
			if dot > p.B[i]+1e-6 {
				t.Fatalf("trial %d: constraint %d violated: %v > %v", trial, i, dot, p.B[i])
			}
		}
		for j := 0; j < n; j++ {
			if !p.Free[j] && res.X[j] < -1e-8 {
				t.Fatalf("trial %d: nonneg var %d = %v", trial, j, res.X[j])
			}
		}
	}
}

func TestPropBoxLPOptimum(t *testing.T) {
	// min cᵀx over the box 0 ≤ x ≤ u has the closed-form optimum
	// Σ min(c_i, 0)·u_i achieved at x_i = u_i where c_i < 0.
	f := func(c1, c2, u1Raw, u2Raw float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(x, 50)
		}
		c := []float64{clamp(c1), clamp(c2)}
		u := []float64{math.Abs(clamp(u1Raw)) + 1, math.Abs(clamp(u2Raw)) + 1}
		res, err := Solve(&Problem{
			C: c,
			A: [][]float64{{1, 0}, {0, 1}},
			B: u,
		})
		if err != nil || res.Status != Optimal {
			return false
		}
		want := math.Min(c[0], 0)*u[0] + math.Min(c[1], 0)*u[1]
		return approxEq(res.Objective, want, 1e-6*(1+math.Abs(want)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" {
		t.Error("Status.String mismatch")
	}
	if Status(0).String() != "status(0)" {
		t.Error("zero Status should not read as success")
	}
}

func BenchmarkSolveRelaxationSized(b *testing.B) {
	// A problem shaped like NomLoc's relaxation LP: 2 free coords + 40
	// relaxation variables, 40 rows.
	rng := rand.New(rand.NewSource(9))
	const m = 40
	n := 2 + m
	p := &Problem{
		C:    make([]float64, n),
		A:    make([][]float64, m),
		B:    make([]float64, m),
		Free: make([]bool, n),
	}
	p.Free[0], p.Free[1] = true, true
	for i := 0; i < m; i++ {
		p.C[2+i] = 0.5 + rng.Float64()
		row := make([]float64, n)
		row[0], row[1] = rng.NormFloat64(), rng.NormFloat64()
		row[2+i] = -1
		p.A[i] = row
		p.B[i] = rng.NormFloat64() * 10
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
