package lp

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the center solvers.
var (
	ErrEmptyRegion      = errors.New("lp: empty feasible region")
	ErrUnboundedRegion  = errors.New("lp: unbounded feasible region")
	ErrNotStrictlyFeas  = errors.New("lp: start point not strictly feasible")
	ErrSingularHessian  = errors.New("lp: singular Hessian")
	ErrNewtonDiverged   = errors.New("lp: Newton iteration failed to converge")
	ErrWeightDimension  = errors.New("lp: weight vector dimension mismatch")
	ErrNoConstraints    = errors.New("lp: no constraints")
	ErrBadConstraintDim = errors.New("lp: constraint row dimension mismatch")
)

// rowNorm returns the Euclidean norm of a constraint row.
func rowNorm(row []float64) float64 {
	var s float64
	for _, v := range row {
		s += v * v
	}
	return math.Sqrt(s)
}

func checkSystem(a [][]float64, b []float64) (dim int, err error) {
	if len(a) == 0 {
		return 0, ErrNoConstraints
	}
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d rows vs %d rhs", ErrDimensionMismatch, len(a), len(b))
	}
	dim = len(a[0])
	for i, row := range a {
		if len(row) != dim {
			return 0, fmt.Errorf("%w: row %d", ErrBadConstraintDim, i)
		}
	}
	return dim, nil
}

// ChebyshevCenter returns the center and radius of the largest ball
// inscribed in { z : a·z ≤ b }, found by the LP
//
//	maximize  r
//	s.t.      aᵢ·z + ‖aᵢ‖·r ≤ bᵢ,  r ≥ 0.
//
// It returns ErrEmptyRegion when the polyhedron is empty and
// ErrUnboundedRegion when the inscribed radius is unbounded (the region
// has non-empty interior in every direction — callers should include
// boundary constraints).
//
//nomloc:effect(globalread)
func ChebyshevCenter(a [][]float64, b []float64) (center []float64, radius float64, err error) {
	var ws Workspace
	return ws.ChebyshevCenter(a, b)
}

// ChebyshevCenter is the workspace-backed variant of the package-level
// function: the LP is assembled in and solved from reusable scratch. The
// returned center is freshly allocated.
func (ws *Workspace) ChebyshevCenter(a [][]float64, b []float64) (center []float64, radius float64, err error) {
	dim, err := checkSystem(a, b)
	if err != nil {
		return nil, 0, err
	}
	m := len(a)
	// Variables: z (dim, free), r (1, ≥ 0). Minimize −r.
	n := dim + 1
	ws.probC = growF(ws.probC, n)
	c := ws.probC
	c[dim] = -1
	free := ws.growFree(n)
	for j := 0; j < dim; j++ {
		free[j] = true
	}
	ws.probFlat, ws.probRows = growRows(ws.probFlat, ws.probRows, m, n)
	rows := ws.probRows
	for i := 0; i < m; i++ {
		copy(rows[i], a[i])
		rows[i][dim] = rowNorm(a[i])
	}
	res, err := ws.Solve(&Problem{C: c, A: rows, B: b, Free: free})
	if err != nil {
		return nil, 0, err
	}
	switch res.Status {
	case Infeasible:
		return nil, 0, ErrEmptyRegion
	case Unbounded:
		return nil, 0, ErrUnboundedRegion
	}
	return res.X[:dim], res.X[dim], nil
}

// FeasiblePoint returns a strictly interior point of { z : a·z ≤ b } when
// one exists (the Chebyshev center), together with its margin. A margin of
// zero (within tolerance) means the region has empty interior.
//
//nomloc:effect(globalread)
func FeasiblePoint(a [][]float64, b []float64) (z []float64, margin float64, err error) {
	return ChebyshevCenter(a, b)
}

// AnalyticCenter computes argmin −Σ log(bᵢ − aᵢ·z) by damped Newton with
// backtracking line search, starting from the strictly feasible point
// start. This is the log-barrier center an interior-point LP solver (such
// as CVX, which the paper uses) parks at when the objective is constant —
// NomLoc's Eq. 12/16 "minimize 0" formulation.
//
//nomloc:effect(globalread)
func AnalyticCenter(a [][]float64, b []float64, start []float64) ([]float64, error) {
	dim, err := checkSystem(a, b)
	if err != nil {
		return nil, err
	}
	if len(start) != dim {
		return nil, fmt.Errorf("%w: start has dim %d, want %d", ErrDimensionMismatch, len(start), dim)
	}
	m := len(a)
	z := append([]float64(nil), start...)

	slacks := func(pt []float64) ([]float64, bool) {
		s := make([]float64, m)
		for i := 0; i < m; i++ {
			dot := 0.0
			for j := 0; j < dim; j++ {
				dot += a[i][j] * pt[j]
			}
			s[i] = b[i] - dot
			if s[i] <= 0 {
				return nil, false
			}
		}
		return s, true
	}

	s, ok := slacks(z)
	if !ok {
		return nil, ErrNotStrictlyFeas
	}

	const (
		newtonTol  = 1e-10
		maxNewton  = 100
		alphaLS    = 0.25
		betaLS     = 0.5
		maxLSSteps = 60
	)

	barrier := func(sv []float64) float64 {
		var phi float64
		for _, si := range sv {
			phi -= math.Log(si)
		}
		return phi
	}

	for iter := 0; iter < maxNewton; iter++ {
		// Gradient g = Σ aᵢ/sᵢ; Hessian H = Σ aᵢaᵢᵀ/sᵢ².
		g := make([]float64, dim)
		h := make([][]float64, dim)
		for j := range h {
			h[j] = make([]float64, dim)
		}
		for i := 0; i < m; i++ {
			inv := 1 / s[i]
			inv2 := inv * inv
			for j := 0; j < dim; j++ {
				g[j] += a[i][j] * inv
				for k := 0; k < dim; k++ {
					h[j][k] += a[i][j] * a[i][k] * inv2
				}
			}
		}
		step, err := solveLinear(h, g)
		if err != nil {
			return nil, err
		}
		// Newton decrement² = gᵀ·step.
		var dec2 float64
		for j := 0; j < dim; j++ {
			dec2 += g[j] * step[j]
		}
		if dec2/2 < newtonTol {
			return z, nil
		}
		// Backtracking line search on the barrier value, keeping strict
		// feasibility.
		phi0 := barrier(s)
		tStep := 1.0
		improved := false
		for ls := 0; ls < maxLSSteps; ls++ {
			cand := make([]float64, dim)
			for j := 0; j < dim; j++ {
				cand[j] = z[j] - tStep*step[j]
			}
			if sc, okc := slacks(cand); okc {
				if barrier(sc) <= phi0-alphaLS*tStep*dec2 {
					z, s = cand, sc
					improved = true
					break
				}
			}
			tStep *= betaLS
		}
		if !improved {
			// Line search stalled at numerical precision: current point is
			// as central as float64 allows.
			return z, nil
		}
	}
	return nil, ErrNewtonDiverged
}

// solveLinear solves the square system H·x = g by Gaussian elimination
// with partial pivoting. H and g are not modified.
func solveLinear(h [][]float64, g []float64) ([]float64, error) {
	n := len(g)
	// Working copy as an augmented matrix.
	m := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]float64, n+1)
		copy(m[i], h[i])
		m[i][n] = g[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		best := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[best][col]) {
				best = r
			}
		}
		if math.Abs(m[best][col]) < 1e-14 {
			return nil, ErrSingularHessian
		}
		m[col], m[best] = m[best], m[col]
		inv := 1 / m[col][col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := m[r][col] * inv
			if factor == 0 {
				continue
			}
			for k := col; k <= n; k++ {
				m[r][k] -= factor * m[col][k]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, nil
}

// Relaxation is the solution of the constraint-relaxation LP (paper
// Eq. 19).
type Relaxation struct {
	// Z is the coordinate estimate the LP picked (a vertex; callers
	// usually re-center within the relaxed region).
	Z []float64
	// T holds the per-constraint relaxation amounts (tᵢ ≥ 0).
	T []float64
	// Cost is the attained wᵀt.
	Cost float64
	// Iterations counts the simplex pivots the solve took.
	Iterations int
}

// RelaxedSolve solves
//
//	minimize  wᵀt
//	s.t.      a·z − t ≤ b,  t ≥ 0
//
// which is always feasible. Weights must be positive for the relaxation to
// be bounded (a non-positive weight would let tᵢ grow for free); rows with
// larger weight are preserved preferentially, mirroring the paper's use of
// the confidence factor w as the price of breaking a constraint.
//
//nomloc:effect(globalread)
func RelaxedSolve(a [][]float64, b []float64, w []float64) (*Relaxation, error) {
	var ws Workspace
	return ws.RelaxedSolve(a, b, w)
}

// RelaxedSolve is the workspace-backed variant of the package-level
// function: the relaxation LP is assembled in and solved from reusable
// scratch. The returned Relaxation owns its slices.
func (ws *Workspace) RelaxedSolve(a [][]float64, b []float64, w []float64) (*Relaxation, error) {
	dim, err := checkSystem(a, b)
	if err != nil {
		return nil, err
	}
	m := len(a)
	if len(w) != m {
		return nil, ErrWeightDimension
	}
	for i, wi := range w {
		if wi <= 0 || math.IsNaN(wi) || math.IsInf(wi, 0) {
			return nil, fmt.Errorf("%w: weight %d = %v must be positive and finite",
				ErrWeightDimension, i, wi)
		}
	}

	// Variables: z (dim, free), t (m, ≥ 0).
	n := dim + m
	ws.probC = growF(ws.probC, n)
	c := ws.probC
	copy(c[dim:], w)
	free := ws.growFree(n)
	for j := 0; j < dim; j++ {
		free[j] = true
	}
	ws.probFlat, ws.probRows = growRows(ws.probFlat, ws.probRows, m, n)
	rows := ws.probRows
	for i := 0; i < m; i++ {
		copy(rows[i], a[i])
		rows[i][dim+i] = -1
	}
	res, err := ws.Solve(&Problem{C: c, A: rows, B: b, Free: free})
	if err != nil {
		return nil, err
	}
	if res.Status != Optimal {
		// min wᵀt with w > 0 and t ≥ 0 is bounded below by zero and always
		// feasible (choose t large enough); any other status is numerical.
		return nil, fmt.Errorf("lp: relaxation solve returned %v", res.Status)
	}
	rel := &Relaxation{
		Z:          append([]float64(nil), res.X[:dim]...),
		T:          make([]float64, m),
		Cost:       res.Objective,
		Iterations: res.Iterations,
	}
	for i := 0; i < m; i++ {
		ti := res.X[dim+i]
		if ti < 0 {
			ti = 0
		}
		rel.T[i] = ti
	}
	return rel, nil
}
