package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/nomloc/nomloc/internal/geom"
)

// AnchorKind distinguishes the constraint families an anchor participates
// in.
type AnchorKind int

// Anchor kinds.
const (
	// StaticAP is a fixed access point (contributes to the paper's A).
	StaticAP AnchorKind = iota + 1
	// NomadicSite is a nomadic AP observed at one waypoint (contributes to
	// the paper's A″; one anchor per visited site).
	NomadicSite
)

// String implements fmt.Stringer.
func (k AnchorKind) String() string {
	switch k {
	case StaticAP:
		return "static"
	case NomadicSite:
		return "nomadic-site"
	default:
		return fmt.Sprintf("anchorkind(%d)", int(k))
	}
}

// Anchor is one localization reference: an AP identity at a believed
// position with the direct-path power the object's signal showed there.
// A nomadic AP that visited S sites appears as S anchors (same APID,
// different SiteIndex and position).
type Anchor struct {
	// APID names the access point.
	APID string
	// SiteIndex distinguishes waypoints of a nomadic AP; 0 for static.
	SiteIndex int
	// Kind selects the constraint family.
	Kind AnchorKind
	// Pos is the believed anchor position (for nomadic APs this may carry
	// the position error the paper's §V-E studies).
	Pos geom.Vec
	// PDP is the measured direct-path power of the object at this anchor.
	PDP float64
}

// key identifies an anchor uniquely.
func (a Anchor) key() string { return fmt.Sprintf("%s#%d", a.APID, a.SiteIndex) }

// Judgement is one directed pairwise proximity decision: the object is
// believed closer to Closer than to Farther, with the given confidence
// factor w ∈ [½, 1).
type Judgement struct {
	// Closer is the anchor judged nearer to the object.
	Closer Anchor
	// Farther is the anchor judged farther.
	Farther Anchor
	// Confidence is the paper's w = f(P_farther / P_closer).
	Confidence float64
}

// HalfPlane converts the judgement into its spatial constraint (Eq. 7):
// points at least as close to Closer as to Farther.
func (j Judgement) HalfPlane() geom.HalfPlane {
	return geom.HalfPlaneCloserTo(j.Closer.Pos, j.Farther.Pos)
}

// Judge compares two anchors' PDPs and returns the directed judgement,
// orienting the pair so the larger PDP (shorter distance) is Closer. An
// exactly tied pair is oriented (a, b) with confidence ½.
//
// PDPs must be positive and finite: a NaN or ±Inf power would sail
// through the ordering comparison (NaN compares false with everything)
// and surface as a NaN confidence that no downstream `< threshold`
// filter can catch, so the rejection happens here, typed, before the
// ratio is ever formed.
func Judge(a, b Anchor) (Judgement, error) {
	if math.IsNaN(a.PDP) || math.IsNaN(b.PDP) || math.IsInf(a.PDP, 0) || math.IsInf(b.PDP, 0) {
		return Judgement{}, fmt.Errorf("%w: %q=%v, %q=%v", ErrNonFinitePDP, a.key(), a.PDP, b.key(), b.PDP)
	}
	if a.PDP <= 0 || b.PDP <= 0 {
		return Judgement{}, fmt.Errorf("%w: %q=%v, %q=%v", ErrBadPDP, a.key(), a.PDP, b.key(), b.PDP)
	}
	if b.PDP > a.PDP {
		a, b = b, a
	}
	return Judgement{Closer: a, Farther: b, Confidence: Confidence(a.PDP, b.PDP)}, nil
}

// Constraint assembly errors.
var (
	ErrTooFewAnchors   = errors.New("core: need at least two anchors")
	ErrDuplicateAnchor = errors.New("core: duplicate anchor")
)

// PairPolicy selects which anchor pairs generate proximity constraints.
type PairPolicy int

// Pair policies.
const (
	// PaperPairs follows the paper exactly: all static×static pairs
	// (Eq. 8) plus, per nomadic site, that site against every static AP
	// (Eq. 13). Nomadic sites are not compared with each other.
	PaperPairs PairPolicy = iota + 1
	// AllPairs also compares nomadic sites against each other (an
	// extension; all PDPs are measured from the same stationary object, so
	// the comparisons are physically meaningful).
	AllPairs
)

// String implements fmt.Stringer.
func (p PairPolicy) String() string {
	switch p {
	case PaperPairs:
		return "paper"
	case AllPairs:
		return "all"
	default:
		return fmt.Sprintf("pairpolicy(%d)", int(p))
	}
}

// BuildJudgements produces the pairwise proximity judgements for a set of
// anchors under a policy, skipping pairs whose confidence falls below
// minConfidence (½ keeps everything, since w ≥ ½ by construction).
//
//nomloc:effect(globalread)
func BuildJudgements(anchors []Anchor, policy PairPolicy, minConfidence float64) ([]Judgement, error) {
	if len(anchors) < 2 {
		return nil, ErrTooFewAnchors
	}
	seen := make(map[string]bool, len(anchors))
	for _, a := range anchors {
		k := a.key()
		if seen[k] {
			return nil, fmt.Errorf("%w: %s", ErrDuplicateAnchor, k)
		}
		seen[k] = true
	}

	pairAllowed := func(a, b Anchor) bool {
		switch policy {
		case AllPairs:
			return true
		case PaperPairs:
			// At least one of the pair must be a static AP.
			return a.Kind == StaticAP || b.Kind == StaticAP
		default:
			return false
		}
	}

	var out []Judgement
	for i := 0; i < len(anchors); i++ {
		for j := i + 1; j < len(anchors); j++ {
			if !pairAllowed(anchors[i], anchors[j]) {
				continue
			}
			jd, err := Judge(anchors[i], anchors[j])
			if err != nil {
				return nil, fmt.Errorf("pair (%s, %s): %w",
					anchors[i].key(), anchors[j].key(), err)
			}
			if jd.Confidence < minConfidence {
				continue
			}
			out = append(out, jd)
		}
	}
	return out, nil
}

// BoundaryConstraints materializes the paper's virtual-AP area-boundary
// constraints (Eq. 9–11) for one convex piece: the object must be closer
// to the interior reference point than to its mirror image across each
// edge's supporting line, which pins the object to the interior side of
// every edge. ref must lie strictly inside the (convex) piece.
func BoundaryConstraints(piece geom.Polygon, ref geom.Vec) []geom.HalfPlane {
	mirrors := piece.MirrorAcrossEdges(ref)
	out := make([]geom.HalfPlane, 0, len(mirrors))
	for _, vap := range mirrors {
		out = append(out, geom.HalfPlaneCloserTo(ref, vap))
	}
	return out
}
