package core

import (
	"errors"
	"math"
	"testing"

	"github.com/nomloc/nomloc/internal/geom"
)

func staticAnchor(id string, x, y, pdp float64) Anchor {
	return Anchor{APID: id, Kind: StaticAP, Pos: geom.V(x, y), PDP: pdp}
}

func nomadicAnchor(id string, site int, x, y, pdp float64) Anchor {
	return Anchor{APID: id, SiteIndex: site, Kind: NomadicSite, Pos: geom.V(x, y), PDP: pdp}
}

func TestJudgeOrientsByPDP(t *testing.T) {
	a := staticAnchor("a", 0, 0, 9)
	b := staticAnchor("b", 10, 0, 1)
	j, err := Judge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if j.Closer.APID != "a" || j.Farther.APID != "b" {
		t.Errorf("orientation wrong: closer=%s", j.Closer.APID)
	}
	if j.Confidence <= 0.5 || j.Confidence >= 1 {
		t.Errorf("confidence = %v, want in (0.5, 1)", j.Confidence)
	}
	// Swapped input yields the same orientation.
	j2, err := Judge(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Closer.APID != "a" {
		t.Error("Judge not symmetric in argument order")
	}
	if math.Abs(j.Confidence-j2.Confidence) > 1e-12 {
		t.Error("confidence depends on argument order")
	}
}

func TestJudgeTie(t *testing.T) {
	a := staticAnchor("a", 0, 0, 5)
	b := staticAnchor("b", 10, 0, 5)
	j, err := Judge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j.Confidence-0.5) > 1e-12 {
		t.Errorf("tie confidence = %v, want 0.5", j.Confidence)
	}
}

func TestJudgeInvalidPDP(t *testing.T) {
	a := staticAnchor("a", 0, 0, 0)
	b := staticAnchor("b", 10, 0, 5)
	if _, err := Judge(a, b); !errors.Is(err, ErrBadPDP) {
		t.Errorf("err = %v, want ErrBadPDP", err)
	}
}

// TestJudgeRejectsDegeneratePDP pins the hot-path guard: no zero,
// negative, NaN, or Inf power may survive to the confidence ratio. The
// pre-guard failure mode was silent — NaN compares false with
// everything, so a NaN confidence sailed through BuildJudgements'
// `< minConfidence` filter straight into the constraint system.
func TestJudgeRejectsDegeneratePDP(t *testing.T) {
	cases := []struct {
		name string
		pdp  float64
		want error
	}{
		{"zero", 0, ErrBadPDP},
		{"negative", -3, ErrBadPDP},
		{"nan", math.NaN(), ErrNonFinitePDP},
		{"+inf", math.Inf(1), ErrNonFinitePDP},
		{"-inf", math.Inf(-1), ErrNonFinitePDP},
	}
	good := staticAnchor("good", 10, 0, 5)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := staticAnchor("bad", 0, 0, tc.pdp)
			for _, pair := range [][2]Anchor{{bad, good}, {good, bad}} {
				j, err := Judge(pair[0], pair[1])
				if !errors.Is(err, tc.want) {
					t.Errorf("Judge(%v, %v) err = %v, want %v", pair[0].PDP, pair[1].PDP, err, tc.want)
				}
				if math.IsNaN(j.Confidence) {
					t.Errorf("Judge leaked NaN confidence for pdp=%v", tc.pdp)
				}
			}

			// The same inputs must surface as an error from the batch
			// builder, never as a NaN judgement in its output.
			anchors := []Anchor{bad, good, staticAnchor("c", 5, 5, 2)}
			js, err := BuildJudgements(anchors, PaperPairs, 0)
			if !errors.Is(err, tc.want) {
				t.Errorf("BuildJudgements err = %v, want %v", err, tc.want)
			}
			for _, j := range js {
				if math.IsNaN(j.Confidence) || math.IsInf(j.Confidence, 0) {
					t.Errorf("BuildJudgements emitted non-finite confidence %v", j.Confidence)
				}
			}
		})
	}
}

func TestJudgementHalfPlane(t *testing.T) {
	a := staticAnchor("a", 0, 0, 9)
	b := staticAnchor("b", 10, 0, 1)
	j, err := Judge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	h := j.HalfPlane()
	// Points nearer to a satisfy it.
	if !h.Contains(geom.V(2, 0), 1e-9) {
		t.Error("point near closer anchor rejected")
	}
	if h.Contains(geom.V(9, 0), 1e-9) {
		t.Error("point near farther anchor accepted")
	}
}

func TestBuildJudgementsPaperPolicy(t *testing.T) {
	anchors := []Anchor{
		staticAnchor("s1", 0, 0, 4),
		staticAnchor("s2", 10, 0, 3),
		staticAnchor("s3", 5, 8, 2),
		nomadicAnchor("n", 1, 2, 2, 5),
		nomadicAnchor("n", 2, 8, 2, 1),
	}
	js, err := BuildJudgements(anchors, PaperPairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// static×static: C(3,2)=3; nomadic sites × statics: 2×3=6. Total 9.
	if len(js) != 9 {
		t.Errorf("judgements = %d, want 9", len(js))
	}
	for _, j := range js {
		if j.Closer.Kind == NomadicSite && j.Farther.Kind == NomadicSite {
			t.Error("paper policy compared two nomadic sites")
		}
	}
}

func TestBuildJudgementsAllPairs(t *testing.T) {
	anchors := []Anchor{
		staticAnchor("s1", 0, 0, 4),
		nomadicAnchor("n", 1, 2, 2, 5),
		nomadicAnchor("n", 2, 8, 2, 1),
	}
	js, err := BuildJudgements(anchors, AllPairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(js) != 3 {
		t.Errorf("judgements = %d, want 3 (all pairs)", len(js))
	}
}

func TestBuildJudgementsMinConfidence(t *testing.T) {
	anchors := []Anchor{
		staticAnchor("s1", 0, 0, 4.0),
		staticAnchor("s2", 10, 0, 3.9), // near-tie: confidence ≈ 0.5
		staticAnchor("s3", 5, 8, 0.1),  // clear loser: high confidence
	}
	all, err := BuildJudgements(anchors, PaperPairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("unfiltered = %d", len(all))
	}
	filtered, err := BuildJudgements(anchors, PaperPairs, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) >= len(all) {
		t.Errorf("filter dropped nothing: %d", len(filtered))
	}
	for _, j := range filtered {
		if j.Confidence < 0.7 {
			t.Errorf("judgement with confidence %v survived the filter", j.Confidence)
		}
	}
}

func TestBuildJudgementsErrors(t *testing.T) {
	if _, err := BuildJudgements(nil, PaperPairs, 0); !errors.Is(err, ErrTooFewAnchors) {
		t.Errorf("too few err = %v", err)
	}
	dup := []Anchor{staticAnchor("a", 0, 0, 1), staticAnchor("a", 1, 1, 2)}
	if _, err := BuildJudgements(dup, PaperPairs, 0); !errors.Is(err, ErrDuplicateAnchor) {
		t.Errorf("duplicate err = %v", err)
	}
	badPDP := []Anchor{staticAnchor("a", 0, 0, 1), staticAnchor("b", 1, 1, -2)}
	if _, err := BuildJudgements(badPDP, PaperPairs, 0); !errors.Is(err, ErrBadPDP) {
		t.Errorf("bad pdp err = %v", err)
	}
	if _, err := BuildJudgements(badPDP[:2], PairPolicy(0), 0); err == nil {
		// Unknown policy admits no pairs; with anchors present that's an
		// empty judgement list, not an error.
		t.Log("unknown policy returned no error (empty set) — acceptable")
	}
}

func TestBoundaryConstraintsPinInterior(t *testing.T) {
	piece := geom.Rect(0, 0, 10, 8)
	ref := piece.Centroid()
	cons := BoundaryConstraints(piece, ref)
	if len(cons) != 4 {
		t.Fatalf("constraints = %d, want 4", len(cons))
	}
	inside := []geom.Vec{{X: 1, Y: 1}, {X: 9, Y: 7}, {X: 5, Y: 4}}
	outside := []geom.Vec{{X: -1, Y: 4}, {X: 11, Y: 4}, {X: 5, Y: 9}, {X: 5, Y: -0.5}}
	for _, p := range inside {
		for i, h := range cons {
			if !h.Contains(p, 1e-9) {
				t.Errorf("interior point %v violates boundary constraint %d", p, i)
			}
		}
	}
	for _, p := range outside {
		ok := true
		for _, h := range cons {
			if !h.Contains(p, 1e-9) {
				ok = false
			}
		}
		if ok {
			t.Errorf("exterior point %v satisfies all boundary constraints", p)
		}
	}
}

func TestAnchorKindString(t *testing.T) {
	if StaticAP.String() != "static" || NomadicSite.String() != "nomadic-site" {
		t.Error("AnchorKind.String mismatch")
	}
	if AnchorKind(0).String() != "anchorkind(0)" {
		t.Error("zero AnchorKind should not pretty-print")
	}
	if PaperPairs.String() != "paper" || AllPairs.String() != "all" {
		t.Error("PairPolicy.String mismatch")
	}
	if PairPolicy(9).String() != "pairpolicy(9)" {
		t.Error("unknown PairPolicy should not pretty-print")
	}
}
