package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/lp"
	"github.com/nomloc/nomloc/internal/parallel"
	"github.com/nomloc/nomloc/internal/telemetry"
)

// CenterRule selects how the location estimate is extracted from the
// (relaxed) feasible region.
type CenterRule int

// Center rules.
const (
	// ChebyshevRule reports the center of the largest inscribed ball.
	ChebyshevRule CenterRule = iota + 1
	// AnalyticRule reports the log-barrier analytic center (what the
	// paper's CVX interior-point solve returns); seeded by the Chebyshev
	// center.
	AnalyticRule
	// CentroidRule reports the area centroid of the feasible polygon,
	// materialized by half-plane clipping.
	CentroidRule
)

// String implements fmt.Stringer.
func (r CenterRule) String() string {
	switch r {
	case ChebyshevRule:
		return "chebyshev"
	case AnalyticRule:
		return "analytic"
	case CentroidRule:
		return "centroid"
	default:
		return fmt.Sprintf("centerrule(%d)", int(r))
	}
}

// Config parameterizes a Localizer.
type Config struct {
	// Area is the area of interest; non-convex areas are decomposed into
	// convex pieces automatically (paper §IV-B.2).
	Area geom.Polygon
	// BoundaryWeight is the relaxation price of an area-boundary
	// constraint; it is "preset to a large weight to guarantee the
	// corresponding constraint satisfied with high priority" (paper
	// §IV-B.4). Defaults to 100.
	BoundaryWeight float64
	// MinConfidence drops proximity judgements below this confidence
	// before the solve. Zero keeps everything (w ≥ ½ by construction).
	MinConfidence float64
	// Center selects the estimate extraction rule. Defaults to
	// ChebyshevRule.
	Center CenterRule
	// Pairs selects which anchor pairs constrain the solve. Defaults to
	// PaperPairs.
	Pairs PairPolicy
	// Metrics, when non-nil, counts solves, judgements, relaxations, LP
	// pivots, and degenerate centers. Everything recorded is derived from
	// solve state — never the wall clock — so an instrumented Localizer
	// remains bit-deterministic and detrand-clean.
	Metrics *telemetry.SolveMetrics
}

// Localizer runs SP-based location estimation over a fixed area.
// It is safe for concurrent use: Locate only reads the precomputed
// decomposition, and per-solve scratch comes from an internal pool.
type Localizer struct {
	cfg    Config
	pieces []geom.Polygon
	// scratch pools solveScratch values so repeated solves reuse the
	// simplex tableau and constraint-stack buffers.
	scratch sync.Pool
}

// solveScratch is the per-solve working memory of the hot path: the LP
// workspace plus the constraint-stack buffers solvePiece and centerOf
// assemble into. One scratch serves one solve at a time; LocateBatch
// gives each worker its own.
type solveScratch struct {
	ws      lp.Workspace
	rowFlat []float64
	rows    [][]float64
	rhs     []float64
	weights []float64
	cons    []geom.HalfPlane
}

// reserve readies the scratch for up to n constraint rows: the flat
// row backing is pre-grown so appended row slices never reallocate (and
// therefore never dangle).
func (sc *solveScratch) reserve(n int) {
	if cap(sc.rowFlat) < 2*n {
		sc.rowFlat = make([]float64, 0, 2*n)
	}
	sc.rowFlat = sc.rowFlat[:0]
	if cap(sc.rows) < n {
		sc.rows = make([][]float64, 0, n)
	}
	sc.rows = sc.rows[:0]
	if cap(sc.rhs) < n {
		sc.rhs = make([]float64, 0, n)
	}
	sc.rhs = sc.rhs[:0]
	if cap(sc.weights) < n {
		sc.weights = make([]float64, 0, n)
	}
	sc.weights = sc.weights[:0]
	if cap(sc.cons) < n {
		sc.cons = make([]geom.HalfPlane, 0, n)
	}
	sc.cons = sc.cons[:0]
}

// addRow appends one normalized constraint row backed by the reserved
// flat storage.
func (sc *solveScratch) addRow(ax, ay, b, w float64, h geom.HalfPlane) {
	off := len(sc.rowFlat)
	sc.rowFlat = append(sc.rowFlat, ax, ay)
	sc.rows = append(sc.rows, sc.rowFlat[off:off+2])
	sc.rhs = append(sc.rhs, b)
	sc.weights = append(sc.weights, w)
	sc.cons = append(sc.cons, h)
}

// Localizer errors.
var (
	ErrNoArea     = errors.New("core: config needs an area polygon")
	ErrNoEstimate = errors.New("core: no piece produced an estimate")
	errNoCenter   = errors.New("core: center extraction failed")
)

// New validates the configuration, decomposes the area, and returns a
// ready Localizer.
func New(cfg Config) (*Localizer, error) {
	if cfg.Area.NumVertices() < 3 {
		return nil, ErrNoArea
	}
	if cfg.BoundaryWeight <= 0 {
		cfg.BoundaryWeight = 100
	}
	if cfg.Center == 0 {
		cfg.Center = ChebyshevRule
	}
	if cfg.Pairs == 0 {
		cfg.Pairs = PaperPairs
	}
	pieces, err := geom.ConvexDecompose(cfg.Area)
	if err != nil {
		return nil, fmt.Errorf("decompose area: %w", err)
	}
	l := &Localizer{cfg: cfg, pieces: pieces}
	l.scratch.New = func() any { return new(solveScratch) }
	return l, nil
}

// Pieces returns the convex decomposition of the area.
func (l *Localizer) Pieces() []geom.Polygon {
	return append([]geom.Polygon(nil), l.pieces...)
}

// Config returns the effective configuration (defaults resolved).
func (l *Localizer) Config() Config { return l.cfg }

// Estimate is the outcome of one localization solve.
type Estimate struct {
	// Position is the location estimate.
	Position geom.Vec
	// RelaxCost is the attained wᵀt of the winning piece (0 when the
	// constraint system was feasible as-is).
	RelaxCost float64
	// PieceIndex is the convex piece the estimate came from (−1 when the
	// estimate merged several zero-cost pieces).
	PieceIndex int
	// NumJudgements is how many pairwise proximity constraints entered
	// the solve.
	NumJudgements int
	// NumRelaxed counts proximity constraints that had to be relaxed
	// (tᵢ above tolerance) in the winning piece.
	NumRelaxed int
}

// pieceSolve is the relaxation outcome for one convex piece.
type pieceSolve struct {
	piece      int
	cost       float64
	relaxed    []geom.HalfPlane // all constraints, loosened by t
	numRelaxed int
	z          geom.Vec // LP vertex (fallback center)
}

const costTol = 1e-7

// Locate estimates the object position from the anchors' PDPs: it builds
// pairwise judgements, assembles the constraint stack per convex piece
// (proximity + virtual-AP boundary), solves the relaxation LP (Eq. 19),
// picks the piece(s) with minimal relaxation cost, and reports the center
// of the relaxed feasible region.
//
//nomloc:effect(globalread)
func (l *Localizer) Locate(anchors []Anchor) (*Estimate, error) {
	judgements, err := BuildJudgements(anchors, l.cfg.Pairs, l.cfg.MinConfidence)
	if err != nil {
		return nil, err
	}
	sc := l.scratch.Get().(*solveScratch)
	defer l.scratch.Put(sc)
	return l.locateFromJudgements(judgements, sc)
}

// LocateBatch solves one anchor set per entry, fanning the solves across
// parallel.Resolve(workers) workers that each reuse their own scratch
// buffers for the simplex/clipping hot path. Estimates come back in
// input order and are bit-identical to calling Locate on each set
// sequentially; the first (lowest-index) failure aborts the batch.
//
//nomloc:effect(globalread,spawn)
func (l *Localizer) LocateBatch(ctx context.Context, sets [][]Anchor, workers int) ([]*Estimate, error) {
	return parallel.MapWorker(ctx, workers, len(sets),
		func(int) *solveScratch { return new(solveScratch) },
		func(sc *solveScratch, i int) (*Estimate, error) {
			judgements, err := BuildJudgements(sets[i], l.cfg.Pairs, l.cfg.MinConfidence)
			if err != nil {
				return nil, fmt.Errorf("set %d: %w", i, err)
			}
			est, err := l.locateFromJudgements(judgements, sc)
			if err != nil {
				return nil, fmt.Errorf("set %d: %w", i, err)
			}
			return est, nil
		})
}

// LocateFromJudgements runs the solve on externally-produced judgements
// (used by tests and by ablations that manipulate the judgement set).
//
//nomloc:effect(globalread)
func (l *Localizer) LocateFromJudgements(judgements []Judgement) (*Estimate, error) {
	sc := l.scratch.Get().(*solveScratch)
	defer l.scratch.Put(sc)
	return l.locateFromJudgements(judgements, sc)
}

func (l *Localizer) locateFromJudgements(judgements []Judgement, sc *solveScratch) (*Estimate, error) {
	solves := make([]pieceSolve, 0, len(l.pieces))
	for pi, piece := range l.pieces {
		ps, err := l.solvePiece(pi, piece, judgements, sc)
		if err != nil {
			return nil, fmt.Errorf("piece %d: %w", pi, err)
		}
		solves = append(solves, ps)
	}
	if len(solves) == 0 {
		return nil, ErrNoEstimate
	}

	best := solves[0]
	for _, s := range solves[1:] {
		if s.cost < best.cost {
			best = s
		}
	}

	// Merge pieces tied at (near-)zero cost: the paper merges convex areas
	// with feasible solutions. The merged estimate is the area-weighted
	// centroid of the per-piece feasible regions.
	if best.cost <= costTol {
		var ties []pieceSolve
		for _, s := range solves {
			if s.cost <= costTol {
				ties = append(ties, s)
			}
		}
		if len(ties) > 1 {
			if est, ok := l.mergeFeasible(ties, judgements); ok {
				est.NumJudgements = len(judgements)
				l.cfg.Metrics.RecordSolve(est.NumJudgements, est.NumRelaxed)
				return est, nil
			}
		}
	}

	pos, err := l.centerOf(best, sc)
	if err != nil {
		return nil, err
	}
	l.cfg.Metrics.RecordSolve(len(judgements), best.numRelaxed)
	return &Estimate{
		Position:      l.cfg.Area.Clamp(pos),
		RelaxCost:     best.cost,
		PieceIndex:    best.piece,
		NumJudgements: len(judgements),
		NumRelaxed:    best.numRelaxed,
	}, nil
}

// solvePiece assembles and solves the relaxation LP for one convex piece.
// The constraint stack and the LP tableau live in sc and are recycled
// across pieces and solves.
func (l *Localizer) solvePiece(pi int, piece geom.Polygon, judgements []Judgement, sc *solveScratch) (pieceSolve, error) {
	boundary := BoundaryConstraints(piece, piece.Centroid())

	total := len(judgements) + len(boundary)
	sc.reserve(total)

	// Rows are normalized to unit normal so each relaxation amount tᵢ is
	// the Euclidean distance by which the bisector is pushed. Without
	// this, t would be in squared-meter units and the LP would trade a
	// high-weight boundary row against a wrong far-pair judgement purely
	// because of row scale.
	add := func(h geom.HalfPlane, w float64) {
		n := h.NormalLen()
		if n < geom.Eps {
			return // degenerate pair (coincident anchors): no information
		}
		hn := geom.HalfPlane{Ax: h.Ax / n, Ay: h.Ay / n, B: h.B / n}
		sc.addRow(hn.Ax, hn.Ay, hn.B, w, hn)
	}
	for _, j := range judgements {
		add(j.HalfPlane(), j.Confidence)
	}
	judgeRows := len(sc.rows)
	for _, h := range boundary {
		add(h, l.cfg.BoundaryWeight)
	}

	rel, err := sc.ws.RelaxedSolve(sc.rows, sc.rhs, sc.weights)
	if err != nil {
		return pieceSolve{}, fmt.Errorf("relaxation: %w", err)
	}
	l.cfg.Metrics.RecordPiece(rel.Iterations)

	relaxed := make([]geom.HalfPlane, len(sc.cons))
	numRelaxed := 0
	for i, h := range sc.cons {
		relaxed[i] = h.Relax(rel.T[i])
		if i < judgeRows && rel.T[i] > 1e-6 {
			numRelaxed++
		}
	}
	return pieceSolve{
		piece:      pi,
		cost:       rel.Cost,
		relaxed:    relaxed,
		numRelaxed: numRelaxed,
		z:          geom.V(rel.Z[0], rel.Z[1]),
	}, nil
}

// centerOf extracts the configured center from a piece solve, reusing
// sc's constraint and tableau buffers.
func (l *Localizer) centerOf(ps pieceSolve, sc *solveScratch) (geom.Vec, error) {
	sc.reserve(len(ps.relaxed))
	for _, h := range ps.relaxed {
		sc.addRow(h.Ax, h.Ay, h.B, 1, h)
	}
	rows, rhs := sc.rows, sc.rhs

	cheb, _, err := sc.ws.ChebyshevCenter(rows, rhs)
	if err != nil {
		// The relaxed system is feasible by construction; a failure here
		// means the region degenerated to (near) a point — fall back to
		// the LP vertex.
		if errors.Is(err, lp.ErrEmptyRegion) || errors.Is(err, lp.ErrUnboundedRegion) {
			l.cfg.Metrics.RecordDegenerate()
			return ps.z, nil
		}
		return geom.Vec{}, fmt.Errorf("%w: chebyshev: %v", errNoCenter, err)
	}
	chebVec := geom.V(cheb[0], cheb[1])

	switch l.cfg.Center {
	case ChebyshevRule:
		return chebVec, nil
	case AnalyticRule:
		ac, err := lp.AnalyticCenter(rows, rhs, cheb)
		if err != nil {
			// Degenerate interior: the Chebyshev center is the best
			// available answer.
			return chebVec, nil
		}
		return geom.V(ac[0], ac[1]), nil
	case CentroidRule:
		region, ok := l.regionOf(ps)
		if !ok {
			return chebVec, nil
		}
		return region.Centroid(), nil
	default:
		return geom.Vec{}, fmt.Errorf("%w: unknown rule %v", errNoCenter, l.cfg.Center)
	}
}

// regionOf materializes the relaxed feasible polygon of a piece solve.
func (l *Localizer) regionOf(ps pieceSolve) (geom.Polygon, bool) {
	return geom.FeasibleRegion(l.pieces[ps.piece], ps.relaxed)
}

// mergeFeasible merges zero-cost pieces: the estimate is the area-weighted
// centroid of their feasible regions. ok is false when no region could be
// materialized (caller falls back to the single-piece path).
func (l *Localizer) mergeFeasible(ties []pieceSolve, judgements []Judgement) (*Estimate, bool) {
	var weightedSum geom.Vec
	var areaSum float64
	for _, s := range ties {
		region, ok := l.regionOf(s)
		if !ok {
			continue
		}
		a := region.Area()
		weightedSum = weightedSum.Add(region.Centroid().Scale(a))
		areaSum += a
	}
	if areaSum <= 0 {
		return nil, false
	}
	pos := weightedSum.Scale(1 / areaSum)
	return &Estimate{
		Position:   l.cfg.Area.Clamp(pos),
		RelaxCost:  0,
		PieceIndex: -1,
	}, true
}
