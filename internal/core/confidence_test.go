package core

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"github.com/nomloc/nomloc/internal/csi"
)

func TestFKnownValues(t *testing.T) {
	// Eq. 3: f(1) = ½.
	if got := F(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("F(1) = %v, want 0.5", got)
	}
	// Branch values.
	if got := F(0.5); math.Abs(got-math.Exp2(-0.5)) > 1e-12 {
		t.Errorf("F(0.5) = %v", got)
	}
	if got := F(2); math.Abs(got-(1-math.Exp2(-0.5))) > 1e-12 {
		t.Errorf("F(2) = %v", got)
	}
	// Limits: x→0⁺ gives 1, x→∞ gives 0.
	if got := F(1e-9); math.Abs(got-1) > 1e-6 {
		t.Errorf("F(→0) = %v, want ≈ 1", got)
	}
	if got := F(1e9); got > 1e-6 {
		t.Errorf("F(→∞) = %v, want ≈ 0", got)
	}
}

func TestFInvalidInput(t *testing.T) {
	for _, x := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := F(x); !math.IsNaN(got) {
			t.Errorf("F(%v) = %v, want NaN", x, got)
		}
	}
}

func TestPropFComplementary(t *testing.T) {
	// Eq. 2: f(x) + f(1/x) = 1 for all x > 0.
	f := func(raw float64) bool {
		x := math.Abs(raw)
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 1e-6 || x > 1e6 {
			return true
		}
		return math.Abs(F(x)+F(1/x)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropFMonotoneDecreasing(t *testing.T) {
	f := func(aRaw, bRaw float64) bool {
		a, b := math.Abs(aRaw), math.Abs(bRaw)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) ||
			a < 1e-6 || b < 1e-6 || a > 1e6 || b > 1e6 {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return F(a) >= F(b)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropFNonNegative(t *testing.T) {
	// Eq. 3: f(x) ≥ 0.
	f := func(raw float64) bool {
		x := math.Abs(raw)
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 1e-9 {
			return true
		}
		v := F(x)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropFTenThousandRatios hammers the paper's Eq. 2/3 identities over
// 10 000 log-uniform random ratios spanning twelve decades: the
// complementarity f(x) + f(1/x) = 1, the fixed point f(1) = ½, the
// [0, 1] range, and — over the sorted sample — strict monotone decrease.
func TestPropFTenThousandRatios(t *testing.T) {
	const n = 10_000
	rng := rand.New(rand.NewSource(20140630))
	xs := make([]float64, n)
	for i := range xs {
		// log-uniform in [1e-6, 1e6]: exercises both branches of F and the
		// crossover at x = 1 evenly in log space.
		xs[i] = math.Exp(rng.Float64()*12*math.Ln10 - 6*math.Ln10)
	}

	if got := F(1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("F(1) = %v, want exactly ½", got)
	}
	for _, x := range xs {
		v := F(x)
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("F(%v) = %v outside [0, 1]", x, v)
		}
		if sum := v + F(1/x); math.Abs(sum-1) > 1e-9 {
			t.Fatalf("F(%v) + F(1/%v) = %v, want 1", x, x, sum)
		}
	}

	sort.Float64s(xs)
	for i := 1; i < n; i++ {
		if xs[i] == xs[i-1] {
			continue
		}
		if F(xs[i]) >= F(xs[i-1]) {
			t.Fatalf("F not strictly decreasing: F(%v) = %v, F(%v) = %v",
				xs[i-1], F(xs[i-1]), xs[i], F(xs[i]))
		}
	}
}

func TestConfidence(t *testing.T) {
	// Equal PDPs: ½ each way.
	if got := Confidence(4, 4); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Confidence(equal) = %v", got)
	}
	// Dominant pi: confidence in "closer to i" near 1.
	if got := Confidence(1000, 1); got < 0.99 {
		t.Errorf("Confidence(dominant) = %v, want ≈ 1", got)
	}
	// Directed confidences are complementary.
	a, b := Confidence(3, 7), Confidence(7, 3)
	if math.Abs(a+b-1) > 1e-12 {
		t.Errorf("complementarity violated: %v + %v", a, b)
	}
	// Larger PDP on the i side means confidence above ½.
	if got := Confidence(7, 3); got <= 0.5 {
		t.Errorf("Confidence(7,3) = %v, want > 0.5", got)
	}
	// Invalid powers.
	for _, pair := range [][2]float64{{0, 1}, {1, 0}, {-1, 2}, {math.NaN(), 1}, {1, math.Inf(1)}} {
		if got := Confidence(pair[0], pair[1]); !math.IsNaN(got) {
			t.Errorf("Confidence(%v, %v) = %v, want NaN", pair[0], pair[1], got)
		}
	}
}

// impulseCSI builds a CSI vector whose CIR is a single tap of the given
// amplitude at the given index.
func impulseCSI(n, tap int, amp float64) csi.Vector {
	h := make(csi.Vector, n)
	for k := 0; k < n; k++ {
		angle := -2 * math.Pi * float64(k) * float64(tap) / float64(n)
		h[k] = complex(amp*math.Cos(angle), amp*math.Sin(angle))
	}
	return h
}

func TestEstimatePDPFromVector(t *testing.T) {
	v := impulseCSI(30, 4, 2)
	est, err := EstimatePDPFromVector(v)
	if err != nil {
		t.Fatal(err)
	}
	if est.Tap != 4 {
		t.Errorf("tap = %d, want 4", est.Tap)
	}
	if math.Abs(est.Power-4) > 1e-9 {
		t.Errorf("power = %v, want 4", est.Power)
	}
	if est.Samples != 1 {
		t.Errorf("samples = %d", est.Samples)
	}
	if _, err := EstimatePDPFromVector(nil); err == nil {
		t.Error("empty vector accepted")
	}
	if _, err := EstimatePDPFromVector(make(csi.Vector, 8)); !errors.Is(err, ErrBadPDP) {
		t.Errorf("all-zero vector err = %v", err)
	}
}

func TestEstimatePDPMedian(t *testing.T) {
	// Batch with one outlier: the median must ignore it.
	mk := func(amp float64) csi.Sample {
		return csi.Sample{CapturedAt: time.Now(), CSI: impulseCSI(30, 2, amp)}
	}
	b := &csi.Batch{Samples: []csi.Sample{mk(2), mk(2.1), mk(1.9), mk(2.05), mk(50)}}
	est, err := EstimatePDP(b)
	if err != nil {
		t.Fatal(err)
	}
	if est.Power > 5 {
		t.Errorf("median power = %v, outlier leaked through", est.Power)
	}
	if est.Samples != 5 {
		t.Errorf("samples = %d", est.Samples)
	}
	if est.Tap != 2 {
		t.Errorf("tap = %d, want 2", est.Tap)
	}
}

func TestEstimatePDPErrors(t *testing.T) {
	if _, err := EstimatePDP(&csi.Batch{}); !errors.Is(err, ErrNoSamples) {
		t.Errorf("empty batch err = %v", err)
	}
	bad := &csi.Batch{Samples: []csi.Sample{{CSI: nil}}}
	if _, err := EstimatePDP(bad); err == nil {
		t.Error("nil CSI accepted")
	}
	zero := &csi.Batch{Samples: []csi.Sample{{CSI: make(csi.Vector, 4)}}}
	if _, err := EstimatePDP(zero); !errors.Is(err, ErrBadPDP) {
		t.Errorf("zero CSI err = %v", err)
	}
}

func TestPDPMethodString(t *testing.T) {
	if MaxTapMethod.String() != "max-tap" || MusicMethod.String() != "music" {
		t.Error("PDPMethod.String mismatch")
	}
	if PDPMethod(0).String() != "pdpmethod(0)" {
		t.Error("zero PDPMethod should not pretty-print")
	}
}

func TestEstimatePDPMusic(t *testing.T) {
	// Two sub-tap paths: the max-tap estimator reports the merged tap
	// power; MUSIC must report the (weaker) direct path's own power.
	radio := csi.Config{NumSubcarriers: 30, Bandwidth: 20e6, CarrierFreq: 2.437e9}
	df := radio.SubcarrierSpacing()
	mk := func() csi.Vector {
		h := make(csi.Vector, 30)
		for k := 0; k < 30; k++ {
			for p, d := range []float64{50e-9, 90e-9} {
				amp := []float64{0.5, 1.0}[p]
				angle := -2 * math.Pi * float64(k) * df * d
				h[k] += complex(amp*math.Cos(angle), amp*math.Sin(angle))
			}
		}
		return h
	}
	b := &csi.Batch{Samples: []csi.Sample{{CSI: mk()}, {CSI: mk()}, {CSI: mk()}}}

	music, err := EstimatePDPMusic(b, radio)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(music.Power-0.25) > 0.08 {
		t.Errorf("music power = %v, want ≈ 0.25 (the direct path alone)", music.Power)
	}
	if music.Samples != 3 {
		t.Errorf("samples = %d", music.Samples)
	}

	maxTap, err := EstimatePDP(b)
	if err != nil {
		t.Fatal(err)
	}
	if maxTap.Power <= music.Power {
		t.Errorf("max-tap (%v) should exceed the isolated direct power (%v) on merged taps",
			maxTap.Power, music.Power)
	}

	// Dispatch agreement.
	viaDispatch, err := EstimatePDPWithMethod(b, MusicMethod, radio)
	if err != nil {
		t.Fatal(err)
	}
	if viaDispatch.Power != music.Power {
		t.Error("dispatch disagrees with direct call")
	}
	viaDispatch, err = EstimatePDPWithMethod(b, MaxTapMethod, radio)
	if err != nil {
		t.Fatal(err)
	}
	if viaDispatch.Power != maxTap.Power {
		t.Error("dispatch disagrees with max-tap")
	}
	if _, err := EstimatePDPWithMethod(b, PDPMethod(0), radio); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestEstimatePDPMusicErrors(t *testing.T) {
	if _, err := EstimatePDPMusic(&csi.Batch{}, csi.Config{}); err == nil {
		t.Error("bad radio accepted")
	}
	radio := csi.DefaultConfig()
	if _, err := EstimatePDPMusic(&csi.Batch{}, radio); err == nil {
		t.Error("empty batch accepted")
	}
}
