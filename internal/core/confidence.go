// Package core implements NomLoc's two algorithmic modules on top of the
// substrate packages: PDP-based proximity determination (paper §IV-A) and
// SP-based location estimation with nomadic-AP downscoping and constraint
// relaxation (paper §IV-B).
package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/nomloc/nomloc/internal/csi"
	"github.com/nomloc/nomloc/internal/dsp"
)

// F is the paper's confidence function (Eq. 4):
//
//	f(x) = 2^(−x)        for 0 < x ≤ 1
//	f(x) = 1 − 2^(−1/x)  for x > 1
//
// It satisfies f(x) + f(1/x) = 1 and f(1) = ½ (Eq. 2–3) and is
// monotonically decreasing, so f applied to the ratio of the *smaller* PDP
// over the larger yields a confidence in [½, 1).
// Non-positive or non-finite x returns NaN.
func F(x float64) float64 {
	if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return math.NaN()
	}
	if x <= 1 {
		return math.Exp2(-x)
	}
	return 1 - math.Exp2(-1/x)
}

// Confidence returns the confidence that the object is closer to the AP
// with PDP pi than to the AP with PDP pj, i.e. w = f(pj/pi). The two
// directed confidences for a pair sum to 1, and equal PDPs give ½.
// It returns NaN if either power is non-positive or non-finite.
//
//nomloc:effect(pure)
func Confidence(pi, pj float64) float64 {
	if pi <= 0 || pj <= 0 ||
		math.IsNaN(pi) || math.IsNaN(pj) || math.IsInf(pi, 0) || math.IsInf(pj, 0) {
		return math.NaN()
	}
	return F(pj / pi)
}

// PDPEstimate is a direct-path power estimate aggregated over a burst of
// CSI captures.
type PDPEstimate struct {
	// Power is the estimated direct-path power (linear, mW domain).
	Power float64 //nomloc:unit mW
	// Tap is the CIR tap index the power was read from (for the median
	// sample).
	Tap int
	// Samples is how many packets contributed.
	Samples int
}

// Estimation errors.
var (
	ErrNoSamples = errors.New("core: batch has no samples")
	ErrBadPDP    = errors.New("core: non-positive PDP estimate")
	// ErrNonFinitePDP rejects NaN/±Inf powers before they reach the
	// confidence ratio, where NaN would silently defeat every threshold
	// comparison downstream.
	ErrNonFinitePDP = errors.New("core: non-finite PDP estimate")
)

// EstimatePDP runs the paper's PDP extraction on every packet of a batch
// (CSI → IFFT → CIR → max-tap power) and aggregates with the median, which
// is robust to occasional corrupted captures. The per-packet design
// matches the prototype: the object sends millisecond PINGs and the AP
// collects thousands of packets per site.
//
//nomloc:effect(globalread)
func EstimatePDP(batch *csi.Batch) (PDPEstimate, error) {
	n := len(batch.Samples)
	if n == 0 {
		return PDPEstimate{}, ErrNoSamples
	}
	type obs struct {
		power float64
		tap   int
	}
	all := make([]obs, 0, n)
	for i := range batch.Samples {
		power, tap, err := dsp.DirectPathPower(batch.Samples[i].CSI)
		if err != nil {
			return PDPEstimate{}, fmt.Errorf("sample %d: %w", i, err)
		}
		all = append(all, obs{power: power, tap: tap})
	}
	// Median by power (insertion sort: bursts are small enough, and this
	// avoids pulling in a sort dependency for a hot path that is not hot).
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j-1].power > all[j].power; j-- {
			all[j-1], all[j] = all[j], all[j-1]
		}
	}
	med := all[len(all)/2]
	if med.power <= 0 {
		return PDPEstimate{}, ErrBadPDP
	}
	return PDPEstimate{Power: med.power, Tap: med.tap, Samples: n}, nil
}

// EstimatePDPFromVector runs PDP extraction on a single CSI vector.
func EstimatePDPFromVector(v csi.Vector) (PDPEstimate, error) {
	power, tap, err := dsp.DirectPathPower(v)
	if err != nil {
		return PDPEstimate{}, err
	}
	if power <= 0 {
		return PDPEstimate{}, ErrBadPDP
	}
	return PDPEstimate{Power: power, Tap: tap, Samples: 1}, nil
}

// PDPMethod selects the direct-path power estimator.
type PDPMethod int

// PDP estimation methods.
const (
	// MaxTapMethod is the paper's estimator: IFFT → CIR → max tap power.
	MaxTapMethod PDPMethod = iota + 1
	// MusicMethod is the super-resolution extension: MUSIC delay
	// estimation + least-squares amplitude fit, reporting the earliest
	// significant path's own power. It separates the direct path from
	// reflections closer than one IFFT tap, at ~30× the compute.
	MusicMethod
)

// String implements fmt.Stringer.
func (m PDPMethod) String() string {
	switch m {
	case MaxTapMethod:
		return "max-tap"
	case MusicMethod:
		return "music"
	default:
		return fmt.Sprintf("pdpmethod(%d)", int(m))
	}
}

// EstimatePDPMusic estimates the direct-path power of a batch with the
// super-resolution pipeline: the batch's coherent mean CSI (per-packet
// noise averages out over a static link) is decomposed into paths and the
// earliest path within 15 dB of the strongest is reported.
func EstimatePDPMusic(batch *csi.Batch, radio csi.Config) (PDPEstimate, error) {
	if err := radio.Validate(); err != nil {
		return PDPEstimate{}, err
	}
	mean, err := batch.MeanVector()
	if err != nil {
		return PDPEstimate{}, fmt.Errorf("music pdp: %w", err)
	}
	cfg := dsp.MusicConfig{
		SubcarrierSpacing: radio.SubcarrierSpacing(),
		NumPaths:          3,
	}
	maxDelay := radio.MaxUnambiguousDelay() / 3
	power, delay, err := dsp.FirstPathPowerMUSIC(mean, cfg, maxDelay, 2e-9, 15)
	if err != nil {
		return PDPEstimate{}, fmt.Errorf("music pdp: %w", err)
	}
	if power <= 0 {
		return PDPEstimate{}, ErrBadPDP
	}
	return PDPEstimate{
		Power:   power,
		Tap:     int(delay / radio.DelayResolution()),
		Samples: len(batch.Samples),
	}, nil
}

// EstimatePDPWithMethod dispatches between the estimators.
func EstimatePDPWithMethod(batch *csi.Batch, method PDPMethod, radio csi.Config) (PDPEstimate, error) {
	switch method {
	case MaxTapMethod:
		return EstimatePDP(batch)
	case MusicMethod:
		return EstimatePDPMusic(batch, radio)
	default:
		return PDPEstimate{}, fmt.Errorf("core: unknown PDP method %v", method)
	}
}
