package core

import (
	"errors"
	"math"
	"testing"

	"github.com/nomloc/nomloc/internal/geom"
)

// lArea is a non-convex L-shaped area for decomposition-path tests.
func lArea() geom.Polygon {
	return geom.MustPolygon([]geom.Vec{
		geom.V(0, 0), geom.V(20, 0), geom.V(20, 8), geom.V(8, 8), geom.V(8, 14), geom.V(0, 14),
	})
}

// truthAnchors builds anchors whose PDPs decrease monotonically with true
// distance to obj (an idealized noise-free channel), so every judgement is
// correct.
func truthAnchors(obj geom.Vec, positions []geom.Vec) []Anchor {
	anchors := make([]Anchor, len(positions))
	for i, p := range positions {
		d := obj.Dist(p)
		anchors[i] = Anchor{
			APID: string(rune('a' + i)),
			Kind: StaticAP,
			Pos:  p,
			PDP:  1 / (1 + d*d),
		}
	}
	return anchors
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoArea) {
		t.Errorf("no area err = %v", err)
	}
	l, err := New(Config{Area: geom.Rect(0, 0, 10, 10)})
	if err != nil {
		t.Fatal(err)
	}
	cfg := l.Config()
	if cfg.BoundaryWeight != 100 || cfg.Center != ChebyshevRule || cfg.Pairs != PaperPairs {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if len(l.Pieces()) != 1 {
		t.Errorf("convex area pieces = %d", len(l.Pieces()))
	}
}

func TestNewDecomposesNonConvex(t *testing.T) {
	l, err := New(Config{Area: lArea()})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Pieces()) < 2 {
		t.Errorf("L-shape pieces = %d, want ≥ 2", len(l.Pieces()))
	}
}

func TestLocatePerfectJudgements(t *testing.T) {
	// With truth-consistent PDPs the object must land in its own Voronoi
	// cell: the estimate should be close to the true position.
	area := geom.Rect(0, 0, 20, 12)
	l, err := New(Config{Area: area})
	if err != nil {
		t.Fatal(err)
	}
	aps := []geom.Vec{geom.V(2, 2), geom.V(18, 2), geom.V(2, 10), geom.V(18, 10)}
	for _, obj := range []geom.Vec{geom.V(5, 5), geom.V(14, 4), geom.V(10, 6), geom.V(3, 9)} {
		est, err := l.Locate(truthAnchors(obj, aps))
		if err != nil {
			t.Fatalf("obj %v: %v", obj, err)
		}
		if est.RelaxCost > 1e-6 {
			t.Errorf("obj %v: truth-consistent constraints needed relaxation %v", obj, est.RelaxCost)
		}
		if !area.Contains(est.Position) {
			t.Errorf("obj %v: estimate %v outside area", obj, est.Position)
		}
		// Voronoi cells of a 4-AP grid in a 20×12 room are large; the
		// center of the object's cell is within a few meters.
		if d := est.Position.Dist(obj); d > 6 {
			t.Errorf("obj %v: estimate %v is %v m away", obj, est.Position, d)
		}
	}
}

func TestLocateNomadicSitesTightenEstimate(t *testing.T) {
	// Adding nomadic waypoints must not worsen (and typically shrinks) the
	// error for a truth-consistent system: more correct half-planes can
	// only shrink the feasible region around the truth.
	area := geom.Rect(0, 0, 20, 12)
	l, err := New(Config{Area: area})
	if err != nil {
		t.Fatal(err)
	}
	obj := geom.V(7, 7)
	statics := []geom.Vec{geom.V(2, 2), geom.V(18, 2), geom.V(2, 10), geom.V(18, 10)}
	staticAnchors := truthAnchors(obj, statics)

	base, err := l.Locate(staticAnchors)
	if err != nil {
		t.Fatal(err)
	}

	nomadicSites := []geom.Vec{geom.V(6, 4), geom.V(10, 8), geom.V(12, 5)}
	anchors := append([]Anchor(nil), staticAnchors...)
	for s, p := range nomadicSites {
		d := obj.Dist(p)
		anchors = append(anchors, Anchor{
			APID:      "nomad",
			SiteIndex: s + 1,
			Kind:      NomadicSite,
			Pos:       p,
			PDP:       1 / (1 + d*d),
		})
	}
	withNomad, err := l.Locate(anchors)
	if err != nil {
		t.Fatal(err)
	}
	if withNomad.NumJudgements <= base.NumJudgements {
		t.Errorf("nomadic sites added no judgements: %d vs %d",
			withNomad.NumJudgements, base.NumJudgements)
	}
	dBase := base.Position.Dist(obj)
	dNomad := withNomad.Position.Dist(obj)
	if dNomad > dBase+0.5 {
		t.Errorf("nomadic sites worsened the estimate: %v → %v", dBase, dNomad)
	}
}

func TestLocateConflictingJudgementsRelax(t *testing.T) {
	// Force a contradiction: two anchors at the same PDP-implied side
	// plus a wrong high-confidence judgement. The solver must relax
	// something rather than fail.
	area := geom.Rect(0, 0, 10, 10)
	l, err := New(Config{Area: area})
	if err != nil {
		t.Fatal(err)
	}
	// Two judgements with parallel but disjoint half-planes: closer to
	// a(1,5) than b(9,5) pins x ≤ 5, while closer to d(11,5) than c(3,5)
	// pins x ≥ 7. No point satisfies both.
	a := staticAnchor("a", 1, 5, 10)
	b := staticAnchor("b", 9, 5, 8)
	c := staticAnchor("c", 3, 5, 2)
	d := staticAnchor("d", 11, 5, 3)
	jAB := Judgement{Closer: a, Farther: b, Confidence: 0.8}
	jDC := Judgement{Closer: d, Farther: c, Confidence: 0.9}
	est, err := l.LocateFromJudgements([]Judgement{jAB, jDC})
	if err != nil {
		t.Fatal(err)
	}
	if est.RelaxCost <= 0 {
		t.Error("contradictory system should have positive relaxation cost")
	}
	if est.NumRelaxed == 0 {
		t.Error("no constraint recorded as relaxed")
	}
	if !area.Contains(est.Position) {
		t.Errorf("estimate %v escaped the area", est.Position)
	}
}

func TestLocateRelaxationPrefersLowConfidence(t *testing.T) {
	// Contradiction between a w=0.95 and a w=0.55 judgement: the cheap one
	// must be sacrificed, so the estimate obeys the confident one.
	area := geom.Rect(0, 0, 10, 10)
	l, err := New(Config{Area: area})
	if err != nil {
		t.Fatal(err)
	}
	a := staticAnchor("a", 1, 5, 1)
	b := staticAnchor("b", 9, 5, 1)
	confident := Judgement{Closer: a, Farther: b, Confidence: 0.95} // x ≤ 5
	weak := Judgement{Closer: b, Farther: a, Confidence: 0.55}      // x ≥ 5
	est, err := l.LocateFromJudgements([]Judgement{confident, weak})
	if err != nil {
		t.Fatal(err)
	}
	if est.Position.X > 5+1e-6 {
		t.Errorf("estimate %v sides with the low-confidence constraint", est.Position)
	}
}

func TestLocateCenterRules(t *testing.T) {
	area := geom.Rect(0, 0, 20, 12)
	aps := []geom.Vec{geom.V(2, 2), geom.V(18, 2), geom.V(2, 10), geom.V(18, 10)}
	obj := geom.V(6, 5)
	for _, rule := range []CenterRule{ChebyshevRule, AnalyticRule, CentroidRule} {
		l, err := New(Config{Area: area, Center: rule})
		if err != nil {
			t.Fatal(err)
		}
		est, err := l.Locate(truthAnchors(obj, aps))
		if err != nil {
			t.Fatalf("rule %v: %v", rule, err)
		}
		if !area.Contains(est.Position) {
			t.Errorf("rule %v: estimate outside area", rule)
		}
		if d := est.Position.Dist(obj); d > 6 {
			t.Errorf("rule %v: error %v too large", rule, d)
		}
	}
}

func TestLocateNonConvexArea(t *testing.T) {
	// In the L-shaped area, an object in the upper arm must be localized
	// there, not in the notch.
	area := lArea()
	l, err := New(Config{Area: area})
	if err != nil {
		t.Fatal(err)
	}
	aps := []geom.Vec{geom.V(2, 2), geom.V(18, 2), geom.V(2, 12), geom.V(7, 7)}
	obj := geom.V(4, 11)
	est, err := l.Locate(truthAnchors(obj, aps))
	if err != nil {
		t.Fatal(err)
	}
	if !area.Contains(est.Position) {
		t.Fatalf("estimate %v outside the L", est.Position)
	}
	if d := est.Position.Dist(obj); d > 7 {
		t.Errorf("estimate %v is %v m from truth", est.Position, d)
	}
}

func TestLocateErrors(t *testing.T) {
	l, err := New(Config{Area: geom.Rect(0, 0, 10, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Locate(nil); !errors.Is(err, ErrTooFewAnchors) {
		t.Errorf("err = %v, want ErrTooFewAnchors", err)
	}
}

func TestLocateOnlyBoundary(t *testing.T) {
	// With zero judgements the estimate degenerates to the area's center
	// region — it must still be a point inside the area.
	area := geom.Rect(0, 0, 10, 10)
	l, err := New(Config{Area: area})
	if err != nil {
		t.Fatal(err)
	}
	est, err := l.LocateFromJudgements(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !area.Contains(est.Position) {
		t.Errorf("estimate %v outside area", est.Position)
	}
	if est.Position.Dist(geom.V(5, 5)) > 1e-6 {
		t.Errorf("boundary-only estimate = %v, want the center", est.Position)
	}
}

func TestCenterRuleString(t *testing.T) {
	if ChebyshevRule.String() != "chebyshev" || AnalyticRule.String() != "analytic" ||
		CentroidRule.String() != "centroid" {
		t.Error("CenterRule.String mismatch")
	}
	if CenterRule(0).String() != "centerrule(0)" {
		t.Error("zero CenterRule should not pretty-print")
	}
}

func TestLocateDeterministic(t *testing.T) {
	area := geom.Rect(0, 0, 20, 12)
	l, err := New(Config{Area: area})
	if err != nil {
		t.Fatal(err)
	}
	aps := []geom.Vec{geom.V(2, 2), geom.V(18, 2), geom.V(2, 10), geom.V(18, 10)}
	anchors := truthAnchors(geom.V(11, 7), aps)
	a, err := l.Locate(anchors)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Locate(anchors)
	if err != nil {
		t.Fatal(err)
	}
	if a.Position != b.Position {
		t.Errorf("non-deterministic: %v vs %v", a.Position, b.Position)
	}
}

func TestEstimateAccuracyImprovesWithMoreSites(t *testing.T) {
	// Sweep S = 0..6 nomadic waypoints; mean error over several objects
	// should not increase with S (downscoping property, paper §IV-B.3).
	area := geom.Rect(0, 0, 20, 12)
	l, err := New(Config{Area: area})
	if err != nil {
		t.Fatal(err)
	}
	statics := []geom.Vec{geom.V(2, 2), geom.V(18, 2), geom.V(2, 10), geom.V(18, 10)}
	waypoints := []geom.Vec{
		geom.V(6, 4), geom.V(10, 8), geom.V(14, 4), geom.V(5, 9), geom.V(15, 9), geom.V(10, 3),
	}
	objects := []geom.Vec{geom.V(4, 6), geom.V(9, 5), geom.V(13, 8), geom.V(16, 4)}

	meanErr := func(numSites int) float64 {
		var sum float64
		for _, obj := range objects {
			anchors := truthAnchors(obj, statics)
			for s := 0; s < numSites; s++ {
				p := waypoints[s]
				d := obj.Dist(p)
				anchors = append(anchors, Anchor{
					APID: "nomad", SiteIndex: s + 1, Kind: NomadicSite,
					Pos: p, PDP: 1 / (1 + d*d),
				})
			}
			est, err := l.Locate(anchors)
			if err != nil {
				t.Fatal(err)
			}
			sum += est.Position.Dist(obj)
		}
		return sum / float64(len(objects))
	}

	e0 := meanErr(0)
	e6 := meanErr(6)
	if e6 > e0 {
		t.Errorf("6 nomadic sites worsened mean error: %v → %v", e0, e6)
	}
	if e6 > 2.5 {
		t.Errorf("with 6 sites mean error %v still above 2.5 m", e6)
	}
}

func BenchmarkLocateStatic(b *testing.B) {
	l, err := New(Config{Area: geom.Rect(0, 0, 20, 12)})
	if err != nil {
		b.Fatal(err)
	}
	anchors := truthAnchors(geom.V(7, 7), []geom.Vec{
		geom.V(2, 2), geom.V(18, 2), geom.V(2, 10), geom.V(18, 10),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Locate(anchors); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocateWithNomadicSites(b *testing.B) {
	l, err := New(Config{Area: geom.Rect(0, 0, 20, 12)})
	if err != nil {
		b.Fatal(err)
	}
	obj := geom.V(7, 7)
	anchors := truthAnchors(obj, []geom.Vec{
		geom.V(2, 2), geom.V(18, 2), geom.V(2, 10), geom.V(18, 10),
	})
	for s, p := range []geom.Vec{geom.V(6, 4), geom.V(10, 8), geom.V(12, 5), geom.V(4, 9)} {
		d := obj.Dist(p)
		anchors = append(anchors, Anchor{
			APID: "nomad", SiteIndex: s + 1, Kind: NomadicSite, Pos: p, PDP: 1 / (1 + d*d),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Locate(anchors); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRelaxCostZeroMeansConsistent(t *testing.T) {
	// Estimates with zero relax cost must satisfy every judgement.
	area := geom.Rect(0, 0, 20, 12)
	l, err := New(Config{Area: area})
	if err != nil {
		t.Fatal(err)
	}
	aps := []geom.Vec{geom.V(2, 2), geom.V(18, 2), geom.V(2, 10), geom.V(18, 10)}
	obj := geom.V(12, 4)
	anchors := truthAnchors(obj, aps)
	judgements, err := BuildJudgements(anchors, PaperPairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	est, err := l.LocateFromJudgements(judgements)
	if err != nil {
		t.Fatal(err)
	}
	if est.RelaxCost > 1e-6 {
		t.Fatalf("relax cost = %v", est.RelaxCost)
	}
	for i, j := range judgements {
		if v := j.HalfPlane().Violation(est.Position); v > 1e-5 {
			t.Errorf("judgement %d violated by %v", i, v)
		}
	}
	if math.IsNaN(est.Position.X) || math.IsNaN(est.Position.Y) {
		t.Error("NaN estimate")
	}
}

func TestLocateMergesZeroCostPieces(t *testing.T) {
	// With no judgements on a non-convex area, every convex piece is
	// feasible at zero cost, so the estimate must merge the pieces: the
	// area-weighted centroid of the piece regions equals the polygon's
	// own centroid, and PieceIndex reports the merged marker −1.
	area := lArea()
	l, err := New(Config{Area: area})
	if err != nil {
		t.Fatal(err)
	}
	est, err := l.LocateFromJudgements(nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.PieceIndex != -1 {
		t.Errorf("PieceIndex = %d, want -1 (merged)", est.PieceIndex)
	}
	if d := est.Position.Dist(area.Centroid()); d > 1e-6 {
		t.Errorf("merged estimate %v is %v m from the area centroid %v",
			est.Position, d, area.Centroid())
	}
}

func TestLocateMergedRegionRespectsConstraints(t *testing.T) {
	// One judgement that keeps parts of both pieces feasible: the merged
	// estimate must satisfy it.
	area := lArea()
	l, err := New(Config{Area: area})
	if err != nil {
		t.Fatal(err)
	}
	a := staticAnchor("a", 2, 2, 5)
	b := staticAnchor("b", 18, 2, 1)
	j, err := Judge(a, b) // closer to a: keeps the west of both arms
	if err != nil {
		t.Fatal(err)
	}
	est, err := l.LocateFromJudgements([]Judgement{j})
	if err != nil {
		t.Fatal(err)
	}
	if v := j.HalfPlane().Violation(est.Position); v > 1e-6 {
		t.Errorf("merged estimate violates the judgement by %v", v)
	}
	if !area.Contains(est.Position) {
		t.Errorf("estimate %v outside area", est.Position)
	}
}
