package dsp

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// synthCSI builds a frequency-domain channel from (delayTap, amplitude)
// paths on an n-subcarrier grid: H[k] = Σ a·exp(−j2πk·tap/n).
func synthCSI(n int, paths map[int]float64) []complex128 {
	h := make([]complex128, n)
	for k := 0; k < n; k++ {
		for tap, amp := range paths {
			angle := -2 * math.Pi * float64(k) * float64(tap) / float64(n)
			h[k] += complex(amp, 0) * cmplx.Exp(complex(0, angle))
		}
	}
	return h
}

func TestPowerDelayProfileSinglePath(t *testing.T) {
	// A single path at tap 3 should concentrate all profile power there.
	h := synthCSI(64, map[int]float64{3: 2.0})
	profile, err := PowerDelayProfile(h)
	if err != nil {
		t.Fatal(err)
	}
	idx, val := MaxTap(profile)
	if idx != 3 {
		t.Errorf("max tap = %d, want 3", idx)
	}
	if math.Abs(val-4.0) > 1e-9 {
		t.Errorf("max power = %v, want 4 (amp² = 2²)", val)
	}
	for i, p := range profile {
		if i != 3 && p > 1e-9 {
			t.Errorf("leakage at tap %d: %v", i, p)
		}
	}
}

func TestPowerDelayProfileMultipath(t *testing.T) {
	// LOS-like: strong direct at tap 2, weaker reflections later.
	h := synthCSI(64, map[int]float64{2: 3.0, 7: 1.0, 13: 0.5})
	profile, err := PowerDelayProfile(h)
	if err != nil {
		t.Fatal(err)
	}
	idx, val := MaxTap(profile)
	if idx != 2 {
		t.Errorf("max tap = %d, want the direct path at 2", idx)
	}
	if math.Abs(val-9) > 1e-9 {
		t.Errorf("direct power = %v, want 9", val)
	}

	// NLOS-like: direct attenuated below a reflection — the max-tap
	// heuristic latches onto the strongest arrival (the paper's rationale
	// for using the maximum of the profile as PDP).
	h = synthCSI(64, map[int]float64{2: 0.4, 7: 1.5, 13: 0.5})
	profile, err = PowerDelayProfile(h)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ = MaxTap(profile)
	if idx != 7 {
		t.Errorf("NLOS max tap = %d, want the dominant reflection at 7", idx)
	}
}

func TestPowerDelayProfileEmpty(t *testing.T) {
	if _, err := PowerDelayProfile(nil); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("err = %v, want ErrEmptyInput", err)
	}
}

func TestDirectPathPower(t *testing.T) {
	h := synthCSI(30, map[int]float64{4: 2.5})
	p, tap, err := DirectPathPower(h)
	if err != nil {
		t.Fatal(err)
	}
	if tap != 4 {
		t.Errorf("tap = %d, want 4", tap)
	}
	if math.Abs(p-6.25) > 1e-9 {
		t.Errorf("power = %v, want 6.25", p)
	}
}

func TestDirectPathPowerMonotoneInAmplitude(t *testing.T) {
	// Larger direct amplitude ⇒ larger PDP: the core proximity premise.
	var prev float64
	for _, amp := range []float64{0.5, 1, 2, 4} {
		h := synthCSI(56, map[int]float64{1: amp, 9: 0.3})
		p, _, err := DirectPathPower(h)
		if err != nil {
			t.Fatal(err)
		}
		if p <= prev {
			t.Errorf("PDP not increasing: amp=%v gave %v after %v", amp, p, prev)
		}
		prev = p
	}
}

func TestMaxTapEmpty(t *testing.T) {
	idx, _ := MaxTap(nil)
	if idx != -1 {
		t.Errorf("MaxTap(nil) idx = %d, want -1", idx)
	}
}

func TestTotalPower(t *testing.T) {
	x := []complex128{3 + 4i, 1}
	if got := TotalPower(x); math.Abs(got-26) > 1e-12 {
		t.Errorf("TotalPower = %v, want 26", got)
	}
	if got := TotalPower(nil); got != 0 {
		t.Errorf("TotalPower(nil) = %v", got)
	}
}

func TestFirstTapAboveThreshold(t *testing.T) {
	profile := []float64{0.01, 0.02, 0.5, 1.0, 0.3}
	if got := FirstTapAboveThreshold(profile, 0.25); got != 2 {
		t.Errorf("got %d, want 2", got)
	}
	if got := FirstTapAboveThreshold(profile, 0.99); got != 3 {
		t.Errorf("got %d, want 3", got)
	}
	if got := FirstTapAboveThreshold(nil, 0.5); got != -1 {
		t.Errorf("empty profile: got %d, want -1", got)
	}
	if got := FirstTapAboveThreshold([]float64{0, 0}, 0.5); got != -1 {
		t.Errorf("all-zero profile: got %d, want -1", got)
	}
}

func TestDelaySpreadRMS(t *testing.T) {
	// Single tap: zero spread.
	if got := DelaySpreadRMS([]float64{0, 5, 0, 0}); got > 1e-12 {
		t.Errorf("single-tap spread = %v, want 0", got)
	}
	// Two equal taps at 0 and 4: mean 2, spread 2.
	if got := DelaySpreadRMS([]float64{1, 0, 0, 0, 1}); math.Abs(got-2) > 1e-12 {
		t.Errorf("spread = %v, want 2", got)
	}
	if got := DelaySpreadRMS(nil); got != 0 {
		t.Errorf("empty spread = %v", got)
	}
	// Richer multipath ⇒ larger spread.
	sparse := DelaySpreadRMS([]float64{1, 0.1, 0, 0, 0, 0, 0, 0})
	rich := DelaySpreadRMS([]float64{1, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2})
	if rich <= sparse {
		t.Errorf("rich multipath spread %v not > sparse %v", rich, sparse)
	}
}

func TestDBConversions(t *testing.T) {
	if got := DB(100); math.Abs(got-20) > 1e-12 {
		t.Errorf("DB(100) = %v", got)
	}
	if got := DB(0); !math.IsInf(got, -1) {
		t.Errorf("DB(0) = %v, want -Inf", got)
	}
	if got := FromDB(30); math.Abs(got-1000) > 1e-9 {
		t.Errorf("FromDB(30) = %v", got)
	}
	if got := AmplitudeFromDB(20); math.Abs(got-10) > 1e-12 {
		t.Errorf("AmplitudeFromDB(20) = %v", got)
	}
	// Roundtrip.
	for _, p := range []float64{0.001, 1, 42, 1e6} {
		if got := FromDB(DB(p)); math.Abs(got-p) > 1e-9*p {
			t.Errorf("FromDB(DB(%v)) = %v", p, got)
		}
	}
}

func TestHannWindow(t *testing.T) {
	if _, err := HannWindow(0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("HannWindow(0) err = %v", err)
	}
	w1, err := HannWindow(1)
	if err != nil || w1[0] != 1 {
		t.Errorf("HannWindow(1) = %v, %v", w1, err)
	}
	w, err := HannWindow(9)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] > 1e-12 || w[8] > 1e-12 {
		t.Error("Hann endpoints should be ~0")
	}
	if math.Abs(w[4]-1) > 1e-12 {
		t.Errorf("Hann midpoint = %v, want 1", w[4])
	}
	// Symmetry.
	for i := 0; i < 4; i++ {
		if math.Abs(w[i]-w[8-i]) > 1e-12 {
			t.Errorf("Hann asymmetric at %d", i)
		}
	}
}

func TestApplyWindow(t *testing.T) {
	x := []complex128{1, 2, 3}
	w := []float64{0.5, 1, 0}
	got, err := ApplyWindow(x, w)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{0.5, 2, 0}
	if !approxEqualVec(got, want, 1e-12) {
		t.Errorf("ApplyWindow = %v", got)
	}
	if _, err := ApplyWindow(x, w[:2]); !errors.Is(err, ErrBadArgument) {
		t.Errorf("length mismatch err = %v", err)
	}
}

func TestZeroPad(t *testing.T) {
	x := []complex128{1, 2}
	got, err := ZeroPad(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != 1 || got[1] != 2 || got[4] != 0 {
		t.Errorf("ZeroPad = %v", got)
	}
	if _, err := ZeroPad(x, 1); !errors.Is(err, ErrBadArgument) {
		t.Errorf("shrinking pad err = %v", err)
	}
}

func TestZeroPadSharpensPeak(t *testing.T) {
	// Zero-padding interpolates the delay profile; the max tap of the
	// padded profile should land at (roughly) tap·pad/n.
	h := synthCSI(30, map[int]float64{5: 1})
	padded, err := ZeroPad(h, 120)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := PowerDelayProfile(padded)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := MaxTap(profile)
	if idx < 18 || idx > 22 {
		t.Errorf("padded peak at %d, want ≈ 20", idx)
	}
}

func TestMagnitudes(t *testing.T) {
	got := Magnitudes([]complex128{3 + 4i, -2})
	if math.Abs(got[0]-5) > 1e-12 || math.Abs(got[1]-2) > 1e-12 {
		t.Errorf("Magnitudes = %v", got)
	}
}

func BenchmarkFFT64(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randomVec(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFTBluestein30(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := randomVec(rng, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPowerDelayProfile(b *testing.B) {
	h := synthCSI(64, map[int]float64{2: 3, 7: 1, 13: 0.5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PowerDelayProfile(h); err != nil {
			b.Fatal(err)
		}
	}
}
