package dsp

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestSymmetricEigenDiagonal(t *testing.T) {
	a := [][]float64{{3, 0}, {0, 1}}
	vals, vecs, err := SymmetricEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Errorf("values = %v", vals)
	}
	// First eigenvector should be ±e1.
	if math.Abs(math.Abs(vecs[0][0])-1) > 1e-10 || math.Abs(vecs[1][0]) > 1e-10 {
		t.Errorf("vectors = %v", vecs)
	}
}

func TestSymmetricEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	vals, vecs, err := SymmetricEigen([][]float64{{2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Errorf("values = %v", vals)
	}
	// Eigenvector of 3 is (1,1)/√2 up to sign.
	if math.Abs(math.Abs(vecs[0][0])-1/math.Sqrt2) > 1e-9 ||
		math.Abs(vecs[0][0]-vecs[1][0]) > 1e-9 {
		t.Errorf("first vector = (%v, %v)", vecs[0][0], vecs[1][0])
	}
}

func TestSymmetricEigenReconstruction(t *testing.T) {
	// A = V Λ Vᵀ must reproduce the input for random symmetric matrices.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a[i][j] = v
				a[j][i] = v
			}
		}
		vals, vecs, err := SymmetricEigen(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Check sorted descending.
		for k := 1; k < n; k++ {
			if vals[k] > vals[k-1]+1e-9 {
				t.Fatalf("trial %d: values not sorted: %v", trial, vals)
			}
		}
		// Orthonormality.
		for c1 := 0; c1 < n; c1++ {
			for c2 := c1; c2 < n; c2++ {
				var dot float64
				for r := 0; r < n; r++ {
					dot += vecs[r][c1] * vecs[r][c2]
				}
				want := 0.0
				if c1 == c2 {
					want = 1
				}
				if math.Abs(dot-want) > 1e-8 {
					t.Fatalf("trial %d: vᵀv[%d][%d] = %v", trial, c1, c2, dot)
				}
			}
		}
		// Reconstruction.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var sum float64
				for k := 0; k < n; k++ {
					sum += vecs[i][k] * vals[k] * vecs[j][k]
				}
				if math.Abs(sum-a[i][j]) > 1e-8 {
					t.Fatalf("trial %d: A[%d][%d] = %v, reconstructed %v", trial, i, j, a[i][j], sum)
				}
			}
		}
	}
}

func TestSymmetricEigenErrors(t *testing.T) {
	if _, _, err := SymmetricEigen(nil); !errors.Is(err, ErrNotSquare) {
		t.Errorf("nil err = %v", err)
	}
	if _, _, err := SymmetricEigen([][]float64{{1, 2}}); !errors.Is(err, ErrNotSquare) {
		t.Errorf("ragged err = %v", err)
	}
	// Zero matrix is fine.
	vals, _, err := SymmetricEigen([][]float64{{0, 0}, {0, 0}})
	if err != nil || vals[0] != 0 {
		t.Errorf("zero matrix: %v, %v", vals, err)
	}
}

func TestHermitianNoiseProjector(t *testing.T) {
	// R = u·uᴴ for a unit vector u has signal subspace span{u}; the noise
	// projector must annihilate u and fix any vector orthogonal to it.
	u := []complex128{complex(0.5, 0.5), complex(0.5, -0.5)}
	// ‖u‖² = 0.5+0.5 = 1 ✓.
	r := [][]complex128{
		{u[0] * complexConj(u[0]), u[0] * complexConj(u[1])},
		{u[1] * complexConj(u[0]), u[1] * complexConj(u[1])},
	}
	noise, err := HermitianNoiseProjector(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Π·u ≈ 0.
	for i := 0; i < 2; i++ {
		var acc complex128
		for j := 0; j < 2; j++ {
			acc += noise[i][j] * u[j]
		}
		if cmplx.Abs(acc) > 1e-8 {
			t.Errorf("Π·u[%d] = %v, want 0", i, acc)
		}
	}
	// Orthogonal vector w ⊥ u: w = (u[1]*, -u[0]*) (check: uᴴw = 0).
	w := []complex128{complexConj(u[1]), -complexConj(u[0])}
	for i := 0; i < 2; i++ {
		var acc complex128
		for j := 0; j < 2; j++ {
			acc += noise[i][j] * w[j]
		}
		if cmplx.Abs(acc-w[i]) > 1e-8 {
			t.Errorf("Π·w[%d] = %v, want %v", i, acc, w[i])
		}
	}
	// Projector property: Π² = Π.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			var acc complex128
			for k := 0; k < 2; k++ {
				acc += noise[i][k] * noise[k][j]
			}
			if cmplx.Abs(acc-noise[i][j]) > 1e-8 {
				t.Errorf("Π² != Π at (%d,%d)", i, j)
			}
		}
	}
}

func TestHermitianNoiseProjectorErrors(t *testing.T) {
	if _, err := HermitianNoiseProjector(nil, 0); !errors.Is(err, ErrNotSquare) {
		t.Errorf("nil err = %v", err)
	}
	notHerm := [][]complex128{{1, 2}, {3, 1}}
	if _, err := HermitianNoiseProjector(notHerm, 1); !errors.Is(err, ErrNotHermitian) {
		t.Errorf("non-Hermitian err = %v", err)
	}
	ok := [][]complex128{{1, 0}, {0, 1}}
	if _, err := HermitianNoiseProjector(ok, 5); err == nil {
		t.Error("numSignal > n accepted")
	}
	if _, err := HermitianNoiseProjector(ok, -1); err == nil {
		t.Error("negative numSignal accepted")
	}
	// numSignal = 0: the noise projector is the identity.
	noise, err := HermitianNoiseProjector(ok, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(noise[0][0]-1) > 1e-10 || cmplx.Abs(noise[0][1]) > 1e-10 {
		t.Errorf("identity expected, got %v", noise)
	}
}
