package dsp

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// MUSIC super-resolution delay estimation over frequency-domain CSI.
//
// The IFFT-based power delay profile is limited to 1/bandwidth delay
// resolution (50 ns ≈ 15 m at 20 MHz) — too coarse to separate the direct
// path from nearby reflections. MUSIC exploits the signal-subspace
// structure of the subcarrier covariance to resolve arrivals far below
// that limit, the technique later CSI-localization systems (SpotFi et
// al.) made standard. Here it extends NomLoc's PDP module with a
// super-resolved first-path estimator.

// MusicConfig parameterizes the estimator.
type MusicConfig struct {
	// SubcarrierSpacing is Δf between adjacent CSI entries, in Hz.
	SubcarrierSpacing float64
	// NumPaths is the assumed number of propagation paths (signal
	// subspace dimension). 2–4 covers typical indoor links.
	NumPaths int
	// SmoothingLen is the forward spatial-smoothing window length L;
	// snapshots are the N−L+1 length-L subvectors of the CSI. It must
	// satisfy NumPaths < L ≤ N − NumPaths for a stable noise subspace.
	// Zero selects N/2+1.
	SmoothingLen int
}

// MUSIC errors.
var (
	ErrBadMusicConfig = errors.New("dsp: invalid MUSIC config")
	ErrTooFewCarriers = errors.New("dsp: too few subcarriers for smoothing")
)

// resolve validates the configuration against a CSI length.
func (c MusicConfig) resolve(n int) (MusicConfig, error) {
	if c.SubcarrierSpacing <= 0 || math.IsNaN(c.SubcarrierSpacing) {
		return c, fmt.Errorf("%w: spacing %v", ErrBadMusicConfig, c.SubcarrierSpacing)
	}
	if c.NumPaths < 1 {
		return c, fmt.Errorf("%w: numPaths %d", ErrBadMusicConfig, c.NumPaths)
	}
	if c.SmoothingLen == 0 {
		c.SmoothingLen = n/2 + 1
	}
	if c.SmoothingLen <= c.NumPaths || c.SmoothingLen > n-1 {
		return c, fmt.Errorf("%w: smoothing %d with %d paths over %d carriers",
			ErrTooFewCarriers, c.SmoothingLen, c.NumPaths, n)
	}
	return c, nil
}

// MusicPseudoSpectrum evaluates the MUSIC delay pseudo-spectrum
// P(τ) = 1 / (a(τ)ᴴ·Π_noise·a(τ)) on the given delay grid (seconds).
// Larger values indicate likelier arrival delays.
func MusicPseudoSpectrum(csi []complex128, cfg MusicConfig, delays []float64) ([]float64, error) {
	n := len(csi)
	if n == 0 {
		return nil, ErrEmptyInput
	}
	cfg, err := cfg.resolve(n)
	if err != nil {
		return nil, err
	}
	l := cfg.SmoothingLen

	// Forward spatial smoothing: covariance of the sliding subvectors.
	r := make([][]complex128, l)
	for i := range r {
		r[i] = make([]complex128, l)
	}
	numSnapshots := n - l + 1
	for m := 0; m < numSnapshots; m++ {
		x := csi[m : m+l]
		for i := 0; i < l; i++ {
			for j := 0; j < l; j++ {
				r[i][j] += x[i] * complexConj(x[j])
			}
		}
	}
	inv := complex(1/float64(numSnapshots), 0)
	for i := range r {
		for j := range r[i] {
			r[i][j] *= inv
		}
	}

	noise, err := HermitianNoiseProjector(r, cfg.NumPaths)
	if err != nil {
		return nil, err
	}

	out := make([]float64, len(delays))
	steer := make([]complex128, l)
	for di, tau := range delays {
		for k := 0; k < l; k++ {
			angle := -2 * math.Pi * cfg.SubcarrierSpacing * float64(k) * tau
			steer[k] = cmplx.Exp(complex(0, angle))
		}
		// aᴴ Π a (real and non-negative for a projector).
		var acc complex128
		for i := 0; i < l; i++ {
			var row complex128
			for j := 0; j < l; j++ {
				row += noise[i][j] * steer[j]
			}
			acc += complexConj(steer[i]) * row
		}
		denom := real(acc)
		if denom < 1e-15 {
			denom = 1e-15
		}
		out[di] = 1 / denom
	}
	return out, nil
}

// FirstPathDelayMUSIC estimates the earliest significant arrival delay in
// seconds with super-resolution: it scans the pseudo-spectrum over
// [0, maxDelay] at the given grid step, finds local peaks, and returns the
// earliest peak within dynamicRangeDB of the strongest. Typical use:
// maxDelay = a few hundred ns, step = 1 ns, dynamicRangeDB = 10.
func FirstPathDelayMUSIC(csi []complex128, cfg MusicConfig, maxDelay, step float64, dynamicRangeDB float64) (float64, error) {
	if maxDelay <= 0 || step <= 0 || step > maxDelay {
		return 0, fmt.Errorf("%w: delay grid [0, %v] step %v", ErrBadMusicConfig, maxDelay, step)
	}
	numPts := int(maxDelay/step) + 1
	delays := make([]float64, numPts)
	for i := range delays {
		delays[i] = float64(i) * step
	}
	spec, err := MusicPseudoSpectrum(csi, cfg, delays)
	if err != nil {
		return 0, err
	}
	// Peak picking.
	type peak struct {
		delay, power float64
	}
	var peaks []peak
	for i := 1; i < len(spec)-1; i++ {
		if spec[i] >= spec[i-1] && spec[i] > spec[i+1] {
			peaks = append(peaks, peak{delay: delays[i], power: spec[i]})
		}
	}
	if len(peaks) == 0 {
		// Monotone spectrum: fall back to the global maximum.
		best := 0
		for i, p := range spec {
			if p > spec[best] {
				best = i
			}
		}
		return delays[best], nil
	}
	strongest := peaks[0].power
	for _, p := range peaks[1:] {
		if p.power > strongest {
			strongest = p.power
		}
	}
	threshold := strongest * math.Pow(10, -dynamicRangeDB/10)
	for _, p := range peaks {
		if p.power >= threshold {
			return p.delay, nil // peaks are in ascending delay order
		}
	}
	return peaks[0].delay, nil
}
