package dsp

import (
	"errors"
	"fmt"
	"math"
)

// Eigendecomposition errors.
var (
	ErrNotSquare     = errors.New("dsp: matrix is not square")
	ErrNotHermitian  = errors.New("dsp: matrix is not Hermitian")
	ErrEigenConverge = errors.New("dsp: Jacobi iteration did not converge")
)

// SymmetricEigen computes the eigendecomposition of a real symmetric
// matrix by the cyclic Jacobi method. It returns the eigenvalues in
// descending order with their eigenvectors as the columns of v
// (v[i][k] is component i of eigenvector k). The input is not modified.
func SymmetricEigen(a [][]float64) (values []float64, v [][]float64, err error) {
	n := len(a)
	for i := range a {
		if len(a[i]) != n {
			return nil, nil, ErrNotSquare
		}
	}
	if n == 0 {
		return nil, nil, ErrNotSquare
	}
	// Working copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	// Eigenvector accumulator starts as identity.
	v = make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}

	const (
		maxSweeps = 100
		// Jacobi converges quadratically, so demanding a very small
		// off-diagonal residual costs only a sweep or two but buys
		// reconstruction accuracy near machine precision.
		tol = 1e-26
	)
	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += m[i][j] * m[i][j]
			}
		}
		return s
	}
	scale := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			scale += m[i][j] * m[i][j]
		}
	}
	if scale == 0 {
		// Zero matrix: all eigenvalues zero, identity vectors.
		values = make([]float64, n)
		return values, v, nil
	}

	converged := false
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offDiag() <= tol*scale {
			converged = true
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m[p][q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				// Compute the Jacobi rotation annihilating m[p][q].
				theta := (m[q][q] - m[p][p]) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				app, aqq := m[p][p], m[q][q]
				m[p][p] = c*c*app - 2*s*c*apq + s*s*aqq
				m[q][q] = s*s*app + 2*s*c*apq + c*c*aqq
				m[p][q] = 0
				m[q][p] = 0
				for i := 0; i < n; i++ {
					if i == p || i == q {
						continue
					}
					aip, aiq := m[i][p], m[i][q]
					m[i][p] = c*aip - s*aiq
					m[p][i] = m[i][p]
					m[i][q] = s*aip + c*aiq
					m[q][i] = m[i][q]
				}
				for i := 0; i < n; i++ {
					vip, viq := v[i][p], v[i][q]
					v[i][p] = c*vip - s*viq
					v[i][q] = s*vip + c*viq
				}
			}
		}
	}
	if !converged && offDiag() > 1e-16*scale {
		return nil, nil, ErrEigenConverge
	}

	// Extract and sort descending (stable selection sort keeps vectors
	// aligned).
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = m[i][i]
	}
	for i := 0; i < n-1; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if values[j] > values[best] {
				best = j
			}
		}
		if best != i {
			values[i], values[best] = values[best], values[i]
			for r := 0; r < n; r++ {
				v[r][i], v[r][best] = v[r][best], v[r][i]
			}
		}
	}
	return values, v, nil
}

// HermitianNoiseProjector returns the projector onto the noise subspace of
// the Hermitian matrix r: I − Σ over the numSignal strongest eigenvectors
// of u·uᴴ. It works through the real embedding
//
//	φ(R) = [Re(R) −Im(R); Im(R) Re(R)]
//
// whose spectrum doubles R's; the complex projector is recovered from the
// block structure of the real one.
func HermitianNoiseProjector(r [][]complex128, numSignal int) ([][]complex128, error) {
	n := len(r)
	for i := range r {
		if len(r[i]) != n {
			return nil, ErrNotSquare
		}
	}
	if n == 0 {
		return nil, ErrNotSquare
	}
	if numSignal < 0 || numSignal > n {
		return nil, fmt.Errorf("dsp: numSignal %d out of range [0, %d]", numSignal, n)
	}
	// Hermitian check (tolerant; covariance estimates carry float noise).
	var scale float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			re, im := real(r[i][j]), imag(r[i][j])
			scale += re*re + im*im
		}
	}
	tol := 1e-9 * (1 + scale)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			d := r[i][j] - complexConj(r[j][i])
			if real(d)*real(d)+imag(d)*imag(d) > tol {
				return nil, ErrNotHermitian
			}
		}
	}

	// Real embedding.
	m := make([][]float64, 2*n)
	for i := range m {
		m[i] = make([]float64, 2*n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			re, im := real(r[i][j]), imag(r[i][j])
			m[i][j] = re
			m[i][j+n] = -im
			m[i+n][j] = im
			m[i+n][j+n] = re
		}
	}
	_, vecs, err := SymmetricEigen(m)
	if err != nil {
		return nil, err
	}

	// Signal projector in the embedding: the top 2·numSignal eigenvectors
	// (each complex eigenvalue appears twice).
	k := 2 * numSignal
	pr := make([][]float64, 2*n)
	for i := range pr {
		pr[i] = make([]float64, 2*n)
	}
	for col := 0; col < k; col++ {
		for i := 0; i < 2*n; i++ {
			vi := vecs[i][col]
			if vi == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				pr[i][j] += vi * vecs[j][col]
			}
		}
	}

	// Recover the complex projector from the block structure and form
	// I − P_signal.
	out := make([][]complex128, n)
	for i := 0; i < n; i++ {
		out[i] = make([]complex128, n)
		for j := 0; j < n; j++ {
			re := (pr[i][j] + pr[i+n][j+n]) / 2
			im := (pr[i+n][j] - pr[i][j+n]) / 2
			p := complex(re, im)
			if i == j {
				out[i][j] = 1 - p
			} else {
				out[i][j] = -p
			}
		}
	}
	return out, nil
}

// complexConj avoids importing math/cmplx for a one-liner.
func complexConj(c complex128) complex128 { return complex(real(c), -imag(c)) }
