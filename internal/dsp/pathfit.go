package dsp

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// PathEstimate is one resolved propagation path: its delay and power.
type PathEstimate struct {
	// Delay is the arrival delay in seconds.
	Delay float64
	// Power is the path's linear power |α|².
	Power float64
}

// ErrNoPaths is returned when no spectral peaks are found.
var ErrNoPaths = errors.New("dsp: no paths resolved")

// EstimatePathsMUSIC resolves up to cfg.NumPaths propagation paths from a
// CSI vector with super-resolution: MUSIC locates the delays, then a
// complex least-squares fit against the steering matrix recovers each
// path's amplitude. Results are sorted by delay (earliest first).
//
// This is the super-resolution alternative to the paper's max-tap PDP: it
// separates the direct path from reflections closer than one IFFT tap and
// reports the direct path's own power, not the power of the merged tap.
func EstimatePathsMUSIC(csi []complex128, cfg MusicConfig, maxDelay, step float64) ([]PathEstimate, error) {
	n := len(csi)
	if n == 0 {
		return nil, ErrEmptyInput
	}
	if maxDelay <= 0 || step <= 0 || step > maxDelay {
		return nil, fmt.Errorf("%w: delay grid [0, %v] step %v", ErrBadMusicConfig, maxDelay, step)
	}
	rcfg, err := cfg.resolve(n)
	if err != nil {
		return nil, err
	}

	numPts := int(maxDelay/step) + 1
	delays := make([]float64, numPts)
	for i := range delays {
		delays[i] = float64(i) * step
	}
	spec, err := MusicPseudoSpectrum(csi, cfg, delays)
	if err != nil {
		return nil, err
	}

	// Pick the NumPaths strongest local maxima.
	type peak struct {
		delay, val float64
	}
	var peaks []peak
	for i := 1; i < len(spec)-1; i++ {
		if spec[i] >= spec[i-1] && spec[i] > spec[i+1] {
			peaks = append(peaks, peak{delay: delays[i], val: spec[i]})
		}
	}
	if len(peaks) == 0 {
		return nil, ErrNoPaths
	}
	sort.Slice(peaks, func(a, b int) bool { return peaks[a].val > peaks[b].val })
	if len(peaks) > rcfg.NumPaths {
		peaks = peaks[:rcfg.NumPaths]
	}
	sort.Slice(peaks, func(a, b int) bool { return peaks[a].delay < peaks[b].delay })

	// Least-squares amplitude fit: minimize ‖H − A·α‖² with
	// A[k][p] = exp(−j2π·k·Δf·τₚ). Normal equations: (AᴴA)·α = Aᴴ·H.
	p := len(peaks)
	a := make([][]complex128, n)
	for k := 0; k < n; k++ {
		a[k] = make([]complex128, p)
		for c := 0; c < p; c++ {
			angle := -2 * math.Pi * float64(k) * rcfg.SubcarrierSpacing * peaks[c].delay
			a[k][c] = cmplx.Exp(complex(0, angle))
		}
	}
	gram := make([][]complex128, p)
	rhs := make([]complex128, p)
	for i := 0; i < p; i++ {
		gram[i] = make([]complex128, p)
		for j := 0; j < p; j++ {
			var acc complex128
			for k := 0; k < n; k++ {
				acc += complexConj(a[k][i]) * a[k][j]
			}
			gram[i][j] = acc
		}
		var acc complex128
		for k := 0; k < n; k++ {
			acc += complexConj(a[k][i]) * csi[k]
		}
		rhs[i] = acc
	}
	alpha, err := solveComplex(gram, rhs)
	if err != nil {
		return nil, fmt.Errorf("amplitude fit: %w", err)
	}

	out := make([]PathEstimate, p)
	for i := 0; i < p; i++ {
		re, im := real(alpha[i]), imag(alpha[i])
		out[i] = PathEstimate{Delay: peaks[i].delay, Power: re*re + im*im}
	}
	return out, nil
}

// FirstPathPowerMUSIC returns the power of the earliest resolved path
// whose power is within dynamicRangeDB of the strongest path (paths much
// weaker than that are treated as spectral artifacts).
func FirstPathPowerMUSIC(csi []complex128, cfg MusicConfig, maxDelay, step, dynamicRangeDB float64) (power float64, delay float64, err error) {
	paths, err := EstimatePathsMUSIC(csi, cfg, maxDelay, step)
	if err != nil {
		return 0, 0, err
	}
	strongest := 0.0
	for _, p := range paths {
		if p.Power > strongest {
			strongest = p.Power
		}
	}
	if strongest <= 0 {
		return 0, 0, ErrNoPaths
	}
	threshold := strongest * math.Pow(10, -dynamicRangeDB/10)
	for _, p := range paths {
		if p.Power >= threshold {
			return p.Power, p.Delay, nil
		}
	}
	return paths[0].Power, paths[0].Delay, nil
}

// ErrSingularSystem reports a rank-deficient complex linear system.
var ErrSingularSystem = errors.New("dsp: singular linear system")

// solveComplex solves the square complex system M·x = b by Gaussian
// elimination with partial pivoting. M and b are not modified.
func solveComplex(m [][]complex128, b []complex128) ([]complex128, error) {
	n := len(b)
	aug := make([][]complex128, n)
	for i := 0; i < n; i++ {
		aug[i] = make([]complex128, n+1)
		copy(aug[i], m[i])
		aug[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		best := col
		for r := col + 1; r < n; r++ {
			if cmplx.Abs(aug[r][col]) > cmplx.Abs(aug[best][col]) {
				best = r
			}
		}
		if cmplx.Abs(aug[best][col]) < 1e-12 {
			return nil, ErrSingularSystem
		}
		aug[col], aug[best] = aug[best], aug[col]
		pivot := aug[col][col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := aug[r][col] / pivot
			if factor == 0 {
				continue
			}
			for k := col; k <= n; k++ {
				aug[r][k] -= factor * aug[col][k]
			}
		}
	}
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = aug[i][n] / aug[i][i]
	}
	return x, nil
}
