// Package dsp provides the signal-processing primitives NomLoc needs to
// turn frequency-domain channel state information (CSI) into time-domain
// channel impulse responses (CIR): FFT/IFFT for arbitrary lengths, power
// delay profiles, peak extraction, and decibel helpers.
//
// The transforms use the engineering convention
//
//	FFT:   X[k] = Σ_n x[n]·exp(−j2πkn/N)
//	IFFT:  x[n] = (1/N)·Σ_k X[k]·exp(+j2πkn/N)
//
// so IFFT(FFT(x)) == x.
package dsp

import (
	"errors"
	"math"
	"math/bits"
	"math/cmplx"
)

// ErrEmptyInput is returned by transforms when given a zero-length vector.
var ErrEmptyInput = errors.New("dsp: empty input")

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPowerOfTwo returns the smallest power of two ≥ n (n must be > 0).
func NextPowerOfTwo(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// FFT computes the discrete Fourier transform of x, for any length.
// Power-of-two lengths use the iterative radix-2 Cooley–Tukey algorithm;
// other lengths fall back to Bluestein's chirp-z algorithm. The input is
// not modified.
func FFT(x []complex128) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmptyInput
	}
	out := make([]complex128, len(x))
	copy(out, x)
	if IsPowerOfTwo(len(x)) {
		fftRadix2InPlace(out, false)
		return out, nil
	}
	return bluestein(out, false), nil
}

// IFFT computes the inverse discrete Fourier transform of x (with the 1/N
// normalization), for any length.
func IFFT(x []complex128) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmptyInput
	}
	out := make([]complex128, len(x))
	copy(out, x)
	if IsPowerOfTwo(len(x)) {
		fftRadix2InPlace(out, true)
	} else {
		out = bluestein(out, true)
	}
	invN := complex(1/float64(len(x)), 0)
	for i := range out {
		out[i] *= invN
	}
	return out, nil
}

// fftRadix2InPlace runs an in-place iterative radix-2 transform. inverse
// selects the conjugate twiddle direction; no 1/N scaling is applied.
func fftRadix2InPlace(a []complex128, inverse bool) {
	n := len(a)
	if n == 1 {
		return
	}
	// Bit-reversal permutation.
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				even := a[start+k]
				odd := a[start+k+half] * w
				a[start+k] = even + odd
				a[start+k+half] = even - odd
				w *= wBase
			}
		}
	}
}

// bluestein computes a length-N DFT (or inverse, unscaled) via the chirp-z
// transform: the DFT becomes a convolution, evaluated with power-of-two
// FFTs of length ≥ 2N−1.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp w[k] = exp(sign·jπk²/N). Reduce k² mod 2N first to keep the
	// angle argument small and the chirp numerically exact for large N.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		k2 := (int64(k) * int64(k)) % int64(2*n)
		angle := sign * math.Pi * float64(k2) / float64(n)
		chirp[k] = cmplx.Exp(complex(0, angle))
	}

	m := NextPowerOfTwo(2*n - 1)
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}

	fftRadix2InPlace(a, false)
	fftRadix2InPlace(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2InPlace(a, true)
	invM := complex(1/float64(m), 0)

	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invM * chirp[k]
	}
	return out
}

// DFTNaive computes the DFT by direct O(N²) summation. It exists as a
// reference implementation for tests.
func DFTNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for i := 0; i < n; i++ {
			angle := -2 * math.Pi * float64(k) * float64(i) / float64(n)
			sum += x[i] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}
