package dsp

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"
)

func TestEstimatePathsMUSICRecoversPowers(t *testing.T) {
	df := 20e6 / 30
	trueDelays := []float64{55e-9, 95e-9}
	trueAmps := []float64{1.0, 0.6}
	h := twoPathCSI(30, df, trueDelays, trueAmps)

	paths, err := EstimatePathsMUSIC(h, musicCfg(), 300e-9, 0.5e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	// Sorted by delay.
	if paths[0].Delay >= paths[1].Delay {
		t.Error("paths not sorted by delay")
	}
	for i := range paths {
		if math.Abs(paths[i].Delay-trueDelays[i]) > 3e-9 {
			t.Errorf("path %d delay %v ns, want %v ns", i, paths[i].Delay*1e9, trueDelays[i]*1e9)
		}
		wantPower := trueAmps[i] * trueAmps[i]
		if math.Abs(paths[i].Power-wantPower) > 0.1*wantPower {
			t.Errorf("path %d power %v, want ≈ %v", i, paths[i].Power, wantPower)
		}
	}
}

func TestFirstPathPowerMUSICWeakDirect(t *testing.T) {
	// NLOS-like: the direct path is 6 dB weaker than the reflection but
	// earlier. The max-tap PDP estimator would merge or pick the
	// reflection; the super-resolution estimator must report the direct
	// path's own (weaker) power.
	df := 20e6 / 30
	h := twoPathCSI(30, df, []float64{50e-9, 90e-9}, []float64{0.5, 1.0})

	power, delay, err := FirstPathPowerMUSIC(h, musicCfg(), 300e-9, 0.5e-9, 12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(delay-50e-9) > 3e-9 {
		t.Errorf("first path delay %v ns, want 50 ns", delay*1e9)
	}
	if math.Abs(power-0.25) > 0.06 {
		t.Errorf("first path power %v, want ≈ 0.25", power)
	}

	// For contrast: the classic max-tap PDP on the same channel reports a
	// tap dominated by the merged/stronger arrival.
	maxTapPower, _, err := DirectPathPower(h)
	if err != nil {
		t.Fatal(err)
	}
	if maxTapPower <= power {
		t.Errorf("max-tap %v should exceed the true direct power %v here", maxTapPower, power)
	}
}

func TestFirstPathPowerMUSICDynamicRange(t *testing.T) {
	// A tiny spurious early component below the dynamic range must be
	// skipped in favor of the real first path.
	df := 20e6 / 30
	h := twoPathCSI(30, df, []float64{20e-9, 80e-9}, []float64{0.02, 1.0})
	_, delay, err := FirstPathPowerMUSIC(h, musicCfg(), 300e-9, 0.5e-9, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(delay-80e-9) > 4e-9 {
		t.Errorf("first significant path at %v ns, want 80 ns (the 0.02 spur is 34 dB down)", delay*1e9)
	}
}

func TestEstimatePathsMUSICErrors(t *testing.T) {
	if _, err := EstimatePathsMUSIC(nil, musicCfg(), 100e-9, 1e-9); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("empty err = %v", err)
	}
	h := twoPathCSI(30, 20e6/30, []float64{50e-9}, []float64{1})
	if _, err := EstimatePathsMUSIC(h, musicCfg(), 0, 1e-9); !errors.Is(err, ErrBadMusicConfig) {
		t.Errorf("bad grid err = %v", err)
	}
	bad := musicCfg()
	bad.NumPaths = 0
	if _, err := EstimatePathsMUSIC(h, bad, 100e-9, 1e-9); !errors.Is(err, ErrBadMusicConfig) {
		t.Errorf("bad cfg err = %v", err)
	}
}

func TestSolveComplex(t *testing.T) {
	// (1+i)x = 2 → x = 1−i.
	x, err := solveComplex([][]complex128{{1 + 1i}}, []complex128{2})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-(1-1i)) > 1e-12 {
		t.Errorf("x = %v, want 1−i", x[0])
	}
	// 2×2 with known solution.
	m := [][]complex128{{2, 1i}, {-1i, 3}}
	want := []complex128{1 + 2i, -1}
	b := []complex128{
		m[0][0]*want[0] + m[0][1]*want[1],
		m[1][0]*want[0] + m[1][1]*want[1],
	}
	x, err = solveComplex(m, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if cmplx.Abs(x[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	// Singular.
	if _, err := solveComplex([][]complex128{{1, 1}, {1, 1}}, []complex128{1, 2}); !errors.Is(err, ErrSingularSystem) {
		t.Errorf("singular err = %v", err)
	}
}
