package dsp

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEqualVec(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func randomVec(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTEmptyInput(t *testing.T) {
	if _, err := FFT(nil); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("FFT(nil) err = %v", err)
	}
	if _, err := IFFT(nil); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("IFFT(nil) err = %v", err)
	}
}

func TestFFTSingleElement(t *testing.T) {
	x := []complex128{3 + 4i}
	got, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != x[0] {
		t.Errorf("FFT of length 1 = %v", got)
	}
}

func TestFFTKnownValues(t *testing.T) {
	// FFT of an impulse is all ones.
	x := []complex128{1, 0, 0, 0}
	got, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{1, 1, 1, 1}
	if !approxEqualVec(got, want, 1e-12) {
		t.Errorf("FFT(impulse) = %v", got)
	}

	// FFT of a constant is an impulse of height N at bin 0.
	c := []complex128{2, 2, 2, 2}
	got, err = FFT(c)
	if err != nil {
		t.Fatal(err)
	}
	want = []complex128{8, 0, 0, 0}
	if !approxEqualVec(got, want, 1e-12) {
		t.Errorf("FFT(const) = %v", got)
	}

	// Single complex tone at bin 1 of N=4.
	tone := make([]complex128, 4)
	for n := range tone {
		tone[n] = cmplx.Exp(complex(0, 2*math.Pi*float64(n)/4))
	}
	got, err = FFT(tone)
	if err != nil {
		t.Fatal(err)
	}
	want = []complex128{0, 4, 0, 0}
	if !approxEqualVec(got, want, 1e-12) {
		t.Errorf("FFT(tone) = %v", got)
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 3, 5, 8, 13, 16, 30, 56, 64, 100} {
		x := randomVec(rng, n)
		got, err := FFT(x)
		if err != nil {
			t.Fatalf("FFT(n=%d): %v", n, err)
		}
		want := DFTNaive(x)
		if !approxEqualVec(got, want, 1e-8*float64(n)) {
			t.Errorf("n=%d: FFT disagrees with naive DFT", n)
		}
	}
}

func TestFFTRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 7, 16, 30, 56, 64, 127, 128} {
		x := randomVec(rng, n)
		fx, err := FFT(x)
		if err != nil {
			t.Fatalf("FFT: %v", err)
		}
		back, err := IFFT(fx)
		if err != nil {
			t.Fatalf("IFFT: %v", err)
		}
		if !approxEqualVec(back, x, 1e-9*float64(n)) {
			t.Errorf("n=%d: IFFT(FFT(x)) != x", n)
		}
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4, 5}
	orig := append([]complex128(nil), x...)
	if _, err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if _, err := IFFT(x); err != nil {
		t.Fatal(err)
	}
	if !approxEqualVec(x, orig, 0) {
		t.Error("transform mutated its input")
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{8, 30, 56} {
		x := randomVec(rng, n)
		fx, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		var et, ef float64
		for i := range x {
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ef += real(fx[i])*real(fx[i]) + imag(fx[i])*imag(fx[i])
		}
		if math.Abs(et-ef/float64(n)) > 1e-8*et {
			t.Errorf("n=%d: Parseval violated: time %v vs freq %v", n, et, ef/float64(n))
		}
	}
}

func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randomVec(rng, 30)
	y := randomVec(rng, 30)
	sum := make([]complex128, 30)
	for i := range sum {
		sum[i] = 2*x[i] + 3i*y[i]
	}
	fx, _ := FFT(x)
	fy, _ := FFT(y)
	fsum, _ := FFT(sum)
	for i := range fsum {
		want := 2*fx[i] + 3i*fy[i]
		if cmplx.Abs(fsum[i]-want) > 1e-8 {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = false", n)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 30, 56} {
		if IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = true", n)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	tests := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {56, 64}, {64, 64}, {65, 128}, {0, 1}, {-3, 1},
	}
	for _, tt := range tests {
		if got := NextPowerOfTwo(tt.in); got != tt.want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestPropFFTRoundtripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(nRaw uint8) bool {
		n := int(nRaw)%97 + 1
		x := randomVec(rng, n)
		fx, err := FFT(x)
		if err != nil {
			return false
		}
		back, err := IFFT(fx)
		if err != nil {
			return false
		}
		return approxEqualVec(back, x, 1e-8*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropTimeShiftIsPhaseRamp(t *testing.T) {
	// Delaying a signal by one sample multiplies bin k by exp(-j2πk/N).
	rng := rand.New(rand.NewSource(6))
	n := 32
	x := randomVec(rng, n)
	shifted := make([]complex128, n)
	for i := range shifted {
		shifted[i] = x[(i-1+n)%n]
	}
	fx, _ := FFT(x)
	fs, _ := FFT(shifted)
	for k := 0; k < n; k++ {
		want := fx[k] * cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
		if cmplx.Abs(fs[k]-want) > 1e-9 {
			t.Fatalf("shift theorem violated at bin %d", k)
		}
	}
}
