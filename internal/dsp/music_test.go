package dsp

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// twoPathCSI synthesizes H[k] = Σ aᵖ·exp(−j2π·k·Δf·τᵖ) for n subcarriers.
func twoPathCSI(n int, df float64, delays []float64, amps []float64) []complex128 {
	h := make([]complex128, n)
	for k := 0; k < n; k++ {
		for p := range delays {
			angle := -2 * math.Pi * float64(k) * df * delays[p]
			h[k] += complex(amps[p], 0) * cmplx.Exp(complex(0, angle))
		}
	}
	return h
}

func musicCfg() MusicConfig {
	return MusicConfig{
		SubcarrierSpacing: 20e6 / 30, // the default NomLoc grid
		NumPaths:          2,
	}
}

func TestMusicPseudoSpectrumSinglePath(t *testing.T) {
	df := 20e6 / 30
	trueDelay := 80e-9
	h := twoPathCSI(30, df, []float64{trueDelay}, []float64{1})
	cfg := musicCfg()
	cfg.NumPaths = 1

	delays := make([]float64, 301)
	for i := range delays {
		delays[i] = float64(i) * 1e-9
	}
	spec, err := MusicPseudoSpectrum(h, cfg, delays)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i, p := range spec {
		if p > spec[best] {
			best = i
		}
	}
	if got := delays[best]; math.Abs(got-trueDelay) > 2e-9 {
		t.Errorf("peak at %v ns, want %v ns", got*1e9, trueDelay*1e9)
	}
}

func TestMusicResolvesSubTapPaths(t *testing.T) {
	// Two paths 25 ns apart — half the 50 ns IFFT tap, unresolvable by
	// the classic power delay profile, but separable by MUSIC.
	df := 20e6 / 30
	d1, d2 := 60e-9, 85e-9
	h := twoPathCSI(30, df, []float64{d1, d2}, []float64{1, 0.8})

	delays := make([]float64, 401)
	for i := range delays {
		delays[i] = float64(i) * 0.5e-9
	}
	spec, err := MusicPseudoSpectrum(h, musicCfg(), delays)
	if err != nil {
		t.Fatal(err)
	}
	// Count distinct peaks above 1% of the maximum.
	maxVal := 0.0
	for _, p := range spec {
		if p > maxVal {
			maxVal = p
		}
	}
	var peakDelays []float64
	for i := 1; i < len(spec)-1; i++ {
		if spec[i] >= spec[i-1] && spec[i] > spec[i+1] && spec[i] > maxVal/100 {
			peakDelays = append(peakDelays, delays[i])
		}
	}
	if len(peakDelays) < 2 {
		t.Fatalf("MUSIC found %d peaks, want 2 (sub-tap separation)", len(peakDelays))
	}
	// The two strongest peaks should bracket the true delays within 3 ns.
	found1, found2 := false, false
	for _, pd := range peakDelays {
		if math.Abs(pd-d1) < 3e-9 {
			found1 = true
		}
		if math.Abs(pd-d2) < 3e-9 {
			found2 = true
		}
	}
	if !found1 || !found2 {
		t.Errorf("peaks at %v ns, want ≈ %v and %v ns",
			scaled(peakDelays, 1e9), d1*1e9, d2*1e9)
	}
}

func TestFirstPathDelayMUSIC(t *testing.T) {
	// The direct path is WEAKER than the reflection (NLOS) but earlier:
	// first-path picking must return the early one, which max-tap PDP
	// cannot do below tap resolution.
	df := 20e6 / 30
	direct, reflection := 50e-9, 90e-9
	h := twoPathCSI(30, df, []float64{direct, reflection}, []float64{0.6, 1.0})

	got, err := FirstPathDelayMUSIC(h, musicCfg(), 300e-9, 1e-9, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-direct) > 4e-9 {
		t.Errorf("first path at %v ns, want %v ns", got*1e9, direct*1e9)
	}
}

func TestMusicRobustToNoise(t *testing.T) {
	df := 20e6 / 30
	trueDelay := 70e-9
	rng := rand.New(rand.NewSource(4))
	h := twoPathCSI(30, df, []float64{trueDelay, 130e-9}, []float64{1, 0.5})
	for k := range h {
		h[k] += complex(rng.NormFloat64()*0.02, rng.NormFloat64()*0.02)
	}
	got, err := FirstPathDelayMUSIC(h, musicCfg(), 300e-9, 1e-9, 12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-trueDelay) > 6e-9 {
		t.Errorf("noisy first path at %v ns, want %v ns", got*1e9, trueDelay*1e9)
	}
}

func TestMusicConfigValidation(t *testing.T) {
	h := twoPathCSI(30, 20e6/30, []float64{50e-9}, []float64{1})
	delays := []float64{0, 50e-9}

	bad := musicCfg()
	bad.SubcarrierSpacing = 0
	if _, err := MusicPseudoSpectrum(h, bad, delays); !errors.Is(err, ErrBadMusicConfig) {
		t.Errorf("zero spacing err = %v", err)
	}

	bad = musicCfg()
	bad.NumPaths = 0
	if _, err := MusicPseudoSpectrum(h, bad, delays); !errors.Is(err, ErrBadMusicConfig) {
		t.Errorf("zero paths err = %v", err)
	}

	bad = musicCfg()
	bad.SmoothingLen = 2 // ≤ NumPaths
	if _, err := MusicPseudoSpectrum(h, bad, delays); !errors.Is(err, ErrTooFewCarriers) {
		t.Errorf("small window err = %v", err)
	}

	bad = musicCfg()
	bad.SmoothingLen = 30 // > n−1
	if _, err := MusicPseudoSpectrum(h, bad, delays); !errors.Is(err, ErrTooFewCarriers) {
		t.Errorf("huge window err = %v", err)
	}

	if _, err := MusicPseudoSpectrum(nil, musicCfg(), delays); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("empty csi err = %v", err)
	}

	if _, err := FirstPathDelayMUSIC(h, musicCfg(), 0, 1e-9, 10); !errors.Is(err, ErrBadMusicConfig) {
		t.Errorf("zero maxDelay err = %v", err)
	}
	if _, err := FirstPathDelayMUSIC(h, musicCfg(), 100e-9, 200e-9, 10); !errors.Is(err, ErrBadMusicConfig) {
		t.Errorf("step > maxDelay err = %v", err)
	}
}

// scaled multiplies each element (test output helper).
func scaled(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}

func BenchmarkMusicPseudoSpectrum(b *testing.B) {
	df := 20e6 / 30
	h := twoPathCSI(30, df, []float64{60e-9, 110e-9}, []float64{1, 0.7})
	delays := make([]float64, 301)
	for i := range delays {
		delays[i] = float64(i) * 1e-9
	}
	cfg := musicCfg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MusicPseudoSpectrum(h, cfg, delays); err != nil {
			b.Fatal(err)
		}
	}
}
