package dsp

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrBadArgument is returned for out-of-range parameters.
var ErrBadArgument = errors.New("dsp: bad argument")

// PowerDelayProfile converts a frequency-domain channel (CSI vector, one
// complex gain per subcarrier) into the per-tap power of the time-domain
// channel impulse response: p[n] = |IFFT(H)[n]|².
//
// This is the paper's §IV-A transformation: "With Inverse Fast Fourier
// Transformation (IFFT), we can obtain CIR whose amplitude is proportional
// to the power delay profile of the radio link."
func PowerDelayProfile(csi []complex128) ([]float64, error) {
	cir, err := IFFT(csi)
	if err != nil {
		return nil, err
	}
	p := make([]float64, len(cir))
	for i, c := range cir {
		re, im := real(c), imag(c)
		p[i] = re*re + im*im
	}
	return p, nil
}

// MaxTap returns the index and value of the largest entry of the profile.
// NomLoc approximates the power of the direct path (PDP) with this maximum:
// under LOS the first (direct) tap dominates; under NLOS the attenuated
// direct tap is bypassed in favor of the strongest reflection, which still
// tracks distance, and weaker multipath taps are ignored.
func MaxTap(profile []float64) (idx int, val float64) {
	idx = -1
	val = math.Inf(-1)
	for i, p := range profile {
		if p > val {
			idx, val = i, p
		}
	}
	return idx, val
}

// DirectPathPower is the composed PDP estimator: CSI → CIR → max tap power.
// It returns the estimated direct-path power and the tap index it came
// from (the index maps to delay via the sample period 1/bandwidth).
func DirectPathPower(csi []complex128) (power float64, tap int, err error) {
	profile, err := PowerDelayProfile(csi)
	if err != nil {
		return 0, 0, err
	}
	tap, power = MaxTap(profile)
	return power, tap, nil
}

// TotalPower returns Σ|H[k]|² — the wideband received power, the RSS-like
// quantity coarse baselines use.
func TotalPower(csi []complex128) float64 {
	var sum float64
	for _, c := range csi {
		re, im := real(c), imag(c)
		sum += re*re + im*im
	}
	return sum
}

// FirstTapAboveThreshold returns the index of the first profile tap whose
// power exceeds frac times the maximum tap power, or −1 when the profile
// is empty. With frac well below 1 this detects the earliest significant
// arrival, a useful diagnostic for LOS/NLOS classification.
func FirstTapAboveThreshold(profile []float64, frac float64) int {
	_, maxVal := MaxTap(profile)
	if maxVal <= 0 || math.IsInf(maxVal, -1) {
		return -1
	}
	thresh := maxVal * frac
	for i, p := range profile {
		if p >= thresh {
			return i
		}
	}
	return -1
}

// DelaySpreadRMS returns the power-weighted RMS delay spread of the profile
// in tap units. It quantifies multipath richness: a pure LOS link has a
// spread near zero, a cluttered NLOS link a large one.
func DelaySpreadRMS(profile []float64) float64 {
	var pSum, tSum float64
	for i, p := range profile {
		pSum += p
		tSum += p * float64(i)
	}
	if pSum <= 0 {
		return 0
	}
	mean := tSum / pSum
	var acc float64
	for i, p := range profile {
		d := float64(i) - mean
		acc += p * d * d
	}
	return math.Sqrt(acc / pSum)
}

// DB converts a linear power ratio to decibels. Non-positive input maps to
// −Inf.
//
//nomloc:unit result=dB
func DB(linear float64) float64 {
	if linear <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(linear)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// AmplitudeFromDB converts a power in dB to a linear amplitude (voltage)
// factor: 20·log10(a) = db.
func AmplitudeFromDB(db float64) float64 { return math.Pow(10, db/20) }

// Magnitudes returns |x[i]| for each entry.
func Magnitudes(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, c := range x {
		out[i] = cmplx.Abs(c)
	}
	return out
}

// HannWindow returns the length-n Hann window. Windowing the CSI before
// the IFFT trades delay resolution for sidelobe suppression; NomLoc's PDP
// estimator can optionally apply it to reduce spectral leakage between
// taps.
func HannWindow(n int) ([]float64, error) {
	if n <= 0 {
		return nil, ErrBadArgument
	}
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w, nil
	}
	for i := 0; i < n; i++ {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w, nil
}

// ApplyWindow returns x[i]·w[i]. The slices must have equal length.
func ApplyWindow(x []complex128, w []float64) ([]complex128, error) {
	if len(x) != len(w) {
		return nil, ErrBadArgument
	}
	out := make([]complex128, len(x))
	for i := range x {
		out[i] = x[i] * complex(w[i], 0)
	}
	return out, nil
}

// ZeroPad returns x extended with zeros to length n (n ≥ len(x)).
// Zero-padding the CSI before the IFFT interpolates the delay profile,
// giving sub-tap peak localization.
func ZeroPad(x []complex128, n int) ([]complex128, error) {
	if n < len(x) {
		return nil, ErrBadArgument
	}
	out := make([]complex128, n)
	copy(out, x)
	return out, nil
}
