package server

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/journal"
	"github.com/nomloc/nomloc/internal/wire"
)

// openJournal opens a test journal under dir.
func openJournal(t *testing.T, dir string) *journal.Journal {
	t.Helper()
	j, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	return j
}

// journaledHarness is one deterministic server run: a journal-backed
// server with two AP connections and one object connection, driven
// strictly sequentially so two identical runs append identical bytes.
type journaledHarness struct {
	srv    *Server
	j      *journal.Journal
	ap1    interface{ Read([]byte) (int, error) }
	object interface{ Read([]byte) (int, error) }
}

// expectMsg reads one message of type T from conn, failing on anything
// else.
func expectMsg[T wire.Message](t *testing.T, conn interface{ Read([]byte) (int, error) }) T {
	t.Helper()
	msg, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	out, ok := msg.(T)
	if !ok {
		t.Fatalf("got %q, want %T", msg.Type(), out)
	}
	return out
}

// driveRound runs one full measurement round over already-registered
// connections: round start, both AP reports (each acked), and the
// object's estimate.
func driveRound(t *testing.T, roundID uint64, object, ap1, ap2 interface {
	Read([]byte) (int, error)
	Write([]byte) (int, error)
}) wire.Estimate {
	t.Helper()
	start := &wire.RoundStart{RoundID: roundID, ObjectID: "obj1", Packets: 2}
	if err := wire.WriteMessage(object, start); err != nil {
		t.Fatal(err)
	}
	// Both APs see the forwarded round start before reporting.
	expectMsg[*wire.RoundStart](t, ap1)
	expectMsg[*wire.RoundStart](t, ap2)
	reports := []*wire.CSIReport{
		{RoundID: roundID, APID: "ap1", Pos: geom.V(1, 1), Batch: csiBatch("ap1", []complex128{1, 2})},
		{RoundID: roundID, APID: "ap2", Pos: geom.V(11, 7), Batch: csiBatch("ap2", []complex128{2, 1})},
	}
	conns := []interface {
		Read([]byte) (int, error)
		Write([]byte) (int, error)
	}{ap1, ap2}
	for i, rep := range reports {
		if err := wire.WriteMessage(conns[i], rep); err != nil {
			t.Fatal(err)
		}
		expectMsg[*wire.ReportAck](t, conns[i])
	}
	est := expectMsg[*wire.Estimate](t, object)
	return *est
}

// runJournaledSession drives `rounds` full rounds against a fresh
// journal-backed server in dir, shuts the server down cleanly, and
// returns the estimates it broadcast.
func runJournaledSession(t *testing.T, dir string, rounds int) []wire.Estimate {
	t.Helper()
	j := openJournal(t, dir)
	s, addr := startServer(t, Config{Localizer: testLocalizer(t), Journal: j, JournalSnapshotEvery: 2})

	ap1 := dialRaw(t, addr)
	hello(t, ap1, &wire.Hello{Role: wire.RoleAP, ID: "ap1", Pos: geom.V(1, 1)})
	ap2 := dialRaw(t, addr)
	hello(t, ap2, &wire.Hello{Role: wire.RoleAP, ID: "ap2", Pos: geom.V(11, 7)})
	object := dialRaw(t, addr)
	hello(t, object, &wire.Hello{Role: wire.RoleObject, ID: "obj1"})

	for r := 1; r <= rounds; r++ {
		driveRound(t, uint64(r), object, ap1, ap2)
	}
	got := s.Estimates()
	// Shut down before the connection cleanups run so no session-close
	// records race into the journal.
	s.Shutdown()
	if err := j.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}
	return got
}

// TestJournalRestartResumes: a restarted server recovers estimates,
// finished-round memory, and report history from its journal — new rounds
// continue the sequence, and a re-announced finished round yields the
// recorded estimate instead of a duplicate solve.
func TestJournalRestartResumes(t *testing.T) {
	dir := t.TempDir()
	first := runJournaledSession(t, dir, 2)
	if len(first) != 2 {
		t.Fatalf("first run estimates = %d, want 2", len(first))
	}

	j := openJournal(t, dir)
	defer func() {
		if err := j.Close(); err != nil && !errors.Is(err, journal.ErrClosed) {
			t.Errorf("journal close: %v", err)
		}
	}()
	s, addr := startServer(t, Config{Localizer: testLocalizer(t), Journal: j})
	restored := s.Estimates()
	if len(restored) != len(first) {
		t.Fatalf("restored %d estimates, want %d", len(restored), len(first))
	}
	for i := range first {
		if restored[i] != first[i] {
			t.Fatalf("estimate %d diverged after restart: %+v vs %+v", i, restored[i], first[i])
		}
	}

	ap1 := dialRaw(t, addr)
	hello(t, ap1, &wire.Hello{Role: wire.RoleAP, ID: "ap1", Pos: geom.V(1, 1)})
	ap2 := dialRaw(t, addr)
	hello(t, ap2, &wire.Hello{Role: wire.RoleAP, ID: "ap2", Pos: geom.V(11, 7)})
	object := dialRaw(t, addr)
	hello(t, object, &wire.Hello{Role: wire.RoleObject, ID: "obj1"})

	// Re-announcing a finished round replays its recorded estimate.
	if err := wire.WriteMessage(object, &wire.RoundStart{RoundID: 1, ObjectID: "obj1", Packets: 2}); err != nil {
		t.Fatal(err)
	}
	replayed := expectMsg[*wire.Estimate](t, object)
	if *replayed != first[0] {
		t.Fatalf("replayed estimate = %+v, want %+v", *replayed, first[0])
	}
	if got := s.Estimates(); len(got) != len(first) {
		t.Fatalf("re-announcement appended an estimate: %d, want %d", len(got), len(first))
	}

	// A genuinely new round extends the sequence, solving from the
	// recovered history plus its fresh reports.
	est := driveRound(t, 3, object, ap1, ap2)
	if est.RoundID != 3 || est.NumAnchors < 2 {
		t.Fatalf("post-restart estimate = %+v", est)
	}
	if got := s.Estimates(); len(got) != len(first)+1 {
		t.Fatalf("estimates after new round = %d, want %d", len(got), len(first)+1)
	}
	s.Shutdown()
}

// TestJournalTwoRunByteEquality: two identical server runs against fresh
// journals produce byte-identical journal directories — the determinism
// contract the CI recovery job asserts under -race.
func TestJournalTwoRunByteEquality(t *testing.T) {
	dirs := [2]string{t.TempDir(), t.TempDir()}
	for _, dir := range dirs {
		runJournaledSession(t, dir, 3)
	}
	entries0, err := os.ReadDir(dirs[0])
	if err != nil {
		t.Fatal(err)
	}
	entries1, err := os.ReadDir(dirs[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(entries0) != len(entries1) {
		t.Fatalf("file counts differ: %d vs %d", len(entries0), len(entries1))
	}
	for i := range entries0 {
		if entries0[i].Name() != entries1[i].Name() {
			t.Fatalf("file names differ: %s vs %s", entries0[i].Name(), entries1[i].Name())
		}
		b0, err := os.ReadFile(filepath.Join(dirs[0], entries0[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		b1, err := os.ReadFile(filepath.Join(dirs[1], entries1[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b0, b1) {
			t.Fatalf("journal file %s differs between identical runs", entries0[i].Name())
		}
	}
}

// TestJournalVerifyAfterLiveRun: the journal a live server writes passes
// nomloc-replay's verification with zero diffs — recorded estimates
// re-solve to the same bits.
func TestJournalVerifyAfterLiveRun(t *testing.T) {
	dir := t.TempDir()
	runJournaledSession(t, dir, 3)
	vr, err := journal.Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !vr.Clean() {
		t.Fatalf("live journal has %d diffs: %+v", len(vr.Diffs), vr.Diffs)
	}
	if vr.Rounds+vr.Skipped < 3 {
		t.Fatalf("verify saw %d rounds (+%d skipped), want 3", vr.Rounds, vr.Skipped)
	}
}

// TestJournalMismatchRejected: resuming a journal under a different
// configuration is refused with ErrJournalMismatch rather than silently
// replaying state under the wrong retention or geometry.
func TestJournalMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	runJournaledSession(t, dir, 1)

	j := openJournal(t, dir)
	defer func() {
		if err := j.Close(); err != nil {
			t.Errorf("journal close: %v", err)
		}
	}()
	_, err := New(Config{Localizer: testLocalizer(t), Journal: j, MaxNomadicSites: 3})
	if !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("New with mismatched retention = %v, want ErrJournalMismatch", err)
	}
}
