package server

import (
	"encoding/json"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/telemetry"
	"github.com/nomloc/nomloc/internal/wire"
)

func TestCurrentStatusSorted(t *testing.T) {
	s, err := New(Config{Localizer: testLocalizer(t)})
	if err != nil {
		t.Fatal(err)
	}
	// Insert ids directly so map iteration order is the only ordering the
	// snapshot could possibly inherit.
	s.mu.Lock()
	for _, id := range []string{"ap-c", "ap-a", "ap-b", "ap-z", "ap-m"} {
		s.aps[id] = &session{id: id}
	}
	for _, id := range []string{"obj-2", "obj-1", "obj-3"} {
		s.objects[id] = &session{id: id}
	}
	s.mu.Unlock()

	st := s.CurrentStatus()
	wantAPs := []string{"ap-a", "ap-b", "ap-c", "ap-m", "ap-z"}
	for i, id := range wantAPs {
		if st.APs[i] != id {
			t.Fatalf("APs = %v, want %v", st.APs, wantAPs)
		}
	}
	wantObjs := []string{"obj-1", "obj-2", "obj-3"}
	for i, id := range wantObjs {
		if st.Objects[i] != id {
			t.Fatalf("Objects = %v, want %v", st.Objects, wantObjs)
		}
	}

	// The JSON body is byte-stable across snapshots — the property a
	// dashboard differ relies on.
	b1, err := json.Marshal(s.CurrentStatus())
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(s.CurrentStatus())
	if string(b1) != string(b2) {
		t.Errorf("status JSON unstable:\n%s\nvs\n%s", b1, b2)
	}
}

// runInstrumentedRound drives one complete measurement round (two APs,
// one object) against a fixed-clock instrumented server and returns the
// /metrics body scraped after the estimate arrived.
func runInstrumentedRound(t *testing.T) string {
	t.Helper()
	epoch := time.Date(2014, time.June, 30, 12, 0, 0, 0, time.UTC)
	reg := telemetry.New(func() time.Time { return epoch })
	s, addr := startServer(t, Config{
		Localizer: testLocalizer(t),
		Telemetry: reg,
		Workers:   2,
	})

	csiVec := make([]complex128, 8)
	for k := range csiVec {
		csiVec[k] = complex(1, 0)
	}

	// Two APs that answer the forwarded RoundStart with a CSI report.
	for _, spec := range []struct {
		id  string
		pos geom.Vec
	}{{"ap1", geom.V(1, 1)}, {"ap2", geom.V(11, 7)}} {
		conn := dialRaw(t, addr)
		if ack := hello(t, conn, &wire.Hello{Role: wire.RoleAP, ID: spec.id, Pos: spec.pos}); !ack.OK {
			t.Fatalf("%s rejected: %s", spec.id, ack.Detail)
		}
		go func(conn net.Conn, id string, pos geom.Vec) {
			for {
				msg, err := wire.ReadMessage(conn)
				if err != nil {
					return
				}
				if m, ok := msg.(*wire.RoundStart); ok {
					_ = wire.WriteMessage(conn, &wire.CSIReport{
						RoundID: m.RoundID, APID: id, Pos: pos,
						Batch: csiBatch(id, csiVec),
					})
				}
			}
		}(conn, spec.id, spec.pos)
	}

	obj := dialRaw(t, addr)
	if ack := hello(t, obj, &wire.Hello{Role: wire.RoleObject, ID: "obj"}); !ack.OK {
		t.Fatalf("object rejected: %s", ack.Detail)
	}
	if err := wire.WriteMessage(obj, &wire.RoundStart{RoundID: 1, ObjectID: "obj", Packets: 1}); err != nil {
		t.Fatal(err)
	}
	_ = obj.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		msg, err := wire.ReadMessage(obj)
		if err != nil {
			t.Fatalf("waiting for estimate: %v", err)
		}
		if msg.Type() == wire.TypeEstimate {
			break
		}
		if msg.Type() == wire.TypeError {
			t.Fatalf("round errored: %+v", msg)
		}
	}

	// All metric updates are ordered before the estimate broadcast, so a
	// scrape taken now sees the settled state.
	web := httptest.NewServer(s.StatusHandler())
	defer web.Close()
	resp, err := web.Client().Get(web.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestMetricsExposition(t *testing.T) {
	body := runInstrumentedRound(t)
	for _, want := range []string{
		"# TYPE nomloc_server_solve_seconds histogram",
		"nomloc_server_solve_seconds_count 1",
		"# TYPE nomloc_server_pool_tasks_running gauge",
		"nomloc_server_pool_tasks_done_total 1",
		"nomloc_server_rounds_started_total 1",
		"nomloc_server_rounds_solved_total 1",
		"nomloc_server_reports_total 2",
		`nomloc_server_sessions{role="ap"} 2`,
		`nomloc_server_sessions{role="object"} 1`,
		`nomloc_span_seconds_count{span="round"} 1`,
		`nomloc_span_seconds_count{span="solve"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\nbody:\n%s", want, body)
		}
	}
}

func TestMetricsDeterministicAcrossRuns(t *testing.T) {
	// Two identical fixed-clock, fixed-input runs must expose
	// byte-identical /metrics bodies.
	a := runInstrumentedRound(t)
	b := runInstrumentedRound(t)
	if a != b {
		t.Errorf("fixed-clock runs exposed different bodies:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}
