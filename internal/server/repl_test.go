package server

// White-box tests for the standby/replication handlers: handshake,
// fencing, idempotent batch absorption, and promotion. The wire-level
// conversations are hand-driven so each assertion pins one protocol
// obligation; the full failover conformance run (crash a primary
// mid-round, promote, byte-identical estimates) lives in internal/chaos.

import (
	"errors"
	"net"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/journal"
	"github.com/nomloc/nomloc/internal/telemetry"
	"github.com/nomloc/nomloc/internal/wire"
)

// startStandby runs a journal-backed standby server on an ephemeral port.
func startStandby(t *testing.T, dir string, epoch uint64) (*Server, string) {
	t.Helper()
	j := openJournal(t, dir)
	t.Cleanup(func() { _ = j.Close() })
	return startServer(t, Config{
		Localizer: testLocalizer(t),
		Journal:   j,
		Standby:   true,
		Epoch:     epoch,
		Telemetry: telemetry.New(func() time.Time { return time.Unix(0, 0) }),
	})
}

// replHello performs a replication handshake and returns the ack.
func replHello(t *testing.T, conn net.Conn, serverID string, epoch uint64) *wire.ReplAck {
	t.Helper()
	if err := wire.WriteMessage(conn, &wire.ReplHello{ServerID: serverID, Epoch: epoch}); err != nil {
		t.Fatal(err)
	}
	return readReplAck(t, conn)
}

// readReplAck reads frames until a ReplAck arrives, skipping the
// advisory ErrorMsg the server pairs with every NACK.
func readReplAck(t *testing.T, conn net.Conn) *wire.ReplAck {
	t.Helper()
	for {
		msg, err := wire.ReadMessage(conn)
		if err != nil {
			t.Fatalf("read ack: %v", err)
		}
		switch m := msg.(type) {
		case *wire.ReplAck:
			return m
		case *wire.ErrorMsg:
			// Advisory; the ack follows (or preceded it).
		default:
			t.Fatalf("got %q, want repl_ack", msg.Type())
		}
	}
}

// sendBatch ships one ReplBatch and returns the ack.
func sendBatch(t *testing.T, conn net.Conn, epoch uint64, recs []wire.ReplRecord) *wire.ReplAck {
	t.Helper()
	if err := wire.WriteMessage(conn, &wire.ReplBatch{Epoch: epoch, Records: recs}); err != nil {
		t.Fatal(err)
	}
	return readReplAck(t, conn)
}

// primaryRecords runs a short journaled primary session and returns every
// record in its journal as wire records, plus the directory.
func primaryRecords(t *testing.T) ([]wire.ReplRecord, string) {
	t.Helper()
	dir := t.TempDir()
	runJournaledSession(t, dir, 2)
	tail, err := journal.TailDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	var recs []wire.ReplRecord
	for {
		rec, done, err := tail.Next()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return recs, dir
		}
		recs = append(recs, wire.ReplRecord{Seq: rec.Seq, Kind: uint8(rec.Kind), Payload: rec.Payload})
	}
}

func TestStandbyRequiresJournal(t *testing.T) {
	if _, err := New(Config{Localizer: testLocalizer(t), Standby: true}); !errors.Is(err, ErrStandbyNeedsJournal) {
		t.Errorf("err = %v, want ErrStandbyNeedsJournal", err)
	}
}

func TestStandbyRejectsAgents(t *testing.T) {
	_, addr := startStandby(t, t.TempDir(), 1)
	conn := dialRaw(t, addr)
	ack := hello(t, conn, &wire.Hello{Role: wire.RoleAP, ID: "ap1", Pos: geom.V(1, 1)})
	if ack.OK {
		t.Fatal("standby accepted an agent hello")
	}
}

// TestStandbyReplicationApplies streams a real primary journal into a
// standby batch by batch and checks the applied floor, idempotent
// re-delivery, and that the standby's journal directory recovers to the
// identical state.
func TestStandbyReplicationApplies(t *testing.T) {
	recs, primaryDir := primaryRecords(t)
	if len(recs) < 4 {
		t.Fatalf("primary session wrote only %d records", len(recs))
	}
	standbyDir := t.TempDir()
	s, addr := startStandby(t, standbyDir, 1)

	conn := dialRaw(t, addr)
	ack := replHello(t, conn, "nomloc-server", 1)
	if !ack.OK || ack.Seq != 0 || ack.Epoch != 1 {
		t.Fatalf("handshake ack = %+v", ack)
	}

	// Ship in two batches, the second overlapping the first (a re-sent
	// tail after a reconnect): the overlap must be absorbed silently.
	mid := len(recs) / 2
	if ack := sendBatch(t, conn, 1, recs[:mid]); !ack.OK || ack.Seq != recs[mid-1].Seq {
		t.Fatalf("first batch ack = %+v", ack)
	}
	if ack := sendBatch(t, conn, 1, recs); !ack.OK || ack.Seq != recs[len(recs)-1].Seq {
		t.Fatalf("overlapping batch ack = %+v", ack)
	}
	if got := s.applier.Seq(); got != recs[len(recs)-1].Seq {
		t.Errorf("applier floor = %d, want %d", got, recs[len(recs)-1].Seq)
	}
	if dup := s.metrics.replApplied.Value(); dup != float64(len(recs)) {
		t.Errorf("applied counter = %v, want %d (idempotent re-delivery must not recount)", dup, len(recs))
	}

	// A batch that skips ahead renegotiates instead of crashing: the nack
	// carries the floor and the session survives.
	gap := []wire.ReplRecord{{Seq: recs[len(recs)-1].Seq + 5, Kind: uint8(journal.KindSessionOpen), Payload: []byte(`{"role":"ap","id":"x"}`)}}
	if ack := sendBatch(t, conn, 1, gap); ack.OK || ack.Seq != recs[len(recs)-1].Seq {
		t.Fatalf("gap batch ack = %+v", ack)
	}

	// The standby's journal directory must recover to the primary's exact
	// state: same sequences, same contents.
	s.Shutdown()
	want, _, err := journal.ReadState(primaryDir)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := journal.ReadState(standbyDir)
	if err != nil {
		t.Fatal(err)
	}
	if want.Seq != got.Seq || len(want.Estimates) != len(got.Estimates) {
		t.Fatalf("standby state (seq %d, %d estimates) != primary (seq %d, %d estimates)",
			got.Seq, len(got.Estimates), want.Seq, len(want.Estimates))
	}
}

// TestStandbyFencesStaleEpoch: handshakes and batches below the
// standby's epoch are rejected with the typed error, the counter
// increments, and the ack names the winning epoch.
func TestStandbyFencesStaleEpoch(t *testing.T) {
	s, addr := startStandby(t, t.TempDir(), 5)

	conn := dialRaw(t, addr)
	ack := replHello(t, conn, "nomloc-server", 3)
	if ack.OK || ack.Epoch != 5 {
		t.Fatalf("stale hello ack = %+v, want rejection naming epoch 5", ack)
	}
	if n := s.metrics.replFenced.Value(); n != 1 {
		t.Errorf("fenced counter = %v, want 1", n)
	}

	// A session that handshook at the current epoch but ships an older
	// one per batch (promotion raced the stream) is fenced per batch.
	conn2 := dialRaw(t, addr)
	if ack := replHello(t, conn2, "nomloc-server", 5); !ack.OK {
		t.Fatalf("current-epoch hello rejected: %s", ack.Detail)
	}
	if ack := sendBatch(t, conn2, 4, nil); ack.OK || ack.Epoch != 5 {
		t.Fatalf("stale batch ack = %+v", ack)
	}
	if n := s.metrics.replFenced.Value(); n != 2 {
		t.Errorf("fenced counter = %v, want 2", n)
	}

	// Wrong service name is a plain rejection, not a fence.
	conn3 := dialRaw(t, addr)
	if ack := replHello(t, conn3, "other-service", 5); ack.OK {
		t.Fatal("wrong service accepted")
	}
	if n := s.metrics.replFenced.Value(); n != 2 {
		t.Errorf("fenced counter moved on a non-fence rejection: %v", n)
	}
}

// TestPromotionServesReplicatedState: a standby that absorbed a primary's
// stream promotes, starts serving agents, remembers finished rounds
// (re-announcement yields the recorded estimate, not a duplicate solve),
// and fences the deposed primary.
func TestPromotionServesReplicatedState(t *testing.T) {
	recs, _ := primaryRecords(t)
	s, addr := startStandby(t, t.TempDir(), 1)

	repl := dialRaw(t, addr)
	if ack := replHello(t, repl, "nomloc-server", 1); !ack.OK {
		t.Fatalf("hello rejected: %s", ack.Detail)
	}
	if ack := sendBatch(t, repl, 1, recs); !ack.OK {
		t.Fatalf("batch rejected: %s", ack.Detail)
	}

	// Promote over the wire; epoch must move strictly past the primary's.
	if err := wire.WriteMessage(repl, &wire.Promote{}); err != nil {
		t.Fatal(err)
	}
	ack := readReplAck(t, repl)
	if !ack.OK || ack.Epoch != 2 {
		t.Fatalf("promote ack = %+v, want OK at epoch 2", ack)
	}
	if s.Standby() || s.Epoch() != 2 {
		t.Fatalf("standby=%v epoch=%d after promotion", s.Standby(), s.Epoch())
	}
	if n := s.metrics.replPromotions.Value(); n != 1 {
		t.Errorf("promotions counter = %v, want 1", n)
	}
	// Re-promotion is a no-op.
	if epoch, err := s.Promote(0); err != nil || epoch != 2 {
		t.Errorf("re-promote = (%d, %v), want (2, nil)", epoch, err)
	}

	// The deposed primary reconnects at its old epoch and is fenced.
	stale := dialRaw(t, addr)
	if ack := replHello(t, stale, "nomloc-server", 1); ack.OK || ack.Epoch != 2 {
		t.Fatalf("deposed primary ack = %+v, want fence at epoch 2", ack)
	}
	if n := s.metrics.replFenced.Value(); n != 1 {
		t.Errorf("fenced counter = %v, want 1", n)
	}

	// Agents register now, and a round the dead primary already solved
	// replays its recorded estimate instead of re-solving.
	object := dialRaw(t, addr)
	if ack := hello(t, object, &wire.Hello{Role: wire.RoleObject, ID: "obj1"}); !ack.OK {
		t.Fatalf("object rejected after promotion: %s", ack.Detail)
	}
	if err := wire.WriteMessage(object, &wire.RoundStart{RoundID: 1, ObjectID: "obj1", Packets: 2}); err != nil {
		t.Fatal(err)
	}
	est := expectMsg[*wire.Estimate](t, object)
	if est.RoundID != 1 {
		t.Fatalf("replayed estimate for round %d, want 1", est.RoundID)
	}
	wantEst := s.Estimates()
	if len(wantEst) == 0 || wantEst[0].RoundID != 1 || est.Pos != wantEst[0].Pos {
		t.Fatalf("replayed estimate %+v does not match adopted history %+v", est, wantEst)
	}
}

// TestPromoteFreshStandby: promoting a standby that never received a
// record produces a working fresh primary (it writes its own meta).
func TestPromoteFreshStandby(t *testing.T) {
	s, addr := startStandby(t, t.TempDir(), 1)
	if epoch, err := s.Promote(7); err != nil || epoch != 7 {
		t.Fatalf("promote = (%d, %v), want (7, nil)", epoch, err)
	}
	conn := dialRaw(t, addr)
	if ack := hello(t, conn, &wire.Hello{Role: wire.RoleObject, ID: "obj"}); !ack.OK {
		t.Fatalf("fresh promoted primary rejected agent: %s", ack.Detail)
	}
}
