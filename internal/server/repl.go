package server

// Replication handlers (DESIGN.md §14). A standby accepts a primary's
// ReplHello handshake and ReplBatch streams, appends every record to its
// own journal with the primary's sequence numbers (AppendRaw), and
// applies it through replica.Applier — the same journal.State.Apply path
// crash recovery runs — so the standby's state can never drift from what
// the primary would recover to.
//
// Every replication message carries an epoch. The standby rejects
// anything announcing an epoch below its own: after a promotion (which
// always moves strictly above the old primary's epoch) a resurrected old
// primary is fenced at the handshake and again per batch, closing the
// split-brain window. Fences are observable as ErrFencedEpoch on the
// sender and nomloc_repl_fenced_total here.

import (
	"errors"
	"fmt"

	"github.com/nomloc/nomloc/internal/journal"
	"github.com/nomloc/nomloc/internal/wire"
)

// Epoch returns the server's current fencing epoch.
func (s *Server) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Standby reports whether the server is (still) a replication standby.
func (s *Server) Standby() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.standby
}

// Promote turns a standby into a serving primary. The new epoch is
// max(requested, current+1) — always strictly above the epoch the old
// primary streamed at, so the old primary is fenced the moment it
// reappears. requested==0 means "next epoch". Promoting a server that is
// already a primary is a no-op returning the current epoch, so failover
// drills can re-issue the order idempotently.
func (s *Server) Promote(requested uint64) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoteLocked(requested)
}

func (s *Server) promoteLocked(requested uint64) (uint64, error) {
	if !s.standby {
		return s.epoch, nil
	}
	next := s.epoch + 1
	if requested > next {
		next = requested
	}
	// Adopt the replicated state before serving: the promoted standby
	// must resume with exactly the memory a restarted primary would —
	// report history, the estimate log, and the finished-round window
	// that makes late round re-announcements idempotent.
	s.adoptStateLocked(s.applier.State())
	if s.cfg.Journal.LastSeq() == 0 {
		// Promoted before the primary ever streamed a record: the
		// journal is still empty, so this server writes the meta record
		// itself, exactly as a fresh primary would.
		if err := s.cfg.Journal.AppendMeta(s.journalMeta()); err != nil {
			s.crashLocked(err)
			return 0, err
		}
	}
	s.standby = false
	s.applier = nil
	s.epoch = next
	s.metrics.replPromoted()
	s.metrics.replEpochGauge(next)
	s.cfg.Logf("server: promoted to primary at epoch %d", next)
	return next, nil
}

// onReplHello negotiates a replication session: verify the sender speaks
// for the same logical service, fence stale epochs, and hand back the
// resume point (last durably applied sequence number).
func (s *Server) onReplHello(sess *session, m *wire.ReplHello) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.ServerID != s.cfg.ID {
		_ = sess.send(&wire.ReplAck{OK: false, Epoch: s.epoch, Detail: "wrong service"})
		return fmt.Errorf("repl hello for service %q, this is %q", m.ServerID, s.cfg.ID)
	}
	if m.Epoch < s.epoch {
		s.metrics.replFencedMsg()
		_ = sess.send(&wire.ReplAck{OK: false, Epoch: s.epoch, Detail: "fenced: stale epoch"})
		return fmt.Errorf("%w: hello at epoch %d, fenced at %d", ErrFencedEpoch, m.Epoch, s.epoch)
	}
	if !s.standby {
		_ = sess.send(&wire.ReplAck{OK: false, Epoch: s.epoch, Detail: "not a standby"})
		return fmt.Errorf("%w: repl hello at epoch %d", ErrNotStandby, m.Epoch)
	}
	if m.Epoch > s.epoch {
		// The primary restarted at a higher epoch (e.g. after its own
		// failback cycle); follow it so our fence stays current.
		s.epoch = m.Epoch
		s.metrics.replEpochGauge(s.epoch)
	}
	if sess.role != wire.RoleRepl {
		if sess.role != "" {
			s.metrics.sessionDown(sess.role)
		}
		s.metrics.sessionUp(wire.RoleRepl)
	}
	sess.role = wire.RoleRepl
	sess.id = m.ServerID
	s.cfg.Logf("server: replication link up at epoch %d, resuming after seq %d", s.epoch, s.applier.Seq())
	return sess.send(&wire.ReplAck{OK: true, Epoch: s.epoch, Seq: s.applier.Seq()})
}

// onReplBatch durably appends and applies one batch of replicated
// records. Records at or below the applied floor are absorbed
// idempotently (the primary re-sends its unacked tail after a
// reconnect). The ack carries the new applied floor so the sender can
// trim its tail.
func (s *Server) onReplBatch(sess *session, m *wire.ReplBatch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess.role != wire.RoleRepl {
		_ = sess.send(&wire.ReplAck{OK: false, Epoch: s.epoch, Detail: "batch before hello"})
		return errors.New("repl batch before hello")
	}
	if m.Epoch < s.epoch {
		// Promotion can race an in-flight stream: the handshake passed at
		// the old epoch, then this server promoted. Fence per batch too.
		s.metrics.replFencedMsg()
		_ = sess.send(&wire.ReplAck{OK: false, Epoch: s.epoch, Detail: "fenced: stale epoch"})
		return fmt.Errorf("%w: batch at epoch %d, fenced at %d", ErrFencedEpoch, m.Epoch, s.epoch)
	}
	if !s.standby {
		_ = sess.send(&wire.ReplAck{OK: false, Epoch: s.epoch, Detail: "not a standby"})
		return fmt.Errorf("%w: repl batch at epoch %d", ErrNotStandby, m.Epoch)
	}
	applied := 0
	for _, r := range m.Records {
		if r.Seq <= s.applier.Seq() {
			continue // re-sent tail after a reconnect; already durable here
		}
		rec := journal.Record{Seq: r.Seq, Kind: journal.Kind(r.Kind), Payload: r.Payload}
		if err := s.cfg.Journal.AppendRaw(rec); err != nil {
			if errors.Is(err, journal.ErrSeqGap) {
				// The stream skipped ahead (shouldn't happen with a
				// well-behaved sender): nack with our floor so the sender
				// reconnects and renegotiates its resume point.
				_ = sess.send(&wire.ReplAck{OK: false, Epoch: s.epoch, Seq: s.applier.Seq(), Detail: err.Error()})
				return err
			}
			// Local durability failure: the standby's journal and state
			// can no longer be guaranteed to agree. Same policy as the
			// primary's append path — halt and recover on restart.
			s.crashLocked(err)
			return err
		}
		if err := s.applier.Apply(rec); err != nil {
			// The record is durable but unapplicable (payload decode
			// failure): state and log have diverged.
			s.crashLocked(err)
			return err
		}
		if rec.Kind == journal.KindMeta {
			// First replicated record: the primary's meta must match this
			// standby's configuration, or every later solve replays under
			// the wrong geometry.
			if err := metaMatches(s.applier.State().Meta, s.journalMeta()); err != nil {
				s.crashLocked(err)
				return err
			}
		}
		applied++
	}
	s.metrics.replBatchApplied(applied)
	return sess.send(&wire.ReplAck{OK: true, Epoch: s.epoch, Seq: s.applier.Seq()})
}

// onPromote handles a wire-level promotion order (the failover drill and
// operator tooling path; in-process callers use Promote directly).
func (s *Server) onPromote(sess *session, m *wire.Promote) error {
	s.mu.Lock()
	epoch, err := s.promoteLocked(m.Epoch)
	cur := s.epoch
	s.mu.Unlock()
	if err != nil {
		_ = sess.send(&wire.ReplAck{OK: false, Epoch: cur, Detail: err.Error()})
		return err
	}
	return sess.send(&wire.ReplAck{OK: true, Epoch: epoch})
}
