package server

import (
	"time"

	"github.com/nomloc/nomloc/internal/telemetry"
	"github.com/nomloc/nomloc/internal/wire"
)

// serverMetrics instruments the round lifecycle. A nil *serverMetrics
// (telemetry off) makes every method a no-op, so the hot path never
// branches on configuration. Durations read the server's injected clock —
// under a fixed clock every histogram observation lands in the first
// bucket and two identical runs expose byte-identical /metrics bodies.
type serverMetrics struct {
	clock  telemetry.Clock
	tracer *telemetry.Tracer

	reports       *telemetry.Counter
	roundsStarted *telemetry.Counter
	roundsSolved  *telemetry.Counter
	roundsTimeout *telemetry.Counter
	solveErrors   *telemetry.Counter
	estimates     *telemetry.Counter
	duplicates    *telemetry.Counter
	stale         *telemetry.Counter
	badFrames     *telemetry.Counter
	evictions     *telemetry.Counter
	degraded      *telemetry.Counter
	empty         *telemetry.Counter
	solveSeconds  *telemetry.Histogram
	roundSeconds  *telemetry.Histogram
	roundAnchors  *telemetry.Histogram
	sessions      map[wire.Role]*telemetry.Gauge

	replFenced     *telemetry.Counter
	replApplied    *telemetry.Counter
	replBatches    *telemetry.Counter
	replPromotions *telemetry.Counter
	replEpoch      *telemetry.Gauge
}

// newServerMetrics builds the server instrument set on reg, or nil when
// telemetry is off.
func newServerMetrics(reg *telemetry.Registry, clock telemetry.Clock) *serverMetrics {
	if reg == nil {
		return nil
	}
	roleGauge := func(role wire.Role) *telemetry.Gauge {
		return reg.Gauge("nomloc_server_sessions", "connected agent sessions by role",
			telemetry.Label{Key: "role", Value: string(role)})
	}
	return &serverMetrics{
		clock:         clock,
		tracer:        telemetry.NewTracer(reg, 256),
		reports:       reg.Counter("nomloc_server_reports_total", "CSI reports received"),
		roundsStarted: reg.Counter("nomloc_server_rounds_started_total", "measurement rounds started"),
		roundsSolved:  reg.Counter("nomloc_server_rounds_solved_total", "rounds localized successfully"),
		roundsTimeout: reg.Counter("nomloc_server_rounds_timeout_total", "rounds finalized by timeout"),
		solveErrors:   reg.Counter("nomloc_server_solve_errors_total", "rounds whose localization failed"),
		estimates:     reg.Counter("nomloc_server_estimates_total", "estimates broadcast"),
		duplicates:    reg.Counter("nomloc_server_duplicate_reports_total", "CSI reports absorbed idempotently (re-sends and chaos duplicates)"),
		stale:         reg.Counter("nomloc_server_stale_reports_total", "CSI reports ignored as stale (older round than stored, or unknown round)"),
		badFrames:     reg.Counter("nomloc_server_bad_frames_total", "frames dropped for decode errors without losing the session"),
		evictions:     reg.Counter("nomloc_server_evicted_sessions_total", "sessions evicted after the idle timeout"),
		degraded:      reg.Counter("nomloc_server_degraded_rounds_total", "rounds solved with fewer reports than expected"),
		empty:         reg.Counter("nomloc_server_empty_rounds_total", "rounds finalized with no report history to solve from"),
		solveSeconds:  reg.Histogram("nomloc_server_solve_seconds", "round localization solve latency", nil),
		roundSeconds:  reg.Histogram("nomloc_server_round_seconds", "round start-to-finalize latency", nil),
		roundAnchors:  reg.Histogram("nomloc_server_round_anchors", "anchors (reports) entering each round solve", telemetry.LinearBuckets(0, 4, 16)),
		sessions: map[wire.Role]*telemetry.Gauge{
			wire.RoleAP:     roleGauge(wire.RoleAP),
			wire.RoleObject: roleGauge(wire.RoleObject),
			wire.RoleViewer: roleGauge(wire.RoleViewer),
			wire.RoleRepl:   roleGauge(wire.RoleRepl),
		},
		replFenced:     reg.Counter("nomloc_repl_fenced_total", "replication messages rejected for a stale epoch (split-brain fences)"),
		replApplied:    reg.Counter("nomloc_repl_applied_records_total", "replicated journal records appended and applied on the standby"),
		replBatches:    reg.Counter("nomloc_repl_batches_total", "replication batches accepted by the standby"),
		replPromotions: reg.Counter("nomloc_repl_promotions_total", "standby-to-primary promotions"),
		replEpoch:      reg.Gauge("nomloc_repl_epoch", "current replication fencing epoch"),
	}
}

// now reads the injected clock (zero time when telemetry is off).
func (sm *serverMetrics) now() time.Time {
	if sm == nil {
		return time.Time{}
	}
	return sm.clock()
}

// sessionUp / sessionDown track the per-role session gauges.
func (sm *serverMetrics) sessionUp(role wire.Role) {
	if sm == nil {
		return
	}
	if g := sm.sessions[role]; g != nil {
		g.Inc()
	}
}

func (sm *serverMetrics) sessionDown(role wire.Role) {
	if sm == nil {
		return
	}
	if g := sm.sessions[role]; g != nil {
		g.Dec()
	}
}

// roundStarted records a round opening and returns its trace span.
func (sm *serverMetrics) roundStarted() telemetry.Span {
	if sm == nil {
		return telemetry.Span{}
	}
	sm.roundsStarted.Inc()
	return sm.tracer.Start("round")
}

// reportReceived records one CSI report.
func (sm *serverMetrics) reportReceived() {
	if sm == nil {
		return
	}
	sm.reports.Inc()
}

// duplicateReport counts a CSI report absorbed idempotently.
func (sm *serverMetrics) duplicateReport() {
	if sm == nil {
		return
	}
	sm.duplicates.Inc()
}

// staleReport counts a CSI report discarded for staleness.
func (sm *serverMetrics) staleReport() {
	if sm == nil {
		return
	}
	sm.stale.Inc()
}

// badFrame counts a frame dropped for a decode error.
func (sm *serverMetrics) badFrame() {
	if sm == nil {
		return
	}
	sm.badFrames.Inc()
}

// sessionEvicted counts an idle-timeout eviction.
func (sm *serverMetrics) sessionEvicted() {
	if sm == nil {
		return
	}
	sm.evictions.Inc()
}

// degradedRound counts a round solved with fewer reports than expected.
func (sm *serverMetrics) degradedRound() {
	if sm == nil {
		return
	}
	sm.degraded.Inc()
}

// emptyRound counts a round with nothing to solve from.
func (sm *serverMetrics) emptyRound() {
	if sm == nil {
		return
	}
	sm.empty.Inc()
}

// roundFinalized closes a round's span and records its latency and
// timeout status.
func (sm *serverMetrics) roundFinalized(span telemetry.Span, startedAt time.Time, timeout bool) {
	if sm == nil {
		return
	}
	span.End()
	sm.roundSeconds.Observe(sm.clock().Sub(startedAt).Seconds())
	if timeout {
		sm.roundsTimeout.Inc()
	}
}

// solved records the outcome of one localization solve.
func (sm *serverMetrics) solved(startedAt time.Time, anchors int, err error) {
	if sm == nil {
		return
	}
	sm.solveSeconds.Observe(sm.clock().Sub(startedAt).Seconds())
	if err != nil {
		sm.solveErrors.Inc()
		return
	}
	sm.roundsSolved.Inc()
	sm.estimates.Inc()
	sm.roundAnchors.Observe(float64(anchors))
}

// replFencedMsg counts a replication message rejected for a stale epoch.
func (sm *serverMetrics) replFencedMsg() {
	if sm == nil {
		return
	}
	sm.replFenced.Inc()
}

// replBatchApplied records one accepted batch of n replicated records.
func (sm *serverMetrics) replBatchApplied(n int) {
	if sm == nil {
		return
	}
	sm.replBatches.Inc()
	sm.replApplied.Add(uint64(n))
}

// replPromoted counts a promotion.
func (sm *serverMetrics) replPromoted() {
	if sm == nil {
		return
	}
	sm.replPromotions.Inc()
}

// replEpochGauge publishes the current fencing epoch.
func (sm *serverMetrics) replEpochGauge(epoch uint64) {
	if sm == nil {
		return
	}
	sm.replEpoch.Set(float64(epoch))
}

// solveSpan opens the trace span covering one localization solve.
func (sm *serverMetrics) solveSpan() telemetry.Span {
	if sm == nil {
		return telemetry.Span{}
	}
	return sm.tracer.Start("solve")
}
