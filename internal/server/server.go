// Package server implements the NomLoc localization server: the top tier
// of the paper's Fig. 2 architecture. It accepts agent connections over
// the wire protocol, routes the object's probe frames to APs, aggregates
// CSI reports (one nomadic site per round, accumulated across rounds),
// runs the SP-based localization pipeline, and broadcasts estimates.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/journal"
	"github.com/nomloc/nomloc/internal/parallel"
	"github.com/nomloc/nomloc/internal/replica"
	"github.com/nomloc/nomloc/internal/telemetry"
	"github.com/nomloc/nomloc/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// ID names the server instance in HelloAcks.
	ID string
	// Localizer runs the SP-based solves. Required.
	Localizer *core.Localizer
	// RoundTimeout finalizes a round even if some APs have not reported.
	// Defaults to 5 s.
	RoundTimeout time.Duration
	// SessionIdleTimeout evicts a session whose connection carries no
	// readable frame for this long, reclaiming dead agents whose TCP
	// peer vanished without a FIN. 0 (the default) disables eviction.
	// Deadlines are armed from the wall clock, so leave this off when
	// injecting a fixed Clock.
	SessionIdleTimeout time.Duration
	// MaxNomadicSites bounds how many distinct nomadic waypoints are kept
	// per (object, AP): older sites are evicted first. Defaults to 8.
	MaxNomadicSites int
	// Workers bounds how many rounds may run the localization solve
	// concurrently (each solve already runs outside the server lock).
	// 0 or 1 serializes solves; negative admits one per CPU.
	Workers int
	// Logf, when set, receives diagnostic log lines.
	Logf func(format string, args ...any)
	// Telemetry, when set, receives round-lifecycle metrics and trace
	// spans, and is served at /metrics by StatusHandler. Nil disables all
	// instrumentation at the cost of one pointer test per event.
	Telemetry *telemetry.Registry
	// Clock is the time source behind latency measurements. Defaults to
	// the Telemetry registry's clock (WallClock when Telemetry is nil).
	// Inject a fixed clock to make /metrics bodies reproducible.
	Clock telemetry.Clock
	// Journal, when set, makes the server durable: report history,
	// finished-round memory, and estimates recovered at Open seed the
	// server's state, and every state change is appended (and fsynced)
	// BEFORE its acknowledgment leaves the server. A journal append
	// failure halts the server rather than continuing with a diverged
	// log. The journal must be freshly Opened; the server writes through
	// it but the caller keeps ownership of Close.
	Journal *journal.Journal
	// JournalSnapshotEvery snapshots and compacts the journal after this
	// many solved rounds. 0 disables automatic snapshots (the journal
	// grows until the caller snapshots manually). Ignored without
	// Journal.
	JournalSnapshotEvery int
	// Standby starts the server as a replication standby (DESIGN.md
	// §14): it rejects agent sessions, accepts a primary's replication
	// stream, and appends + applies each replicated record so its state
	// tracks the primary's exactly. A Promote message (or the Promote
	// method) turns it into a serving primary at a higher epoch.
	// Requires Journal — the standby's copy must be durable too.
	Standby bool
	// Epoch is the fencing epoch the server starts at (defaults to 1).
	// Replication handshakes and batches announcing a lower epoch are
	// rejected — the split-brain guard. Promotion always moves to an
	// epoch strictly above the old primary's.
	Epoch uint64
}

// Server errors.
var (
	ErrNoLocalizer = errors.New("server: config needs a localizer")
	ErrClosed      = errors.New("server: closed")
	// ErrEmptyRound marks a round that finalized with no report history to
	// solve from: every expected report was lost (or no AP ever reported
	// for the object). It is counted separately from solve errors because
	// it indicts the transport, not the localizer.
	ErrEmptyRound = errors.New("server: round has no reports")
	// ErrJournalMismatch marks a recovered journal whose meta record
	// disagrees with the configuration — resuming would replay state
	// under different retention or solve geometry than it was written
	// with.
	ErrJournalMismatch = errors.New("server: journal meta does not match config")
	// ErrStandbyNeedsJournal rejects a standby configuration without a
	// journal: a standby's whole job is keeping a durable copy.
	ErrStandbyNeedsJournal = errors.New("server: standby mode requires a journal")
	// ErrFencedEpoch marks a replication message from a stale epoch — a
	// deposed primary trying to stream after a promotion. The sender
	// must stop; retrying would be split-brain.
	ErrFencedEpoch = errors.New("server: fenced: stale replication epoch")
	// ErrNotStandby marks a replication or promotion message sent to a
	// server that is not (or no longer) a standby.
	ErrNotStandby = errors.New("server: not a standby")
)

// maxFinishedRounds bounds the finished-round memory used to absorb
// duplicate and late CSI reports idempotently; the oldest entries are
// forgotten first.
const maxFinishedRounds = 1024

// Server is the localization server. Create with New, run with Serve, stop
// with Shutdown.
type Server struct {
	cfg     Config
	gate    *parallel.Gate // bounds concurrent localization solves
	metrics *serverMetrics // nil when telemetry is off

	mu        sync.Mutex
	ln        net.Listener
	sessions  map[*session]struct{}
	aps       map[string]*session
	objects   map[string]*session
	rounds    map[uint64]*round
	finished  map[uint64]struct{}          // recently finalized rounds (idempotent late reports)
	finishedQ []uint64                     // finished-round eviction order
	history   map[string][]*wire.CSIReport // per object: accumulated reports
	estimates []wire.Estimate
	sinceSnap int // rounds solved since the last automatic snapshot
	standby   bool
	epoch     uint64
	applier   *replica.Applier // standby apply loop; nil on a primary
	closed    bool

	wg sync.WaitGroup
}

// session is one connected agent.
type session struct {
	conn net.Conn
	role wire.Role
	id   string

	writeMu sync.Mutex
}

// round tracks one measurement round.
type round struct {
	id       uint64
	objectID string
	packets  int
	expected map[string]struct{} // AP ids expected to report
	reported map[string]struct{}
	timer    *time.Timer
	done     bool
	started  time.Time      // clock reading at RoundStart (telemetry only)
	span     telemetry.Span // open "round" trace span (telemetry only)
}

// New validates the configuration and builds a server.
func New(cfg Config) (*Server, error) {
	if cfg.Localizer == nil {
		return nil, ErrNoLocalizer
	}
	if cfg.ID == "" {
		cfg.ID = "nomloc-server"
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 5 * time.Second
	}
	if cfg.MaxNomadicSites <= 0 {
		cfg.MaxNomadicSites = 8
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Clock == nil {
		if c := cfg.Telemetry.Clock(); c != nil {
			cfg.Clock = c
		} else {
			cfg.Clock = telemetry.WallClock
		}
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 1
	}
	if cfg.Standby && cfg.Journal == nil {
		return nil, ErrStandbyNeedsJournal
	}
	s := &Server{
		cfg:      cfg,
		gate:     parallel.NewGate(cfg.Workers),
		metrics:  newServerMetrics(cfg.Telemetry, cfg.Clock),
		sessions: make(map[*session]struct{}),
		aps:      make(map[string]*session),
		objects:  make(map[string]*session),
		rounds:   make(map[uint64]*round),
		finished: make(map[uint64]struct{}),
		history:  make(map[string][]*wire.CSIReport),
		standby:  cfg.Standby,
		epoch:    cfg.Epoch,
	}
	s.gate.Instrument(telemetry.NewPoolMetrics(cfg.Telemetry, "nomloc_server_pool"))
	if cfg.Journal != nil {
		if err := s.restoreFromJournal(); err != nil {
			return nil, err
		}
	}
	s.metrics.replEpochGauge(s.epoch)
	return s, nil
}

// journalMeta renders the meta record matching the configuration.
func (s *Server) journalMeta() journal.Meta {
	return journal.Meta{
		ServerID:        s.cfg.ID,
		AreaVertices:    s.cfg.Localizer.Config().Area.Vertices(),
		MaxNomadicSites: s.cfg.MaxNomadicSites,
	}
}

// restoreFromJournal seeds the server's durable state from the journal
// recovered at Open: a fresh journal receives the meta record; an
// existing one must match the configuration and contributes its report
// history, estimates, and finished-round window, so restarted servers
// resume with full memory.
func (s *Server) restoreFromJournal() error {
	j := s.cfg.Journal
	if s.cfg.Standby {
		// A standby never appends locally — every record in its journal
		// must come from the primary's stream with the primary's sequence
		// numbers, or the two directories stop being interchangeable. A
		// fresh standby journal therefore stays empty (the meta record
		// arrives as the first replicated record); a recovered one must
		// already match the configuration.
		if !j.Fresh() {
			if err := metaMatches(j.State().Meta, s.journalMeta()); err != nil {
				return err
			}
		}
		s.applier = replica.NewApplier(j.State())
		return nil
	}
	if j.Fresh() {
		if err := j.AppendMeta(s.journalMeta()); err != nil {
			return err
		}
		return nil
	}
	st := j.State()
	if err := metaMatches(st.Meta, s.journalMeta()); err != nil {
		return err
	}
	// Recovery runs before the server is shared, but adoptStateLocked's
	// contract is the mutex, so take it rather than special-case.
	s.mu.Lock()
	s.adoptStateLocked(st)
	s.mu.Unlock()
	return nil
}

// adoptStateLocked seeds the server's in-memory maps from a journal
// state: report history, the estimate log, and the finished-round window.
// Shared by crash recovery (restoreFromJournal) and standby promotion,
// so a promoted standby resumes with exactly the memory a restarted
// primary would. Called with s.mu held (or before the server is shared).
func (s *Server) adoptStateLocked(st *journal.State) {
	for _, oh := range st.History {
		s.history[oh.ObjectID] = append([]*wire.CSIReport(nil), oh.Reports...)
	}
	s.estimates = append(s.estimates, st.Estimates...)
	for _, id := range st.Finished {
		if _, dup := s.finished[id]; dup {
			continue
		}
		s.finished[id] = struct{}{}
		s.finishedQ = append(s.finishedQ, id)
	}
}

// metaMatches verifies a recovered meta record against the configured
// one. Floats compare bit-exactly: a "nearby" area is still a different
// solve geometry.
func metaMatches(got, want journal.Meta) error {
	if got.ServerID != want.ServerID {
		return fmt.Errorf("%w: journal belongs to %q, config says %q", ErrJournalMismatch, got.ServerID, want.ServerID)
	}
	if got.MaxNomadicSites != want.MaxNomadicSites {
		return fmt.Errorf("%w: journal retains %d nomadic sites, config says %d",
			ErrJournalMismatch, got.MaxNomadicSites, want.MaxNomadicSites)
	}
	if len(got.AreaVertices) != len(want.AreaVertices) {
		return fmt.Errorf("%w: journal area has %d vertices, config has %d",
			ErrJournalMismatch, len(got.AreaVertices), len(want.AreaVertices))
	}
	for i := range got.AreaVertices {
		if math.Float64bits(got.AreaVertices[i].X) != math.Float64bits(want.AreaVertices[i].X) ||
			math.Float64bits(got.AreaVertices[i].Y) != math.Float64bits(want.AreaVertices[i].Y) {
			return fmt.Errorf("%w: journal area vertex %d is %v, config has %v",
				ErrJournalMismatch, i, got.AreaVertices[i], want.AreaVertices[i])
		}
	}
	return nil
}

// crashLocked halts the server after a journal append failure: the log
// and the in-memory state can no longer be guaranteed to agree, so the
// only safe continuation is a restart through recovery. Called with s.mu
// held; never waits on handler goroutines (they may be the caller).
func (s *Server) crashLocked(err error) {
	if s.closed {
		return
	}
	s.closed = true
	s.cfg.Logf("server: halting on journal failure: %v", err)
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for sess := range s.sessions {
		_ = sess.conn.Close()
	}
	for _, r := range s.rounds {
		if r.timer != nil {
			r.timer.Stop()
		}
	}
}

// Serve accepts connections on ln until Shutdown. It returns nil after a
// clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		sess := &session{conn: conn}
		s.mu.Lock()
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(sess)
		}()
	}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:0") and serves. The
// bound address is available via Addr once this returns from listening;
// for a race-free startup prefer creating the listener yourself.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Addr returns the listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown closes the listener and all connections and waits for the
// handler goroutines to exit. It is idempotent.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for sess := range s.sessions {
		_ = sess.conn.Close()
	}
	for _, r := range s.rounds {
		if r.timer != nil {
			r.timer.Stop()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Estimates returns a copy of all estimates produced so far.
func (s *Server) Estimates() []wire.Estimate {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]wire.Estimate, len(s.estimates))
	copy(out, s.estimates)
	return out
}

// send writes a message to a session, serializing concurrent writers.
func (sess *session) send(msg wire.Message) error {
	sess.writeMu.Lock()
	defer sess.writeMu.Unlock()
	return wire.WriteMessage(sess.conn, msg)
}

// handle runs one connection's read loop.
func (s *Server) handle(sess *session) {
	defer func() {
		s.mu.Lock()
		delete(s.sessions, sess)
		if sess.role == wire.RoleAP && s.aps[sess.id] == sess {
			delete(s.aps, sess.id)
		}
		if sess.role == wire.RoleObject && s.objects[sess.id] == sess {
			delete(s.objects, sess.id)
		}
		if s.cfg.Journal != nil && sess.role != "" && sess.role != wire.RoleRepl && !s.standby && !s.closed {
			// Skipped during shutdown (handler teardown order is
			// scheduler-dependent there, and the journal's byte stream
			// must not depend on it), for replication links (they are
			// infrastructure, not agents), and on a standby (a standby
			// never appends locally — see restoreFromJournal).
			if err := s.cfg.Journal.AppendSessionClose(sess.role, sess.id); err != nil {
				s.crashLocked(err)
			}
		}
		s.mu.Unlock()
		if sess.role != "" {
			s.metrics.sessionDown(sess.role)
		}
		_ = sess.conn.Close()
	}()

	for {
		if s.cfg.SessionIdleTimeout > 0 {
			_ = sess.conn.SetReadDeadline(time.Now().Add(s.cfg.SessionIdleTimeout))
		}
		msg, err := wire.ReadMessage(sess.conn)
		if err != nil {
			if wire.IsDecodeError(err) {
				// The broken frame was consumed whole and the stream is
				// still framed (chaos corruption lands here): log, count,
				// and keep the session.
				s.metrics.badFrame()
				s.cfg.Logf("server: %s/%s: dropping bad frame: %v", sess.role, sess.id, err)
				continue
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				s.metrics.sessionEvicted()
				s.cfg.Logf("server: %s/%s: evicting idle session", sess.role, sess.id)
			}
			return // disconnect (EOF, desync, or idle eviction)
		}
		if err := s.dispatch(sess, msg); err != nil {
			s.cfg.Logf("server: %s/%s: %v", sess.role, sess.id, err)
			_ = sess.send(&wire.ErrorMsg{Detail: err.Error()})
		}
	}
}

// dispatch routes one message.
func (s *Server) dispatch(sess *session, msg wire.Message) error {
	switch m := msg.(type) {
	case *wire.Hello:
		return s.onHello(sess, m)
	case *wire.RoundStart:
		return s.onRoundStart(sess, m)
	case *wire.ProbeFrame:
		return s.onProbeFrame(m)
	case *wire.PositionUpdate:
		return s.onPositionUpdate(m)
	case *wire.CSIReport:
		return s.onCSIReport(sess, m)
	case *wire.ReplHello:
		return s.onReplHello(sess, m)
	case *wire.ReplBatch:
		return s.onReplBatch(sess, m)
	case *wire.Promote:
		return s.onPromote(sess, m)
	default:
		return fmt.Errorf("unexpected message %q", msg.Type())
	}
}

func (s *Server) onHello(sess *session, m *wire.Hello) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.standby {
		// A standby serves no agents. Rejecting the handshake (rather
		// than hanging) lets the agent's failover dial list rotate to
		// the primary immediately.
		_ = sess.send(&wire.HelloAck{OK: false, ServerID: s.cfg.ID, Detail: "standby: not serving agents"})
		return fmt.Errorf("standby: rejecting %s hello", m.Role)
	}
	if m.ID == "" {
		_ = sess.send(&wire.HelloAck{OK: false, ServerID: s.cfg.ID, Detail: "empty id"})
		return errors.New("hello with empty id")
	}
	switch m.Role {
	case wire.RoleAP:
		if other, dup := s.aps[m.ID]; dup && other != sess {
			_ = sess.send(&wire.HelloAck{OK: false, ServerID: s.cfg.ID, Detail: "duplicate AP id"})
			return fmt.Errorf("duplicate AP id %q", m.ID)
		}
		s.aps[m.ID] = sess
	case wire.RoleObject:
		s.objects[m.ID] = sess
	case wire.RoleViewer:
		// Viewers only receive estimates.
	default:
		_ = sess.send(&wire.HelloAck{OK: false, ServerID: s.cfg.ID, Detail: "unknown role"})
		return fmt.Errorf("unknown role %q", m.Role)
	}
	if sess.role != m.Role {
		if sess.role != "" {
			s.metrics.sessionDown(sess.role)
		}
		s.metrics.sessionUp(m.Role)
	}
	sess.role = m.Role
	sess.id = m.ID
	if s.cfg.Journal != nil {
		// Journal the registration before the ack: after a crash the
		// journal's session trail never claims fewer agents than were
		// acknowledged.
		if err := s.cfg.Journal.AppendSessionOpen(m.Role, m.ID); err != nil {
			s.crashLocked(err)
			return err
		}
	}
	s.cfg.Logf("server: registered %s %q", m.Role, m.ID)
	return sess.send(&wire.HelloAck{OK: true, ServerID: s.cfg.ID})
}

func (s *Server) onRoundStart(sess *session, m *wire.RoundStart) error {
	if sess.role != wire.RoleObject {
		return errors.New("round start from non-object")
	}
	s.mu.Lock()
	if _, dup := s.rounds[m.RoundID]; dup {
		s.mu.Unlock()
		return fmt.Errorf("duplicate round %d", m.RoundID)
	}
	if _, done := s.finished[m.RoundID]; done {
		// A recovered server sees the object re-announce rounds that were
		// already solved before the crash. Re-send the recorded estimate
		// instead of re-opening the round — re-solving would append a
		// duplicate estimate the first run never produced.
		var est *wire.Estimate
		for i := len(s.estimates) - 1; i >= 0; i-- {
			if s.estimates[i].RoundID == m.RoundID {
				est = &s.estimates[i]
				break
			}
		}
		s.mu.Unlock()
		if est == nil {
			// Finished but estimate-less: the round ended empty or failed
			// its solve. The object gets the same terminal signal again.
			return sess.send(&wire.ErrorMsg{Detail: fmt.Sprintf("round %d already finalized without an estimate", m.RoundID)})
		}
		return sess.send(est)
	}
	r := &round{
		id:       m.RoundID,
		objectID: m.ObjectID,
		packets:  m.Packets,
		expected: make(map[string]struct{}, len(s.aps)),
		reported: make(map[string]struct{}),
		started:  s.metrics.now(),
		span:     s.metrics.roundStarted(),
	}
	var apSessions []*session
	for id, ap := range s.aps {
		r.expected[id] = struct{}{}
		apSessions = append(apSessions, ap)
	}
	s.rounds[m.RoundID] = r
	r.timer = time.AfterFunc(s.cfg.RoundTimeout, func() { s.finalizeRound(m.RoundID, true) })
	s.mu.Unlock()

	if len(apSessions) == 0 {
		return errors.New("no APs registered")
	}
	for _, ap := range apSessions {
		if err := ap.send(m); err != nil {
			s.cfg.Logf("server: forward round start to %s: %v", ap.id, err)
		}
	}
	return nil
}

func (s *Server) onProbeFrame(m *wire.ProbeFrame) error {
	s.mu.Lock()
	ap, ok := s.aps[m.To]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("probe frame for unknown AP %q", m.To)
	}
	return ap.send(m)
}

func (s *Server) onPositionUpdate(m *wire.PositionUpdate) error {
	// Broadcast to objects (their physics layer tracks AP motion) and log.
	s.mu.Lock()
	objs := make([]*session, 0, len(s.objects))
	for _, o := range s.objects {
		objs = append(objs, o)
	}
	s.mu.Unlock()
	s.cfg.Logf("server: %s moved to site %d at %v", m.APID, m.SiteIndex, m.Pos)
	for _, o := range objs {
		if err := o.send(m); err != nil {
			s.cfg.Logf("server: forward position update: %v", err)
		}
	}
	return nil
}

// onCSIReport stores one AP report and acknowledges it. Handling is
// idempotent per (round, AP): a duplicate delivery — chaos duplication,
// or an agent re-sending its unacknowledged tail after a reconnect — is
// counted, re-acknowledged so the sender can clear its tail, and never
// treated as an error. Reports for already-finalized rounds are likewise
// acknowledged and absorbed.
func (s *Server) onCSIReport(sess *session, m *wire.CSIReport) error {
	s.metrics.reportReceived()
	ack := &wire.ReportAck{RoundID: m.RoundID, APID: m.APID, SiteIndex: m.SiteIndex}
	s.mu.Lock()
	r, ok := s.rounds[m.RoundID]
	if !ok || r.done {
		_, wasFinished := s.finished[m.RoundID]
		s.mu.Unlock()
		if wasFinished {
			s.metrics.duplicateReport()
		} else {
			// A round the server never opened (its RoundStart was lost)
			// or one evicted from finished-round memory. Ack anyway so
			// the agent stops re-sending a report no round will consume.
			s.metrics.staleReport()
		}
		return sess.send(ack)
	}
	objectID := r.objectID
	if _, dup := r.reported[m.APID]; dup {
		s.metrics.duplicateReport()
		s.mu.Unlock()
		return sess.send(ack)
	}
	stored := s.storeReportLocked(objectID, m)
	if stored && s.cfg.Journal != nil {
		// WAL contract: the report is durable before its ack leaves the
		// server, so a crash after this point re-delivers at worst an
		// already-journaled report, which replays idempotently.
		if err := s.cfg.Journal.AppendReport(objectID, m); err != nil {
			s.crashLocked(err)
			s.mu.Unlock()
			return err
		}
	}
	r.reported[m.APID] = struct{}{}
	complete := len(r.reported) >= len(r.expected)
	s.mu.Unlock()

	if err := sess.send(ack); err != nil {
		s.cfg.Logf("server: ack report %d/%s: %v", m.RoundID, m.APID, err)
	}
	if complete {
		s.finalizeRound(m.RoundID, false)
	}
	return nil
}

// storeReportLocked absorbs a report into the object's history through
// the retention semantics shared with journal replay — most recent report
// per static AP and per (nomadic AP, site), bounded by MaxNomadicSites,
// recency judged by round id — and reports whether it was stored. The
// shared implementation is what lets a recovered journal rebuild exactly
// this map.
func (s *Server) storeReportLocked(objectID string, m *wire.CSIReport) bool {
	hist, stored := journal.ApplyReport(s.history[objectID], m, s.cfg.MaxNomadicSites)
	if !stored {
		s.metrics.staleReport()
		return false
	}
	s.history[objectID] = hist
	return true
}

// finalizeRound runs localization for a round using the object's full
// report history and broadcasts the estimate.
func (s *Server) finalizeRound(roundID uint64, timeout bool) {
	s.mu.Lock()
	r, ok := s.rounds[roundID]
	if !ok || r.done {
		s.mu.Unlock()
		return
	}
	r.done = true
	if r.timer != nil {
		r.timer.Stop()
	}
	delete(s.rounds, roundID)
	s.finished[roundID] = struct{}{}
	s.finishedQ = append(s.finishedQ, roundID)
	if len(s.finishedQ) > maxFinishedRounds {
		delete(s.finished, s.finishedQ[0])
		s.finishedQ = s.finishedQ[1:]
	}
	reports := append([]*wire.CSIReport(nil), s.history[r.objectID]...)
	obj := s.objects[r.objectID]
	closed := s.closed
	s.mu.Unlock()

	if closed {
		return
	}
	s.metrics.roundFinalized(r.span, r.started, timeout)
	if timeout {
		s.cfg.Logf("server: round %d finalized by timeout (%d/%d reports)",
			roundID, len(r.reported), len(r.expected))
	}
	if len(reports) == 0 {
		// Nothing to solve from at all — distinct from degraded: there is
		// no estimate to hand back, only a typed error.
		s.metrics.emptyRound()
		s.cfg.Logf("server: round %d: %v", roundID, ErrEmptyRound)
		if obj != nil {
			_ = obj.send(&wire.ErrorMsg{Detail: fmt.Sprintf("round %d: %v", roundID, ErrEmptyRound)})
		}
		return
	}
	if timeout && len(r.reported) < len(r.expected) {
		// A partial round still solves from accumulated history — that is
		// NomLoc's degraded mode, worth a counter rather than an error.
		s.metrics.degradedRound()
	}
	// Canonical solve order: history arrival order depends on network
	// interleaving, so sort by identity to keep estimates bit-reproducible
	// under reordered deliveries.
	sort.Slice(reports, func(i, j int) bool {
		if reports[i].APID != reports[j].APID {
			return reports[i].APID < reports[j].APID
		}
		return reports[i].SiteIndex < reports[j].SiteIndex
	})

	// Admission through the gate bounds how many rounds solve at once;
	// the solve itself runs outside the server lock, so reports for other
	// rounds keep flowing while this one computes.
	if err := s.gate.Enter(context.Background()); err != nil {
		return
	}
	solveSpan := s.metrics.solveSpan()
	solveStart := s.metrics.now()
	est, err := s.localize(reports)
	solveSpan.End()
	s.metrics.solved(solveStart, len(reports), err)
	s.gate.Leave()
	if err != nil {
		s.cfg.Logf("server: round %d: localize: %v", roundID, err)
		if obj != nil {
			_ = obj.send(&wire.ErrorMsg{Detail: fmt.Sprintf("round %d: %v", roundID, err)})
		}
		return
	}
	out := wire.Estimate{
		RoundID:    roundID,
		ObjectID:   r.objectID,
		Pos:        est.Position,
		RelaxCost:  est.RelaxCost,
		NumAnchors: len(reports),
	}

	s.mu.Lock()
	if s.cfg.Journal != nil {
		// Durable before visible: the solved round hits the log before the
		// estimate is stored or broadcast. Anchors are recorded by identity
		// in solve order, so replay re-solves this exact input set even
		// after later rounds rewrite the history entries.
		rs := journal.RoundSolved{Estimate: out, Anchors: make([]journal.AnchorRef, len(reports))}
		for i, rep := range reports {
			rs.Anchors[i] = journal.AnchorRef{APID: rep.APID, SiteIndex: rep.SiteIndex, RoundID: rep.RoundID}
		}
		if jerr := s.cfg.Journal.AppendRoundSolved(rs); jerr != nil {
			s.crashLocked(jerr)
			s.mu.Unlock()
			return
		}
	}
	s.estimates = append(s.estimates, out)
	s.maybeSnapshotLocked()
	targets := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		if sess.role == wire.RoleObject || sess.role == wire.RoleViewer {
			targets = append(targets, sess)
		}
	}
	s.mu.Unlock()

	for _, t := range targets {
		if err := t.send(&out); err != nil {
			s.cfg.Logf("server: send estimate: %v", err)
		}
	}
}

// localize runs the SP pipeline over the report set through the solve
// path shared with journal replay, so `nomloc-replay -verify` re-executes
// exactly what the live server ran.
func (s *Server) localize(reports []*wire.CSIReport) (*core.Estimate, error) {
	return journal.SolveReports(s.cfg.Localizer, reports)
}

// maybeSnapshotLocked runs the automatic snapshot+compact policy after a
// solved round. Snapshot failures are logged, not fatal: the WAL itself
// is still appending correctly, so durability is intact — only compaction
// is deferred.
func (s *Server) maybeSnapshotLocked() {
	j := s.cfg.Journal
	if j == nil || s.cfg.JournalSnapshotEvery <= 0 {
		return
	}
	s.sinceSnap++
	if s.sinceSnap < s.cfg.JournalSnapshotEvery {
		return
	}
	s.sinceSnap = 0
	if err := j.Snapshot(s.snapshotStateLocked()); err != nil {
		if j.Broken() {
			// A broken journal refuses every further append: this is a
			// crash (real or injected), not a transient snapshot failure.
			s.crashLocked(err)
			return
		}
		s.cfg.Logf("server: journal snapshot: %v", err)
		return
	}
	if err := j.Compact(); err != nil {
		s.cfg.Logf("server: journal compact: %v", err)
	}
}

// snapshotStateLocked captures the server's durable state in the
// journal's canonical order. Holding s.mu while reading LastSeq is what
// makes the seq name a consistent prefix: every append happens under the
// same lock.
func (s *Server) snapshotStateLocked() *journal.State {
	st := &journal.State{
		Meta:      s.journalMeta(),
		Seq:       s.cfg.Journal.LastSeq(),
		Estimates: append([]wire.Estimate(nil), s.estimates...),
		Finished:  append([]uint64(nil), s.finishedQ...),
	}
	st.Meta.FormatVersion = journal.FormatVersion
	ids := make([]string, 0, len(s.history))
	for id := range s.history {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st.History = append(st.History, journal.ObjectHistory{
			ObjectID: id,
			Reports:  append([]*wire.CSIReport(nil), s.history[id]...),
		})
	}
	return st
}
