package server

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/csi"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/telemetry"
	"github.com/nomloc/nomloc/internal/wire"
)

func testLocalizer(t *testing.T) *core.Localizer {
	t.Helper()
	l, err := core.New(core.Config{Area: geom.Rect(0, 0, 12, 8)})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// startServer runs a server on an ephemeral port and returns it with its
// address; it is shut down with the test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Shutdown()
		// ErrClosed happens when Shutdown wins the race with Serve's
		// startup — a clean outcome.
		if err := <-serveDone; err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("Serve returned %v", err)
		}
	})
	return s, ln.Addr().String()
}

// dialRaw opens a raw protocol connection.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

// hello performs a handshake over conn and returns the ack.
func hello(t *testing.T, conn net.Conn, h *wire.Hello) *wire.HelloAck {
	t.Helper()
	if err := wire.WriteMessage(conn, h); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	ack, ok := msg.(*wire.HelloAck)
	if !ok {
		t.Fatalf("got %q, want hello_ack", msg.Type())
	}
	return ack
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoLocalizer) {
		t.Errorf("err = %v", err)
	}
	s, err := New(Config{Localizer: testLocalizer(t)})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.ID == "" || s.cfg.RoundTimeout <= 0 || s.cfg.MaxNomadicSites <= 0 {
		t.Error("defaults not applied")
	}
}

func TestHelloRegistration(t *testing.T) {
	_, addr := startServer(t, Config{Localizer: testLocalizer(t)})

	ap := dialRaw(t, addr)
	if ack := hello(t, ap, &wire.Hello{Role: wire.RoleAP, ID: "ap1", Pos: geom.V(1, 1)}); !ack.OK {
		t.Fatalf("AP rejected: %s", ack.Detail)
	}

	// Duplicate AP id on a second connection is rejected.
	dup := dialRaw(t, addr)
	if ack := hello(t, dup, &wire.Hello{Role: wire.RoleAP, ID: "ap1"}); ack.OK {
		t.Error("duplicate AP id accepted")
	}

	// Empty id rejected.
	anon := dialRaw(t, addr)
	if ack := hello(t, anon, &wire.Hello{Role: wire.RoleAP}); ack.OK {
		t.Error("empty id accepted")
	}

	// Unknown role rejected.
	weird := dialRaw(t, addr)
	if ack := hello(t, weird, &wire.Hello{Role: "toaster", ID: "x"}); ack.OK {
		t.Error("unknown role accepted")
	}

	obj := dialRaw(t, addr)
	if ack := hello(t, obj, &wire.Hello{Role: wire.RoleObject, ID: "obj"}); !ack.OK {
		t.Errorf("object rejected: %s", ack.Detail)
	}
}

func TestRoundStartRequiresObjectAndAPs(t *testing.T) {
	_, addr := startServer(t, Config{Localizer: testLocalizer(t)})

	// Round start from an AP is refused.
	ap := dialRaw(t, addr)
	hello(t, ap, &wire.Hello{Role: wire.RoleAP, ID: "ap1"})
	if err := wire.WriteMessage(ap, &wire.RoundStart{RoundID: 1, ObjectID: "x", Packets: 1}); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.ReadMessage(ap)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type() != wire.TypeError {
		t.Errorf("got %q, want error", msg.Type())
	}

	// Round start with no APs registered: the object gets an error.
	srvOnly, addr2 := startServer(t, Config{Localizer: testLocalizer(t)})
	_ = srvOnly
	obj := dialRaw(t, addr2)
	hello(t, obj, &wire.Hello{Role: wire.RoleObject, ID: "obj"})
	if err := wire.WriteMessage(obj, &wire.RoundStart{RoundID: 1, ObjectID: "obj", Packets: 1}); err != nil {
		t.Fatal(err)
	}
	msg, err = wire.ReadMessage(obj)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type() != wire.TypeError {
		t.Errorf("got %q, want error", msg.Type())
	}
}

func TestProbeFrameRouting(t *testing.T) {
	_, addr := startServer(t, Config{Localizer: testLocalizer(t)})

	ap := dialRaw(t, addr)
	hello(t, ap, &wire.Hello{Role: wire.RoleAP, ID: "ap1", Pos: geom.V(1, 1)})
	obj := dialRaw(t, addr)
	hello(t, obj, &wire.Hello{Role: wire.RoleObject, ID: "obj"})

	frame := &wire.ProbeFrame{RoundID: 1, To: "ap1", Seq: 7, CSI: []complex128{1, 2}}
	if err := wire.WriteMessage(obj, frame); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.ReadMessage(ap)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(*wire.ProbeFrame)
	if !ok {
		t.Fatalf("AP got %q", msg.Type())
	}
	if got.Seq != 7 || got.To != "ap1" {
		t.Errorf("frame = %+v", got)
	}

	// Frame to an unknown AP returns an error to the object.
	if err := wire.WriteMessage(obj, &wire.ProbeFrame{To: "ghost"}); err != nil {
		t.Fatal(err)
	}
	msg, err = wire.ReadMessage(obj)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type() != wire.TypeError {
		t.Errorf("got %q, want error", msg.Type())
	}
}

func TestDuplicateRoundRejected(t *testing.T) {
	_, addr := startServer(t, Config{Localizer: testLocalizer(t), RoundTimeout: time.Minute})
	ap := dialRaw(t, addr)
	hello(t, ap, &wire.Hello{Role: wire.RoleAP, ID: "ap1"})
	obj := dialRaw(t, addr)
	hello(t, obj, &wire.Hello{Role: wire.RoleObject, ID: "obj"})

	if err := wire.WriteMessage(obj, &wire.RoundStart{RoundID: 5, ObjectID: "obj", Packets: 1}); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteMessage(obj, &wire.RoundStart{RoundID: 5, ObjectID: "obj", Packets: 1}); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.ReadMessage(obj)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type() != wire.TypeError {
		t.Errorf("got %q, want error for duplicate round", msg.Type())
	}
}

func TestShutdownIdempotent(t *testing.T) {
	s, _ := startServer(t, Config{Localizer: testLocalizer(t)})
	s.Shutdown()
	s.Shutdown() // second call must not hang or panic
}

func TestServeAfterShutdown(t *testing.T) {
	s, err := New(Config{Localizer: testLocalizer(t)})
	if err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := s.Serve(ln); !errors.Is(err, ErrClosed) {
		t.Errorf("Serve after shutdown = %v", err)
	}
}

func TestEstimatesInitiallyEmpty(t *testing.T) {
	s, _ := startServer(t, Config{Localizer: testLocalizer(t)})
	if got := s.Estimates(); len(got) != 0 {
		t.Errorf("estimates = %v", got)
	}
}

func TestRoundTimeoutFinalizesWithPartialReports(t *testing.T) {
	// Two APs registered, only one reports: the round must finalize by
	// timeout and still produce an estimate from the partial data.
	_, addr := startServer(t, Config{
		Localizer:    testLocalizer(t),
		RoundTimeout: 150 * time.Millisecond,
	})

	ap1 := dialRaw(t, addr)
	hello(t, ap1, &wire.Hello{Role: wire.RoleAP, ID: "ap1", Pos: geom.V(1, 1)})
	ap2 := dialRaw(t, addr)
	hello(t, ap2, &wire.Hello{Role: wire.RoleAP, ID: "ap2", Pos: geom.V(11, 7)})
	obj := dialRaw(t, addr)
	hello(t, obj, &wire.Hello{Role: wire.RoleObject, ID: "obj"})

	if err := wire.WriteMessage(obj, &wire.RoundStart{RoundID: 1, ObjectID: "obj", Packets: 1}); err != nil {
		t.Fatal(err)
	}
	// Drain the RoundStart forwarded to both APs.
	for _, ap := range []net.Conn{ap1, ap2} {
		msg, err := wire.ReadMessage(ap)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Type() != wire.TypeRoundStart {
			t.Fatalf("AP got %q", msg.Type())
		}
	}
	// Only ap1 reports; make the CSI a valid single-tap channel.
	csiVec := make([]complex128, 8)
	for k := range csiVec {
		csiVec[k] = complex(1, 0)
	}
	rep := &wire.CSIReport{
		RoundID: 1, APID: "ap1", Pos: geom.V(1, 1),
		Batch: csiBatch("ap1", csiVec),
	}
	if err := wire.WriteMessage(ap1, rep); err != nil {
		t.Fatal(err)
	}

	// The object should still receive an estimate (via timeout). The
	// localizer needs ≥ 2 anchors though — with a single report it will
	// error; accept either an Estimate or an ErrorMsg, but the round MUST
	// resolve within the deadline.
	deadline := time.After(3 * time.Second)
	type result struct {
		msg wire.Message
		err error
	}
	ch := make(chan result, 1)
	go func() {
		m, err := wire.ReadMessage(obj)
		ch <- result{m, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("read: %v", r.err)
		}
		switch r.msg.Type() {
		case wire.TypeEstimate, wire.TypeError:
			// Both are acceptable resolutions of a partial round.
		default:
			t.Errorf("got %q", r.msg.Type())
		}
	case <-deadline:
		t.Fatal("round never finalized after timeout")
	}
}

// csiBatch builds a small valid batch for protocol tests.
func csiBatch(apID string, vec []complex128) csi.Batch {
	return csi.Batch{
		APID: apID,
		Samples: []csi.Sample{
			{APID: apID, Seq: 0, CSI: vec},
			{APID: apID, Seq: 1, CSI: vec},
		},
	}
}

// TestReportForUnknownRoundAcked: a report for a round the server never
// opened (its RoundStart was lost) is absorbed and acknowledged — never
// errored — so the agent stops re-sending it; the stale counter records
// the absorption.
func TestReportForUnknownRoundAcked(t *testing.T) {
	reg := telemetry.New(nil)
	_, addr := startServer(t, Config{Localizer: testLocalizer(t), Telemetry: reg})
	ap := dialRaw(t, addr)
	hello(t, ap, &wire.Hello{Role: wire.RoleAP, ID: "ap1"})
	rep := &wire.CSIReport{RoundID: 42, APID: "ap1", SiteIndex: 3, Batch: csiBatch("ap1", []complex128{1, 2})}
	if err := wire.WriteMessage(ap, rep); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.ReadMessage(ap)
	if err != nil {
		t.Fatal(err)
	}
	ack, ok := msg.(*wire.ReportAck)
	if !ok {
		t.Fatalf("got %q, want report_ack", msg.Type())
	}
	if ack.RoundID != 42 || ack.APID != "ap1" || ack.SiteIndex != 3 {
		t.Errorf("ack = %+v", ack)
	}
	stale := reg.Counter("nomloc_server_stale_reports_total", "")
	if got := stale.Value(); got != 1 {
		t.Errorf("stale counter = %v, want 1", got)
	}
}

func TestListenAndServeAndAddr(t *testing.T) {
	s, err := New(Config{Localizer: testLocalizer(t)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() != nil {
		t.Error("Addr before Serve should be nil")
	}
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe("127.0.0.1:0") }()
	// Wait for the listener to come up.
	deadline := time.Now().Add(3 * time.Second)
	for s.Addr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("listener never came up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	addr := s.Addr().String()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	_ = conn.Close()
	s.Shutdown()
	if err := <-done; err != nil && !errors.Is(err, ErrClosed) {
		t.Errorf("ListenAndServe returned %v", err)
	}
	// Bad address errors immediately.
	s2, err := New(Config{Localizer: testLocalizer(t)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.ListenAndServe("256.1.1.1:bogus"); err == nil {
		t.Error("bad address accepted")
	}
}

func TestPositionUpdateBroadcastToObjects(t *testing.T) {
	_, addr := startServer(t, Config{Localizer: testLocalizer(t)})
	ap := dialRaw(t, addr)
	hello(t, ap, &wire.Hello{Role: wire.RoleAP, ID: "ap1"})
	obj := dialRaw(t, addr)
	hello(t, obj, &wire.Hello{Role: wire.RoleObject, ID: "obj"})

	update := &wire.PositionUpdate{APID: "ap1", SiteIndex: 2, Pos: geom.V(4, 4)}
	if err := wire.WriteMessage(ap, update); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.ReadMessage(obj)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(*wire.PositionUpdate)
	if !ok {
		t.Fatalf("object got %q", msg.Type())
	}
	if got.APID != "ap1" || got.SiteIndex != 2 || got.Pos != geom.V(4, 4) {
		t.Errorf("update = %+v", got)
	}
}

func TestStoreReportDedupAndEviction(t *testing.T) {
	s, err := New(Config{Localizer: testLocalizer(t), MaxNomadicSites: 2})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(apID string, site int, nomadic bool) *wire.CSIReport {
		return &wire.CSIReport{APID: apID, SiteIndex: site, Nomadic: nomadic}
	}
	s.mu.Lock()
	// Static report replaced by a fresher one for the same AP.
	s.storeReportLocked("obj", mk("ap2", 0, false))
	s.storeReportLocked("obj", mk("ap2", 0, false))
	if n := len(s.history["obj"]); n != 1 {
		t.Errorf("static dedup: history = %d", n)
	}
	// Nomadic: distinct sites accumulate, same site replaces.
	s.storeReportLocked("obj", mk("ap1", 1, true))
	s.storeReportLocked("obj", mk("ap1", 2, true))
	s.storeReportLocked("obj", mk("ap1", 2, true))
	if n := len(s.history["obj"]); n != 3 {
		t.Errorf("nomadic accumulate: history = %d, want 3", n)
	}
	// Third distinct site exceeds MaxNomadicSites=2: oldest evicted.
	s.storeReportLocked("obj", mk("ap1", 3, true))
	count := 0
	site1 := false
	for _, r := range s.history["obj"] {
		if r.APID == "ap1" {
			count++
			if r.SiteIndex == 1 {
				site1 = true
			}
		}
	}
	s.mu.Unlock()
	if count != 2 {
		t.Errorf("nomadic reports after eviction = %d, want 2", count)
	}
	if site1 {
		t.Error("oldest site survived eviction")
	}
}

// TestEmptyRoundTypedError covers the distinct ErrEmptyRound path in
// finalizeRound: a round that times out with no report history at all must
// bump its own counter and hand the object a typed error message, not a
// zero-valued estimate.
func TestEmptyRoundTypedError(t *testing.T) {
	reg := telemetry.New(nil)
	_, addr := startServer(t, Config{
		Localizer:    testLocalizer(t),
		RoundTimeout: 50 * time.Millisecond,
		Telemetry:    reg,
	})

	// One AP that never reports, so the round's expected set is nonempty
	// but its history stays empty.
	ap := dialRaw(t, addr)
	if ack := hello(t, ap, &wire.Hello{Role: wire.RoleAP, ID: "ap1", Pos: geom.V(1, 1)}); !ack.OK {
		t.Fatalf("AP rejected: %s", ack.Detail)
	}
	obj := dialRaw(t, addr)
	if ack := hello(t, obj, &wire.Hello{Role: wire.RoleObject, ID: "obj1"}); !ack.OK {
		t.Fatalf("object rejected: %s", ack.Detail)
	}

	if err := wire.WriteMessage(obj, &wire.RoundStart{RoundID: 9, ObjectID: "obj1", Packets: 1}); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.ReadMessage(obj)
	if err != nil {
		t.Fatal(err)
	}
	em, ok := msg.(*wire.ErrorMsg)
	if !ok {
		t.Fatalf("got %q, want error after an empty round", msg.Type())
	}
	if !strings.Contains(em.Detail, ErrEmptyRound.Error()) {
		t.Errorf("error detail %q does not mention %q", em.Detail, ErrEmptyRound)
	}
	if v := reg.Counter("nomloc_server_empty_rounds_total", "").Value(); v != 1 {
		t.Errorf("nomloc_server_empty_rounds_total = %v, want 1", v)
	}
	// The empty round must not have been counted as degraded — that
	// counter is for partial rounds that still solved from history.
	if v := reg.Counter("nomloc_server_degraded_rounds_total", "").Value(); v != 0 {
		t.Errorf("nomloc_server_degraded_rounds_total = %v, want 0", v)
	}
}
