package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/wire"
)

func TestHealthz(t *testing.T) {
	s, _ := startServer(t, Config{Localizer: testLocalizer(t)})
	srv := httptest.NewServer(s.StatusHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}

	// Non-GET rejected.
	resp2, err := http.Post(srv.URL+"/healthz", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", resp2.StatusCode)
	}
}

func TestStatusEndpoint(t *testing.T) {
	s, addr := startServer(t, Config{ID: "test-server", Localizer: testLocalizer(t)})
	srv := httptest.NewServer(s.StatusHandler())
	defer srv.Close()

	// Register one AP and one object over the wire protocol.
	ap := dialRaw(t, addr)
	hello(t, ap, &wire.Hello{Role: wire.RoleAP, ID: "ap1", Pos: geom.V(1, 1)})
	obj := dialRaw(t, addr)
	hello(t, obj, &wire.Hello{Role: wire.RoleObject, ID: "obj1"})

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ServerID != "test-server" {
		t.Errorf("server id = %q", st.ServerID)
	}
	if len(st.APs) != 1 || st.APs[0] != "ap1" {
		t.Errorf("aps = %v", st.APs)
	}
	if len(st.Objects) != 1 || st.Objects[0] != "obj1" {
		t.Errorf("objects = %v", st.Objects)
	}
	if st.ActiveRounds != 0 || st.EstimatesProduced != 0 {
		t.Errorf("counters = %+v", st)
	}
}

func TestEstimatesEndpoint(t *testing.T) {
	s, _ := startServer(t, Config{Localizer: testLocalizer(t)})
	srv := httptest.NewServer(s.StatusHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/estimates")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ests []wire.Estimate
	if err := json.NewDecoder(resp.Body).Decode(&ests); err != nil {
		t.Fatal(err)
	}
	if len(ests) != 0 {
		t.Errorf("estimates = %v", ests)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
}

func TestStatusUnknownPath(t *testing.T) {
	s, _ := startServer(t, Config{Localizer: testLocalizer(t)})
	srv := httptest.NewServer(s.StatusHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
