package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/wire"
)

func TestHealthz(t *testing.T) {
	s, _ := startServer(t, Config{Localizer: testLocalizer(t)})
	srv := httptest.NewServer(s.StatusHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}

	// Non-GET rejected.
	resp2, err := http.Post(srv.URL+"/healthz", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", resp2.StatusCode)
	}
}

func TestStatusEndpoint(t *testing.T) {
	s, addr := startServer(t, Config{ID: "test-server", Localizer: testLocalizer(t)})
	srv := httptest.NewServer(s.StatusHandler())
	defer srv.Close()

	// Register one AP and one object over the wire protocol.
	ap := dialRaw(t, addr)
	hello(t, ap, &wire.Hello{Role: wire.RoleAP, ID: "ap1", Pos: geom.V(1, 1)})
	obj := dialRaw(t, addr)
	hello(t, obj, &wire.Hello{Role: wire.RoleObject, ID: "obj1"})

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ServerID != "test-server" {
		t.Errorf("server id = %q", st.ServerID)
	}
	if len(st.APs) != 1 || st.APs[0] != "ap1" {
		t.Errorf("aps = %v", st.APs)
	}
	if len(st.Objects) != 1 || st.Objects[0] != "obj1" {
		t.Errorf("objects = %v", st.Objects)
	}
	if st.ActiveRounds != 0 || st.EstimatesProduced != 0 {
		t.Errorf("counters = %+v", st)
	}
}

func TestEstimatesEndpoint(t *testing.T) {
	s, _ := startServer(t, Config{Localizer: testLocalizer(t)})
	srv := httptest.NewServer(s.StatusHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/estimates")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ests []wire.Estimate
	if err := json.NewDecoder(resp.Body).Decode(&ests); err != nil {
		t.Fatal(err)
	}
	if len(ests) != 0 {
		t.Errorf("estimates = %v", ests)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
}

func TestStatusUnknownPath(t *testing.T) {
	s, _ := startServer(t, Config{Localizer: testLocalizer(t)})
	srv := httptest.NewServer(s.StatusHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

// TestPromoteEndpoint: POST /promote turns a standby into a primary and
// reports the adopted epoch; GET is rejected; promoting a primary is
// idempotent (same epoch back, no error).
func TestPromoteEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, _ := startStandby(t, dir, 1)
	srv := httptest.NewServer(s.StatusHandler())
	defer srv.Close()

	// Standby state is visible on /status before promotion.
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.Standby || st.Epoch != 1 {
		t.Errorf("pre-promotion status = {standby:%v epoch:%d}, want {true 1}", st.Standby, st.Epoch)
	}

	if resp, err = http.Get(srv.URL + "/promote"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /promote status = %d", resp.StatusCode)
	}

	for i := 0; i < 2; i++ { // second POST exercises idempotent re-promotion
		resp, err = http.Post(srv.URL+"/promote", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]uint64
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || out["epoch"] != 2 {
			t.Errorf("POST /promote #%d = %d %v, want 200 epoch 2", i+1, resp.StatusCode, out)
		}
	}

	if resp, err = http.Get(srv.URL + "/status"); err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Standby || st.Epoch != 2 {
		t.Errorf("post-promotion status = {standby:%v epoch:%d}, want {false 2}", st.Standby, st.Epoch)
	}
}
