package server

import (
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/wire"
)

// TestConcurrentStress drives every server surface at once — AP and
// object registration, probe routing, position updates, CSI reports
// closing rounds, and the monitoring API — from many goroutines. It
// exists to run under `go test -race`: the assertions are deliberately
// weak (the server must stay consistent and reachable), the detector
// does the real checking.
func TestConcurrentStress(t *testing.T) {
	s, addr := startServer(t, Config{
		Localizer:    testLocalizer(t),
		RoundTimeout: 100 * time.Millisecond,
		Workers:      4,
	})
	web := httptest.NewServer(s.StatusHandler())
	defer web.Close()

	const (
		numAPs     = 4
		numObjects = 4
		rounds     = 8
	)

	csiVec := make([]complex128, 8)
	for k := range csiVec {
		csiVec[k] = complex(1, 0)
	}

	var wg sync.WaitGroup

	// AP agents: register, then answer every forwarded RoundStart with a
	// CSI report and sprinkle in position updates.
	for a := 0; a < numAPs; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			id := fmt.Sprintf("ap%d", a)
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Errorf("%s dial: %v", id, err)
				return
			}
			defer conn.Close()
			if err := wire.WriteMessage(conn, &wire.Hello{Role: wire.RoleAP, ID: id, Pos: geom.V(float64(a), 1)}); err != nil {
				t.Errorf("%s hello: %v", id, err)
				return
			}
			for {
				msg, err := wire.ReadMessage(conn)
				if err != nil {
					return // server shut the connection down
				}
				switch m := msg.(type) {
				case *wire.RoundStart:
					_ = wire.WriteMessage(conn, &wire.PositionUpdate{
						APID: id, SiteIndex: a, Pos: geom.V(float64(a), 2),
					})
					_ = wire.WriteMessage(conn, &wire.CSIReport{
						RoundID: m.RoundID, APID: id, Pos: geom.V(float64(a), 1),
						Batch: csiBatch(id, csiVec),
					})
				}
			}
		}(a)
	}

	// Object agents: register, launch rounds, read whatever comes back
	// (estimates, errors, forwarded position updates) until their last
	// round resolves or the read loop ends.
	var objWG sync.WaitGroup
	for o := 0; o < numObjects; o++ {
		objWG.Add(1)
		go func(o int) {
			defer objWG.Done()
			id := fmt.Sprintf("obj%d", o)
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Errorf("%s dial: %v", id, err)
				return
			}
			defer conn.Close()
			if err := wire.WriteMessage(conn, &wire.Hello{Role: wire.RoleObject, ID: id}); err != nil {
				t.Errorf("%s hello: %v", id, err)
				return
			}
			if msg, err := wire.ReadMessage(conn); err != nil || msg.Type() != wire.TypeHelloAck {
				t.Errorf("%s: no hello ack (%v)", id, err)
				return
			}
			resolved := 0
			_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			for r := 0; r < rounds; r++ {
				roundID := uint64(o*rounds + r + 1)
				if err := wire.WriteMessage(conn, &wire.RoundStart{RoundID: roundID, ObjectID: id, Packets: 1}); err != nil {
					return
				}
				// Drain until this round yields an estimate or an error.
				for {
					msg, err := wire.ReadMessage(conn)
					if err != nil {
						return
					}
					done := false
					switch msg.Type() {
					case wire.TypeEstimate, wire.TypeError:
						done = true
					}
					if done {
						resolved++
						break
					}
				}
			}
			if resolved != rounds {
				t.Errorf("%s: %d/%d rounds resolved", id, resolved, rounds)
			}
		}(o)
	}

	// Pollers: hammer CurrentStatus, Estimates, and the HTTP surface
	// while the protocol traffic is in flight.
	stop := make(chan struct{})
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := s.CurrentStatus()
				if len(st.APs) > numAPs {
					t.Errorf("status reports %d APs, max %d", len(st.APs), numAPs)
				}
				_ = s.Estimates()
				resp, err := web.Client().Get(web.URL + "/status")
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
				}
			}
		}()
	}

	objWG.Wait()
	close(stop)
	s.Shutdown() // unblocks the AP read loops
	wg.Wait()

	if got := len(s.Estimates()); got == 0 {
		t.Error("stress run produced no estimates at all")
	}
}
