package server

import (
	"encoding/json"
	"net/http"
	"sort"

	"github.com/nomloc/nomloc/internal/telemetry"
)

// This file exposes the server's operational state over HTTP for
// dashboards and health checks — the monitoring surface a production
// deployment needs next to the agent protocol.

// Status is the server's operational snapshot.
type Status struct {
	// ServerID names the instance.
	ServerID string `json:"serverId"`
	// APs lists the registered access-point ids.
	APs []string `json:"aps"`
	// Objects lists the registered object ids.
	Objects []string `json:"objects"`
	// ActiveRounds counts rounds still collecting reports.
	ActiveRounds int `json:"activeRounds"`
	// EstimatesProduced counts completed localizations.
	EstimatesProduced int `json:"estimatesProduced"`
	// Standby reports whether the instance is a replication standby.
	Standby bool `json:"standby"`
	// Epoch is the replication fencing epoch.
	Epoch uint64 `json:"epoch"`
}

// CurrentStatus captures a snapshot of the server state.
func (s *Server) CurrentStatus() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		ServerID:          s.cfg.ID,
		ActiveRounds:      len(s.rounds),
		EstimatesProduced: len(s.estimates),
		Standby:           s.standby,
		Epoch:             s.epoch,
	}
	for id := range s.aps {
		st.APs = append(st.APs, id)
	}
	for id := range s.objects {
		st.Objects = append(st.Objects, id)
	}
	// The id sets live in maps; sort so the JSON body is stable across
	// scrapes instead of leaking iteration order.
	sort.Strings(st.APs)
	sort.Strings(st.Objects)
	return st
}

// StatusHandler returns an http.Handler serving the monitoring API:
//
//	GET  /healthz      → 200 "ok"
//	GET  /status       → the Status snapshot as JSON
//	GET  /estimates    → all produced estimates as a JSON array
//	GET  /metrics      → Prometheus text exposition (Config.Telemetry)
//	GET  /debug/pprof/ → the standard pprof handlers
//	POST /promote      → promote a standby to primary (DESIGN.md §14)
func (s *Server) StatusHandler() http.Handler {
	mux := http.NewServeMux()
	telemetry.RegisterDebug(mux, s.cfg.Telemetry)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, s.CurrentStatus())
	})
	mux.HandleFunc("/estimates", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, s.Estimates())
	})
	mux.HandleFunc("/promote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		epoch, err := s.Promote(0)
		if err != nil {
			http.Error(w, "promote: "+err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]uint64{"epoch": epoch})
	})
	return mux
}

// writeJSON encodes v with an application/json content type.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are already out; nothing sensible left to do but note
		// the failure for the client.
		http.Error(w, "encode: "+err.Error(), http.StatusInternalServerError)
	}
}
