// Package eval provides the evaluation metrics the paper reports (mean
// localization error, spatial localizability variance, error CDFs) and the
// experiment harness that reproduces its figures end-to-end on the channel
// simulator.
package eval

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Metric errors.
var (
	ErrNoData  = errors.New("eval: no data points")
	ErrBadProb = errors.New("eval: probability out of [0, 1]")
)

// Mean returns the arithmetic mean. It returns NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// SLV computes the spatial localizability variance (paper Eq. 22): the
// population variance of the per-site mean errors,
//
//	SLV = (1/p)·Σ (eᵢ − ē)².
//
// It returns NaN for empty input.
func SLV(siteMeanErrors []float64) float64 {
	if len(siteMeanErrors) == 0 {
		return math.NaN()
	}
	mean := Mean(siteMeanErrors)
	var acc float64
	for _, e := range siteMeanErrors {
		d := e - mean
		acc += d * d
	}
	return acc / float64(len(siteMeanErrors))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(SLV(xs)) }

// Max returns the maximum. It returns NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	best := xs[0]
	for _, x := range xs[1:] {
		if x > best {
			best = x
		}
	}
	return best
}

// Min returns the minimum. It returns NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	best := xs[0]
	for _, x := range xs[1:] {
		if x < best {
			best = x
		}
	}
	return best
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds the empirical CDF of xs (copied and sorted).
func NewCDF(xs []float64) (*CDF, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}, nil
}

// Len returns the number of underlying samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	// First index with value > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Percentile returns the smallest sample value v with P(X ≤ v) ≥ p.
func (c *CDF) Percentile(p float64) (float64, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("%w: %v", ErrBadProb, p)
	}
	if p == 0 {
		return c.sorted[0], nil
	}
	idx := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx], nil
}

// Point is one (x, P(X ≤ x)) pair of the empirical CDF staircase.
type Point struct {
	X float64
	P float64
}

// Points returns the staircase corner points (one per sample).
func (c *CDF) Points() []Point {
	out := make([]Point, len(c.sorted))
	n := float64(len(c.sorted))
	for i, x := range c.sorted {
		out[i] = Point{X: x, P: float64(i+1) / n}
	}
	return out
}

// Sample returns the CDF evaluated on a fixed grid from 0 to max in steps
// — convenient for printing comparable series across experiments.
func (c *CDF) Sample(max float64, steps int) []Point {
	if steps < 1 {
		steps = 1
	}
	out := make([]Point, 0, steps+1)
	for i := 0; i <= steps; i++ {
		x := max * float64(i) / float64(steps)
		out = append(out, Point{X: x, P: c.At(x)})
	}
	return out
}

// Series is a named data series for report printing (one figure line).
type Series struct {
	// Name labels the line (e.g. "static", "nomadic", "ER=2").
	Name string
	// X and Y are the coordinates, len(X) == len(Y).
	X []float64
	// Y values.
	Y []float64
}

// Validate checks the series lengths.
func (s *Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("eval: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
	}
	return nil
}
