package eval

import (
	"math/rand"
	"testing"

	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/parallel"
)

// TestMixSeedPreservesPublishedStreams pins parallel.MixSeed to the
// inline arithmetic it replaced (seed + stream*7919 + mode*104729, the
// derivation RunSites/RecordDataset/the ablations used before the
// deduplication). If the mixer ever changes formula, every published
// error figure shifts, so this is a hard compatibility contract — not a
// statistical check.
func TestMixSeedPreservesPublishedStreams(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -3, 1 << 40} {
		for stream := int64(0); stream < 9; stream++ {
			for _, mode := range []int64{0, 1, 2, proximityMode, locmapModeBase, calibrationMode} {
				want := seed + stream*7919 + mode*104729
				if got := parallel.MixSeed(seed, stream, mode); got != want {
					t.Fatalf("MixSeed(%d, %d, %d) = %d, want legacy stream %d",
						seed, stream, mode, got, want)
				}
			}
		}
	}
}

// TestRunSitesMatchesLegacySeedDerivation replays RunSites sequentially
// with the pre-refactor inline seed expression and requires bitwise
// identical estimates for the default seed, proving the MixSeed
// migration left the published streams untouched end to end.
func TestRunSitesMatchesLegacySeedDerivation(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOptions()
	h, err := NewHarness(scn, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{StaticDeployment, NomadicDeployment} {
		got, err := h.RunSites(mode)
		if err != nil {
			t.Fatal(err)
		}
		for si, site := range scn.TestSites {
			// The exact expression RunSites used before parallel.MixSeed
			// existed.
			rng := rand.New(rand.NewSource(opt.Seed + int64(si)*7919 + int64(mode)*104729))
			for trial := 0; trial < h.Options().TrialsPerSite; trial++ {
				est, err := h.LocalizeOnce(site, mode, rng)
				if err != nil {
					t.Fatal(err)
				}
				if want := est.Position.Dist(site); got[si].Errors[trial] != want {
					t.Fatalf("mode %v site %d trial %d: error %.17g, legacy stream gives %.17g",
						mode, si, trial, got[si].Errors[trial], want)
				}
			}
		}
	}
}
