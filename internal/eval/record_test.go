package eval

import (
	"bytes"
	"errors"
	"testing"

	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/dataset"
)

func TestRecordDatasetStatic(t *testing.T) {
	h := labHarness(t)
	ds, err := h.RecordDataset(StaticDeployment)
	if err != nil {
		t.Fatal(err)
	}
	wantRecords := len(h.Scenario().TestSites) * h.Options().TrialsPerSite
	if len(ds.Records) != wantRecords {
		t.Fatalf("records = %d, want %d", len(ds.Records), wantRecords)
	}
	for ri, rec := range ds.Records {
		if len(rec.Anchors) != 4 {
			t.Errorf("record %d anchors = %d, want 4", ri, len(rec.Anchors))
		}
		for _, a := range rec.Anchors {
			if a.Nomadic {
				t.Errorf("record %d has nomadic anchor in static mode", ri)
			}
			if len(a.Batch.Samples) != h.Options().PacketsPerSite {
				t.Errorf("record %d anchor %s samples = %d", ri, a.APID, len(a.Batch.Samples))
			}
		}
	}
	if ds.Scenario != "lab" || ds.Mode != "static" {
		t.Errorf("meta = %s/%s", ds.Scenario, ds.Mode)
	}
}

func TestRecordDatasetNomadic(t *testing.T) {
	h := labHarness(t)
	ds, err := h.RecordDataset(NomadicDeployment)
	if err != nil {
		t.Fatal(err)
	}
	foundNomadic := false
	for _, rec := range ds.Records {
		for _, a := range rec.Anchors {
			if a.Nomadic {
				foundNomadic = true
			}
		}
	}
	if !foundNomadic {
		t.Error("nomadic recording contains no nomadic anchors")
	}
	if _, err := h.RecordDataset(Mode(0)); !errors.Is(err, ErrBadMode) {
		t.Errorf("bad mode err = %v", err)
	}
}

func TestReplayMatchesLiveRun(t *testing.T) {
	// The central replay property: running the localizer over the
	// recorded batches must reproduce the live errors exactly (the same
	// inputs flow through the same pipeline).
	h := labHarness(t)
	ds, err := h.RecordDataset(StaticDeployment)
	if err != nil {
		t.Fatal(err)
	}
	live, err := h.RunSites(StaticDeployment)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := ReplayDataset(h.Localizer(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(ds.Records) {
		t.Fatalf("replay results = %d", len(replayed))
	}
	// Records are ordered site-major, trial-minor — regroup and compare.
	trials := h.Options().TrialsPerSite
	for si, siteRes := range live {
		for trial := 0; trial < trials; trial++ {
			rr := replayed[si*trials+trial]
			if rr.Truth != siteRes.Site {
				t.Fatalf("site %d trial %d: truth %v vs %v", si, trial, rr.Truth, siteRes.Site)
			}
			if diff := rr.Error - siteRes.Errors[trial]; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("site %d trial %d: replay error %v vs live %v",
					si, trial, rr.Error, siteRes.Errors[trial])
			}
		}
	}
}

func TestReplayThroughSerialization(t *testing.T) {
	// Record → save → load → replay must agree with direct replay.
	h := labHarness(t)
	ds, err := h.RecordDataset(StaticDeployment)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := dataset.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ReplayDataset(h.Localizer(), ds)
	if err != nil {
		t.Fatal(err)
	}
	roundtripped, err := ReplayDataset(h.Localizer(), loaded)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if direct[i].Estimate != roundtripped[i].Estimate {
			t.Errorf("record %d: estimate changed across serialization: %v vs %v",
				i, direct[i].Estimate, roundtripped[i].Estimate)
		}
	}
}

func TestReplayWithDifferentLocalizer(t *testing.T) {
	// The point of datasets: swap the algorithm, keep the measurements.
	h := labHarness(t)
	ds, err := h.RecordDataset(NomadicDeployment)
	if err != nil {
		t.Fatal(err)
	}
	centroidLoc, err := core.New(core.Config{
		Area:   h.Scenario().Area,
		Center: core.CentroidRule,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := ReplayDataset(centroidLoc, ds)
	if err != nil {
		t.Fatal(err)
	}
	errs := ReplayErrors(results)
	if len(errs) != len(results) {
		t.Fatal("ReplayErrors length mismatch")
	}
	if Mean(errs) <= 0 || Mean(errs) > 10 {
		t.Errorf("replayed mean error %v implausible", Mean(errs))
	}
}

func TestReplayInvalidDataset(t *testing.T) {
	h := labHarness(t)
	bad := &dataset.Dataset{Version: dataset.FormatVersion}
	if _, err := ReplayDataset(h.Localizer(), bad); !errors.Is(err, dataset.ErrEmpty) {
		t.Errorf("err = %v", err)
	}
}
