package eval

import (
	"testing"

	"github.com/nomloc/nomloc/internal/deploy"
)

// tinyOptions keeps ablation tests fast.
func tinyOptions() Options {
	return Options{PacketsPerSite: 6, TrialsPerSite: 1, WalkSteps: 8, Seed: 5}
}

// checkRows validates common ablation-row invariants.
func checkRows(t *testing.T, rows []AblationRow, wantLen int) {
	t.Helper()
	if len(rows) != wantLen {
		t.Fatalf("rows = %d, want %d", len(rows), wantLen)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if r.Variant == "" {
			t.Error("empty variant name")
		}
		if seen[r.Variant] {
			t.Errorf("duplicate variant %q", r.Variant)
		}
		seen[r.Variant] = true
		if r.MeanError <= 0 || r.MeanError > 25 {
			t.Errorf("%s: mean error %v implausible", r.Variant, r.MeanError)
		}
		if r.SLVValue < 0 {
			t.Errorf("%s: negative SLV", r.Variant)
		}
	}
}

func TestRunCenterRuleAblation(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunCenterRuleAblation(scn, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, rows, 3)
}

func TestRunSiteCountAblation(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunSiteCountAblation(scn, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// S = 0..4 for a home + 3 waypoints scenario.
	checkRows(t, rows, 5)
	// The full nomadic set must not be worse than static by a wide
	// margin (it is typically strictly better).
	if rows[len(rows)-1].MeanError > rows[0].MeanError+1.0 {
		t.Errorf("S=max (%v) much worse than static (%v)",
			rows[len(rows)-1].MeanError, rows[0].MeanError)
	}
}

func TestRunConfidenceAblation(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunConfidenceAblation(scn, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, rows, 2)
}

func TestRunBaselineComparisonBothModes(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	static, err := RunBaselineComparison(scn, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, static, 5)
	nomadic, err := RunBaselineComparisonMode(scn, tinyOptions(), NomadicDeployment)
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, nomadic, 5)
	// All five methods must be present in both.
	for _, rows := range [][]AblationRow{static, nomadic} {
		names := map[string]bool{}
		for _, r := range rows {
			names[r.Variant] = true
		}
		for _, want := range []string{"sp-nomloc", "trilateration", "weighted-centroid", "nearest-ap", "sequence-sbl"} {
			if !names[want] {
				t.Errorf("method %q missing", want)
			}
		}
	}
}

func TestRunFidelityAblation(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunFidelityAblation(scn, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, rows, 3)
}

func TestRunPairPolicyAblation(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunPairPolicyAblation(scn, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, rows, 2)
}

func TestRunPDPMethodAblation(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunPDPMethodAblation(scn, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, rows, 2)
}

func TestRunMultiNomadicExtension(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunMultiNomadicExtension(scn, tinyOptions(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, rows, 2)
	// Default counts.
	rows, err = RunMultiNomadicExtension(scn, tinyOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, rows, 3)
}

func TestRunPlacementAblation(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunPlacementAblation(scn, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, rows, 3)
}
