package eval

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/nomloc/nomloc/internal/channel"
	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/csi"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/mobility"
	"github.com/nomloc/nomloc/internal/parallel"
	"github.com/nomloc/nomloc/internal/telemetry"
)

// Mode selects the deployment under evaluation.
type Mode int

// Deployment modes.
const (
	// StaticDeployment keeps every AP fixed (nomadic AP parked at home) —
	// the paper's comparison benchmark.
	StaticDeployment Mode = iota + 1
	// NomadicDeployment lets AP1 random-walk among its waypoints and
	// contributes one constraint family per visited site.
	NomadicDeployment
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case StaticDeployment:
		return "static"
	case NomadicDeployment:
		return "nomadic"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options tunes a harness run.
type Options struct {
	// PacketsPerSite is the measurement burst length per AP position.
	// Defaults to 25.
	PacketsPerSite int
	// WalkSteps is the length of the nomadic AP's random walk per
	// localization round. Defaults to 8 (long enough to visit most of the
	// four sites).
	WalkSteps int
	// TrialsPerSite is how many independent rounds each test site is
	// localized; the per-site error is the mean over trials. Defaults
	// to 3.
	TrialsPerSite int
	// PositionErrorM is the nomadic-AP coordinate error range (the
	// paper's ER, §V-E): reported positions are displaced uniformly
	// within a disk of this radius. 0 disables it.
	PositionErrorM float64
	// Seed drives all randomness; runs with equal seeds are identical.
	Seed int64
	// Center overrides the localizer's center rule (0 keeps the default).
	Center core.CenterRule
	// Pairs overrides the pair policy (0 keeps the default).
	Pairs core.PairPolicy
	// MinConfidence filters judgements before the solve.
	MinConfidence float64
	// PDP selects the direct-path power estimator (0 = the paper's
	// max-tap method).
	PDP core.PDPMethod
	// Workers bounds the worker pool fanning per-site work (position
	// sweeps, ablation grids, pattern runs). 0 or 1 runs sequentially;
	// negative uses GOMAXPROCS. Because every site owns an independent
	// RNG stream seeded from Seed, results are bit-identical at every
	// worker count.
	Workers int
	// Telemetry, when set, receives solve counters and worker-pool
	// metrics from every sweep the harness fans out. Instrumentation is
	// count-based and clock-free inside the deterministic pipeline, so
	// figure outputs are bitwise identical with or without it.
	Telemetry *telemetry.Registry
}

// poolCtx is the context the harness hands to the worker pool, carrying
// the telemetry registry when one is configured.
func (o Options) poolCtx() context.Context {
	return telemetry.NewContext(context.Background(), o.Telemetry)
}

// withDefaults resolves zero fields.
func (o Options) withDefaults() Options {
	if o.PacketsPerSite <= 0 {
		o.PacketsPerSite = 25
	}
	if o.WalkSteps <= 0 {
		o.WalkSteps = 8
	}
	if o.TrialsPerSite <= 0 {
		o.TrialsPerSite = 3
	}
	if o.PDP == 0 {
		o.PDP = core.MaxTapMethod
	}
	return o
}

// Harness errors.
var (
	ErrBadMode = errors.New("eval: unknown deployment mode")
)

// Harness runs localization experiments on one scenario.
type Harness struct {
	scn   *deploy.Scenario
	sim   *channel.Simulator
	loc   *core.Localizer
	chain *mobility.Chain
	opt   Options
}

// NewHarness builds a harness for the scenario.
func NewHarness(scn *deploy.Scenario, opt Options) (*Harness, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	sim, err := scn.Simulator()
	if err != nil {
		return nil, fmt.Errorf("simulator: %w", err)
	}
	loc, err := core.New(core.Config{
		Area:          scn.Area,
		Center:        opt.Center,
		Pairs:         opt.Pairs,
		MinConfidence: opt.MinConfidence,
		Metrics:       telemetry.NewSolveMetrics(opt.Telemetry),
	})
	if err != nil {
		return nil, fmt.Errorf("localizer: %w", err)
	}
	chain, err := mobility.UniformChain(scn.Nomadic.AllSites())
	if err != nil {
		return nil, fmt.Errorf("mobility: %w", err)
	}
	return &Harness{scn: scn, sim: sim, loc: loc, chain: chain, opt: opt}, nil
}

// Scenario returns the scenario under test.
func (h *Harness) Scenario() *deploy.Scenario { return h.scn }

// Simulator returns the channel simulator.
func (h *Harness) Simulator() *channel.Simulator { return h.sim }

// Localizer returns the configured localizer.
func (h *Harness) Localizer() *core.Localizer { return h.loc }

// Options returns the effective options.
func (h *Harness) Options() Options { return h.opt }

// measureTime is the fixed base timestamp for synthesized batches.
var measureTime = time.Date(2014, time.June, 30, 12, 0, 0, 0, time.UTC)

// measureAnchor captures a burst at apPos (true position) and produces an
// anchor carrying the believed position and the PDP estimate.
func (h *Harness) measureAnchor(apID string, siteIdx int, kind core.AnchorKind, truePos, believedPos, obj geom.Vec, rng *rand.Rand) (core.Anchor, error) {
	a, _, err := h.measureRawAnchor(apID, siteIdx, kind, truePos, believedPos, obj, rng)
	return a, err
}

// measureRawAnchor is measureAnchor keeping the raw burst (for dataset
// recording).
func (h *Harness) measureRawAnchor(apID string, siteIdx int, kind core.AnchorKind, truePos, believedPos, obj geom.Vec, rng *rand.Rand) (core.Anchor, csi.Batch, error) {
	batch := h.sim.MeasureBatch(apID, siteIdx, obj, truePos, h.opt.PacketsPerSite, measureTime, rng)
	est, err := core.EstimatePDPWithMethod(&batch, h.opt.PDP, h.scn.Radio.Radio)
	if err != nil {
		return core.Anchor{}, csi.Batch{}, fmt.Errorf("pdp %s#%d: %w", apID, siteIdx, err)
	}
	return core.Anchor{
		APID:      apID,
		SiteIndex: siteIdx,
		Kind:      kind,
		Pos:       believedPos,
		PDP:       est.Power,
	}, batch, nil
}

// AnchorsStatic measures the static benchmark deployment: every AP fixed,
// all treated as StaticAP anchors.
func (h *Harness) AnchorsStatic(obj geom.Vec, rng *rand.Rand) ([]core.Anchor, error) {
	aps := h.scn.AllAPsStatic()
	anchors := make([]core.Anchor, 0, len(aps))
	for _, ap := range aps {
		a, err := h.measureAnchor(ap.ID, 0, core.StaticAP, ap.Pos, ap.Pos, obj, rng)
		if err != nil {
			return nil, err
		}
		anchors = append(anchors, a)
	}
	return anchors, nil
}

// AnchorsNomadic measures the nomadic deployment: the static APs plus one
// NomadicSite anchor per distinct waypoint the random walk visited. The
// believed positions of nomadic anchors carry the configured position
// error.
func (h *Harness) AnchorsNomadic(obj geom.Vec, rng *rand.Rand) ([]core.Anchor, error) {
	anchors := make([]core.Anchor, 0, len(h.scn.StaticAPs)+h.chain.NumSites())
	for _, ap := range h.scn.StaticAPs {
		a, err := h.measureAnchor(ap.ID, 0, core.StaticAP, ap.Pos, ap.Pos, obj, rng)
		if err != nil {
			return nil, err
		}
		anchors = append(anchors, a)
	}
	trace, err := h.chain.GenerateTrace(0, h.opt.WalkSteps, rng)
	if err != nil {
		return nil, fmt.Errorf("walk: %w", err)
	}
	for _, siteIdx := range trace.UniqueSites() {
		truePos, err := h.chain.Site(siteIdx)
		if err != nil {
			return nil, err
		}
		believed, err := mobility.PerturbUniformDisk(truePos, h.opt.PositionErrorM, rng)
		if err != nil {
			return nil, err
		}
		a, err := h.measureAnchor(h.scn.Nomadic.ID, siteIdx+1, core.NomadicSite, truePos, believed, obj, rng)
		if err != nil {
			return nil, err
		}
		anchors = append(anchors, a)
	}
	return anchors, nil
}

// LocalizeOnce runs one full localization round for an object at obj and
// returns the estimate.
func (h *Harness) LocalizeOnce(obj geom.Vec, mode Mode, rng *rand.Rand) (*core.Estimate, error) {
	var anchors []core.Anchor
	var err error
	switch mode {
	case StaticDeployment:
		anchors, err = h.AnchorsStatic(obj, rng)
	case NomadicDeployment:
		anchors, err = h.AnchorsNomadic(obj, rng)
	default:
		return nil, fmt.Errorf("%w: %v", ErrBadMode, mode)
	}
	if err != nil {
		return nil, err
	}
	return h.loc.Locate(anchors)
}

// SiteResult is the evaluation outcome for one test site.
type SiteResult struct {
	// Site is the ground-truth position.
	Site geom.Vec
	// MeanError is the mean Euclidean error over the trials, in meters.
	MeanError float64
	// Errors holds the per-trial errors.
	Errors []float64
}

// RunSites localizes every scenario test site TrialsPerSite times under
// the given mode and returns per-site results, in test-site order.
// Randomness derives from Options.Seed, the mode, and the site index, so
// static/nomadic comparisons reuse identical noise processes where the
// measurement sequences align, and results are identical at every
// Workers setting.
func (h *Harness) RunSites(mode Mode) ([]SiteResult, error) {
	return parallel.Map(h.opt.poolCtx(), h.opt.Workers, len(h.scn.TestSites),
		func(si int) (SiteResult, error) {
			site := h.scn.TestSites[si]
			rng := rand.New(rand.NewSource(parallel.MixSeed(h.opt.Seed, int64(si), int64(mode))))
			res := SiteResult{Site: site, Errors: make([]float64, 0, h.opt.TrialsPerSite)}
			for trial := 0; trial < h.opt.TrialsPerSite; trial++ {
				est, err := h.LocalizeOnce(site, mode, rng)
				if err != nil {
					return SiteResult{}, fmt.Errorf("site %d trial %d: %w", si, trial, err)
				}
				res.Errors = append(res.Errors, est.Position.Dist(site))
			}
			res.MeanError = Mean(res.Errors)
			return res, nil
		})
}

// MeanErrors extracts the per-site mean errors from results.
func MeanErrors(results []SiteResult) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.MeanError
	}
	return out
}

// ProximityResult is the Fig. 7 outcome for one test site.
type ProximityResult struct {
	// Site is the object position.
	Site geom.Vec
	// Correct counts pairwise judgements matching ground truth.
	Correct int
	// Total is the number of judged pairs (C(n, 2)).
	Total int
}

// Accuracy returns Correct/Total.
func (p ProximityResult) Accuracy() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Correct) / float64(p.Total)
}

// ProximityAccuracy evaluates the PDP-based proximity determination at
// every test site against geometric ground truth, using the full static
// deployment (paper Fig. 7: C(4,2) = 6 judgements per site). Judgements
// are averaged over TrialsPerSite independent measurement rounds.
func (h *Harness) ProximityAccuracy() ([]ProximityResult, error) {
	return parallel.Map(h.opt.poolCtx(), h.opt.Workers, len(h.scn.TestSites),
		func(si int) (ProximityResult, error) {
			site := h.scn.TestSites[si]
			rng := rand.New(rand.NewSource(parallel.MixSeed(h.opt.Seed, int64(si), proximityMode)))
			res := ProximityResult{Site: site}
			for trial := 0; trial < h.opt.TrialsPerSite; trial++ {
				anchors, err := h.AnchorsStatic(site, rng)
				if err != nil {
					return ProximityResult{}, fmt.Errorf("site %d: %w", si, err)
				}
				for i := 0; i < len(anchors); i++ {
					for j := i + 1; j < len(anchors); j++ {
						jd, err := core.Judge(anchors[i], anchors[j])
						if err != nil {
							return ProximityResult{}, fmt.Errorf("site %d judge: %w", si, err)
						}
						res.Total++
						trueCloser := site.Dist2(jd.Closer.Pos) <= site.Dist2(jd.Farther.Pos)
						if trueCloser {
							res.Correct++
						}
					}
				}
			}
			return res, nil
		})
}
