package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/nomloc/nomloc/internal/baseline"
	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/dsp"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/mobility"
	"github.com/nomloc/nomloc/internal/parallel"
	"github.com/nomloc/nomloc/internal/placement"
)

// This file holds the ablation studies DESIGN.md commits to: center rule,
// nomadic site count, confidence weighting, baseline comparison, and the
// paper's future-work extension (multiple nomadic APs).

// AblationRow is one (variant, metric) outcome.
type AblationRow struct {
	// Variant names the configuration.
	Variant string
	// MeanError and SLVValue summarize the run.
	MeanError, SLVValue float64
}

// RunCenterRuleAblation compares the three center-extraction rules on the
// nomadic deployment of one scenario.
func RunCenterRuleAblation(scn *deploy.Scenario, opt Options) ([]AblationRow, error) {
	rules := []core.CenterRule{core.ChebyshevRule, core.AnalyticRule, core.CentroidRule}
	rows := make([]AblationRow, 0, len(rules))
	for _, rule := range rules {
		o := opt
		o.Center = rule
		h, err := NewHarness(scn, o)
		if err != nil {
			return nil, err
		}
		results, err := h.RunSites(NomadicDeployment)
		if err != nil {
			return nil, fmt.Errorf("rule %v: %w", rule, err)
		}
		errs := MeanErrors(results)
		rows = append(rows, AblationRow{Variant: rule.String(), MeanError: Mean(errs), SLVValue: SLV(errs)})
	}
	return rows, nil
}

// RunSiteCountAblation sweeps how many nomadic waypoints are available
// (0 = static-only deployment, up to all of them), quantifying the
// downscoping gain of §IV-B.3.
func RunSiteCountAblation(scn *deploy.Scenario, opt Options) ([]AblationRow, error) {
	maxSites := len(scn.Nomadic.AllSites())
	rows := make([]AblationRow, 0, maxSites+1)
	for s := 0; s <= maxSites; s++ {
		variant := *scn
		if s == 0 {
			// Pure static benchmark.
			h, err := NewHarness(scn, opt)
			if err != nil {
				return nil, err
			}
			results, err := h.RunSites(StaticDeployment)
			if err != nil {
				return nil, err
			}
			errs := MeanErrors(results)
			rows = append(rows, AblationRow{Variant: "S=0 (static)", MeanError: Mean(errs), SLVValue: SLV(errs)})
			continue
		}
		all := scn.Nomadic.AllSites()
		variant.Nomadic = deploy.NomadicAP{
			ID:        scn.Nomadic.ID,
			Home:      all[0],
			Waypoints: all[1:s],
		}
		h, err := NewHarness(&variant, opt)
		if err != nil {
			return nil, err
		}
		results, err := h.RunSites(NomadicDeployment)
		if err != nil {
			return nil, fmt.Errorf("S=%d: %w", s, err)
		}
		errs := MeanErrors(results)
		rows = append(rows, AblationRow{
			Variant:   fmt.Sprintf("S=%d", s),
			MeanError: Mean(errs),
			SLVValue:  SLV(errs),
		})
	}
	return rows, nil
}

// RunConfidenceAblation compares f-derived relaxation weights against
// uniform weights (all judgements priced equally). It re-implements the
// localization loop with a judgement transformer so both variants see the
// same measurements.
func RunConfidenceAblation(scn *deploy.Scenario, opt Options) ([]AblationRow, error) {
	h, err := NewHarness(scn, opt)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name      string
		transform func([]core.Judgement) []core.Judgement
	}{
		{name: "f-weighted", transform: func(js []core.Judgement) []core.Judgement { return js }},
		{name: "uniform", transform: func(js []core.Judgement) []core.Judgement {
			out := make([]core.Judgement, len(js))
			for i, j := range js {
				j.Confidence = 0.75 // a flat mid-range price
				out[i] = j
			}
			return out
		}},
	}

	rows := make([]AblationRow, 0, len(variants))
	for _, v := range variants {
		errs, err := parallel.Map(opt.poolCtx(), opt.Workers, len(scn.TestSites),
			func(si int) (float64, error) {
				site := scn.TestSites[si]
				rng := rand.New(rand.NewSource(parallel.MixSeed(opt.Seed, int64(si), 0)))
				var siteErrs []float64
				for trial := 0; trial < h.Options().TrialsPerSite; trial++ {
					anchors, err := h.AnchorsNomadic(site, rng)
					if err != nil {
						return 0, err
					}
					js, err := core.BuildJudgements(anchors, core.PaperPairs, 0)
					if err != nil {
						return 0, err
					}
					est, err := h.Localizer().LocateFromJudgements(v.transform(js))
					if err != nil {
						return 0, err
					}
					siteErrs = append(siteErrs, est.Position.Dist(site))
				}
				return Mean(siteErrs), nil
			})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Variant: v.name, MeanError: Mean(errs), SLVValue: SLV(errs)})
	}
	return rows, nil
}

// RunBaselineComparison pits the SP-based method against the comparator
// algorithms on the static deployment (all methods see the same per-trial
// measurements). The ranging baseline is calibrated in-scenario first —
// the venue-specific step NomLoc avoids.
func RunBaselineComparison(scn *deploy.Scenario, opt Options) ([]AblationRow, error) {
	return RunBaselineComparisonMode(scn, opt, StaticDeployment)
}

// RunBaselineComparisonMode is RunBaselineComparison under either
// deployment. In nomadic mode every method consumes the same anchor set
// (statics + visited nomadic sites): trilateration and the centroid treat
// sites as extra anchors, and SBL rebuilds its sequence table per
// observed site set — so the comparison isolates how well each
// *algorithm* exploits the extra topology, not who gets more data.
func RunBaselineComparisonMode(scn *deploy.Scenario, opt Options, mode Mode) ([]AblationRow, error) {
	opt = opt.withDefaults()
	h, err := NewHarness(scn, opt)
	if err != nil {
		return nil, err
	}
	sim := h.Simulator()

	// Calibrate the ranging model from a dedicated probe grid (war-driving
	// pass): PDP in dB versus known distance.
	calRng := rand.New(rand.NewSource(parallel.MixSeed(opt.Seed, 0, calibrationMode)))
	var cal []baseline.RangeSample
	aps := scn.AllAPsStatic()
	for _, probe := range scn.Area.SamplePoints(2.0, 0.5) {
		for _, ap := range aps {
			v := sim.Measure(probe, ap.Pos, calRng)
			p, _, err := dsp.DirectPathPower(v)
			if err != nil || p <= 0 {
				continue
			}
			cal = append(cal, baseline.RangeSample{
				DistanceM: probe.Dist(ap.Pos),
				PowerDBm:  dsp.DB(p),
			})
		}
	}
	model, err := baseline.CalibrateRangingModel(cal)
	if err != nil {
		return nil, fmt.Errorf("calibrate: %w", err)
	}

	// Sequence tables for the SBL comparator (calibration-free like
	// NomLoc, but grid-table-based). In nomadic mode the anchor set
	// changes per trial, so tables are built on demand and cached by the
	// anchor-position fingerprint. The cache is shared across the worker
	// pool, hence the mutex; a duplicate build racing past the first
	// lookup only costs time, never correctness (tables for equal keys
	// are identical).
	var sblMu sync.Mutex
	sblTables := make(map[string]*baseline.SBL)
	sblFor := func(anchors []core.Anchor) (*baseline.SBL, error) {
		key := ""
		positions := make([]geom.Vec, len(anchors))
		for i, a := range anchors {
			positions[i] = a.Pos
			key += fmt.Sprintf("%.3f,%.3f;", a.Pos.X, a.Pos.Y)
		}
		sblMu.Lock()
		t, ok := sblTables[key]
		sblMu.Unlock()
		if ok {
			return t, nil
		}
		t, err := baseline.NewSBL(scn.Area, positions, 0.5)
		if err != nil {
			return nil, fmt.Errorf("sbl table: %w", err)
		}
		sblMu.Lock()
		sblTables[key] = t
		sblMu.Unlock()
		return t, nil
	}

	type method struct {
		name string
		run  func(anchors []core.Anchor) (x, y float64, err error)
	}
	toBaseline := func(anchors []core.Anchor) []baseline.Anchor {
		out := make([]baseline.Anchor, len(anchors))
		for i, a := range anchors {
			out[i] = baseline.Anchor{Pos: a.Pos, PowerDBm: dsp.DB(a.PDP)}
		}
		return out
	}
	methods := []method{
		{name: "sp-nomloc", run: func(anchors []core.Anchor) (float64, float64, error) {
			est, err := h.Localizer().Locate(anchors)
			if err != nil {
				return 0, 0, err
			}
			return est.Position.X, est.Position.Y, nil
		}},
		{name: "trilateration", run: func(anchors []core.Anchor) (float64, float64, error) {
			p, err := baseline.Trilaterate(toBaseline(anchors), model)
			if err != nil {
				return 0, 0, err
			}
			p = scn.Area.Clamp(p)
			return p.X, p.Y, nil
		}},
		{name: "weighted-centroid", run: func(anchors []core.Anchor) (float64, float64, error) {
			p, err := baseline.WeightedCentroid(toBaseline(anchors), 1)
			if err != nil {
				return 0, 0, err
			}
			return p.X, p.Y, nil
		}},
		{name: "nearest-ap", run: func(anchors []core.Anchor) (float64, float64, error) {
			p, err := baseline.NearestAP(toBaseline(anchors))
			if err != nil {
				return 0, 0, err
			}
			return p.X, p.Y, nil
		}},
		{name: "sequence-sbl", run: func(anchors []core.Anchor) (float64, float64, error) {
			sbl, err := sblFor(anchors)
			if err != nil {
				return 0, 0, err
			}
			powers := make([]float64, len(anchors))
			for i, a := range anchors {
				powers[i] = dsp.DB(a.PDP)
			}
			p, err := sbl.Locate(powers)
			if err != nil {
				return 0, 0, err
			}
			return p.X, p.Y, nil
		}},
	}

	// Per site, the mean trial error for each method (method order).
	siteMeans, err := parallel.Map(opt.poolCtx(), opt.Workers, len(scn.TestSites),
		func(si int) ([]float64, error) {
			site := scn.TestSites[si]
			rng := rand.New(rand.NewSource(parallel.MixSeed(opt.Seed, int64(si), 0)))
			trialErrs := make([][]float64, len(methods))
			for trial := 0; trial < opt.TrialsPerSite; trial++ {
				var anchors []core.Anchor
				var err error
				switch mode {
				case NomadicDeployment:
					anchors, err = h.AnchorsNomadic(site, rng)
				default:
					anchors, err = h.AnchorsStatic(site, rng)
				}
				if err != nil {
					return nil, err
				}
				for mi, m := range methods {
					x, y, err := m.run(anchors)
					if err != nil {
						return nil, fmt.Errorf("%s at site %d: %w", m.name, si, err)
					}
					trialErrs[mi] = append(trialErrs[mi], math.Hypot(x-site.X, y-site.Y))
				}
			}
			means := make([]float64, len(methods))
			for mi := range methods {
				means[mi] = Mean(trialErrs[mi])
			}
			return means, nil
		})
	if err != nil {
		return nil, err
	}

	rows := make([]AblationRow, 0, len(methods))
	for mi, m := range methods {
		errs := make([]float64, len(siteMeans))
		for si := range siteMeans {
			errs[si] = siteMeans[si][mi]
		}
		rows = append(rows, AblationRow{Variant: m.name, MeanError: Mean(errs), SLVValue: SLV(errs)})
	}
	return rows, nil
}

// RunMultiNomadicExtension evaluates the paper's future-work direction
// (§VI): aggregating 1, 2 and 3 nomadic APs. Extra nomadic APs reuse the
// scenario waypoints shifted toward distinct area corners so their site
// sets differ.
func RunMultiNomadicExtension(scn *deploy.Scenario, opt Options, counts []int) ([]AblationRow, error) {
	if len(counts) == 0 {
		counts = []int{1, 2, 3}
	}
	opt = opt.withDefaults()
	rows := make([]AblationRow, 0, len(counts))
	for _, n := range counts {
		errs, err := runMultiNomadicOnce(scn, opt, n)
		if err != nil {
			return nil, fmt.Errorf("%d nomadic APs: %w", n, err)
		}
		rows = append(rows, AblationRow{
			Variant:   fmt.Sprintf("nomadic×%d", n),
			MeanError: Mean(errs),
			SLVValue:  SLV(errs),
		})
	}
	return rows, nil
}

// runMultiNomadicOnce evaluates all test sites with n nomadic APs.
func runMultiNomadicOnce(scn *deploy.Scenario, opt Options, n int) ([]float64, error) {
	h, err := NewHarness(scn, opt)
	if err != nil {
		return nil, err
	}
	sim := h.Simulator()

	// Fleet: the scenario's nomadic AP plus n−1 clones whose waypoint sets
	// are the originals rotated about the area centroid (clamped back into
	// the area), so each AP sweeps a distinct region.
	center := scn.Area.Centroid()
	fleets := make([][]geom.Vec, 0, n)
	base := scn.Nomadic.AllSites()
	for k := 0; k < n; k++ {
		sites := make([]geom.Vec, len(base))
		for i, s := range base {
			p := s
			if k > 0 {
				// Rotate the site set around the centroid by k·120°.
				p = center.Add(s.Sub(center).Rotate(2 * math.Pi * float64(k) / 3))
				p = scn.Area.Clamp(p)
			}
			sites[i] = p
		}
		fleets = append(fleets, sites)
	}

	return parallel.Map(opt.poolCtx(), opt.Workers, len(scn.TestSites), func(si int) (float64, error) {
		site := scn.TestSites[si]
		rng := rand.New(rand.NewSource(parallel.MixSeed(opt.Seed, int64(si), 0)))
		var siteErrs []float64
		for trial := 0; trial < opt.TrialsPerSite; trial++ {
			anchors, err := h.AnchorsStatic(site, rng)
			if err != nil {
				return 0, err
			}
			// Keep only the true statics; the scenario's nomadic AP is
			// replaced by the fleet below.
			statics := anchors[:0]
			for _, a := range anchors {
				if a.APID != scn.Nomadic.ID {
					statics = append(statics, a)
				}
			}
			anchors = statics
			for k, sites := range fleets {
				chain, err := mobility.UniformChain(sites)
				if err != nil {
					return 0, err
				}
				trace, err := chain.GenerateTrace(0, opt.WalkSteps, rng)
				if err != nil {
					return 0, err
				}
				for _, idx := range trace.UniqueSites() {
					pos, err := chain.Site(idx)
					if err != nil {
						return 0, err
					}
					batch := sim.MeasureBatch(fmt.Sprintf("nomad%d", k), idx, site, pos, opt.PacketsPerSite, measureTime, rng)
					est, err := core.EstimatePDP(&batch)
					if err != nil {
						return 0, err
					}
					anchors = append(anchors, core.Anchor{
						APID:      fmt.Sprintf("nomad%d", k),
						SiteIndex: idx + 1,
						Kind:      core.NomadicSite,
						Pos:       pos,
						PDP:       est.Power,
					})
				}
			}
			est, err := h.Localizer().Locate(anchors)
			if err != nil {
				return 0, err
			}
			siteErrs = append(siteErrs, est.Position.Dist(site))
		}
		return Mean(siteErrs), nil
	})
}

// RunFidelityAblation sweeps the channel simulator's image-method depth
// (reflection order 0–2), checking how sensitive the headline comparison
// is to multipath richness. Each row evaluates the nomadic deployment
// under a simulator of the given fidelity.
func RunFidelityAblation(scn *deploy.Scenario, opt Options) ([]AblationRow, error) {
	rows := make([]AblationRow, 0, 3)
	for order := 0; order <= 2; order++ {
		variant := *scn
		variant.Radio = scn.Radio
		variant.Radio.MaxReflectionOrder = order
		h, err := NewHarness(&variant, opt)
		if err != nil {
			return nil, fmt.Errorf("order %d: %w", order, err)
		}
		results, err := h.RunSites(NomadicDeployment)
		if err != nil {
			return nil, fmt.Errorf("order %d: %w", order, err)
		}
		errs := MeanErrors(results)
		rows = append(rows, AblationRow{
			Variant:   fmt.Sprintf("reflections≤%d", order),
			MeanError: Mean(errs),
			SLVValue:  SLV(errs),
		})
	}
	return rows, nil
}

// RunPairPolicyAblation compares the paper's constraint families (static×
// static + nomadic-site×static) against the AllPairs extension that also
// judges nomadic sites against each other — C(n,2) constraints instead of
// the paper's N + S·(n−1).
func RunPairPolicyAblation(scn *deploy.Scenario, opt Options) ([]AblationRow, error) {
	rows := make([]AblationRow, 0, 2)
	for _, policy := range []core.PairPolicy{core.PaperPairs, core.AllPairs} {
		o := opt
		o.Pairs = policy
		h, err := NewHarness(scn, o)
		if err != nil {
			return nil, err
		}
		results, err := h.RunSites(NomadicDeployment)
		if err != nil {
			return nil, fmt.Errorf("policy %v: %w", policy, err)
		}
		errs := MeanErrors(results)
		rows = append(rows, AblationRow{
			Variant:   "pairs=" + policy.String(),
			MeanError: Mean(errs),
			SLVValue:  SLV(errs),
		})
	}
	return rows, nil
}

// RunPDPMethodAblation compares the paper's max-tap PDP estimator against
// the MUSIC super-resolution extension, reporting both the proximity
// accuracy (the primitive the estimator feeds) and the end localization
// error under the nomadic deployment.
func RunPDPMethodAblation(scn *deploy.Scenario, opt Options) ([]AblationRow, error) {
	rows := make([]AblationRow, 0, 2)
	for _, method := range []core.PDPMethod{core.MaxTapMethod, core.MusicMethod} {
		o := opt
		o.PDP = method
		h, err := NewHarness(scn, o)
		if err != nil {
			return nil, err
		}
		results, err := h.RunSites(NomadicDeployment)
		if err != nil {
			return nil, fmt.Errorf("method %v: %w", method, err)
		}
		errs := MeanErrors(results)
		prox, err := h.ProximityAccuracy()
		if err != nil {
			return nil, fmt.Errorf("method %v proximity: %w", method, err)
		}
		var acc float64
		for _, p := range prox {
			acc += p.Accuracy()
		}
		acc /= float64(len(prox))
		rows = append(rows, AblationRow{
			Variant:   fmt.Sprintf("pdp=%v (prox %.0f%%)", method, 100*acc),
			MeanError: Mean(errs),
			SLVValue:  SLV(errs),
		})
	}
	return rows, nil
}

// RunPlacementAblation quantifies the paper's §III argument: it compares
// (a) the scenario's as-is static deployment, (b) a static deployment of
// the same AP count whose positions were *optimized* by greedy forward
// selection over a candidate grid (geometric-dilution objective), and
// (c) the unoptimized-but-nomadic NomLoc configuration.
func RunPlacementAblation(scn *deploy.Scenario, opt Options) ([]AblationRow, error) {
	opt = opt.withDefaults()
	rows := make([]AblationRow, 0, 3)

	// (a) As-is static.
	h, err := NewHarness(scn, opt)
	if err != nil {
		return nil, err
	}
	results, err := h.RunSites(StaticDeployment)
	if err != nil {
		return nil, err
	}
	errs := MeanErrors(results)
	rows = append(rows, AblationRow{Variant: "static (as-is)", MeanError: Mean(errs), SLVValue: SLV(errs)})

	// (b) Optimized static: same AP count, greedy-placed.
	cands, err := placement.GridCandidates(scn.Area, 1.5, 0.7)
	if err != nil {
		return nil, fmt.Errorf("candidates: %w", err)
	}
	probes := scn.Area.SamplePoints(1.0, 0.4)
	k := len(scn.AllAPsStatic())
	chosen, _, err := placement.Greedy(cands, k, placement.GeometricDilution(probes))
	if err != nil {
		return nil, fmt.Errorf("greedy placement: %w", err)
	}
	optimized := *scn
	optimized.StaticAPs = make([]deploy.AP, 0, k-1)
	for i := 1; i < k; i++ {
		optimized.StaticAPs = append(optimized.StaticAPs, deploy.AP{
			ID:  fmt.Sprintf("opt%d", i+1),
			Pos: chosen[i],
		})
	}
	optimized.Nomadic = deploy.NomadicAP{
		ID:        scn.Nomadic.ID,
		Home:      chosen[0],
		Waypoints: scn.Nomadic.Waypoints, // unused in static mode
	}
	hOpt, err := NewHarness(&optimized, opt)
	if err != nil {
		return nil, fmt.Errorf("optimized harness: %w", err)
	}
	results, err = hOpt.RunSites(StaticDeployment)
	if err != nil {
		return nil, fmt.Errorf("optimized static: %w", err)
	}
	errs = MeanErrors(results)
	rows = append(rows, AblationRow{Variant: "static (optimized)", MeanError: Mean(errs), SLVValue: SLV(errs)})

	// (c) Nomadic on the as-is deployment.
	results, err = h.RunSites(NomadicDeployment)
	if err != nil {
		return nil, err
	}
	errs = MeanErrors(results)
	rows = append(rows, AblationRow{Variant: "nomadic (as-is)", MeanError: Mean(errs), SLVValue: SLV(errs)})
	return rows, nil
}
