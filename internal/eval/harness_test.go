package eval

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/geom"
)

// fastOptions keeps unit tests quick while exercising the full pipeline.
func fastOptions() Options {
	return Options{PacketsPerSite: 9, WalkSteps: 8, TrialsPerSite: 2, Seed: 42}
}

func labHarness(t *testing.T) *Harness {
	t.Helper()
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(scn, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHarnessDefaults(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(scn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt := h.Options()
	if opt.PacketsPerSite != 25 || opt.WalkSteps != 8 || opt.TrialsPerSite != 3 {
		t.Errorf("defaults = %+v", opt)
	}
	if h.Scenario() != scn {
		t.Error("Scenario accessor broken")
	}
	if h.Simulator() == nil || h.Localizer() == nil {
		t.Error("nil sub-components")
	}
}

func TestNewHarnessRejectsBadScenario(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	bad := *scn
	bad.TestSites = nil
	if _, err := NewHarness(&bad, Options{}); !errors.Is(err, deploy.ErrBadScenario) {
		t.Errorf("err = %v", err)
	}
}

func TestAnchorsStatic(t *testing.T) {
	h := labHarness(t)
	rng := rand.New(rand.NewSource(1))
	anchors, err := h.AnchorsStatic(geom.V(6, 4), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(anchors) != 4 {
		t.Fatalf("anchors = %d, want 4", len(anchors))
	}
	for _, a := range anchors {
		if a.Kind != core.StaticAP {
			t.Errorf("anchor %s kind = %v", a.APID, a.Kind)
		}
		if a.PDP <= 0 {
			t.Errorf("anchor %s PDP = %v", a.APID, a.PDP)
		}
	}
}

func TestAnchorsNomadic(t *testing.T) {
	h := labHarness(t)
	rng := rand.New(rand.NewSource(2))
	anchors, err := h.AnchorsNomadic(geom.V(6, 4), rng)
	if err != nil {
		t.Fatal(err)
	}
	statics, sites := 0, 0
	for _, a := range anchors {
		switch a.Kind {
		case core.StaticAP:
			statics++
		case core.NomadicSite:
			sites++
			if a.APID != h.Scenario().Nomadic.ID {
				t.Errorf("nomadic anchor has APID %q", a.APID)
			}
		}
	}
	if statics != 3 {
		t.Errorf("static anchors = %d, want 3", statics)
	}
	if sites < 1 || sites > 4 {
		t.Errorf("nomadic site anchors = %d, want 1..4", sites)
	}
}

func TestAnchorsNomadicPositionError(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOptions()
	opt.PositionErrorM = 2
	h, err := NewHarness(scn, opt)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	anchors, err := h.AnchorsNomadic(geom.V(6, 4), rng)
	if err != nil {
		t.Fatal(err)
	}
	sites := scn.Nomadic.AllSites()
	moved := false
	for _, a := range anchors {
		if a.Kind != core.NomadicSite {
			continue
		}
		truePos := sites[a.SiteIndex-1]
		d := a.Pos.Dist(truePos)
		if d > 2+1e-9 {
			t.Errorf("believed position %v is %v m from true site", a.Pos, d)
		}
		if d > 1e-9 {
			moved = true
		}
	}
	if !moved {
		t.Error("position error did not move any nomadic anchor")
	}
}

func TestLocalizeOnceModes(t *testing.T) {
	h := labHarness(t)
	obj := geom.V(6, 4)
	for _, mode := range []Mode{StaticDeployment, NomadicDeployment} {
		rng := rand.New(rand.NewSource(4))
		est, err := h.LocalizeOnce(obj, mode, rng)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !h.Scenario().Area.Contains(est.Position) {
			t.Errorf("%v: estimate outside area", mode)
		}
	}
	rng := rand.New(rand.NewSource(5))
	if _, err := h.LocalizeOnce(obj, Mode(0), rng); !errors.Is(err, ErrBadMode) {
		t.Errorf("bad mode err = %v", err)
	}
}

func TestRunSitesShape(t *testing.T) {
	h := labHarness(t)
	results, err := h.RunSites(StaticDeployment)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(h.Scenario().TestSites) {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if len(r.Errors) != h.Options().TrialsPerSite {
			t.Errorf("site %d trials = %d", i, len(r.Errors))
		}
		if r.MeanError < 0 || r.MeanError > 25 {
			t.Errorf("site %d mean error = %v implausible", i, r.MeanError)
		}
	}
	errs := MeanErrors(results)
	if len(errs) != len(results) {
		t.Error("MeanErrors length mismatch")
	}
}

func TestRunSitesDeterministicPerSeed(t *testing.T) {
	h := labHarness(t)
	a, err := h.RunSites(NomadicDeployment)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.RunSites(NomadicDeployment)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].MeanError != b[i].MeanError {
			t.Fatalf("site %d differs across identical runs", i)
		}
	}
}

func TestNomadicBeatsStaticInLab(t *testing.T) {
	// The paper's headline result (Fig. 8/9): the nomadic deployment has
	// lower mean error and lower SLV than the static benchmark.
	if testing.Short() {
		t.Skip("integration experiment")
	}
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(scn, Options{PacketsPerSite: 15, TrialsPerSite: 3, WalkSteps: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	static, err := h.RunSites(StaticDeployment)
	if err != nil {
		t.Fatal(err)
	}
	nomadic, err := h.RunSites(NomadicDeployment)
	if err != nil {
		t.Fatal(err)
	}
	se, ne := MeanErrors(static), MeanErrors(nomadic)
	if Mean(ne) >= Mean(se) {
		t.Errorf("nomadic mean error %v not below static %v", Mean(ne), Mean(se))
	}
	if SLV(ne) >= SLV(se) {
		t.Errorf("nomadic SLV %v not below static %v", SLV(ne), SLV(se))
	}
}

func TestProximityAccuracy(t *testing.T) {
	h := labHarness(t)
	results, err := h.ProximityAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(h.Scenario().TestSites) {
		t.Fatalf("results = %d", len(results))
	}
	var accSum float64
	for i, r := range results {
		// 4 APs → 6 pairs per trial.
		if r.Total != 6*h.Options().TrialsPerSite {
			t.Errorf("site %d total = %d", i, r.Total)
		}
		if r.Correct < 0 || r.Correct > r.Total {
			t.Errorf("site %d correct = %d of %d", i, r.Correct, r.Total)
		}
		accSum += r.Accuracy()
	}
	// Paper Fig. 7: "most of them are more than 85%". Average across sites
	// must at least clear a solid majority on the simulator.
	if mean := accSum / float64(len(results)); mean < 0.7 {
		t.Errorf("mean proximity accuracy = %v, want ≥ 0.7", mean)
	}
}

func TestProximityAccuracyZeroTotal(t *testing.T) {
	if got := (ProximityResult{}).Accuracy(); got != 0 {
		t.Errorf("empty accuracy = %v", got)
	}
}

func TestModeString(t *testing.T) {
	if StaticDeployment.String() != "static" || NomadicDeployment.String() != "nomadic" {
		t.Error("Mode.String mismatch")
	}
	if Mode(0).String() != "mode(0)" {
		t.Error("zero Mode should not pretty-print")
	}
}

func TestNomadicBeatsStaticInLobby(t *testing.T) {
	// The paper's second scenario: the SLV superiority must be even more
	// evident in the Lobby (paper Fig. 8's second observation).
	if testing.Short() {
		t.Skip("integration experiment")
	}
	scn, err := deploy.Lobby()
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(scn, Options{PacketsPerSite: 15, TrialsPerSite: 3, WalkSteps: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	static, err := h.RunSites(StaticDeployment)
	if err != nil {
		t.Fatal(err)
	}
	nomadic, err := h.RunSites(NomadicDeployment)
	if err != nil {
		t.Fatal(err)
	}
	se, ne := MeanErrors(static), MeanErrors(nomadic)
	if Mean(ne) >= Mean(se) {
		t.Errorf("nomadic mean error %v not below static %v", Mean(ne), Mean(se))
	}
	if SLV(ne) >= SLV(se) {
		t.Errorf("nomadic SLV %v not below static %v", SLV(ne), SLV(se))
	}
}
