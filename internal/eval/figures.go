package eval

import (
	"errors"
	"fmt"

	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/geom"
)

// This file contains one runner per figure of the paper's evaluation
// (§V). Each returns plain data; formatting lives in cmd/nomloc-bench.

// ErrNoSuchLink is returned when a scenario has no link with the requested
// LOS condition.
var ErrNoSuchLink = errors.New("eval: no AP–site link with the requested visibility")

// Fig3Result is the channel response delay profile data (paper Fig. 3):
// normalized CIR amplitude versus delay for one LOS and one NLOS link.
type Fig3Result struct {
	// BinDelayNs is the delay-domain resolution of the profiles.
	BinDelayNs float64
	// LOS and NLOS are amplitude-vs-delay series.
	LOS, NLOS Series
	// LOSLink and NLOSLink describe the chosen links.
	LOSLink, NLOSLink string
}

// RunFig3 picks one LOS and one NLOS AP–test-site link in the scenario and
// returns their interpolated delay profiles.
func RunFig3(scn *deploy.Scenario, pad int) (*Fig3Result, error) {
	sim, err := scn.Simulator()
	if err != nil {
		return nil, err
	}
	aps := scn.AllAPsStatic()

	find := func(wantLOS bool) (geom.Vec, geom.Vec, string, error) {
		for _, ap := range aps {
			for si, site := range scn.TestSites {
				if scn.Env.HasLOS(site, ap.Pos) == wantLOS {
					desc := fmt.Sprintf("site %d → %s (%.1f m)", si+1, ap.ID, site.Dist(ap.Pos))
					return site, ap.Pos, desc, nil
				}
			}
		}
		return geom.Vec{}, geom.Vec{}, "", ErrNoSuchLink
	}

	losTx, losRx, losDesc, err := find(true)
	if err != nil {
		return nil, fmt.Errorf("LOS link: %w", err)
	}
	nlosTx, nlosRx, nlosDesc, err := find(false)
	if err != nil {
		return nil, fmt.Errorf("NLOS link: %w", err)
	}

	toSeries := func(name string, tx, rx geom.Vec) (Series, float64, error) {
		profile, binDelay, err := sim.DelayProfile(tx, rx, pad)
		if err != nil {
			return Series{}, 0, err
		}
		s := Series{Name: name, X: make([]float64, len(profile)), Y: make([]float64, len(profile))}
		for i, p := range profile {
			s.X[i] = float64(i) * binDelay * 1e9 // ns
			s.Y[i] = p
		}
		return s, binDelay, nil
	}

	los, binDelay, err := toSeries("LOS", losTx, losRx)
	if err != nil {
		return nil, err
	}
	nlos, _, err := toSeries("NLOS", nlosTx, nlosRx)
	if err != nil {
		return nil, err
	}
	return &Fig3Result{
		BinDelayNs: binDelay * 1e9,
		LOS:        los,
		NLOS:       nlos,
		LOSLink:    losDesc,
		NLOSLink:   nlosDesc,
	}, nil
}

// Fig7Result is the PDP proximity accuracy per test site (paper Fig. 7).
type Fig7Result struct {
	// Scenario names the scene.
	Scenario string
	// Sites holds one accuracy entry per test site, in site order.
	Sites []ProximityResult
}

// RunFig7 evaluates the proximity primitive across all scenario sites.
func RunFig7(scn *deploy.Scenario, opt Options) (*Fig7Result, error) {
	h, err := NewHarness(scn, opt)
	if err != nil {
		return nil, err
	}
	sites, err := h.ProximityAccuracy()
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Scenario: scn.Name, Sites: sites}, nil
}

// Fig8Result is the SLV comparison (paper Fig. 8): static vs nomadic per
// scenario.
type Fig8Result struct {
	// Scenario names the scene.
	Scenario string
	// StaticSLV and NomadicSLV are Eq. 22 values.
	StaticSLV, NomadicSLV float64
	// StaticMean and NomadicMean are the mean errors (context for the
	// bars).
	StaticMean, NomadicMean float64
}

// RunFig8 computes SLV for both deployments of one scenario.
func RunFig8(scn *deploy.Scenario, opt Options) (*Fig8Result, error) {
	h, err := NewHarness(scn, opt)
	if err != nil {
		return nil, err
	}
	static, err := h.RunSites(StaticDeployment)
	if err != nil {
		return nil, err
	}
	nomadic, err := h.RunSites(NomadicDeployment)
	if err != nil {
		return nil, err
	}
	se, ne := MeanErrors(static), MeanErrors(nomadic)
	return &Fig8Result{
		Scenario:    scn.Name,
		StaticSLV:   SLV(se),
		NomadicSLV:  SLV(ne),
		StaticMean:  Mean(se),
		NomadicMean: Mean(ne),
	}, nil
}

// Fig9Result is the error CDF comparison (paper Fig. 9).
type Fig9Result struct {
	// Scenario names the scene.
	Scenario string
	// Static and Nomadic are the CDFs of per-site mean error.
	Static, Nomadic *CDF
}

// RunFig9 computes the static and nomadic error CDFs for one scenario.
func RunFig9(scn *deploy.Scenario, opt Options) (*Fig9Result, error) {
	h, err := NewHarness(scn, opt)
	if err != nil {
		return nil, err
	}
	static, err := h.RunSites(StaticDeployment)
	if err != nil {
		return nil, err
	}
	nomadic, err := h.RunSites(NomadicDeployment)
	if err != nil {
		return nil, err
	}
	sc, err := NewCDF(MeanErrors(static))
	if err != nil {
		return nil, err
	}
	nc, err := NewCDF(MeanErrors(nomadic))
	if err != nil {
		return nil, err
	}
	return &Fig9Result{Scenario: scn.Name, Static: sc, Nomadic: nc}, nil
}

// Fig10Result is the nomadic position-error study (paper Fig. 10): one
// error CDF per error range.
type Fig10Result struct {
	// Scenario names the scene.
	Scenario string
	// ERs are the evaluated error ranges in meters.
	ERs []float64
	// CDFs[i] is the error CDF under ERs[i].
	CDFs []*CDF
}

// RunFig10 sweeps the nomadic-AP position error range over ers.
func RunFig10(scn *deploy.Scenario, opt Options, ers []float64) (*Fig10Result, error) {
	if len(ers) == 0 {
		ers = []float64{0, 1, 2, 3}
	}
	res := &Fig10Result{Scenario: scn.Name, ERs: append([]float64(nil), ers...)}
	for _, er := range ers {
		o := opt
		o.PositionErrorM = er
		h, err := NewHarness(scn, o)
		if err != nil {
			return nil, err
		}
		results, err := h.RunSites(NomadicDeployment)
		if err != nil {
			return nil, fmt.Errorf("ER=%v: %w", er, err)
		}
		c, err := NewCDF(MeanErrors(results))
		if err != nil {
			return nil, err
		}
		res.CDFs = append(res.CDFs, c)
	}
	return res, nil
}
