package eval

import (
	"errors"
	"strings"
	"testing"

	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/geom"
)

func TestRunLocalizabilityMap(t *testing.T) {
	h := labHarness(t)
	m, err := h.RunLocalizabilityMap(StaticDeployment, 3.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Points) == 0 || len(m.Points) != len(m.Errors) {
		t.Fatalf("map shape: %d points, %d errors", len(m.Points), len(m.Errors))
	}
	for i, p := range m.Points {
		if !h.Scenario().Area.Contains(p) {
			t.Errorf("grid point %v outside area", p)
		}
		if m.Errors[i] < 0 || m.Errors[i] > 20 {
			t.Errorf("error at %v = %v implausible", p, m.Errors[i])
		}
	}
	if m.MeanError() <= 0 {
		t.Error("mean error should be positive")
	}
	if m.SLV() < 0 {
		t.Error("SLV negative")
	}
	worstAt, worst := m.WorstPoint()
	if worst < m.MeanError() {
		t.Error("worst point below the mean")
	}
	if !h.Scenario().Area.Contains(worstAt) {
		t.Error("worst point outside area")
	}
}

func TestLocalizabilityMapDefaults(t *testing.T) {
	h := labHarness(t)
	// Non-positive spacing and trials fall back to defaults.
	m, err := h.RunLocalizabilityMap(StaticDeployment, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Spacing != 1.5 {
		t.Errorf("spacing = %v", m.Spacing)
	}
}

func TestLocalizabilityMapEmptyGrid(t *testing.T) {
	// A spacing far larger than the area leaves no interior points.
	h := labHarness(t)
	if _, err := h.RunLocalizabilityMap(StaticDeployment, 100, 1); !errors.Is(err, ErrMapEmpty) {
		t.Errorf("err = %v", err)
	}
}

func TestLocalizabilityMapASCII(t *testing.T) {
	h := labHarness(t)
	m, err := h.RunLocalizabilityMap(StaticDeployment, 3.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	art := m.ASCII()
	if art == "" {
		t.Fatal("empty rendering")
	}
	if !strings.Contains(art, "legend:") {
		t.Error("legend missing")
	}
	// Every glyph must be one of the known shades or space.
	for _, line := range strings.Split(art, "\n") {
		if strings.HasPrefix(line, "legend") || line == "" {
			continue
		}
		for _, ch := range line {
			switch ch {
			case ' ', '.', '+', 'o', 'O', '#':
			default:
				t.Fatalf("unexpected glyph %q in map", ch)
			}
		}
	}
	// Empty map renders empty.
	empty := &MapResult{}
	if got := empty.ASCII(); got != "" {
		t.Errorf("empty map rendered %q", got)
	}
}

func TestLocalizabilityMapNomadicReducesSLV(t *testing.T) {
	// The full-area version of the paper's headline claim.
	if testing.Short() {
		t.Skip("integration experiment")
	}
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(scn, Options{PacketsPerSite: 12, TrialsPerSite: 1, WalkSteps: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	static, err := h.RunLocalizabilityMap(StaticDeployment, 2.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	nomadic, err := h.RunLocalizabilityMap(NomadicDeployment, 2.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if nomadic.MeanError() >= static.MeanError() {
		t.Errorf("nomadic map mean %v not below static %v",
			nomadic.MeanError(), static.MeanError())
	}
}

func TestGlyphFor(t *testing.T) {
	tests := []struct {
		e    float64
		want byte
	}{
		{0.5, '.'}, {1.5, '+'}, {2.5, 'o'}, {3.5, 'O'}, {9, '#'},
	}
	for _, tt := range tests {
		if got := glyphFor(tt.e); got != tt.want {
			t.Errorf("glyphFor(%v) = %c, want %c", tt.e, got, tt.want)
		}
	}
}

func TestBoundingBoxedGridAlignment(t *testing.T) {
	// Grid points must land on distinct raster cells.
	m := &MapResult{
		Spacing: 1,
		Points:  []geom.Vec{geom.V(0, 0), geom.V(1, 0), geom.V(0, 1)},
		Errors:  []float64{0.5, 1.5, 4.5},
	}
	art := m.ASCII()
	if !strings.Contains(art, ".") || !strings.Contains(art, "+") || !strings.Contains(art, "#") {
		t.Errorf("raster lost points:\n%s", art)
	}
}
