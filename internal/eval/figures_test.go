package eval

import (
	"errors"
	"testing"

	"github.com/nomloc/nomloc/internal/channel"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/geom"
)

// openEnvironment is a clutter-free room: every interior link has LOS.
func openEnvironment() (*channel.Environment, error) {
	return channel.NewEnvironment(geom.Rect(0, 0, 12, 8), 12)
}

func TestRunFig3(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFig3(scn, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.LOS.Validate(); err != nil {
		t.Errorf("LOS series: %v", err)
	}
	if err := res.NLOS.Validate(); err != nil {
		t.Errorf("NLOS series: %v", err)
	}
	if len(res.LOS.X) == 0 || len(res.NLOS.X) == 0 {
		t.Fatal("empty profiles")
	}
	if res.BinDelayNs <= 0 {
		t.Errorf("bin delay = %v", res.BinDelayNs)
	}
	if res.LOSLink == "" || res.NLOSLink == "" {
		t.Error("link descriptions missing")
	}
	// The Fig. 3 dichotomy: the NLOS peak is below the LOS peak.
	maxOf := func(xs []float64) float64 {
		best := 0.0
		for _, x := range xs {
			if x > best {
				best = x
			}
		}
		return best
	}
	if maxOf(res.NLOS.Y) >= maxOf(res.LOS.Y) {
		t.Errorf("NLOS peak %v not below LOS peak %v", maxOf(res.NLOS.Y), maxOf(res.LOS.Y))
	}
	// Bad pad propagates.
	if _, err := RunFig3(scn, 0); err == nil {
		t.Error("pad 0 accepted")
	}
}

func TestRunFig7(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFig7(scn, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "lab" {
		t.Errorf("scenario = %q", res.Scenario)
	}
	if len(res.Sites) != len(scn.TestSites) {
		t.Fatalf("sites = %d", len(res.Sites))
	}
	for i, s := range res.Sites {
		if acc := s.Accuracy(); acc < 0 || acc > 1 {
			t.Errorf("site %d accuracy = %v", i, acc)
		}
	}
}

func TestRunFig8(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFig8(scn, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"static SLV":   res.StaticSLV,
		"nomadic SLV":  res.NomadicSLV,
		"static mean":  res.StaticMean,
		"nomadic mean": res.NomadicMean,
	} {
		if v < 0 || v > 100 {
			t.Errorf("%s = %v implausible", name, v)
		}
	}
}

func TestRunFig9(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFig9(scn, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Static.Len() != len(scn.TestSites) || res.Nomadic.Len() != len(scn.TestSites) {
		t.Errorf("CDF sizes = %d, %d", res.Static.Len(), res.Nomadic.Len())
	}
	// CDFs evaluate sensibly.
	if p := res.Static.At(100); p != 1 {
		t.Errorf("At(100) = %v", p)
	}
}

func TestRunFig10(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFig10(scn, tinyOptions(), []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ERs) != 2 || len(res.CDFs) != 2 {
		t.Fatalf("shape: %d ERs, %d CDFs", len(res.ERs), len(res.CDFs))
	}
	// Default ER sweep.
	res, err = RunFig10(scn, tinyOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ERs) != 4 {
		t.Errorf("default ERs = %v", res.ERs)
	}
}

func TestRunFig3NoNLOSLink(t *testing.T) {
	// A scenario with no obstructions has no NLOS link to show.
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	open := *scn
	env, err := openEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	open.Env = env
	if _, err := RunFig3(&open, 4); !errors.Is(err, ErrNoSuchLink) {
		t.Errorf("err = %v, want ErrNoSuchLink", err)
	}
}
