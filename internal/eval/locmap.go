package eval

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/parallel"
)

// This file computes localizability maps: the paper's Fig. 1 concept made
// measurable. Every grid point of the area is localized repeatedly; the
// per-point mean error surfaces exactly where the deployment's blind
// spots are, and the map's variance is the SLV over the whole area rather
// than over the hand-picked test sites.

// ErrMapEmpty is returned when the grid contains no interior points.
var ErrMapEmpty = errors.New("eval: localizability map has no grid points")

// MapResult is a localizability map.
type MapResult struct {
	// Mode is the evaluated deployment.
	Mode Mode
	// Spacing is the grid pitch in meters.
	Spacing float64
	// Points are the evaluated grid positions.
	Points []geom.Vec
	// Errors holds the mean localization error per point.
	Errors []float64
}

// RunLocalizabilityMap localizes every grid point of the scenario area
// (margin half a spacing from walls) trials times under the given mode.
func (h *Harness) RunLocalizabilityMap(mode Mode, spacing float64, trials int) (*MapResult, error) {
	if spacing <= 0 {
		spacing = 1.5
	}
	if trials <= 0 {
		trials = 1
	}
	points := h.scn.Area.SamplePoints(spacing, spacing/2)
	if len(points) == 0 {
		return nil, ErrMapEmpty
	}
	res := &MapResult{
		Mode:    mode,
		Spacing: spacing,
		Points:  points,
		Errors:  make([]float64, len(points)),
	}
	for i, p := range points {
		rng := rand.New(rand.NewSource(parallel.MixSeed(h.opt.Seed, int64(i), locmapModeBase+int64(mode))))
		var sum float64
		for trial := 0; trial < trials; trial++ {
			est, err := h.LocalizeOnce(p, mode, rng)
			if err != nil {
				return nil, fmt.Errorf("grid point %v: %w", p, err)
			}
			sum += est.Position.Dist(p)
		}
		res.Errors[i] = sum / float64(trials)
	}
	return res, nil
}

// MeanError returns the map-wide mean error.
func (m *MapResult) MeanError() float64 { return Mean(m.Errors) }

// SLV returns the spatial localizability variance over the whole grid.
func (m *MapResult) SLV() float64 { return SLV(m.Errors) }

// WorstPoint returns the grid point with the largest mean error.
func (m *MapResult) WorstPoint() (geom.Vec, float64) {
	best := -1.0
	var at geom.Vec
	for i, e := range m.Errors {
		if e > best {
			best = e
			at = m.Points[i]
		}
	}
	return at, best
}

// errorGlyphs maps error buckets (in meters) to ASCII shades.
var errorGlyphs = []struct {
	limit float64
	glyph byte
}{
	{1, '.'},
	{2, '+'},
	{3, 'o'},
	{4, 'O'},
	{math.Inf(1), '#'},
}

// glyphFor returns the shade for an error value.
func glyphFor(e float64) byte {
	for _, g := range errorGlyphs {
		if e < g.limit {
			return g.glyph
		}
	}
	return '#'
}

// ASCII renders the map as a text heat map (y grows upward, like the
// floor plans in the paper): '.' < 1 m, '+' < 2 m, 'o' < 3 m, 'O' < 4 m,
// '#' ≥ 4 m; spaces are outside the area.
func (m *MapResult) ASCII() string {
	if len(m.Points) == 0 {
		return ""
	}
	min, max := geom.BoundingBox(m.Points)
	cols := int(math.Round((max.X-min.X)/m.Spacing)) + 1
	rows := int(math.Round((max.Y-min.Y)/m.Spacing)) + 1
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for i, p := range m.Points {
		c := int(math.Round((p.X - min.X) / m.Spacing))
		r := int(math.Round((p.Y - min.Y) / m.Spacing))
		if r < 0 || r >= rows || c < 0 || c >= cols {
			continue
		}
		grid[r][c] = glyphFor(m.Errors[i])
	}
	var b strings.Builder
	// Top row = max y.
	for r := rows - 1; r >= 0; r-- {
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	b.WriteString("legend: . <1m  + <2m  o <3m  O <4m  # >=4m\n")
	return b.String()
}
