package eval

import (
	"reflect"
	"testing"

	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/telemetry"
)

// TestTelemetryDoesNotPerturbFigures is the observability contract of
// the harness: enabling telemetry must leave figure outputs bitwise
// unchanged. The instruments inside the deterministic pipeline are
// count-only and clock-free, so an instrumented run and a bare run of
// the same seed produce identical results.
func TestTelemetryDoesNotPerturbFigures(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{PacketsPerSite: 8, TrialsPerSite: 1, WalkSteps: 6, Seed: 42, Workers: 2}

	bare, err := RunFig8(scn, opt)
	if err != nil {
		t.Fatal(err)
	}

	instrumented := opt
	instrumented.Telemetry = telemetry.New(nil)
	instr, err := RunFig8(scn, instrumented)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(bare, instr) {
		t.Errorf("telemetry perturbed Fig. 8:\nbare:         %+v\ninstrumented: %+v", bare, instr)
	}

	// The instrumented run must actually have recorded work: solve
	// counters and pool task counters both non-zero.
	snap := instrumented.Telemetry.Snapshot()
	counters := map[string]float64{}
	for _, m := range snap.Metrics {
		counters[m.Name] = m.Value
	}
	for _, name := range []string{"nomloc_solve_total", "nomloc_pool_tasks_done_total"} {
		if counters[name] <= 0 {
			t.Errorf("instrumented run recorded %s = %v, want > 0", name, counters[name])
		}
	}
}
