package eval

import (
	"fmt"
	"math/rand"

	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/mobility"
	"github.com/nomloc/nomloc/internal/parallel"
	"github.com/nomloc/nomloc/internal/planner"
)

// This file evaluates nomadic movement patterns (paper §VI future work,
// "the impact of moving patterns of nomadic APs"): the planner strategies
// replace the Markov random walk, under a fixed move budget.

// AnchorsNomadicPlanned measures the nomadic AP along a strategy-driven
// trajectory of moves steps (so up to moves+1 distinct sites including
// home). After each site's measurement the planner's belief region is
// shrunk with the judgements gathered so far, letting information-driven
// strategies react to evidence.
func (h *Harness) AnchorsNomadicPlanned(obj geom.Vec, strat planner.Strategy, moves int, rng *rand.Rand) ([]core.Anchor, error) {
	anchors := make([]core.Anchor, 0, len(h.scn.StaticAPs)+moves+1)
	staticPos := make([]geom.Vec, 0, len(h.scn.StaticAPs))
	for _, ap := range h.scn.StaticAPs {
		a, err := h.measureAnchor(ap.ID, 0, core.StaticAP, ap.Pos, ap.Pos, obj, rng)
		if err != nil {
			return nil, err
		}
		anchors = append(anchors, a)
		staticPos = append(staticPos, ap.Pos)
	}

	sites := h.scn.Nomadic.AllSites()
	state, err := planner.NewState(sites, staticPos, h.scn.Area)
	if err != nil {
		return nil, err
	}

	measureSite := func(siteIdx int) error {
		truePos := sites[siteIdx]
		believed, err := perturb(truePos, h.opt.PositionErrorM, rng)
		if err != nil {
			return err
		}
		a, err := h.measureAnchor(h.scn.Nomadic.ID, siteIdx+1, core.NomadicSite, truePos, believed, obj, rng)
		if err != nil {
			return err
		}
		anchors = append(anchors, a)
		return nil
	}

	// Home is measured first (the AP starts there).
	if err := measureSite(0); err != nil {
		return nil, err
	}
	shrinkBelief(state, anchors, h.opt.MinConfidence)

	visited := map[int]bool{0: true}
	for m := 0; m < moves; m++ {
		next, err := strat.Next(state, rng)
		if err != nil {
			return nil, fmt.Errorf("strategy %s: %w", strat.Name(), err)
		}
		if err := state.MarkVisited(next); err != nil {
			return nil, err
		}
		if visited[next] {
			continue // revisits re-measure nothing new for a static object
		}
		visited[next] = true
		if err := measureSite(next); err != nil {
			return nil, err
		}
		shrinkBelief(state, anchors, h.opt.MinConfidence)
	}
	return anchors, nil
}

// shrinkBelief updates the planner's region with the feasible set of the
// current judgements. Errors are ignored: the belief is a heuristic and
// an unjudgeable anchor set simply leaves it unchanged.
func shrinkBelief(state *planner.State, anchors []core.Anchor, minConfidence float64) {
	if len(anchors) < 2 {
		return
	}
	js, err := core.BuildJudgements(anchors, core.PaperPairs, minConfidence)
	if err != nil {
		return
	}
	cons := make([]geom.HalfPlane, 0, len(js))
	for _, j := range js {
		cons = append(cons, j.HalfPlane())
	}
	state.ShrinkRegion(cons)
}

// perturb applies the uniform-disk position error.
func perturb(p geom.Vec, radius float64, rng *rand.Rand) (geom.Vec, error) {
	if radius <= 0 {
		return p, nil
	}
	return mobility.PerturbUniformDisk(p, radius, rng)
}

// RunMovingPatterns compares the built-in movement strategies under a
// fixed move budget, returning mean error and SLV per strategy. The
// Markov random walk of the main experiments is included via the
// planner's RandomWalk strategy, so all rows share the measurement
// pipeline exactly.
func RunMovingPatterns(scn *deploy.Scenario, opt Options, moves int) ([]AblationRow, error) {
	opt = opt.withDefaults()
	h, err := NewHarness(scn, opt)
	if err != nil {
		return nil, err
	}
	if moves <= 0 {
		moves = len(scn.Nomadic.Waypoints)
	}
	rows := make([]AblationRow, 0, len(planner.Builtin()))
	for _, strat := range planner.Builtin() {
		errs, err := parallel.Map(opt.poolCtx(), opt.Workers, len(scn.TestSites),
			func(si int) (float64, error) {
				site := scn.TestSites[si]
				rng := rand.New(rand.NewSource(parallel.MixSeed(opt.Seed, int64(si), 0)))
				var siteErrs []float64
				for trial := 0; trial < opt.TrialsPerSite; trial++ {
					anchors, err := h.AnchorsNomadicPlanned(site, strat, moves, rng)
					if err != nil {
						return 0, fmt.Errorf("%s at site %d: %w", strat.Name(), si, err)
					}
					est, err := h.loc.Locate(anchors)
					if err != nil {
						return 0, err
					}
					siteErrs = append(siteErrs, est.Position.Dist(site))
				}
				return Mean(siteErrs), nil
			})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant:   strat.Name(),
			MeanError: Mean(errs),
			SLVValue:  SLV(errs),
		})
	}
	return rows, nil
}
