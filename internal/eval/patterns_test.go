package eval

import (
	"math/rand"
	"testing"

	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/planner"
)

func TestAnchorsNomadicPlanned(t *testing.T) {
	h := labHarness(t)
	obj := geom.V(6, 4)
	for _, strat := range planner.Builtin() {
		rng := rand.New(rand.NewSource(11))
		anchors, err := h.AnchorsNomadicPlanned(obj, strat, 3, rng)
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		statics, sites := 0, 0
		seen := map[int]bool{}
		for _, a := range anchors {
			switch a.Kind {
			case core.StaticAP:
				statics++
			case core.NomadicSite:
				sites++
				if seen[a.SiteIndex] {
					t.Errorf("%s: duplicate site anchor %d", strat.Name(), a.SiteIndex)
				}
				seen[a.SiteIndex] = true
			}
		}
		if statics != 3 {
			t.Errorf("%s: statics = %d", strat.Name(), statics)
		}
		if sites < 1 || sites > 4 {
			t.Errorf("%s: site anchors = %d", strat.Name(), sites)
		}
		// Deterministic strategies with 3 moves visit all 4 sites.
		if strat.Name() == "round-robin" && sites != 4 {
			t.Errorf("round-robin visited %d sites, want 4", sites)
		}
		if strat.Name() == "farthest-first" && sites != 4 {
			t.Errorf("farthest-first visited %d sites, want 4", sites)
		}
	}
}

func TestAnchorsNomadicPlannedLocalizes(t *testing.T) {
	h := labHarness(t)
	obj := geom.V(6, 4)
	rng := rand.New(rand.NewSource(12))
	anchors, err := h.AnchorsNomadicPlanned(obj, planner.GreedyPartition(), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	est, err := h.Localizer().Locate(anchors)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Scenario().Area.Contains(est.Position) {
		t.Errorf("estimate %v outside area", est.Position)
	}
	if d := est.Position.Dist(obj); d > 8 {
		t.Errorf("planned localization error %v m implausible", d)
	}
}

func TestRunMovingPatterns(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunMovingPatterns(scn, fastOptions(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(planner.Builtin()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanError <= 0 || r.MeanError > 10 {
			t.Errorf("%s: mean error %v implausible", r.Variant, r.MeanError)
		}
		if r.SLVValue < 0 {
			t.Errorf("%s: negative SLV", r.Variant)
		}
	}
	// Deterministic full-coverage strategies should not lose badly to the
	// random walk under the same move budget (they visit ≥ as many
	// distinct sites).
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	if rr, ok := byName["round-robin"]; ok {
		if rw, ok2 := byName["random-walk"]; ok2 && rr.MeanError > rw.MeanError+1.0 {
			t.Errorf("round-robin (%v) much worse than random walk (%v)", rr.MeanError, rw.MeanError)
		}
	}
}

func TestRunMovingPatternsDefaultMoves(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOptions()
	opt.TrialsPerSite = 1
	rows, err := RunMovingPatterns(scn, opt, 0) // 0 → waypoint count
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
}
