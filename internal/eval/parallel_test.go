package eval

import (
	"testing"

	"github.com/nomloc/nomloc/internal/deploy"
)

// TestParallelMatchesSequential is the determinism contract of the
// worker pool: the same seed must produce bit-identical estimates at
// Workers=1 and Workers=8, for every harness entry point the pool fans
// out. Each site owns an RNG derived from (Seed, site, mode) alone, so
// which worker executes a site cannot matter.
func TestParallelMatchesSequential(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	base := Options{PacketsPerSite: 8, TrialsPerSite: 2, WalkSteps: 6, Seed: 42}

	harness := func(workers int) *Harness {
		o := base
		o.Workers = workers
		h, err := NewHarness(scn, o)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	seq, par := harness(1), harness(8)

	for _, mode := range []Mode{StaticDeployment, NomadicDeployment} {
		rs, err := seq.RunSites(mode)
		if err != nil {
			t.Fatalf("%v sequential: %v", mode, err)
		}
		rp, err := par.RunSites(mode)
		if err != nil {
			t.Fatalf("%v parallel: %v", mode, err)
		}
		if len(rs) != len(rp) {
			t.Fatalf("%v: %d vs %d sites", mode, len(rs), len(rp))
		}
		for si := range rs {
			if rs[si].MeanError != rp[si].MeanError {
				t.Errorf("%v site %d: mean %v (seq) vs %v (par)", mode, si, rs[si].MeanError, rp[si].MeanError)
			}
			for ti := range rs[si].Errors {
				if rs[si].Errors[ti] != rp[si].Errors[ti] {
					t.Errorf("%v site %d trial %d: %v vs %v — not bit-identical",
						mode, si, ti, rs[si].Errors[ti], rp[si].Errors[ti])
				}
			}
		}
	}

	ps, err := seq.ProximityAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	pp, err := par.ProximityAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	for si := range ps {
		if ps[si] != pp[si] {
			t.Errorf("proximity site %d: %+v vs %+v", si, ps[si], pp[si])
		}
	}
}

// TestParallelAblationsMatchSequential extends the contract to the
// ablation and pattern runners, which parallelize their own site loops.
func TestParallelAblationsMatchSequential(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	base := Options{PacketsPerSite: 6, TrialsPerSite: 1, WalkSteps: 5, Seed: 7}
	par := base
	par.Workers = 8

	type runner struct {
		name string
		run  func(Options) ([]AblationRow, error)
	}
	runners := []runner{
		{"confidence", func(o Options) ([]AblationRow, error) { return RunConfidenceAblation(scn, o) }},
		{"baselines", func(o Options) ([]AblationRow, error) { return RunBaselineComparisonMode(scn, o, NomadicDeployment) }},
		{"multi-nomadic", func(o Options) ([]AblationRow, error) { return RunMultiNomadicExtension(scn, o, []int{2}) }},
		{"patterns", func(o Options) ([]AblationRow, error) { return RunMovingPatterns(scn, o, 2) }},
	}
	for _, r := range runners {
		rs, err := r.run(base)
		if err != nil {
			t.Fatalf("%s sequential: %v", r.name, err)
		}
		rp, err := r.run(par)
		if err != nil {
			t.Fatalf("%s parallel: %v", r.name, err)
		}
		if len(rs) != len(rp) {
			t.Fatalf("%s: %d vs %d rows", r.name, len(rs), len(rp))
		}
		for i := range rs {
			if rs[i] != rp[i] {
				t.Errorf("%s row %d: %+v (seq) vs %+v (par)", r.name, i, rs[i], rp[i])
			}
		}
	}
}
