package eval

// RNG stream namespaces for parallel.MixSeed. The evaluation pipeline
// derives every per-site (or per-grid-point) RNG root through
// parallel.MixSeed(seed, stream, mode); the constants below keep
// experiment families that run outside the static/nomadic deployment
// pair (mode values 1 and 2) on disjoint stream grids, so no two
// experiments ever consume the same noise process.
//
// The per-site sweeps and ablations keep the mode values they published
// the paper figures with (the deployment mode for RunSites/RecordDataset,
// 0 for the ablation arms) — see TestMixSeedPreservesPublishedStreams.
const (
	// proximityMode namespaces ProximityAccuracy (Fig. 7) streams.
	proximityMode int64 = 16
	// locmapModeBase namespaces localizability-map streams; the
	// deployment mode is added on top so static and nomadic maps stay
	// decorrelated.
	locmapModeBase int64 = 32
	// calibrationMode namespaces the ranging baseline's war-driving
	// calibration pass.
	calibrationMode int64 = 64
)
