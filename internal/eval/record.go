package eval

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/dataset"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/mobility"
	"github.com/nomloc/nomloc/internal/parallel"
)

// This file bridges the harness and the dataset package: recording
// campaigns (raw CSI batches + ground truth) and replaying them through a
// localizer.

// RecordDataset runs the scenario's test sites under the given mode,
// keeping the raw CSI batches, and returns the campaign as a dataset
// (TrialsPerSite records per site).
func (h *Harness) RecordDataset(mode Mode) (*dataset.Dataset, error) {
	ds := &dataset.Dataset{
		Version:   dataset.FormatVersion,
		Scenario:  h.scn.Name,
		Mode:      mode.String(),
		Radio:     h.scn.Radio.Radio,
		CreatedAt: time.Date(2014, time.June, 30, 12, 0, 0, 0, time.UTC),
	}
	for si, site := range h.scn.TestSites {
		rng := rand.New(rand.NewSource(parallel.MixSeed(h.opt.Seed, int64(si), int64(mode))))
		for trial := 0; trial < h.opt.TrialsPerSite; trial++ {
			rec, err := h.recordRound(site, mode, rng)
			if err != nil {
				return nil, fmt.Errorf("site %d trial %d: %w", si, trial, err)
			}
			ds.Records = append(ds.Records, rec)
		}
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// recordRound captures one localization round with raw batches.
func (h *Harness) recordRound(obj geom.Vec, mode Mode, rng *rand.Rand) (dataset.Record, error) {
	rec := dataset.Record{Truth: obj}

	appendRaw := func(apID string, siteIdx int, kind core.AnchorKind, truePos, believedPos geom.Vec) error {
		a, batch, err := h.measureRawAnchor(apID, siteIdx, kind, truePos, believedPos, obj, rng)
		if err != nil {
			return err
		}
		rec.Anchors = append(rec.Anchors, dataset.AnchorRecord{
			APID:      a.APID,
			SiteIndex: a.SiteIndex,
			Nomadic:   kind == core.NomadicSite,
			Pos:       a.Pos,
			Batch:     batch,
		})
		return nil
	}

	switch mode {
	case StaticDeployment:
		for _, ap := range h.scn.AllAPsStatic() {
			if err := appendRaw(ap.ID, 0, core.StaticAP, ap.Pos, ap.Pos); err != nil {
				return dataset.Record{}, err
			}
		}
	case NomadicDeployment:
		for _, ap := range h.scn.StaticAPs {
			if err := appendRaw(ap.ID, 0, core.StaticAP, ap.Pos, ap.Pos); err != nil {
				return dataset.Record{}, err
			}
		}
		trace, err := h.chain.GenerateTrace(0, h.opt.WalkSteps, rng)
		if err != nil {
			return dataset.Record{}, err
		}
		for _, siteIdx := range trace.UniqueSites() {
			truePos, err := h.chain.Site(siteIdx)
			if err != nil {
				return dataset.Record{}, err
			}
			believed, err := mobility.PerturbUniformDisk(truePos, h.opt.PositionErrorM, rng)
			if err != nil {
				return dataset.Record{}, err
			}
			if err := appendRaw(h.scn.Nomadic.ID, siteIdx+1, core.NomadicSite, truePos, believed); err != nil {
				return dataset.Record{}, err
			}
		}
	default:
		return dataset.Record{}, fmt.Errorf("%w: %v", ErrBadMode, mode)
	}
	return rec, nil
}

// ReplayResult is one replayed record's outcome.
type ReplayResult struct {
	// Truth is the recorded ground truth.
	Truth geom.Vec
	// Estimate is the replayed localization estimate.
	Estimate geom.Vec
	// Error is the Euclidean distance between them.
	Error float64
}

// ReplayDataset runs the SP pipeline over every record of a dataset —
// batches are re-reduced to PDPs and localized by loc. The channel
// simulator is not involved: this is the pure-algorithm path.
func ReplayDataset(loc *core.Localizer, ds *dataset.Dataset) ([]ReplayResult, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	out := make([]ReplayResult, 0, len(ds.Records))
	for ri, rec := range ds.Records {
		anchors := make([]core.Anchor, 0, len(rec.Anchors))
		for _, a := range rec.Anchors {
			batch := a.Batch
			est, err := core.EstimatePDP(&batch)
			if err != nil {
				return nil, fmt.Errorf("record %d anchor %s#%d: %w", ri, a.APID, a.SiteIndex, err)
			}
			kind := core.StaticAP
			if a.Nomadic {
				kind = core.NomadicSite
			}
			anchors = append(anchors, core.Anchor{
				APID:      a.APID,
				SiteIndex: a.SiteIndex,
				Kind:      kind,
				Pos:       a.Pos,
				PDP:       est.Power,
			})
		}
		est, err := loc.Locate(anchors)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", ri, err)
		}
		out = append(out, ReplayResult{
			Truth:    rec.Truth,
			Estimate: est.Position,
			Error:    est.Position.Dist(rec.Truth),
		})
	}
	return out, nil
}

// ReplayErrors extracts the error column.
func ReplayErrors(results []ReplayResult) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.Error
	}
	return out
}
