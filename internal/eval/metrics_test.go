package eval

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); !math.IsNaN(got) {
		t.Errorf("Mean(nil) = %v, want NaN", got)
	}
}

func TestSLV(t *testing.T) {
	// Identical errors everywhere: zero variance (perfect consistency).
	if got := SLV([]float64{2, 2, 2}); got != 0 {
		t.Errorf("SLV(const) = %v", got)
	}
	// Known variance: {1, 3} has mean 2, SLV 1.
	if got := SLV([]float64{1, 3}); got != 1 {
		t.Errorf("SLV = %v, want 1", got)
	}
	if got := SLV(nil); !math.IsNaN(got) {
		t.Errorf("SLV(nil) = %v, want NaN", got)
	}
}

func TestStdDevMaxMin(t *testing.T) {
	xs := []float64{1, 3}
	if got := StdDev(xs); got != 1 {
		t.Errorf("StdDev = %v", got)
	}
	if got := Max(xs); got != 3 {
		t.Errorf("Max = %v", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if !math.IsNaN(Max(nil)) || !math.IsNaN(Min(nil)) {
		t.Error("Max/Min of empty should be NaN")
	}
}

func TestPropSLVNonNegativeAndShiftInvariant(t *testing.T) {
	f := func(xs []float64, shift float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			clean = append(clean, math.Mod(x, 1000))
		}
		if len(clean) == 0 {
			return true
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			shift = 0
		}
		shift = math.Mod(shift, 1000)
		v := SLV(clean)
		if v < 0 {
			return false
		}
		shifted := make([]float64, len(clean))
		for i, x := range clean {
			shifted[i] = x + shift
		}
		return math.Abs(SLV(shifted)-v) < 1e-6*(1+v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewCDFEmpty(t *testing.T) {
	if _, err := NewCDF(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
}

func TestCDFAt(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCDFPercentile(t *testing.T) {
	c, err := NewCDF([]float64{4, 1, 3, 2}) // unsorted input
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct{ p, want float64 }{
		{0, 1}, {0.25, 1}, {0.5, 2}, {0.75, 3}, {0.9, 4}, {1, 4},
	}
	for _, tt := range tests {
		got, err := c.Percentile(tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := c.Percentile(-0.1); !errors.Is(err, ErrBadProb) {
		t.Errorf("err = %v", err)
	}
	if _, err := c.Percentile(1.5); !errors.Is(err, ErrBadProb) {
		t.Errorf("err = %v", err)
	}
}

func TestCDFPoints(t *testing.T) {
	c, _ := NewCDF([]float64{2, 1})
	pts := c.Points()
	if len(pts) != 2 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].X != 1 || pts[0].P != 0.5 || pts[1].X != 2 || pts[1].P != 1 {
		t.Errorf("Points = %+v", pts)
	}
}

func TestCDFSample(t *testing.T) {
	c, _ := NewCDF([]float64{1, 2, 3, 4})
	pts := c.Sample(4, 4)
	if len(pts) != 5 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].P != 0 || pts[4].P != 1 {
		t.Errorf("endpoints = %v, %v", pts[0], pts[4])
	}
	// Monotone non-decreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].P < pts[i-1].P {
			t.Error("CDF sample not monotone")
		}
	}
	// Degenerate steps clamp to 1.
	if got := c.Sample(4, 0); len(got) != 2 {
		t.Errorf("steps=0 gave %d points", len(got))
	}
}

func TestPropCDFMonotone(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			clean = append(clean, math.Mod(x, 100))
		}
		if len(clean) == 0 {
			return true
		}
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a, b = math.Mod(a, 100), math.Mod(b, 100)
		if a > b {
			a, b = b, a
		}
		c, err := NewCDF(clean)
		if err != nil {
			return false
		}
		return c.At(a) <= c.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeriesValidate(t *testing.T) {
	ok := Series{Name: "s", X: []float64{1, 2}, Y: []float64{3, 4}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid series rejected: %v", err)
	}
	bad := Series{Name: "s", X: []float64{1}, Y: []float64{3, 4}}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched series accepted")
	}
}
