package csi

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// binSeed builds a valid binary encoding for the seed corpus.
func binSeed(tb testing.TB, v Vector) []byte {
	tb.Helper()
	raw, err := v.MarshalBinary()
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzVectorUnmarshalBinary attacks the binary codec. The encoding is
// canonical — magic, count, then exactly 16 bytes per subcarrier — so
// any input the decoder accepts must re-marshal to the identical bytes,
// bit-for-bit (NaN payloads included).
func FuzzVectorUnmarshalBinary(f *testing.F) {
	f.Add(binSeed(f, Vector{}))
	f.Add(binSeed(f, Vector{1 + 2i}))
	f.Add(binSeed(f, Vector{complex(math.Inf(1), math.NaN()), -3 - 4i, 0}))
	f.Add([]byte{})
	f.Add([]byte("CSIV"))                                         // magic only, short header
	f.Add([]byte{0x43, 0x53, 0x49, 0x56, 0, 0, 0, 9})             // count without payload
	f.Add([]byte{0x43, 0x53, 0x49, 0x56, 0xff, 0xff, 0xff, 0xff}) // absurd count
	f.Add(append(binSeed(f, Vector{5i}), 0))                      // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		var v Vector
		if err := v.UnmarshalBinary(data); err != nil {
			return
		}
		again, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted vector failed to re-marshal: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("binary round trip not canonical:\nin:  %x\nout: %x", data, again)
		}
	})
}

// FuzzVectorUnmarshalJSON attacks the JSON (base64-of-binary) codec: no
// panics, and every accepted input must round-trip to a bit-identical
// vector through MarshalJSON.
func FuzzVectorUnmarshalJSON(f *testing.F) {
	for _, v := range []Vector{{}, {1 + 2i, -3i}, {complex(math.NaN(), 0)}} {
		enc, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte(`"not base64!"`))
	f.Add([]byte(`"QUJD"`)) // valid base64, broken payload
	f.Add([]byte(`42`))     // wrong JSON type
	f.Add([]byte(`"`))      // broken JSON

	f.Fuzz(func(t *testing.T, data []byte) {
		var v Vector
		if err := v.UnmarshalJSON(data); err != nil {
			return
		}
		enc, err := v.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted vector failed to re-marshal: %v", err)
		}
		var again Vector
		if err := again.UnmarshalJSON(enc); err != nil {
			t.Fatalf("re-encoded vector failed to decode: %v", err)
		}
		if len(again) != len(v) {
			t.Fatalf("round trip changed length: %d → %d", len(v), len(again))
		}
		for i := range v {
			if math.Float64bits(real(v[i])) != math.Float64bits(real(again[i])) ||
				math.Float64bits(imag(v[i])) != math.Float64bits(imag(again[i])) {
				t.Fatalf("round trip changed entry %d: %v → %v", i, v[i], again[i])
			}
		}
	})
}
