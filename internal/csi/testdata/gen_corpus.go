//go:build ignore

// gen_corpus.go regenerates the checked-in seed corpora for the csi
// fuzz targets. Run from the package directory:
//
//	go run testdata/gen_corpus.go
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"github.com/nomloc/nomloc/internal/csi"
)

func bin(v csi.Vector) []byte {
	raw, err := v.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	return raw
}

func js(v csi.Vector) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	return raw
}

func writeCorpus(target string, seeds [][]byte) {
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for i, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d corpus entries to %s\n", len(seeds), dir)
}

func main() {
	writeCorpus("FuzzVectorUnmarshalBinary", [][]byte{
		bin(csi.Vector{}),
		bin(csi.Vector{1 + 2i}),
		bin(csi.Vector{complex(math.Inf(1), math.NaN()), -3 - 4i, 0}),
		{},
		[]byte("CSIV"),
		{0x43, 0x53, 0x49, 0x56, 0, 0, 0, 9},
		{0x43, 0x53, 0x49, 0x56, 0xff, 0xff, 0xff, 0xff},
		append(bin(csi.Vector{5i}), 0),
	})
	writeCorpus("FuzzVectorUnmarshalJSON", [][]byte{
		js(csi.Vector{}),
		js(csi.Vector{1 + 2i, -3i}),
		js(csi.Vector{complex(math.NaN(), 0)}),
		[]byte(`"not base64!"`),
		[]byte(`"QUJD"`),
		[]byte(`42`),
		[]byte(`"`),
	})
}
