// Package csi models 802.11n channel state information the way NomLoc's
// measurement plane consumes it: a complex gain per OFDM subcarrier,
// captured per received packet, with the radio parameters (bandwidth,
// carrier, subcarrier grid) needed to interpret it in the delay domain.
//
// The default configuration mirrors the Intel WiFi 5300 CSI tool the paper
// used: 30 reported subcarrier groups spanning a 20 MHz 802.11n channel.
package csi

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"
)

// Physical constants.
const (
	// SpeedOfLight in meters per second.
	SpeedOfLight = 299_792_458.0
)

// Default radio parameters (802.11n, channel 6, Intel 5300-style export).
const (
	DefaultNumSubcarriers = 30
	DefaultBandwidth      = 20e6    // Hz
	DefaultCarrierFreq    = 2.437e9 // Hz (2.4 GHz channel 6)
)

// Config describes the OFDM sampling grid of a CSI capture.
type Config struct {
	// NumSubcarriers is the number of reported subcarriers.
	NumSubcarriers int
	// Bandwidth is the occupied bandwidth in Hz; subcarriers are spaced
	// uniformly at Bandwidth/NumSubcarriers so an IFFT over the report
	// yields delay taps of duration 1/Bandwidth.
	Bandwidth float64
	// CarrierFreq is the RF carrier in Hz; it only matters for the
	// per-path carrier phase, not for the delay grid.
	CarrierFreq float64
}

// DefaultConfig returns the Intel 5300-style configuration the paper's
// prototype used.
func DefaultConfig() Config {
	return Config{
		NumSubcarriers: DefaultNumSubcarriers,
		Bandwidth:      DefaultBandwidth,
		CarrierFreq:    DefaultCarrierFreq,
	}
}

// Errors reported by the package.
var (
	ErrBadConfig      = errors.New("csi: invalid config")
	ErrLengthMismatch = errors.New("csi: vector length mismatch")
	ErrCorruptData    = errors.New("csi: corrupt encoding")
)

// Validate checks the configuration for physical plausibility.
func (c Config) Validate() error {
	if c.NumSubcarriers < 2 {
		return fmt.Errorf("%w: need ≥ 2 subcarriers, got %d", ErrBadConfig, c.NumSubcarriers)
	}
	if c.Bandwidth <= 0 || math.IsNaN(c.Bandwidth) || math.IsInf(c.Bandwidth, 0) {
		return fmt.Errorf("%w: bandwidth %v", ErrBadConfig, c.Bandwidth)
	}
	if c.CarrierFreq <= 0 || math.IsNaN(c.CarrierFreq) || math.IsInf(c.CarrierFreq, 0) {
		return fmt.Errorf("%w: carrier %v", ErrBadConfig, c.CarrierFreq)
	}
	return nil
}

// SubcarrierSpacing returns the frequency step between reported
// subcarriers in Hz.
func (c Config) SubcarrierSpacing() float64 {
	return c.Bandwidth / float64(c.NumSubcarriers)
}

// SubcarrierOffsets returns the baseband frequency offset of each reported
// subcarrier relative to subcarrier 0, in Hz: k·Δf.
func (c Config) SubcarrierOffsets() []float64 {
	df := c.SubcarrierSpacing()
	out := make([]float64, c.NumSubcarriers)
	for k := range out {
		out[k] = float64(k) * df
	}
	return out
}

// DelayResolution returns the delay-domain tap duration in seconds
// (1/bandwidth — 50 ns for a 20 MHz channel).
func (c Config) DelayResolution() float64 { return 1 / c.Bandwidth }

// MetersPerTap returns the path-length difference one CIR tap represents.
func (c Config) MetersPerTap() float64 { return SpeedOfLight / c.Bandwidth }

// MaxUnambiguousDelay returns the delay beyond which CIR taps alias
// (N/bandwidth).
func (c Config) MaxUnambiguousDelay() float64 {
	return float64(c.NumSubcarriers) / c.Bandwidth
}

// Wavelength returns the carrier wavelength in meters.
func (c Config) Wavelength() float64 { return SpeedOfLight / c.CarrierFreq }

// Vector is one CSI snapshot: a complex channel gain per subcarrier.
type Vector []complex128

// Clone returns a deep copy.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Power returns Σ|H[k]|².
func (v Vector) Power() float64 {
	var p float64
	for _, c := range v {
		re, im := real(c), imag(c)
		p += re*re + im*im
	}
	return p
}

// IsZero reports whether every entry is exactly zero (an unset vector).
func (v Vector) IsZero() bool {
	for _, c := range v {
		if c != 0 {
			return false
		}
	}
	return true
}

// magicVector tags the binary encoding of a Vector.
const magicVector uint32 = 0x43534956 // "CSIV"

// MarshalBinary encodes the vector as magic, count, then big-endian
// float64 (re, im) pairs.
func (v Vector) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(8 + 16*len(v))
	var scratch [8]byte
	binary.BigEndian.PutUint32(scratch[:4], magicVector)
	binary.BigEndian.PutUint32(scratch[4:], uint32(len(v)))
	buf.Write(scratch[:])
	for _, c := range v {
		binary.BigEndian.PutUint64(scratch[:], math.Float64bits(real(c)))
		buf.Write(scratch[:])
		binary.BigEndian.PutUint64(scratch[:], math.Float64bits(imag(c)))
		buf.Write(scratch[:])
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a vector produced by MarshalBinary.
func (v *Vector) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("%w: short header (%d bytes)", ErrCorruptData, len(data))
	}
	if binary.BigEndian.Uint32(data[:4]) != magicVector {
		return fmt.Errorf("%w: bad magic", ErrCorruptData)
	}
	n := int(binary.BigEndian.Uint32(data[4:8]))
	want := 8 + 16*n
	if len(data) != want {
		return fmt.Errorf("%w: have %d bytes, want %d for %d subcarriers",
			ErrCorruptData, len(data), want, n)
	}
	out := make(Vector, n)
	off := 8
	for i := 0; i < n; i++ {
		re := math.Float64frombits(binary.BigEndian.Uint64(data[off : off+8]))
		im := math.Float64frombits(binary.BigEndian.Uint64(data[off+8 : off+16]))
		out[i] = complex(re, im)
		off += 16
	}
	*v = out
	return nil
}

// MarshalJSON encodes the vector as a base64 string of its binary form
// (complex128 has no native JSON representation).
func (v Vector) MarshalJSON() ([]byte, error) {
	raw, err := v.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return json.Marshal(base64.StdEncoding.EncodeToString(raw))
}

// UnmarshalJSON decodes the base64 binary form written by MarshalJSON.
func (v *Vector) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("%w: %v", ErrCorruptData, err)
	}
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return fmt.Errorf("%w: base64: %v", ErrCorruptData, err)
	}
	return v.UnmarshalBinary(raw)
}

// Sample is one packet's CSI capture at an AP, stamped with the capture
// context the localization server needs.
type Sample struct {
	// APID identifies the capturing access point.
	APID string `json:"apId"`
	// Seq is the packet sequence number within a measurement burst.
	Seq uint64 `json:"seq"`
	// CapturedAt is the capture timestamp.
	CapturedAt time.Time `json:"capturedAt"`
	// RSSI is the coarse received signal strength in dBm (what legacy
	// RSS-based systems would use; kept for the baselines).
	RSSI float64 `json:"rssi"` //nomloc:unit dBm
	// CSI is the per-subcarrier channel snapshot.
	CSI Vector `json:"csi"`
}

// Validate checks the sample against a configuration.
func (s *Sample) Validate(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if len(s.CSI) != cfg.NumSubcarriers {
		return fmt.Errorf("%w: sample has %d subcarriers, config wants %d",
			ErrLengthMismatch, len(s.CSI), cfg.NumSubcarriers)
	}
	return nil
}

// Batch is a burst of samples captured by one AP at one (AP) position.
type Batch struct {
	// APID identifies the capturing AP.
	APID string `json:"apId"`
	// SiteIndex is the waypoint index a nomadic AP occupied for this
	// burst; static APs use 0.
	SiteIndex int `json:"siteIndex"`
	// Samples holds the per-packet captures.
	Samples []Sample `json:"samples"`
}

// MeanVector returns the per-subcarrier average of all sample CSI vectors
// in the batch; averaging coherent snapshots suppresses per-packet noise.
// It returns an error when the batch is empty or lengths disagree.
func (b *Batch) MeanVector() (Vector, error) {
	if len(b.Samples) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrCorruptData)
	}
	n := len(b.Samples[0].CSI)
	mean := make(Vector, n)
	for i := range b.Samples {
		if len(b.Samples[i].CSI) != n {
			return nil, fmt.Errorf("%w: sample %d has %d subcarriers, want %d",
				ErrLengthMismatch, i, len(b.Samples[i].CSI), n)
		}
		for k, c := range b.Samples[i].CSI {
			mean[k] += c
		}
	}
	inv := complex(1/float64(len(b.Samples)), 0)
	for k := range mean {
		mean[k] *= inv
	}
	return mean, nil
}

// MeanRSSI returns the average RSSI across the batch (dBm domain average,
// the way commodity stacks report it). It returns −Inf for an empty batch.
func (b *Batch) MeanRSSI() float64 {
	if len(b.Samples) == 0 {
		return math.Inf(-1)
	}
	var sum float64
	for i := range b.Samples {
		sum += b.Samples[i].RSSI
	}
	return sum / float64(len(b.Samples))
}
