package csi

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.NumSubcarriers != 30 {
		t.Errorf("NumSubcarriers = %d", cfg.NumSubcarriers)
	}
	// 20 MHz channel: one tap is ~15 m of path.
	if got := cfg.MetersPerTap(); math.Abs(got-14.99) > 0.1 {
		t.Errorf("MetersPerTap = %v, want ≈ 14.99", got)
	}
	if got := cfg.DelayResolution(); math.Abs(got-50e-9) > 1e-12 {
		t.Errorf("DelayResolution = %v, want 50 ns", got)
	}
	if got := cfg.MaxUnambiguousDelay(); math.Abs(got-1.5e-6) > 1e-12 {
		t.Errorf("MaxUnambiguousDelay = %v, want 1.5 µs", got)
	}
	if got := cfg.Wavelength(); math.Abs(got-0.123) > 0.001 {
		t.Errorf("Wavelength = %v, want ≈ 0.123 m", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{NumSubcarriers: 1, Bandwidth: 20e6, CarrierFreq: 2.4e9},
		{NumSubcarriers: 30, Bandwidth: 0, CarrierFreq: 2.4e9},
		{NumSubcarriers: 30, Bandwidth: -1, CarrierFreq: 2.4e9},
		{NumSubcarriers: 30, Bandwidth: 20e6, CarrierFreq: 0},
		{NumSubcarriers: 30, Bandwidth: math.NaN(), CarrierFreq: 2.4e9},
		{NumSubcarriers: 30, Bandwidth: 20e6, CarrierFreq: math.Inf(1)},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestSubcarrierOffsets(t *testing.T) {
	cfg := Config{NumSubcarriers: 4, Bandwidth: 4e6, CarrierFreq: 2.4e9}
	offs := cfg.SubcarrierOffsets()
	want := []float64{0, 1e6, 2e6, 3e6}
	if len(offs) != 4 {
		t.Fatalf("len = %d", len(offs))
	}
	for i := range want {
		if math.Abs(offs[i]-want[i]) > 1e-6 {
			t.Errorf("offset[%d] = %v, want %v", i, offs[i], want[i])
		}
	}
	if got := cfg.SubcarrierSpacing(); math.Abs(got-1e6) > 1e-9 {
		t.Errorf("spacing = %v", got)
	}
}

func TestVectorPowerAndClone(t *testing.T) {
	v := Vector{3 + 4i, 1i}
	if got := v.Power(); math.Abs(got-26) > 1e-12 {
		t.Errorf("Power = %v, want 26", got)
	}
	c := v.Clone()
	c[0] = 0
	if v[0] != 3+4i {
		t.Error("Clone aliases the original")
	}
	if !(Vector{0, 0}).IsZero() {
		t.Error("zero vector not detected")
	}
	if v.IsZero() {
		t.Error("nonzero vector reported zero")
	}
}

func TestVectorBinaryRoundtrip(t *testing.T) {
	v := Vector{1 + 2i, -3.5 + 0.25i, 0, complex(math.Pi, -math.E)}
	data, err := v.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 8+16*len(v) {
		t.Errorf("encoded length = %d", len(data))
	}
	var got Vector
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(v) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range v {
		if got[i] != v[i] {
			t.Errorf("entry %d: %v != %v", i, got[i], v[i])
		}
	}
}

func TestVectorUnmarshalErrors(t *testing.T) {
	var v Vector
	if err := v.UnmarshalBinary([]byte{1, 2}); !errors.Is(err, ErrCorruptData) {
		t.Errorf("short: err = %v", err)
	}
	good, err := (Vector{1}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if err := v.UnmarshalBinary(bad); !errors.Is(err, ErrCorruptData) {
		t.Errorf("bad magic: err = %v", err)
	}
	if err := v.UnmarshalBinary(good[:len(good)-1]); !errors.Is(err, ErrCorruptData) {
		t.Errorf("truncated: err = %v", err)
	}
}

func TestPropVectorBinaryRoundtrip(t *testing.T) {
	f := func(res, ims []float64) bool {
		n := len(res)
		if len(ims) < n {
			n = len(ims)
		}
		v := make(Vector, n)
		for i := 0; i < n; i++ {
			re, im := res[i], ims[i]
			if math.IsNaN(re) || math.IsNaN(im) {
				return true // NaN != NaN; skip
			}
			v[i] = complex(re, im)
		}
		data, err := v.MarshalBinary()
		if err != nil {
			return false
		}
		var got Vector
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleValidate(t *testing.T) {
	cfg := Config{NumSubcarriers: 3, Bandwidth: 20e6, CarrierFreq: 2.4e9}
	s := &Sample{APID: "ap1", CSI: Vector{1, 2, 3}, CapturedAt: time.Now()}
	if err := s.Validate(cfg); err != nil {
		t.Errorf("valid sample rejected: %v", err)
	}
	s.CSI = Vector{1}
	if err := s.Validate(cfg); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
	if err := s.Validate(Config{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("err = %v, want ErrBadConfig", err)
	}
}

func TestBatchMeanVector(t *testing.T) {
	b := &Batch{
		APID: "ap1",
		Samples: []Sample{
			{CSI: Vector{2 + 2i, 4}},
			{CSI: Vector{4 - 2i, 0}},
		},
	}
	mean, err := b.MeanVector()
	if err != nil {
		t.Fatal(err)
	}
	if mean[0] != 3+0i || mean[1] != 2 {
		t.Errorf("mean = %v", mean)
	}

	empty := &Batch{}
	if _, err := empty.MeanVector(); err == nil {
		t.Error("empty batch should error")
	}

	ragged := &Batch{Samples: []Sample{{CSI: Vector{1}}, {CSI: Vector{1, 2}}}}
	if _, err := ragged.MeanVector(); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("ragged err = %v", err)
	}
}

func TestBatchMeanRSSI(t *testing.T) {
	b := &Batch{Samples: []Sample{{RSSI: -40}, {RSSI: -50}}}
	if got := b.MeanRSSI(); math.Abs(got+45) > 1e-12 {
		t.Errorf("MeanRSSI = %v, want -45", got)
	}
	if got := (&Batch{}).MeanRSSI(); !math.IsInf(got, -1) {
		t.Errorf("empty MeanRSSI = %v, want -Inf", got)
	}
}
