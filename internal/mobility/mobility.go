// Package mobility models how a nomadic AP moves: a Markov-chain random
// walk over a discrete set of waypoint sites (the model the paper's
// evaluation methodology prescribes, §V-A), plus the uniform-disk position
// error injection used to study robustness to erroneous nomadic-AP
// coordinates (§V-E).
package mobility

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/nomloc/nomloc/internal/geom"
)

// Chain is a finite Markov chain whose states are waypoint sites.
type Chain struct {
	sites []geom.Vec
	trans [][]float64
}

// Construction errors.
var (
	ErrNoSites        = errors.New("mobility: need at least one site")
	ErrBadTransition  = errors.New("mobility: invalid transition matrix")
	ErrBadSiteIndex   = errors.New("mobility: site index out of range")
	ErrBadErrorRadius = errors.New("mobility: negative error radius")
)

// NewChain builds a chain over the given sites with the row-stochastic
// transition matrix trans (trans[i][j] is the probability of moving from
// site i to site j). Rows must sum to 1 within a small tolerance.
func NewChain(sites []geom.Vec, trans [][]float64) (*Chain, error) {
	n := len(sites)
	if n == 0 {
		return nil, ErrNoSites
	}
	if len(trans) != n {
		return nil, fmt.Errorf("%w: %d rows for %d sites", ErrBadTransition, len(trans), n)
	}
	cp := make([][]float64, n)
	for i, row := range trans {
		if len(row) != n {
			return nil, fmt.Errorf("%w: row %d has %d entries", ErrBadTransition, i, len(row))
		}
		var sum float64
		for j, p := range row {
			if p < 0 || math.IsNaN(p) {
				return nil, fmt.Errorf("%w: trans[%d][%d] = %v", ErrBadTransition, i, j, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("%w: row %d sums to %v", ErrBadTransition, i, sum)
		}
		cp[i] = append([]float64(nil), row...)
	}
	return &Chain{sites: append([]geom.Vec(nil), sites...), trans: cp}, nil
}

// UniformChain builds a chain that jumps to every site (including staying
// put) with equal probability — the "random walks among the sites" model
// the paper's experiments use.
func UniformChain(sites []geom.Vec) (*Chain, error) {
	n := len(sites)
	if n == 0 {
		return nil, ErrNoSites
	}
	trans := make([][]float64, n)
	p := 1 / float64(n)
	for i := range trans {
		row := make([]float64, n)
		for j := range row {
			row[j] = p
		}
		trans[i] = row
	}
	return NewChain(sites, trans)
}

// NumSites returns the number of waypoint sites.
func (c *Chain) NumSites() int { return len(c.sites) }

// Site returns the coordinates of site i.
func (c *Chain) Site(i int) (geom.Vec, error) {
	if i < 0 || i >= len(c.sites) {
		return geom.Vec{}, fmt.Errorf("%w: %d of %d", ErrBadSiteIndex, i, len(c.sites))
	}
	return c.sites[i], nil
}

// Sites returns a copy of the site list.
func (c *Chain) Sites() []geom.Vec {
	return append([]geom.Vec(nil), c.sites...)
}

// Step samples the successor state of cur.
func (c *Chain) Step(cur int, rng *rand.Rand) (int, error) {
	if cur < 0 || cur >= len(c.sites) {
		return 0, fmt.Errorf("%w: %d of %d", ErrBadSiteIndex, cur, len(c.sites))
	}
	u := rng.Float64()
	var acc float64
	row := c.trans[cur]
	for j, p := range row {
		acc += p
		if u < acc {
			return j, nil
		}
	}
	// Floating-point residue: fall back to the last positive-probability
	// state.
	for j := len(row) - 1; j >= 0; j-- {
		if row[j] > 0 {
			return j, nil
		}
	}
	return cur, nil
}

// Walk samples a trajectory of the given number of steps starting from
// start. The returned slice has steps+1 entries and begins with start.
func (c *Chain) Walk(start, steps int, rng *rand.Rand) ([]int, error) {
	if start < 0 || start >= len(c.sites) {
		return nil, fmt.Errorf("%w: start %d of %d", ErrBadSiteIndex, start, len(c.sites))
	}
	if steps < 0 {
		steps = 0
	}
	out := make([]int, 0, steps+1)
	out = append(out, start)
	cur := start
	for k := 0; k < steps; k++ {
		next, err := c.Step(cur, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, next)
		cur = next
	}
	return out, nil
}

// StationaryDistribution approximates the chain's stationary distribution
// by power iteration from the uniform distribution.
func (c *Chain) StationaryDistribution(iters int) []float64 {
	n := len(c.sites)
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for k := 0; k < iters; k++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			if pi[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				next[j] += pi[i] * c.trans[i][j]
			}
		}
		pi, next = next, pi
	}
	return pi
}

// Trace is a realized nomadic-AP trajectory: the ordered site visits with
// their true coordinates.
type Trace struct {
	// SiteIndices is the visit order.
	SiteIndices []int
	// Positions holds the true coordinates per visit.
	Positions []geom.Vec
}

// GenerateTrace samples a walk and materializes site coordinates.
func (c *Chain) GenerateTrace(start, steps int, rng *rand.Rand) (*Trace, error) {
	idx, err := c.Walk(start, steps, rng)
	if err != nil {
		return nil, err
	}
	tr := &Trace{SiteIndices: idx, Positions: make([]geom.Vec, len(idx))}
	for k, i := range idx {
		tr.Positions[k] = c.sites[i]
	}
	return tr, nil
}

// UniqueSites returns the distinct site indices in visit order.
func (t *Trace) UniqueSites() []int {
	seen := make(map[int]bool, len(t.SiteIndices))
	var out []int
	for _, i := range t.SiteIndices {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

// Len returns the number of visits in the trace.
func (t *Trace) Len() int { return len(t.SiteIndices) }

// PerturbUniformDisk returns p displaced by a vector drawn uniformly from
// the disk of the given radius — the paper's "artificial random errors …
// with error range (ER)" applied to nomadic-AP coordinates. A radius of 0
// returns p unchanged.
func PerturbUniformDisk(p geom.Vec, radius float64, rng *rand.Rand) (geom.Vec, error) {
	if radius < 0 {
		return geom.Vec{}, fmt.Errorf("%w: %v", ErrBadErrorRadius, radius)
	}
	if radius == 0 {
		return p, nil
	}
	// Uniform over the disk: r = R√u, θ uniform.
	r := radius * math.Sqrt(rng.Float64())
	theta := 2 * math.Pi * rng.Float64()
	return p.Add(geom.V(r*math.Cos(theta), r*math.Sin(theta))), nil
}

// PerturbTrace returns a copy of the trace with every position displaced
// independently by a uniform-disk error of the given radius. The site
// indices are preserved so ground truth remains linked.
func PerturbTrace(t *Trace, radius float64, rng *rand.Rand) (*Trace, error) {
	out := &Trace{
		SiteIndices: append([]int(nil), t.SiteIndices...),
		Positions:   make([]geom.Vec, len(t.Positions)),
	}
	for k, p := range t.Positions {
		q, err := PerturbUniformDisk(p, radius, rng)
		if err != nil {
			return nil, err
		}
		out.Positions[k] = q
	}
	return out, nil
}
