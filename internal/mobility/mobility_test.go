package mobility

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nomloc/nomloc/internal/geom"
)

func threeSites() []geom.Vec {
	return []geom.Vec{geom.V(0, 0), geom.V(5, 0), geom.V(0, 5)}
}

func TestNewChainValidation(t *testing.T) {
	sites := threeSites()
	if _, err := NewChain(nil, nil); !errors.Is(err, ErrNoSites) {
		t.Errorf("no sites err = %v", err)
	}
	if _, err := NewChain(sites, [][]float64{{1}}); !errors.Is(err, ErrBadTransition) {
		t.Errorf("short matrix err = %v", err)
	}
	bad := [][]float64{{0.5, 0.5, 0}, {0.2, 0.2, 0.2}, {0, 0, 1}}
	if _, err := NewChain(sites, bad); !errors.Is(err, ErrBadTransition) {
		t.Errorf("non-stochastic row err = %v", err)
	}
	neg := [][]float64{{1.5, -0.5, 0}, {0, 1, 0}, {0, 0, 1}}
	if _, err := NewChain(sites, neg); !errors.Is(err, ErrBadTransition) {
		t.Errorf("negative entry err = %v", err)
	}
	ragged := [][]float64{{1, 0, 0}, {0, 1}, {0, 0, 1}}
	if _, err := NewChain(sites, ragged); !errors.Is(err, ErrBadTransition) {
		t.Errorf("ragged row err = %v", err)
	}
}

func TestUniformChain(t *testing.T) {
	c, err := UniformChain(threeSites())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSites() != 3 {
		t.Errorf("NumSites = %d", c.NumSites())
	}
	if _, err := UniformChain(nil); !errors.Is(err, ErrNoSites) {
		t.Errorf("err = %v", err)
	}
}

func TestSiteAccess(t *testing.T) {
	c, _ := UniformChain(threeSites())
	s, err := c.Site(1)
	if err != nil || s != geom.V(5, 0) {
		t.Errorf("Site(1) = %v, %v", s, err)
	}
	if _, err := c.Site(3); !errors.Is(err, ErrBadSiteIndex) {
		t.Errorf("out of range err = %v", err)
	}
	if _, err := c.Site(-1); !errors.Is(err, ErrBadSiteIndex) {
		t.Errorf("negative err = %v", err)
	}
	sites := c.Sites()
	sites[0] = geom.V(99, 99)
	if got, _ := c.Site(0); got == geom.V(99, 99) {
		t.Error("Sites returned internal storage")
	}
}

func TestStepDistribution(t *testing.T) {
	// A biased 2-state chain: from state 0, go to 1 with p=0.8.
	sites := []geom.Vec{geom.V(0, 0), geom.V(1, 0)}
	c, err := NewChain(sites, [][]float64{{0.2, 0.8}, {0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	count := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		next, err := c.Step(0, rng)
		if err != nil {
			t.Fatal(err)
		}
		if next == 1 {
			count++
		}
	}
	got := float64(count) / trials
	if math.Abs(got-0.8) > 0.02 {
		t.Errorf("empirical P(0→1) = %v, want ≈ 0.8", got)
	}
	if _, err := c.Step(5, rng); !errors.Is(err, ErrBadSiteIndex) {
		t.Errorf("bad index err = %v", err)
	}
}

func TestStepAbsorbing(t *testing.T) {
	sites := []geom.Vec{geom.V(0, 0), geom.V(1, 0)}
	c, err := NewChain(sites, [][]float64{{1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		next, err := c.Step(0, rng)
		if err != nil || next != 0 {
			t.Fatalf("absorbing state left: %d, %v", next, err)
		}
	}
}

func TestWalk(t *testing.T) {
	c, _ := UniformChain(threeSites())
	rng := rand.New(rand.NewSource(3))
	w, err := c.Walk(1, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 11 {
		t.Fatalf("len = %d, want 11", len(w))
	}
	if w[0] != 1 {
		t.Errorf("walk does not start at start: %d", w[0])
	}
	for _, i := range w {
		if i < 0 || i >= 3 {
			t.Errorf("site index %d out of range", i)
		}
	}
	if _, err := c.Walk(9, 5, rng); !errors.Is(err, ErrBadSiteIndex) {
		t.Errorf("bad start err = %v", err)
	}
	// Negative steps clamp to zero.
	w, err = c.Walk(0, -5, rng)
	if err != nil || len(w) != 1 {
		t.Errorf("negative steps: %v, %v", w, err)
	}
}

func TestStationaryDistributionUniform(t *testing.T) {
	c, _ := UniformChain(threeSites())
	pi := c.StationaryDistribution(50)
	for i, p := range pi {
		if math.Abs(p-1.0/3) > 1e-9 {
			t.Errorf("pi[%d] = %v, want 1/3", i, p)
		}
	}
}

func TestStationaryDistributionBiased(t *testing.T) {
	// Two states with P(0→1)=0.9, P(1→0)=0.1: stationary = (0.1, 0.9).
	sites := []geom.Vec{geom.V(0, 0), geom.V(1, 0)}
	c, err := NewChain(sites, [][]float64{{0.1, 0.9}, {0.1, 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	pi := c.StationaryDistribution(100)
	if math.Abs(pi[0]-0.1) > 1e-9 || math.Abs(pi[1]-0.9) > 1e-9 {
		t.Errorf("pi = %v, want (0.1, 0.9)", pi)
	}
}

func TestGenerateTrace(t *testing.T) {
	c, _ := UniformChain(threeSites())
	rng := rand.New(rand.NewSource(4))
	tr, err := c.GenerateTrace(0, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 21 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for k, i := range tr.SiteIndices {
		want, _ := c.Site(i)
		if tr.Positions[k] != want {
			t.Errorf("visit %d: position %v does not match site %d", k, tr.Positions[k], i)
		}
	}
	if _, err := c.GenerateTrace(-1, 5, rng); !errors.Is(err, ErrBadSiteIndex) {
		t.Errorf("bad start err = %v", err)
	}
}

func TestUniqueSites(t *testing.T) {
	tr := &Trace{SiteIndices: []int{2, 0, 2, 1, 0, 1}}
	got := tr.UniqueSites()
	want := []int{2, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
		}
	}
}

func TestPerturbUniformDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := geom.V(3, 4)

	if _, err := PerturbUniformDisk(p, -1, rng); !errors.Is(err, ErrBadErrorRadius) {
		t.Errorf("negative radius err = %v", err)
	}
	got, err := PerturbUniformDisk(p, 0, rng)
	if err != nil || got != p {
		t.Errorf("zero radius should be identity: %v, %v", got, err)
	}

	const radius = 2.0
	var sumDist float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		q, err := PerturbUniformDisk(p, radius, rng)
		if err != nil {
			t.Fatal(err)
		}
		d := q.Dist(p)
		if d > radius+1e-12 {
			t.Fatalf("perturbation %v exceeds radius", d)
		}
		sumDist += d
	}
	// Uniform disk: E[r] = 2R/3.
	mean := sumDist / trials
	if math.Abs(mean-2*radius/3) > 0.02 {
		t.Errorf("mean displacement = %v, want %v", mean, 2*radius/3)
	}
}

func TestPerturbTrace(t *testing.T) {
	c, _ := UniformChain(threeSites())
	rng := rand.New(rand.NewSource(6))
	tr, err := c.GenerateTrace(0, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := PerturbTrace(tr, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Len() != tr.Len() {
		t.Fatalf("length changed")
	}
	moved := false
	for k := range tr.Positions {
		if pt.SiteIndices[k] != tr.SiteIndices[k] {
			t.Error("site indices changed")
		}
		d := pt.Positions[k].Dist(tr.Positions[k])
		if d > 1.5+1e-12 {
			t.Errorf("visit %d displaced by %v > radius", k, d)
		}
		if d > 0 {
			moved = true
		}
	}
	if !moved {
		t.Error("perturbation moved nothing")
	}
	// Original is untouched.
	orig, _ := c.Site(tr.SiteIndices[0])
	if tr.Positions[0] != orig {
		t.Error("PerturbTrace mutated the input trace")
	}
	if _, err := PerturbTrace(tr, -1, rng); !errors.Is(err, ErrBadErrorRadius) {
		t.Errorf("negative radius err = %v", err)
	}
}

func TestPropPerturbWithinRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(x, y, rRaw float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 100)
		}
		p := geom.V(clamp(x), clamp(y))
		radius := math.Abs(clamp(rRaw))
		q, err := PerturbUniformDisk(p, radius, rng)
		if err != nil {
			return false
		}
		return q.Dist(p) <= radius+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
