package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/telemetry"
	"github.com/nomloc/nomloc/internal/wire"
)

// mustNet builds a Net from a plan the test believes valid.
func mustNet(t *testing.T, plan Plan, opts Options) *Net {
	t.Helper()
	n, err := New(plan, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

// pump pushes msgs through a fault-injecting pipe named name and returns
// what the clean side received ("bad" for a frame that decoded to a typed
// error) plus whether the writer hit an injected reset. The write side is
// closed after the last message so held frames flush.
func pump(t *testing.T, n *Net, name string, msgs []wire.Message) (got []string, reset bool) {
	t.Helper()
	faulty, clean := n.Pipe(name)
	done := make(chan []string, 1)
	go func() {
		var rec []string
		for {
			m, err := wire.ReadMessage(clean)
			if err != nil {
				if wire.IsDecodeError(err) {
					rec = append(rec, "bad")
					continue
				}
				done <- rec
				return
			}
			rec = append(rec, string(m.Type()))
		}
	}()
	for _, m := range msgs {
		if err := wire.WriteMessage(faulty, m); err != nil {
			if errors.Is(err, ErrReset) {
				reset = true
				break
			}
			t.Fatalf("write: %v", err)
		}
	}
	_ = faulty.Close()
	select {
	case got = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reader never finished")
	}
	_ = clean.Close()
	return got, reset
}

// script builds a burst of distinct messages to push through a pipe.
func script(k int) []wire.Message {
	msgs := make([]wire.Message, 0, k+1)
	msgs = append(msgs, &wire.Hello{Role: wire.RoleAP, ID: "ap1"})
	for i := 0; i < k; i++ {
		msgs = append(msgs, &wire.RoundStart{RoundID: uint64(i + 1), ObjectID: "obj", Packets: 1})
	}
	return msgs
}

func TestProfiles(t *testing.T) {
	for _, name := range Profiles() {
		p, err := Profile(name, 7)
		if err != nil {
			t.Errorf("Profile(%q): %v", name, err)
		}
		if p.Seed != 7 {
			t.Errorf("Profile(%q).Seed = %d", name, p.Seed)
		}
		if len(p.Rules) == 0 {
			t.Errorf("Profile(%q) has no rules", name)
		}
		for _, r := range p.Rules {
			if r.From < 1 {
				t.Errorf("Profile(%q) rule %s starts at frame %d; the handshake frame must stay clean", name, r.Fault, r.From)
			}
		}
	}
	if _, err := Profile("bogus", 1); !errors.Is(err, ErrUnknownProfile) {
		t.Errorf("unknown profile: %v", err)
	}
}

func TestRuleWindow(t *testing.T) {
	r := Rule{Fault: Drop, From: 2, Until: 5}
	for i, want := range map[int]bool{0: false, 1: false, 2: true, 4: true, 5: false} {
		if got := r.active(i); got != want {
			t.Errorf("active(%d) = %v, want %v", i, got, want)
		}
	}
	unbounded := Rule{Fault: Drop, From: 1}
	if !unbounded.active(1 << 20) {
		t.Error("unbounded rule should stay active")
	}
}

// TestPassThrough: with no rules armed, every frame crosses intact, even
// when the writer fragments frames into single bytes.
func TestPassThrough(t *testing.T) {
	n := mustNet(t, Plan{Seed: 1}, Options{})
	faulty, clean := n.Pipe("c")
	var buf bytes.Buffer
	if err := wire.WriteMessage(&buf, &wire.Hello{Role: wire.RoleAP, ID: "ap1"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	got := make(chan wire.Message, 1)
	go func() {
		m, err := wire.ReadMessage(clean)
		if err != nil {
			t.Errorf("read: %v", err)
		}
		got <- m
	}()
	for _, b := range raw { // worst-case fragmentation
		if _, err := faulty.Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	m := <-got
	if hello, ok := m.(*wire.Hello); !ok || hello.ID != "ap1" {
		t.Fatalf("got %#v", m)
	}
	if n.Trace().Len() != 0 {
		t.Errorf("trace not empty: %s", n.Trace())
	}
	_ = faulty.Close()
}

func TestDropAndPartition(t *testing.T) {
	for _, fault := range []Fault{Drop, Partition} {
		n := mustNet(t, Plan{Seed: 3, Rules: []Rule{{Fault: fault, Prob: 1, From: 2, Until: 4}}}, Options{})
		got, _ := pump(t, n, "c", script(5)) // frames 0..5
		if len(got) != 4 {                   // frames 2 and 3 vanish
			t.Errorf("%s: received %d frames (%v), want 4", fault, len(got), got)
		}
		if c := n.Trace().CountByFault()[fault]; c != 2 {
			t.Errorf("%s: trace counts %d events, want 2", fault, c)
		}
	}
}

func TestDup(t *testing.T) {
	n := mustNet(t, Plan{Seed: 3, Rules: []Rule{{Fault: Dup, Prob: 1, From: 1, Until: 3}}}, Options{})
	got, _ := pump(t, n, "c", script(3)) // frames 0..3; 1 and 2 doubled
	if len(got) != 6 {
		t.Errorf("received %d frames (%v), want 6", len(got), got)
	}
}

// TestDelayReleasesInLogicalTime: a held frame is released by later
// frames, never by a timer — total delivery is complete and the ordering
// shift is exact.
func TestDelayReleasesInLogicalTime(t *testing.T) {
	n := mustNet(t, Plan{Seed: 3, Rules: []Rule{{Fault: Delay, Prob: 1, From: 1, Until: 2, Hold: 2}}}, Options{})
	msgs := []wire.Message{
		&wire.RoundStart{RoundID: 10, ObjectID: "obj"},
		&wire.RoundStart{RoundID: 11, ObjectID: "obj"}, // held until after frame 3
		&wire.RoundStart{RoundID: 12, ObjectID: "obj"},
		&wire.RoundStart{RoundID: 13, ObjectID: "obj"},
		&wire.RoundStart{RoundID: 14, ObjectID: "obj"},
	}
	faulty, clean := n.Pipe("c")
	var order []uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := wire.ReadMessage(clean)
			if err != nil {
				return
			}
			order = append(order, m.(*wire.RoundStart).RoundID)
		}
	}()
	for _, m := range msgs {
		if err := wire.WriteMessage(faulty, m); err != nil {
			t.Fatal(err)
		}
	}
	_ = faulty.Close()
	<-done
	want := []uint64{10, 12, 13, 11, 14}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestCorruptKeepsFraming(t *testing.T) {
	n := mustNet(t, Plan{Seed: 9, Rules: []Rule{{Fault: Corrupt, Prob: 1, From: 1, Until: 3, Bytes: 2}}}, Options{})
	got, _ := pump(t, n, "c", script(4))
	// All 5 frames arrive: corrupted ones decode (possibly to "bad"), and
	// crucially the stream never desyncs — the frames after the window are
	// intact message types.
	if len(got) != 5 {
		t.Fatalf("received %d frames (%v), want 5", len(got), got)
	}
	if got[len(got)-1] != string(wire.TypeRoundStart) {
		t.Errorf("stream desynced after corruption: %v", got)
	}
	if c := n.Trace().CountByFault()[Corrupt]; c != 2 {
		t.Errorf("trace counts %d corruptions, want 2", c)
	}
}

func TestResetBreaksConnection(t *testing.T) {
	n := mustNet(t, Plan{Seed: 5, Rules: []Rule{{Fault: Reset, Prob: 1, From: 2, Until: 3}}}, Options{})
	got, reset := pump(t, n, "c", script(5))
	if !reset {
		t.Fatal("writer never saw ErrReset")
	}
	if len(got) > 2 {
		t.Errorf("received %d frames after a frame-2 reset: %v", len(got), got)
	}
	// Writes after a reset fail immediately.
	faulty, _ := n.Pipe("c2")
	n2 := mustNet(t, Plan{Seed: 5, Rules: []Rule{{Fault: Reset, Prob: 1, From: 0}}}, Options{})
	f2, c2 := n2.Pipe("x")
	go func() {
		_, _ = wire.ReadMessage(c2)
	}()
	if err := wire.WriteMessage(f2, &wire.Hello{ID: "x"}); !errors.Is(err, ErrReset) {
		t.Errorf("first write: %v, want ErrReset", err)
	}
	if _, err := f2.Write([]byte{1}); !errors.Is(err, ErrReset) {
		t.Errorf("write after reset: %v, want ErrReset", err)
	}
	_ = faulty.Close()
}

// TestScheduleDeterminism: same plan, same connection names → byte-equal
// traces and identical delivery, run after run.
func TestScheduleDeterminism(t *testing.T) {
	plan := Plan{Seed: 11, Rules: []Rule{
		{Fault: Drop, Prob: 0.3, From: 1},
		{Fault: Dup, Prob: 0.2, From: 1},
		{Fault: Delay, Prob: 0.2, From: 1, Hold: 2},
		{Fault: Corrupt, Prob: 0.1, From: 1, Bytes: 1},
	}}
	run := func() (string, []string) {
		n := mustNet(t, plan, Options{})
		var all []string
		for _, name := range []string{"ap0", "ap1", "ap2"} {
			got, _ := pump(t, n, name, script(20))
			all = append(all, got...)
		}
		return n.Trace().String(), all
	}
	trace1, got1 := run()
	trace2, got2 := run()
	if trace1 != trace2 {
		t.Errorf("traces differ:\n--- run 1\n%s--- run 2\n%s", trace1, trace2)
	}
	if fmt.Sprint(got1) != fmt.Sprint(got2) {
		t.Errorf("deliveries differ:\n%v\n%v", got1, got2)
	}
	if trace1 == "" {
		t.Error("no faults fired; the plan is not exercising anything")
	}
}

// TestAttemptAdvancesSchedule: the same name reconnecting gets a fresh —
// but still deterministic — schedule, labeled name#attempt in the trace.
func TestAttemptAdvancesSchedule(t *testing.T) {
	plan := Plan{Seed: 13, Rules: []Rule{{Fault: Drop, Prob: 0.5, From: 0}}}
	n := mustNet(t, plan, Options{})
	got0, _ := pump(t, n, "ap1", script(30))
	got1, _ := pump(t, n, "ap1", script(30))
	if fmt.Sprint(got0) == fmt.Sprint(got1) {
		t.Error("attempt 0 and 1 produced identical fates; streams should differ")
	}
	trace := n.Trace().String()
	if !strings.Contains(trace, "ap1#1 ") {
		t.Errorf("trace lacks attempt-1 label:\n%s", trace)
	}
}

func TestDialer(t *testing.T) {
	reg := telemetry.New(nil)
	n := mustNet(t, Plan{Seed: 1, DialFailProb: 1}, Options{Telemetry: reg})
	dial := n.Dialer("obj", func(addr string) (net.Conn, error) {
		t.Fatal("underlying dial reached despite DialFailProb=1")
		return nil, nil
	})
	if _, err := dial("whatever"); !errors.Is(err, ErrDialRefused) {
		t.Fatalf("dial: %v, want ErrDialRefused", err)
	}
	if got := reg.Counter("nomloc_chaos_dial_failures_total", "").Value(); got != 1 {
		t.Errorf("dial failure counter = %v, want 1", got)
	}
	ok := mustNet(t, Plan{Seed: 1}, Options{})
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	dial2 := ok.Dialer("obj", func(addr string) (net.Conn, error) { return c1, nil })
	conn, err := dial2("whatever")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, isFault := conn.(*faultConn); !isFault {
		t.Errorf("dialer returned %T, want *faultConn", conn)
	}
}

func TestCorruptCopyDeterministic(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	a := CorruptCopy(data, 99, 4)
	b := CorruptCopy(data, 99, 4)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different corruption")
	}
	if bytes.Equal(a, data) {
		t.Error("no bytes flipped")
	}
	if c := CorruptCopy(data, 100, 4); bytes.Equal(a, c) {
		t.Error("different seeds produced identical corruption")
	}
	if got := CorruptCopy(nil, 1, 3); len(got) != 0 {
		t.Errorf("corrupting empty input produced %v", got)
	}
}

// TestTraceStringStable: String sorts by (conn, frame), so insertion
// order — which depends on goroutine interleaving in real runs — cannot
// leak into the rendering.
func TestTraceStringStable(t *testing.T) {
	tr := &Trace{}
	tr.add(Event{Conn: "b", Frame: 2, Fault: Drop})
	tr.add(Event{Conn: "a", Frame: 5, Fault: Dup, Detail: "x"})
	tr.add(Event{Conn: "a", Frame: 1, Fault: Drop})
	want := "a frame=1 fault=drop\na frame=5 fault=dup x\nb frame=2 fault=drop\n"
	if got := tr.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

// TestClockStampsTraceOnly: an injected clock stamps events but never
// changes the rendered trace.
func TestClockStampsTraceOnly(t *testing.T) {
	fixed := time.Date(2014, 6, 30, 12, 0, 0, 0, time.UTC)
	n := mustNet(t, Plan{Seed: 3, Rules: []Rule{{Fault: Drop, Prob: 1, From: 0}}},
		Options{Clock: func() time.Time { return fixed }})
	_, _ = pump(t, n, "c", script(0))
	events := n.Trace().Events()
	if len(events) == 0 {
		t.Fatal("no events")
	}
	if !events[0].At.Equal(fixed) {
		t.Errorf("event stamped %v, want %v", events[0].At, fixed)
	}
	bare := mustNet(t, Plan{Seed: 3, Rules: []Rule{{Fault: Drop, Prob: 1, From: 0}}}, Options{})
	_, _ = pump(t, bare, "c", script(0))
	if n.Trace().String() != bare.Trace().String() {
		t.Error("clock leaked into the trace rendering")
	}
}

// TestPlanValidate: malformed plans are rejected with ErrBadPlan rather
// than clamped — a clamped probability would silently shift every RNG
// draw after it and break trace replay.
func TestPlanValidate(t *testing.T) {
	bad := []struct {
		name string
		plan Plan
	}{
		{"nan prob", Plan{Rules: []Rule{{Fault: Drop, Prob: math.NaN()}}}},
		{"negative prob", Plan{Rules: []Rule{{Fault: Drop, Prob: -0.1}}}},
		{"prob above one", Plan{Rules: []Rule{{Fault: Drop, Prob: 1.1}}}},
		{"nan dial prob", Plan{DialFailProb: math.NaN()}},
		{"negative dial prob", Plan{DialFailProb: -1}},
		{"dial prob above one", Plan{DialFailProb: 2}},
		{"negative from", Plan{Rules: []Rule{{Fault: Drop, Prob: 0.5, From: -1}}}},
		{"negative until", Plan{Rules: []Rule{{Fault: Drop, Prob: 0.5, Until: -2}}}},
		{"empty window", Plan{Rules: []Rule{{Fault: Drop, Prob: 0.5, From: 5, Until: 5}}}},
		{"negative hold", Plan{Rules: []Rule{{Fault: Delay, Prob: 0.5, Hold: -1}}}},
		{"negative bytes", Plan{Rules: []Rule{{Fault: Corrupt, Prob: 0.5, Bytes: -3}}}},
		{"unknown fault", Plan{Rules: []Rule{{Fault: "gremlin", Prob: 0.5}}}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.plan.Validate(); !errors.Is(err, ErrBadPlan) {
				t.Errorf("Validate = %v, want ErrBadPlan", err)
			}
			if _, err := New(tc.plan, Options{}); !errors.Is(err, ErrBadPlan) {
				t.Errorf("New = %v, want ErrBadPlan", err)
			}
		})
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Errorf("zero plan: %v", err)
	}
	for _, name := range Profiles() {
		plan, err := Profile(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Validate(); err != nil {
			t.Errorf("profile %s fails its own validation: %v", name, err)
		}
	}
}
