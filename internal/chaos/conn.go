package chaos

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"

	"github.com/nomloc/nomloc/internal/parallel"
)

// faultConn is one fault-injecting endpoint. Writes are buffered until a
// whole wire frame (4-byte big-endian length prefix plus body) is
// available, then the frame's fate is drawn from the connection's RNG
// stream. Reads pass through untouched — to fault the reverse direction,
// wrap the other endpoint.
type faultConn struct {
	net.Conn
	net   *Net
	label string

	mu      sync.Mutex
	rng     *rand.Rand
	pending []byte      // bytes not yet forming a whole frame
	held    []heldFrame // delayed frames awaiting release
	frame   int         // next per-connection frame index
	broken  bool        // an injected reset closed the transport
}

// heldFrame is a delayed frame and the frame index that releases it.
type heldFrame struct {
	data    []byte
	release int // forwarded after the frame with this index
}

// Write implements net.Conn. It reassembles frames from p and applies
// the plan to each completed frame; a partial frame stays buffered for
// the next call. The returned length covers all of p on success —
// dropped frames are "written" from the caller's point of view, exactly
// like bytes handed to a kernel that later loses them.
func (c *faultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return 0, ErrReset
	}
	c.pending = append(c.pending, p...)
	for {
		if len(c.pending) < 4 {
			return len(p), nil
		}
		frameLen := int(binary.BigEndian.Uint32(c.pending))
		if frameLen > maxBufferedFrame {
			// Not wire traffic; fail open and flush everything raw.
			raw := c.pending
			c.pending = nil
			if _, err := c.Conn.Write(raw); err != nil {
				return 0, err
			}
			return len(p), nil
		}
		total := 4 + frameLen
		if len(c.pending) < total {
			return len(p), nil
		}
		frame := append([]byte(nil), c.pending[:total]...)
		c.pending = append(c.pending[:0], c.pending[total:]...)
		if err := c.processLocked(frame); err != nil {
			return 0, err
		}
	}
}

// processLocked decides and applies one frame's fate. Every rule draws
// exactly one probability sample per frame — windows and earlier firings
// never change how many draws happen — so the RNG stream position is a
// pure function of the frame index and schedules replay bit-identically.
func (c *faultConn) processLocked(frame []byte) error {
	idx := c.frame
	c.frame++
	c.net.frames.Inc()

	var fired *Rule
	for i := range c.net.plan.Rules {
		r := &c.net.plan.Rules[i]
		draw := c.rng.Float64()
		if fired != nil || !r.active(idx) {
			continue
		}
		if draw < r.Prob {
			fired = r
		}
	}
	if fired == nil {
		if _, err := c.Conn.Write(frame); err != nil {
			return err
		}
		return c.releaseHeldLocked(idx)
	}

	c.net.faults[fired.Fault].Inc()
	switch fired.Fault {
	case Drop, Partition:
		c.net.trace.add(Event{Conn: c.label, Frame: idx, Fault: fired.Fault, At: c.net.stamp()})
		return c.releaseHeldLocked(idx)
	case Dup:
		c.net.trace.add(Event{Conn: c.label, Frame: idx, Fault: Dup, At: c.net.stamp()})
		if _, err := c.Conn.Write(frame); err != nil {
			return err
		}
		if _, err := c.Conn.Write(frame); err != nil {
			return err
		}
		return c.releaseHeldLocked(idx)
	case Delay, Reorder:
		hold := fired.Hold
		if fired.Fault == Reorder || hold <= 0 {
			hold = 1
		}
		c.held = append(c.held, heldFrame{data: frame, release: idx + hold})
		c.net.trace.add(Event{Conn: c.label, Frame: idx, Fault: fired.Fault,
			Detail: fmt.Sprintf("hold=%d", hold), At: c.net.stamp()})
		return nil
	case Corrupt:
		flips := fired.Bytes
		if flips <= 0 {
			flips = 1
		}
		detail := corruptFrame(frame, c.rng, flips)
		c.net.trace.add(Event{Conn: c.label, Frame: idx, Fault: Corrupt, Detail: detail, At: c.net.stamp()})
		if _, err := c.Conn.Write(frame); err != nil {
			return err
		}
		return c.releaseHeldLocked(idx)
	case Reset:
		cut := c.rng.Intn(len(frame))
		c.net.trace.add(Event{Conn: c.label, Frame: idx, Fault: Reset,
			Detail: fmt.Sprintf("cut=%d", cut), At: c.net.stamp()})
		if cut > 0 {
			_, _ = c.Conn.Write(frame[:cut]) //nomloc:errdrop-ok the injected reset is already the dominant failure
		}
		c.broken = true
		_ = c.Conn.Close() //nomloc:errdrop-ok best-effort teardown of the transport being reset
		return ErrReset
	default:
		// An unknown fault kind in a hand-built rule: forward unfaulted.
		if _, err := c.Conn.Write(frame); err != nil {
			return err
		}
		return c.releaseHeldLocked(idx)
	}
}

// releaseHeldLocked forwards every held frame whose release index has
// arrived, preserving hold order.
func (c *faultConn) releaseHeldLocked(idx int) error {
	kept := c.held[:0]
	for _, h := range c.held {
		if h.release <= idx {
			if _, err := c.Conn.Write(h.data); err != nil {
				return err
			}
			continue
		}
		kept = append(kept, h)
	}
	c.held = kept
	return nil
}

// Close flushes any held frames and closes the underlying connection, so
// a delayed frame is late, never silently lost, unless the plan dropped
// it explicitly.
func (c *faultConn) Close() error {
	c.mu.Lock()
	if !c.broken {
		for _, h := range c.held {
			_, _ = c.Conn.Write(h.data) //nomloc:errdrop-ok best-effort flush on teardown
		}
	}
	c.held = nil
	c.mu.Unlock()
	return c.Conn.Close()
}

// corruptFrame flips n bytes of the frame body in place (the length
// prefix survives so the stream stays framed) and returns a
// deterministic description of the flips. Frames with an empty body are
// left untouched.
func corruptFrame(frame []byte, rng *rand.Rand, n int) string {
	if len(frame) <= 4 {
		return "empty body"
	}
	detail := "offsets="
	for i := 0; i < n; i++ {
		off := 4 + rng.Intn(len(frame)-4)
		frame[off] ^= byte(1 + rng.Intn(255))
		if i > 0 {
			detail += ","
		}
		detail += fmt.Sprint(off)
	}
	return detail
}

// CorruptCopy returns a copy of data with n byte flips drawn from a
// stream derived from seed, leaving the input untouched. The flips hit
// any offset, header included — it exists for fuzzing the wire decoder
// against corruption harsher than the in-band Corrupt fault (which
// preserves framing).
func CorruptCopy(data []byte, seed int64, n int) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 || n <= 0 {
		return out
	}
	rng := parallel.Stream(seed, 0)
	for i := 0; i < n; i++ {
		out[rng.Intn(len(out))] ^= byte(1 + rng.Intn(255))
	}
	return out
}
