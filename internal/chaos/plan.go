// Package chaos is the deterministic fault-injection layer the
// server/agent/wire stack is hardened against. NomLoc's premise is that
// nomadic APs come and go — devices move, sleep, disconnect, and report
// late — so the transport under the wire protocol must be testable under
// exactly those conditions, reproducibly.
//
// The package wraps net.Conn endpoints (chaos.Net) and injects faults at
// frame granularity: it understands the wire protocol's 4-byte length
// prefix, reassembles whole frames from the write stream, and then — from
// an RNG schedule derived from the plan seed alone — drops, duplicates,
// delays (in logical frame time, never wall time), reorders, corrupts,
// resets mid-frame, or partitions. Every decision is recorded in a Trace
// whose rendering is byte-identical across two runs of the same seed, so
// a failing chaos test names a seed and the exact failure replays.
//
// chaos is under nomloc-vet's determinism contract: it never reads the
// wall clock (an injectable telemetry.Clock stamps trace events), all
// randomness flows through streams derived via parallel.MixSeed, and no
// map iteration order can leak into behavior.
package chaos

import (
	"errors"
	"fmt"
	"math"
)

// Fault names one injected failure mode.
type Fault string

// Fault kinds.
const (
	// Drop silently discards the frame.
	Drop Fault = "drop"
	// Dup forwards the frame twice.
	Dup Fault = "dup"
	// Delay holds the frame for Rule.Hold subsequent frames before
	// releasing it (logical time; the stream stays framed).
	Delay Fault = "delay"
	// Reorder is Delay with a hold of one frame: the frame swaps places
	// with its successor.
	Reorder Fault = "reorder"
	// Corrupt flips Rule.Bytes bytes inside the frame body. The length
	// prefix is preserved, so the stream stays framed and the receiver
	// sees a typed decode error rather than a desync.
	Corrupt Fault = "corrupt"
	// Reset forwards a prefix of the frame and closes the underlying
	// connection mid-stream: the receiver desyncs and both sides lose
	// the session.
	Reset Fault = "reset"
	// Partition discards the frame like Drop; by convention partition
	// rules run with Prob 1 over a window, modeling a link outage.
	Partition Fault = "partition"
)

// Faults lists every fault kind in reporting order.
func Faults() []Fault {
	return []Fault{Drop, Dup, Delay, Reorder, Corrupt, Reset, Partition}
}

// Rule arms one fault over a window of per-connection frame indices.
type Rule struct {
	// Fault is the failure mode this rule injects.
	Fault Fault
	// Prob is the per-frame firing probability in [0, 1].
	Prob float64
	// From is the first frame index (per connection, 0-based) the rule
	// applies to. Frame 0 carries the Hello on agent connections, so
	// plans that must not break the handshake start at 1.
	From int
	// Until is the first frame index the rule no longer applies to;
	// 0 means unbounded. A bounded window is how a plan "heals".
	Until int
	// Hold is the number of subsequent frames a Delay holds its victim
	// for (default 1).
	Hold int
	// Bytes is the number of byte flips a Corrupt applies (default 1).
	Bytes int
}

// active reports whether the rule covers frame index i.
func (r *Rule) active(i int) bool {
	return i >= r.From && (r.Until == 0 || i < r.Until)
}

// Plan is a declarative fault schedule: a seed and the rules it drives.
// The same plan always replays the same failure trace — rules are
// consulted in order per frame, the first firing rule wins, and every
// rule draws exactly one probability sample per frame so streams stay
// aligned no matter which faults fire.
type Plan struct {
	// Seed is the root of every RNG stream the plan draws from.
	Seed int64
	// Rules are the armed faults, consulted in order.
	Rules []Rule
	// DialFailProb makes Dialer attempts fail with this probability,
	// modeling a partitioned or refusing endpoint during reconnect.
	DialFailProb float64
}

// ErrBadPlan reports a plan that failed validation. chaos refuses bad
// plans outright rather than clamping: a silently-clamped probability
// changes every RNG draw after it, so the trace a user thinks they are
// replaying is not the trace that ran.
var ErrBadPlan = errors.New("chaos: invalid plan")

// checkProb rejects probabilities outside [0, 1], including NaN.
func checkProb(name string, v float64) error {
	if math.IsNaN(v) || v < 0 || v > 1 {
		return fmt.Errorf("%w: %s = %v, want a probability in [0, 1]", ErrBadPlan, name, v)
	}
	return nil
}

// Validate rejects malformed plans with ErrBadPlan: probabilities must
// be real numbers in [0, 1], windows must be non-negative and non-empty,
// holds and byte counts must be non-negative, and every rule must name a
// known fault kind.
func (p Plan) Validate() error {
	if err := checkProb("DialFailProb", p.DialFailProb); err != nil {
		return err
	}
	known := make(map[Fault]bool, len(Faults()))
	for _, f := range Faults() {
		known[f] = true
	}
	for i, r := range p.Rules {
		if !known[r.Fault] {
			return fmt.Errorf("%w: rule %d: unknown fault %q", ErrBadPlan, i, r.Fault)
		}
		if err := checkProb(fmt.Sprintf("rule %d Prob", i), r.Prob); err != nil {
			return err
		}
		if r.From < 0 {
			return fmt.Errorf("%w: rule %d: From = %d, want >= 0", ErrBadPlan, i, r.From)
		}
		if r.Until < 0 {
			return fmt.Errorf("%w: rule %d: Until = %d, want >= 0", ErrBadPlan, i, r.Until)
		}
		if r.Until != 0 && r.Until <= r.From {
			return fmt.Errorf("%w: rule %d: empty window [%d, %d)", ErrBadPlan, i, r.From, r.Until)
		}
		if r.Hold < 0 {
			return fmt.Errorf("%w: rule %d: Hold = %d, want >= 0", ErrBadPlan, i, r.Hold)
		}
		if r.Bytes < 0 {
			return fmt.Errorf("%w: rule %d: Bytes = %d, want >= 0", ErrBadPlan, i, r.Bytes)
		}
	}
	return nil
}

// ErrUnknownProfile reports a Profile name that is not registered.
var ErrUnknownProfile = errors.New("chaos: unknown profile")

// Profiles lists the named plans Profile accepts.
func Profiles() []string { return []string{"lossy", "flaky", "partition"} }

// Profile returns a named ready-made plan seeded with seed:
//
//   - lossy: a congested link — drops, duplicates, logical delays, and
//     occasional body corruption; connections survive.
//   - flaky: an unreliable device — mid-stream resets on top of drops
//     and delays, plus refused redials, exercising reconnect/backoff.
//   - partition: a link outage — a window in which every frame is
//     discarded and dials fail, then full healing.
//
// All profiles leave frame 0 untouched so the initial handshake of each
// connection attempt can complete.
func Profile(name string, seed int64) (Plan, error) {
	switch name {
	case "lossy":
		return Plan{Seed: seed, Rules: []Rule{
			{Fault: Drop, Prob: 0.05, From: 1},
			{Fault: Dup, Prob: 0.02, From: 1},
			{Fault: Delay, Prob: 0.03, From: 1, Hold: 2},
			{Fault: Corrupt, Prob: 0.01, From: 1, Bytes: 2},
		}}, nil
	case "flaky":
		return Plan{Seed: seed, DialFailProb: 0.2, Rules: []Rule{
			{Fault: Reset, Prob: 0.01, From: 1},
			{Fault: Drop, Prob: 0.02, From: 1},
			{Fault: Delay, Prob: 0.05, From: 1, Hold: 1},
		}}, nil
	case "partition":
		return Plan{Seed: seed, DialFailProb: 0.25, Rules: []Rule{
			{Fault: Partition, Prob: 1, From: 4, Until: 12},
			{Fault: Drop, Prob: 0.01, From: 1},
		}}, nil
	default:
		return Plan{}, fmt.Errorf("%w: %q (want one of lossy, flaky, partition)", ErrUnknownProfile, name)
	}
}
