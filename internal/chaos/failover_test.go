package chaos

// Primary/standby failover conformance (DESIGN.md §14). The keystone
// run kills a journal-backed primary mid-round at injected crash points,
// drains the durable tail of its directory to a streaming standby,
// promotes the standby, and finishes the scenario against it — the final
// estimate stream must be byte-identical to the uninterrupted golden
// run, and the deposed primary must be provably fenced (typed ErrFenced
// on its sender, nomloc_repl_fenced_total on the standby).

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/agent"
	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/journal"
	"github.com/nomloc/nomloc/internal/replica"
	"github.com/nomloc/nomloc/internal/server"
	"github.com/nomloc/nomloc/internal/telemetry"
	"github.com/nomloc/nomloc/internal/wire"
)

// startStandbyServer starts a journal-backed standby on an ephemeral
// port, with telemetry so fencing is observable.
func startStandbyServer(t *testing.T, dir string) (*server.Server, *journal.Journal, *telemetry.Registry, string) {
	t.Helper()
	j, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	loc, err := core.New(core.Config{Area: geom.Rect(0, 0, 12, 8)})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New(nil)
	srv, err := server.New(server.Config{
		Localizer:            loc,
		RoundTimeout:         time.Second,
		Journal:              j,
		JournalSnapshotEvery: 2,
		Standby:              true,
		Epoch:                1,
		Telemetry:            reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if cerr := j.Close(); cerr != nil && !errors.Is(cerr, journal.ErrClosed) {
			t.Errorf("standby journal close: %v", cerr)
		}
	})
	return srv, j, reg, ln.Addr().String()
}

// counterValue reads one counter total out of a registry snapshot.
func counterValue(reg *telemetry.Registry, name string) float64 {
	for _, m := range reg.Snapshot().Metrics {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

// drainDirTo streams a dead primary's journal directory into the standby
// until every durable record is acknowledged — the pre-promotion drain.
func drainDirTo(t *testing.T, dir, addr string, epoch uint64) {
	t.Helper()
	snd, err := replica.NewSender(replica.Config{
		Dir: dir, Addr: addr, ServerID: "nomloc-server", Epoch: epoch,
		Poll: time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- snd.Run() }()
	deadline := time.Now().Add(10 * time.Second)
	for !snd.Caught() {
		if time.Now().After(deadline) {
			t.Fatalf("drain never caught up (acked %d)", snd.Acked())
		}
		time.Sleep(time.Millisecond)
	}
	snd.Close()
	if err := <-done; !errors.Is(err, replica.ErrSenderClosed) {
		t.Fatalf("drain sender exited with %v", err)
	}
}

// dialFailoverDrivers registers the raw driver connections against an
// already-running server, in the same canonical order as
// startRecoveryRun, and returns a recoveryRun bound to them.
func dialFailoverDrivers(t *testing.T, srv *server.Server, j *journal.Journal, addr string) *recoveryRun {
	t.Helper()
	run := &recoveryRun{srv: srv, j: j}
	dial := func(h *wire.Hello) net.Conn {
		conn, derr := net.Dial("tcp", addr)
		if derr != nil {
			t.Fatal(derr)
		}
		t.Cleanup(func() { _ = conn.Close() })
		if werr := wire.WriteMessage(conn, h); werr != nil {
			t.Fatal(werr)
		}
		if _, rerr := readMsg[*wire.HelloAck](conn); rerr != nil {
			t.Fatalf("hello ack: %v", rerr)
		}
		return conn
	}
	run.aps[0] = dial(&wire.Hello{Role: wire.RoleAP, ID: "ap1", Pos: geom.V(1, 1)})
	run.aps[1] = dial(&wire.Hello{Role: wire.RoleAP, ID: "ap2", Pos: geom.V(11, 7)})
	run.object = dial(&wire.Hello{Role: wire.RoleObject, ID: "obj1"})
	return run
}

// TestFailoverConformance is the keystone: for several injected crash
// points, a primary killed mid-round is drained into a standby, the
// standby promotes and finishes the run, and the final estimate stream
// is byte-identical to the uninterrupted golden run — with the deposed
// primary provably fenced.
func TestFailoverConformance(t *testing.T) {
	golden := goldenRecoveryRun(t)
	if len(golden) != recoveryRounds {
		t.Fatalf("golden produced %d estimates, want %d", len(golden), recoveryRounds)
	}

	// Visit numbering matches TestCrashRecoveryConformance: 1 meta, 2-4
	// session opens, then 3 appends per round.
	cases := []struct {
		point CrashPoint
		nth   int
	}{
		{CrashAppendBefore, 6},
		{CrashAppendTorn, 6},
		{CrashAppendTorn, 7},
		{CrashAppendAfter, 7},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/visit%d", tc.point, tc.nth), func(t *testing.T) {
			primaryDir := t.TempDir()
			standbyDir := t.TempDir()
			standby, standbyJ, reg, standbyAddr := startStandbyServer(t, standbyDir)

			// Primary with the crash injector armed, live replication
			// streaming its journal to the standby as rounds run.
			crasher := NewCrasher(tc.point, tc.nth)
			run := startRecoveryRun(t, primaryDir, crasher.Hook)
			live, err := replica.NewSender(replica.Config{
				Journal: run.j, Addr: standbyAddr, ServerID: "nomloc-server", Epoch: 1,
				Poll: time.Millisecond, Seed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			liveDone := make(chan error, 1)
			go func() { liveDone <- live.Run() }()

			var crashedAt uint64
			for r := uint64(1); r <= recoveryRounds; r++ {
				if err := run.tryRound(r); err != nil {
					crashedAt = r
					break
				}
			}
			if !crasher.Fired() || crashedAt == 0 {
				t.Fatalf("crash point never fired (fired=%v, crashedAt=%d)", crasher.Fired(), crashedAt)
			}
			live.Close()
			<-liveDone
			run.srv.Shutdown()
			if err := run.j.Close(); err != nil && !errors.Is(err, journal.ErrClosed) {
				t.Fatalf("close crashed journal: %v", err)
			}

			// Post-mortem drain: whatever the live stream missed comes off
			// the dead primary's disk. The standby then holds exactly the
			// durable prefix a restarted primary would recover.
			drainDirTo(t, primaryDir, standbyAddr, 1)

			epoch, err := standby.Promote(0)
			if err != nil || epoch != 2 {
				t.Fatalf("promote = (%d, %v), want (2, nil)", epoch, err)
			}

			// The deposed primary's sender reappears at its old epoch and
			// must be fenced: typed error, counted on the standby.
			stale, err := replica.NewSender(replica.Config{
				Dir: primaryDir, Addr: standbyAddr, ServerID: "nomloc-server", Epoch: 1,
				Poll: time.Millisecond, Seed: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := stale.Run(); !errors.Is(err, replica.ErrFenced) {
				t.Fatalf("deposed primary's sender exited with %v, want ErrFenced", err)
			}
			if n := counterValue(reg, "nomloc_repl_fenced_total"); n < 1 {
				t.Fatalf("nomloc_repl_fenced_total = %v, want >= 1", n)
			}

			// Finish the scenario against the promoted standby: recovered
			// estimates must prefix-match golden, re-driven rounds must
			// complete it byte-for-byte.
			resumed := dialFailoverDrivers(t, standby, standbyJ, standbyAddr)
			restored := resumed.srv.Estimates()
			for i := range restored {
				if restored[i] != golden[i] {
					t.Fatalf("adopted estimate %d diverged:\n got %+v\nwant %+v", i, restored[i], golden[i])
				}
			}
			for r := uint64(len(restored)) + 1; r <= recoveryRounds; r++ {
				if err := resumed.tryRound(r); err != nil {
					t.Fatalf("post-failover round %d: %v", r, err)
				}
			}
			final := resumed.srv.Estimates()
			if len(final) != len(golden) {
				t.Fatalf("failover run produced %d estimates, want %d", len(final), len(golden))
			}
			for i := range golden {
				if final[i] != golden[i] {
					t.Fatalf("estimate %d diverged from golden:\n got %+v\nwant %+v", i, final[i], golden[i])
				}
			}

			standby.Shutdown()
			if err := standbyJ.Close(); err != nil && !errors.Is(err, journal.ErrClosed) {
				t.Fatalf("close standby journal: %v", err)
			}
			vr, err := journal.Verify(standbyDir)
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if !vr.Clean() {
				t.Fatalf("standby journal has %d diffs: %+v", len(vr.Diffs), vr.Diffs)
			}
		})
	}
}

// TestPartitionPromoteFencesOldPrimary covers the split-brain scenario
// the epoch exists for: the primary is NOT dead, only partitioned from
// the standby. The standby promotes; when the partition heals and the
// old primary's stream reconnects, it must be fenced — not silently
// accepted as a second writer.
func TestPartitionPromoteFencesOldPrimary(t *testing.T) {
	standbyDir := t.TempDir()
	standby, _, reg, standbyAddr := startStandbyServer(t, standbyDir)

	primaryDir := t.TempDir()
	run := startRecoveryRun(t, primaryDir, nil)
	live, err := replica.NewSender(replica.Config{
		Journal: run.j, Addr: standbyAddr, ServerID: "nomloc-server", Epoch: 1,
		Poll: time.Millisecond, Seed: 1,
		Sleep: func(time.Duration) {}, // reconnect instantly once fenced checks run
	})
	if err != nil {
		t.Fatal(err)
	}
	liveDone := make(chan error, 1)
	go func() { liveDone <- live.Run() }()

	// Two healthy rounds replicate, then the "partition": the operator
	// promotes the standby while the primary is still alive and serving.
	for r := uint64(1); r <= 2; r++ {
		if err := run.tryRound(r); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for !live.Caught() {
		if time.Now().After(deadline) {
			t.Fatalf("replication never caught up (acked %d)", live.Acked())
		}
		time.Sleep(time.Millisecond)
	}
	if epoch, err := standby.Promote(0); err != nil || epoch != 2 {
		t.Fatalf("promote = (%d, %v), want (2, nil)", epoch, err)
	}

	// The old primary keeps appending (it can still serve its agents)
	// but its stream must terminate with ErrFenced at the next batch or
	// handshake — split-brain is refused, not absorbed.
	if err := run.tryRound(3); err != nil {
		t.Fatalf("old primary stopped serving during partition: %v", err)
	}
	select {
	case err := <-liveDone:
		if !errors.Is(err, replica.ErrFenced) {
			t.Fatalf("old primary's sender exited with %v, want ErrFenced", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("old primary's sender was never fenced")
	}
	if n := counterValue(reg, "nomloc_repl_fenced_total"); n < 1 {
		t.Fatalf("nomloc_repl_fenced_total = %v, want >= 1", n)
	}
}

// TestAgentFailoverSoak runs the full agent stack against a replicated
// primary/standby pair: rounds flow on the primary, the primary dies,
// the standby promotes, and every agent finds it through the failover
// dial list — rounds keep completing, and the whole stack unwinds.
func TestAgentFailoverSoak(t *testing.T) {
	before := runtime.NumGoroutine()
	scn := soakScenario(t)
	loc, err := core.New(core.Config{Area: scn.Area})
	if err != nil {
		t.Fatal(err)
	}

	standbyDir := t.TempDir()
	standbyJ, err := journal.Open(journal.Options{Dir: standbyDir})
	if err != nil {
		t.Fatal(err)
	}
	standby, err := server.New(server.Config{
		Localizer: loc, RoundTimeout: 500 * time.Millisecond,
		Journal: standbyJ, Standby: true, Epoch: 1, ID: "nomloc-soak",
	})
	if err != nil {
		t.Fatal(err)
	}
	standbyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = standby.Serve(standbyLn)
	}()

	primaryDir := t.TempDir()
	primaryJ, err := journal.Open(journal.Options{Dir: primaryDir})
	if err != nil {
		t.Fatal(err)
	}
	primary, err := server.New(server.Config{
		Localizer: loc, RoundTimeout: 500 * time.Millisecond,
		Journal: primaryJ, ID: "nomloc-soak",
	})
	if err != nil {
		t.Fatal(err)
	}
	primaryLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = primary.Serve(primaryLn)
	}()

	live, err := replica.NewSender(replica.Config{
		Journal: primaryJ, Addr: standbyLn.Addr().String(), ServerID: "nomloc-soak", Epoch: 1,
		Poll: time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	liveDone := make(chan error, 1)
	go func() { liveDone <- live.Run() }()

	addrs := []string{primaryLn.Addr().String(), standbyLn.Addr().String()}
	var aps []*agent.APAgent
	for i, ap := range scn.StaticAPs {
		a, err := agent.DialAP(agent.APConfig{
			ID: ap.ID, ServerAddrs: addrs, Sites: []geom.Vec{ap.Pos},
			Seed:          int64(100 + i),
			MaxReconnects: 100, ReconnectBase: time.Millisecond, ReconnectMax: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		aps = append(aps, a)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Run()
		}()
	}
	sim, err := scn.Simulator()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := agent.DialObject(agent.ObjectConfig{
		ID: "obj1", ServerAddrs: addrs, Pos: scn.TestSites[0], Sim: sim,
		Packets: 3, RoundTimeout: 2 * time.Second, Seed: 7,
		MaxReconnects: 100, ReconnectBase: time.Millisecond, ReconnectMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ap := range scn.StaticAPs {
		obj.RegisterAP(ap.ID, ap.Pos)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = obj.Run()
	}()

	// runRound drives one round with retries: failover windows surface as
	// lost sessions and estimate timeouts, both of which heal.
	runRound := func(r uint64) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			est, err := obj.RunRound(r)
			if err == nil {
				if est.RoundID != r {
					t.Fatalf("round %d got estimate for round %d", r, est.RoundID)
				}
				return
			}
			if !errors.Is(err, agent.ErrSessionLost) && !errors.Is(err, agent.ErrNoEstimate) {
				t.Fatalf("round %d: %v", r, err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d never completed: %v", r, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	const half, total = 3, 8
	for r := uint64(1); r <= half; r++ {
		runRound(r)
	}

	// Fail over: drain, promote, then kill the primary. Agents chase the
	// dial list to the promoted standby.
	deadline := time.Now().Add(10 * time.Second)
	for !live.Caught() {
		if time.Now().After(deadline) {
			t.Fatalf("replication never caught up (acked %d)", live.Acked())
		}
		time.Sleep(time.Millisecond)
	}
	live.Close()
	<-liveDone
	if epoch, err := standby.Promote(0); err != nil || epoch != 2 {
		t.Fatalf("promote = (%d, %v), want (2, nil)", epoch, err)
	}
	primary.Shutdown()
	if err := primaryJ.Close(); err != nil && !errors.Is(err, journal.ErrClosed) {
		t.Fatalf("primary journal close: %v", err)
	}

	for r := uint64(half + 1); r <= total; r++ {
		runRound(r)
	}

	obj.Close()
	for _, a := range aps {
		a.Close()
	}
	standby.Shutdown()
	if err := standbyJ.Close(); err != nil && !errors.Is(err, journal.ErrClosed) {
		t.Fatalf("standby journal close: %v", err)
	}
	wg.Wait()

	// Everything the stack started must unwind.
	gdeadline := time.Now().Add(10 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(gdeadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
