package chaos

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/csi"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/journal"
	"github.com/nomloc/nomloc/internal/server"
	"github.com/nomloc/nomloc/internal/wire"
)

// recoveryRounds is how many measurement rounds the conformance driver
// runs; with snapshots every 2 rounds the stream crosses a snapshot
// boundary mid-run.
const recoveryRounds = 4

// recoveryRun is one journal-backed server plus its driver connections.
type recoveryRun struct {
	srv    *server.Server
	j      *journal.Journal
	object net.Conn
	aps    [2]net.Conn
}

// startRecoveryRun opens (or recovers) the journal in dir, starts a
// journaled server, and registers two APs and one object over raw
// connections, strictly in that order so every run appends session
// records identically.
func startRecoveryRun(t *testing.T, dir string, hook func(string) error) *recoveryRun {
	t.Helper()
	j, err := journal.Open(journal.Options{Dir: dir, CrashHook: hook})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	loc, err := core.New(core.Config{Area: geom.Rect(0, 0, 12, 8)})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Localizer:            loc,
		RoundTimeout:         time.Second,
		Journal:              j,
		JournalSnapshotEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if cerr := j.Close(); cerr != nil && !errors.Is(cerr, journal.ErrClosed) {
			t.Errorf("journal close: %v", cerr)
		}
	})

	run := &recoveryRun{srv: srv, j: j}
	dial := func(h *wire.Hello) net.Conn {
		conn, derr := net.Dial("tcp", ln.Addr().String())
		if derr != nil {
			t.Fatal(derr)
		}
		t.Cleanup(func() { _ = conn.Close() })
		if werr := wire.WriteMessage(conn, h); werr != nil {
			t.Fatal(werr)
		}
		if _, rerr := readMsg[*wire.HelloAck](conn); rerr != nil {
			t.Fatalf("hello ack: %v", rerr)
		}
		return conn
	}
	run.aps[0] = dial(&wire.Hello{Role: wire.RoleAP, ID: "ap1", Pos: geom.V(1, 1)})
	run.aps[1] = dial(&wire.Hello{Role: wire.RoleAP, ID: "ap2", Pos: geom.V(11, 7)})
	run.object = dial(&wire.Hello{Role: wire.RoleObject, ID: "obj1"})
	return run
}

// readMsg reads one message of type T from conn under a deadline, so a
// crashed server fails the driver instead of hanging it.
func readMsg[T wire.Message](conn net.Conn) (T, error) {
	var zero T
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return zero, err
	}
	msg, err := wire.ReadMessage(conn)
	if err != nil {
		return zero, err
	}
	out, ok := msg.(T)
	if !ok {
		return zero, fmt.Errorf("got %q, want %T", msg.Type(), zero)
	}
	return out, nil
}

// recoveryReport builds the deterministic report AP i sends for a round:
// content depends only on (AP, round), so the golden run and every
// crash-resumed run feed the solver identical inputs.
func recoveryReport(roundID uint64, i int) *wire.CSIReport {
	aps := []struct {
		id  string
		pos geom.Vec
		vec []complex128
	}{
		{"ap1", geom.V(1, 1), []complex128{1, 2}},
		{"ap2", geom.V(11, 7), []complex128{2, 1}},
	}
	ap := aps[i]
	return &wire.CSIReport{
		RoundID: roundID,
		APID:    ap.id,
		Pos:     ap.pos,
		Batch: csi.Batch{
			APID: ap.id,
			Samples: []csi.Sample{
				{APID: ap.id, Seq: 0, CSI: ap.vec},
				{APID: ap.id, Seq: 1, CSI: ap.vec},
			},
		},
	}
}

// tryRound drives one full round and returns an error as soon as the
// server stops responding — the crash-detection signal.
func (run *recoveryRun) tryRound(roundID uint64) error {
	if err := wire.WriteMessage(run.object, &wire.RoundStart{RoundID: roundID, ObjectID: "obj1", Packets: 2}); err != nil {
		return err
	}
	for _, ap := range run.aps {
		if _, err := readMsg[*wire.RoundStart](ap); err != nil {
			return err
		}
	}
	for i, ap := range run.aps {
		if err := wire.WriteMessage(ap, recoveryReport(roundID, i)); err != nil {
			return err
		}
		if _, err := readMsg[*wire.ReportAck](ap); err != nil {
			return err
		}
	}
	if _, err := readMsg[*wire.Estimate](run.object); err != nil {
		return err
	}
	return nil
}

// goldenRecoveryRun drives the full uninterrupted scenario and returns
// its estimates — the byte-exact target every crash-recovery run must
// reproduce.
func goldenRecoveryRun(t *testing.T) []wire.Estimate {
	t.Helper()
	run := startRecoveryRun(t, t.TempDir(), nil)
	for r := uint64(1); r <= recoveryRounds; r++ {
		if err := run.tryRound(r); err != nil {
			t.Fatalf("golden round %d: %v", r, err)
		}
	}
	return run.srv.Estimates()
}

// TestCrashRecoveryConformance is the crash-point conformance suite: for
// every injectable crash point, a server killed mid-run and restarted
// through journal recovery must converge to estimates identical to the
// uninterrupted golden run, and the surviving journal must verify with
// zero diffs.
func TestCrashRecoveryConformance(t *testing.T) {
	golden := goldenRecoveryRun(t)
	if len(golden) != recoveryRounds {
		t.Fatalf("golden produced %d estimates, want %d", len(golden), recoveryRounds)
	}

	// Append-visit numbering for nth: 1 meta, 2-4 session opens, then 3
	// per round (two reports + one round-solved). nth=6 kills round 1
	// between its two report acks; nth=7 kills its round-solved append.
	// Snapshot points first fire after round 2 (JournalSnapshotEvery=2).
	cases := []struct {
		point CrashPoint
		nth   int
	}{
		{CrashAppendBefore, 6},
		{CrashAppendBefore, 7},
		{CrashAppendTorn, 6},
		{CrashAppendTorn, 7},
		{CrashAppendAfter, 6},
		{CrashAppendAfter, 7},
		{CrashSnapshotBefore, 1},
		{CrashSnapshotAfter, 1},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/visit%d", tc.point, tc.nth), func(t *testing.T) {
			dir := t.TempDir()
			crasher := NewCrasher(tc.point, tc.nth)
			run := startRecoveryRun(t, dir, crasher.Hook)
			var crashedAt uint64
			for r := uint64(1); r <= recoveryRounds; r++ {
				if err := run.tryRound(r); err != nil {
					crashedAt = r
					break
				}
			}
			if !crasher.Fired() {
				t.Fatalf("crash point never fired (completed through round %d)", recoveryRounds)
			}
			if crashedAt == 0 {
				t.Fatal("crash fired but every round succeeded")
			}
			run.srv.Shutdown()
			if err := run.j.Close(); err != nil && !errors.Is(err, journal.ErrClosed) {
				t.Fatalf("close crashed journal: %v", err)
			}

			// Restart: recovery replays the journal, the driver re-announces
			// from the first round without a recorded estimate.
			resumed := startRecoveryRun(t, dir, nil)
			if tc.point == CrashAppendTorn && resumed.j.Stats().TruncatedBytes == 0 {
				t.Error("torn crash recovered without truncating anything")
			}
			restored := resumed.srv.Estimates()
			for i := range restored {
				if restored[i] != golden[i] {
					t.Fatalf("restored estimate %d diverged:\n got %+v\nwant %+v", i, restored[i], golden[i])
				}
			}
			for r := uint64(len(restored)) + 1; r <= recoveryRounds; r++ {
				if err := resumed.tryRound(r); err != nil {
					t.Fatalf("resumed round %d: %v", r, err)
				}
			}
			final := resumed.srv.Estimates()
			if len(final) != len(golden) {
				t.Fatalf("recovered run produced %d estimates, want %d", len(final), len(golden))
			}
			for i := range golden {
				if final[i] != golden[i] {
					t.Fatalf("estimate %d diverged from golden:\n got %+v\nwant %+v", i, final[i], golden[i])
				}
			}
			resumed.srv.Shutdown()
			if err := resumed.j.Close(); err != nil && !errors.Is(err, journal.ErrClosed) {
				t.Fatalf("close resumed journal: %v", err)
			}

			vr, err := journal.Verify(dir)
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if !vr.Clean() {
				t.Fatalf("recovered journal has %d diffs: %+v", len(vr.Diffs), vr.Diffs)
			}
		})
	}
}

// TestCrasherSemantics pins the injector's contract: fires exactly once,
// on the armed visit of the armed point only.
func TestCrasherSemantics(t *testing.T) {
	c := NewCrasher(CrashAppendAfter, 3)
	if err := c.Hook(string(CrashAppendBefore)); err != nil {
		t.Fatalf("wrong point fired: %v", err)
	}
	for i := 1; i <= 2; i++ {
		if err := c.Hook(string(CrashAppendAfter)); err != nil {
			t.Fatalf("visit %d fired early: %v", i, err)
		}
	}
	err := c.Hook(string(CrashAppendAfter))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("armed visit = %v, want ErrCrashed", err)
	}
	if !c.Fired() {
		t.Fatal("Fired() false after firing")
	}
	if err := c.Hook(string(CrashAppendAfter)); err != nil {
		t.Fatalf("crasher fired twice: %v", err)
	}
	if got := c.Hits(); got != 3 {
		t.Fatalf("Hits = %d, want 3", got)
	}
	if got := len(CrashPoints()); got != 5 {
		t.Fatalf("CrashPoints lists %d points", got)
	}
}
