package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/nomloc/nomloc/internal/parallel"
	"github.com/nomloc/nomloc/internal/telemetry"
)

// Transport errors.
var (
	// ErrReset is returned by a write that triggered an injected
	// mid-stream reset; the underlying connection is closed.
	ErrReset = errors.New("chaos: injected connection reset")
	// ErrDialRefused is returned by a Dialer attempt the plan failed.
	ErrDialRefused = errors.New("chaos: injected dial failure")
)

// maxBufferedFrame bounds the write-side reassembly buffer. A length
// prefix beyond it cannot be a wire frame, so the conn fails open and
// passes bytes through unfaulted rather than buffering unboundedly.
const maxBufferedFrame = 32 << 20

// Options configures a Net beyond its plan.
type Options struct {
	// Clock stamps trace events. Chaos never reads wall time itself; a
	// nil clock leaves event timestamps zero.
	Clock telemetry.Clock
	// Telemetry, when set, receives the nomloc_chaos_* counters.
	Telemetry *telemetry.Registry
}

// Net derives fault-injecting connections from one plan. Every wrapped
// connection gets its own RNG stream keyed by (plan seed, connection
// name, attempt number), so per-connection fault schedules are a pure
// function of the seed no matter how goroutines interleave.
type Net struct {
	plan  Plan
	clock telemetry.Clock
	trace *Trace

	frames    *telemetry.Counter
	dials     *telemetry.Counter
	dialFails *telemetry.Counter
	faults    map[Fault]*telemetry.Counter

	mu       sync.Mutex
	attempts map[string]int // per-name connection attempt counter
}

// New builds a Net for plan. Invalid plans are rejected with ErrBadPlan
// rather than clamped, so a plan that runs is exactly the plan replayed.
func New(plan Plan, opts Options) (*Net, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	n := &Net{
		plan:     plan,
		clock:    opts.Clock,
		trace:    &Trace{},
		attempts: make(map[string]int),
		faults:   make(map[Fault]*telemetry.Counter, len(Faults())),
	}
	reg := opts.Telemetry
	n.frames = reg.Counter("nomloc_chaos_frames_total", "frames seen by the chaos layer")
	n.dials = reg.Counter("nomloc_chaos_dials_total", "dial attempts through chaos dialers")
	n.dialFails = reg.Counter("nomloc_chaos_dial_failures_total", "dial attempts failed by the plan")
	for _, f := range Faults() {
		n.faults[f] = reg.Counter("nomloc_chaos_faults_total", "injected faults by kind",
			telemetry.Label{Key: "kind", Value: string(f)})
	}
	return n, nil
}

// Trace returns the Net's fault trace.
func (n *Net) Trace() *Trace { return n.trace }

// stamp reads the injected clock, or returns the zero time without one.
// Chaos never falls back to wall time: determinism is the whole point.
func (n *Net) stamp() time.Time {
	if n.clock == nil {
		return time.Time{}
	}
	return n.clock()
}

// rngFor derives the RNG stream of one (name, attempt) connection. The
// name hashes to the stream index and the attempt is the mode, so a
// reconnect replays a fresh — but still seed-determined — schedule.
func (n *Net) rngFor(name string, attempt int) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name)) //nomloc:errdrop-ok fnv.Write cannot fail
	stream := int64(h.Sum64() & 0x7FFFFFFF)
	return parallel.Stream(parallel.MixSeed(n.plan.Seed, stream, int64(attempt)), 0)
}

// nextAttempt returns the 0-based attempt number for name and the trace
// label to record events under ("name" for the first attempt, "name#k"
// after).
func (n *Net) nextAttempt(name string) (int, string) {
	n.mu.Lock()
	attempt := n.attempts[name]
	n.attempts[name] = attempt + 1
	n.mu.Unlock()
	if attempt == 0 {
		return 0, name
	}
	return attempt, fmt.Sprintf("%s#%d", name, attempt)
}

// Conn wraps c: writes through the returned connection are reassembled
// into wire frames and faulted per the plan; reads pass through. Each
// call consumes one attempt for name, advancing the RNG schedule.
func (n *Net) Conn(name string, c net.Conn) net.Conn {
	attempt, label := n.nextAttempt(name)
	return &faultConn{
		Conn:  c,
		net:   n,
		label: label,
		rng:   n.rngFor(name, attempt),
	}
}

// Pipe returns a synchronous in-memory connection pair with the plan
// applied to writes on the first (faulty) end; the second end is clean.
func (n *Net) Pipe(name string) (faulty, clean net.Conn) {
	c1, c2 := net.Pipe()
	return n.Conn(name, c1), c2
}

// Dialer wraps dial (nil selects net.Dial over TCP) for one named
// client. Attempts fail with the plan's DialFailProb; a successful dial
// returns a fault-injecting connection whose schedule continues the
// attempt's RNG stream.
func (n *Net) Dialer(name string, dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return func(addr string) (net.Conn, error) {
		attempt, label := n.nextAttempt(name)
		rng := n.rngFor(name, attempt)
		n.dials.Inc()
		if n.plan.DialFailProb > 0 && rng.Float64() < n.plan.DialFailProb {
			n.dialFails.Inc()
			n.trace.add(Event{Conn: label, Frame: -1, Fault: Partition, Detail: "dial refused", At: n.stamp()})
			return nil, fmt.Errorf("%w: %s attempt %d", ErrDialRefused, name, attempt)
		}
		c, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return &faultConn{Conn: c, net: n, label: label, rng: rng}, nil
	}
}
