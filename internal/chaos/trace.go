package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one recorded fault decision.
type Event struct {
	// Conn names the connection (the name given to Conn/Dialer/Pipe,
	// suffixed with "#<attempt>" after the first attempt).
	Conn string
	// Frame is the per-connection frame index the fault hit.
	Frame int
	// Fault is the injected failure mode.
	Fault Fault
	// Detail carries fault parameters (hold length, corrupted offsets,
	// reset cut point), deterministic under a fixed seed.
	Detail string
	// At is the injected clock's reading when the fault fired; the zero
	// time when the Net has no clock. It is excluded from String so
	// trace identity never depends on scheduling, only on the seed.
	At time.Time
}

// Trace accumulates fault events across every connection of a Net.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// add appends one event.
func (t *Trace) add(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of all recorded events in arrival order.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// String renders the trace one event per line, sorted by connection name
// and then frame index. Per-connection decisions are a pure function of
// the plan seed, so under the same seed the rendering is byte-identical
// across runs even when goroutine interleaving reorders arrival.
func (t *Trace) String() string {
	events := t.Events()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Conn != events[j].Conn {
			return events[i].Conn < events[j].Conn
		}
		return events[i].Frame < events[j].Frame
	})
	var b strings.Builder
	for _, e := range events {
		b.WriteString(fmt.Sprintf("%s frame=%d fault=%s", e.Conn, e.Frame, e.Fault))
		if e.Detail != "" {
			b.WriteByte(' ')
			b.WriteString(e.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CountByFault tallies events per fault kind in Faults() order.
func (t *Trace) CountByFault() map[Fault]int {
	out := make(map[Fault]int, len(Faults()))
	for _, e := range t.Events() {
		out[e.Fault]++
	}
	return out
}
