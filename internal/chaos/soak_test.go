package chaos

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/agent"
	"github.com/nomloc/nomloc/internal/channel"
	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/server"
	"github.com/nomloc/nomloc/internal/telemetry"
)

// soakScenario is a wide open floor with eight static AP positions —
// larger than any paper testbed on purpose, so the soak stresses session
// count rather than physics.
func soakScenario(t *testing.T) *deploy.Scenario {
	t.Helper()
	area := geom.Rect(0, 0, 24, 16)
	env, err := channel.NewEnvironment(area, 12)
	if err != nil {
		t.Fatal(err)
	}
	s := &deploy.Scenario{
		Name:  "soak",
		Area:  area,
		Env:   env,
		Radio: channel.DefaultParams(),
		TestSites: []geom.Vec{
			geom.V(11, 7),
		},
	}
	for i := 0; i < 8; i++ {
		s.StaticAPs = append(s.StaticAPs, deploy.AP{
			ID:  fmt.Sprintf("ap%d", i),
			Pos: geom.V(float64(2+6*(i%4)), float64(2+12*(i/4))),
		})
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSoakFlaky runs the full distributed stack — 8 APs (two of them
// walking a small site set) behind the flaky chaos profile — for a long
// sequence of rounds under whatever scheduler pressure the race detector
// adds. It asserts liveness properties, not estimate values: estimate
// round IDs are strictly monotone, most rounds produce an estimate despite
// resets and refused redials, and every goroutine the stack started is
// gone afterward.
func TestSoakFlaky(t *testing.T) {
	rounds := 200
	if testing.Short() {
		rounds = 40
	}
	before := runtime.NumGoroutine()

	scn := soakScenario(t)
	loc, err := core.New(core.Config{Area: scn.Area})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New(nil)
	srv, err := server.New(server.Config{
		Localizer:          loc,
		RoundTimeout:       100 * time.Millisecond,
		SessionIdleTimeout: 30 * time.Second, // generous: arms the deadline path without evicting
		Telemetry:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()

	plan, err := Profile("flaky", 42)
	if err != nil {
		t.Fatal(err)
	}
	cn := mustNet(t, plan, Options{Telemetry: reg})

	var aps []*agent.APAgent
	for i, ap := range scn.StaticAPs {
		cfg := agent.APConfig{
			ID:            ap.ID,
			ServerAddr:    addr,
			Sites:         []geom.Vec{ap.Pos},
			Seed:          int64(100 + i),
			Telemetry:     reg,
			Dialer:        cn.Dialer(ap.ID, nil),
			MaxReconnects: 50,
			ReconnectBase: time.Millisecond,
			ReconnectMax:  10 * time.Millisecond,
		}
		if i >= 6 {
			cfg.Sites = []geom.Vec{ap.Pos, ap.Pos.Add(geom.V(1.5, 0)), ap.Pos.Add(geom.V(0, 1.5))}
			cfg.Nomadic = true
		}
		a, err := agent.DialAP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		aps = append(aps, a)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Run()
		}()
	}

	sim, err := scn.Simulator()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := agent.DialObject(agent.ObjectConfig{
		ID:           "obj1",
		ServerAddr:   addr,
		Pos:          scn.TestSites[0],
		Sim:          sim,
		Packets:      3,
		RoundTimeout: 2 * time.Second,
		Seed:         7,
		Telemetry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ap := range scn.StaticAPs {
		obj.RegisterAP(ap.ID, ap.Pos)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = obj.Run()
	}()

	var lastID uint64
	estimated := 0
	for r := 1; r <= rounds; r++ {
		est, err := obj.RunRound(uint64(r))
		if err != nil {
			// Degraded mode: a fully-lost round is allowed, a hung one is not.
			if errors.Is(err, agent.ErrNoEstimate) || errors.Is(err, agent.ErrSessionLost) {
				continue
			}
			t.Fatalf("round %d: %v", r, err)
		}
		if est.RoundID <= lastID {
			t.Fatalf("round IDs not monotone: %d after %d", est.RoundID, lastID)
		}
		lastID = est.RoundID
		estimated++
	}
	if estimated < rounds/2 {
		t.Errorf("only %d/%d rounds produced estimates under the flaky profile", estimated, rounds)
	}

	obj.Close()
	for _, a := range aps {
		a.Close()
	}
	srv.Shutdown()
	wg.Wait()

	// Goroutine accounting: everything the stack started must unwind.
	// Straggling finalizer timers and evicted sessions get a grace window.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}

	if cn.Trace().Len() == 0 {
		t.Error("flaky profile injected no faults over the whole soak")
	}
}
