package chaos

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/nomloc/nomloc/internal/agent"
	"github.com/nomloc/nomloc/internal/core"
	"github.com/nomloc/nomloc/internal/deploy"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/server"
	"github.com/nomloc/nomloc/internal/telemetry"
	"github.com/nomloc/nomloc/internal/wire"
)

// scenarioResult is everything one distributed run produces that the
// conformance suite compares.
type scenarioResult struct {
	estimates []wire.Estimate // one per round, in round order
	trace     string          // chaos fault trace ("" for golden runs)
	registry  *telemetry.Registry
}

// runScenario stands up the full distributed stack — server, the Lab
// scenario's three static APs, one object — and drives `rounds`
// measurement rounds. When plan is non-nil every AP connection goes
// through a chaos.Net built from it; the object and server stay clean, so
// faults hit exactly the report path the conformance plans target.
func runScenario(t *testing.T, plan *Plan, rounds int) scenarioResult {
	t.Helper()
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	loc, err := core.New(core.Config{Area: scn.Area})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New(nil)
	srv, err := server.New(server.Config{
		Localizer:    loc,
		RoundTimeout: 250 * time.Millisecond,
		Telemetry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()

	var cn *Net
	if plan != nil {
		cn = mustNet(t, *plan, Options{Telemetry: reg})
	}
	var aps []*agent.APAgent
	for i, ap := range scn.StaticAPs {
		cfg := agent.APConfig{
			ID:         ap.ID,
			ServerAddr: addr,
			Sites:      []geom.Vec{ap.Pos},
			Seed:       int64(i + 1),
			Telemetry:  reg,
		}
		if cn != nil {
			cfg.Dialer = cn.Dialer(fmt.Sprintf("ap%d", i), nil)
			cfg.MaxReconnects = 8
			cfg.ReconnectBase = time.Millisecond
			cfg.ReconnectMax = 20 * time.Millisecond
		}
		a, err := agent.DialAP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		aps = append(aps, a)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Run() // chaos runs end with lost sessions; that's the point
		}()
	}

	sim, err := scn.Simulator()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := agent.DialObject(agent.ObjectConfig{
		ID:           "obj1",
		ServerAddr:   addr,
		Pos:          geom.V(5, 3),
		Sim:          sim,
		Packets:      5,
		RoundTimeout: 3 * time.Second,
		Seed:         7,
		Telemetry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ap := range scn.StaticAPs {
		obj.RegisterAP(ap.ID, ap.Pos)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = obj.Run()
	}()

	var ests []wire.Estimate
	for r := 1; r <= rounds; r++ {
		est, err := obj.RunRound(uint64(r))
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		ests = append(ests, est)
	}

	obj.Close()
	for _, a := range aps {
		a.Close()
	}
	srv.Shutdown()
	wg.Wait()

	res := scenarioResult{estimates: ests, registry: reg}
	if cn != nil {
		res.trace = cn.Trace().String()
	}
	return res
}

// conformanceKinds arms each recoverable fault kind over the window
// [2, 4): frame 0 is the handshake, frame k is round k's report, so the
// faults hit rounds 2–3 and every later round runs clean — the "heal".
var conformanceKinds = []struct {
	name string
	rule Rule
}{
	{"drop", Rule{Fault: Drop, Prob: 1, From: 2, Until: 4}},
	{"dup", Rule{Fault: Dup, Prob: 1, From: 2, Until: 4}},
	{"delay", Rule{Fault: Delay, Prob: 1, From: 2, Until: 4, Hold: 2}},
	{"reorder", Rule{Fault: Reorder, Prob: 1, From: 2, Until: 4}},
	{"corrupt", Rule{Fault: Corrupt, Prob: 1, From: 2, Until: 4, Bytes: 3}},
	{"partition", Rule{Fault: Partition, Prob: 1, From: 2, Until: 4}},
}

// TestConformanceTraceReplay: for every fault kind and seed, pushing the
// same scripted frame sequence through the same plan twice produces a
// byte-identical fault trace and identical deliveries.
func TestConformanceTraceReplay(t *testing.T) {
	for _, tc := range conformanceKinds {
		for _, seed := range []int64{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				rule := tc.rule
				rule.Prob = 0.7 // probabilistic, so the RNG schedule matters
				plan := Plan{Seed: seed, Rules: []Rule{rule}}
				run := func() (string, []string) {
					n := mustNet(t, plan, Options{})
					got, _ := pump(t, n, "conn", script(12))
					return n.Trace().String(), got
				}
				trace1, got1 := run()
				trace2, got2 := run()
				if trace1 != trace2 {
					t.Errorf("trace not reproducible:\n--- run 1\n%s--- run 2\n%s", trace1, trace2)
				}
				if fmt.Sprint(got1) != fmt.Sprint(got2) {
					t.Errorf("deliveries differ:\n%v\n%v", got1, got2)
				}
			})
		}
	}
	// Reset too: the trace (including the cut offset) must replay.
	for _, seed := range []int64{1, 2, 3} {
		plan := Plan{Seed: seed, Rules: []Rule{{Fault: Reset, Prob: 0.3, From: 1}}}
		run := func() string {
			n := mustNet(t, plan, Options{})
			_, _ = pump(t, n, "conn", script(12))
			return n.Trace().String()
		}
		if a, b := run(), run(); a != b {
			t.Errorf("reset trace not reproducible (seed %d):\n%s\n%s", seed, a, b)
		}
	}
}

// TestConformanceHealToGolden: for every recoverable fault kind, a full
// distributed run under a windowed plan converges — once the window
// closes and fresh rounds replace the report history — to the exact
// estimates of the fault-free golden run.
func TestConformanceHealToGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed conformance runs take seconds")
	}
	const rounds = 6
	golden := runScenario(t, nil, rounds)
	if len(golden.estimates) != rounds {
		t.Fatalf("golden run produced %d estimates", len(golden.estimates))
	}
	goldenFinal := golden.estimates[rounds-1]

	for _, tc := range conformanceKinds {
		t.Run(tc.name, func(t *testing.T) {
			plan := Plan{Seed: 1, Rules: []Rule{tc.rule}}
			got := runScenario(t, &plan, rounds)
			if got.trace == "" {
				t.Fatalf("no faults fired; the %s window missed every frame", tc.name)
			}
			final := got.estimates[rounds-1]
			if final != goldenFinal {
				t.Errorf("healed estimate diverged from golden:\n got %+v\nwant %+v\ntrace:\n%s",
					final, goldenFinal, got.trace)
			}
		})
	}
}

// TestConformanceSameSeedSameRun: the acceptance bar — the same chaos
// seed yields a byte-identical fault trace AND an identical estimate
// stream across two full distributed runs.
func TestConformanceSameSeedSameRun(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed conformance runs take seconds")
	}
	mix := []Rule{
		{Fault: Drop, Prob: 0.4, From: 2, Until: 4},
		{Fault: Dup, Prob: 0.3, From: 2, Until: 4},
		{Fault: Delay, Prob: 0.3, From: 2, Until: 4, Hold: 2},
		{Fault: Corrupt, Prob: 0.2, From: 2, Until: 4, Bytes: 2},
	}
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			plan := Plan{Seed: seed, Rules: mix}
			a := runScenario(t, &plan, 5)
			b := runScenario(t, &plan, 5)
			if a.trace != b.trace {
				t.Errorf("fault traces differ:\n--- run 1\n%s--- run 2\n%s", a.trace, b.trace)
			}
			if len(a.estimates) != len(b.estimates) {
				t.Fatalf("estimate counts differ: %d vs %d", len(a.estimates), len(b.estimates))
			}
			for i := range a.estimates {
				if a.estimates[i] != b.estimates[i] {
					t.Errorf("round %d estimates differ:\n%+v\n%+v", i+1, a.estimates[i], b.estimates[i])
				}
			}
		})
	}
}

// TestReconnectMidRound: an AP killed mid-round (injected reset while its
// report is on the wire) reconnects with backoff and the system keeps
// producing estimates — degraded when the report misses its round — with
// reconnects and degraded rounds visible on /metrics.
func TestReconnectMidRound(t *testing.T) {
	scn, err := deploy.Lab()
	if err != nil {
		t.Fatal(err)
	}
	loc, err := core.New(core.Config{Area: scn.Area})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New(nil)
	srv, err := server.New(server.Config{
		Localizer:    loc,
		RoundTimeout: 200 * time.Millisecond,
		Telemetry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()

	// ap0 gets a hostile link: its round-2 report is dropped (degrading
	// round 2) and its round-3 report is cut mid-frame (killing the
	// session). The other APs stay clean.
	cn := mustNet(t, Plan{Seed: 4, Rules: []Rule{
		{Fault: Drop, Prob: 1, From: 2, Until: 3},
		{Fault: Reset, Prob: 1, From: 3, Until: 4},
	}}, Options{Telemetry: reg})
	var aps []*agent.APAgent
	for i, ap := range scn.StaticAPs {
		cfg := agent.APConfig{
			ID:         ap.ID,
			ServerAddr: addr,
			Sites:      []geom.Vec{ap.Pos},
			Seed:       int64(i + 1),
			Telemetry:  reg,
		}
		if i == 0 {
			cfg.Dialer = cn.Dialer("ap0", nil)
			cfg.MaxReconnects = 10
			cfg.ReconnectBase = time.Millisecond
			cfg.ReconnectMax = 20 * time.Millisecond
		}
		a, err := agent.DialAP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		aps = append(aps, a)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Run()
		}()
	}
	sim, err := scn.Simulator()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := agent.DialObject(agent.ObjectConfig{
		ID: "obj1", ServerAddr: addr, Pos: geom.V(5, 3), Sim: sim,
		Packets: 5, RoundTimeout: 3 * time.Second, Seed: 7, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ap := range scn.StaticAPs {
		obj.RegisterAP(ap.ID, ap.Pos)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = obj.Run()
	}()

	for r := 1; r <= 5; r++ {
		est, err := obj.RunRound(uint64(r))
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if est.RoundID != uint64(r) {
			t.Fatalf("round %d got estimate for round %d", r, est.RoundID)
		}
	}

	// Scrape /metrics the way an operator would.
	ts := httptest.NewServer(srv.StatusHandler())
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	ts.Close()
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(body)

	obj.Close()
	for _, a := range aps {
		a.Close()
	}
	srv.Shutdown()
	wg.Wait()

	if got := metricValue(t, exposition, `nomloc_ap_reconnects_total{ap="`+scn.StaticAPs[0].ID+`"}`); got < 1 {
		t.Errorf("reconnects_total = %v, want >= 1\n%s", got, exposition)
	}
	if got := metricValue(t, exposition, "nomloc_server_degraded_rounds_total"); got < 1 {
		t.Errorf("degraded_rounds_total = %v, want >= 1\n%s", got, exposition)
	}
	if !strings.Contains(exposition, "nomloc_chaos_faults_total") {
		t.Error("/metrics lacks the chaos fault counters")
	}
	if cn.Trace().CountByFault()[Reset] < 1 {
		t.Errorf("no reset fired:\n%s", cn.Trace())
	}
}

// metricValue extracts one sample's value from a Prometheus exposition
// body. The metric must be present.
func metricValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%g", &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %q not in exposition:\n%s", name, exposition)
	return 0
}
