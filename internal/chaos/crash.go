package chaos

import (
	"errors"
	"fmt"
	"sync"
)

// CrashPoint names a location in the journal's durability path where a
// Crasher can simulate a process kill. The string values are the contract
// with internal/journal's Options.CrashHook — they mirror the journal's
// Point* constants without importing it, keeping the fault layer free of
// dependencies on the subsystems it torments.
type CrashPoint string

// Crash points, in the order one append visits them.
const (
	// CrashAppendBefore kills before anything reaches the segment: the
	// record is lost entirely, the journal tail stays clean.
	CrashAppendBefore CrashPoint = "append:before"
	// CrashAppendTorn kills mid-write: half the record's bytes land on
	// disk — the torn-tail shape recovery must truncate.
	CrashAppendTorn CrashPoint = "append:torn"
	// CrashAppendAfter kills after the fsync but before the caller acks:
	// the record is durable, the sender re-sends, replay absorbs the
	// duplicate idempotently.
	CrashAppendAfter CrashPoint = "append:after"
	// CrashSnapshotBefore / CrashSnapshotAfter bracket a snapshot write.
	CrashSnapshotBefore CrashPoint = "snapshot:before"
	CrashSnapshotAfter  CrashPoint = "snapshot:after"
)

// CrashPoints lists every injectable point, in durability-path order —
// the conformance suite iterates this so a newly added point cannot
// silently escape coverage.
func CrashPoints() []CrashPoint {
	return []CrashPoint{
		CrashAppendBefore,
		CrashAppendTorn,
		CrashAppendAfter,
		CrashSnapshotBefore,
		CrashSnapshotAfter,
	}
}

// ErrCrashed is the error a Crasher injects: the simulated kill. Callers
// match it with errors.Is to distinguish an injected crash from a real
// I/O failure.
var ErrCrashed = errors.New("chaos: injected crash")

// Crasher is a deterministic crash-point injector: it arms one named
// point and fires on its nth visit, exactly once. Plug Hook into
// journal.Options.CrashHook. Safe for concurrent use — journal appends
// may race from several handler goroutines.
type Crasher struct {
	point CrashPoint
	nth   int

	mu    sync.Mutex
	hits  int
	fired bool
}

// NewCrasher arms point to fire on its nth visit (1-based; nth < 1 means
// the first visit).
func NewCrasher(point CrashPoint, nth int) *Crasher {
	if nth < 1 {
		nth = 1
	}
	return &Crasher{point: point, nth: nth}
}

// Hook is the journal crash hook: it returns ErrCrashed (wrapped with the
// point name) on the armed visit and nil otherwise.
func (c *Crasher) Hook(point string) error {
	if CrashPoint(point) != c.point {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fired {
		return nil
	}
	c.hits++
	if c.hits < c.nth {
		return nil
	}
	c.fired = true
	return fmt.Errorf("%w at %s (visit %d)", ErrCrashed, point, c.hits)
}

// Fired reports whether the injected crash has happened — scenarios use
// it to tell "survived the fault" from "fault never triggered".
func (c *Crasher) Fired() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired
}

// Hits returns how many times the armed point was visited so far.
func (c *Crasher) Hits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}
