package journal

import (
	"github.com/nomloc/nomloc/internal/telemetry"
)

// journalMetrics instruments the durability path. A nil *journalMetrics
// (telemetry off) makes every method a no-op, mirroring the server's
// instrument pattern, so the append hot path never branches on
// configuration. Under a fixed clock the recovery-duration gauge stays
// zero and two identical runs expose byte-identical /metrics bodies.
type journalMetrics struct {
	appends        map[Kind]*telemetry.Counter
	appendBytes    *telemetry.Counter
	fsyncs         *telemetry.Counter
	snapshots      *telemetry.Counter
	snapshotBytes  *telemetry.Counter
	segmentCount   *telemetry.Gauge
	recoveries     *telemetry.Counter
	recoverRecords *telemetry.Counter
	recoverSeconds *telemetry.Gauge
	truncatedBytes *telemetry.Counter
}

// newJournalMetrics builds the journal instrument set on reg, or nil when
// telemetry is off.
func newJournalMetrics(reg *telemetry.Registry) *journalMetrics {
	if reg == nil {
		return nil
	}
	kindCounter := func(k Kind) *telemetry.Counter {
		return reg.Counter("nomloc_journal_appends_total", "journal records appended by kind",
			telemetry.Label{Key: "kind", Value: k.String()})
	}
	return &journalMetrics{
		appends: map[Kind]*telemetry.Counter{
			KindMeta:         kindCounter(KindMeta),
			KindSessionOpen:  kindCounter(KindSessionOpen),
			KindSessionClose: kindCounter(KindSessionClose),
			KindReport:       kindCounter(KindReport),
			KindRoundSolved:  kindCounter(KindRoundSolved),
		},
		appendBytes:    reg.Counter("nomloc_journal_append_bytes_total", "bytes appended to segment files"),
		fsyncs:         reg.Counter("nomloc_journal_fsyncs_total", "fsync calls issued for durability"),
		snapshots:      reg.Counter("nomloc_journal_snapshots_total", "snapshots written"),
		snapshotBytes:  reg.Counter("nomloc_journal_snapshot_bytes_total", "bytes written as snapshot images"),
		segmentCount:   reg.Gauge("nomloc_journal_segments", "live segment files (active included)"),
		recoveries:     reg.Counter("nomloc_journal_recoveries_total", "recovery passes completed"),
		recoverRecords: reg.Counter("nomloc_journal_recovered_records_total", "records replayed during recovery"),
		recoverSeconds: reg.Gauge("nomloc_journal_recovery_seconds", "duration of the most recent recovery"),
		truncatedBytes: reg.Counter("nomloc_journal_truncated_bytes_total", "torn-tail bytes truncated during recovery"),
	}
}

// appended records one durable record append.
func (jm *journalMetrics) appended(kind Kind, n int) {
	if jm == nil {
		return
	}
	if c := jm.appends[kind]; c != nil {
		c.Inc()
	}
	jm.appendBytes.Add(uint64(n))
}

// fsync counts n fsync calls.
func (jm *journalMetrics) fsync(n int) {
	if jm == nil {
		return
	}
	jm.fsyncs.Add(uint64(n))
}

// snapshot records one snapshot write of n bytes.
func (jm *journalMetrics) snapshot(n int) {
	if jm == nil {
		return
	}
	jm.snapshots.Inc()
	jm.snapshotBytes.Add(uint64(n))
}

// segments publishes the live segment count.
func (jm *journalMetrics) segments(n int) {
	if jm == nil {
		return
	}
	jm.segmentCount.Set(float64(n))
}

// recovered publishes the outcome of one recovery pass.
func (jm *journalMetrics) recovered(stats RecoveryStats, segments int) {
	if jm == nil {
		return
	}
	jm.recoveries.Inc()
	jm.recoverRecords.Add(uint64(stats.Records))
	jm.recoverSeconds.Set(stats.Duration.Seconds())
	jm.truncatedBytes.Add(uint64(stats.TruncatedBytes))
	jm.segmentCount.Set(float64(segments))
}
