package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk identifiers. The magic strings double as format version gates:
// an incompatible layout change bumps the trailing digits.
var (
	segmentMagic  = [8]byte{'N', 'L', 'J', 'S', 'E', 'G', '0', '1'}
	snapshotMagic = [8]byte{'N', 'L', 'J', 'S', 'N', 'P', '0', '1'}
)

// FormatVersion is the journal format this package reads and writes.
const FormatVersion uint32 = 1

// segmentHeaderSize is the fixed segment preamble:
//
//	[magic 8][version u32][firstSeq u64][crc32c u32]
//
// where the CRC covers the 20 bytes before it.
const segmentHeaderSize = 24

// snapshotHeaderSize is the snapshot preamble:
//
//	[magic 8][version u32][seq u64][bodyLen u32][bodyCRC u32]
const snapshotHeaderSize = 28

// segmentName renders the file name of the segment whose first record
// carries firstSeq.
func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016x.seg", firstSeq)
}

// snapshotName renders the file name of the snapshot taken after seq.
func snapshotName(seq uint64) string {
	return fmt.Sprintf("snap-%016x.snap", seq)
}

// encodeSegmentHeader renders a segment preamble.
func encodeSegmentHeader(firstSeq uint64) []byte {
	buf := make([]byte, segmentHeaderSize)
	copy(buf[:8], segmentMagic[:])
	binary.BigEndian.PutUint32(buf[8:12], FormatVersion)
	binary.BigEndian.PutUint64(buf[12:20], firstSeq)
	binary.BigEndian.PutUint32(buf[20:24], crc32.Checksum(buf[:20], castagnoli))
	return buf
}

// parseSegmentHeader validates a segment preamble and returns its first
// sequence number. ok is false for short, foreign, or corrupted headers.
func parseSegmentHeader(buf []byte) (firstSeq uint64, ok bool) {
	if len(buf) < segmentHeaderSize {
		return 0, false
	}
	if [8]byte(buf[:8]) != segmentMagic {
		return 0, false
	}
	if binary.BigEndian.Uint32(buf[8:12]) != FormatVersion {
		return 0, false
	}
	if crc32.Checksum(buf[:20], castagnoli) != binary.BigEndian.Uint32(buf[20:24]) {
		return 0, false
	}
	return binary.BigEndian.Uint64(buf[12:20]), true
}

// fileEntry is one journal file found on disk.
type fileEntry struct {
	name string
	seq  uint64 // firstSeq for segments, covered seq for snapshots
}

// listDir enumerates the directory's segment and snapshot files in
// ascending sequence order. Unrelated files are ignored.
func listDir(dir string) (segments, snapshots []fileEntry, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: list %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
			seq, perr := parseSeqName(name, "wal-", ".seg")
			if perr != nil {
				continue // foreign file that happens to match the shape
			}
			segments = append(segments, fileEntry{name: name, seq: seq})
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			seq, perr := parseSeqName(name, "snap-", ".snap")
			if perr != nil {
				continue
			}
			snapshots = append(snapshots, fileEntry{name: name, seq: seq})
		}
	}
	sort.Slice(segments, func(i, j int) bool { return segments[i].seq < segments[j].seq })
	sort.Slice(snapshots, func(i, j int) bool { return snapshots[i].seq < snapshots[j].seq })
	return segments, snapshots, nil
}

// parseSeqName extracts the hex sequence number from a journal file name.
func parseSeqName(name, prefix, suffix string) (uint64, error) {
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	return strconv.ParseUint(hexPart, 16, 64)
}

// syncDir fsyncs the directory so file creations, renames, and removals
// are durable. Best effort on filesystems that reject directory syncs.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: open dir %s: %w", dir, err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("journal: sync dir %s: %w", dir, serr)
	}
	if cerr != nil {
		return fmt.Errorf("journal: close dir %s: %w", dir, cerr)
	}
	return nil
}

// segmentPath joins dir and the segment file for firstSeq.
func segmentPath(dir string, firstSeq uint64) string {
	return filepath.Join(dir, segmentName(firstSeq))
}
