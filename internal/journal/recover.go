package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"github.com/nomloc/nomloc/internal/wire"
)

// MaxFinishedRounds bounds the finished-round memory rebuilt during
// replay, matching the server's idempotent-ack window: the oldest entries
// are forgotten first.
const MaxFinishedRounds = 1024

// State is the durable server state a journal reconstructs: everything
// the localization pipeline accumulates across rounds. All collections
// are in canonical order (objects sorted by ID, reports in store order,
// finished rounds in eviction order) so serializing a State is
// byte-stable by construction.
type State struct {
	// Meta is the journal's meta record (zero until one is applied).
	Meta Meta `json:"meta"`
	// Seq is the sequence number of the last applied record.
	Seq uint64 `json:"seq"`
	// History is the per-object accumulated report history, sorted by
	// object ID.
	History []ObjectHistory `json:"history"`
	// Estimates are the broadcast estimates in solve order.
	Estimates []wire.Estimate `json:"estimates"`
	// Finished are the finalized round IDs still inside the idempotency
	// window, in eviction order.
	Finished []uint64 `json:"finished"`
}

// ObjectHistory is one object's accumulated reports in store order.
type ObjectHistory struct {
	// ObjectID names the localized object.
	ObjectID string `json:"objectId"`
	// Reports is the bounded report history, oldest first.
	Reports []*wire.CSIReport `json:"reports"`
}

// historyFor returns the index of objectID's history, inserting a new
// empty entry in sorted position when absent.
func (st *State) historyFor(objectID string) int {
	lo, hi := 0, len(st.History)
	for lo < hi {
		mid := (lo + hi) / 2
		if st.History[mid].ObjectID < objectID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(st.History) && st.History[lo].ObjectID == objectID {
		return lo
	}
	st.History = append(st.History, ObjectHistory{})
	copy(st.History[lo+1:], st.History[lo:])
	st.History[lo] = ObjectHistory{ObjectID: objectID}
	return lo
}

// ApplyReport absorbs one report into a history slice under the server's
// retention semantics — most recent report per static AP and per
// (nomadic AP, site), recency judged by round ID, at most maxNomadicSites
// sites per nomadic AP — and reports whether it was stored. A report
// older than the stored entry for its identity is stale and leaves hist
// untouched. The server and the journal replayer share this single
// implementation so recovery can never drift from live behavior.
//
//nomloc:effect(pure)
func ApplyReport(hist []*wire.CSIReport, rep *wire.CSIReport, maxNomadicSites int) ([]*wire.CSIReport, bool) {
	if maxNomadicSites <= 0 {
		maxNomadicSites = 8
	}
	for _, old := range hist {
		same := old.APID == rep.APID && (!rep.Nomadic || old.SiteIndex == rep.SiteIndex)
		if same && old.RoundID > rep.RoundID {
			return hist, false
		}
	}
	// Drop a previous report with the same identity (static: APID;
	// nomadic: APID+site).
	kept := hist[:0]
	perAP := 0
	for _, old := range hist {
		same := old.APID == rep.APID && (!rep.Nomadic || old.SiteIndex == rep.SiteIndex)
		if same {
			continue
		}
		kept = append(kept, old)
		if old.APID == rep.APID {
			perAP++
		}
	}
	// Evict the oldest site of this nomadic AP when over budget.
	if rep.Nomadic && perAP >= maxNomadicSites {
		for i, old := range kept {
			if old.APID == rep.APID {
				kept = append(kept[:i], kept[i+1:]...)
				break
			}
		}
	}
	return append(kept, rep), true
}

// Apply replays one record into the state. Session events advance Seq but
// carry no state; they exist for audit and replay tooling. Recovery, the
// replayer, and the standby's replication apply loop all funnel through
// this one method, so a replicated state can never drift from a recovered
// one.
func (st *State) Apply(rec Record) error {
	switch rec.Kind {
	case KindMeta:
		if err := decodeJSON(rec.Payload, &st.Meta, "meta"); err != nil {
			return err
		}
	case KindSessionOpen, KindSessionClose:
		var ev SessionEvent
		if err := decodeJSON(rec.Payload, &ev, "session"); err != nil {
			return err
		}
	case KindReport:
		objectID, rep, err := decodeReportPayload(rec.Payload)
		if err != nil {
			return err
		}
		i := st.historyFor(objectID)
		st.History[i].Reports, _ = ApplyReport(st.History[i].Reports, rep, st.Meta.MaxNomadicSites)
	case KindRoundSolved:
		var rs RoundSolved
		if err := decodeJSON(rec.Payload, &rs, "round_solved"); err != nil {
			return err
		}
		st.Estimates = append(st.Estimates, rs.Estimate)
		st.Finished = append(st.Finished, rs.Estimate.RoundID)
		if len(st.Finished) > MaxFinishedRounds {
			st.Finished = st.Finished[1:]
		}
	default:
		return fmt.Errorf("%w: unknown record kind %d at seq %d", ErrCorrupt, rec.Kind, rec.Seq)
	}
	st.Seq = rec.Seq
	return nil
}

// RecoveryStats summarizes one recovery pass.
type RecoveryStats struct {
	// Records is how many records were replayed (snapshot excluded).
	Records int `json:"records"`
	// SnapshotSeq is the sequence the loaded snapshot covered (0 when
	// recovery started from an empty state).
	SnapshotSeq uint64 `json:"snapshotSeq"`
	// LastSeq is the final applied sequence number.
	LastSeq uint64 `json:"lastSeq"`
	// Segments is how many segment files survived recovery.
	Segments int `json:"segments"`
	// TruncatedBytes counts bytes cut from the final segment's torn tail.
	TruncatedBytes int64 `json:"truncatedBytes"`
	// Duration is the wall (or injected-clock) time recovery took.
	Duration time.Duration `json:"duration"`
}

// loadSnapshot reads and validates one snapshot file, returning its state.
func loadSnapshot(path string) (*State, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: read snapshot: %w", err)
	}
	if len(buf) < snapshotHeaderSize {
		return nil, fmt.Errorf("%w: snapshot %s too short", ErrCorrupt, filepath.Base(path))
	}
	if [8]byte(buf[:8]) != snapshotMagic {
		return nil, fmt.Errorf("%w: snapshot %s has wrong magic", ErrCorrupt, filepath.Base(path))
	}
	if v := binary.BigEndian.Uint32(buf[8:12]); v != FormatVersion {
		return nil, fmt.Errorf("%w: snapshot %s has version %d", ErrCorrupt, filepath.Base(path), v)
	}
	seq := binary.BigEndian.Uint64(buf[12:20])
	bodyLen := int(binary.BigEndian.Uint32(buf[20:24]))
	wantCRC := binary.BigEndian.Uint32(buf[24:28])
	if len(buf) != snapshotHeaderSize+bodyLen {
		return nil, fmt.Errorf("%w: snapshot %s body length mismatch", ErrCorrupt, filepath.Base(path))
	}
	body := buf[snapshotHeaderSize:]
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return nil, fmt.Errorf("%w: snapshot %s checksum mismatch", ErrCorrupt, filepath.Base(path))
	}
	st := &State{}
	if err := json.Unmarshal(body, st); err != nil {
		return nil, fmt.Errorf("%w: snapshot %s body: %v", ErrCorrupt, filepath.Base(path), err)
	}
	if st.Seq != seq {
		return nil, fmt.Errorf("%w: snapshot %s header seq %d != body seq %d", ErrCorrupt, filepath.Base(path), seq, st.Seq)
	}
	return st, nil
}

// encodeSnapshot renders a snapshot file image for st.
func encodeSnapshot(st *State) ([]byte, error) {
	body, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("journal: marshal snapshot: %w", err)
	}
	buf := make([]byte, snapshotHeaderSize, snapshotHeaderSize+len(body))
	copy(buf[:8], snapshotMagic[:])
	binary.BigEndian.PutUint32(buf[8:12], FormatVersion)
	binary.BigEndian.PutUint64(buf[12:20], st.Seq)
	binary.BigEndian.PutUint32(buf[20:24], uint32(len(body)))
	binary.BigEndian.PutUint32(buf[24:28], crc32.Checksum(body, castagnoli))
	return append(buf, body...), nil
}

// segmentScan is the outcome of scanning one segment file.
type segmentScan struct {
	entry    fileEntry
	records  []Record // records with seq > the caller's floor
	goodSize int64    // byte offset after the last valid record
	torn     int64    // bytes beyond goodSize (candidate truncation)
}

// scanSegment reads one segment file and parses records until the first
// invalid byte. A floor of N skips records with seq ≤ N (already covered
// by a snapshot) while still validating their checksums.
func scanSegment(dir string, entry fileEntry, floor uint64) (*segmentScan, error) {
	path := filepath.Join(dir, entry.name)
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: read segment: %w", err)
	}
	sc := &segmentScan{entry: entry}
	firstSeq, ok := parseSegmentHeader(buf)
	if !ok || firstSeq != entry.seq {
		// The whole file is unusable — a crash during segment creation
		// (torn header) or foreign bytes. goodSize 0 lets the caller
		// decide whether that is a clean tail or interior corruption.
		sc.torn = int64(len(buf))
		return sc, nil
	}
	off := int64(segmentHeaderSize)
	rest := buf[segmentHeaderSize:]
	wantSeq := firstSeq
	for len(rest) > 0 {
		rec, n, ok := parseRecord(rest)
		if !ok || rec.Seq != wantSeq {
			break
		}
		if rec.Seq > floor {
			sc.records = append(sc.records, rec)
		}
		off += int64(n)
		rest = rest[n:]
		wantSeq++
	}
	sc.goodSize = off
	sc.torn = int64(len(buf)) - off
	return sc, nil
}
