package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSegment renders a well-formed single-segment journal image for the
// seed corpus.
func fuzzSegment(recs []Record) []byte {
	buf := encodeSegmentHeader(1)
	for _, rec := range recs {
		buf = appendRecord(buf, rec)
	}
	return buf
}

// FuzzJournalRecover feeds arbitrary bytes to the recovery path as a
// segment file. Recovery must never panic; when it succeeds, it must be
// idempotent — a second Open of the recovered directory sees the same
// state with nothing further truncated, which is exactly the crash-loop
// safety property the server relies on.
func FuzzJournalRecover(f *testing.F) {
	metaPayload, err := json.Marshal(testMeta())
	if err != nil {
		f.Fatal(err)
	}
	clean := fuzzSegment([]Record{
		{Seq: 1, Kind: KindMeta, Payload: metaPayload},
		{Seq: 2, Kind: KindSessionOpen, Payload: []byte(`{"role":"object","id":"obj1"}`)},
		{Seq: 3, Kind: KindRoundSolved, Payload: []byte(`{"estimate":{"roundId":1,"objectId":"obj1","pos":{"x":1,"y":2},"relaxCost":0,"numAnchors":2},"anchors":[]}`)},
	})
	f.Add(clean)
	f.Add(clean[:len(clean)-1])           // torn tail: one byte short
	f.Add(clean[:segmentHeaderSize])      // header only
	f.Add(clean[:segmentHeaderSize-3])    // torn header
	f.Add([]byte{})                       // empty file
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // foreign bytes
	flipped := append([]byte(nil), clean...)
	flipped[segmentHeaderSize+5] ^= 0x20 // corrupt the first record's body
	f.Add(flipped)
	truncMid := append([]byte(nil), clean[:segmentHeaderSize+10]...)
	f.Add(truncMid) // record cut mid-body

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(Options{Dir: dir, NoSync: true})
		if err != nil {
			// Rejection must be typed, never a panic or an opaque failure.
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNoMeta) {
				t.Fatalf("Open: untyped recovery failure: %v", err)
			}
			return
		}
		firstState, err := json.Marshal(j.State())
		if err != nil {
			t.Fatal(err)
		}
		firstSeq := j.LastSeq()
		firstTrunc := j.Stats().TruncatedBytes
		if err := j.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		j2, err := Open(Options{Dir: dir, NoSync: true})
		if err != nil {
			t.Fatalf("second Open after successful recovery: %v", err)
		}
		defer func() {
			if cerr := j2.Close(); cerr != nil {
				t.Errorf("Close: %v", cerr)
			}
		}()
		if j2.Stats().TruncatedBytes != 0 && firstTrunc == 0 {
			t.Fatalf("second recovery truncated %d bytes on a journal the first left clean",
				j2.Stats().TruncatedBytes)
		}
		secondState, err := json.Marshal(j2.State())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(firstState, secondState) {
			t.Fatalf("recovery not idempotent:\n first  %s\n second %s", firstState, secondState)
		}
		if j2.LastSeq() != firstSeq {
			t.Fatalf("recovered seq drifted: %d then %d", firstSeq, j2.LastSeq())
		}
	})
}
