package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/nomloc/nomloc/internal/csi"
	"github.com/nomloc/nomloc/internal/geom"
	"github.com/nomloc/nomloc/internal/telemetry"
	"github.com/nomloc/nomloc/internal/wire"
)

// testMeta is the meta record the tests write on fresh journals.
func testMeta() Meta {
	return Meta{
		ServerID:        "test-server",
		AreaVertices:    geom.Rect(0, 0, 12, 8).Vertices(),
		MaxNomadicSites: 4,
	}
}

// testBatch builds a minimal decodable CSI batch.
func testBatch(apID string) csi.Batch {
	vec := []complex128{complex(1, 0), complex(2, 0)}
	return csi.Batch{
		APID: apID,
		Samples: []csi.Sample{
			{APID: apID, Seq: 0, CSI: vec},
			{APID: apID, Seq: 1, CSI: vec},
		},
	}
}

// testReport builds a stored-report fixture.
func testReport(roundID uint64, apID string, site int, nomadic bool, pos geom.Vec) *wire.CSIReport {
	return &wire.CSIReport{
		RoundID:   roundID,
		APID:      apID,
		SiteIndex: site,
		Pos:       pos,
		Nomadic:   nomadic,
		Batch:     testBatch(apID),
	}
}

// openTest opens a journal under dir with sync disabled (tests exercise
// the format, not the disk).
func openTest(t *testing.T, dir string) *Journal {
	t.Helper()
	j, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j
}

// fillJournal writes the canonical fixture stream: meta, a session, two
// reports, and one solved round.
func fillJournal(t *testing.T, j *Journal) {
	t.Helper()
	if !j.Fresh() {
		t.Fatal("journal not fresh")
	}
	if err := j.AppendMeta(testMeta()); err != nil {
		t.Fatalf("AppendMeta: %v", err)
	}
	if err := j.AppendSessionOpen(wire.RoleObject, "obj1"); err != nil {
		t.Fatalf("AppendSessionOpen: %v", err)
	}
	reps := []*wire.CSIReport{
		testReport(1, "ap1", 0, false, geom.Vec{X: 1, Y: 1}),
		testReport(1, "ap2", 2, true, geom.Vec{X: 9, Y: 6}),
	}
	for _, rep := range reps {
		if err := j.AppendReport("obj1", rep); err != nil {
			t.Fatalf("AppendReport: %v", err)
		}
	}
	rs := RoundSolved{
		Estimate: wire.Estimate{RoundID: 1, ObjectID: "obj1", Pos: geom.Vec{X: 5, Y: 4}, RelaxCost: 0.25, NumAnchors: 2},
		Anchors:  []AnchorRef{{APID: "ap1", SiteIndex: 0, RoundID: 1}, {APID: "ap2", SiteIndex: 2, RoundID: 1}},
	}
	if err := j.AppendRoundSolved(rs); err != nil {
		t.Fatalf("AppendRoundSolved: %v", err)
	}
}

// TestOpenFreshReopenRecovers: a journal round-trips its record stream —
// reopening rebuilds meta, history, estimates, and the finished window,
// and sequence numbering continues where it left off.
func TestOpenFreshReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, dir)
	fillJournal(t, j)
	last := j.LastSeq()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2 := openTest(t, dir)
	defer func() {
		if err := j2.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if j2.Fresh() {
		t.Fatal("reopened journal claims fresh")
	}
	if got := j2.LastSeq(); got != last {
		t.Fatalf("LastSeq after reopen = %d, want %d", got, last)
	}
	st := j2.State()
	if st.Meta.ServerID != "test-server" || st.Meta.MaxNomadicSites != 4 {
		t.Fatalf("recovered meta = %+v", st.Meta)
	}
	if len(st.History) != 1 || st.History[0].ObjectID != "obj1" || len(st.History[0].Reports) != 2 {
		t.Fatalf("recovered history = %+v", st.History)
	}
	if len(st.Estimates) != 1 || st.Estimates[0].RoundID != 1 || st.Estimates[0].NumAnchors != 2 {
		t.Fatalf("recovered estimates = %+v", st.Estimates)
	}
	if len(st.Finished) != 1 || st.Finished[0] != 1 {
		t.Fatalf("recovered finished = %+v", st.Finished)
	}
	stats := j2.Stats()
	if stats.Records != int(last) {
		t.Fatalf("stats.Records = %d, want %d", stats.Records, last)
	}
	if stats.TruncatedBytes != 0 {
		t.Fatalf("clean journal truncated %d bytes", stats.TruncatedBytes)
	}

	// Appending after recovery keeps the sequence contiguous.
	if err := j2.AppendSessionClose(wire.RoleObject, "obj1"); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if got := j2.LastSeq(); got != last+1 {
		t.Fatalf("LastSeq after append = %d, want %d", got, last+1)
	}
}

// TestApplyReportRetention: the shared retention helper implements the
// server's semantics — recency by round, identity replacement, and
// nomadic-site eviction.
func TestApplyReportRetention(t *testing.T) {
	var hist []*wire.CSIReport

	// Store, then replace with a newer round for the same identity.
	hist, stored := ApplyReport(hist, testReport(1, "ap1", 0, false, geom.Vec{}), 2)
	if !stored || len(hist) != 1 {
		t.Fatalf("first store: stored=%v len=%d", stored, len(hist))
	}
	hist, stored = ApplyReport(hist, testReport(3, "ap1", 0, false, geom.Vec{}), 2)
	if !stored || len(hist) != 1 || hist[0].RoundID != 3 {
		t.Fatalf("replacement: stored=%v hist=%+v", stored, hist)
	}

	// An older round for a stored identity is stale.
	hist, stored = ApplyReport(hist, testReport(2, "ap1", 0, false, geom.Vec{}), 2)
	if stored || hist[0].RoundID != 3 {
		t.Fatalf("stale report stored: %+v", hist)
	}

	// Nomadic sites accumulate up to the budget, then evict oldest.
	hist, _ = ApplyReport(hist, testReport(4, "nom", 0, true, geom.Vec{}), 2)
	hist, _ = ApplyReport(hist, testReport(5, "nom", 1, true, geom.Vec{}), 2)
	hist, stored = ApplyReport(hist, testReport(6, "nom", 2, true, geom.Vec{}), 2)
	if !stored {
		t.Fatal("third site not stored")
	}
	sites := 0
	for _, rep := range hist {
		if rep.APID == "nom" {
			sites++
			if rep.SiteIndex == 0 {
				t.Fatalf("oldest site not evicted: %+v", hist)
			}
		}
	}
	if sites != 2 {
		t.Fatalf("nomadic sites = %d, want 2", sites)
	}
}

// TestTornTailTruncated: garbage appended past the last valid record — the
// torn-write crash shape — is truncated during recovery, never an error,
// and the journal stays appendable.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, dir)
	fillJournal(t, j)
	last := j.LastSeq()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a torn write: half an appended record's bytes.
	seg := segmentPath(dir, 1)
	torn := appendRecord(nil, Record{Seq: last + 1, Kind: KindSessionClose, Payload: []byte(`{}`)})
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openTest(t, dir)
	stats := j2.Stats()
	if stats.TruncatedBytes != int64(len(torn)/2) {
		t.Fatalf("TruncatedBytes = %d, want %d", stats.TruncatedBytes, len(torn)/2)
	}
	if got := j2.LastSeq(); got != last {
		t.Fatalf("LastSeq = %d, want %d", got, last)
	}
	// The tail is clean again: the next append lands at last+1 and a third
	// recovery sees nothing torn.
	if err := j2.AppendSessionClose(wire.RoleObject, "obj1"); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j3 := openTest(t, dir)
	if got := j3.Stats().TruncatedBytes; got != 0 {
		t.Fatalf("second recovery truncated %d bytes", got)
	}
	if err := j3.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestInteriorCorruptionRejected: a bit flip before the journal tail is
// NOT a torn write — recovery must refuse with ErrCorrupt rather than
// silently dropping committed records.
func TestInteriorCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a roll so corruption lands in a non-final file.
	j, err := Open(Options{Dir: dir, NoSync: true, SegmentMaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	fillJournal(t, j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segments, _, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segments) < 2 {
		t.Fatalf("expected a segment roll, got %d segments", len(segments))
	}

	// Flip one payload byte in the first segment.
	path := filepath.Join(dir, segments[0].name)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(Options{Dir: dir, NoSync: true}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on interior corruption = %v, want ErrCorrupt", err)
	}
}

// TestSegmentRollSnapshotCompact: segments roll at the size bound,
// snapshots capture the state, and Compact removes covered files while
// recovery still rebuilds the same state afterwards.
func TestSegmentRollSnapshotCompact(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, NoSync: true, SegmentMaxBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendMeta(testMeta()); err != nil {
		t.Fatal(err)
	}
	for round := uint64(1); round <= 12; round++ {
		if err := j.AppendReport("obj1", testReport(round, "ap1", 0, false, geom.Vec{X: 1})); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segments, _, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segments) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(segments))
	}

	// Recover, snapshot the full state, and compact.
	j2 := openTest(t, dir)
	want := j2.State()
	if err := j2.Snapshot(want); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := j2.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	after, snapshots, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(segments) {
		t.Fatalf("compact kept %d of %d segments", len(after), len(segments))
	}
	if len(snapshots) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(snapshots))
	}

	// Recovery from snapshot + surviving tail matches the full replay.
	j3 := openTest(t, dir)
	defer func() {
		if err := j3.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if j3.Stats().SnapshotSeq == 0 {
		t.Fatal("recovery ignored the snapshot")
	}
	got := j3.State()
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("state after compact diverged:\n want %s\n got  %s", wantJSON, gotJSON)
	}
}

// TestJournalByteDeterminism: two identical append sequences produce
// byte-identical journal directories — the property CI asserts under
// -race.
func TestJournalByteDeterminism(t *testing.T) {
	dirs := [2]string{t.TempDir(), t.TempDir()}
	for _, dir := range dirs {
		j, err := Open(Options{Dir: dir, NoSync: true, SegmentMaxBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		fillJournal(t, j)
		st, _, err := ReadState(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Snapshot(st); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	entries0, err := os.ReadDir(dirs[0])
	if err != nil {
		t.Fatal(err)
	}
	entries1, err := os.ReadDir(dirs[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(entries0) != len(entries1) {
		t.Fatalf("file counts differ: %d vs %d", len(entries0), len(entries1))
	}
	for i := range entries0 {
		if entries0[i].Name() != entries1[i].Name() {
			t.Fatalf("file names differ: %s vs %s", entries0[i].Name(), entries1[i].Name())
		}
		b0, err := os.ReadFile(filepath.Join(dirs[0], entries0[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		b1, err := os.ReadFile(filepath.Join(dirs[1], entries1[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b0, b1) {
			t.Fatalf("file %s differs between runs", entries0[i].Name())
		}
	}
}

// TestCrashHookBreaksJournal: a firing crash hook fails the append, marks
// the journal broken (every later operation refuses), and recovery of the
// directory converges back to the pre-crash state.
func TestCrashHookBreaksJournal(t *testing.T) {
	points := []string{PointAppendBefore, PointAppendTorn, PointAppendAfter}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			boom := errors.New("boom")
			armed := false
			j, err := Open(Options{Dir: dir, NoSync: true, CrashHook: func(p string) error {
				if armed && p == point {
					return boom
				}
				return nil
			}})
			if err != nil {
				t.Fatal(err)
			}
			fillJournal(t, j)
			last := j.LastSeq()

			armed = true
			err = j.AppendSessionClose(wire.RoleObject, "obj1")
			if !errors.Is(err, boom) {
				t.Fatalf("append under crash = %v, want boom", err)
			}
			if err := j.AppendSessionOpen(wire.RoleObject, "obj2"); !errors.Is(err, ErrBroken) {
				t.Fatalf("append on broken journal = %v, want ErrBroken", err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}

			j2 := openTest(t, dir)
			defer func() {
				if err := j2.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
			}()
			// append:after committed the record before the "kill", so
			// recovery sees one more; the other points see none of it.
			wantLast := last
			if point == PointAppendAfter {
				wantLast = last + 1
			}
			if got := j2.LastSeq(); got != wantLast {
				t.Fatalf("recovered LastSeq = %d, want %d", got, wantLast)
			}
			if point == PointAppendTorn && j2.Stats().TruncatedBytes == 0 {
				t.Fatal("torn crash left no truncated bytes")
			}
		})
	}
}

// TestVerifyCleanJournal: a journal whose round-solved record was produced
// by the real solver verifies with zero diffs; corrupting the recorded
// estimate yields exactly the diffs for the tampered fields.
func TestVerifyCleanJournal(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, dir)
	meta := testMeta()
	if err := j.AppendMeta(meta); err != nil {
		t.Fatal(err)
	}
	loc, err := localizerFromMeta(meta)
	if err != nil {
		t.Fatal(err)
	}
	reports := []*wire.CSIReport{
		testReport(1, "ap1", 0, false, geom.Vec{X: 1, Y: 1}),
		testReport(1, "ap2", 0, false, geom.Vec{X: 11, Y: 7}),
	}
	for _, rep := range reports {
		if err := j.AppendReport("obj1", rep); err != nil {
			t.Fatal(err)
		}
	}
	est, err := SolveReports(loc, reports)
	if err != nil {
		t.Fatalf("SolveReports: %v", err)
	}
	rs := RoundSolved{
		Estimate: wire.Estimate{RoundID: 1, ObjectID: "obj1", Pos: est.Position, RelaxCost: est.RelaxCost, NumAnchors: 2},
		Anchors:  []AnchorRef{{APID: "ap1", SiteIndex: 0, RoundID: 1}, {APID: "ap2", SiteIndex: 0, RoundID: 1}},
	}
	if err := j.AppendRoundSolved(rs); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	vr, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !vr.Clean() {
		t.Fatalf("clean journal has diffs: %+v", vr.Diffs)
	}
	if vr.Rounds != 1 || vr.Resolved != 1 || vr.Skipped != 0 {
		t.Fatalf("verify counters = %+v", vr)
	}

	// Tamper with the recorded estimate: re-append a wrong solve.
	j2 := openTest(t, dir)
	bad := rs
	bad.Estimate.RoundID = 2
	bad.Estimate.Pos.X += 1
	if err := j2.AppendRoundSolved(bad); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	vr2, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify tampered: %v", err)
	}
	if len(vr2.Diffs) != 1 || vr2.Diffs[0].Field != "pos.x" || vr2.Diffs[0].RoundID != 2 {
		t.Fatalf("tampered diffs = %+v", vr2.Diffs)
	}
}

// TestReadStateMatchesOpen: the read-only recovery used by replay tooling
// rebuilds the same state as a full Open without modifying the directory.
func TestReadStateMatchesOpen(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, dir)
	fillJournal(t, j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := dirBytes(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, stats, err := ReadState(dir)
	if err != nil {
		t.Fatalf("ReadState: %v", err)
	}
	after, err := dirBytes(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("ReadState modified the journal directory")
	}
	j2 := openTest(t, dir)
	defer func() {
		if err := j2.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	wantJSON, err := json.Marshal(j2.State())
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("ReadState diverged from Open:\n want %s\n got  %s", wantJSON, gotJSON)
	}
	if stats.LastSeq != j2.LastSeq() {
		t.Fatalf("stats.LastSeq = %d, want %d", stats.LastSeq, j2.LastSeq())
	}
}

// TestTelemetryInstruments: journal operations move the nomloc_journal_*
// instruments; a nil registry stays a no-op.
func TestTelemetryInstruments(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.New(nil)
	j, err := Open(Options{Dir: dir, Telemetry: reg, Clock: reg.Clock()})
	if err != nil {
		t.Fatal(err)
	}
	fillJournal(t, j)
	if err := j.Snapshot(j.stateForSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	wantPositive := []string{
		"nomloc_journal_appends_total",
		"nomloc_journal_append_bytes_total",
		"nomloc_journal_fsyncs_total",
		"nomloc_journal_snapshots_total",
		"nomloc_journal_segments",
		"nomloc_journal_recoveries_total",
	}
	for _, name := range wantPositive {
		total := 0.0
		for _, m := range snap.Metrics {
			if m.Name == name {
				total += m.Value
			}
		}
		if total <= 0 {
			t.Errorf("metric %s = %v, want > 0", name, total)
		}
	}
}

// stateForSnapshot rebuilds the current on-disk state so the snapshot
// covers every appended record.
func (j *Journal) stateForSnapshot(t *testing.T) *State {
	t.Helper()
	st, _, err := ReadState(j.opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// dirBytes reads every file in dir into a name → contents map.
func dirBytes(dir string) (map[string][]byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out[e.Name()] = buf
	}
	return out, nil
}

// TestRecordRoundTrip: the record codec survives arbitrary payloads and
// rejects every single-bit corruption of the encoding.
func TestRecordRoundTrip(t *testing.T) {
	rec := Record{Seq: 42, Kind: KindReport, Payload: []byte("payload bytes")}
	buf := appendRecord(nil, rec)
	got, n, ok := parseRecord(buf)
	if !ok || n != len(buf) {
		t.Fatalf("parseRecord ok=%v n=%d", ok, n)
	}
	if got.Seq != rec.Seq || got.Kind != rec.Kind || !bytes.Equal(got.Payload, rec.Payload) {
		t.Fatalf("round trip = %+v", got)
	}
	for i := range buf {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), buf...)
			mut[i] ^= 1 << bit
			if mutRec, _, ok := parseRecord(mut); ok {
				// A corrupted length can only be accepted if the CRC still
				// matches, which a single bit flip cannot arrange.
				t.Fatalf("bit flip at byte %d bit %d accepted: %+v", i, bit, mutRec)
			}
		}
	}
}

// TestReportPayloadRoundTrip: the object-ID + wire-frame payload codec is
// lossless.
func TestReportPayloadRoundTrip(t *testing.T) {
	rep := testReport(7, "ap9", 3, true, geom.Vec{X: 2.5, Y: 3.5})
	payload, err := encodeReportPayload("obj-x", rep)
	if err != nil {
		t.Fatal(err)
	}
	objectID, got, err := decodeReportPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if objectID != "obj-x" {
		t.Fatalf("objectID = %q", objectID)
	}
	if got.RoundID != 7 || got.APID != "ap9" || got.SiteIndex != 3 || !got.Nomadic {
		t.Fatalf("report = %+v", got)
	}
	if fmt.Sprint(got.Pos) != fmt.Sprint(rep.Pos) {
		t.Fatalf("pos = %v, want %v", got.Pos, rep.Pos)
	}
}
