package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ErrTailGap is returned by a Tail whose cursor points below the oldest
// surviving segment: the records were compacted away and can only be
// recovered from a snapshot, not streamed.
var ErrTailGap = errors.New("journal: tail cursor below oldest segment")

// Tail is a streaming reader over a journal directory: it returns records
// in sequence order, following the live segment as the owner appends and
// rolling into new segments as they appear. A Tail never surfaces a
// record past its durability limit — for a Tail opened on a live Journal
// the limit is the journal's fsync floor (LastSeq), so a record becomes
// visible only after the fsync that committed it, never while its bytes
// are in flight or torn.
//
// A Tail is owned by one goroutine; the journal it follows may append
// concurrently (the segment files are append-only, and the limit hides
// the mutable tail).
type Tail struct {
	dir     string
	limit   func() uint64 // durable floor; 0 limit func means unbounded
	wantSeq uint64        // seq Next returns next

	f        *os.File // open segment (nil until first Next)
	segFirst uint64
	off      int64

	hdr [recordHeaderSize]byte
	buf []byte
}

// Tail opens a follower positioned after afterSeq, bounded by the
// journal's fsync floor: Next never returns a record the journal has not
// yet durably committed. The Tail stays valid across appends, segment
// rolls, and compactions above its cursor; it reads files directly and
// takes no journal locks on the hot path.
func (j *Journal) Tail(afterSeq uint64) (*Tail, error) {
	return newTail(j.opts.Dir, afterSeq, j.LastSeq)
}

// TailDir opens an unbounded follower over a journal directory without a
// live Journal — the post-mortem drain path: after a primary dies, its
// surviving directory is streamed to the standby up to the durable tail.
// Iteration ends (Next returns done) at the first torn or missing record,
// mirroring recovery's truncation point.
func TailDir(dir string, afterSeq uint64) (*Tail, error) {
	return newTail(dir, afterSeq, nil)
}

func newTail(dir string, afterSeq uint64, limit func() uint64) (*Tail, error) {
	if dir == "" {
		return nil, errors.New("journal: tail needs a directory")
	}
	return &Tail{dir: dir, limit: limit, wantSeq: afterSeq + 1}, nil
}

// Seq returns the sequence number of the last record Next returned (the
// initial afterSeq before the first record).
func (t *Tail) Seq() uint64 { return t.wantSeq - 1 }

// Next returns the next record at or below the durability limit. done is
// true when the tail is caught up (or, for TailDir, the durable end was
// reached); the Tail stays usable and a later Next resumes where this one
// stopped. An error means interior corruption or an unreadable directory.
func (t *Tail) Next() (Record, bool, error) {
	bounded := t.limit != nil
	if bounded && t.wantSeq > t.limit() {
		return Record{}, true, nil
	}
	for {
		if t.f == nil {
			found, err := t.locate()
			if err != nil {
				return Record{}, false, err
			}
			if !found {
				if bounded {
					// The limit says the record is durable, but no
					// segment holds it: the directory lost its tail.
					return Record{}, false, fmt.Errorf("%w: no segment holds seq %d", ErrCorrupt, t.wantSeq)
				}
				return Record{}, true, nil
			}
		}
		rec, n, ok, err := t.read()
		if err != nil {
			return Record{}, false, err
		}
		if !ok {
			// No complete record at the offset. Inside the limit that
			// means the segment rolled — the record continues in the next
			// file. Unbounded, it is the durable end.
			if cerr := t.closeSegment(); cerr != nil {
				return Record{}, false, cerr
			}
			if !bounded {
				// Re-check for a freshly rolled segment before declaring
				// the end: the record may start a new file.
				found, lerr := t.locateExact()
				if lerr != nil {
					return Record{}, false, lerr
				}
				if !found {
					return Record{}, true, nil
				}
				continue
			}
			found, lerr := t.locateExact()
			if lerr != nil {
				return Record{}, false, lerr
			}
			if !found {
				return Record{}, false, fmt.Errorf("%w: seq %d within limit but past segment end", ErrCorrupt, t.wantSeq)
			}
			continue
		}
		if rec.Seq != t.wantSeq {
			return Record{}, false, fmt.Errorf("%w: tail read seq %d, want %d", ErrCorrupt, rec.Seq, t.wantSeq)
		}
		t.off += int64(n)
		t.wantSeq++
		return rec, false, nil
	}
}

// locate finds and opens the segment containing wantSeq, scanning past
// earlier records in the file. found is false when no segment could hold
// it (an empty directory or a not-yet-created tail segment).
func (t *Tail) locate() (bool, error) {
	segments, _, err := listDir(t.dir)
	if err != nil {
		return false, err
	}
	idx := -1
	for i, entry := range segments {
		if entry.seq <= t.wantSeq {
			idx = i
		}
	}
	if idx < 0 {
		if len(segments) > 0 && segments[0].seq > t.wantSeq {
			return false, fmt.Errorf("%w: want seq %d, oldest segment starts at %d",
				ErrTailGap, t.wantSeq, segments[0].seq)
		}
		return false, nil
	}
	if err := t.openSegment(segments[idx]); err != nil {
		return false, err
	}
	// Skip records below the cursor (CRC-checked on the way past).
	for {
		rec, n, ok, rerr := t.read()
		if rerr != nil {
			return false, rerr
		}
		if !ok || rec.Seq >= t.wantSeq {
			return true, nil
		}
		t.off += int64(n)
	}
}

// locateExact opens the segment whose first record is exactly wantSeq —
// the roll-boundary continuation.
func (t *Tail) locateExact() (bool, error) {
	segments, _, err := listDir(t.dir)
	if err != nil {
		return false, err
	}
	for _, entry := range segments {
		if entry.seq == t.wantSeq {
			if oerr := t.openSegment(entry); oerr != nil {
				return false, oerr
			}
			return true, nil
		}
	}
	return false, nil
}

// openSegment opens entry, validates its header, and positions the read
// offset at the first record.
func (t *Tail) openSegment(entry fileEntry) error {
	f, err := os.Open(filepath.Join(t.dir, entry.name))
	if err != nil {
		return fmt.Errorf("journal: tail open segment: %w", err)
	}
	hdr := make([]byte, segmentHeaderSize)
	if _, rerr := io.ReadFull(f, hdr); rerr != nil {
		cerr := f.Close()
		return fmt.Errorf("%w: tail segment %s header: %v", ErrCorrupt, entry.name, errors.Join(rerr, cerr))
	}
	firstSeq, ok := parseSegmentHeader(hdr)
	if !ok || firstSeq != entry.seq {
		cerr := f.Close()
		if cerr != nil {
			return fmt.Errorf("%w: tail segment %s has a bad header (close: %v)", ErrCorrupt, entry.name, cerr)
		}
		return fmt.Errorf("%w: tail segment %s has a bad header", ErrCorrupt, entry.name)
	}
	t.f = f
	t.segFirst = firstSeq
	t.off = segmentHeaderSize
	return nil
}

// closeSegment releases the open segment file, keeping the cursor.
func (t *Tail) closeSegment() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	if err != nil {
		return fmt.Errorf("journal: tail close segment: %w", err)
	}
	return nil
}

// read loads bytes at the current offset and parses one record without
// consuming it; the caller advances t.off by n to consume. ok is false
// when no complete, checksum-valid record is present at the offset.
func (t *Tail) read() (Record, int, bool, error) {
	n, err := t.f.ReadAt(t.hdr[:], t.off)
	if err != nil && !errors.Is(err, io.EOF) {
		return Record{}, 0, false, fmt.Errorf("journal: tail read: %w", err)
	}
	if n < recordHeaderSize {
		return Record{}, 0, false, nil
	}
	bodyLen := int(binary.BigEndian.Uint32(t.hdr[:4]))
	if bodyLen < 9 || bodyLen > maxRecordBytes {
		return Record{}, 0, false, nil
	}
	total := recordHeaderSize + bodyLen
	if cap(t.buf) < total {
		t.buf = make([]byte, total)
	}
	t.buf = t.buf[:total]
	copy(t.buf, t.hdr[:])
	m, err := t.f.ReadAt(t.buf[recordHeaderSize:], t.off+recordHeaderSize)
	if err != nil && !errors.Is(err, io.EOF) {
		return Record{}, 0, false, fmt.Errorf("journal: tail read: %w", err)
	}
	if m < bodyLen {
		return Record{}, 0, false, nil
	}
	rec, n2, ok := parseRecord(t.buf)
	if !ok {
		return Record{}, 0, false, nil
	}
	return rec, n2, true, nil
}

// Close releases the Tail's file handle. The Tail must not be used after.
func (t *Tail) Close() error { return t.closeSegment() }
